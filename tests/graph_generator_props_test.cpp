// Per-model property checks for the GeneratorSpec family (graph/genspec.hpp):
// structural invariants after CSR construction (no self loops or duplicate
// edges, CsrGraph::validate clean), vertex and edge counts within the
// spec's tolerance, degree-distribution shape (BA's power-law tail vs the
// grids' constant interior degree, via coarse histogram bounds), spec
// parsing and normalization, the canonical key, bit-identity of every
// model across thread counts, distinctness across seeds, and the uniform
// seed=0 loud rejection.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/genspec.hpp"
#include "graph/suite.hpp"
#include "support/threadpool.hpp"

namespace {

using namespace speckle;
using graph::CsrGraph;
using graph::GeneratorSpec;
using graph::GenModel;

CsrGraph gen(const std::string& text, unsigned threads = 1) {
  support::ThreadPool pool(threads);
  return graph::generate_graph(graph::parse_generator_spec(text, 7), pool);
}

bool same_graph(const CsrGraph& a, const CsrGraph& b) {
  return std::ranges::equal(a.row_offsets(), b.row_offsets()) &&
         std::ranges::equal(a.col_indices(), b.col_indices());
}

double avg_degree(const CsrGraph& g) {
  return static_cast<double>(g.num_edges()) /
         static_cast<double>(g.num_vertices());
}

/// Degree histogram in power-of-two buckets: bucket b counts vertices with
/// degree in [2^b, 2^(b+1)).
std::vector<std::size_t> degree_histogram(const CsrGraph& g) {
  std::vector<std::size_t> buckets(33, 0);
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    const graph::vid_t d = g.degree(v);
    std::size_t b = 0;
    while ((2u << b) <= d) ++b;
    ++buckets[b];
  }
  while (!buckets.empty() && buckets.back() == 0) buckets.pop_back();
  return buckets;
}

// Every model, once: CSR invariants hold (validate() re-checks no self
// loops, sorted deduplicated adjacency, in-range columns) and the vertex
// count matches the spec exactly.
struct ModelCase {
  const char* spec;
  std::uint64_t expect_n;
};

class EveryModel : public ::testing::TestWithParam<ModelCase> {};

TEST_P(EveryModel, CsrInvariantsAndVertexCount) {
  const CsrGraph g = gen(GetParam().spec);
  EXPECT_TRUE(g.validate());
  EXPECT_EQ(g.num_vertices(), GetParam().expect_n);
  EXPECT_GT(g.num_edges(), 0u);
  EXPECT_TRUE(g.is_symmetric());
}

TEST_P(EveryModel, BitIdenticalAcrossThreadCounts) {
  const CsrGraph serial = gen(GetParam().spec, 1);
  const CsrGraph parallel = gen(GetParam().spec, 4);
  EXPECT_TRUE(same_graph(serial, parallel));
}

TEST_P(EveryModel, DistinctAcrossSeeds) {
  // Grids only differ through their defect edges, which every listed grid
  // case includes; the deterministic stencil part is identical by design.
  const std::string base = GetParam().spec;
  const CsrGraph a = gen(base + ",seed=11");
  const CsrGraph b = gen(base + ",seed=12");
  EXPECT_FALSE(same_graph(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Models, EveryModel,
    ::testing::Values(
        ModelCase{"rmat:scale=12,deg=8", 4096},
        ModelCase{"kron:scale=12,deg=8", 4096},
        ModelCase{"ba:n=5000,attach=3", 5000},
        ModelCase{"rgg2d:n=4000,deg=9", 4000},
        ModelCase{"grid2d:nx=60,ny=70,defects=0.4", 4200},
        ModelCase{"grid3d:nx=15,ny=16,nz=17,defects=0.5", 4080},
        ModelCase{"localrand:n=5000,deglo=1,deghi=7", 5000},
        ModelCase{"er:n=4000,deg=8", 4000}),
    [](const auto& info) {
      std::string name(info.param.spec);
      return name.substr(0, name.find(':'));
    });

// --- degree-distribution shape -------------------------------------------

TEST(GeneratorShape, GridInteriorDegreeIsConstant) {
  // Plain stencils: every interior vertex has exactly 4 (2-D) or 6 (3-D)
  // neighbors; no vertex exceeds that.
  const CsrGraph g2 = gen("grid2d:nx=50,ny=50");
  EXPECT_EQ(g2.max_degree(), 4u);
  std::size_t interior2 = 0;
  for (graph::vid_t v = 0; v < g2.num_vertices(); ++v) {
    interior2 += g2.degree(v) == 4 ? 1 : 0;
  }
  EXPECT_EQ(interior2, 48u * 48u);

  const CsrGraph g3 = gen("grid3d:nx=12,ny=12,nz=12");
  EXPECT_EQ(g3.max_degree(), 6u);
}

TEST(GeneratorShape, BaHasAPowerLawTailGridsDoNot) {
  // BA's preferential attachment concentrates degree into hubs: the max
  // degree is far above the mean, and the power-of-two histogram keeps
  // nonempty buckets well past the mean bucket. A (defected) grid's
  // histogram dies right after the mean.
  const CsrGraph ba = gen("ba:n=20000,attach=3");
  const double mean = avg_degree(ba);
  EXPECT_GT(static_cast<double>(ba.max_degree()), 8.0 * mean);
  const auto hist = degree_histogram(ba);
  std::size_t mean_bucket = 0;
  while ((2.0 * (1u << mean_bucket)) <= mean) ++mean_bucket;
  EXPECT_GE(hist.size(), mean_bucket + 4) << "BA tail collapsed";

  const CsrGraph grid = gen("grid2d:nx=140,ny=140,defects=0.4");
  EXPECT_LE(grid.max_degree(), 12u);  // 4 + a few defect edges
  const auto grid_hist = degree_histogram(grid);
  EXPECT_LE(grid_hist.size(), 5u);  // no bucket at degree >= 16
}

TEST(GeneratorShape, EdgeCountsTrackTheRequestedDegree) {
  // Directed CSR degree should land near the spec's deg= target. Bounds
  // are coarse (dedup and boundary effects shave edges; rgg2d is a
  // Poisson sample).
  const std::map<std::string, double> cases = {
      {"rmat:scale=13,deg=10", 10.0},  // dedup + self loops shave ~15%
      {"er:n=8000,deg=10", 10.0},
      {"rgg2d:n=8000,deg=10", 10.0},
      {"ba:n=8000,deg=6", 6.0},
      {"localrand:n=8000,deg=8", 8.0},
  };
  for (const auto& [spec, target] : cases) {
    SCOPED_TRACE(spec);
    const double got = avg_degree(gen(spec));
    EXPECT_GT(got, 0.55 * target);
    EXPECT_LT(got, 1.35 * target);
  }
}

// --- parsing and normalization -------------------------------------------

TEST(GeneratorSpecParse, SuffixesScaleAndDefaults) {
  const GeneratorSpec s1 = graph::parse_generator_spec("ba:n=16k,attach=3", 7);
  EXPECT_EQ(s1.model, GenModel::kBarabasiAlbert);
  EXPECT_EQ(s1.num_vertices, 16000u);
  EXPECT_EQ(s1.attach, 3u);
  EXPECT_EQ(s1.seed, 7u);  // default seed flows in

  const GeneratorSpec s2 = graph::parse_generator_spec("kron:scale=18,deg=12,seed=42", 7);
  EXPECT_EQ(s2.num_vertices, 1u << 18);
  EXPECT_EQ(s2.num_edges, (1ull << 18) * 6);  // deg/2 undirected draws
  EXPECT_EQ(s2.seed, 42u);

  // grid2d derives a square from n; rgg2d derives its radius from deg.
  const GeneratorSpec s3 = graph::parse_generator_spec("grid2d:n=10000", 7);
  EXPECT_EQ(s3.nx, 100u);
  EXPECT_EQ(s3.ny, 100u);
  const GeneratorSpec s4 = graph::parse_generator_spec("rgg2d:n=10000,deg=8", 7);
  EXPECT_NEAR(s4.radius, std::sqrt(8.0 / (3.14159265 * 10000.0)), 1e-9);
}

TEST(GeneratorSpecParse, CanonicalKeyIsInjectiveOverParameters) {
  const auto key = [](const std::string& text) {
    return graph::canonical_spec_key(graph::parse_generator_spec(text, 7));
  };
  EXPECT_EQ(key("ba:n=1000,attach=3"), key("ba:n=1000,attach=3"));
  EXPECT_NE(key("ba:n=1000,attach=3"), key("ba:n=1000,attach=4"));
  EXPECT_NE(key("ba:n=1000,attach=3"), key("ba:n=1001,attach=3"));
  EXPECT_NE(key("ba:n=1000,attach=3"), key("ba:n=1000,attach=3,seed=8"));
  EXPECT_NE(key("rmat:scale=10"), key("kron:scale=10"));
  EXPECT_NE(key("rmat:scale=10,a=0.45,b=0.15,c=0.15,d=0.25"),
            key("rmat:scale=10"));
}

TEST(GeneratorSpecParse, FootprintBoundsHold) {
  // The footprint estimate must upper-bound what generation actually
  // produces — bench_huge trusts it for the memory budget pre-flight.
  for (const char* text :
       {"rmat:scale=12,deg=8", "ba:n=5000,attach=3", "rgg2d:n=4000,deg=9",
        "grid2d:nx=60,ny=70,defects=0.4", "localrand:n=5000", "er:n=4000,deg=8"}) {
    SCOPED_TRACE(text);
    const GeneratorSpec spec = graph::parse_generator_spec(text, 7);
    const graph::SpecFootprint fp = graph::estimate_footprint(spec);
    const CsrGraph g = gen(text);
    EXPECT_LE(g.num_edges(), fp.directed_edges);
    EXPECT_GT(fp.build_peak_bytes, g.num_edges() * sizeof(graph::vid_t));
  }
}

TEST(GeneratorSpecParseDeath, MalformedSpecsAreRejectedLoudly) {
  EXPECT_DEATH(graph::parse_generator_spec("nosuch:n=100", 7), "unknown generator model");
  EXPECT_DEATH(graph::parse_generator_spec("ba:bogus=1", 7), "unknown spec key");
  EXPECT_DEATH(graph::parse_generator_spec("ba:n", 7), "not key=value");
  EXPECT_DEATH(graph::parse_generator_spec("ba:n=12q", 7), "malformed value");
  EXPECT_DEATH(graph::parse_generator_spec("rmat:n=1000", 7), "power-of-two");
  EXPECT_DEATH(graph::parse_generator_spec("rmat:scale=10,a=0.9", 7), "sum to 1");
}

TEST(GeneratorSpecParseDeath, SeedZeroIsRejectedAtEveryEntryPoint) {
  // The suite's seed rule applies uniformly to all generator entry points:
  // parse (explicit and via default), normalized, and the suite spec.
  EXPECT_DEATH(graph::parse_generator_spec("ba:n=1000,seed=0", 7), "seed 0");
  EXPECT_DEATH(graph::parse_generator_spec("ba:n=1000", 0), "seed 0");
  GeneratorSpec spec;
  spec.model = GenModel::kErdosRenyi;
  spec.num_vertices = 100;
  spec.seed = 0;
  EXPECT_DEATH(graph::normalized(spec), "seed 0");
  EXPECT_DEATH(graph::suite_generator_spec("Hamrle3", 64, 0), "seed 0");
}

// --- suite integration ----------------------------------------------------

TEST(SuiteSpec, SuiteGraphsRebuildByteIdenticalFromTheirSpecs) {
  // make_suite_graph is now spec-driven; the spec must reproduce the
  // historical bytes (the goldens pin this at CI scale too).
  for (const char* name : {"rmat-g", "thermal2", "Hamrle3", "G3_circuit"}) {
    SCOPED_TRACE(name);
    const GeneratorSpec spec = graph::suite_generator_spec(name, 64, 5);
    const CsrGraph via_spec =
        graph::build_csr(static_cast<graph::vid_t>(spec.num_vertices),
                         graph::generate_edges_serial(spec));
    EXPECT_TRUE(same_graph(via_spec, graph::make_suite_graph(name, 64, 5)));
  }
}

TEST(SuiteSpec, SerialAndShardedPathsAgreeOnStencilBytes) {
  // Deterministic models (no RNG): the sharded pipeline must reproduce
  // the serial build exactly, not just statistically.
  GeneratorSpec spec;
  spec.model = GenModel::kGrid3d;
  spec.nx = 11;
  spec.ny = 12;
  spec.nz = 13;
  spec.seed = 5;
  spec = graph::normalized(spec);
  support::ThreadPool pool(4);
  const CsrGraph sharded = graph::generate_graph(spec, pool);
  const CsrGraph serial =
      graph::build_csr(static_cast<graph::vid_t>(spec.num_vertices),
                       graph::generate_edges_serial(spec));
  EXPECT_TRUE(same_graph(sharded, serial));
}

}  // namespace
