// Vertex relabeling tests.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/permute.hpp"
#include "support/rng.hpp"

namespace {

using namespace speckle::graph;

TEST(Permute, IdentityIsNoOp) {
  const CsrGraph g = build_csr(4, {{0, 1}, {1, 2}, {2, 3}});
  const std::vector<vid_t> identity = {0, 1, 2, 3};
  const CsrGraph h = permute(g, identity);
  for (vid_t v = 0; v < 4; ++v) {
    EXPECT_EQ(h.degree(v), g.degree(v));
  }
  EXPECT_TRUE(h.has_edge(0, 1));
}

TEST(Permute, RelabelsAdjacency) {
  const CsrGraph g = build_csr(3, {{0, 1}});
  const std::vector<vid_t> perm = {2, 0, 1};  // 0->2, 1->0
  const CsrGraph h = permute(g, perm);
  EXPECT_TRUE(h.has_edge(2, 0));
  EXPECT_FALSE(h.has_edge(0, 1));
  EXPECT_EQ(h.degree(1), 0U);  // old vertex 2 was isolated
}

TEST(Permute, PreservesDegreeMultiset) {
  const CsrGraph g = build_csr(200, erdos_renyi(200, 600, 7));
  const CsrGraph h = permute_random(g, 13);
  std::vector<vid_t> dg, dh;
  for (vid_t v = 0; v < 200; ++v) {
    dg.push_back(g.degree(v));
    dh.push_back(h.degree(v));
  }
  std::sort(dg.begin(), dg.end());
  std::sort(dh.begin(), dh.end());
  EXPECT_EQ(dg, dh);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_TRUE(h.is_symmetric());
}

TEST(Permute, EdgesMapExactly) {
  const CsrGraph g = build_csr(50, erdos_renyi(50, 120, 3));
  const auto perm_vec = speckle::support::random_permutation(50, 4);
  const CsrGraph h = permute(g, std::span<const vid_t>(perm_vec));
  for (vid_t v = 0; v < 50; ++v) {
    for (vid_t w : g.neighbors(v)) {
      EXPECT_TRUE(h.has_edge(perm_vec[v], perm_vec[w]));
    }
  }
}

TEST(PermuteDeathTest, RejectsNonPermutation) {
  const CsrGraph g = build_csr(3, {{0, 1}});
  const std::vector<vid_t> dup = {0, 0, 1};
  EXPECT_DEATH(permute(g, dup), "not a permutation");
  const std::vector<vid_t> short_perm = {0, 1};
  EXPECT_DEATH(permute(g, short_perm), "size");
}

}  // namespace
