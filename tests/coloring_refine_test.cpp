// Iterated-greedy refinement tests.

#include <gtest/gtest.h>

#include "check_coloring.hpp"
#include "coloring/refine.hpp"
#include "coloring/runner.hpp"
#include "coloring/seq_greedy.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace speckle;
using namespace speckle::coloring;
using speckle::testing::IsProperColoring;
using graph::build_csr;
using graph::CsrGraph;
using graph::vid_t;

TEST(Refine, NeverIncreasesColorsAndStaysProper) {
  const CsrGraph g = build_csr(1200, graph::erdos_renyi(1200, 9000, 3));
  const auto seq = seq_greedy(g, {.charge_model = false});
  const RefineResult r = iterated_greedy(g, seq.coloring);
  EXPECT_TRUE(IsProperColoring(g, r.coloring));
  EXPECT_LE(r.colors_after, r.colors_before);
}

TEST(Refine, ImprovesDeliberatelyBadColoring) {
  // A bipartite graph colored with one color per vertex: refinement must
  // collapse this dramatically (to at most a handful of classes).
  const CsrGraph g = build_csr(64, graph::stencil2d(8, 8));
  Coloring wasteful(64);
  for (vid_t v = 0; v < 64; ++v) wasteful[v] = v + 1;
  const RefineResult r = iterated_greedy(g, wasteful, {.rounds = 8});
  EXPECT_TRUE(IsProperColoring(g, r.coloring));
  EXPECT_EQ(r.colors_before, 64U);
  EXPECT_LE(r.colors_after, 4U);
}

TEST(Refine, RecoversSpeculationLossOnSkewedGraph) {
  // D-base loses a couple of colors to speculation on rmat-g-like graphs;
  // a refinement pass should claw most of that back.
  const CsrGraph g = build_csr(
      1 << 11,
      graph::rmat(11, 14000, graph::RmatParams{0.5, 0.15, 0.15, 0.2, 0.1}, 5));
  const RunResult gpu = run_scheme(Scheme::kDataBase, g);
  const auto seq = seq_greedy(g, {.charge_model = false});
  const RefineResult r = iterated_greedy(g, gpu.coloring);
  EXPECT_LE(r.colors_after, gpu.num_colors);
  EXPECT_LE(r.colors_after, seq.num_colors + 2);
}

TEST(Refine, LargestFirstOrderAlsoValid) {
  const CsrGraph g = build_csr(800, graph::local_random(800, 1, 6, 60, 9));
  const auto seq = seq_greedy(g, {.charge_model = false});
  RefineOptions opts;
  opts.order = ClassOrder::kLargestFirst;
  const RefineResult r = iterated_greedy(g, seq.coloring, opts);
  EXPECT_TRUE(IsProperColoring(g, r.coloring));
  EXPECT_LE(r.colors_after, r.colors_before);
}

TEST(Refine, StopsEarlyWhenConverged) {
  const CsrGraph g = build_csr(10, graph::ring_lattice(10, 1));
  const auto seq = seq_greedy(g, {.charge_model = false});  // already 2 colors
  const RefineResult r = iterated_greedy(g, seq.coloring, {.rounds = 100});
  EXPECT_LE(r.rounds_run, 1U);
  EXPECT_EQ(r.colors_after, 2U);
}

TEST(RefineDeathTest, RejectsImproperInput) {
  const CsrGraph g = build_csr(2, {{0, 1}});
  Coloring bad = {1, 1};
  EXPECT_DEATH(iterated_greedy(g, bad), "proper");
}

}  // namespace
