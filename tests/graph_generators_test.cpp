// Tests for the synthetic graph generators, including the distributional
// properties the Table I structural twins rely on.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace speckle::graph;

TEST(Rmat, ProducesRequestedEdgeCount) {
  const EdgeList edges = rmat(10, 5000, RmatParams{}, 1);
  EXPECT_EQ(edges.size(), 5000U);
  for (const Edge& e : edges) {
    EXPECT_LT(e.src, 1024U);
    EXPECT_LT(e.dst, 1024U);
  }
}

TEST(Rmat, Deterministic) {
  const EdgeList a = rmat(8, 1000, RmatParams{}, 77);
  const EdgeList b = rmat(8, 1000, RmatParams{}, 77);
  EXPECT_EQ(a, b);
}

TEST(Rmat, SeedChangesOutput) {
  const EdgeList a = rmat(8, 1000, RmatParams{}, 1);
  const EdgeList b = rmat(8, 1000, RmatParams{}, 2);
  EXPECT_NE(a, b);
}

TEST(Rmat, SkewedParametersSkewDegrees) {
  // rmat-g's (0.45,0.15,0.15,0.25) must produce a heavier-tailed degree
  // distribution than the ER-like (0.25 x4) — that is the entire point of
  // the two Table I synthetic graphs.
  const RmatParams er{};
  const RmatParams g_params{0.45, 0.15, 0.15, 0.25, 0.1};
  const CsrGraph er_graph = build_csr(1 << 14, rmat(14, 160000, er, 5));
  const CsrGraph g_graph = build_csr(1 << 14, rmat(14, 160000, g_params, 5));
  const DegreeReport er_report = analyze_degrees(er_graph);
  const DegreeReport g_report = analyze_degrees(g_graph);
  EXPECT_GT(g_report.degree_variance, 4 * er_report.degree_variance);
  EXPECT_GT(g_report.max_degree, 2 * er_report.max_degree);
}

TEST(ErdosRenyi, RespectsRange) {
  const EdgeList edges = erdos_renyi(100, 500, 3);
  EXPECT_EQ(edges.size(), 500U);
  for (const Edge& e : edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_LT(e.src, 100U);
    EXPECT_LT(e.dst, 100U);
  }
}

TEST(Stencil2d, InteriorDegreeIsFour) {
  const CsrGraph g = build_csr(25, stencil2d(5, 5));
  EXPECT_EQ(g.degree(12), 4U);  // center
  EXPECT_EQ(g.degree(0), 2U);   // corner
  EXPECT_EQ(g.degree(2), 3U);   // edge
  EXPECT_EQ(g.num_edges(), 2U * (2 * 5 * 4));
}

TEST(Stencil3d, InteriorDegreeIsSix) {
  const CsrGraph g = build_csr(27, stencil3d(3, 3, 3));
  EXPECT_EQ(g.degree(13), 6U);  // center of 3x3x3
  EXPECT_EQ(g.degree(0), 3U);   // corner
}

TEST(Stencil3d, EdgeCountFormula) {
  const vid_t nx = 4, ny = 5, nz = 6;
  const CsrGraph g = build_csr(nx * ny * nz, stencil3d(nx, ny, nz));
  const eid_t undirected =
      (nx - 1) * ny * nz + nx * (ny - 1) * nz + nx * ny * (nz - 1);
  EXPECT_EQ(g.num_edges(), 2 * undirected);
}

TEST(LocalDefects, AddsBoundedLocalEdges) {
  EdgeList edges = stencil2d(10, 10);
  const std::size_t before = edges.size();
  add_local_defects(edges, 100, 1.0, 5, 9);
  EXPECT_GT(edges.size(), before);
  EXPECT_LE(edges.size(), before + 100);
  for (std::size_t i = before; i < edges.size(); ++i) {
    const auto diff = static_cast<std::int64_t>(edges[i].src) -
                      static_cast<std::int64_t>(edges[i].dst);
    EXPECT_LE(std::abs(diff), 5);
    EXPECT_NE(diff, 0);
  }
}

TEST(LocalRandom, DegreeWithinWindow) {
  const CsrGraph g = build_csr(1000, local_random(1000, 2, 6, 50, 4));
  const DegreeReport report = analyze_degrees(g);
  // Initiated degree U[2,6] symmetrized: mean ~= 8 before dedup.
  EXPECT_GT(report.avg_degree, 5.0);
  EXPECT_LT(report.avg_degree, 9.0);
  for (vid_t v = 0; v < 1000; ++v) {
    for (vid_t w : g.neighbors(v)) {
      EXPECT_LE(std::abs(static_cast<std::int64_t>(v) - static_cast<std::int64_t>(w)),
                50);
    }
  }
}

TEST(Geometric, EdgesRespectRadius) {
  const EdgeList edges = geometric(500, 0.08, 12);
  const CsrGraph g = build_csr(500, EdgeList(edges));
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_GT(edges.size(), 0U);
}

TEST(Geometric, DenserWithLargerRadius) {
  const EdgeList small = geometric(400, 0.05, 3);
  const EdgeList large = geometric(400, 0.15, 3);
  EXPECT_GT(large.size(), small.size());
}

TEST(RingLattice, UniformDegree) {
  const CsrGraph g = build_csr(20, ring_lattice(20, 3));
  for (vid_t v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 6U);
}

TEST(WattsStrogatz, ZeroBetaIsRingLattice) {
  EXPECT_EQ(watts_strogatz(30, 2, 0.0, 1), ring_lattice(30, 2));
}

TEST(WattsStrogatz, RewiringPreservesEdgeCountAndLoopFreedom) {
  const EdgeList edges = watts_strogatz(200, 3, 0.3, 7);
  EXPECT_EQ(edges.size(), ring_lattice(200, 3).size());
  for (const Edge& e : edges) EXPECT_NE(e.src, e.dst);
  EXPECT_NE(edges, ring_lattice(200, 3));  // some rewiring happened
}

TEST(WattsStrogatz, FullRewireBreaksLocality) {
  const CsrGraph regular = build_csr(400, watts_strogatz(400, 3, 0.0, 5));
  const CsrGraph random = build_csr(400, watts_strogatz(400, 3, 1.0, 5));
  // Degrees stay near 6 but the variance rises once edges scatter.
  EXPECT_GT(analyze_degrees(random).degree_variance,
            analyze_degrees(regular).degree_variance);
}

TEST(BarabasiAlbert, DegreesAndHubs) {
  const CsrGraph g = build_csr(2000, barabasi_albert(2000, 3, 11));
  const DegreeReport r = analyze_degrees(g);
  EXPECT_GE(r.min_degree, 3U);              // every late vertex attaches m times
  EXPECT_GT(r.max_degree, 10 * 3U);         // preferential attachment grows hubs
  EXPECT_NEAR(r.avg_degree, 6.0, 1.0);      // ~2m
  EXPECT_EQ(count_components(g), 1U);       // attachment keeps it connected
}

TEST(BarabasiAlbert, Deterministic) {
  EXPECT_EQ(barabasi_albert(300, 2, 9), barabasi_albert(300, 2, 9));
}

TEST(Complete, AllPairs) {
  const CsrGraph g = build_csr(6, complete(6));
  EXPECT_EQ(g.num_edges(), 30U);
  for (vid_t v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5U);
}

TEST(Analysis, ComponentsAndIsolated) {
  // Two triangles and two isolated vertices.
  const CsrGraph g =
      build_csr(8, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  EXPECT_EQ(count_components(g), 4U);
  EXPECT_EQ(count_isolated(g), 2U);
}

TEST(Analysis, DegreeReportOnStencil) {
  const CsrGraph g = build_csr(25, stencil2d(5, 5));
  const DegreeReport r = analyze_degrees(g);
  EXPECT_EQ(r.min_degree, 2U);
  EXPECT_EQ(r.max_degree, 4U);
  EXPECT_NEAR(r.avg_degree, static_cast<double>(g.num_edges()) / 25.0, 1e-12);
  EXPECT_GT(r.degree_variance, 0.0);
}

}  // namespace
