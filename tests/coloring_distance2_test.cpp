// Distance-2 coloring tests: verification semantics, sequential greedy,
// and the speculative GPU scheme.

#include <gtest/gtest.h>

#include "check_coloring.hpp"
#include "coloring/distance2.hpp"
#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace speckle;
using namespace speckle::coloring;
using speckle::testing::IsProperColoring;
using graph::build_csr;
using graph::CsrGraph;
using graph::vid_t;

TEST(VerifyD2, RejectsDistanceTwoClash) {
  // Path 0-1-2: vertices 0 and 2 are at distance 2.
  const CsrGraph g = build_csr(3, {{0, 1}, {1, 2}});
  Coloring d1_ok_d2_bad = {1, 2, 1};
  EXPECT_FALSE(verify_coloring_d2(g, d1_ok_d2_bad).proper);
  Coloring ok = {1, 2, 3};
  EXPECT_TRUE(verify_coloring_d2(g, ok).proper);
}

TEST(SeqD2, PathNeedsThreeColors) {
  const CsrGraph g = build_csr(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const SeqD2Result r = seq_greedy_d2(g);
  EXPECT_TRUE(verify_coloring_d2(g, r.coloring).proper);
  EXPECT_EQ(r.num_colors, 3U);
}

TEST(SeqD2, StarNeedsNColors) {
  // All leaves of a star are pairwise at distance 2: n colors.
  graph::EdgeList edges;
  for (vid_t v = 1; v < 20; ++v) edges.push_back({0, v});
  const CsrGraph g = build_csr(20, edges);
  const SeqD2Result r = seq_greedy_d2(g);
  EXPECT_TRUE(verify_coloring_d2(g, r.coloring).proper);
  EXPECT_EQ(r.num_colors, 20U);
}

TEST(SeqD2, GridUsesAtLeastFive) {
  // Interior 2D stencil vertices have 4 distance-1 + 4+ distance-2 peers.
  const CsrGraph g = build_csr(100, graph::stencil2d(10, 10));
  const SeqD2Result r = seq_greedy_d2(g);
  EXPECT_TRUE(verify_coloring_d2(g, r.coloring).proper);
  EXPECT_GE(r.num_colors, 5U);
}

struct D2Case {
  const char* name;
  CsrGraph (*make)();
};

CsrGraph d2_er() { return build_csr(400, graph::erdos_renyi(400, 1600, 7)); }
CsrGraph d2_grid() { return build_csr(225, graph::stencil2d(15, 15)); }
CsrGraph d2_grid3() { return build_csr(343, graph::stencil3d(7, 7, 7)); }
CsrGraph d2_local() { return build_csr(500, graph::local_random(500, 1, 5, 40, 3)); }
CsrGraph d2_ring() { return build_csr(301, graph::ring_lattice(301, 2)); }

class GpuD2Sweep : public ::testing::TestWithParam<D2Case> {};

TEST_P(GpuD2Sweep, ProperAndCloseToSequential) {
  const CsrGraph g = GetParam().make();
  const SeqD2Result seq = seq_greedy_d2(g);
  const GpuResult gpu = topo_color_d2(g);
  EXPECT_TRUE(verify_coloring_d2(g, gpu.coloring).proper) << GetParam().name;
  EXPECT_GE(gpu.iterations, 1U);
  // Speculative quality tracks the sequential greedy loosely.
  EXPECT_LE(gpu.num_colors, 2 * seq.num_colors) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, GpuD2Sweep,
    ::testing::Values(D2Case{"er", d2_er}, D2Case{"grid", d2_grid},
                      D2Case{"grid3", d2_grid3}, D2Case{"local", d2_local},
                      D2Case{"ring", d2_ring}),
    [](const ::testing::TestParamInfo<D2Case>& info) { return info.param.name; });

TEST(GpuD2, DistanceTwoStrongerThanDistanceOne) {
  // Every valid D2 coloring is a valid D1 coloring, and needs >= as many
  // colors as the D1 greedy on the same graph.
  const CsrGraph g = d2_grid();
  const GpuResult gpu = topo_color_d2(g);
  EXPECT_TRUE(IsProperColoring(g, gpu.coloring));
  EXPECT_GE(gpu.num_colors, 5U);
}

TEST(GpuD2, Deterministic) {
  const CsrGraph g = d2_er();
  const GpuResult a = topo_color_d2(g);
  const GpuResult b = topo_color_d2(g);
  EXPECT_EQ(a.coloring, b.coloring);
  EXPECT_EQ(a.model_ms, b.model_ms);
}

TEST(GpuD2, BfsOracleConfirmsDistanceTwoProperty) {
  // Independent oracle: for every vertex, no vertex within BFS radius 2
  // shares its color.
  const CsrGraph g = d2_local();
  const GpuResult r = topo_color_d2(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (vid_t u : graph::neighborhood(g, v, 2)) {
      ASSERT_NE(r.coloring[v], r.coloring[u]) << v << " vs " << u;
    }
  }
}

TEST(GpuD2, EmptyGraph) {
  const GpuResult r = topo_color_d2(CsrGraph());
  EXPECT_EQ(r.num_colors, 0U);
}

}  // namespace
