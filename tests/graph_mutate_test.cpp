/// \file graph_mutate_test.cpp
/// Edge-mutation batches over CsrGraph (graph/mutate.hpp): symmetric
/// insert/delete application, skip accounting, in-batch ordering semantics,
/// and CSR invariant preservation under randomized batches.

#include <gtest/gtest.h>

#include <random>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/mutate.hpp"
#include "graph/suite.hpp"

namespace speckle::graph {
namespace {

CsrGraph path4() {
  // 0-1-2-3
  return build_csr(4, {{0, 1}, {1, 2}, {2, 3}});
}

TEST(Mutate, InsertAddsBothArcs) {
  const CsrGraph g = path4();
  const MutationOutcome out =
      apply_mutations(g, {{EdgeMutation::Kind::kInsert, 0, 3}});
  EXPECT_EQ(out.applied, 1U);
  EXPECT_EQ(out.skipped, 0U);
  EXPECT_EQ(out.graph.num_edges(), g.num_edges() + 2);
  EXPECT_TRUE(out.graph.has_edge(0, 3));
  EXPECT_TRUE(out.graph.has_edge(3, 0));
  ASSERT_EQ(out.inserted.size(), 1U);
  EXPECT_EQ(out.inserted[0], (Edge{0, 3}));
  EXPECT_TRUE(out.graph.is_symmetric());
}

TEST(Mutate, DeleteRemovesBothArcs) {
  const CsrGraph g = path4();
  const MutationOutcome out =
      apply_mutations(g, {{EdgeMutation::Kind::kDelete, 2, 1}});
  EXPECT_EQ(out.applied, 1U);
  EXPECT_EQ(out.graph.num_edges(), g.num_edges() - 2);
  EXPECT_FALSE(out.graph.has_edge(1, 2));
  EXPECT_FALSE(out.graph.has_edge(2, 1));
  EXPECT_TRUE(out.inserted.empty());
}

TEST(Mutate, SkipsLoopsOutOfRangeDuplicatesAndMissing) {
  const CsrGraph g = path4();
  const MutationOutcome out = apply_mutations(
      g, {{EdgeMutation::Kind::kInsert, 1, 1},     // self loop
          {EdgeMutation::Kind::kInsert, 0, 9},     // out of range
          {EdgeMutation::Kind::kInsert, 0, 1},     // already present
          {EdgeMutation::Kind::kDelete, 0, 2}});   // not present
  EXPECT_EQ(out.applied, 0U);
  EXPECT_EQ(out.skipped, 4U);
  EXPECT_EQ(out.graph.num_edges(), g.num_edges());
}

TEST(Mutate, InsertThenDeleteNetsOut) {
  const CsrGraph g = path4();
  const MutationOutcome out =
      apply_mutations(g, {{EdgeMutation::Kind::kInsert, 0, 2},
                          {EdgeMutation::Kind::kDelete, 2, 0}});
  EXPECT_EQ(out.applied, 2U);  // both mutations were valid when applied
  EXPECT_FALSE(out.graph.has_edge(0, 2));
  EXPECT_TRUE(out.inserted.empty());  // nothing net-new for conflict analysis
  EXPECT_EQ(out.graph.num_edges(), g.num_edges());
}

TEST(Mutate, DeleteThenReinsertKeepsEdge) {
  const CsrGraph g = path4();
  const MutationOutcome out =
      apply_mutations(g, {{EdgeMutation::Kind::kDelete, 0, 1},
                          {EdgeMutation::Kind::kInsert, 1, 0}});
  EXPECT_EQ(out.applied, 2U);
  EXPECT_TRUE(out.graph.has_edge(0, 1));
  EXPECT_EQ(out.graph.num_edges(), g.num_edges());
  // The edge survives, but it is not *new* — no conflict candidates.
  EXPECT_TRUE(out.inserted.empty());
}

TEST(Mutate, RandomBatchesPreserveInvariants) {
  CsrGraph g = make_suite_graph("Hamrle3", 512, 0x5eed);
  std::mt19937_64 rng(7);
  const vid_t n = g.num_vertices();
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<EdgeMutation> muts;
    for (int i = 0; i < 40; ++i) {
      EdgeMutation m;
      m.kind = (rng() & 1U) != 0 ? EdgeMutation::Kind::kInsert
                                 : EdgeMutation::Kind::kDelete;
      m.u = static_cast<vid_t>(rng() % n);
      m.v = static_cast<vid_t>(rng() % n);
      muts.push_back(m);
    }
    MutationOutcome out = apply_mutations(g, muts);
    EXPECT_EQ(out.applied + out.skipped, muts.size());
    EXPECT_TRUE(out.graph.is_symmetric());
    for (const Edge& e : out.inserted) {
      EXPECT_LT(e.src, e.dst);
      EXPECT_TRUE(out.graph.has_edge(e.src, e.dst));
      EXPECT_FALSE(g.has_edge(e.src, e.dst));
    }
    g = std::move(out.graph);
  }
}

}  // namespace
}  // namespace speckle::graph
