// Bipartite patterns and partial distance-2 coloring, including the
// equivalence theorem with the column intersection graph.

#include <gtest/gtest.h>

#include "check_coloring.hpp"
#include "coloring/partial_d2.hpp"
#include "coloring/seq_greedy.hpp"
#include "graph/bipartite.hpp"

namespace {

using namespace speckle;
using namespace speckle::coloring;
using speckle::testing::IsProperColoring;
using graph::Nonzero;
using graph::SparsePattern;
using graph::vid_t;

SparsePattern small_pattern() {
  // rows: {0,1}, {1,2}, {3}
  return SparsePattern(3, 4, {{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 3}});
}

TEST(SparsePattern, RowColAccessAndDedup) {
  const SparsePattern p(2, 3, {{0, 1}, {0, 1}, {1, 0}, {1, 2}});
  EXPECT_EQ(p.num_nonzeros(), 3U);  // duplicate (0,1) removed
  ASSERT_EQ(p.row(0).size(), 1U);
  EXPECT_EQ(p.row(0)[0], 1U);
  ASSERT_EQ(p.col(1).size(), 1U);
  EXPECT_EQ(p.col(1)[0], 0U);
  ASSERT_EQ(p.row(1).size(), 2U);
}

TEST(SparsePattern, TransposeIsConsistent) {
  const SparsePattern p = graph::random_pattern(50, 40, 4, 9);
  for (vid_t r = 0; r < p.num_rows(); ++r) {
    for (vid_t c : p.row(r)) {
      const auto rows = p.col(c);
      EXPECT_TRUE(std::find(rows.begin(), rows.end(), r) != rows.end());
    }
  }
}

TEST(SparsePatternDeathTest, RejectsOutOfRange) {
  EXPECT_DEATH(SparsePattern(2, 2, {{5, 0}}), "out of range");
}

TEST(ColumnIntersection, SmallPattern) {
  const auto g = column_intersection_graph(small_pattern());
  EXPECT_TRUE(g.has_edge(0, 1));   // share row 0
  EXPECT_TRUE(g.has_edge(1, 2));   // share row 1
  EXPECT_FALSE(g.has_edge(0, 2));  // no shared row
  EXPECT_EQ(g.degree(3), 0U);      // column 3 alone in row 2
}

TEST(PartialD2, GreedyColorsSmallPattern) {
  const PartialD2Result r = partial_d2_greedy(small_pattern());
  EXPECT_TRUE(verify_partial_d2(small_pattern(), r.coloring).proper);
  EXPECT_EQ(r.num_colors, 2U);  // {0,2,3} vs {1}
}

TEST(PartialD2, VerifierCatchesRowClash) {
  Coloring bad = {1, 2, 1, 1};
  EXPECT_TRUE(verify_partial_d2(small_pattern(), bad).proper);  // actually valid
  bad = {1, 1, 2, 1};                                           // row 0 clash
  EXPECT_FALSE(verify_partial_d2(small_pattern(), bad).proper);
}

class PatternSweep : public ::testing::TestWithParam<int> {};

TEST_P(PatternSweep, EquivalenceWithIntersectionGraphColoring) {
  // Theorem: a column coloring is partial-D2-proper on the pattern iff it
  // is distance-1 proper on the column intersection graph. Check both
  // directions with the two greedy algorithms' outputs.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const SparsePattern p = graph::random_pattern(300, 200, 4, seed);
  const auto g = column_intersection_graph(p);

  const PartialD2Result direct = partial_d2_greedy(p);
  EXPECT_TRUE(verify_partial_d2(p, direct.coloring).proper);
  EXPECT_TRUE(IsProperColoring(g, direct.coloring));

  const SeqResult via_graph = seq_greedy(g, {.charge_model = false});
  EXPECT_TRUE(verify_partial_d2(p, via_graph.coloring).proper);

  // Same greedy rule, same visit order, same forbidden sets: identical.
  EXPECT_EQ(direct.coloring, via_graph.coloring);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternSweep, ::testing::Range(0, 10));

TEST(PartialD2, CompressionBound) {
  // Colors needed is at least the densest row's nonzero count.
  const SparsePattern p = graph::random_pattern(500, 300, 6, 3);
  vid_t densest = 0;
  for (vid_t r = 0; r < p.num_rows(); ++r) {
    densest = std::max(densest, static_cast<vid_t>(p.row(r).size()));
  }
  const PartialD2Result r = partial_d2_greedy(p);
  EXPECT_GE(r.num_colors, densest);
}

}  // namespace
