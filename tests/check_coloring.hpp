#pragma once
/// \file check_coloring.hpp
/// Shared conformance oracle for every coloring test in the suite.
///
/// All coloring tests — sequential, parallel, GPU, extension, and
/// multi-device — must validate results through the same predicate, so a
/// scheme cannot pass by being checked against a weaker local definition
/// of "valid". The oracle is independent of the schemes under test: it
/// walks the CSR directly rather than trusting coloring::verify_coloring
/// (which the library itself implements and could share a bug with).
///
/// Use with EXPECT_TRUE/ASSERT_TRUE; failures print the first offending
/// vertex or edge:
///
///   EXPECT_TRUE(IsProperColoring(g, result.coloring));
///   EXPECT_TRUE(IsGreedyColoring(g, result.coloring));  // also bounds Δ+1

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "coloring/coloring.hpp"
#include "graph/csr_graph.hpp"

namespace speckle::testing {

/// Every vertex colored (no kUncolored) and no monochromatic edge.
inline ::testing::AssertionResult IsProperColoring(
    const graph::CsrGraph& g, const coloring::Coloring& coloring) {
  if (coloring.size() != g.num_vertices()) {
    return ::testing::AssertionFailure()
           << "coloring has " << coloring.size() << " entries for "
           << g.num_vertices() << " vertices";
  }
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    if (coloring[v] == coloring::kUncolored) {
      return ::testing::AssertionFailure()
             << "vertex " << v << " is uncolored";
    }
  }
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const graph::vid_t w : g.neighbors(v)) {
      if (coloring[v] == coloring[w]) {
        return ::testing::AssertionFailure()
               << "monochromatic edge (" << v << ", " << w << "): both color "
               << coloring[v];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Proper, and uses at most Δ+1 colors — the bound every greedy
/// (first-fit / speculative-greedy) scheme must satisfy regardless of
/// vertex order, partitioning, or conflict-resolution history.
inline ::testing::AssertionResult IsGreedyColoring(
    const graph::CsrGraph& g, const coloring::Coloring& coloring) {
  const ::testing::AssertionResult proper = IsProperColoring(g, coloring);
  if (!proper) return proper;
  const coloring::color_t used =
      coloring.empty() ? 0 : *std::max_element(coloring.begin(), coloring.end());
  const coloring::color_t bound = g.max_degree() + 1;
  if (used > bound) {
    return ::testing::AssertionFailure()
           << "uses " << used << " colors; greedy bound is max_degree + 1 = "
           << bound;
  }
  return ::testing::AssertionSuccess();
}

}  // namespace speckle::testing
