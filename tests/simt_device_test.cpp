// End-to-end simulator tests: functional kernel execution, the __ldg and
// scan-push mechanisms, racy-store visibility, occupancy/block-size timing
// effects, transfers, and stall accounting.

#include <gtest/gtest.h>

#include <numeric>

#include "simt/device.hpp"
#include "simt/worklist.hpp"

namespace {

using namespace speckle::simt;

TEST(Device, BufferAddressesAreDisjointAndAligned) {
  Device dev;
  auto a = dev.alloc<std::uint32_t>(100);
  auto b = dev.alloc<std::uint32_t>(100);
  EXPECT_EQ(a.base_addr() % 256, 0U);
  EXPECT_EQ(b.base_addr() % 256, 0U);
  EXPECT_GE(b.base_addr(), a.base_addr() + 100 * sizeof(std::uint32_t));
  EXPECT_EQ(a.addr_of(3), a.base_addr() + 12);
}

TEST(Device, VectorAddIsFunctionallyCorrect) {
  Device dev;
  const std::size_t n = 1000;
  auto a = dev.alloc<std::uint32_t>(n);
  auto b = dev.alloc<std::uint32_t>(n);
  auto c = dev.alloc<std::uint32_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<std::uint32_t>(i);
    b[i] = static_cast<std::uint32_t>(2 * i);
  }
  dev.launch({.grid_blocks = 8, .block_threads = 128}, "vadd", [&](Thread& t) {
    const auto i = t.global_id();
    if (i >= n) return;
    t.st(c, i, t.ld(a, i) + t.ld(b, i));
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(c[i], 3 * i);
}

TEST(Device, KernelStatsCountTransactions) {
  Device dev;
  const std::size_t n = 1024;
  auto src = dev.alloc<std::uint32_t>(n);
  auto dst = dev.alloc<std::uint32_t>(n);
  const auto& stats =
      dev.launch({.grid_blocks = 8, .block_threads = 128}, "copy", [&](Thread& t) {
        const auto i = t.global_id();
        if (i >= n) return;
        t.st(dst, i, t.ld(src, i));
      });
  // 1024 coalesced 4-byte loads = 32 lanes/line -> 32 read transactions.
  EXPECT_EQ(stats.gld_transactions, n / 32);
  EXPECT_EQ(stats.gst_transactions, n / 32);
  EXPECT_GT(stats.cycles, 0U);
  EXPECT_GT(stats.warp_insts, 0U);
}

TEST(Device, LdgPopulatesRoCounters) {
  Device dev;
  const std::size_t n = 1024;
  auto src = dev.alloc<std::uint32_t>(n);
  auto dst = dev.alloc<std::uint32_t>(n);
  // Two reads of the same element per thread: second hits the RO cache.
  const auto& stats =
      dev.launch({.grid_blocks = 8, .block_threads = 128}, "ldg2x", [&](Thread& t) {
        const auto i = t.global_id();
        if (i >= n) return;
        const auto x = t.ldg(src, i);
        const auto y = t.ldg(src, i);
        t.st(dst, i, x + y);
      });
  EXPECT_EQ(stats.ro_hits + stats.ro_misses, 2 * n / 32);
  EXPECT_EQ(stats.ro_hits, n / 32);  // the second access per line
}

TEST(Device, PlainLoadsDoNotTouchRoCounters) {
  Device dev;
  auto src = dev.alloc<std::uint32_t>(256);
  auto dst = dev.alloc<std::uint32_t>(256);
  const auto& stats =
      dev.launch({.grid_blocks = 2, .block_threads = 128}, "ld", [&](Thread& t) {
        t.st(dst, t.global_id(), t.ld(src, t.global_id()));
      });
  EXPECT_EQ(stats.ro_hits + stats.ro_misses, 0U);
}

TEST(Device, AtomicAddIsSequentiallyConsistentFunctionally) {
  Device dev;
  auto counter = dev.alloc<std::uint32_t>(1);
  counter[0] = 0;
  dev.launch({.grid_blocks = 4, .block_threads = 64}, "count",
             [&](Thread& t) { t.atomic_add(counter, 0, 1U); });
  EXPECT_EQ(counter[0], 256U);
}

TEST(Device, AtomicCasAndMinMax) {
  Device dev;
  auto cell = dev.alloc<std::uint32_t>(3);
  cell[0] = 10;
  cell[1] = 10;
  cell[2] = 10;
  dev.launch({.grid_blocks = 1, .block_threads = 1}, "rmw", [&](Thread& t) {
    EXPECT_EQ(t.atomic_min(cell, 0, 3U), 10U);
    EXPECT_EQ(t.atomic_max(cell, 1, 99U), 10U);
    EXPECT_EQ(t.atomic_cas(cell, 2, 10U, 42U), 10U);
    EXPECT_EQ(t.atomic_cas(cell, 2, 10U, 7U), 42U);  // fails: not 10 anymore
  });
  EXPECT_EQ(cell[0], 3U);
  EXPECT_EQ(cell[1], 99U);
  EXPECT_EQ(cell[2], 42U);
}

TEST(Device, StRacyInvisibleWithinWarpVisibleAfter) {
  Device dev;
  const std::uint32_t n = 64;  // two warps in one block
  auto data = dev.alloc<std::uint32_t>(n);
  auto seen = dev.alloc<std::uint32_t>(n);
  data.fill(0);
  dev.launch({.grid_blocks = 1, .block_threads = n}, "racy", [&](Thread& t) {
    const auto i = t.global_id();
    // Every thread reads its left neighbor's slot, then racy-writes its own.
    const std::uint32_t left = i > 0 ? t.ld(data, i - 1) : 0;
    t.st(seen, i, left);
    t.st_racy(data, i, 1U);
  });
  // Lanes 1..31 of warp 0 read lane 0..30's writes -> must see 0 (deferred).
  for (std::uint32_t i = 1; i < 32; ++i) EXPECT_EQ(seen[i], 0U) << i;
  // Lane 32 (warp 1) reads lane 31's slot AFTER warp 0 retired -> sees 1.
  EXPECT_EQ(seen[32], 1U);
  // All writes landed eventually.
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(data[i], 1U);
}

TEST(Device, ScanPushCompactsInThreadOrderWithOneAtomic) {
  Device dev;
  const std::uint32_t n = 256;
  Worklist wl(dev, n);
  const auto& stats =
      dev.launch({.grid_blocks = 2, .block_threads = 128}, "push", [&](Thread& t) {
        const auto i = static_cast<std::uint32_t>(t.global_id());
        if (i % 3 == 0) t.scan_push(wl, i);
      });
  // Functional: every multiple of 3, in order within each block.
  ASSERT_EQ(wl.size(), (n + 2) / 3);
  const auto items = wl.host_items();
  std::vector<std::uint32_t> sorted(items.begin(), items.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t k = 0; k < sorted.size(); ++k) EXPECT_EQ(sorted[k], 3 * k);
  // Timing: exactly ONE tail atomic per block (Fig 5's whole point).
  EXPECT_EQ(stats.atomics, 2U);
}

TEST(Device, ScanPushOrderIsBlockMajorThreadOrder) {
  Device dev;
  Worklist wl(dev, 64);
  dev.launch({.grid_blocks = 1, .block_threads = 64}, "push_all",
             [&](Thread& t) { t.scan_push(wl, static_cast<std::uint32_t>(t.global_id())); });
  const auto items = wl.host_items();
  ASSERT_EQ(items.size(), 64U);
  for (std::uint32_t i = 0; i < 64; ++i) EXPECT_EQ(items[i], i);
}

TEST(Device, PerItemAtomicPushCostsMoreAtomics) {
  Device dev;
  Worklist scan_wl(dev, 1024), atomic_wl(dev, 1024);
  // Copy, not reference: the next launch grows the report's kernel vector
  // and would invalidate a reference (TSan catches the stale read).
  const auto scan_stats =
      dev.launch({.grid_blocks = 8, .block_threads = 128}, "scan", [&](Thread& t) {
        t.scan_push(scan_wl, static_cast<std::uint32_t>(t.global_id()));
      });
  const auto& atomic_stats =
      dev.launch({.grid_blocks = 8, .block_threads = 128}, "atomic", [&](Thread& t) {
        const auto slot = t.atomic_add(atomic_wl.tail(), 0, 1U);
        t.st(atomic_wl.items(), slot, static_cast<std::uint32_t>(t.global_id()));
      });
  EXPECT_EQ(scan_wl.size(), atomic_wl.size());
  EXPECT_EQ(scan_stats.atomics, 8U);      // one per block
  EXPECT_EQ(atomic_stats.atomics, 1024U);  // one per item
  // Same-address serialization makes the per-item variant slower.
  EXPECT_GT(atomic_stats.cycles, scan_stats.cycles);
}

TEST(Device, PhasedLaunchSynchronizesSharedMemory) {
  Device dev;
  const std::uint32_t block = 128;
  auto out = dev.alloc<std::uint32_t>(block);
  // Phase 1: each thread writes its id to scratchpad; phase 2: each thread
  // reads its neighbor's slot — correct only if the barrier worked.
  std::vector<Kernel> phases = {
      [&](Thread& t) { t.shared_st(t.thread_in_block(), t.thread_in_block() + 100); },
      [&](Thread& t) {
        const auto other = (t.thread_in_block() + 1) % block;
        t.st(out, t.thread_in_block(), t.shared_ld(other));
      },
  };
  dev.launch_phased({.grid_blocks = 1,
                     .block_threads = block,
                     .regs_per_thread = 32,
                     .smem_bytes_per_block = block * 4},
                    "phased", phases);
  for (std::uint32_t i = 0; i < block; ++i) EXPECT_EQ(out[i], (i + 1) % block + 100);
}

TEST(Device, BlockSize32CannotHideLatency) {
  // A latency-bound dependent-chase kernel: 32-thread blocks put few warps
  // on each SM, so the chase latency cannot be hidden by interleaving and
  // the grid needs many more waves (Fig 8's left edge).
  auto run = [&](std::uint32_t block) {
    Device dev(DeviceConfig::k20c().scaled(64));  // DRAM-resident working set
    const std::uint32_t n = 1 << 16;
    auto idx = dev.alloc<std::uint32_t>(n);
    auto out = dev.alloc<std::uint32_t>(n);
    for (std::uint32_t i = 0; i < n; ++i) idx[i] = i;
    const auto& stats = dev.launch(
        {.grid_blocks = n / block, .block_threads = block}, "chain", [&](Thread& t) {
          const auto i = static_cast<std::uint32_t>(t.global_id());
          // Four serially-dependent, warp-coalesced loads: pure latency,
          // negligible bandwidth — hiding capacity is all that matters.
          std::uint32_t acc = 0;
          for (std::uint32_t hop = 0; hop < 4; ++hop) {
            acc += t.ld(idx, (i + hop * (n / 4)) % n);
            t.compute(2);
          }
          t.st(out, i, acc);
        });
    return stats.cycles;
  };
  EXPECT_GT(run(32), run(128));
}

TEST(Device, StallBreakdownAccountsAllCycles) {
  Device dev;
  const std::uint32_t n = 1 << 14;
  auto src = dev.alloc<std::uint32_t>(n);
  auto dst = dev.alloc<std::uint32_t>(n);
  const auto& stats =
      dev.launch({.grid_blocks = n / 128, .block_threads = 128}, "s", [&](Thread& t) {
        const auto i = t.global_id();
        t.st(dst, i, t.ld(src, i) + 1);
      });
  double accounted = stats.stalls.busy;
  for (std::size_t r = 0; r < stats.stalls.cycles.size(); ++r) {
    accounted += stats.stalls.cycles[r];
  }
  // busy + stalls >= total issue opportunities observed (gaps are counted
  // once per stalled SM, busy in issue-slots) — sanity: nothing negative,
  // total positive, and memory dependency dominates for this kernel.
  EXPECT_GT(stats.stalls.total, 0.0);
  const auto mem_frac = stats.stalls.fraction(Stall::kMemoryDependency);
  const auto exec_frac = stats.stalls.fraction(Stall::kExecutionDependency);
  EXPECT_GT(mem_frac, exec_frac);
}

TEST(Device, TransfersChargePcieModel) {
  Device dev;
  const auto before = dev.timeline_cycles();
  dev.copy_to_device(1 << 20);
  const auto after_h2d = dev.timeline_cycles();
  EXPECT_GT(after_h2d, before);
  dev.copy_to_host(1 << 20);
  EXPECT_GT(dev.timeline_cycles(), after_h2d);
  EXPECT_EQ(dev.report().h2d.bytes, 1U << 20);
  EXPECT_EQ(dev.report().h2d.count, 1U);
  // Bigger transfers cost more; latency floor applies to small ones.
  Device dev2;
  dev2.copy_to_device(64);
  const auto small = dev2.timeline_cycles();
  EXPECT_GE(small, dev2.config().us_to_cycles(dev2.config().pcie_latency_us));
}

TEST(Device, ResetReportClearsTimeline) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(128);
  dev.launch({.grid_blocks = 1, .block_threads = 128}, "k",
             [&](Thread& t) { t.st(buf, t.global_id(), 1U); });
  EXPECT_GT(dev.timeline_cycles(), 0U);
  dev.reset_report();
  EXPECT_EQ(dev.timeline_cycles(), 0U);
  EXPECT_TRUE(dev.report().kernels.empty());
}

TEST(Device, MoreDataMoreCycles) {
  auto run = [&](std::uint32_t n) {
    Device dev;
    auto src = dev.alloc<std::uint32_t>(n);
    auto dst = dev.alloc<std::uint32_t>(n);
    const auto& stats = dev.launch({.grid_blocks = n / 128, .block_threads = 128},
                                   "copy", [&](Thread& t) {
                                     const auto i = t.global_id();
                                     t.st(dst, i, t.ld(src, i));
                                   });
    return stats.cycles;
  };
  EXPECT_GT(run(1 << 16), run(1 << 13));
}

TEST(Device, LaunchOverheadAppearsInTinyKernels) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(32);
  const auto& stats = dev.launch({.grid_blocks = 1, .block_threads = 32}, "tiny",
                                 [&](Thread& t) { t.st(buf, t.lane(), 0U); });
  EXPECT_GE(stats.cycles, dev.config().us_to_cycles(dev.config().kernel_launch_us));
}

TEST(DeviceDeathTest, EmptyGridAborts) {
  Device dev;
  EXPECT_DEATH(dev.launch({.grid_blocks = 0, .block_threads = 128}, "bad",
                          [](Thread&) {}),
               "empty grid");
}

TEST(DeviceDeathTest, WorklistOverflowAborts) {
  Device dev;
  Worklist wl(dev, 4);
  EXPECT_DEATH(dev.launch({.grid_blocks = 1, .block_threads = 32}, "overflow",
                          [&](Thread& t) {
                            t.scan_push(wl, static_cast<std::uint32_t>(t.global_id()));
                          }),
               "overflow");
}

}  // namespace
