// Memory-system tests: the __ldg path, L2 behavior, atomic serialization,
// and the epoch-overlay wave commit against a straight-replay reference.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "simt/memory.hpp"

namespace {

using namespace speckle::simt;

DeviceConfig tiny_config() {
  DeviceConfig dev = DeviceConfig::k20c();
  dev.num_sms = 2;
  return dev;
}

TEST(Memory, GlobalLoadNeverTouchesRoCache) {
  const DeviceConfig dev = tiny_config();
  MemorySystem mem(dev);
  const auto r = mem.load(0, Space::kGlobal, 0);
  EXPECT_FALSE(r.ro_hit);
  EXPECT_TRUE(r.dram);
  EXPECT_EQ(r.latency, dev.dram_latency);
  EXPECT_EQ(mem.ro_cache(0).hits() + mem.ro_cache(0).misses(), 0U);
}

TEST(Memory, SecondGlobalLoadHitsL2) {
  const DeviceConfig dev = tiny_config();
  MemorySystem mem(dev);
  mem.load(0, Space::kGlobal, 0);
  const auto r = mem.load(0, Space::kGlobal, 0);
  EXPECT_TRUE(r.l2_hit);
  EXPECT_EQ(r.latency, dev.l2_hit_latency);
}

TEST(Memory, LdgPathFillsRoCache) {
  const DeviceConfig dev = tiny_config();
  MemorySystem mem(dev);
  const auto miss = mem.load(0, Space::kReadOnly, 0);
  EXPECT_FALSE(miss.ro_hit);
  const auto hit = mem.load(0, Space::kReadOnly, 0);
  EXPECT_TRUE(hit.ro_hit);
  EXPECT_EQ(hit.latency, dev.ro_hit_latency);
  // The RO hit is much cheaper than L2/DRAM — the point of Fig 4.
  EXPECT_LT(hit.latency, miss.latency);
}

TEST(Memory, RoCachesArePerSm) {
  const DeviceConfig dev = tiny_config();
  MemorySystem mem(dev);
  mem.load(0, Space::kReadOnly, 0);
  const auto other_sm = mem.load(1, Space::kReadOnly, 0);
  EXPECT_FALSE(other_sm.ro_hit);  // SM 1's cache is cold
  EXPECT_TRUE(other_sm.l2_hit);   // but L2 is shared
}

TEST(Memory, BeginKernelInvalidatesRoOnly) {
  const DeviceConfig dev = tiny_config();
  MemorySystem mem(dev);
  mem.load(0, Space::kReadOnly, 0);
  mem.begin_kernel();
  const auto r = mem.load(0, Space::kReadOnly, 0);
  EXPECT_FALSE(r.ro_hit);  // RO cache dropped at the kernel boundary
  EXPECT_TRUE(r.l2_hit);   // L2 stays warm
}

TEST(Memory, StoreAllocatesInL2) {
  const DeviceConfig dev = tiny_config();
  MemorySystem mem(dev);
  EXPECT_TRUE(mem.store(0));   // cold: DRAM traffic
  EXPECT_FALSE(mem.store(0));  // now resident
  EXPECT_TRUE(mem.load(0, Space::kGlobal, 0).l2_hit);
}

TEST(Memory, AtomicsToSameWordSerialize) {
  const DeviceConfig dev = tiny_config();
  MemorySystem mem(dev);
  const double first = mem.atomic(64, 0.0);
  const double second = mem.atomic(64, 0.0);
  const double third = mem.atomic(64, 0.0);
  EXPECT_DOUBLE_EQ(first, dev.atomic_latency);
  EXPECT_DOUBLE_EQ(second, dev.atomic_serialize + dev.atomic_latency);
  EXPECT_DOUBLE_EQ(third, 2.0 * dev.atomic_serialize + dev.atomic_latency);
}

TEST(Memory, AtomicsToDistinctWordsDoNot) {
  const DeviceConfig dev = tiny_config();
  MemorySystem mem(dev);
  const double a = mem.atomic(0, 0.0);
  const double b = mem.atomic(4, 0.0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Memory, AtomicQueueDrainsBetweenKernels) {
  const DeviceConfig dev = tiny_config();
  MemorySystem mem(dev);
  mem.atomic(0, 0.0);
  mem.atomic(0, 0.0);
  mem.begin_kernel();
  EXPECT_DOUBLE_EQ(mem.atomic(0, 0.0), dev.atomic_latency);
}

// The epoch-overlay commit's contract: after commit_wave, master L2 tags are
// bit-identical to replaying every view's access sequence into master in SM
// order — the reference semantics the old log-replay commit implemented
// directly. Random traffic over a 3-set cache forces every path: single-owner
// page swaps, contended recency merges, invalid-filler back-fill, and the
// non-pow2 (magic division) set indexing.
TEST(WaveCommit, MatchesSequentialReplayReference) {
  DeviceConfig dev = DeviceConfig::k20c();
  dev.num_sms = 4;
  dev.l2_bytes = 128ULL * 16 * 3;  // 3 sets of 16 ways: heavy contention
  MemorySystem mem(dev);
  std::mt19937 rng(42);
  std::vector<MemorySystem::WaveView> views;
  for (std::uint32_t sm = 0; sm < dev.num_sms; ++sm) {
    views.push_back(mem.wave_view(sm));
  }
  for (int wave = 0; wave < 8; ++wave) {
    for (std::uint32_t sm = 0; sm < dev.num_sms; ++sm) {
      mem.reset_view(views[sm], sm);
    }
    const CacheModel start = mem.l2();  // frozen wave-start master image
    CacheModel ref = start;
    std::vector<std::vector<std::uint64_t>> seqs(dev.num_sms);
    for (std::uint32_t sm = 0; sm < dev.num_sms; ++sm) {
      // Each SM's view must answer exactly as a private copy of the
      // wave-start master would (that is what the old commit snapshotted).
      CacheModel snapshot = start;
      const std::size_t n = 50 + rng() % 150;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t line = (rng() % 64) * 128;
        seqs[sm].push_back(line);
        const bool hit = views[sm].load(Space::kGlobal, line).l2_hit;
        EXPECT_EQ(hit, snapshot.access(line)) << "wave " << wave << " sm " << sm;
      }
    }
    mem.commit_wave(views);
    for (std::uint32_t sm = 0; sm < dev.num_sms; ++sm) {
      for (const std::uint64_t line : seqs[sm]) ref.access(line);
    }
    const std::size_t total =
        std::size_t{ref.num_sets()} * ref.ways();
    for (std::size_t i = 0; i < total; ++i) {
      ASSERT_EQ(mem.l2().tag_data()[i], ref.tag_data()[i])
          << "wave " << wave << " tag slot " << i;
    }
  }
}

TEST(Config, ScaledShrinksCachesOnly) {
  const DeviceConfig dev = DeviceConfig::k20c();
  const DeviceConfig scaled = dev.scaled(8);
  EXPECT_EQ(scaled.l2_bytes, dev.l2_bytes / 8);
  EXPECT_LT(scaled.ro_cache_bytes, dev.ro_cache_bytes);
  EXPECT_EQ(scaled.dram_latency, dev.dram_latency);
  EXPECT_EQ(scaled.num_sms, dev.num_sms);
  // Geometry stays valid: divisible by line * ways.
  EXPECT_EQ(scaled.l2_bytes % (scaled.line_bytes * scaled.l2_ways), 0U);
}

TEST(Config, ScaledFloorsAtOneSet) {
  const DeviceConfig dev = DeviceConfig::k20c();
  const DeviceConfig scaled = dev.scaled(1 << 20);
  EXPECT_GE(scaled.ro_cache_bytes, scaled.line_bytes * scaled.ro_cache_ways);
}

TEST(Config, OccupancyRespectsLimits) {
  const DeviceConfig dev = DeviceConfig::k20c();
  // 128-thread blocks, 37 regs: register file limits to 13 blocks.
  EXPECT_EQ(occupancy_blocks_per_sm(dev, {1, 128, 37, 0}), 13U);
  // 1024-thread blocks: 65536/37/1024 = 1 block.
  EXPECT_EQ(occupancy_blocks_per_sm(dev, {1, 1024, 37, 0}), 1U);
  // Tiny blocks: capped by the 16-blocks-per-SM limit.
  EXPECT_EQ(occupancy_blocks_per_sm(dev, {1, 32, 16, 0}), 16U);
  // Scratchpad-bound: 48 KB / 24 KB = 2 blocks.
  EXPECT_EQ(occupancy_blocks_per_sm(dev, {1, 128, 16, 24 * 1024}), 2U);
}

TEST(ConfigDeathTest, OversizedBlockAborts) {
  const DeviceConfig dev = DeviceConfig::k20c();
  EXPECT_DEATH(occupancy_blocks_per_sm(dev, {1, 2048, 37, 0}), "block size");
}

}  // namespace
