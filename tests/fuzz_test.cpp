// Randomized property tests: arbitrary edge soups through the builder
// (serial and sharded-parallel, which must agree byte-for-byte) and every
// coloring scheme. Seeds are fixed, so failures reproduce exactly.

#include <gtest/gtest.h>

#include <algorithm>

#include "check_coloring.hpp"
#include "coloring/runner.hpp"
#include "graph/build_parallel.hpp"
#include "graph/builder.hpp"
#include "graph/partition.hpp"
#include "graph/permute.hpp"
#include "multidev/multidev.hpp"
#include "support/rng.hpp"
#include "support/threadpool.hpp"

namespace {

using namespace speckle;
using namespace speckle::coloring;
using graph::build_csr;
using graph::CsrGraph;
using graph::Edge;
using graph::EdgeList;
using graph::vid_t;

/// Random edge soup: duplicates, self loops, both directions, all allowed —
/// the builder must clean everything up.
CsrGraph random_soup(std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  const auto n = static_cast<vid_t>(2 + rng.next_below(600));
  const auto m = rng.next_below(4 * n + 1);
  EdgeList edges;
  for (std::uint64_t i = 0; i < m; ++i) {
    edges.push_back({static_cast<vid_t>(rng.next_below(n)),
                     static_cast<vid_t>(rng.next_below(n))});
  }
  return build_csr(n, std::move(edges));
}

class FuzzBuilder : public ::testing::TestWithParam<int> {};

TEST_P(FuzzBuilder, CsrInvariantsHold) {
  const CsrGraph g = random_soup(static_cast<std::uint64_t>(GetParam()));
  EXPECT_TRUE(g.is_symmetric());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto adj = g.neighbors(v);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      EXPECT_NE(adj[i], v);                       // no self loops
      if (i > 0) {
        EXPECT_LT(adj[i - 1], adj[i]);  // sorted, deduplicated
      }
    }
  }
}

TEST_P(FuzzBuilder, PermutationRoundTripPreservesEdges) {
  const CsrGraph g = random_soup(static_cast<std::uint64_t>(GetParam()) + 1000);
  const auto perm = support::random_permutation(
      g.num_vertices(), static_cast<std::uint64_t>(GetParam()));
  std::vector<vid_t> inverse(perm.size());
  for (vid_t v = 0; v < perm.size(); ++v) inverse[perm[v]] = v;
  const CsrGraph back =
      graph::permute(graph::permute(g, perm), std::span<const vid_t>(inverse));
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = back.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzBuilder, ::testing::Range(0, 20));

bool same_graph(const CsrGraph& a, const CsrGraph& b) {
  return std::ranges::equal(a.row_offsets(), b.row_offsets()) &&
         std::ranges::equal(a.col_indices(), b.col_indices());
}

class FuzzParallelBuild : public ::testing::TestWithParam<int> {};

TEST_P(FuzzParallelBuild, ShardedBuildMatchesSerialReferenceByteForByte) {
  // Random soup split into randomized shards (including empty ones), built
  // by build_csr_parallel at several thread counts — every result must
  // equal the serial reference build of the concatenated list exactly.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  support::Xoshiro256 rng(seed + 0xb111d);
  const auto n = static_cast<vid_t>(2 + rng.next_below(800));
  const auto m = rng.next_below(5 * static_cast<std::uint64_t>(n) + 1);
  const auto num_shards = 1 + rng.next_below(9);  // 1..9, some will be empty

  EdgeList all;
  std::vector<EdgeList> shards(num_shards);
  for (std::uint64_t i = 0; i < m; ++i) {
    const Edge e{static_cast<vid_t>(rng.next_below(n)),
                 static_cast<vid_t>(rng.next_below(n))};
    all.push_back(e);
    shards[rng.next_below(num_shards)].push_back(e);
  }
  const CsrGraph reference = build_csr(n, std::move(all));
  for (const unsigned threads : {1u, 2u, 4u}) {
    support::ThreadPool pool(threads);
    const CsrGraph parallel = graph::build_csr_parallel(n, shards, pool);
    EXPECT_TRUE(same_graph(reference, parallel)) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzParallelBuild, ::testing::Range(0, 20));

TEST(FuzzParallelBuildEdge, DegenerateShardConfigurations) {
  support::ThreadPool pool(4);
  // All shards empty: a valid 0-edge graph over n vertices.
  {
    const std::vector<EdgeList> shards(6);
    const CsrGraph g = graph::build_csr_parallel(100, shards, pool);
    EXPECT_EQ(g.num_vertices(), 100u);
    EXPECT_EQ(g.num_edges(), 0u);
    EXPECT_TRUE(g.validate());
  }
  // No shards at all.
  {
    const CsrGraph g = graph::build_csr_parallel(5, {}, pool);
    EXPECT_EQ(g.num_vertices(), 5u);
    EXPECT_EQ(g.num_edges(), 0u);
  }
  // All-duplicate edges (plus self loops): dedup collapses everything to
  // one undirected edge, exactly as the serial builder does.
  {
    std::vector<EdgeList> shards(3);
    for (auto& s : shards) {
      for (int i = 0; i < 50; ++i) {
        s.push_back({1, 2});
        s.push_back({2, 1});
        s.push_back({3, 3});  // self loop, dropped
      }
    }
    EdgeList all;
    for (const auto& s : shards) all.insert(all.end(), s.begin(), s.end());
    const CsrGraph parallel = graph::build_csr_parallel(4, shards, pool);
    const CsrGraph serial = build_csr(4, std::move(all));
    EXPECT_TRUE(same_graph(serial, parallel));
    EXPECT_EQ(parallel.num_edges(), 2u);  // 1-2 both directions
  }
  // Single hub vertex: one massively imbalanced row must not break the
  // per-row canonicalization or the counting sort.
  {
    std::vector<EdgeList> shards(4);
    const vid_t n = 5000;
    for (vid_t v = 1; v < n; ++v) shards[v % 4].push_back({0, v});
    EdgeList all;
    for (const auto& s : shards) all.insert(all.end(), s.begin(), s.end());
    const CsrGraph parallel = graph::build_csr_parallel(n, shards, pool);
    const CsrGraph serial = build_csr(n, std::move(all));
    EXPECT_TRUE(same_graph(serial, parallel));
    EXPECT_EQ(parallel.degree(0), n - 1);
  }
}

class FuzzSchemes : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSchemes, EverySchemeProperOnRandomGraph) {
  const CsrGraph g = random_soup(static_cast<std::uint64_t>(GetParam()) + 5000);
  RunOptions opts;
  opts.seed = static_cast<std::uint64_t>(GetParam());
  for (Scheme s : all_schemes()) {
    // run_scheme verifies internally and aborts on an improper result.
    const RunResult r = run_scheme(s, g, opts);
    EXPECT_EQ(r.coloring.size(), g.num_vertices()) << scheme_name(s);
    if (g.num_edges() > 0) {
      EXPECT_GE(r.num_colors, 2U) << scheme_name(s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSchemes, ::testing::Range(0, 8));

class FuzzMultiDev : public ::testing::TestWithParam<int> {};

TEST_P(FuzzMultiDev, ShardedColoringProperWithConsistentGhosts) {
  // Random graph x random fleet size x all three partitioners, with the
  // ghost consistency invariant checked after every exchange (verify_ghosts)
  // and the result judged by the shared oracle. Exercises empty shards (P
  // can exceed n), heavily cut partitions (hash), and BFS block growth over
  // disconnected soup.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const CsrGraph g = random_soup(seed + 9000);
  support::Xoshiro256 rng(seed ^ 0xf122u);
  multidev::MultiDevOptions opts;
  opts.num_devices = static_cast<std::uint32_t>(2 + rng.next_below(7));
  constexpr graph::PartitionKind kKinds[] = {graph::PartitionKind::kContiguous,
                                             graph::PartitionKind::kHash,
                                             graph::PartitionKind::kBfsBlocks};
  opts.partitioner = kKinds[rng.next_below(3)];
  opts.use_ldg = (rng.next_below(2) == 0);
  opts.scan_push = (rng.next_below(2) == 0);
  opts.defer_rounds = static_cast<std::uint32_t>(rng.next_below(3));
  opts.seed = seed + 1;  // hash partitioner seed; must stay nonzero
  opts.verify_ghosts = true;

  const multidev::MultiDevResult r = multidev::multidev_color(g, opts);
  EXPECT_TRUE(speckle::testing::IsGreedyColoring(g, r.coloring))
      << "P=" << opts.num_devices << " "
      << graph::partition_kind_name(opts.partitioner);
  EXPECT_EQ(r.devices.size(), opts.num_devices);
  std::uint64_t sent = 0;
  std::uint64_t recv = 0;
  for (const auto& d : r.devices) {
    sent += d.sent_colors;
    recv += d.recv_colors;
  }
  EXPECT_EQ(sent, recv);  // both sides count one record per ghost copy
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMultiDev, ::testing::Range(0, 12));

TEST(Fuzz, SchemesAgreeThatColoringIsOrderingDependentNotCorrectness) {
  // Relabeling a graph changes every scheme's coloring but never its
  // validity — and color counts stay within the greedy bound.
  const CsrGraph g = random_soup(424242);
  const CsrGraph h = graph::permute_random(g, 7);
  for (Scheme s : {Scheme::kDataBase, Scheme::kTopoBase, Scheme::kCsrColor}) {
    const RunResult rg = run_scheme(s, g);
    const RunResult rh = run_scheme(s, h);
    if (s != Scheme::kCsrColor) {
      EXPECT_LE(rg.num_colors, g.max_degree() + 1);
      EXPECT_LE(rh.num_colors, h.max_degree() + 1);
    }
  }
}

}  // namespace
