// Scale-stability of the suite factory: the per-vertex structure that the
// experiments depend on must not drift as --denom changes.

#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/suite.hpp"

namespace {

using namespace speckle::graph;

class SuiteScale : public ::testing::TestWithParam<const char*> {};

TEST_P(SuiteScale, AverageDegreeStableAcrossScales) {
  const std::string name = GetParam();
  const DegreeReport coarse = analyze_degrees(make_suite_graph(name, 128));
  const DegreeReport fine = analyze_degrees(make_suite_graph(name, 32));
  // Boundary effects shrink as graphs grow, so allow 20% drift.
  EXPECT_NEAR(coarse.avg_degree, fine.avg_degree, 0.20 * fine.avg_degree) << name;
}

TEST_P(SuiteScale, VertexCountScalesByDenomRatio) {
  const std::string name = GetParam();
  const auto coarse = make_suite_graph(name, 128).num_vertices();
  const auto fine = make_suite_graph(name, 32).num_vertices();
  const double ratio = static_cast<double>(fine) / coarse;
  EXPECT_NEAR(ratio, 4.0, 1.0) << name;  // grid rounding allows some slack
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, SuiteScale,
                         ::testing::Values("rmat-er", "rmat-g", "thermal2",
                                           "atmosmodd", "Hamrle3", "G3_circuit"));

TEST(SuiteScale, SeedChangesRandomTwinsOnly) {
  // Random generators react to the seed; pure stencils do not.
  EXPECT_NE(make_suite_graph("rmat-er", 128, 1).col_indices().size(),
            0U);  // sanity
  const CsrGraph a = make_suite_graph("Hamrle3", 128, 1);
  const CsrGraph b = make_suite_graph("Hamrle3", 128, 2);
  EXPECT_NE(a.num_edges(), b.num_edges());
  const CsrGraph s1 = make_suite_graph("atmosmodd", 128, 1);
  const CsrGraph s2 = make_suite_graph("atmosmodd", 128, 2);
  EXPECT_EQ(s1.num_edges(), s2.num_edges());  // deterministic stencil
}

}  // namespace
