// Tests for the Table I benchmark-suite factory: the structural twins must
// land near the published statistics (scaled) and be fully deterministic.

#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/suite.hpp"

namespace {

using namespace speckle::graph;

TEST(Suite, HasSixEntriesInPaperOrder) {
  const auto& entries = suite_entries();
  ASSERT_EQ(entries.size(), 6U);
  EXPECT_EQ(entries[0].name, "rmat-er");
  EXPECT_EQ(entries[1].name, "rmat-g");
  EXPECT_EQ(entries[2].name, "thermal2");
  EXPECT_EQ(entries[3].name, "atmosmodd");
  EXPECT_EQ(entries[4].name, "Hamrle3");
  EXPECT_EQ(entries[5].name, "G3_circuit");
}

TEST(Suite, EntriesCarryPaperStats) {
  const SuiteEntry& e = suite_entry("thermal2");
  EXPECT_EQ(e.paper.num_vertices, 1228045U);
  EXPECT_TRUE(e.spd);
  EXPECT_EQ(e.domain, "Thermal Simulation");
}

TEST(SuiteDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(suite_entry("nope"), "unknown suite graph");
  EXPECT_DEATH(make_suite_graph("nope", 8), "unknown suite graph");
}

TEST(SuiteDeathTest, NonPowerOfTwoDenomAborts) {
  EXPECT_DEATH(make_suite_graph("rmat-er", 3), "power of two");
}

TEST(Suite, Deterministic) {
  const CsrGraph a = make_suite_graph("rmat-er", 128);
  const CsrGraph b = make_suite_graph("rmat-er", 128);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.col_indices().size(); ++i) {
    ASSERT_EQ(a.col_indices()[i], b.col_indices()[i]);
  }
}

// Structural-twin property check: at 1/64 scale the average degree must be
// within 20% of the published Table I value, and the vertex count within
// 10% of paper/64. (The bench bench_table1 prints the full side-by-side.)
class SuiteTwin : public ::testing::TestWithParam<const char*> {};

TEST_P(SuiteTwin, MatchesPublishedShape) {
  const std::string name = GetParam();
  const SuiteEntry& entry = suite_entry(name);
  const std::uint32_t denom = 64;
  const CsrGraph g = make_suite_graph(name, denom);
  const DegreeReport r = analyze_degrees(g);

  const double expected_n = static_cast<double>(entry.paper.num_vertices) / denom;
  EXPECT_NEAR(r.num_vertices, expected_n, 0.12 * expected_n) << name;
  EXPECT_NEAR(r.avg_degree, entry.paper.avg_degree, 0.20 * entry.paper.avg_degree)
      << name;
}

TEST_P(SuiteTwin, SymmetricAndLoopFree) {
  const CsrGraph g = make_suite_graph(GetParam(), 128);
  EXPECT_TRUE(g.is_symmetric());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FALSE(g.has_edge(v, v));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSuiteGraphs, SuiteTwin,
                         ::testing::Values("rmat-er", "rmat-g", "thermal2",
                                           "atmosmodd", "Hamrle3", "G3_circuit"));

}  // namespace
