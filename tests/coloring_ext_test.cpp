// Extension-scheme tests: warp-centric D-warp, largest-degree-first D-ldf,
// and 3-step GM option coverage.

#include <gtest/gtest.h>

#include "check_coloring.hpp"
#include "coloring/gm3step.hpp"
#include "coloring/runner.hpp"
#include "coloring/seq_greedy.hpp"
#include "coloring/warp.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace speckle;
using namespace speckle::coloring;
using speckle::testing::IsProperColoring;
using graph::build_csr;
using graph::CsrGraph;
using graph::vid_t;

struct GraphCase {
  const char* name;
  CsrGraph (*make)();
};

CsrGraph ext_er() { return build_csr(1500, graph::erdos_renyi(1500, 12000, 7)); }
CsrGraph ext_skew() {
  return build_csr(1 << 11, graph::rmat(11, 14000,
                                        graph::RmatParams{0.5, 0.15, 0.15, 0.2, 0.1}, 5));
}
CsrGraph ext_grid() { return build_csr(1331, graph::stencil3d(11, 11, 11)); }
CsrGraph ext_star() {
  graph::EdgeList edges;
  for (vid_t v = 1; v < 500; ++v) edges.push_back({0, v});
  return build_csr(500, edges);
}
CsrGraph ext_clique() { return build_csr(70, graph::complete(70)); }

class ExtSweep : public ::testing::TestWithParam<std::tuple<GraphCase, Scheme>> {};

TEST_P(ExtSweep, ProperColoring) {
  const auto& [graph_case, scheme] = GetParam();
  const CsrGraph g = graph_case.make();
  const RunResult r = run_scheme(scheme, g);
  EXPECT_TRUE(IsProperColoring(g, r.coloring));
  EXPECT_LE(r.num_colors, g.max_degree() + 1);
}

INSTANTIATE_TEST_SUITE_P(
    ExtSchemes, ExtSweep,
    ::testing::Combine(
        ::testing::Values(GraphCase{"er", ext_er}, GraphCase{"skew", ext_skew},
                          GraphCase{"grid", ext_grid}, GraphCase{"star", ext_star},
                          GraphCase{"clique", ext_clique}),
        ::testing::Values(Scheme::kDataWarp, Scheme::kDataLdf)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_" +
             (std::get<1>(info.param) == Scheme::kDataWarp ? "warp" : "ldf");
    });

TEST(DataWarp, CliqueExercisesWideWindowFallback) {
  // 70-clique: every vertex's forbidden set eventually exceeds the 64-color
  // cooperative window, forcing the lane-0 wide-window fallback.
  const CsrGraph g = ext_clique();
  const RunResult r = run_scheme(Scheme::kDataWarp, g);
  EXPECT_EQ(r.num_colors, 70U);
}

TEST(DataWarp, BlockSizeMustBeWarpMultiple) {
  const CsrGraph g = ext_er();
  RunOptions opts;
  opts.block_size = 48;
  EXPECT_DEATH(run_scheme(Scheme::kDataWarp, g, opts), "warp-multiple");
}

TEST(DataWarp, WorksAcrossBlockSizes) {
  const CsrGraph g = ext_skew();
  for (std::uint32_t block : {32U, 128U, 256U, 1024U}) {
    RunOptions opts;
    opts.block_size = block;
    const RunResult r = run_scheme(Scheme::kDataWarp, g, opts);
    EXPECT_TRUE(IsProperColoring(g, r.coloring)) << block;
  }
}

TEST(DataLdf, QualityAtLeastMatchesBaseOnSkewedGraph) {
  // The LDF tie-break lets hubs keep low colors; on skewed graphs it should
  // not be worse than the id tie-break (and is typically a little better).
  const CsrGraph g = ext_skew();
  const RunResult base = run_scheme(Scheme::kDataBase, g);
  const RunResult ldf = run_scheme(Scheme::kDataLdf, g);
  EXPECT_LE(ldf.num_colors, base.num_colors + 1);
}

TEST(DataLdf, Deterministic) {
  const CsrGraph g = ext_er();
  EXPECT_EQ(run_scheme(Scheme::kDataLdf, g).coloring,
            run_scheme(Scheme::kDataLdf, g).coloring);
}

TEST(Gm3Step, PartitionSizeSweepStaysProper) {
  const CsrGraph g = ext_er();
  for (std::uint32_t psize : {16U, 64U, 128U, 512U}) {
    Gm3Options opts;
    opts.partition_size = psize;
    const Gm3Result r = gm3step_color(g, opts);
    EXPECT_TRUE(IsProperColoring(g, r.coloring)) << psize;
  }
}

TEST(Gm3Step, MoreGpuRoundsLeaveFewerCpuConflicts) {
  const CsrGraph g = ext_er();
  Gm3Options one;
  one.gpu_rounds = 1;
  Gm3Options four;
  four.gpu_rounds = 4;
  const Gm3Result r1 = gm3step_color(g, one);
  const Gm3Result r4 = gm3step_color(g, four);
  EXPECT_TRUE(IsProperColoring(g, r1.coloring));
  EXPECT_TRUE(IsProperColoring(g, r4.coloring));
  EXPECT_LE(r4.cpu_resolved, r1.cpu_resolved);
}

TEST(Gm3Step, SinglePartitionIsSequentialOnDevice) {
  // One partition = one thread colors everything: no conflicts possible.
  const CsrGraph g = build_csr(128, graph::erdos_renyi(128, 512, 3));
  Gm3Options opts;
  opts.partition_size = 128;
  const Gm3Result r = gm3step_color(g, opts);
  EXPECT_EQ(r.cpu_resolved, 0U);
  const auto seq = seq_greedy(g, {.charge_model = false});
  EXPECT_EQ(r.num_colors, seq.num_colors);
}

}  // namespace
