// Cache model unit tests: hit/miss behavior, LRU replacement, associativity.

#include <gtest/gtest.h>

#include "simt/cache.hpp"

namespace {

using speckle::simt::CacheModel;

TEST(Cache, ColdMissThenHit) {
  CacheModel cache(1024, 128, 2);
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_EQ(cache.hits(), 1U);
  EXPECT_EQ(cache.misses(), 1U);
}

TEST(Cache, DistinctLinesAreIndependent) {
  CacheModel cache(1024, 128, 2);
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(128));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(128));
}

TEST(Cache, LruEvictionWithinSet) {
  // 2-way, 4 sets: lines 0, 4, 8 (in units of num_sets stride) collide.
  CacheModel cache(1024, 128, 2);  // 4 sets
  const std::uint64_t stride = 4 * 128;
  cache.access(0 * stride);  // miss, way 0
  cache.access(1 * stride);  // miss, way 1
  cache.access(0 * stride);  // hit, refreshes LRU
  cache.access(2 * stride);  // miss, evicts 1*stride (LRU)
  EXPECT_TRUE(cache.access(0 * stride));
  EXPECT_FALSE(cache.access(1 * stride));  // was evicted
}

TEST(Cache, FullyAssociativeSet) {
  CacheModel cache(512, 128, 4);  // 1 set, 4 ways
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_FALSE(cache.access(i * 128));
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(cache.access(i * 128));
  cache.access(4 * 128);                // evicts line 0 (LRU)
  EXPECT_FALSE(cache.access(0));
}

TEST(Cache, ProbeDoesNotFill) {
  CacheModel cache(1024, 128, 2);
  EXPECT_FALSE(cache.probe(0));
  EXPECT_FALSE(cache.access(0));  // still a miss: probe did not allocate
  EXPECT_TRUE(cache.probe(0));
}

TEST(Cache, InvalidateAllEmpties) {
  CacheModel cache(1024, 128, 2);
  cache.access(0);
  cache.invalidate_all();
  EXPECT_FALSE(cache.access(0));
}

TEST(Cache, CounterReset) {
  CacheModel cache(1024, 128, 2);
  cache.access(0);
  cache.access(0);
  cache.reset_counters();
  EXPECT_EQ(cache.hits(), 0U);
  EXPECT_EQ(cache.misses(), 0U);
}

TEST(CacheDeathTest, RejectsMisalignedAccess) {
  CacheModel cache(1024, 128, 2);
  EXPECT_DEATH(cache.access(4), "line-aligned");
}

TEST(CacheDeathTest, RejectsBadGeometry) {
  EXPECT_DEATH(CacheModel(1000, 128, 2), "divisible");
}

}  // namespace
