// Tests for speckle::prof, the deterministic profiling subsystem.
//
// Victim kernels with hand-countable traffic pin the exact counter
// semantics (warp instructions, coalesced transactions, divergence,
// per-buffer attribution); the worklist victims prove the profiler
// distinguishes the paper's one-atomic-per-block scan push from the naive
// one-atomic-per-vertex push; the scheme-level tests prove reports are
// bit-identical across host thread counts and that the __ldg schemes show
// the read-only-cache evidence the paper claims.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "coloring/runner.hpp"
#include "graph/suite.hpp"
#include "prof/prof.hpp"
#include "simt/device.hpp"
#include "simt/worklist.hpp"

namespace {

using namespace speckle;

simt::DeviceConfig profiling_config(std::uint32_t host_threads = 1) {
  simt::DeviceConfig cfg = simt::DeviceConfig::k20c();
  cfg.profile = true;
  cfg.host_threads = host_threads;
  return cfg;
}

const prof::BufferCounters* find_buffer(const prof::LaunchProfile& lp,
                                        const std::string& name) {
  for (const auto& bc : lp.buffers) {
    if (bc.name == name) return &bc;
  }
  return nullptr;
}

// --- exact counters on a hand-countable kernel -----------------------------

TEST(ProfCounters, ExactCountersForEmbeddedKernel) {
  simt::Device dev(profiling_config());
  auto in = dev.alloc<std::uint32_t>(128, "in");
  auto out = dev.alloc<std::uint32_t>(128, "out");
  in.fill(3);
  // Per thread: 1 coalesced load, a 5-instruction compute run, 1 coalesced
  // store. Per warp that merges to 3 warp ops / 7 warp instructions, and
  // each warp's 32 consecutive uint32 accesses land in one 128-byte line.
  dev.launch({.grid_blocks = 2, .block_threads = 64}, "copy5",
             [&](simt::Thread& t) {
               const auto g = static_cast<std::size_t>(t.global_id());
               const std::uint32_t v = t.ld(in, g);
               t.compute(5);
               t.st(out, g, v);
             });
  const prof::Report report = dev.prof_report();
  ASSERT_EQ(report.launches.size(), 1u);
  const prof::LaunchProfile& lp = report.launches[0];
  EXPECT_EQ(lp.kernel, "copy5");
  EXPECT_EQ(lp.round, 0u);
  EXPECT_EQ(lp.grid_blocks, 2u);
  EXPECT_EQ(lp.block_threads, 64u);
  EXPECT_EQ(lp.blocks, 2u);
  EXPECT_EQ(lp.warps_launched, 4u);
  EXPECT_EQ(lp.threads_launched, 128u);
  EXPECT_EQ(lp.warp_insts, 28u);  // 4 warps x (ld + compute(5) + st)
  EXPECT_EQ(lp.divergent_insts, 0u);
  EXPECT_DOUBLE_EQ(lp.simd_efficiency(), 1.0);
  EXPECT_EQ(lp.ld_requests, 4u);
  EXPECT_EQ(lp.ld_transactions, 4u);  // perfectly coalesced: 1 line/warp
  EXPECT_EQ(lp.st_requests, 4u);
  EXPECT_EQ(lp.st_transactions, 4u);
  EXPECT_EQ(lp.ldg_requests, 0u);
  EXPECT_EQ(lp.atomic_ops, 0u);
  EXPECT_EQ(lp.barriers, 0u);
  EXPECT_DOUBLE_EQ(lp.load_transactions_per_request(), 1.0);
  // The timing engine must have issued exactly the instructions the merge
  // layer recorded — the cross-check that execution-side and timing-side
  // counters describe the same launch.
  EXPECT_EQ(lp.issued_insts, lp.warp_insts);
  EXPECT_GT(lp.cycles, 0u);
  EXPECT_EQ(lp.waves, 1u);

  const prof::BufferCounters* bin = find_buffer(lp, "in");
  ASSERT_NE(bin, nullptr);
  EXPECT_EQ(bin->ld_transactions, 4u);
  EXPECT_EQ(bin->st_transactions, 0u);
  EXPECT_EQ(bin->requests, 4u);
  const prof::BufferCounters* bout = find_buffer(lp, "out");
  ASSERT_NE(bout, nullptr);
  EXPECT_EQ(bout->st_transactions, 4u);
  EXPECT_EQ(bout->ld_transactions, 0u);
  EXPECT_EQ(bout->requests, 4u);
}

TEST(ProfCounters, DivergentIssueCounted) {
  simt::Device dev(profiling_config());
  auto out = dev.alloc<std::uint32_t>(32, "out");
  // One full-warp compute, then a store only half the lanes execute: the
  // merge layer materializes that as one warp op with 16/32 active lanes.
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "half_store",
             [&](simt::Thread& t) {
               t.compute(1);
               if (t.lane() < 16) t.st(out, t.lane(), 1u);
             });
  const prof::Report report = dev.prof_report();
  const prof::LaunchProfile& lp = report.launches.at(0);
  EXPECT_EQ(lp.warp_insts, 2u);
  EXPECT_EQ(lp.divergent_insts, 1u);
  EXPECT_EQ(lp.active_lane_issues, 48u);    // 32 + 16
  EXPECT_EQ(lp.possible_lane_issues, 64u);  // 2 ops x 32 resident lanes
  EXPECT_DOUBLE_EQ(lp.simd_efficiency(), 0.75);
  EXPECT_EQ(lp.st_requests, 1u);
  EXPECT_EQ(lp.st_transactions, 1u);  // 16 x 4B inside one line
}

TEST(ProfCounters, PartialWarpIsNotDivergence) {
  simt::Device dev(profiling_config());
  auto out = dev.alloc<std::uint32_t>(8, "out");
  // An 8-thread block has one warp with 8 resident lanes; a full-block op
  // is not divergent even though active_lanes < 32.
  dev.launch({.grid_blocks = 1, .block_threads = 8}, "tiny_block",
             [&](simt::Thread& t) { t.st(out, t.thread_in_block(), 1u); });
  const prof::Report report = dev.prof_report();
  const prof::LaunchProfile& lp = report.launches.at(0);
  EXPECT_EQ(lp.warps_launched, 1u);
  EXPECT_EQ(lp.threads_launched, 8u);
  EXPECT_EQ(lp.divergent_insts, 0u);
  EXPECT_DOUBLE_EQ(lp.simd_efficiency(), 1.0);
}

// --- worklist-push atomics: the paper's scan-push claim --------------------

TEST(ProfAtomics, ScanPushCostsOneTailAtomicPerBlock) {
  simt::Device dev(profiling_config());
  simt::Worklist wl(dev, 1024, "wl");
  dev.launch({.grid_blocks = 4, .block_threads = 64}, "scan_push",
             [&](simt::Thread& t) {
               t.scan_push(wl, static_cast<std::uint32_t>(t.global_id()));
             });
  EXPECT_EQ(wl.size(), 256u);
  const prof::Report report = dev.prof_report();
  const prof::LaunchProfile& lp = report.launches.at(0);
  const prof::BufferCounters* tail = find_buffer(lp, "wl.tail");
  ASSERT_NE(tail, nullptr);
  // The whole point of the block-wide scan: ONE tail atomic per block.
  EXPECT_EQ(tail->atomics, lp.blocks);
  EXPECT_EQ(tail->atomics, 4u);
}

TEST(ProfAtomics, NaivePushCostsOneTailAtomicPerItem) {
  simt::Device dev(profiling_config());
  simt::Worklist wl(dev, 1024, "wl");
  dev.launch({.grid_blocks = 4, .block_threads = 64}, "naive_push",
             [&](simt::Thread& t) {
               const std::uint32_t slot = t.atomic_add(wl.tail(), 0, 1u);
               t.st(wl.items(), slot, static_cast<std::uint32_t>(t.global_id()));
             });
  EXPECT_EQ(wl.size(), 256u);
  const prof::Report report = dev.prof_report();
  const prof::LaunchProfile& lp = report.launches.at(0);
  const prof::BufferCounters* tail = find_buffer(lp, "wl.tail");
  ASSERT_NE(tail, nullptr);
  // The ablation baseline: every pushed item pays a tail atomic, 64x the
  // scan push at this block size — the mechanism behind Fig 8.
  EXPECT_EQ(tail->atomics, lp.threads_launched);
  EXPECT_EQ(tail->atomics, 256u);
  EXPECT_GE(lp.blocks_replayed, 1u);  // contended tail forces replays
}

// --- wave-commit overlay statistics: the single-touch commit story ---------

TEST(ProfCommit, SingleOwnerPagesSwapWholesale) {
  simt::Device dev(profiling_config());
  auto out = dev.alloc<std::uint32_t>(64, "out");
  // Two blocks land on two SMs in one wave; each writes its own 128-byte
  // line, so each touched L2 page has exactly one owner and commit adopts
  // both with a page copy — nothing goes through the recency merge.
  dev.launch({.grid_blocks = 2, .block_threads = 32}, "disjoint_lines",
             [&](simt::Thread& t) {
               t.st(out, static_cast<std::size_t>(t.global_id()), 1u);
             });
  const prof::Report report = dev.prof_report();
  const prof::LaunchProfile& lp = report.launches.at(0);
  EXPECT_EQ(lp.commit.waves, 1u);
  EXPECT_EQ(lp.commit.pages_touched, 2u);
  EXPECT_EQ(lp.commit.pages_merged, 0u);
  // A K20c L2 set is 16 ways of 8-byte tags = 128 bytes per adopted page.
  EXPECT_EQ(lp.commit.bytes_swapped, 2u * 16u * 8u);
  EXPECT_EQ(lp.commit.bytes_replayed, 0u);
  // 32 threads per block each write one distinct uint32, staged in the
  // block's overlay and landed exactly once at its commit slot.
  EXPECT_EQ(lp.overlay_writes, 64u);
  EXPECT_EQ(lp.overlay_bytes, 64u * sizeof(std::uint32_t));
}

TEST(ProfCommit, ContendedPageGoesThroughMerge) {
  simt::Device dev(profiling_config());
  auto in = dev.alloc<std::uint32_t>(32, "in");
  in.fill(7);
  // Both SMs read the SAME line: its one L2 page has two owners, so commit
  // must rebuild it through the SM-ordered recency merge, not a page swap.
  dev.launch({.grid_blocks = 2, .block_threads = 32}, "shared_line",
             [&](simt::Thread& t) { (void)t.ld(in, t.lane()); });
  const prof::Report report = dev.prof_report();
  const prof::LaunchProfile& lp = report.launches.at(0);
  EXPECT_EQ(lp.commit.waves, 1u);
  EXPECT_EQ(lp.commit.pages_touched, 1u);
  EXPECT_EQ(lp.commit.pages_merged, 1u);
  EXPECT_EQ(lp.commit.bytes_swapped, 0u);
  EXPECT_EQ(lp.commit.bytes_replayed, 16u * 8u);
  EXPECT_EQ(lp.overlay_writes, 0u);  // loads stage nothing in the overlay
  EXPECT_EQ(lp.overlay_bytes, 0u);
}

// --- off by default, reset, transfers --------------------------------------

TEST(ProfLifecycle, OffByDefaultAndZeroLaunchCost) {
  simt::Device dev(simt::DeviceConfig::k20c());
  auto buf = dev.alloc<std::uint32_t>(32, "buf");
  buf.fill(0);
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "noop",
             [&](simt::Thread& t) { (void)t.ld(buf, t.thread_in_block()); });
  EXPECT_TRUE(dev.prof_report().empty());
}

TEST(ProfLifecycle, TransfersRecordedAndResetClears) {
  simt::Device dev(profiling_config());
  auto buf = dev.alloc<std::uint32_t>(32, "buf");
  buf.fill(0);
  dev.copy_to_device(1024);
  dev.copy_to_host(256);
  {
    const prof::Report report = dev.prof_report();
    ASSERT_EQ(report.transfers.size(), 2u);
    EXPECT_TRUE(report.transfers[0].h2d);
    EXPECT_EQ(report.transfers[0].bytes, 1024u);
    EXPECT_FALSE(report.transfers[1].h2d);
    EXPECT_EQ(report.transfers[1].bytes, 256u);
    EXPECT_GT(report.transfers[0].cycles, 0u);
  }
  dev.reset_report();
  EXPECT_TRUE(dev.prof_report().empty());
  // The allocation registry survives the reset: post-reset launches still
  // attribute traffic to named buffers.
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "post_reset",
             [&](simt::Thread& t) { (void)t.ld(buf, t.thread_in_block()); });
  const prof::Report report = dev.prof_report();
  ASSERT_EQ(report.launches.size(), 1u);
  EXPECT_NE(find_buffer(report.launches[0], "buf"), nullptr);
}

TEST(ProfLifecycle, RoundsCountPerKernelName) {
  simt::Device dev(profiling_config());
  auto buf = dev.alloc<std::uint32_t>(32, "buf");
  buf.fill(0);
  for (int i = 0; i < 3; ++i) {
    dev.launch({.grid_blocks = 1, .block_threads = 32}, "again",
               [&](simt::Thread& t) { (void)t.ld(buf, t.thread_in_block()); });
  }
  const prof::Report report = dev.prof_report();
  ASSERT_EQ(report.launches.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(report.launches[i].round, i);
  }
  const auto by_kernel = report.by_kernel();
  ASSERT_EQ(by_kernel.size(), 1u);
  EXPECT_EQ(by_kernel[0].launches, 3u);
  EXPECT_EQ(by_kernel[0].sum.warp_insts, 3 * report.launches[0].warp_insts);
}

// --- scheme-level: determinism, the __ldg story, exports -------------------

coloring::RunOptions profiled_options(std::uint32_t host_threads) {
  coloring::RunOptions opts;
  opts.seed = 1;
  opts.device.profile = true;
  opts.device.host_threads = host_threads;
  opts.scale_caches(64);  // keep cache ratios paper-like at denom=64 scale
  return opts;
}

TEST(ProfDeterminism, ReportBitIdenticalAcrossHostThreads) {
  const graph::CsrGraph g = graph::make_suite_graph("Hamrle3", 64, 1);
  const auto r1 = coloring::run_scheme(coloring::Scheme::kDataLdg, g,
                                       profiled_options(1));
  const auto r4 = coloring::run_scheme(coloring::Scheme::kDataLdg, g,
                                       profiled_options(4));
  ASSERT_FALSE(r1.prof.launches.empty());
  // Field-for-field identity, including stall cycles, issue histograms and
  // the wave timeline — the whole report, not just the headline counters.
  EXPECT_EQ(r1.prof, r4.prof);
  const simt::DeviceConfig dev = profiled_options(1).device;
  EXPECT_EQ(r1.prof.format(dev), r4.prof.format(dev));
  EXPECT_EQ(r1.prof.to_json(dev, "test"), r4.prof.to_json(dev, "test"));
  EXPECT_EQ(r1.prof.to_chrome_trace(dev), r4.prof.to_chrome_trace(dev));
  // Execution-side and timing-side instruction counts agree per launch.
  for (const auto& lp : r1.prof.launches) {
    EXPECT_EQ(lp.warp_insts, lp.issued_insts) << lp.kernel << "#" << lp.round;
  }
}

TEST(ProfLdgEvidence, ReadOnlyCacheAbsorbsTopologyReads) {
  const graph::CsrGraph g = graph::make_suite_graph("Hamrle3", 64, 1);
  // Full-size caches against the 1/64-scale graph: the RO cache comfortably
  // holds the topology, which is the regime the paper's full-scale runs are
  // in (the scaled-cache regime is exercised by the bench goldens instead).
  coloring::RunOptions opts;
  opts.seed = 1;
  opts.device.profile = true;
  opts.device.host_threads = 1;
  const auto base = coloring::run_scheme(coloring::Scheme::kTopoBase, g, opts);
  const auto ldg = coloring::run_scheme(coloring::Scheme::kTopoLdg, g, opts);
  std::uint64_t base_ro = 0, base_gld = 0, base_dram = 0;
  std::uint64_t ldg_ro_h = 0, ldg_ro_m = 0, ldg_gld = 0, ldg_dram = 0;
  for (const auto& lp : base.prof.launches) {
    base_ro += lp.ro_hits + lp.ro_misses;
    base_gld += lp.ld_transactions;
    base_dram += lp.dram_transactions();
  }
  for (const auto& lp : ldg.prof.launches) {
    ldg_ro_h += lp.ro_hits;
    ldg_ro_m += lp.ro_misses;
    ldg_gld += lp.ld_transactions;
    ldg_dram += lp.dram_transactions();
  }
  // T-base never touches the read-only path; T-ldg routes the row/col
  // topology reads through it (the global-load transaction count drops by
  // the rerouted amount) and most of them hit the ~30-cycle RO cache
  // instead of going to L2/DRAM — the mechanism behind the paper's Fig 4.
  // DRAM traffic can only shrink (compulsory misses dominate at this
  // scale, so the margin is small — the assert is on direction, the
  // magnitudes live in the checked-in golden).
  EXPECT_EQ(base_ro, 0u);
  EXPECT_GT(ldg_ro_h, 0u);
  EXPECT_GT(static_cast<double>(ldg_ro_h) / (ldg_ro_h + ldg_ro_m), 0.5);
  EXPECT_LT(ldg_gld + (ldg_gld / 2), base_gld);  // >1/3 of loads rerouted
  EXPECT_LE(ldg_dram, base_dram);
}

TEST(ProfExports, JsonAndTraceSmoke) {
  simt::Device dev(profiling_config());
  auto buf = dev.alloc<std::uint32_t>(64, "buf");
  buf.fill(0);
  dev.copy_to_device(256);
  dev.launch({.grid_blocks = 2, .block_threads = 32}, "smoke",
             [&](simt::Thread& t) { t.st(buf, t.thread_in_block(), 1u); });
  const prof::Report report = dev.prof_report();
  const simt::DeviceConfig cfg = profiling_config();

  const std::string text = report.format(cfg);
  EXPECT_NE(text.find("smoke"), std::string::npos);
  EXPECT_NE(text.find("buf"), std::string::npos);

  const std::string json = report.to_json(cfg, "unit-test");
  EXPECT_NE(json.find("\"speckle-prof-1\""), std::string::npos);
  EXPECT_NE(json.find("\"smoke\""), std::string::npos);
  EXPECT_NE(json.find("\"unit-test\""), std::string::npos);

  const std::string trace = report.to_chrome_trace(cfg);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("smoke#0"), std::string::npos);
  EXPECT_NE(trace.find("pcie"), std::string::npos);
}

}  // namespace
