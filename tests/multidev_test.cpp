// Multi-device partitioned coloring (speckle::multidev) and its
// partitioners: shard construction edge cases, bit-identity guarantees
// (P=1 vs the single-device scheme, host threads 1 vs 2/4/8), sanitizer
// cleanliness of the exchange machinery, and the Table I quality bound —
// sharded D-ldg at P in {2, 4} must stay within 1.15x of the
// single-device color count on every suite graph.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "check_coloring.hpp"
#include "coloring/runner.hpp"
#include "graph/builder.hpp"
#include "graph/partition.hpp"
#include "graph/suite.hpp"
#include "multidev/multidev.hpp"

namespace {

using namespace speckle;
using namespace speckle::coloring;
using speckle::testing::IsGreedyColoring;
using speckle::testing::IsProperColoring;
using graph::build_csr;
using graph::CsrGraph;
using graph::make_partition;
using graph::Partition;
using graph::PartitionKind;
using graph::vid_t;

CsrGraph path_graph(vid_t n) {
  graph::EdgeList edges;
  for (vid_t v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return build_csr(n, std::move(edges));
}

CsrGraph grid_graph(vid_t side) {
  graph::EdgeList edges;
  for (vid_t r = 0; r < side; ++r) {
    for (vid_t c = 0; c < side; ++c) {
      const vid_t v = r * side + c;
      if (c + 1 < side) edges.push_back({v, v + 1});
      if (r + 1 < side) edges.push_back({v, v + side});
    }
  }
  return build_csr(side * side, std::move(edges));
}

multidev::MultiDevResult run_multidev(const CsrGraph& g, std::uint32_t parts,
                                      PartitionKind kind,
                                      bool verify_ghosts = true) {
  multidev::MultiDevOptions opts;
  opts.num_devices = parts;
  opts.partitioner = kind;
  opts.use_ldg = true;
  opts.verify_ghosts = verify_ghosts;
  return multidev::multidev_color(g, opts);
}

// ---------------------------------------------------------------------------
// Partitioner structure.

TEST(PartitionTest, ContiguousCoversAllVerticesOnce) {
  const CsrGraph g = grid_graph(8);
  const Partition part =
      make_partition(g, 4, PartitionKind::kContiguous);
  part.validate(g);
  vid_t total = 0;
  for (const graph::Shard& s : part.shards) total += s.num_owned();
  EXPECT_EQ(total, g.num_vertices());
  EXPECT_EQ(part.shards.size(), 4u);
}

TEST(PartitionTest, HashCoversAllVerticesOnce) {
  const CsrGraph g = grid_graph(8);
  const Partition part = make_partition(g, 4, PartitionKind::kHash, 99);
  part.validate(g);
  vid_t total = 0;
  for (const graph::Shard& s : part.shards) total += s.num_owned();
  EXPECT_EQ(total, g.num_vertices());
}

TEST(PartitionTest, BfsCoversAllVerticesOnceAndCutsLessThanHash) {
  // BFS blocks grow shards along the adjacency structure, so on a mesh
  // they must beat the locality-blind hash partitioner's edge cut.
  const CsrGraph g = grid_graph(16);
  const Partition bfs = make_partition(g, 4, PartitionKind::kBfsBlocks, 99);
  bfs.validate(g);
  vid_t total = 0;
  for (const graph::Shard& s : bfs.shards) total += s.num_owned();
  EXPECT_EQ(total, g.num_vertices());

  const Partition hash = make_partition(g, 4, PartitionKind::kHash, 99);
  EXPECT_LT(bfs.cut_edges, hash.cut_edges);
}

TEST(PartitionTest, MorePartsThanVerticesLeavesEmptyShards) {
  // P > n: some shards own nothing; the fleet must still run and color.
  const CsrGraph g = path_graph(3);
  const Partition part =
      make_partition(g, 8, PartitionKind::kContiguous);
  part.validate(g);
  vid_t total = 0;
  std::uint32_t empty = 0;
  for (const graph::Shard& s : part.shards) {
    total += s.num_owned();
    if (s.num_owned() == 0) {
      ++empty;
      EXPECT_EQ(s.num_ghosts(), 0u);  // nothing owned => nothing to ghost
    }
  }
  EXPECT_EQ(total, g.num_vertices());
  EXPECT_GE(empty, 5u);

  const auto r = run_multidev(g, 8, PartitionKind::kContiguous);
  EXPECT_TRUE(IsGreedyColoring(g, r.coloring));
  EXPECT_EQ(r.num_colors, 2u);
}

TEST(PartitionTest, IsolatedVerticesHaveNoGhosts) {
  // Vertices with no edges never appear as anyone's ghost and still get a
  // color. build_csr keeps isolated vertices as empty rows.
  graph::EdgeList edges{{0, 1}};
  const CsrGraph g = build_csr(6, std::move(edges));  // 2..5 isolated
  for (const PartitionKind kind :
       {PartitionKind::kContiguous, PartitionKind::kHash,
        PartitionKind::kBfsBlocks}) {
    const Partition part = make_partition(g, 3, kind, 7);
    part.validate(g);
    std::uint64_t ghosts = 0;
    for (const graph::Shard& s : part.shards) ghosts += s.num_ghosts();
    EXPECT_LE(ghosts, 2u) << graph::partition_kind_name(kind);

    const auto r = run_multidev(g, 3, kind);
    EXPECT_TRUE(IsGreedyColoring(g, r.coloring));
    for (vid_t v = 2; v < 6; ++v) EXPECT_EQ(r.coloring[v], 1u);
  }
}

TEST(PartitionTest, AllBoundaryPath) {
  // One vertex per device: every edge is cut, every vertex is a boundary
  // vertex, and the whole coloring is carried by the exchange machinery.
  const vid_t n = 12;
  const CsrGraph g = path_graph(n);
  const Partition part =
      make_partition(g, n, PartitionKind::kContiguous);
  part.validate(g);
  EXPECT_EQ(part.cut_edges, g.num_edges());  // every directed entry is cut

  const auto r = run_multidev(g, n, PartitionKind::kContiguous);
  EXPECT_TRUE(IsGreedyColoring(g, r.coloring));
  EXPECT_LE(r.num_colors, 3u);
  EXPECT_EQ(r.cut_edges, g.num_edges());
  EXPECT_GT(r.exchanged_colors, 0u);
  EXPECT_GT(r.ghost_rounds_verified, 0u);
}

TEST(PartitionTest, SeedZeroAborts) {
  const CsrGraph g = path_graph(4);
  EXPECT_DEATH(make_partition(g, 2, PartitionKind::kHash, 0), "seed");
  multidev::MultiDevOptions opts;
  opts.num_devices = 2;
  opts.partitioner = PartitionKind::kHash;
  opts.seed = 0;
  EXPECT_DEATH(multidev::multidev_color(g, opts), "seed");
  EXPECT_DEATH(graph::make_suite_graph("rmat-er", 64, 0), "seed");
}

// ---------------------------------------------------------------------------
// Determinism and identity.

TEST(MultiDevTest, P1IsBitIdenticalToSingleDeviceLdg) {
  // At P=1 there is no partition boundary, the worklist keeps its id order,
  // and the staged launches run the same serial block schedule as one
  // launch — the coloring must match the single-device D-ldg scheme
  // exactly, vertex by vertex.
  const CsrGraph g =
      graph::make_suite_graph("rmat-er", 256);
  RunOptions run;
  const RunResult single = run_scheme(Scheme::kDataLdg, g, run);

  const auto multi = run_multidev(g, 1, PartitionKind::kContiguous);
  EXPECT_EQ(multi.coloring, single.coloring);
  EXPECT_EQ(multi.num_colors, single.num_colors);
  EXPECT_EQ(multi.rounds, single.iterations);
  EXPECT_EQ(multi.cut_edges, 0u);
  EXPECT_EQ(multi.exchanged_colors, 0u);
}

TEST(MultiDevTest, ReportsAreHostThreadInvariant) {
  const CsrGraph g = graph::make_suite_graph("rmat-g", 256);
  multidev::MultiDevOptions opts;
  opts.num_devices = 4;
  opts.use_ldg = true;
  opts.device.sanitize = true;

  opts.device.host_threads = 1;
  const auto a = multidev::multidev_color(g, opts);
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("host_threads=" + std::to_string(threads));
    opts.device.host_threads = threads;
    const auto b = multidev::multidev_color(g, opts);

    EXPECT_EQ(a.coloring, b.coloring);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.exchanged_colors, b.exchanged_colors);
    EXPECT_EQ(a.model_ms, b.model_ms);
    EXPECT_EQ(a.hidden_ms, b.hidden_ms);
    EXPECT_TRUE(a.exchange_rounds == b.exchange_rounds);
    EXPECT_EQ(a.fleet_report.total_cycles, b.fleet_report.total_cycles);
    EXPECT_EQ(a.fleet_report.d2d.bytes, b.fleet_report.d2d.bytes);
    EXPECT_TRUE(a.san == b.san);
    ASSERT_EQ(a.devices.size(), b.devices.size());
    for (std::size_t k = 0; k < a.devices.size(); ++k) {
      EXPECT_EQ(a.devices[k].sent_colors, b.devices[k].sent_colors) << k;
      EXPECT_EQ(a.devices[k].recv_colors, b.devices[k].recv_colors) << k;
      EXPECT_EQ(a.devices[k].rounds, b.devices[k].rounds) << k;
      EXPECT_EQ(a.devices[k].report.total_cycles,
                b.devices[k].report.total_cycles)
          << k;
    }
  }
}

TEST(MultiDevTest, SanitizerCleanAtP4) {
  const CsrGraph g = graph::make_suite_graph("rmat-er", 256);
  multidev::MultiDevOptions opts;
  opts.num_devices = 4;
  opts.use_ldg = true;
  opts.device.sanitize = true;
  const auto r = multidev::multidev_color(g, opts);
  EXPECT_TRUE(IsGreedyColoring(g, r.coloring));
  EXPECT_TRUE(r.san.clean()) << r.san.format();
  for (const auto& d : r.devices) {
    EXPECT_TRUE(d.san.clean()) << "device " << d.device << "\n" << d.san.format();
  }
}

TEST(MultiDevTest, HashPartitionColorsProperly) {
  const CsrGraph g = graph::make_suite_graph("thermal2", 256);
  const auto r = run_multidev(g, 4, PartitionKind::kHash);
  EXPECT_TRUE(IsGreedyColoring(g, r.coloring));
  EXPECT_GT(r.cut_edges, 0u);
  EXPECT_GT(r.ghost_rounds_verified, 0u);
}

TEST(MultiDevTest, BoundaryInteriorSplitStructure) {
  // The overlap restructure splits every round into a boundary launch
  // (feeds the exchange), a cross-cut conflict scan (consumes last round's
  // exchange), an interior launch (hides the flight time), and an
  // owned-only local detect. All four kernels must appear in the fleet
  // log, and the per-round exchange accounting must be self-consistent.
  // thermal2 is a mesh, so a contiguous partition has both boundary and
  // interior vertices (on rmat-er almost every vertex is boundary and the
  // interior slice never launches).
  const CsrGraph g = graph::make_suite_graph("thermal2", 256);
  const auto r = run_multidev(g, 4, PartitionKind::kContiguous);
  EXPECT_TRUE(IsGreedyColoring(g, r.coloring));

  bool saw_bnd = false, saw_int = false, saw_xdetect = false, saw_detect = false;
  for (const auto& k : r.fleet_report.kernels) {
    saw_bnd |= k.name.find(".md_color_bnd") != std::string::npos;
    saw_int |= k.name.find(".md_color_int") != std::string::npos;
    saw_xdetect |= k.name.find(".md_xdetect") != std::string::npos;
    saw_detect |= k.name.find(".md_detect") != std::string::npos;
  }
  EXPECT_TRUE(saw_bnd);
  EXPECT_TRUE(saw_int);
  EXPECT_TRUE(saw_xdetect);
  EXPECT_TRUE(saw_detect);

  // Every owned vertex with a cut edge is boundary; none can exceed owned.
  vid_t boundary_total = 0;
  for (const auto& d : r.devices) {
    EXPECT_LE(d.boundary, d.owned) << "device " << d.device;
    if (d.cut_edges > 0) {
      EXPECT_GT(d.boundary, 0u) << "device " << d.device;
    }
    boundary_total += d.boundary;
  }
  EXPECT_GT(boundary_total, 0u);

  // Per-round batches count both endpoints of each link (always even),
  // hidden + stall partitions the busy cycles, and the round bytes sum to
  // the fleet's per-endpoint d2d total.
  ASSERT_FALSE(r.exchange_rounds.empty());
  std::uint64_t bytes_total = 0;
  for (const auto& er : r.exchange_rounds) {
    EXPECT_EQ(er.batches % 2, 0u) << "round " << er.round;
    EXPECT_LE(er.hidden_cycles, er.cycles) << "round " << er.round;
    if (er.hidden_cycles > 0) {
      EXPECT_EQ(er.hidden_cycles + er.stall_cycles, er.cycles)
          << "round " << er.round;
    }
    bytes_total += er.bytes;
  }
  EXPECT_EQ(bytes_total, r.fleet_report.d2d.bytes);
}

TEST(MultiDevTest, FleetReportAggregatesPerDevicePrefixes) {
  const CsrGraph g = graph::make_suite_graph("rmat-er", 512);
  const auto r = run_multidev(g, 2, PartitionKind::kContiguous);
  ASSERT_EQ(r.devices.size(), 2u);
  bool saw_d0 = false;
  bool saw_d1 = false;
  for (const auto& k : r.fleet_report.kernels) {
    saw_d0 |= k.name.rfind("d0.", 0) == 0;
    saw_d1 |= k.name.rfind("d1.", 0) == 0;
  }
  EXPECT_TRUE(saw_d0);
  EXPECT_TRUE(saw_d1);
  std::uint64_t d2d = 0;
  for (const auto& d : r.devices) d2d += d.report.d2d.bytes;
  EXPECT_EQ(r.fleet_report.d2d.bytes, d2d);
}

// ---------------------------------------------------------------------------
// Table I quality bound: the PR's acceptance criterion, as a regression
// test. Sharded D-ldg at P in {2, 4} must color every suite graph with at
// most 1.15x the single-device color count (denom=64 scale).

class MultiDevQuality
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint32_t>> {
};

TEST_P(MultiDevQuality, WithinColorBudgetOfSingleDevice) {
  const auto& [name, parts] = GetParam();
  const CsrGraph g = graph::make_suite_graph(name, 64);
  RunOptions run;
  const RunResult single = run_scheme(Scheme::kDataLdg, g, run);

  const auto multi = run_multidev(g, parts, PartitionKind::kContiguous,
                                  /*verify_ghosts=*/false);
  EXPECT_TRUE(IsGreedyColoring(g, multi.coloring));
  EXPECT_LE(multi.num_colors,
            static_cast<color_t>(
                std::ceil(1.15 * static_cast<double>(single.num_colors))))
      << name << " P=" << parts << ": " << multi.num_colors << " vs "
      << single.num_colors << " single-device";
}

std::vector<std::string> suite_names() {
  std::vector<std::string> names;
  for (const auto& e : graph::suite_entries()) names.push_back(e.name);
  return names;
}

TEST(MultiDevTest, BfsPartitionWithinColorBudget) {
  // The edge-cut-aware BFS partitioner with a one-round deferral window
  // must land within 1.1x of the single-device color count on both R-MAT
  // graphs (the overlap PR's quality bar for the new partitioner).
  for (const std::string name : {"rmat-er", "rmat-g"}) {
    const CsrGraph g = graph::make_suite_graph(name, 64);
    RunOptions run;
    const RunResult single = run_scheme(Scheme::kDataLdg, g, run);

    multidev::MultiDevOptions opts;
    opts.num_devices = 4;
    opts.partitioner = PartitionKind::kBfsBlocks;
    opts.use_ldg = true;
    opts.defer_rounds = 1;
    const auto multi = multidev::multidev_color(g, opts);
    EXPECT_TRUE(IsGreedyColoring(g, multi.coloring)) << name;
    EXPECT_LE(multi.num_colors,
              static_cast<color_t>(
                  std::ceil(1.1 * static_cast<double>(single.num_colors))))
        << name << ": " << multi.num_colors << " vs " << single.num_colors
        << " single-device";
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableI, MultiDevQuality,
    ::testing::Combine(::testing::ValuesIn(suite_names()),
                       ::testing::Values(2u, 4u)),
    [](const auto& info) {
      std::string n = std::get<0>(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n + "_P" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
