// BFS oracle tests.

#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace speckle::graph;

TEST(Bfs, PathDistances) {
  const CsrGraph g = build_csr(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto dist = bfs_distances(g, 0);
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, UnreachableMarked) {
  const CsrGraph g = build_csr(4, {{0, 1}});
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1U);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Bfs, GridDistanceIsManhattan) {
  const vid_t nx = 7, ny = 7;
  const CsrGraph g = build_csr(nx * ny, stencil2d(nx, ny));
  const auto dist = bfs_distances(g, 0);
  for (vid_t y = 0; y < ny; ++y) {
    for (vid_t x = 0; x < nx; ++x) {
      EXPECT_EQ(dist[y * nx + x], x + y);
    }
  }
}

TEST(Bfs, NeighborhoodRadiusTwo) {
  // Star: every leaf is within distance 2 of every other leaf.
  EdgeList edges;
  for (vid_t v = 1; v < 10; ++v) edges.push_back({0, v});
  const CsrGraph g = build_csr(10, edges);
  const auto hood = neighborhood(g, 3, 2);
  EXPECT_EQ(hood.size(), 9U);  // the center plus the 8 other leaves
  const auto hood1 = neighborhood(g, 3, 1);
  EXPECT_EQ(hood1.size(), 1U);  // just the center
}

TEST(Bfs, EccentricityOfRing) {
  const CsrGraph g = build_csr(10, ring_lattice(10, 1));
  EXPECT_EQ(eccentricity(g, 0), 5U);
}

TEST(BfsDeathTest, SourceOutOfRange) {
  const CsrGraph g = build_csr(2, {{0, 1}});
  EXPECT_DEATH(bfs_distances(g, 5), "out of range");
}

}  // namespace
