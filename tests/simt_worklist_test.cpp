// Worklist container tests: host-side operations and the double-buffering
// usage pattern of Algorithm 5.

#include <gtest/gtest.h>

#include "simt/worklist.hpp"

namespace {

using namespace speckle::simt;

TEST(Worklist, StartsEmpty) {
  Device dev;
  Worklist wl(dev, 16);
  EXPECT_TRUE(wl.empty());
  EXPECT_EQ(wl.size(), 0U);
  EXPECT_TRUE(wl.host_items().empty());
}

TEST(Worklist, FillIotaAndClear) {
  Device dev;
  Worklist wl(dev, 10);
  wl.fill_iota(7);
  EXPECT_EQ(wl.size(), 7U);
  for (std::uint32_t i = 0; i < 7; ++i) EXPECT_EQ(wl.host_items()[i], i);
  wl.clear();
  EXPECT_TRUE(wl.empty());
}

TEST(WorklistDeathTest, FillBeyondCapacityAborts) {
  Device dev;
  Worklist wl(dev, 4);
  EXPECT_DEATH(wl.fill_iota(5), "capacity");
}

TEST(Worklist, DoubleBufferingSwapsByPointer) {
  // Algorithm 5 line 19: swap(W_in, W_out) moves no data — the buffers'
  // device addresses stay put, only the roles change.
  Device dev;
  Worklist a(dev, 8);
  Worklist b(dev, 8);
  const std::uint64_t addr_a = a.items().base_addr();
  const std::uint64_t addr_b = b.items().base_addr();
  Worklist* w_in = &a;
  Worklist* w_out = &b;
  w_in->fill_iota(3);
  std::swap(w_in, w_out);
  EXPECT_EQ(w_out->size(), 3U);
  EXPECT_TRUE(w_in->empty());
  EXPECT_EQ(a.items().base_addr(), addr_a);
  EXPECT_EQ(b.items().base_addr(), addr_b);
}

TEST(Worklist, GenerationsAlternateCorrectly) {
  // Push from a kernel into out, swap, consume in, repeat — the pattern the
  // data-driven scheme runs every iteration.
  Device dev;
  Worklist a(dev, 256);
  Worklist b(dev, 256);
  Worklist* w_in = &a;
  Worklist* w_out = &b;
  w_in->fill_iota(256);
  std::uint32_t generations = 0;
  while (!w_in->empty() && generations < 10) {
    const std::uint32_t count = w_in->size();
    w_out->clear();
    dev.launch({.grid_blocks = (count + 127) / 128, .block_threads = 128}, "halve",
               [&](Thread& t) {
                 const auto i = t.global_id();
                 if (i >= count) return;
                 const auto v = t.ld(w_in->items(), i);
                 if (v % 2 == 0) t.scan_push(*w_out, v / 2);
               });
    std::swap(w_in, w_out);
    ++generations;
  }
  // 256 -> 128 (evens halved) -> ... shrinks to empty within 10 rounds.
  EXPECT_LT(w_in->size(), 256U);
  EXPECT_GE(generations, 2U);
}

}  // namespace
