// CPU cost-model tests: locality sensitivity and configuration scaling.

#include <gtest/gtest.h>

#include <vector>

#include "cpumodel/cpu_model.hpp"
#include "support/rng.hpp"

namespace {

using namespace speckle::cpumodel;

TEST(CpuModel, ComputeChargesAtIpc) {
  CpuModel model;
  model.compute(100);
  EXPECT_DOUBLE_EQ(model.cycles(), 100.0 / model.config().ipc);
}

TEST(CpuModel, RepeatedTouchHitsL1) {
  CpuModel model;
  int x = 0;
  model.touch_read(&x);
  const double first = model.cycles();
  model.touch_read(&x);
  EXPECT_DOUBLE_EQ(model.cycles() - first, model.config().l1_cost);
  EXPECT_GT(first, model.config().l1_cost);  // the cold miss went to DRAM
}

TEST(CpuModel, SequentialCheaperThanRandom) {
  // Working set larger than L3 so random access pays DRAM repeatedly.
  CpuConfig config = CpuConfig::xeon_e5_2670().scaled(64);
  const std::size_t n = (config.l3_bytes / 4) * 8;
  std::vector<std::uint32_t> data(n, 1);

  CpuModel sequential(config);
  for (std::size_t i = 0; i < n; ++i) sequential.touch_read(&data[i]);

  CpuModel random(config);
  speckle::support::Xoshiro256 rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    random.touch_read(&data[rng.next_below(n)]);
  }
  EXPECT_GT(random.cycles(), 3.0 * sequential.cycles());
  EXPECT_GT(random.dram_accesses(), sequential.dram_accesses());
}

TEST(CpuModel, StraddlingTouchCostsTwoLines) {
  CpuModel model;
  alignas(64) std::array<char, 128> buf{};
  model.touch_read(buf.data() + 62, 4);  // straddles the 64-byte boundary
  CpuModel single;
  single.touch_read(buf.data(), 4);
  EXPECT_GT(model.cycles(), single.cycles());
}

TEST(CpuModel, MsUsesClock) {
  CpuModel model;
  model.compute(2.6e6 * 2);  // 2.6M cycles at ipc=2 -> 1 ms at 2.6 GHz
  EXPECT_NEAR(model.ms(), 1.0, 1e-9);
}

TEST(CpuConfig, ScaledShrinksCaches) {
  const CpuConfig base = CpuConfig::xeon_e5_2670();
  const CpuConfig scaled = base.scaled(8);
  EXPECT_EQ(scaled.l3_bytes, base.l3_bytes / 8);
  EXPECT_EQ(scaled.dram_cost, base.dram_cost);
  EXPECT_EQ(scaled.l1_bytes % (scaled.line_bytes * scaled.l1_ways), 0U);
}

}  // namespace
