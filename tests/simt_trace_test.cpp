// Trace recording, coalescing, and warp-merge tests — the mechanisms that
// turn per-thread behavior into SIMT memory transactions.

#include <gtest/gtest.h>

#include "simt/trace.hpp"

namespace {

using namespace speckle::simt;

// The per-thread op must stay register-friendly: the SoA storage packs it
// into parallel arrays, and the materialized view must not regress past
// 16 bytes (addr + count + kind + space + size).
static_assert(sizeof(ThreadOp) <= 16, "ThreadOp exceeds 16 bytes");

TEST(ThreadTrace, AdjacentComputeOpsMerge) {
  ThreadTrace trace;
  trace.compute(3);
  trace.compute(4);
  ASSERT_EQ(trace.size(), 1U);
  EXPECT_EQ(trace.op(0).count, 7U);
}

TEST(ThreadTrace, MemoryBreaksComputeMerging) {
  ThreadTrace trace;
  trace.compute(1);
  trace.memory(OpKind::kLoad, Space::kGlobal, 0, 4);
  trace.compute(1);
  EXPECT_EQ(trace.size(), 3U);
}

TEST(ThreadTrace, ZeroComputeIsDropped) {
  ThreadTrace trace;
  trace.compute(0);
  EXPECT_TRUE(trace.empty());
}

TEST(ThreadTrace, ComputeMergingSurvivesClearReuse) {
  // clear() retains the SoA buffers (arena reuse); merging must behave
  // identically on the second use of the same trace object.
  ThreadTrace trace;
  trace.compute(3);
  trace.memory(OpKind::kLoad, Space::kGlobal, 0, 4);
  trace.clear();
  EXPECT_TRUE(trace.empty());
  trace.compute(5);
  trace.compute(6);
  ASSERT_EQ(trace.size(), 1U);
  EXPECT_EQ(trace.op(0).count, 11U);
  EXPECT_EQ(trace.op(0).kind, OpKind::kCompute);
}

TEST(Coalesce, SameLineCollapsesToOneTransaction) {
  const std::vector<std::uint64_t> addrs = {0, 4, 8, 124};
  const std::vector<std::uint8_t> sizes = {4, 4, 4, 4};
  const auto lines = coalesce(addrs, sizes, 128);
  ASSERT_EQ(lines.size(), 1U);
  EXPECT_EQ(lines[0], 0U);
}

TEST(Coalesce, ScatteredAddressesOneTransactionEach) {
  std::vector<std::uint64_t> addrs;
  std::vector<std::uint8_t> sizes;
  for (int i = 0; i < 32; ++i) {
    addrs.push_back(static_cast<std::uint64_t>(i) * 4096);
    sizes.push_back(4);
  }
  EXPECT_EQ(coalesce(addrs, sizes, 128).size(), 32U);
}

TEST(Coalesce, AccessStraddlingLineTakesTwo) {
  const std::vector<std::uint64_t> addrs = {126};
  const std::vector<std::uint8_t> sizes = {4};
  const auto lines = coalesce(addrs, sizes, 128);
  ASSERT_EQ(lines.size(), 2U);
  EXPECT_EQ(lines[0], 0U);
  EXPECT_EQ(lines[1], 128U);
}

TEST(Coalescer, OutOfOrderAddressesMatchSortUnique) {
  // The streaming coalescer must emit the same sorted-unique line set the
  // old sort+unique implementation produced, whatever the lane order.
  Coalescer co(128);
  const std::uint64_t addrs[] = {512, 0, 256, 0, 768, 260};
  for (std::uint64_t a : addrs) co.add(a, 4);
  const auto lines = co.lines();
  ASSERT_EQ(lines.size(), 4U);
  EXPECT_EQ(lines[0], 0U);
  EXPECT_EQ(lines[1], 256U);
  EXPECT_EQ(lines[2], 512U);
  EXPECT_EQ(lines[3], 768U);

  co.reset();
  EXPECT_TRUE(co.lines().empty());
  co.add(128, 4);
  ASSERT_EQ(co.lines().size(), 1U);
  EXPECT_EQ(co.lines()[0], 128U);
}

TEST(MergeWarp, UniformLanesFormOneInstruction) {
  std::vector<ThreadTrace> lanes(4);
  for (std::size_t l = 0; l < 4; ++l) {
    lanes[l].memory(OpKind::kLoad, Space::kGlobal, l * 4, 4);
  }
  const WarpTrace warp = merge_warp(lanes, 128);
  ASSERT_EQ(warp.size(), 1U);
  EXPECT_EQ(warp.op(0).active_lanes, 4U);
  EXPECT_EQ(warp.op(0).addrs.size(), 1U);  // coalesced to one line
}

TEST(MergeWarp, ShorterLanesDropOut) {
  // Lane 0 runs 3 loads, lane 1 only 1 — degree-imbalance divergence.
  std::vector<ThreadTrace> lanes(2);
  for (int i = 0; i < 3; ++i) lanes[0].memory(OpKind::kLoad, Space::kGlobal, i * 256, 4);
  lanes[1].memory(OpKind::kLoad, Space::kGlobal, 4096, 4);
  const WarpTrace warp = merge_warp(lanes, 128);
  ASSERT_EQ(warp.size(), 3U);
  EXPECT_EQ(warp.op(0).active_lanes, 2U);
  EXPECT_EQ(warp.op(1).active_lanes, 1U);
  EXPECT_EQ(warp.op(2).active_lanes, 1U);
}

TEST(MergeWarp, DivergentKindsSerialize) {
  std::vector<ThreadTrace> lanes(2);
  lanes[0].compute(2);
  lanes[1].memory(OpKind::kLoad, Space::kGlobal, 0, 4);
  const WarpTrace warp = merge_warp(lanes, 128);
  ASSERT_EQ(warp.size(), 2U);
  EXPECT_EQ(warp.op(0).kind, OpKind::kCompute);
  EXPECT_EQ(warp.op(1).kind, OpKind::kLoad);
}

TEST(MergeWarp, SpacesDoNotMix) {
  std::vector<ThreadTrace> lanes(2);
  lanes[0].memory(OpKind::kLoad, Space::kGlobal, 0, 4);
  lanes[1].memory(OpKind::kLoad, Space::kReadOnly, 0, 4);
  const WarpTrace warp = merge_warp(lanes, 128);
  ASSERT_EQ(warp.size(), 2U);
  EXPECT_NE(warp.op(0).space, warp.op(1).space);
}

TEST(MergeWarp, ComputeTakesMaxCount) {
  std::vector<ThreadTrace> lanes(2);
  lanes[0].compute(3);
  lanes[1].compute(9);
  const WarpTrace warp = merge_warp(lanes, 128);
  ASSERT_EQ(warp.size(), 1U);
  EXPECT_EQ(warp.op(0).inst_count, 9U);
}

TEST(MergeWarp, AtomicsKeepPerLaneAddresses) {
  std::vector<ThreadTrace> lanes(3);
  for (std::size_t l = 0; l < 3; ++l) {
    lanes[l].memory(OpKind::kAtomic, Space::kGlobal, 64, 4);  // same word
  }
  const WarpTrace warp = merge_warp(lanes, 128);
  ASSERT_EQ(warp.size(), 1U);
  EXPECT_EQ(warp.op(0).addrs.size(), 3U);  // not coalesced: serialization
}

TEST(MergeWarp, SyncActsAsAlignmentFence) {
  // Lane 0: [load, sync]; lane 1: [load, load, sync]. The sync must form a
  // single warp barrier AFTER both lanes' loads — not interleave.
  std::vector<ThreadTrace> lanes(2);
  lanes[0].memory(OpKind::kLoad, Space::kGlobal, 0, 4);
  lanes[0].sync();
  lanes[1].memory(OpKind::kLoad, Space::kGlobal, 256, 4);
  lanes[1].memory(OpKind::kLoad, Space::kGlobal, 512, 4);
  lanes[1].sync();
  const WarpTrace warp = merge_warp(lanes, 128);
  std::size_t sync_count = 0;
  for (std::size_t i = 0; i < warp.size(); ++i) {
    const WarpOpView op = warp.op(i);
    if (op.kind == OpKind::kSync) {
      ++sync_count;
      EXPECT_EQ(op.active_lanes, 2U);
    }
  }
  EXPECT_EQ(sync_count, 1U);
  EXPECT_EQ(warp.op(warp.size() - 1).kind, OpKind::kSync);
}

TEST(MergeWarp, ReusedOutputIsClearedFirst) {
  // merge_warp(out) must clear but not free: a BlockWork slot reused across
  // waves sees only the new block's instructions.
  std::vector<ThreadTrace> lanes(2);
  lanes[0].memory(OpKind::kLoad, Space::kGlobal, 0, 4);
  lanes[1].memory(OpKind::kLoad, Space::kGlobal, 4, 4);
  WarpTrace out;
  merge_warp(lanes, 128, out);
  ASSERT_EQ(out.size(), 1U);

  for (ThreadTrace& lane : lanes) lane.clear();
  lanes[0].compute(2);
  lanes[1].compute(2);
  merge_warp(lanes, 128, out);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out.op(0).kind, OpKind::kCompute);
  EXPECT_TRUE(out.op(0).addrs.empty());
}

}  // namespace
