// Session/server semantics: the request lifecycle keeps colorings proper
// across mutation batches, replay is bit-identical at any simulator thread
// count, the registry generates each graph exactly once under concurrent
// LOAD, and a per-request timeout fails the request — never the server.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "check_coloring.hpp"
#include "graph/mutate.hpp"
#include "graph/suite.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"

namespace speckle::serve {
namespace {

constexpr const char* kGraph = "Hamrle3";
constexpr std::uint32_t kDenom = 512;
constexpr std::uint64_t kSeed = 0x5eed;

std::vector<std::uint8_t> load_req(std::uint32_t id, const std::string& key,
                                   std::uint32_t denom, std::uint64_t seed) {
  WireWriter body;
  body.str(key);
  body.u32(denom);
  body.u64(seed);
  return make_request(Opcode::kLoad, id, body.bytes());
}

std::vector<std::uint8_t> color_req(std::uint32_t id, std::uint32_t handle,
                                    const std::string& scheme,
                                    std::uint8_t flags = 0) {
  WireWriter body;
  body.u32(handle);
  body.str(scheme);
  body.u8(flags);
  return make_request(Opcode::kColor, id, body.bytes());
}

std::vector<std::uint8_t> query_req(std::uint32_t id, std::uint32_t handle,
                                    QueryWhat what, std::uint64_t arg = 0) {
  WireWriter body;
  body.u32(handle);
  body.u8(static_cast<std::uint8_t>(what));
  body.u64(arg);
  return make_request(Opcode::kQuery, id, body.bytes());
}

std::vector<std::uint8_t> mutate_req(
    std::uint32_t id, std::uint32_t handle,
    const std::vector<graph::EdgeMutation>& batch) {
  WireWriter body;
  body.u32(handle);
  body.u32(static_cast<std::uint32_t>(batch.size()));
  for (const auto& m : batch) {
    body.u8(static_cast<std::uint8_t>(m.kind));
    body.u64(m.u);
    body.u64(m.v);
  }
  return make_request(Opcode::kMutate, id, body.bytes());
}

Status status_of(const std::vector<std::uint8_t>& response) {
  return static_cast<Status>(response.at(0));
}

/// Owns a response payload and exposes a reader positioned past the
/// status + request-id header; fails the test on a non-Ok status. Owns the
/// bytes so the reader's span cannot dangle (WireReader views, not copies).
class OkBody {
 public:
  explicit OkBody(std::vector<std::uint8_t> response)
      : bytes_(std::move(response)), reader_(bytes_) {
    EXPECT_EQ(status_of(bytes_), Status::kOk) << status_name(status_of(bytes_));
    reader_.u8();
    reader_.u32();
  }
  OkBody(const OkBody&) = delete;
  OkBody& operator=(const OkBody&) = delete;
  WireReader& r() { return reader_; }
  bool ok() const { return status_of(bytes_) == Status::kOk; }

 private:
  std::vector<std::uint8_t> bytes_;
  WireReader reader_;
};

/// Read the full coloring back one QUERY at a time.
coloring::Coloring query_coloring(Session& session, std::uint32_t handle,
                                  graph::vid_t n) {
  coloring::Coloring colors(n);
  for (graph::vid_t v = 0; v < n; ++v) {
    OkBody resp(
        session.handle(query_req(1000000 + v, handle, QueryWhat::kVertexColor, v)));
    colors[v] = resp.r().u32();
  }
  return colors;
}

TEST(ServeSession, LifecycleKeepsColoringProperAcrossMutations) {
  GraphRegistry registry;
  SessionConfig config;
  Session session(registry, config);

  OkBody load(session.handle(load_req(1, kGraph, kDenom, kSeed)));
  ASSERT_TRUE(load.ok());
  const std::uint32_t handle = load.r().u32();
  const auto n = static_cast<graph::vid_t>(load.r().u64());
  ASSERT_GT(n, 0u);

  OkBody color(session.handle(color_req(2, handle, "D-ldg")));
  ASSERT_TRUE(color.ok());
  const std::uint32_t ncolors = color.r().u32();
  EXPECT_GT(ncolors, 0u);

  // Host-side mirror of the server's graph, rebuilt batch by batch.
  graph::CsrGraph mirror = graph::make_suite_graph(kGraph, kDenom, kSeed);
  std::uint32_t id = 10;
  std::mt19937 rng(7);
  for (int round = 0; round < 4; ++round) {
    std::vector<graph::EdgeMutation> batch;
    for (int i = 0; i < 16; ++i) {
      const auto u = static_cast<graph::vid_t>(rng() % n);
      const auto v = static_cast<graph::vid_t>(rng() % n);
      batch.push_back({i % 4 == 0 ? graph::EdgeMutation::Kind::kDelete
                                  : graph::EdgeMutation::Kind::kInsert,
                       u, v});
    }
    OkBody mut(session.handle(mutate_req(id++, handle, batch)));
    ASSERT_TRUE(mut.ok());
    mut.r().u32();  // applied
    mut.r().u32();  // skipped
    mut.r().u32();  // dirty
    const std::uint8_t mode = mut.r().u8();
    EXPECT_GE(mode, 1) << "a colored graph must be recolored";

    mirror = graph::apply_mutations(mirror, batch).graph;
    const coloring::Coloring colors = query_coloring(session, handle, n);
    EXPECT_TRUE(speckle::testing::IsProperColoring(mirror, colors))
        << "round " << round;
  }
}

TEST(ServeSession, ColorIsCachedPerScheme) {
  GraphRegistry registry;
  Session session(registry, SessionConfig{});
  OkBody load(session.handle(load_req(1, kGraph, kDenom, kSeed)));
  ASSERT_TRUE(load.ok());
  const std::uint32_t handle = load.r().u32();

  OkBody first(session.handle(color_req(2, handle, "D-ldg")));
  first.r().u32();
  first.r().u32();
  EXPECT_EQ(first.r().u8(), 0) << "first COLOR cannot be cached";
  OkBody second(session.handle(color_req(3, handle, "D-ldg")));
  second.r().u32();
  second.r().u32();
  EXPECT_EQ(second.r().u8(), 1) << "repeat COLOR with the same scheme is cached";
  OkBody other(session.handle(color_req(4, handle, "D-base")));
  other.r().u32();
  other.r().u32();
  EXPECT_EQ(other.r().u8(), 0) << "a different scheme re-runs";
}

TEST(ServeSession, ReplayIsBitIdenticalAcrossHostThreads) {
  std::vector<std::vector<std::uint8_t>> outputs;
  for (const std::uint32_t threads : {1u, 4u}) {
    ServerOptions opts;
    opts.session.host_threads = threads;
    Server server(opts);
    MemoryStream stream;
    std::uint32_t id = 0;
    stream.feed(make_frame(load_req(++id, kGraph, kDenom, kSeed)));
    stream.feed(make_frame(color_req(++id, 1, "D-ldg")));
    stream.feed(make_frame(query_req(++id, 1, QueryWhat::kNumColors)));
    stream.feed(make_frame(mutate_req(
        ++id, 1,
        {{graph::EdgeMutation::Kind::kInsert, 0, 5},
         {graph::EdgeMutation::Kind::kInsert, 1, 6}})));
    stream.feed(make_frame(query_req(++id, 1, QueryWhat::kGraphStats)));
    stream.feed(make_frame(make_request(Opcode::kStats, ++id)));
    EXPECT_EQ(server.serve_stream(stream), 6u);
    outputs.push_back(stream.output());
  }
  EXPECT_EQ(outputs[0], outputs[1])
      << "responses must not depend on simulator host threads";
}

TEST(ServeSession, ConcurrentLoadOfSameKeyGeneratesOnce) {
  GraphRegistry registry;
  std::atomic<int> generator_runs{0};
  constexpr int kThreads = 8;
  std::vector<GraphRegistry::GraphPtr> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&registry, &generator_runs, &results, i] {
      auto loaded = registry.load("key", [&generator_runs] {
        ++generator_runs;
        // Widen the race window: everyone else should pile onto the future.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return std::make_shared<const graph::CsrGraph>(
            graph::make_suite_graph(kGraph, 1024, kSeed));
      });
      results[i] = loaded.graph;
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(generator_runs.load(), 1) << "one generation, however many loaders";
  EXPECT_EQ(registry.generations(), 1u);
  EXPECT_EQ(registry.size(), 1u);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(results[i], results[0]) << "all loaders share one instance";
  }
  // A fully constructed graph — no torn reads: the future only resolves
  // with the finished CSR, so the invariants hold for every loader.
  EXPECT_GT(results[0]->num_vertices(), 0u);
}

TEST(ServeSession, FailedGenerationEvictsAndRetries) {
  GraphRegistry registry;
  EXPECT_THROW(registry.load("bad", []() -> GraphRegistry::GraphPtr {
                 throw std::runtime_error("boom");
               }),
               std::runtime_error);
  EXPECT_EQ(registry.size(), 0u) << "failed entries must not stick";
  auto loaded = registry.load("bad", [] {
    return std::make_shared<const graph::CsrGraph>(
        graph::make_suite_graph(kGraph, 1024, kSeed));
  });
  EXPECT_TRUE(loaded.fresh);
  EXPECT_EQ(registry.generations(), 2u);
}

TEST(ServeSession, TimeoutFailsTheRequestNotTheServer) {
  ServerOptions opts;
  opts.timeout_ms = 20;
  opts.test_delay_ms = 150;
  Server server(opts);
  MemoryStream stream;
  stream.feed(make_frame(make_request(Opcode::kStats, 1)));
  stream.feed(make_frame(make_request(Opcode::kStats, 2)));
  EXPECT_EQ(server.serve_stream(stream), 2u)
      << "the connection must survive a timed-out request";

  // Both requests timed out, both got typed responses with their ids.
  std::size_t pos = 0;
  int seen = 0;
  const auto& bytes = stream.output();
  while (pos + kFramePrefixBytes <= bytes.size()) {
    const std::uint32_t len = static_cast<std::uint32_t>(bytes[pos]) |
                              (static_cast<std::uint32_t>(bytes[pos + 1]) << 8) |
                              (static_cast<std::uint32_t>(bytes[pos + 2]) << 16) |
                              (static_cast<std::uint32_t>(bytes[pos + 3]) << 24);
    pos += kFramePrefixBytes;
    ASSERT_LE(pos + len, bytes.size());
    EXPECT_EQ(static_cast<Status>(bytes[pos]), Status::kTimeout);
    ++seen;
    pos += len;
  }
  EXPECT_EQ(seen, 2);
}

TEST(ServeSession, ShutdownDrainsWithTypedRefusal) {
  Server server(ServerOptions{});
  server.request_shutdown();
  MemoryStream stream;
  stream.feed(make_frame(make_request(Opcode::kStats, 5)));
  EXPECT_EQ(server.serve_stream(stream), 0u);
  const auto& bytes = stream.output();
  ASSERT_GE(bytes.size(), kFramePrefixBytes + kPayloadHeaderBytes);
  EXPECT_EQ(static_cast<Status>(bytes[kFramePrefixBytes]),
            Status::kShuttingDown);
}

}  // namespace
}  // namespace speckle::serve
