// Wire-protocol robustness: the codec roundtrips, and no byte sequence a
// client can send — truncated frames, lying length prefixes, unknown
// opcodes, or plain random garbage — crashes the server or escapes as
// anything but a typed error response.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace speckle::serve {
namespace {

/// Split a serve_stream output byte string back into response payloads.
std::vector<std::vector<std::uint8_t>> split_frames(
    const std::vector<std::uint8_t>& bytes) {
  std::vector<std::vector<std::uint8_t>> frames;
  std::size_t pos = 0;
  while (pos + kFramePrefixBytes <= bytes.size()) {
    const std::uint32_t len = static_cast<std::uint32_t>(bytes[pos]) |
                              (static_cast<std::uint32_t>(bytes[pos + 1]) << 8) |
                              (static_cast<std::uint32_t>(bytes[pos + 2]) << 16) |
                              (static_cast<std::uint32_t>(bytes[pos + 3]) << 24);
    pos += kFramePrefixBytes;
    EXPECT_LE(pos + len, bytes.size()) << "torn response frame";
    frames.emplace_back(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                        bytes.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  EXPECT_EQ(pos, bytes.size()) << "trailing bytes after last frame";
  return frames;
}

Status response_status(const std::vector<std::uint8_t>& payload) {
  EXPECT_GE(payload.size(), kPayloadHeaderBytes);
  return static_cast<Status>(payload.empty() ? 0xff : payload[0]);
}

TEST(ServeProtocol, WriterReaderRoundtrip) {
  WireWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.str("hello");
  w.str("");
  const std::vector<std::uint8_t> bytes = w.take();

  WireReader r(bytes);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefU);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(ServeProtocol, ReaderLatchesOnTruncation) {
  WireWriter w;
  w.u16(3);  // string length 3 but only 1 byte follows
  w.u8('x');
  const std::vector<std::uint8_t> bytes = w.take();
  WireReader r(bytes);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
  // Every later read stays zero and keeps ok() false.
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.done());
}

TEST(ServeProtocol, ReaderRejectsTrailingGarbage) {
  WireWriter w;
  w.u32(7);
  w.u8(0);
  const std::vector<std::uint8_t> bytes = w.take();
  WireReader r(bytes);
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.done());  // the u8 was never consumed
}

TEST(ServeProtocol, FrameRoundtripThroughMemoryStream) {
  Server server(ServerOptions{});
  MemoryStream stream;
  const std::vector<std::uint8_t> req = make_request(Opcode::kStats, 42);
  const std::vector<std::uint8_t> frame = make_frame(req);
  stream.feed(frame);
  EXPECT_EQ(server.serve_stream(stream), 1u);

  const auto frames = split_frames(stream.output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(response_status(frames[0]), Status::kOk);
  WireReader r(frames[0]);
  r.u8();
  EXPECT_EQ(r.u32(), 42u);  // request id echoed
}

TEST(ServeProtocol, OversizedLengthPrefixGetsTypedErrorAndCloses) {
  Server server(ServerOptions{});
  MemoryStream stream;
  const std::uint32_t lying = kMaxFrameBytes + 1;
  std::uint8_t prefix[4];
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<std::uint8_t>(lying >> (8 * i));
  }
  stream.feed(prefix);
  // Bytes after the lying prefix must never be interpreted as requests.
  const std::vector<std::uint8_t> frame =
      make_frame(make_request(Opcode::kStats, 7));
  stream.feed(frame);
  EXPECT_EQ(server.serve_stream(stream), 0u);

  const auto frames = split_frames(stream.output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(response_status(frames[0]), Status::kBadFrame);
}

TEST(ServeProtocol, TruncatedPayloadGetsTypedError) {
  Server server(ServerOptions{});
  MemoryStream stream;
  const std::uint8_t prefix[4] = {100, 0, 0, 0};  // promises 100 bytes
  const std::uint8_t partial[10] = {};            // delivers 10
  stream.feed(prefix);
  stream.feed(partial);
  server.serve_stream(stream);

  const auto frames = split_frames(stream.output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(response_status(frames[0]), Status::kBadFrame);
}

TEST(ServeProtocol, UnknownOpcodeGetsTypedError) {
  for (const std::uint8_t opcode : {std::uint8_t{0}, std::uint8_t{6},
                                    std::uint8_t{0xff}}) {
    Server server(ServerOptions{});
    MemoryStream stream;
    WireWriter payload;
    payload.u8(opcode);
    payload.u32(9);
    stream.feed(make_frame(payload.bytes()));
    EXPECT_EQ(server.serve_stream(stream), 1u);

    const auto frames = split_frames(stream.output());
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(response_status(frames[0]), Status::kBadOpcode);
    WireReader r(frames[0]);
    r.u8();
    EXPECT_EQ(r.u32(), 9u) << "request id must be echoed on errors";
  }
}

TEST(ServeProtocol, ShortPayloadGetsTypedError) {
  Server server(ServerOptions{});
  MemoryStream stream;
  const std::uint8_t tiny[1] = {static_cast<std::uint8_t>(Opcode::kStats)};
  std::vector<std::uint8_t> payload(tiny, tiny + 1);
  stream.feed(make_frame(payload));
  server.serve_stream(stream);

  const auto frames = split_frames(stream.output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(response_status(frames[0]), Status::kBadFrame);
}

// Fuzz: raw random bytes straight into the frame loop. The server must
// neither crash nor abort, and everything it writes back must parse as
// status | request_id | ... response payloads.
TEST(ServeProtocol, FuzzRandomBytesNeverCrash) {
  std::mt19937 rng(0xf00d);
  for (int round = 0; round < 200; ++round) {
    Server server(ServerOptions{});
    MemoryStream stream;
    const std::size_t size = rng() % 512;
    std::vector<std::uint8_t> blob(size);
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng());
    stream.feed(blob);
    server.serve_stream(stream);
    for (const auto& frame : split_frames(stream.output())) {
      ASSERT_GE(frame.size(), kPayloadHeaderBytes);
    }
  }
}

// Fuzz: well-framed random payloads — the frame loop accepts them all, so
// every one must come back as a typed response with the id echoed.
TEST(ServeProtocol, FuzzFramedRandomPayloadsAlwaysAnswered) {
  std::mt19937 rng(0xbeef);
  for (int round = 0; round < 200; ++round) {
    Server server(ServerOptions{});
    MemoryStream stream;
    const std::size_t size = kPayloadHeaderBytes + rng() % 64;
    std::vector<std::uint8_t> payload(size);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    // Keep the opcode in dispatch range half the time to exercise body
    // decoding, not just the opcode check.
    if (round % 2 == 0) payload[0] = static_cast<std::uint8_t>(1 + rng() % 5);
    stream.feed(make_frame(payload));
    EXPECT_EQ(server.serve_stream(stream), 1u);
    const auto frames = split_frames(stream.output());
    ASSERT_EQ(frames.size(), 1u);
    ASSERT_GE(frames[0].size(), kPayloadHeaderBytes);
  }
}

}  // namespace
}  // namespace speckle::serve
