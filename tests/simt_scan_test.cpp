// Block-exclusive-scan device-code tests: correctness against the STL, and
// consistency of the built-in scan_push cost abstraction with the real
// kernel's cost.

#include <gtest/gtest.h>

#include <numeric>

#include "simt/scan.hpp"
#include "simt/worklist.hpp"
#include "support/rng.hpp"

namespace {

using namespace speckle::simt;

std::vector<std::uint32_t> reference_block_scan(const std::vector<std::uint32_t>& in,
                                                std::uint32_t block) {
  std::vector<std::uint32_t> out(in.size());
  for (std::size_t base = 0; base < in.size(); base += block) {
    std::exclusive_scan(in.begin() + base, in.begin() + base + block,
                        out.begin() + base, 0U);
  }
  return out;
}

class ScanSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ScanSweep, MatchesStlExclusiveScan) {
  const std::uint32_t block = GetParam();
  const std::uint32_t n = block * 6;
  Device dev;
  auto in = dev.alloc<std::uint32_t>(n);
  auto out = dev.alloc<std::uint32_t>(n);
  speckle::support::Xoshiro256 rng(block);
  std::vector<std::uint32_t> host_in(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    host_in[i] = static_cast<std::uint32_t>(rng.next_below(10));
    in[i] = host_in[i];
  }
  block_exclusive_scan(dev, in, out, block);
  const auto expected = reference_block_scan(host_in, block);
  for (std::uint32_t i = 0; i < n; ++i) ASSERT_EQ(out[i], expected[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Blocks, ScanSweep,
                         ::testing::Values(32U, 64U, 128U, 256U, 512U, 1024U));

TEST(Scan, AllOnesGivesIota) {
  Device dev;
  const std::uint32_t block = 128;
  auto in = dev.alloc<std::uint32_t>(block);
  auto out = dev.alloc<std::uint32_t>(block);
  in.fill(1);
  block_exclusive_scan(dev, in, out, block);
  for (std::uint32_t i = 0; i < block; ++i) ASSERT_EQ(out[i], i);
}

TEST(Scan, CostIsLogDepthNotLinear) {
  // Doubling the block size should add ~2 tree levels, not double the time
  // per element: per-element cycles must *shrink* with block size.
  auto per_element_cycles = [](std::uint32_t block) {
    Device dev;
    auto in = dev.alloc<std::uint32_t>(block * 16);
    auto out = dev.alloc<std::uint32_t>(block * 16);
    in.fill(1);
    const auto& stats = block_exclusive_scan(dev, in, out, block);
    return static_cast<double>(stats.cycles) / (block * 16);
  };
  EXPECT_LT(per_element_cycles(1024), per_element_cycles(32));
}

TEST(Scan, ScanPushChargeIsSameOrderAsRealScan) {
  // The abstract scan_push cost and the explicit Blelloch kernel must agree
  // within an order of magnitude — otherwise the ablation results would be
  // artifacts of the abstraction.
  const std::uint32_t n = 1 << 14;
  Device dev_push;
  Worklist wl(dev_push, n);
  const auto& push_stats = dev_push.launch(
      {.grid_blocks = n / 128, .block_threads = 128}, "push", [&](Thread& t) {
        t.scan_push(wl, static_cast<std::uint32_t>(t.global_id()));
      });

  Device dev_scan;
  auto in = dev_scan.alloc<std::uint32_t>(n);
  auto out = dev_scan.alloc<std::uint32_t>(n);
  in.fill(1);
  const auto& scan_stats = block_exclusive_scan(dev_scan, in, out, 128);

  EXPECT_LT(push_stats.cycles, 20 * scan_stats.cycles);
  EXPECT_LT(scan_stats.cycles, 20 * push_stats.cycles);
}

TEST(ScanDeathTest, RejectsBadGeometry) {
  Device dev;
  auto in = dev.alloc<std::uint32_t>(96);
  auto out = dev.alloc<std::uint32_t>(96);
  EXPECT_DEATH(block_exclusive_scan(dev, in, out, 96), "power of two");
  auto in2 = dev.alloc<std::uint32_t>(100);
  auto out2 = dev.alloc<std::uint32_t>(100);
  EXPECT_DEATH(block_exclusive_scan(dev, in2, out2, 64), "whole number of blocks");
}

}  // namespace
