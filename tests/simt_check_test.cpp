// Tests for speckle::check, the static launch-plan dataflow checker.
//
// Three layers:
//   * victim plans — one hand-seeded LaunchPlan per checker rule, asserting
//     the exact deterministic finding (rule, kernel, partner, buffer);
//   * sanitizer cross-validation — a Device run whose spec under-declares
//     what the kernel touches must produce san::kUndeclaredAccess, and the
//     corrected spec must be silent (specs cannot rot);
//   * spec/dynamic agreement — every GPU scheme and the multi-device
//     pipeline run with check + sanitize enabled: the checker is clean, the
//     sanitizer observes no access outside the declared intents, and the
//     reports are bit-identical at --threads=1 and --threads=4.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "coloring/distance2.hpp"
#include "coloring/runner.hpp"
#include "graph/suite.hpp"
#include "simt/check.hpp"
#include "simt/device.hpp"
#include "simt/san.hpp"
#include "simt/worklist.hpp"

namespace {

using namespace speckle;
using check::Intent;
using check::RuleKind;

// Hand-built plans use synthetic 256-byte buffers at fixed addresses.
constexpr std::uint64_t kBufA = 0x1000;
constexpr std::uint64_t kBufB = 0x2000;
constexpr std::uint64_t kTail = 0x3000;

check::LaunchPlan two_buffer_plan() {
  check::LaunchPlan plan;
  plan.on_alloc(kBufA, 256, "alpha");
  plan.on_alloc(kBufB, 256, "beta.items");
  plan.on_alloc(kTail, 4, "beta.tail");
  return plan;
}

// --- victim plans, one per rule -------------------------------------------

TEST(CheckVictim, MissingBarrierBetweenWriterAndReaderIsAHazard) {
  check::LaunchPlan plan = two_buffer_plan();
  check::KernelSpec writer;
  writer.use(kBufA, Intent::kWrite);
  check::KernelSpec reader;
  reader.use(kBufA, Intent::kRead);
  plan.add_launch("writer", &writer, false, 4, 128);
  plan.add_launch("reader", &reader, false, 4, 128);  // no barrier() between
  plan.barrier();

  const check::Report report = check::check_plan(plan);
  ASSERT_EQ(report.findings.size(), 1u) << report.format();
  const check::Finding& f = report.findings[0];
  EXPECT_EQ(f.kind, RuleKind::kHazard);
  EXPECT_EQ(f.kernel, "writer");
  EXPECT_EQ(f.other, "reader");
  EXPECT_EQ(f.buffer, "alpha");
  EXPECT_EQ(f.region, 0u);
  EXPECT_EQ(f.detail, "write vs read with no intervening barrier");
}

TEST(CheckVictim, BarrierBetweenLaunchesSuppressesTheHazard) {
  check::LaunchPlan plan = two_buffer_plan();
  check::KernelSpec writer;
  writer.use(kBufA, Intent::kWrite);
  check::KernelSpec reader;
  reader.use(kBufA, Intent::kRead);
  plan.add_launch("writer", &writer, false, 4, 128);
  plan.barrier();
  plan.add_launch("reader", &reader, false, 4, 128);
  plan.barrier();
  EXPECT_TRUE(check::check_plan(plan).clean());
}

TEST(CheckVictim, DisjointRangesInOneRegionAreCompatible) {
  check::LaunchPlan plan = two_buffer_plan();
  check::KernelSpec lo_half;
  lo_half.use(kBufA, Intent::kWrite, 0, 128);
  check::KernelSpec hi_half;
  hi_half.use(kBufA, Intent::kRead, 128, 256);
  plan.add_launch("lo", &lo_half, false, 1, 128);
  plan.add_launch("hi", &hi_half, false, 1, 128);
  plan.barrier();
  EXPECT_TRUE(check::check_plan(plan).clean());
}

TEST(CheckVictim, LdgOfBufferWrittenInSameRegion) {
  check::LaunchPlan plan = two_buffer_plan();
  check::KernelSpec ro_reader;
  ro_reader.use(kBufA, Intent::kLdg);
  check::KernelSpec writer;
  writer.use(kBufA, Intent::kWrite);
  plan.add_launch("ro_reader", &ro_reader, false, 4, 128);
  plan.add_launch("writer", &writer, false, 4, 128);
  plan.barrier();

  const check::Report report = check::check_plan(plan);
  ASSERT_EQ(report.findings.size(), 1u) << report.format();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kLdgWritable);
  EXPECT_EQ(report.findings[0].kernel, "ro_reader");
  EXPECT_EQ(report.findings[0].other, "writer");
  EXPECT_EQ(report.findings[0].buffer, "alpha");
}

TEST(CheckVictim, LdgOfBufferTheSameKernelWrites) {
  check::LaunchPlan plan = two_buffer_plan();
  check::KernelSpec spec;
  spec.use(kBufA, Intent::kLdg).use(kBufA, Intent::kRacy);
  plan.add_launch("speculator", &spec, true, 4, 128);
  plan.barrier();

  const check::Report report = check::check_plan(plan);
  ASSERT_EQ(report.findings.size(), 1u) << report.format();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kLdgWritable);
  EXPECT_EQ(report.findings[0].kernel, "speculator");
  EXPECT_EQ(report.findings[0].other, "speculator");
  EXPECT_EQ(report.findings[0].detail,
            "also declared racy by the same kernel");
}

TEST(CheckVictim, AliasedDoubleBufferIsFlagged) {
  check::LaunchPlan plan = two_buffer_plan();
  check::KernelSpec spec;
  // The kernel consumes beta AND pushes into beta: the double buffers
  // coincide (a std::swap that never happened).
  spec.use(kBufB, Intent::kRead, 0, 64).pushes_raw(kBufB, kTail, 16);
  plan.add_launch("detect", &spec, false, 1, 128);
  plan.barrier();

  const check::Report report = check::check_plan(plan);
  ASSERT_EQ(report.findings.size(), 1u) << report.format();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kPushAlias);
  EXPECT_EQ(report.findings[0].kernel, "detect");
  EXPECT_EQ(report.findings[0].buffer, "beta.items");
}

TEST(CheckVictim, PushBoundBeyondCapacityOverflows) {
  check::LaunchPlan plan = two_buffer_plan();
  check::KernelSpec spec;
  // beta.items holds 256/4 = 64 items; declaring 65 can overflow.
  spec.pushes_raw(kBufB, kTail, 65);
  plan.add_launch("pusher", &spec, false, 1, 128);
  plan.barrier();

  const check::Report report = check::check_plan(plan);
  ASSERT_EQ(report.findings.size(), 1u) << report.format();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kCapacityOverflow);
  EXPECT_EQ(report.findings[0].buffer, "beta.items");
  EXPECT_EQ(report.findings[0].detail,
            "declared push bound 65 exceeds capacity 64 items");

  // The exact capacity is fine.
  check::LaunchPlan ok = two_buffer_plan();
  check::KernelSpec fits;
  fits.pushes_raw(kBufB, kTail, 64);
  ok.add_launch("pusher", &fits, false, 1, 128);
  ok.barrier();
  EXPECT_TRUE(check::check_plan(ok).clean());
}

TEST(CheckVictim, GhostRowTrespassDuringInFlightExchange) {
  check::LaunchPlan plan = two_buffer_plan();
  // Bytes [128, 256) of alpha are being overwritten by an async copy.
  plan.copy_write(kBufA, 128, 256, "ghost-exchange");
  check::KernelSpec trespasser;
  trespasser.use(kBufA, Intent::kRead);  // whole extent: overlaps the window
  plan.add_launch("trespasser", &trespasser, false, 1, 128);
  plan.barrier();

  const check::Report report = check::check_plan(plan);
  ASSERT_EQ(report.findings.size(), 1u) << report.format();
  const check::Finding& f = report.findings[0];
  EXPECT_EQ(f.kind, RuleKind::kGhostTrespass);
  EXPECT_EQ(f.kernel, "trespasser");
  EXPECT_EQ(f.other, "ghost-exchange");
  EXPECT_EQ(f.buffer, "alpha");
  EXPECT_EQ(f.detail, "read overlaps in-flight copy bytes [128,256)");
}

TEST(CheckVictim, OwnedPrefixAccessAndPostFenceAccessAreClean) {
  check::LaunchPlan plan = two_buffer_plan();
  plan.copy_write(kBufA, 128, 256, "ghost-exchange");
  check::KernelSpec owned_only;
  owned_only.use(kBufA, Intent::kRead, 0, 128);  // stays out of the window
  plan.add_launch("interior", &owned_only, false, 1, 128);
  plan.barrier();
  plan.fence();
  check::KernelSpec full;
  full.use(kBufA, Intent::kRead);  // after the fence: legal again
  plan.add_launch("consumer", &full, false, 1, 128);
  plan.barrier();
  EXPECT_TRUE(check::check_plan(plan).clean());
}

TEST(CheckVictim, SpecLessLaunchIsFlagged) {
  check::LaunchPlan plan = two_buffer_plan();
  plan.add_launch("legacy", nullptr, false, 1, 128);
  plan.barrier();

  const check::Report report = check::check_plan(plan);
  ASSERT_EQ(report.findings.size(), 1u) << report.format();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kMissingSpec);
  EXPECT_EQ(report.findings[0].kernel, "legacy");
}

TEST(CheckVictim, UnknownBufferBaseIsFlagged) {
  check::LaunchPlan plan = two_buffer_plan();
  check::KernelSpec spec;
  spec.use(0xdead000, Intent::kRead);
  plan.add_launch("stray", &spec, false, 1, 128);
  plan.barrier();

  const check::Report report = check::check_plan(plan);
  ASSERT_EQ(report.findings.size(), 1u) << report.format();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kUnknownBuffer);
  EXPECT_EQ(report.findings[0].buffer, "buf@0xdead000");
}

TEST(CheckVictim, AtomicsMayShareARegionButWritesMayNot) {
  check::LaunchPlan plan = two_buffer_plan();
  check::KernelSpec a;
  a.use(kBufA, Intent::kAtomic);
  check::KernelSpec b;
  b.use(kBufA, Intent::kAtomic);
  plan.add_launch("atomic_a", &a, false, 1, 128);
  plan.add_launch("atomic_b", &b, false, 1, 128);
  plan.barrier();
  EXPECT_TRUE(check::check_plan(plan).clean());

  check::KernelSpec w;
  w.use(kBufA, Intent::kWrite);
  plan.add_launch("writer_a", &w, false, 1, 128);
  plan.add_launch("writer_b", &w, false, 1, 128);
  plan.barrier();
  const check::Report report = check::check_plan(plan);
  ASSERT_EQ(report.findings.size(), 1u) << report.format();
  EXPECT_EQ(report.findings[0].kind, RuleKind::kHazard);
}

TEST(CheckVictim, CheckPlanIsDeterministic) {
  check::LaunchPlan plan = two_buffer_plan();
  check::KernelSpec spec;
  spec.use(kBufA, Intent::kLdg).use(kBufA, Intent::kWrite);
  spec.pushes_raw(kBufB, kTail, 100);
  plan.add_launch("victim", &spec, false, 1, 128);
  plan.add_launch("victim2", nullptr, false, 1, 128);
  plan.barrier();
  const check::Report first = check::check_plan(plan);
  const check::Report second = check::check_plan(plan);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.format(), second.format());
  EXPECT_EQ(first.to_json(), second.to_json());
}

// --- sanitizer cross-validation -------------------------------------------

simt::DeviceConfig checked_config(std::uint32_t host_threads = 1) {
  simt::DeviceConfig cfg = simt::DeviceConfig::k20c();
  cfg.sanitize = true;
  cfg.check = true;
  cfg.host_threads = host_threads;
  return cfg;
}

TEST(CheckCrossValidation, UndeclaredBufferAccessFires) {
  simt::Device dev(checked_config());
  auto declared = dev.alloc<std::uint32_t>(32, "declared");
  auto hidden = dev.alloc<std::uint32_t>(32, "hidden");
  declared.fill(1);
  hidden.fill(1);
  check::KernelSpec spec;
  spec.reads(declared);  // says nothing about `hidden`
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "under_declared", spec,
             [&](simt::Thread& t) {
               t.ld(declared, t.thread_in_block());
               t.st(hidden, t.thread_in_block(), 2u);  // outside the spec
             });
  const san::Report report = dev.san_report();
  ASSERT_EQ(report.findings.size(), 1u) << report.format();
  EXPECT_EQ(report.findings[0].kind, san::FindingKind::kUndeclaredAccess);
  EXPECT_EQ(report.findings[0].buffer, "hidden");
  EXPECT_EQ(report.findings[0].kernel, "under_declared");
  EXPECT_EQ(report.findings[0].access, san::AccessKind::kStore);
}

TEST(CheckCrossValidation, CorrectSpecIsSilent) {
  simt::Device dev(checked_config());
  auto declared = dev.alloc<std::uint32_t>(32, "declared");
  auto hidden = dev.alloc<std::uint32_t>(32, "hidden");
  declared.fill(1);
  hidden.fill(1);
  check::KernelSpec spec;
  spec.reads(declared).writes(hidden);
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "declared_fully", spec,
             [&](simt::Thread& t) {
               t.ld(declared, t.thread_in_block());
               t.st(hidden, t.thread_in_block(), 2u);
             });
  EXPECT_TRUE(dev.san_report().clean()) << dev.san_report().format();
  EXPECT_TRUE(dev.check_report().clean()) << dev.check_report().format();
}

TEST(CheckCrossValidation, RangeViolationFires) {
  simt::Device dev(checked_config());
  auto buf = dev.alloc<std::uint32_t>(32, "ranged");
  buf.fill(1);
  check::KernelSpec spec;
  spec.reads(buf, 0, 8);  // first eight elements only
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "range_breaker", spec,
             [&](simt::Thread& t) { t.ld(buf, 16); });
  const san::Report report = dev.san_report();
  ASSERT_EQ(report.findings.size(), 1u) << report.format();
  EXPECT_EQ(report.findings[0].kind, san::FindingKind::kUndeclaredAccess);
  EXPECT_EQ(report.findings[0].buffer, "ranged");
}

TEST(CheckCrossValidation, LdgRequiresTheLdgIntent) {
  simt::Device dev(checked_config());
  auto buf = dev.alloc<std::uint32_t>(32, "ro");
  buf.fill(1);
  check::KernelSpec spec;
  spec.reads(buf);  // plain read intent: __ldg must be declared explicitly
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "ldg_sneak", spec,
             [&](simt::Thread& t) { t.ldg(buf, t.thread_in_block()); });
  const san::Report report = dev.san_report();
  ASSERT_EQ(report.findings.size(), 1u) << report.format();
  EXPECT_EQ(report.findings[0].kind, san::FindingKind::kUndeclaredAccess);
  EXPECT_EQ(report.findings[0].access, san::AccessKind::kLdg);
}

TEST(CheckCrossValidation, UndeclaredWorklistPushFires) {
  simt::Device dev(checked_config());
  simt::Worklist in(dev, 32, "in");
  simt::Worklist out(dev, 32, "out");
  in.fill_iota(32);
  check::KernelSpec spec;
  spec.reads(in.items(), 0, 32);  // forgets pushes(out, ...)
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "push_sneak", spec,
             [&](simt::Thread& t) {
               const std::uint32_t v = t.ld(in.items(), t.thread_in_block());
               t.scan_push(out, v);
             });
  const san::Report report = dev.san_report();
  EXPECT_GE(report.findings.size(), 1u) << report.format();
  EXPECT_GE(report.count(san::FindingKind::kUndeclaredAccess), 1u);
}

TEST(CheckCrossValidation, SpecScopeEndsWithTheLaunch) {
  simt::Device dev(checked_config());
  auto buf = dev.alloc<std::uint32_t>(32, "scoped");
  buf.fill(1);
  check::KernelSpec narrow;
  narrow.reads(buf, 0, 1);
  dev.launch({.grid_blocks = 1, .block_threads = 1}, "narrow", narrow,
             [&](simt::Thread& t) { t.ld(buf, 0); });
  // A later spec-less launch is NOT constrained by the previous spec (it is
  // a kMissingSpec checker finding instead, not a sanitizer one).
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "legacy",
             [&](simt::Thread& t) { t.ld(buf, t.thread_in_block()); });
  EXPECT_TRUE(dev.san_report().clean()) << dev.san_report().format();
  EXPECT_EQ(dev.check_report().count(check::RuleKind::kMissingSpec), 1u);
}

// --- spec/dynamic agreement across the schemes -----------------------------

using coloring::Scheme;

coloring::RunOptions agreement_options(std::uint32_t threads,
                                       std::uint32_t devices = 1) {
  coloring::RunOptions opts;
  opts.device.sanitize = true;
  opts.device.check = true;
  opts.device.host_threads = threads;
  opts.num_devices = devices;
  return opts;
}

TEST(CheckAgreement, AllGpuSchemesCleanAndThreadInvariant) {
  const graph::CsrGraph g = graph::make_suite_graph("rmat-er", 256);
  const std::vector<Scheme> schemes = {
      Scheme::kGm3Step,    Scheme::kTopoBase, Scheme::kTopoLdg,
      Scheme::kDataBase,   Scheme::kDataLdg,  Scheme::kDataAtomic,
      Scheme::kDataWarp,   Scheme::kCsrColor, Scheme::kDataLdf,
      Scheme::kJpGpu,
  };
  for (const Scheme s : schemes) {
    const coloring::RunResult t1 = coloring::run_scheme(s, g, agreement_options(1));
    const coloring::RunResult t4 = coloring::run_scheme(s, g, agreement_options(4));
    EXPECT_TRUE(t1.check.clean())
        << coloring::scheme_name(s) << "\n" << t1.check.format();
    EXPECT_TRUE(t1.san.clean())
        << coloring::scheme_name(s) << "\n" << t1.san.format();
    EXPECT_EQ(t1.check, t4.check) << coloring::scheme_name(s);
    EXPECT_EQ(t1.san, t4.san) << coloring::scheme_name(s);
    EXPECT_FALSE(t1.check.launches.empty()) << coloring::scheme_name(s);
  }
}

TEST(CheckAgreement, Distance2CleanAndThreadInvariant) {
  const graph::CsrGraph g = graph::make_suite_graph("thermal2", 512);
  coloring::GpuOptions gpu;
  gpu.device.sanitize = true;
  gpu.device.check = true;
  gpu.device.host_threads = 1;
  const coloring::GpuResult t1 = coloring::topo_color_d2(g, gpu);
  gpu.device.host_threads = 4;
  const coloring::GpuResult t4 = coloring::topo_color_d2(g, gpu);
  EXPECT_TRUE(t1.check.clean()) << t1.check.format();
  EXPECT_TRUE(t1.san.clean()) << t1.san.format();
  EXPECT_EQ(t1.check, t4.check);
}

TEST(CheckAgreement, MultiDeviceCleanAndThreadInvariant) {
  const graph::CsrGraph g = graph::make_suite_graph("rmat-er", 256);
  for (const std::uint32_t devices : {1u, 4u}) {
    const coloring::RunResult t1 =
        coloring::run_scheme(Scheme::kDataLdg, g, agreement_options(1, devices));
    const coloring::RunResult t4 =
        coloring::run_scheme(Scheme::kDataLdg, g, agreement_options(4, devices));
    EXPECT_TRUE(t1.check.clean())
        << "P=" << devices << "\n" << t1.check.format();
    EXPECT_TRUE(t1.san.clean()) << "P=" << devices << "\n" << t1.san.format();
    EXPECT_EQ(t1.check, t4.check) << "P=" << devices;
    EXPECT_EQ(t1.san, t4.san) << "P=" << devices;
    if (devices > 1) {
      // The exchange windows made it into the plan, and every device's
      // slice of the fleet view carries its own launches.
      EXPECT_GT(t1.check.copies, 0u);
      for (const auto& d : t1.devices) {
        EXPECT_TRUE(d.check.clean())
            << "device " << d.device << "\n" << d.check.format();
      }
    }
  }
}

TEST(CheckAgreement, ReportsFormatDeterministically) {
  const graph::CsrGraph g = graph::make_suite_graph("rmat-er", 512);
  const coloring::RunResult a =
      coloring::run_scheme(Scheme::kDataLdg, g, agreement_options(1));
  const coloring::RunResult b =
      coloring::run_scheme(Scheme::kDataLdg, g, agreement_options(4));
  EXPECT_EQ(a.check.format_plan(), b.check.format_plan());
  EXPECT_EQ(a.check.to_json(), b.check.to_json());
}

}  // namespace
