// GPU-sim coloring schemes: correctness on a sweep of graph families,
// determinism, cross-checks between variants, and cost-model invariants.

#include <gtest/gtest.h>

#include "check_coloring.hpp"
#include "coloring/csrcolor.hpp"
#include "coloring/data.hpp"
#include "coloring/gm3step.hpp"
#include "coloring/runner.hpp"
#include "coloring/seq_greedy.hpp"
#include "coloring/topo.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace speckle;
using namespace speckle::coloring;
using speckle::testing::IsProperColoring;
using graph::build_csr;
using graph::CsrGraph;
using graph::vid_t;

struct GraphCase {
  const char* name;
  CsrGraph (*make)();
};

CsrGraph make_er() { return build_csr(2000, graph::erdos_renyi(2000, 16000, 7)); }
CsrGraph make_grid2d() { return build_csr(1600, graph::stencil2d(40, 40)); }
CsrGraph make_grid3d() { return build_csr(1728, graph::stencil3d(12, 12, 12)); }
CsrGraph make_rmat() {
  return build_csr(1 << 11,
                   graph::rmat(11, 12000, graph::RmatParams{0.45, 0.15, 0.15, 0.25, 0.1}, 9));
}
CsrGraph make_local() { return build_csr(2500, graph::local_random(2500, 1, 7, 100, 4)); }
CsrGraph make_sparse() { return build_csr(3000, graph::erdos_renyi(3000, 3000, 2)); }
CsrGraph make_star() {
  graph::EdgeList edges;
  for (vid_t v = 1; v < 300; ++v) edges.push_back({0, v});
  return build_csr(300, edges);
}

const GraphCase kCases[] = {
    {"er", make_er},         {"grid2d", make_grid2d}, {"grid3d", make_grid3d},
    {"rmat", make_rmat},     {"local", make_local},   {"sparse", make_sparse},
    {"star", make_star},
};

class GpuSchemeSweep
    : public ::testing::TestWithParam<std::tuple<GraphCase, Scheme>> {};

TEST_P(GpuSchemeSweep, ProperColoringWithinDegreeBound) {
  const auto& [graph_case, scheme] = GetParam();
  const CsrGraph g = graph_case.make();
  // run_scheme aborts internally on improper colorings; re-verify here.
  const RunResult r = run_scheme(scheme, g);
  EXPECT_GE(r.iterations, 1U);
  EXPECT_GT(r.model_ms, 0.0);
  if (scheme != Scheme::kCsrColor) {
    // Greedy-family schemes respect the max-degree+1 bound.
    EXPECT_TRUE(speckle::testing::IsGreedyColoring(g, r.coloring))
        << scheme_name(scheme);
  } else {
    EXPECT_TRUE(IsProperColoring(g, r.coloring));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesTimesGraphs, GpuSchemeSweep,
    ::testing::Combine(::testing::ValuesIn(kCases),
                       ::testing::Values(Scheme::kGm3Step, Scheme::kTopoBase,
                                         Scheme::kTopoLdg, Scheme::kDataBase,
                                         Scheme::kDataLdg, Scheme::kCsrColor,
                                         Scheme::kDataAtomic)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_" +
             [](const char* s) {
               std::string out;
               for (const char* p = s; *p; ++p) out += std::isalnum(*p) ? *p : '_';
               return out;
             }(scheme_name(std::get<1>(info.param)));
    });

TEST(GpuSchemes, DeterministicAcrossRuns) {
  const CsrGraph g = make_rmat();
  for (Scheme s : {Scheme::kTopoBase, Scheme::kDataBase, Scheme::kCsrColor}) {
    const RunResult a = run_scheme(s, g);
    const RunResult b = run_scheme(s, g);
    EXPECT_EQ(a.coloring, b.coloring) << scheme_name(s);
    EXPECT_EQ(a.model_ms, b.model_ms) << scheme_name(s);
  }
}

TEST(GpuSchemes, LdgVariantsColorIdentically) {
  // __ldg changes the data path, not the data: T-ldg/D-ldg must reproduce
  // T-base/D-base's coloring exactly.
  const CsrGraph g = make_er();
  EXPECT_EQ(run_scheme(Scheme::kTopoBase, g).coloring,
            run_scheme(Scheme::kTopoLdg, g).coloring);
  EXPECT_EQ(run_scheme(Scheme::kDataBase, g).coloring,
            run_scheme(Scheme::kDataLdg, g).coloring);
}

TEST(GpuSchemes, ScanAndAtomicPushColorIdentically) {
  const CsrGraph g = make_grid3d();
  const RunResult scan = run_scheme(Scheme::kDataBase, g);
  const RunResult atomic = run_scheme(Scheme::kDataAtomic, g);
  EXPECT_EQ(scan.coloring, atomic.coloring);
  EXPECT_EQ(scan.iterations, atomic.iterations);
}

TEST(GpuSchemes, ScanPushUsesFewerAtomics) {
  const CsrGraph g = make_grid3d();
  const RunResult scan = run_scheme(Scheme::kDataBase, g);
  const RunResult atomic = run_scheme(Scheme::kDataAtomic, g);
  std::uint64_t scan_atomics = 0, atomic_atomics = 0;
  for (const auto& k : scan.report.kernels) scan_atomics += k.atomics;
  for (const auto& k : atomic.report.kernels) atomic_atomics += k.atomics;
  EXPECT_LE(scan_atomics, atomic_atomics);
}

TEST(JpGpu, OneColorPerPassAndProper) {
  // Classic Jones–Plassmann: one independent set (hence one color) per
  // pass, so colors == iterations; csrcolor's multi-hash breaks that link.
  const CsrGraph g = make_er();
  const RunResult jp = run_scheme(Scheme::kJpGpu, g);
  EXPECT_TRUE(IsProperColoring(g, jp.coloring));
  EXPECT_EQ(jp.num_colors, jp.iterations);
  const RunResult multi = run_scheme(Scheme::kCsrColor, g);
  EXPECT_LT(multi.iterations, jp.iterations);
}

TEST(JpGpu, MatchesCpuReferenceWithSameOptions) {
  const CsrGraph g = make_grid3d();
  CsrColorOptions opts;
  opts.num_hashes = 1;
  opts.use_min_sets = false;
  const GpuResult gpu = csrcolor(g, opts);
  const CsrColorCpuResult cpu = csrcolor_cpu(g, opts);
  EXPECT_EQ(gpu.coloring, cpu.coloring);
}

TEST(CsrColor, GpuMatchesCpuReference) {
  const CsrGraph g = make_er();
  CsrColorOptions opts;
  const GpuResult gpu = csrcolor(g, opts);
  const CsrColorCpuResult cpu = csrcolor_cpu(g, opts);
  EXPECT_EQ(gpu.coloring, cpu.coloring);
  EXPECT_EQ(gpu.iterations, cpu.passes);
}

TEST(CsrColor, UsesMoreColorsThanGreedy) {
  // Fig 6's headline: the MIS scheme trades colors for speed.
  const CsrGraph g = make_er();
  const auto greedy = seq_greedy(g, {.charge_model = false});
  const CsrColorCpuResult mis = csrcolor_cpu(g);
  EXPECT_GT(mis.num_colors, greedy.num_colors);
}

TEST(CsrColor, HashIsStableAndSpread) {
  const auto a = csrcolor_hash(1, 0, 42);
  EXPECT_EQ(a, csrcolor_hash(1, 0, 42));
  EXPECT_NE(a, csrcolor_hash(1, 1, 42));
  EXPECT_NE(a, csrcolor_hash(2, 0, 42));
  EXPECT_NE(a, csrcolor_hash(1, 0, 43));
}

TEST(Gm3Step, ReportsCpuResolution) {
  const CsrGraph g = make_er();
  const Gm3Result r = gm3step_color(g);
  EXPECT_TRUE(IsProperColoring(g, r.coloring));
  // The whole point of step 3: some conflicts survive the GPU rounds on a
  // random graph and must be fixed sequentially.
  EXPECT_GT(r.cpu_resolved, 0U);
  EXPECT_GT(r.cpu_ms, 0.0);
  // And the color array crossed PCIe both ways.
  EXPECT_GE(r.report.d2h.bytes, g.num_vertices() * sizeof(color_t));
  EXPECT_GE(r.report.h2d.bytes, g.num_vertices() * sizeof(color_t));
}

TEST(GpuSchemes, TopoIterationsAtLeastTwo) {
  // Algorithm 4 always needs a final no-op round to observe quiescence.
  const CsrGraph g = make_grid2d();
  const RunResult r = run_scheme(Scheme::kTopoBase, g);
  EXPECT_GE(r.iterations, 2U);
}

TEST(GpuSchemes, SpeculationQualityCloseToSequential) {
  // Fig 6: all SGR schemes use a similar number of colors.
  const CsrGraph g = make_er();
  const auto seq = seq_greedy(g, {.charge_model = false});
  for (Scheme s : {Scheme::kTopoBase, Scheme::kDataBase, Scheme::kGm3Step}) {
    const RunResult r = run_scheme(s, g);
    EXPECT_LE(r.num_colors, seq.num_colors + 4) << scheme_name(s);
  }
}

TEST(GpuSchemes, BlockSizeChangesTimingNotColoringValidity) {
  const CsrGraph g = make_grid3d();
  for (std::uint32_t block : {32U, 64U, 128U, 256U, 512U, 1024U}) {
    RunOptions opts;
    opts.block_size = block;
    const RunResult r = run_scheme(Scheme::kDataBase, g, opts);
    EXPECT_TRUE(IsProperColoring(g, r.coloring)) << block;
  }
}

TEST(Runner, SchemeNamesRoundTrip) {
  for (Scheme s : all_schemes()) {
    EXPECT_EQ(scheme_from_name(scheme_name(s)), s);
  }
  EXPECT_EQ(paper_schemes().size(), 7U);
}

TEST(RunnerDeathTest, UnknownSchemeNameAborts) {
  EXPECT_DEATH(scheme_from_name("bogus"), "unknown scheme");
}

}  // namespace
