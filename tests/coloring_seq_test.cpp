// Sequential greedy, orderings, verification, and the first-fit rule.

#include <gtest/gtest.h>

#include "check_coloring.hpp"
#include "coloring/ordering.hpp"
#include "coloring/seq_greedy.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace speckle;
using namespace speckle::coloring;
using speckle::testing::IsProperColoring;
using graph::build_csr;
using graph::CsrGraph;
using graph::vid_t;

TEST(Verify, DetectsConflictsAndUncolored) {
  const CsrGraph g = build_csr(3, {{0, 1}, {1, 2}});
  Coloring bad = {1, 1, 2};
  const VerifyResult r = verify_coloring(g, bad);
  EXPECT_FALSE(r.proper);
  EXPECT_EQ(r.conflicts, 1U);
  Coloring partial = {1, 2, kUncolored};
  EXPECT_EQ(verify_coloring(g, partial).uncolored, 1U);
  Coloring good = {1, 2, 1};
  EXPECT_TRUE(IsProperColoring(g, good));
  EXPECT_EQ(verify_coloring(g, good).num_colors, 2U);
}

TEST(Verify, HistogramAndBalance) {
  Coloring c = {1, 1, 1, 2};
  const auto hist = color_histogram(c);
  ASSERT_EQ(hist.size(), 3U);
  EXPECT_EQ(hist[1], 3U);
  EXPECT_EQ(hist[2], 1U);
  EXPECT_DOUBLE_EQ(color_balance(c), 3.0 / 2.0);  // largest=3, ideal=2
}

TEST(SeqGreedy, TriangleNeedsThreeColors) {
  const CsrGraph g = build_csr(3, {{0, 1}, {1, 2}, {0, 2}});
  const SeqResult r = seq_greedy(g);
  EXPECT_TRUE(IsProperColoring(g, r.coloring));
  EXPECT_EQ(r.num_colors, 3U);
}

TEST(SeqGreedy, BipartiteStencilUsesTwoColors) {
  const CsrGraph g = build_csr(100, graph::stencil2d(10, 10));
  const SeqResult r = seq_greedy(g);
  EXPECT_TRUE(IsProperColoring(g, r.coloring));
  EXPECT_EQ(r.num_colors, 2U);
}

TEST(SeqGreedy, CompleteGraphNeedsN) {
  const CsrGraph g = build_csr(7, graph::complete(7));
  const SeqResult r = seq_greedy(g);
  EXPECT_EQ(r.num_colors, 7U);
}

TEST(SeqGreedy, EvenRingTwoColorsOddRingThree) {
  const CsrGraph even = build_csr(10, graph::ring_lattice(10, 1));
  EXPECT_EQ(seq_greedy(even).num_colors, 2U);
  const CsrGraph odd = build_csr(11, graph::ring_lattice(11, 1));
  EXPECT_EQ(seq_greedy(odd).num_colors, 3U);
}

TEST(SeqGreedy, IsolatedVerticesGetColorOne) {
  const CsrGraph g = build_csr(4, {{0, 1}});
  const SeqResult r = seq_greedy(g);
  EXPECT_EQ(r.coloring[2], 1U);
  EXPECT_EQ(r.coloring[3], 1U);
}

TEST(SeqGreedy, BoundedByMaxDegreePlusOne) {
  const CsrGraph g = build_csr(500, graph::erdos_renyi(500, 3000, 9));
  const SeqResult r = seq_greedy(g);
  EXPECT_TRUE(IsProperColoring(g, r.coloring));
  EXPECT_LE(r.num_colors, g.max_degree() + 1);
}

TEST(SeqGreedy, ModelChargesCycles) {
  const CsrGraph g = build_csr(200, graph::erdos_renyi(200, 1000, 2));
  SeqOptions opts;
  const SeqResult charged = seq_greedy(g, opts);
  EXPECT_GT(charged.model_ms, 0.0);
  opts.charge_model = false;
  EXPECT_EQ(seq_greedy(g, opts).model_ms, 0.0);
}

TEST(FirstFitColor, PicksSmallestPermissible) {
  const CsrGraph g = build_csr(4, {{0, 1}, {0, 2}, {0, 3}});
  Coloring c = {kUncolored, 1, 2, 4};
  EXPECT_EQ(first_fit_color(g, c, 0), 3U);
  c = {kUncolored, 1, 2, 3};
  EXPECT_EQ(first_fit_color(g, c, 0), 4U);
  c = {kUncolored, 2, 3, 4};
  EXPECT_EQ(first_fit_color(g, c, 0), 1U);
}

TEST(FirstFitColor, WidensBeyond64Colors) {
  // A star whose leaves use colors 1..70 forces the window to widen.
  const vid_t leaves = 70;
  graph::EdgeList edges;
  for (vid_t i = 1; i <= leaves; ++i) edges.push_back({0, i});
  const CsrGraph g = build_csr(leaves + 1, edges);
  Coloring c(leaves + 1, kUncolored);
  for (vid_t i = 1; i <= leaves; ++i) c[i] = i;
  EXPECT_EQ(first_fit_color(g, c, 0), 71U);
}

class OrderingSweep : public ::testing::TestWithParam<Ordering> {};

TEST_P(OrderingSweep, AllOrderingsProduceProperColorings) {
  const CsrGraph g = build_csr(400, graph::erdos_renyi(400, 2400, 17));
  SeqOptions opts;
  opts.ordering = GetParam();
  opts.charge_model = false;
  const SeqResult r = seq_greedy(g, opts);
  EXPECT_TRUE(IsProperColoring(g, r.coloring))
      << ordering_name(GetParam());
  EXPECT_LE(r.num_colors, g.max_degree() + 1);
}

INSTANTIATE_TEST_SUITE_P(AllOrderings, OrderingSweep,
                         ::testing::Values(Ordering::kFirstFit,
                                           Ordering::kLargestFirst,
                                           Ordering::kSmallestLast,
                                           Ordering::kRandom));

TEST(Ordering, SmallestLastBeatsFirstFitOnSkewedGraph) {
  // Smallest-last colors a graph within degeneracy+1. A crown-like graph
  // where first-fit by natural order is poor: classic ordering-quality gap.
  const CsrGraph g = build_csr(
      1 << 11,
      graph::rmat(11, 12000, graph::RmatParams{0.55, 0.15, 0.15, 0.15, 0.1}, 3));
  SeqOptions ff;
  ff.charge_model = false;
  SeqOptions sl;
  sl.ordering = Ordering::kSmallestLast;
  sl.charge_model = false;
  EXPECT_LE(seq_greedy(g, sl).num_colors, seq_greedy(g, ff).num_colors + 1);
}

TEST(Ordering, NamesRoundTrip) {
  for (Ordering o : {Ordering::kFirstFit, Ordering::kLargestFirst,
                     Ordering::kSmallestLast, Ordering::kRandom}) {
    EXPECT_EQ(ordering_from_name(ordering_name(o)), o);
  }
  EXPECT_EQ(ordering_from_name("ff"), Ordering::kFirstFit);
}

TEST(Ordering, SmallestLastIsDegeneracyOrder) {
  // On a tree (degeneracy 1), smallest-last must 2-color.
  graph::EdgeList edges;
  for (vid_t v = 1; v < 127; ++v) edges.push_back({(v - 1) / 2, v});  // binary tree
  const CsrGraph g = build_csr(127, edges);
  SeqOptions opts;
  opts.ordering = Ordering::kSmallestLast;
  opts.charge_model = false;
  EXPECT_EQ(seq_greedy(g, opts).num_colors, 2U);
}

TEST(Ordering, OrdersArePermutations) {
  const CsrGraph g = build_csr(100, graph::erdos_renyi(100, 400, 21));
  for (Ordering o : {Ordering::kFirstFit, Ordering::kLargestFirst,
                     Ordering::kSmallestLast, Ordering::kRandom}) {
    auto order = make_order(g, o, 5);
    std::sort(order.begin(), order.end());
    for (vid_t v = 0; v < 100; ++v) ASSERT_EQ(order[v], v) << ordering_name(o);
  }
}

}  // namespace
