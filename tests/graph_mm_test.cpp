// Matrix Market I/O tests: round trips, header variants, malformed input.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/matrix_market.hpp"

namespace {

using namespace speckle::graph;

TEST(MatrixMarket, RoundTripPreservesStructure) {
  const CsrGraph g = build_csr(64, erdos_renyi(64, 200, 5));
  std::stringstream buffer;
  write_matrix_market(g, buffer);
  const CsrGraph h = read_matrix_market(buffer, "roundtrip");
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(MatrixMarket, ParsesGeneralRealWithValues) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 4\n"
      "1 2 0.5\n"
      "2 1 0.5\n"
      "3 3 9.0\n"   // diagonal entry: dropped as a self loop
      "1 3 -2.0\n");
  const CsrGraph g = read_matrix_market(in, "test");
  EXPECT_EQ(g.num_vertices(), 3U);
  EXPECT_EQ(g.num_edges(), 4U);  // 1-2 and 1-3, both directions
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(2, 2));
}

TEST(MatrixMarket, SymmetricStorageExpands) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 1\n");
  const CsrGraph g = read_matrix_market(in, "sym");
  EXPECT_EQ(g.num_edges(), 4U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.is_symmetric());
}

TEST(MatrixMarket, IntegerFieldAccepted) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "1 2 7\n");
  const CsrGraph g = read_matrix_market(in, "int");
  EXPECT_EQ(g.num_edges(), 2U);
}

// Malformed input throws MatrixMarketError with a message that names the
// file and the defect, so callers can report it instead of aborting.
void expect_rejected(const std::string& text, const std::string& name,
                     const std::string& needle) {
  std::stringstream in(text);
  try {
    read_matrix_market(in, name);
    FAIL() << "expected MatrixMarketError mentioning '" << needle << "'";
  } catch (const MatrixMarketError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(name), std::string::npos) << what;
    EXPECT_NE(what.find(needle), std::string::npos) << what;
  }
}

TEST(MatrixMarketErrors, RejectsMissingBanner) {
  expect_rejected("3 3 0\n", "bad", "banner");
}

TEST(MatrixMarketErrors, RejectsTruncatedHeader) {
  expect_rejected("%%MatrixMarket matrix coordinate\n2 2 0\n", "short",
                  "truncated banner");
}

TEST(MatrixMarketErrors, RejectsEmptyFile) {
  expect_rejected("", "empty", "empty file");
}

TEST(MatrixMarketErrors, RejectsMissingSizeLine) {
  expect_rejected(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% only comments after the header\n",
      "nosize", "missing size line");
}

TEST(MatrixMarketErrors, RejectsNonSquare) {
  expect_rejected(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 4 0\n",
      "rect", "square");
}

TEST(MatrixMarketErrors, RejectsOverflowingEntryCount) {
  // 3x3 holds at most 9 entries; a size line promising more is dishonest
  // and must not drive allocation or parsing.
  expect_rejected(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 10\n",
      "fat", "more than a 3x3 matrix can hold");
}

TEST(MatrixMarketErrors, RejectsOutOfRangeIndex) {
  expect_rejected(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 9\n",
      "oob", "out of range");
}

TEST(MatrixMarketErrors, RejectsTruncatedFile) {
  expect_rejected(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 3\n"
      "1 2\n",
      "trunc", "fewer entries");
}

TEST(MatrixMarketErrors, RejectsMalformedEntryLine) {
  expect_rejected(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "one two\n",
      "garbled", "malformed entry");
}

TEST(MatrixMarketErrors, RejectsUnknownFile) {
  EXPECT_THROW(read_matrix_market("/nonexistent/file.mtx"), MatrixMarketError);
}

}  // namespace
