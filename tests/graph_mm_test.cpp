// Matrix Market I/O tests: round trips, header variants, malformed input.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/matrix_market.hpp"

namespace {

using namespace speckle::graph;

TEST(MatrixMarket, RoundTripPreservesStructure) {
  const CsrGraph g = build_csr(64, erdos_renyi(64, 200, 5));
  std::stringstream buffer;
  write_matrix_market(g, buffer);
  const CsrGraph h = read_matrix_market(buffer, "roundtrip");
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(MatrixMarket, ParsesGeneralRealWithValues) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 4\n"
      "1 2 0.5\n"
      "2 1 0.5\n"
      "3 3 9.0\n"   // diagonal entry: dropped as a self loop
      "1 3 -2.0\n");
  const CsrGraph g = read_matrix_market(in, "test");
  EXPECT_EQ(g.num_vertices(), 3U);
  EXPECT_EQ(g.num_edges(), 4U);  // 1-2 and 1-3, both directions
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(2, 2));
}

TEST(MatrixMarket, SymmetricStorageExpands) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 1\n");
  const CsrGraph g = read_matrix_market(in, "sym");
  EXPECT_EQ(g.num_edges(), 4U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.is_symmetric());
}

TEST(MatrixMarket, IntegerFieldAccepted) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "1 2 7\n");
  const CsrGraph g = read_matrix_market(in, "int");
  EXPECT_EQ(g.num_edges(), 2U);
}

TEST(MatrixMarketDeathTest, RejectsMissingBanner) {
  std::stringstream in("3 3 0\n");
  EXPECT_DEATH(read_matrix_market(in, "bad"), "banner");
}

TEST(MatrixMarketDeathTest, RejectsNonSquare) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 4 0\n");
  EXPECT_DEATH(read_matrix_market(in, "rect"), "square");
}

TEST(MatrixMarketDeathTest, RejectsOutOfRangeIndex) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 9\n");
  EXPECT_DEATH(read_matrix_market(in, "oob"), "out of range");
}

TEST(MatrixMarketDeathTest, RejectsTruncatedFile) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 3\n"
      "1 2\n");
  EXPECT_DEATH(read_matrix_market(in, "trunc"), "fewer entries");
}

TEST(MatrixMarketDeathTest, RejectsUnknownFile) {
  EXPECT_DEATH(read_matrix_market("/nonexistent/file.mtx"), "cannot open");
}

}  // namespace
