// Unit tests for the support substrate: RNG, statistics, tables, options.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace speckle::support;

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMixSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, Mix64MatchesSplitMixFirstDraw) {
  SplitMix64 sm(123456);
  EXPECT_EQ(mix64(123456), sm.next());
}

TEST(Rng, XoshiroDeterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversSmallRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Xoshiro256 rng(9);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NextRangeInclusive) {
  Xoshiro256 rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5U);
}

TEST(Rng, RandomPermutationIsPermutation) {
  const auto perm = random_permutation(257, 99);
  std::set<std::uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257U);
  EXPECT_EQ(*seen.begin(), 0U);
  EXPECT_EQ(*seen.rbegin(), 256U);
}

TEST(Rng, ShuffleKeepsMultiset) {
  std::vector<int> values = {1, 2, 2, 3, 5, 8};
  auto sorted = values;
  Xoshiro256 rng(1);
  shuffle(values, rng);
  std::sort(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(values, sorted);
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> values = {1, 2, 3, 4};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 4U);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.variance, 1.25);  // population variance
  EXPECT_NEAR(s.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0U);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, WelfordMatchesDirect) {
  Xoshiro256 rng(21);
  std::vector<double> values;
  Accumulator acc;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 100;
    values.push_back(v);
    acc.add(v);
  }
  const Summary direct = summarize(values);
  const Summary streaming = acc.summary();
  EXPECT_NEAR(direct.mean, streaming.mean, 1e-9);
  EXPECT_NEAR(direct.variance, streaming.variance, 1e-6);
}

TEST(Stats, GeomeanOfRatios) {
  const std::vector<double> values = {2.0, 8.0};
  EXPECT_NEAR(geomean(values), 4.0, 1e-12);
  EXPECT_NEAR(geomean(std::vector<double>{5.0}), 5.0, 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> values = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(values, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50), 25.0);
}

TEST(Stats, SummarizeU32) {
  const std::vector<std::uint32_t> values = {3, 1, 2};
  const Summary s = summarize_u32(values);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
}

TEST(Table, AlignsColumnsAndCounts) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell_u64(10);
  t.row().cell("b").cell_f(1.5, 1);
  EXPECT_EQ(t.row_count(), 2U);
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell("x").cell_ratio(2.0, 1);
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "a,b\nx,2.0x\n");
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(format_si(1500.0, 1), "1.5K");
  EXPECT_EQ(format_si(2.5e6, 1), "2.5M");
  EXPECT_EQ(format_si(3.0e9, 0), "3G");
  EXPECT_EQ(format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(format_cycles(1234567), "1,234,567");
}

TEST(Options, ParsesKeysFlagsPositional) {
  const char* argv[] = {"prog", "--n=42", "--flag", "pos1", "--rate=2.5"};
  Options opts(5, const_cast<char**>(argv));
  EXPECT_EQ(opts.get_int("n", 0), 42);
  EXPECT_TRUE(opts.get_bool("flag", false));
  EXPECT_DOUBLE_EQ(opts.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(opts.positional().size(), 1U);
  EXPECT_EQ(opts.positional()[0], "pos1");
  EXPECT_EQ(opts.get_string("missing", "dflt"), "dflt");
  EXPECT_TRUE(opts.has("n"));
  EXPECT_FALSE(opts.has("missing"));
}

TEST(OptionsDeathTest, RejectsUnknownKeyOnValidate) {
  const char* argv[] = {"prog", "--typo=1"};
  Options opts(2, const_cast<char**>(argv));
  EXPECT_DEATH(opts.validate({"n"}), "unknown option");
}

TEST(OptionsDeathTest, RejectsNonIntegerValue) {
  const char* argv[] = {"prog", "--n=abc"};
  Options opts(2, const_cast<char**>(argv));
  EXPECT_DEATH(opts.get_int("n", 0), "expects an integer");
}

}  // namespace
