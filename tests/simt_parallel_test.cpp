// Tests for the deterministic multi-threaded wave executor: the ThreadPool
// primitive itself, and the bit-identity contract — every thread count must
// produce exactly the same colorings, iteration counts, and simulated cycle
// totals as the single-threaded executor.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "coloring/runner.hpp"
#include "graph/suite.hpp"
#include "support/threadpool.hpp"

namespace {

using namespace speckle;

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  support::ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4U);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_deterministic(n, [&](std::size_t i, unsigned) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SlotZeroIsTheCaller) {
  // The caller participates as slot 0 — with a single-thread pool every
  // index runs inline on the calling thread.
  support::ThreadPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1U);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for_deterministic(64, [&](std::size_t, unsigned slot) {
    EXPECT_EQ(slot, 0U);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, SlotIndexedOutputIsDeterministic) {
  // The determinism contract: each index writes only its own result slot,
  // so the gathered output is identical no matter how work was scheduled.
  support::ThreadPool pool(4);
  const std::size_t n = 4096;
  std::vector<std::uint64_t> out(n, 0);
  for (int round = 0; round < 3; ++round) {
    pool.parallel_for_deterministic(n, [&](std::size_t i, unsigned) {
      out[i] = i * 2654435761ULL + 17;
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], i * 2654435761ULL + 17);
    }
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  support::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for_deterministic(1000,
                                      [&](std::size_t i, unsigned) {
                                        if (i == 537) {
                                          throw std::runtime_error("boom");
                                        }
                                      }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for_deterministic(100, [&](std::size_t, unsigned) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  support::ThreadPool pool(3);
  std::uint64_t total = 0;
  for (int job = 0; job < 50; ++job) {
    std::vector<std::uint64_t> partial(64, 0);
    pool.parallel_for_deterministic(64, [&](std::size_t i, unsigned) {
      partial[i] = i + static_cast<std::uint64_t>(job);
    });
    for (const auto v : partial) total += v;
  }
  // sum over jobs of (sum 0..63 + 64*job) = 50*2016 + 64*(0+..+49)
  EXPECT_EQ(total, 50ULL * 2016 + 64ULL * 1225);
}

// --- Executor bit-identity -------------------------------------------------

coloring::RunResult run_with_threads(coloring::Scheme scheme,
                                     const graph::CsrGraph& g,
                                     std::uint32_t threads) {
  coloring::RunOptions opts;
  opts.device.host_threads = threads;
  return coloring::run_scheme(scheme, g, opts);
}

// threads=1 and every parallel thread count must agree bit-for-bit: same
// per-vertex colors, same color count, same iteration/worklist-round count,
// and the same simulated cycle totals per kernel. This is the executor's
// core contract ("results are thread-count invariant"), so compare
// exhaustively.
void expect_bit_identical(coloring::Scheme scheme, const std::string& suite,
                          std::uint32_t threads = 4) {
  SCOPED_TRACE(std::string(coloring::scheme_name(scheme)) + " on " + suite +
               " threads=" + std::to_string(threads));
  const graph::CsrGraph g = graph::make_suite_graph(suite, /*denom=*/64, 1);
  const auto serial = run_with_threads(scheme, g, 1);
  const auto parallel = run_with_threads(scheme, g, threads);

  EXPECT_EQ(serial.num_colors, parallel.num_colors);
  EXPECT_EQ(serial.iterations, parallel.iterations);
  ASSERT_EQ(serial.coloring.size(), parallel.coloring.size());
  for (std::size_t v = 0; v < serial.coloring.size(); ++v) {
    ASSERT_EQ(serial.coloring[v], parallel.coloring[v]) << "vertex " << v;
  }

  EXPECT_EQ(serial.report.total_cycles, parallel.report.total_cycles);
  ASSERT_EQ(serial.report.kernels.size(), parallel.report.kernels.size());
  for (std::size_t k = 0; k < serial.report.kernels.size(); ++k) {
    const auto& a = serial.report.kernels[k];
    const auto& b = parallel.report.kernels[k];
    EXPECT_EQ(a.cycles, b.cycles) << a.name;
    EXPECT_EQ(a.warp_insts, b.warp_insts) << a.name;
    EXPECT_EQ(a.l2_hits, b.l2_hits) << a.name;
    EXPECT_EQ(a.l2_misses, b.l2_misses) << a.name;
    EXPECT_EQ(a.dram_bytes, b.dram_bytes) << a.name;
    EXPECT_EQ(a.atomics, b.atomics) << a.name;
  }
  EXPECT_DOUBLE_EQ(serial.model_ms, parallel.model_ms);
}

TEST(ParallelExecutor, TopoBaseIsThreadCountInvariant) {
  expect_bit_identical(coloring::Scheme::kTopoBase, "rmat-g");
  expect_bit_identical(coloring::Scheme::kTopoBase, "thermal2");
}

TEST(ParallelExecutor, DataLdgIsThreadCountInvariant) {
  expect_bit_identical(coloring::Scheme::kDataLdg, "rmat-g");
  expect_bit_identical(coloring::Scheme::kDataLdg, "thermal2");
}

TEST(ParallelExecutor, AtomicHeavySchemeIsThreadCountInvariant) {
  // csrcolor exercises the atomic validation/re-execution path.
  expect_bit_identical(coloring::Scheme::kCsrColor, "rmat-g");
}

TEST(ParallelExecutor, DataLdgInvariantAcrossOneTwoFourEight) {
  // The epoch-overlay commit resolves views in SM order no matter how SMs
  // were assigned to workers, so every thread count — including more
  // workers than the machine has cores — must reproduce threads=1 exactly.
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    expect_bit_identical(coloring::Scheme::kDataLdg, "rmat-g", threads);
  }
}

}  // namespace
