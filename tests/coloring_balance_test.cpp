// Color-balancing post-pass tests.

#include <gtest/gtest.h>

#include "check_coloring.hpp"
#include "coloring/balance.hpp"
#include "coloring/seq_greedy.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace speckle;
using namespace speckle::coloring;
using speckle::testing::IsProperColoring;
using graph::build_csr;
using graph::CsrGraph;
using graph::vid_t;

TEST(Balance, KeepsColoringProper) {
  const CsrGraph g = build_csr(1000, graph::erdos_renyi(1000, 6000, 3));
  const auto seq = seq_greedy(g, {.charge_model = false});
  const BalanceResult r = balance_colors(g, seq.coloring);
  EXPECT_TRUE(IsProperColoring(g, r.coloring));
}

TEST(Balance, NeverIncreasesColorCount) {
  const CsrGraph g = build_csr(800, graph::local_random(800, 1, 6, 50, 8));
  const auto seq = seq_greedy(g, {.charge_model = false});
  const BalanceResult r = balance_colors(g, seq.coloring);
  EXPECT_LE(count_colors(r.coloring), seq.num_colors);
}

TEST(Balance, ImprovesSkewedGreedyColoring) {
  // First-fit loads color 1 heavily; balancing must flatten the histogram.
  const CsrGraph g = build_csr(2000, graph::erdos_renyi(2000, 8000, 5));
  const auto seq = seq_greedy(g, {.charge_model = false});
  const BalanceResult r = balance_colors(g, seq.coloring);
  EXPECT_GT(r.balance_before, 1.2);  // greedy is skewed on sparse ER
  EXPECT_LT(r.balance_after, r.balance_before);
  EXPECT_GT(r.moves, 0U);
}

TEST(Balance, NoOpOnAlreadyBalanced) {
  // A 2-colorable even ring colored alternately is perfectly balanced.
  const CsrGraph g = build_csr(100, graph::ring_lattice(100, 1));
  Coloring c(100);
  for (vid_t v = 0; v < 100; ++v) c[v] = 1 + (v % 2);
  const BalanceResult r = balance_colors(g, c);
  EXPECT_EQ(r.moves, 0U);
  EXPECT_DOUBLE_EQ(r.balance_after, 1.0);
}

TEST(Balance, SingleColorGraphUntouched) {
  const CsrGraph g = build_csr(5, graph::EdgeList{});
  Coloring c(5, 1);
  const BalanceResult r = balance_colors(g, c);
  EXPECT_EQ(r.coloring, c);
}

TEST(BalanceDeathTest, RejectsImproperInput) {
  const CsrGraph g = build_csr(2, {{0, 1}});
  Coloring bad = {1, 1};
  EXPECT_DEATH(balance_colors(g, bad), "proper");
}

}  // namespace
