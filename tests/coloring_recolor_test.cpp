/// \file coloring_recolor_test.cpp
/// Incremental recoloring (coloring/recolor.hpp): the dirty-region entry
/// point over the shared speculate/resolve loop. Covers the satellite
/// cases (empty dirty set, whole-graph dirty set, single-edge conflict),
/// the full-recolor threshold fallback, dirty-set derivation from edge
/// inserts, and a randomized mutate→recolor properness sweep against the
/// shared conformance oracle.

#include <gtest/gtest.h>

#include <random>

#include "check_coloring.hpp"
#include "coloring/data.hpp"
#include "coloring/recolor.hpp"
#include "coloring/runner.hpp"
#include "graph/builder.hpp"
#include "graph/mutate.hpp"
#include "graph/suite.hpp"

namespace speckle::coloring {
namespace {

using graph::CsrGraph;
using graph::vid_t;
using testing::IsProperColoring;

RecolorOptions small_opts() {
  RecolorOptions opts;
  opts.use_ldg = true;
  opts.device = opts.device.scaled(64);
  return opts;
}

TEST(RecolorRegion, EmptyDirtySetReturnsBaseUnchanged) {
  const CsrGraph g = graph::make_suite_graph("G3_circuit", 512, 0x5eed);
  const GpuResult base = data_color(g, small_opts());
  const RecolorResult r = recolor_region(g, base.coloring, {}, small_opts());
  EXPECT_EQ(r.coloring, base.coloring);
  EXPECT_EQ(r.iterations, 0U);
  EXPECT_FALSE(r.full);
  EXPECT_EQ(r.model_ms, 0.0);
}

TEST(RecolorRegion, WholeGraphDirtyEqualsFromScratch) {
  const CsrGraph g = graph::make_suite_graph("Hamrle3", 512, 0x5eed);
  const RecolorOptions opts = small_opts();
  const GpuResult scratch = data_color(g, opts);

  std::vector<vid_t> all(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) all[v] = v;
  // The base coloring is irrelevant once the threshold forces the full
  // path; feed a deliberately broken one to prove it is ignored.
  const Coloring junk(g.num_vertices(), 1);
  const RecolorResult r = recolor_region(g, junk, all, opts);
  EXPECT_TRUE(r.full);
  EXPECT_EQ(r.coloring, scratch.coloring);
  EXPECT_EQ(r.iterations, scratch.iterations);
}

TEST(RecolorRegion, SingleEdgeConflictRecolorsOneVertex) {
  // 0-1-2-3 path colored properly, then edge (0,2) appears: 0 and 2 share
  // a color, the lower id (0) is invalidated.
  const CsrGraph before = graph::build_csr(4, {{0, 1}, {1, 2}, {2, 3}});
  const Coloring base = {1, 2, 1, 2};
  ASSERT_TRUE(IsProperColoring(before, base));

  const graph::MutationOutcome mut = graph::apply_mutations(
      before, {{graph::EdgeMutation::Kind::kInsert, 0, 2}});
  const std::vector<vid_t> dirty = dirty_from_inserts(base, mut.inserted);
  ASSERT_EQ(dirty, (std::vector<vid_t>{0}));

  RecolorOptions opts = small_opts();
  opts.full_threshold = 0.5;  // 1 of 4 dirty stays incremental
  const RecolorResult r = recolor_region(mut.graph, base, dirty, opts);
  EXPECT_FALSE(r.full);
  EXPECT_EQ(r.iterations, 1U);
  EXPECT_TRUE(IsProperColoring(mut.graph, r.coloring));
  // Only the dirty vertex may change.
  for (vid_t v = 1; v < 4; ++v) EXPECT_EQ(r.coloring[v], base[v]);
  EXPECT_NE(r.coloring[0], r.coloring[1]);
  EXPECT_NE(r.coloring[0], r.coloring[2]);
}

TEST(RecolorRegion, ThresholdForcesFullFallback) {
  const CsrGraph g = graph::make_suite_graph("Hamrle3", 1024, 0x5eed);
  const GpuResult base = data_color(g, small_opts());

  RecolorOptions opts = small_opts();
  opts.full_threshold = 0.0;  // any dirty vertex trips the fallback
  const RecolorResult r = recolor_region(g, base.coloring, {{0}}, opts);
  EXPECT_TRUE(r.full);
  EXPECT_TRUE(IsProperColoring(g, r.coloring));
  EXPECT_EQ(r.coloring, data_color(g, small_opts()).coloring);
}

TEST(RecolorRegion, CleanNeighborsKeepTheirColors) {
  // Star: center 0 with leaves 1..5, center dirty. The leaves are clean and
  // must come through untouched; the center must pick a non-leaf color.
  graph::EdgeList edges;
  for (vid_t leaf = 1; leaf <= 5; ++leaf) edges.push_back({0, leaf});
  const CsrGraph g = graph::build_csr(6, std::move(edges));
  const Coloring base = {1, 1, 2, 2, 1, 2};  // center conflicts with 1 and 4

  RecolorOptions opts = small_opts();
  opts.full_threshold = 0.5;
  const RecolorResult r = recolor_region(g, base, {{0}}, opts);
  EXPECT_FALSE(r.full);
  EXPECT_TRUE(IsProperColoring(g, r.coloring));
  for (vid_t v = 1; v <= 5; ++v) EXPECT_EQ(r.coloring[v], base[v]);
  EXPECT_EQ(r.coloring[0], 3U);  // first fit above the leaf colors {1, 2}
}

TEST(RecolorRegion, RefineRoundsNeverIncreaseColors) {
  const CsrGraph g = graph::make_suite_graph("rmat-er", 1024, 0x5eed);
  const GpuResult base = data_color(g, small_opts());

  std::vector<vid_t> dirty;
  for (vid_t v = 0; v < g.num_vertices(); v += 97) dirty.push_back(v);
  RecolorOptions opts = small_opts();
  opts.full_threshold = 1.0;
  const RecolorResult unrefined = recolor_region(g, base.coloring, dirty, opts);
  opts.refine_rounds = 2;
  const RecolorResult r = recolor_region(g, base.coloring, dirty, opts);
  EXPECT_TRUE(IsProperColoring(g, r.coloring));
  // Refine (iterated greedy) never increases the count of the coloring the
  // resolve phase produced.
  EXPECT_LE(r.num_colors, unrefined.num_colors);
}

TEST(DirtyFromInserts, PicksLowerEndpointOfConflicts) {
  const Coloring coloring = {1, 2, 1, 2};
  const std::vector<graph::Edge> inserted = {{0, 2}, {1, 3}, {0, 1}};
  // (0,2): both color 1 → dirty 0. (1,3): both color 2 → dirty 1.
  // (0,1): different colors → clean.
  EXPECT_EQ(dirty_from_inserts(coloring, inserted),
            (std::vector<vid_t>{0, 1}));
}

TEST(RecolorRegion, MutateRecolorSweepStaysProper) {
  CsrGraph g = graph::make_suite_graph("G3_circuit", 512, 0x5eed);
  RecolorOptions opts = small_opts();
  Coloring coloring = data_color(g, opts).coloring;
  ASSERT_TRUE(IsProperColoring(g, coloring));

  std::mt19937_64 rng(11);
  const vid_t n = g.num_vertices();
  for (int batch = 0; batch < 8; ++batch) {
    std::vector<graph::EdgeMutation> muts;
    for (int i = 0; i < 25; ++i) {
      graph::EdgeMutation m;
      m.kind = (rng() % 4U) != 0 ? graph::EdgeMutation::Kind::kInsert
                                 : graph::EdgeMutation::Kind::kDelete;
      m.u = static_cast<vid_t>(rng() % n);
      m.v = static_cast<vid_t>(rng() % n);
      muts.push_back(m);
    }
    graph::MutationOutcome out = graph::apply_mutations(g, muts);
    const std::vector<vid_t> dirty = dirty_from_inserts(coloring, out.inserted);
    const RecolorResult r = recolor_region(out.graph, coloring, dirty, opts);
    EXPECT_TRUE(IsProperColoring(out.graph, r.coloring))
        << "batch " << batch << " dirty=" << dirty.size();
    g = std::move(out.graph);
    coloring = r.coloring;
  }
}

}  // namespace
}  // namespace speckle::coloring
