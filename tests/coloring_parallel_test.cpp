// CPU-parallel references: Jones–Plassmann and the OpenMP GM scheme.

#include <gtest/gtest.h>

#include "check_coloring.hpp"
#include "coloring/gm_omp.hpp"
#include "coloring/jp.hpp"
#include "coloring/seq_greedy.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace speckle;
using namespace speckle::coloring;
using speckle::testing::IsProperColoring;
using graph::build_csr;
using graph::CsrGraph;

struct GraphCase {
  const char* name;
  CsrGraph (*make)();
};

CsrGraph make_er() { return build_csr(600, graph::erdos_renyi(600, 4200, 7)); }
CsrGraph make_grid() { return build_csr(400, graph::stencil2d(20, 20)); }
CsrGraph make_rmat() {
  return build_csr(1 << 10, graph::rmat(10, 6000, graph::RmatParams{0.45, 0.15, 0.15, 0.25, 0.1}, 3));
}
CsrGraph make_ring() { return build_csr(501, graph::ring_lattice(501, 2)); }
CsrGraph make_local() { return build_csr(800, graph::local_random(800, 1, 7, 60, 11)); }

class ParallelCpuSweep : public ::testing::TestWithParam<GraphCase> {};

TEST_P(ParallelCpuSweep, JonesPlassmannIsProper) {
  const CsrGraph g = GetParam().make();
  const JpResult r = jones_plassmann(g);
  EXPECT_TRUE(IsProperColoring(g, r.coloring)) << GetParam().name;
  EXPECT_GE(r.rounds, 1U);
  EXPECT_EQ(r.num_colors, r.rounds);  // JP assigns one color per round
}

TEST_P(ParallelCpuSweep, GmOpenMpIsProper) {
  const CsrGraph g = GetParam().make();
  const GmOmpResult r = gm_openmp(g);
  EXPECT_TRUE(IsProperColoring(g, r.coloring)) << GetParam().name;
  EXPECT_LE(r.num_colors, g.max_degree() + 1);
}

TEST_P(ParallelCpuSweep, GmOmpQualityTracksSequential) {
  // The speculative scheme's selling point: colors close to sequential
  // greedy (within 2x is a loose but meaningful envelope; typically equal).
  const CsrGraph g = GetParam().make();
  const auto seq = seq_greedy(g, {.charge_model = false});
  const auto gm = gm_openmp(g);
  EXPECT_LE(gm.num_colors, 2 * seq.num_colors) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, ParallelCpuSweep,
    ::testing::Values(GraphCase{"er", make_er}, GraphCase{"grid", make_grid},
                      GraphCase{"rmat", make_rmat}, GraphCase{"ring", make_ring},
                      GraphCase{"local", make_local}),
    [](const ::testing::TestParamInfo<GraphCase>& info) { return info.param.name; });

TEST(JonesPlassmann, DeterministicForSeed) {
  const CsrGraph g = make_er();
  const JpResult a = jones_plassmann(g, {.seed = 5});
  const JpResult b = jones_plassmann(g, {.seed = 5});
  EXPECT_EQ(a.coloring, b.coloring);
}

TEST(JonesPlassmann, SeedChangesColoring) {
  const CsrGraph g = make_er();
  const JpResult a = jones_plassmann(g, {.seed = 5});
  const JpResult b = jones_plassmann(g, {.seed = 6});
  EXPECT_NE(a.coloring, b.coloring);
}

TEST(JonesPlassmann, RedrawVariantAlsoProper) {
  const CsrGraph g = make_rmat();
  const JpResult r = jones_plassmann(g, {.seed = 1, .redraw_priorities = true});
  EXPECT_TRUE(IsProperColoring(g, r.coloring));
}

TEST(JonesPlassmann, EmptyGraph) {
  const JpResult r = jones_plassmann(CsrGraph());
  EXPECT_EQ(r.num_colors, 0U);
  EXPECT_EQ(r.rounds, 0U);
}

TEST(GmOpenMp, SingleThreadHasNoConflicts) {
  const CsrGraph g = make_er();
  const GmOmpResult r = gm_openmp(g, {.num_threads = 1});
  // One thread colors sequentially: speculation never conflicts.
  EXPECT_EQ(r.total_conflicts, 0U);
  EXPECT_EQ(r.rounds, 1U);
}

TEST(GmOpenMp, MatchesSequentialWhenSingleThreaded) {
  const CsrGraph g = make_grid();
  const auto seq = seq_greedy(g, {.charge_model = false});
  const GmOmpResult gm = gm_openmp(g, {.num_threads = 1});
  EXPECT_EQ(gm.coloring, seq.coloring);
}

}  // namespace
