// Executor-level properties: thread identity, wave scaling, functional
// equivalence of the two load paths, and the remaining atomic ops.

#include <gtest/gtest.h>

#include "simt/device.hpp"

namespace {

using namespace speckle::simt;

TEST(Exec, ThreadIdentityFields) {
  Device dev;
  auto lanes = dev.alloc<std::uint32_t>(256);
  auto warps = dev.alloc<std::uint32_t>(256);
  auto blocks = dev.alloc<std::uint32_t>(256);
  dev.launch({.grid_blocks = 2, .block_threads = 128}, "ids", [&](Thread& t) {
    const auto i = t.global_id();
    t.st(lanes, i, t.lane());
    t.st(warps, i, t.warp_in_block());
    t.st(blocks, i, t.block());
    EXPECT_EQ(t.block_dim(), 128U);
    EXPECT_EQ(t.grid_dim(), 2U);
  });
  EXPECT_EQ(lanes[0], 0U);
  EXPECT_EQ(lanes[33], 1U);
  EXPECT_EQ(warps[33], 1U);
  EXPECT_EQ(warps[127], 3U);
  EXPECT_EQ(blocks[128], 1U);
  EXPECT_EQ(lanes[128], 0U);
}

TEST(Exec, MultiWaveGridsScaleRoughlyLinearly) {
  // A grid needing W waves should cost about W times one wave's cycles
  // for a uniform kernel (launch overhead aside).
  auto cycles_for = [](std::uint32_t blocks) {
    Device dev(DeviceConfig::k20c().scaled(16));
    const std::uint32_t n = blocks * 128;
    auto src = dev.alloc<std::uint32_t>(n);
    auto dst = dev.alloc<std::uint32_t>(n);
    const auto& stats = dev.launch({.grid_blocks = blocks, .block_threads = 128},
                                   "u", [&](Thread& t) {
                                     const auto i = t.global_id();
                                     t.st(dst, i, t.ld(src, i) + 1);
                                   });
    return static_cast<double>(stats.cycles) -
           static_cast<double>(dev.config().us_to_cycles(dev.config().kernel_launch_us));
  };
  // One full wave at 128 threads/block is 13 SMs x 13 blocks = 169 blocks.
  const double one = cycles_for(169);
  const double four = cycles_for(4 * 169);
  EXPECT_GT(four, 3.0 * one);
  EXPECT_LT(four, 5.5 * one);
}

TEST(Exec, LdgAndLdAreFunctionallyIdentical) {
  Device dev;
  const std::uint32_t n = 512;
  auto src = dev.alloc<std::uint32_t>(n);
  auto via_ld = dev.alloc<std::uint32_t>(n);
  auto via_ldg = dev.alloc<std::uint32_t>(n);
  for (std::uint32_t i = 0; i < n; ++i) src[i] = i * 7 + 1;
  dev.launch({.grid_blocks = 4, .block_threads = 128}, "both", [&](Thread& t) {
    const auto i = t.global_id();
    t.st(via_ld, i, t.ld(src, i));
    t.st(via_ldg, i, t.ldg(src, i));
  });
  for (std::uint32_t i = 0; i < n; ++i) ASSERT_EQ(via_ld[i], via_ldg[i]);
}

TEST(Exec, AtomicOrAccumulatesBits) {
  Device dev;
  auto mask = dev.alloc<std::uint32_t>(1);
  mask[0] = 0;
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "or", [&](Thread& t) {
    t.atomic_or(mask, 0, 1U << t.lane());
  });
  EXPECT_EQ(mask[0], 0xffffffffU);
}

TEST(Exec, GridTailThreadsAreInactive) {
  // n not a multiple of block size: guarded threads contribute nothing.
  Device dev;
  const std::uint32_t n = 100;
  auto out = dev.alloc<std::uint32_t>(n);
  out.fill(0);
  const auto& stats =
      dev.launch({.grid_blocks = 1, .block_threads = 128}, "tail", [&](Thread& t) {
        const auto i = t.global_id();
        if (i >= n) return;
        t.st(out, i, 1U);
      });
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(out[i], 1U);
  EXPECT_EQ(stats.gst_transactions, (n + 31) / 32);
}

TEST(Exec, KernelLogAccumulatesInOrder) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(32);
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "alpha",
             [&](Thread& t) { t.st(buf, t.lane(), 1U); });
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "beta",
             [&](Thread& t) { t.st(buf, t.lane(), 2U); });
  ASSERT_EQ(dev.report().kernels.size(), 2U);
  EXPECT_EQ(dev.report().kernels[0].name, "alpha");
  EXPECT_EQ(dev.report().kernels[1].name, "beta");
  EXPECT_EQ(dev.report().total_cycles,
            dev.report().kernels[0].cycles + dev.report().kernels[1].cycles);
}

}  // namespace
