// Cross-module integration tests: miniature versions of the paper's
// figure-shape claims, checked as invariants at test scale, plus the
// chromatic-scheduling property the motivating applications rely on.

#include <gtest/gtest.h>

#include "check_coloring.hpp"
#include "coloring/runner.hpp"
#include "coloring/seq_greedy.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/suite.hpp"

namespace {

using namespace speckle;
using namespace speckle::coloring;
using speckle::testing::IsProperColoring;
using graph::CsrGraph;
using graph::vid_t;

RunOptions scaled_options() {
  RunOptions opts;
  opts.scale_caches(64);  // suite graphs below are built at denom 64
  return opts;
}

TEST(Integration, ColorClassesAreIndependentSets) {
  // The contract chromatic scheduling builds on: within a color class, no
  // two vertices are adjacent, so the class can be processed in parallel.
  const CsrGraph g = graph::make_suite_graph("thermal2", 64);
  const RunResult r = run_scheme(Scheme::kDataLdg, g, scaled_options());
  std::vector<std::vector<vid_t>> classes(r.num_colors + 1);
  for (vid_t v = 0; v < g.num_vertices(); ++v) classes[r.coloring[v]].push_back(v);
  for (color_t c = 1; c <= r.num_colors; ++c) {
    for (vid_t v : classes[c]) {
      for (vid_t w : g.neighbors(v)) {
        ASSERT_NE(r.coloring[w], c) << "edge inside class " << c;
      }
    }
  }
}

TEST(Integration, EverySuiteGraphColorsProperlyUnderEveryPaperScheme) {
  for (const auto& entry : graph::suite_entries()) {
    const CsrGraph g = graph::make_suite_graph(entry.name, 128);
    for (Scheme s : paper_schemes()) {
      const RunResult r = run_scheme(s, g, scaled_options());
      EXPECT_TRUE(IsProperColoring(g, r.coloring))
          << entry.name << " / " << scheme_name(s);
    }
  }
}

TEST(Integration, Fig6Shape_CsrColorNeedsSeveralTimesMoreColors) {
  const CsrGraph g = graph::make_suite_graph("rmat-er", 64);
  const RunOptions opts = scaled_options();
  const auto seq = run_scheme(Scheme::kSequential, g, opts);
  const auto mis = run_scheme(Scheme::kCsrColor, g, opts);
  EXPECT_GE(mis.num_colors, 2 * seq.num_colors);
  // ...while the SGR schemes stay close to sequential.
  for (Scheme s : {Scheme::kTopoBase, Scheme::kDataBase}) {
    const auto r = run_scheme(s, g, opts);
    EXPECT_LE(r.num_colors, seq.num_colors + 4) << scheme_name(s);
  }
}

TEST(Integration, Fig7Shape_DataDrivenBeatsTopologyDriven) {
  const CsrGraph g = graph::make_suite_graph("thermal2", 64);
  const RunOptions opts = scaled_options();
  const auto topo = run_scheme(Scheme::kTopoBase, g, opts);
  const auto data = run_scheme(Scheme::kDataBase, g, opts);
  EXPECT_LT(data.model_ms, topo.model_ms);
}

TEST(Integration, Fig7Shape_GpuSchemesBeat3StepGm) {
  const CsrGraph g = graph::make_suite_graph("Hamrle3", 64);
  const RunOptions opts = scaled_options();
  const auto gm3 = run_scheme(Scheme::kGm3Step, g, opts);
  const auto data = run_scheme(Scheme::kDataBase, g, opts);
  EXPECT_LT(data.model_ms, gm3.model_ms);
}

TEST(Integration, Fig3Shape_ColoringKernelsAreMemoryLatencyBound) {
  const CsrGraph g = graph::make_suite_graph("rmat-er", 64);
  const RunResult r = run_scheme(Scheme::kTopoBase, g, scaled_options());
  const auto stalls = r.report.aggregate_stalls();
  // Memory dependency dominates every other stall class (Fig 3b)...
  const double mem = stalls.fraction(simt::Stall::kMemoryDependency);
  EXPECT_GT(mem, stalls.fraction(simt::Stall::kExecutionDependency));
  EXPECT_GT(mem, stalls.fraction(simt::Stall::kSynchronization));
  EXPECT_GT(mem, stalls.fraction(simt::Stall::kAtomic));
  // ...and achieved compute throughput is well below peak (Fig 3a).
  double busy_frac = stalls.total > 0 ? stalls.busy / stalls.total : 0;
  EXPECT_LT(busy_frac, 0.6);
}

TEST(Integration, AblationShape_ScanPushNoSlowerThanAtomics) {
  const CsrGraph g = graph::make_suite_graph("rmat-er", 64);
  const RunOptions opts = scaled_options();
  const auto scan = run_scheme(Scheme::kDataBase, g, opts);
  const auto atomics = run_scheme(Scheme::kDataAtomic, g, opts);
  EXPECT_LE(scan.model_ms, atomics.model_ms * 1.02);
}

TEST(Integration, AblationShape_LdgNeverSlower) {
  const CsrGraph g = graph::make_suite_graph("thermal2", 64);
  const RunOptions opts = scaled_options();
  const auto base = run_scheme(Scheme::kTopoBase, g, opts);
  const auto ldg = run_scheme(Scheme::kTopoLdg, g, opts);
  EXPECT_LE(ldg.model_ms, base.model_ms * 1.05);
}

TEST(Integration, SequentialBaselineIsDeterministic) {
  const CsrGraph g = graph::make_suite_graph("G3_circuit", 128);
  const RunOptions opts = scaled_options();
  const auto a = run_scheme(Scheme::kSequential, g, opts);
  const auto b = run_scheme(Scheme::kSequential, g, opts);
  EXPECT_EQ(a.coloring, b.coloring);
  EXPECT_DOUBLE_EQ(a.model_ms, b.model_ms);
}

}  // namespace
