// Tests for speckle::san, the in-simulator device-memory sanitizer.
//
// One victim kernel per detector class proves each detector fires (and
// names the right buffer); the exemption tests prove the declared-racy
// channels (st_racy, racy_visibility) stay silent; the clean-run tests
// prove every paper scheme is sanitizer-clean and that reports are
// bit-identical at --threads=1 and --threads=4.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "coloring/runner.hpp"
#include "graph/suite.hpp"
#include "simt/device.hpp"
#include "simt/san.hpp"
#include "simt/worklist.hpp"

namespace {

using namespace speckle;

simt::DeviceConfig sanitizing_config(std::uint32_t host_threads = 1) {
  simt::DeviceConfig cfg = simt::DeviceConfig::k20c();
  cfg.sanitize = true;
  cfg.host_threads = host_threads;
  return cfg;
}

std::uint64_t count_kind(const san::Report& report, san::FindingKind kind) {
  return report.count(kind);
}

// --- out-of-bounds ---------------------------------------------------------

TEST(SanOutOfBounds, StorePastExtentFiresAndIsSuppressed) {
  simt::Device dev(sanitizing_config());
  auto buf = dev.alloc<std::uint32_t>(8, "victim");
  buf.fill(7);
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "oob_store",
             [&](simt::Thread& t) { t.st(buf, t.thread_in_block(), 1u); });
  const san::Report report = dev.san_report();
  EXPECT_EQ(count_kind(report, san::FindingKind::kOutOfBounds), 24u);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].buffer, "victim");
  EXPECT_EQ(report.findings[0].kernel, "oob_store");
  EXPECT_EQ(report.findings[0].access, san::AccessKind::kStore);
  // The wild stores were dropped; the in-range ones landed.
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(buf[i], 1u);
}

TEST(SanOutOfBounds, LoadAndAtomicPastExtentFire) {
  simt::Device dev(sanitizing_config());
  auto buf = dev.alloc<std::uint32_t>(4, "victim");
  buf.fill(0);
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "oob_mixed",
             [&](simt::Thread& t) {
               // A wild load returns 0 instead of touching a neighbour.
               EXPECT_EQ(t.ld(buf, 100), 0u);
               t.atomic_add(buf, 200, 1u);
             });
  const san::Report report = dev.san_report();
  EXPECT_EQ(count_kind(report, san::FindingKind::kOutOfBounds), 64u);
  EXPECT_EQ(report.findings.size(), 2u);  // one ld site + one atomic site
}

// --- uninitialized loads ---------------------------------------------------

TEST(SanUninit, ReadOfNeverWrittenWordFires) {
  simt::Device dev(sanitizing_config());
  auto buf = dev.alloc<std::uint32_t>(64, "cold");
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "uninit_read",
             [&](simt::Thread& t) { (void)t.ld(buf, t.thread_in_block()); });
  const san::Report report = dev.san_report();
  EXPECT_EQ(count_kind(report, san::FindingKind::kUninitLoad), 32u);
  ASSERT_GE(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].buffer, "cold");
}

TEST(SanUninit, AtomicRmwOnNeverWrittenWordFires) {
  simt::Device dev(sanitizing_config());
  auto buf = dev.alloc<std::uint32_t>(4, "cold");
  dev.launch({.grid_blocks = 1, .block_threads = 1}, "uninit_rmw",
             [&](simt::Thread& t) { t.atomic_add(buf, 0, 1u); });
  EXPECT_EQ(count_kind(dev.san_report(), san::FindingKind::kUninitLoad), 1u);
}

TEST(SanUninit, HostInitializationSuppresses) {
  simt::Device dev(sanitizing_config());
  auto filled = dev.alloc<std::uint32_t>(64, "filled");
  auto poked = dev.alloc<std::uint32_t>(4, "poked");
  filled.fill(3);
  poked[2] = 9;  // single-element host write defines only word 2
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "init_read",
             [&](simt::Thread& t) {
               (void)t.ld(filled, t.thread_in_block());
               (void)t.ld(poked, 2);
             });
  EXPECT_TRUE(dev.san_report().clean());
  // ...and a device store defines the word for a later launch's load.
  dev.launch({.grid_blocks = 1, .block_threads = 1}, "dev_write",
             [&](simt::Thread& t) { t.st(poked, 0, 1u); });
  dev.launch({.grid_blocks = 1, .block_threads = 1}, "dev_read",
             [&](simt::Thread& t) { (void)t.ld(poked, 0); });
  EXPECT_TRUE(dev.san_report().clean());
}

// --- cross-block races -----------------------------------------------------

TEST(SanRace, CrossBlockWriteWriteFires) {
  simt::Device dev(sanitizing_config());
  auto x = dev.alloc<std::uint32_t>(1, "x");
  x.fill(0);
  dev.launch({.grid_blocks = 2, .block_threads = 32}, "ww_race",
             [&](simt::Thread& t) {
               t.st(x, 0, static_cast<std::uint32_t>(t.global_id()));
             });
  const san::Report report = dev.san_report();
  EXPECT_EQ(count_kind(report, san::FindingKind::kRace), 1u);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].buffer, "x");
  EXPECT_NE(report.findings[0].other_block, san::Finding::kNoBlock);
}

TEST(SanRace, CrossBlockReadWriteFires) {
  simt::Device dev(sanitizing_config());
  auto y = dev.alloc<std::uint32_t>(1, "y");
  y.fill(0);
  dev.launch({.grid_blocks = 2, .block_threads = 32}, "rw_race",
             [&](simt::Thread& t) {
               if (t.block() == 0) {
                 t.st(y, 0, 1u);
               } else {
                 (void)t.ld(y, 0);
               }
             });
  EXPECT_EQ(count_kind(dev.san_report(), san::FindingKind::kRace), 1u);
}

TEST(SanRace, AtomicReadRaceFires) {
  // One block updates a word atomically, another plain-reads it: the reader
  // is unsynchronized against the RMW.
  simt::Device dev(sanitizing_config());
  auto z = dev.alloc<std::uint32_t>(1, "z");
  z.fill(0);
  dev.launch({.grid_blocks = 2, .block_threads = 32}, "atomic_read_race",
             [&](simt::Thread& t) {
               if (t.block() == 0) {
                 t.atomic_add(z, 0, 1u);
               } else {
                 (void)t.ld(z, 0);
               }
             });
  EXPECT_EQ(count_kind(dev.san_report(), san::FindingKind::kRace), 1u);
}

TEST(SanRace, AtomicsAreExemptAmongThemselves) {
  simt::Device dev(sanitizing_config());
  auto z = dev.alloc<std::uint32_t>(1, "z");
  z.fill(0);
  dev.launch({.grid_blocks = 4, .block_threads = 32}, "atomic_only",
             [&](simt::Thread& t) { t.atomic_add(z, 0, 1u); });
  EXPECT_TRUE(dev.san_report().clean());
  EXPECT_EQ(z[0], 128u);
}

TEST(SanRace, StRacyDeclaresTheRace) {
  // The speculative-coloring idiom: cross-block writes through st_racy are
  // a declared benign race and must stay silent.
  simt::Device dev(sanitizing_config());
  auto colors = dev.alloc<std::uint32_t>(1, "colors");
  colors.fill(0);
  dev.launch({.grid_blocks = 2, .block_threads = 32}, "declared_racy",
             [&](simt::Thread& t) {
               t.st_racy(colors, 0, static_cast<std::uint32_t>(t.global_id()));
             });
  EXPECT_TRUE(dev.san_report().clean());
}

TEST(SanRace, RacyVisibilityLaunchIsExempt) {
  simt::Device dev(sanitizing_config());
  auto x = dev.alloc<std::uint32_t>(1, "x");
  x.fill(0);
  simt::LaunchConfig cfg{.grid_blocks = 2, .block_threads = 32};
  cfg.racy_visibility = true;
  dev.launch(cfg, "racy_launch", [&](simt::Thread& t) {
    t.st(x, 0, static_cast<std::uint32_t>(t.global_id()));
  });
  EXPECT_TRUE(dev.san_report().clean());
}

TEST(SanRace, DistinctWordsPerBlockAreClean) {
  simt::Device dev(sanitizing_config());
  auto out = dev.alloc<std::uint32_t>(256, "out");
  dev.launch({.grid_blocks = 8, .block_threads = 32}, "disjoint",
             [&](simt::Thread& t) {
               t.st(out, t.global_id(), static_cast<std::uint32_t>(t.global_id()));
             });
  EXPECT_TRUE(dev.san_report().clean());
}

// --- __ldg coherence -------------------------------------------------------

TEST(SanLdg, ReadOfLineDirtiedInSameKernelFires) {
  simt::Device dev(sanitizing_config());
  auto buf = dev.alloc<std::uint32_t>(8, "ro");
  buf.fill(0);
  dev.launch({.grid_blocks = 1, .block_threads = 1}, "ldg_dirty",
             [&](simt::Thread& t) {
               t.st(buf, 0, 1u);
               (void)t.ldg(buf, 1);  // words 0 and 1 share the 128B line
             });
  const san::Report report = dev.san_report();
  EXPECT_EQ(count_kind(report, san::FindingKind::kLdgDirty), 1u);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].buffer, "ro");
}

TEST(SanLdg, CleanWhenKernelOnlyReads) {
  simt::Device dev(sanitizing_config());
  auto ro = dev.alloc<std::uint32_t>(8, "ro");
  auto out = dev.alloc<std::uint32_t>(32, "out");
  ro.fill(5);
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "ldg_clean",
             [&](simt::Thread& t) {
               // Writes land in a different buffer (and thus a different
               // line — allocations are 256-byte padded).
               t.st(out, t.thread_in_block(), t.ldg(ro, t.thread_in_block() % 8));
             });
  EXPECT_TRUE(dev.san_report().clean());
}

// --- worklists -------------------------------------------------------------

TEST(SanWorklist, OverflowIsClampedAndReported) {
  simt::Device dev(sanitizing_config());
  simt::Worklist wl(dev, 4, "tiny");
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "overflow",
             [&](simt::Thread& t) {
               t.scan_push(wl, static_cast<std::uint32_t>(t.global_id()));
             });
  const san::Report report = dev.san_report();
  EXPECT_EQ(count_kind(report, san::FindingKind::kWorklistOverflow), 1u);
  ASSERT_GE(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].buffer, "tiny.items");
  EXPECT_EQ(wl.size(), 4u);  // clamped to capacity instead of aborting
}

TEST(SanWorklist, PushIntoWorklistAlsoReadFires) {
  // The double-buffering bug: handing W_in back in as W_out.
  simt::Device dev(sanitizing_config());
  simt::Worklist wl(dev, 64, "wl");
  wl.fill_iota(32);
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "aliased",
             [&](simt::Thread& t) {
               const std::uint32_t v = t.ld(wl.items(), t.thread_in_block());
               t.scan_push(wl, v);
             });
  const san::Report report = dev.san_report();
  EXPECT_EQ(count_kind(report, san::FindingKind::kWorklistAlias), 1u);
}

TEST(SanWorklist, DoubleBufferingIsClean) {
  simt::Device dev(sanitizing_config());
  simt::Worklist in(dev, 64, "in");
  simt::Worklist out(dev, 64, "out");
  in.fill_iota(32);
  dev.launch({.grid_blocks = 1, .block_threads = 32}, "double_buffered",
             [&](simt::Thread& t) {
               const std::uint32_t v = t.ld(in.items(), t.thread_in_block());
               t.scan_push(out, v);
             });
  EXPECT_TRUE(dev.san_report().clean());
  EXPECT_EQ(out.size(), 32u);
}

// --- report plumbing -------------------------------------------------------

TEST(SanReport, FormatNamesTheDetectorAndBuffer) {
  simt::Device dev(sanitizing_config());
  auto buf = dev.alloc<std::uint32_t>(2, "fmt");
  dev.launch({.grid_blocks = 1, .block_threads = 1}, "fmt_kernel",
             [&](simt::Thread& t) { (void)t.ld(buf, 0); });
  const std::string text = dev.san_report().format();
  EXPECT_NE(text.find("speckle-san"), std::string::npos);
  EXPECT_NE(text.find("uninitialized-load"), std::string::npos);
  EXPECT_NE(text.find("fmt"), std::string::npos);
  EXPECT_NE(text.find("fmt_kernel"), std::string::npos);
  EXPECT_EQ(san::Report{}.format(), "speckle-san: 0 findings\n");
}

TEST(SanReport, OffByDefaultAndEmpty) {
  simt::Device dev;  // sanitize defaults to false
  EXPECT_FALSE(dev.sanitizing());
  auto buf = dev.alloc<std::uint32_t>(4, "ignored");
  dev.launch({.grid_blocks = 1, .block_threads = 1}, "plain",
             [&](simt::Thread& t) { t.st(buf, 0, 1u); });
  EXPECT_TRUE(dev.san_report().clean());
  EXPECT_EQ(dev.san_report().total, 0u);
}

// --- determinism: identical reports at every host thread count -------------

san::Report victim_report(std::uint32_t host_threads) {
  simt::Device dev(sanitizing_config(host_threads));
  auto x = dev.alloc<std::uint32_t>(1, "x");
  auto cold = dev.alloc<std::uint32_t>(64, "cold");
  x.fill(0);
  dev.launch({.grid_blocks = 4, .block_threads = 32}, "victim",
             [&](simt::Thread& t) {
               t.st(x, 0, static_cast<std::uint32_t>(t.global_id()));
               (void)t.ld(cold, t.thread_in_block());
               (void)t.ld(x, 100);
             });
  return dev.san_report();
}

TEST(SanDeterminism, VictimReportsAreBitIdenticalAcrossThreadCounts) {
  const san::Report base = victim_report(1);
  EXPECT_FALSE(base.clean());
  for (std::uint32_t threads : {2u, 4u}) {
    EXPECT_EQ(victim_report(threads), base) << "threads=" << threads;
  }
}

// --- the paper's schemes are sanitizer-clean -------------------------------

class SanCleanSchemes : public ::testing::TestWithParam<coloring::Scheme> {};

TEST_P(SanCleanSchemes, CleanAndIdenticalAtOneAndFourThreads) {
  const graph::CsrGraph g = graph::make_suite_graph("rmat-er", 64, 1);
  san::Report reports[2];
  int i = 0;
  for (std::uint32_t threads : {1u, 4u}) {
    coloring::RunOptions run;
    run.device.sanitize = true;
    run.device.host_threads = threads;
    const coloring::RunResult r = coloring::run_scheme(GetParam(), g, run);
    EXPECT_TRUE(r.san.clean())
        << "threads=" << threads << "\n"
        << r.san.format();
    reports[i++] = r.san;
  }
  EXPECT_EQ(reports[0], reports[1]);
}

INSTANTIATE_TEST_SUITE_P(
    PaperSchemes, SanCleanSchemes,
    ::testing::Values(coloring::Scheme::kGm3Step, coloring::Scheme::kTopoBase,
                      coloring::Scheme::kTopoLdg, coloring::Scheme::kDataBase,
                      coloring::Scheme::kDataLdg, coloring::Scheme::kCsrColor,
                      coloring::Scheme::kDataWarp, coloring::Scheme::kDataAtomic),
    [](const ::testing::TestParamInfo<coloring::Scheme>& info) {
      std::string name = coloring::scheme_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
