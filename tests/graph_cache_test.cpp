// On-disk CSR cache for generated suite graphs (graph/cache.hpp):
// roundtrip bit-identity, key and format-version guards, corruption and
// truncation tolerance (a bad file is a miss that regenerates, never an
// abort), and the flag-vs-environment resolution order.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "graph/cache.hpp"
#include "graph/csr_graph.hpp"
#include "graph/suite.hpp"

namespace {

using namespace speckle;
using graph::CsrGraph;

namespace fs = std::filesystem;

class GraphCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs the suite in parallel processes, and a
    // shared directory would let one test's SetUp wipe another's files.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("speckle_graph_cache_") + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  std::filesystem::path dir_;
};

bool same_graph(const CsrGraph& a, const CsrGraph& b) {
  return std::ranges::equal(a.row_offsets(), b.row_offsets()) &&
         std::ranges::equal(a.col_indices(), b.col_indices());
}

TEST_F(GraphCacheTest, MissGeneratesHitLoadsBitIdentical) {
  const CsrGraph direct = graph::make_suite_graph("Hamrle3", 64, 5);
  const std::string path = graph::graph_cache_path(dir(), "Hamrle3", 64, 5);
  EXPECT_FALSE(fs::exists(path));

  // First call misses, generates, and stores.
  const CsrGraph first = graph::make_suite_graph_cached("Hamrle3", 64, 5, dir());
  EXPECT_TRUE(same_graph(first, direct));
  EXPECT_TRUE(fs::exists(path));

  // Second call must serve the file, and the bytes must decode to the
  // exact same CSR arrays.
  CsrGraph loaded;
  ASSERT_TRUE(graph::load_cached_graph(path, "Hamrle3", 64, 5, &loaded));
  EXPECT_TRUE(same_graph(loaded, direct));
  const CsrGraph second = graph::make_suite_graph_cached("Hamrle3", 64, 5, dir());
  EXPECT_TRUE(same_graph(second, direct));
}

TEST_F(GraphCacheTest, EmptyDirDisablesCaching) {
  const CsrGraph g = graph::make_suite_graph_cached("Hamrle3", 64, 5, "");
  EXPECT_TRUE(same_graph(g, graph::make_suite_graph("Hamrle3", 64, 5)));
  EXPECT_FALSE(fs::exists(dir_));
}

TEST_F(GraphCacheTest, KeyFieldsArePartOfTheFilenameAndHeader) {
  const CsrGraph g = graph::make_suite_graph("Hamrle3", 64, 5);
  const std::string path = graph::graph_cache_path(dir(), "Hamrle3", 64, 5);
  ASSERT_TRUE(graph::store_cached_graph(path, "Hamrle3", 64, 5, g));

  // Different (name, denom, seed) keys hash to different paths...
  EXPECT_NE(graph::graph_cache_path(dir(), "Hamrle3", 32, 5), path);
  EXPECT_NE(graph::graph_cache_path(dir(), "Hamrle3", 64, 6), path);
  EXPECT_NE(graph::graph_cache_path(dir(), "thermal2", 64, 5), path);

  // ...and even a forced collision is rejected by the header check.
  CsrGraph out;
  EXPECT_FALSE(graph::load_cached_graph(path, "Hamrle3", 32, 5, &out));
  EXPECT_FALSE(graph::load_cached_graph(path, "Hamrle3", 64, 6, &out));
  EXPECT_FALSE(graph::load_cached_graph(path, "thermal2", 64, 5, &out));
  EXPECT_TRUE(graph::load_cached_graph(path, "Hamrle3", 64, 5, &out));
}

TEST_F(GraphCacheTest, VersionBumpInvalidatesFile) {
  const CsrGraph g = graph::make_suite_graph("Hamrle3", 64, 5);
  const std::string path = graph::graph_cache_path(dir(), "Hamrle3", 64, 5);
  ASSERT_TRUE(graph::store_cached_graph(path, "Hamrle3", 64, 5, g));

  // The version lives right after the 8-byte magic. Bump it in place.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(8);
    const std::uint32_t bad = graph::kGraphCacheVersion + 1;
    f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
  }
  CsrGraph out;
  EXPECT_FALSE(graph::load_cached_graph(path, "Hamrle3", 64, 5, &out));

  // make_suite_graph_cached treats it as a miss and rewrites a good file.
  const CsrGraph regen = graph::make_suite_graph_cached("Hamrle3", 64, 5, dir());
  EXPECT_TRUE(same_graph(regen, g));
  ASSERT_TRUE(graph::load_cached_graph(path, "Hamrle3", 64, 5, &out));
}

TEST_F(GraphCacheTest, TruncatedFileIsAMiss) {
  const CsrGraph g = graph::make_suite_graph("Hamrle3", 64, 5);
  const std::string path = graph::graph_cache_path(dir(), "Hamrle3", 64, 5);
  ASSERT_TRUE(graph::store_cached_graph(path, "Hamrle3", 64, 5, g));
  fs::resize_file(path, fs::file_size(path) / 2);
  CsrGraph out;
  EXPECT_FALSE(graph::load_cached_graph(path, "Hamrle3", 64, 5, &out));
}

TEST_F(GraphCacheTest, TrailingGarbageIsAMiss) {
  const CsrGraph g = graph::make_suite_graph("Hamrle3", 64, 5);
  const std::string path = graph::graph_cache_path(dir(), "Hamrle3", 64, 5);
  ASSERT_TRUE(graph::store_cached_graph(path, "Hamrle3", 64, 5, g));
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.put('\0');
  }
  CsrGraph out;
  EXPECT_FALSE(graph::load_cached_graph(path, "Hamrle3", 64, 5, &out));
}

TEST_F(GraphCacheTest, CorruptPayloadFailsInvariantsNotAborts) {
  // Smash the tail of the column array with an out-of-range vertex id.
  // load_cached_graph revalidates every CSR invariant on untrusted bytes,
  // so this must come back as a miss (not trip CsrGraph's SPECKLE_CHECK).
  const CsrGraph g = graph::make_suite_graph("Hamrle3", 64, 5);
  const std::string path = graph::graph_cache_path(dir(), "Hamrle3", 64, 5);
  ASSERT_TRUE(graph::store_cached_graph(path, "Hamrle3", 64, 5, g));
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(-static_cast<std::streamoff>(sizeof(graph::vid_t)), std::ios::end);
    const graph::vid_t bad = 0xFFFFFFFFu;
    f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
  }
  CsrGraph out;
  EXPECT_FALSE(graph::load_cached_graph(path, "Hamrle3", 64, 5, &out));
}

TEST_F(GraphCacheTest, ResolveDirPrefersFlagOverEnvironment) {
  ::unsetenv("SPECKLE_GRAPH_CACHE");
  EXPECT_EQ(graph::resolve_graph_cache_dir(""), "");
  EXPECT_EQ(graph::resolve_graph_cache_dir("/flag/dir"), "/flag/dir");

  ::setenv("SPECKLE_GRAPH_CACHE", "/env/dir", 1);
  EXPECT_EQ(graph::resolve_graph_cache_dir(""), "/env/dir");
  EXPECT_EQ(graph::resolve_graph_cache_dir("/flag/dir"), "/flag/dir");
  ::unsetenv("SPECKLE_GRAPH_CACHE");
}

}  // namespace
