// On-disk CSR cache for generated graphs (graph/cache.hpp): roundtrip
// bit-identity for suite graphs and for every GeneratorSpec model, key and
// format-version guards (including rejection of the v1 tuple-key layout),
// corruption and truncation tolerance (a bad file is a miss that
// regenerates, never an abort), and the flag-vs-environment resolution
// order.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/cache.hpp"
#include "graph/csr_graph.hpp"
#include "graph/genspec.hpp"
#include "graph/suite.hpp"
#include "support/threadpool.hpp"

namespace {

using namespace speckle;
using graph::CsrGraph;

namespace fs = std::filesystem;

class GraphCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs the suite in parallel processes, and a
    // shared directory would let one test's SetUp wipe another's files.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("speckle_graph_cache_") + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  std::filesystem::path dir_;
};

bool same_graph(const CsrGraph& a, const CsrGraph& b) {
  return std::ranges::equal(a.row_offsets(), b.row_offsets()) &&
         std::ranges::equal(a.col_indices(), b.col_indices());
}

std::string hamrle_key() { return graph::suite_cache_key("Hamrle3", 64, 5); }
std::string hamrle_path(const std::string& dir) {
  return graph::graph_cache_path(dir, hamrle_key());
}

TEST_F(GraphCacheTest, MissGeneratesHitLoadsBitIdentical) {
  const CsrGraph direct = graph::make_suite_graph("Hamrle3", 64, 5);
  const std::string path = hamrle_path(dir());
  EXPECT_FALSE(fs::exists(path));

  // First call misses, generates, and stores.
  const CsrGraph first = graph::make_suite_graph_cached("Hamrle3", 64, 5, dir());
  EXPECT_TRUE(same_graph(first, direct));
  EXPECT_TRUE(fs::exists(path));

  // Second call must serve the file, and the bytes must decode to the
  // exact same CSR arrays.
  CsrGraph loaded;
  ASSERT_TRUE(graph::load_cached_graph(path, hamrle_key(), &loaded));
  EXPECT_TRUE(same_graph(loaded, direct));
  const CsrGraph second = graph::make_suite_graph_cached("Hamrle3", 64, 5, dir());
  EXPECT_TRUE(same_graph(second, direct));
}

TEST_F(GraphCacheTest, EmptyDirDisablesCaching) {
  const CsrGraph g = graph::make_suite_graph_cached("Hamrle3", 64, 5, "");
  EXPECT_TRUE(same_graph(g, graph::make_suite_graph("Hamrle3", 64, 5)));
  EXPECT_FALSE(fs::exists(dir_));
}

TEST_F(GraphCacheTest, EverySpecModelRoundTripsThroughTheCache) {
  // One small spec per generator model: the first generate_graph_cached
  // stores, the second must load bit-identical bytes, and the key string
  // must be embedded verbatim.
  const std::vector<std::string> specs = {
      "rmat:scale=10,deg=8,seed=9",
      "kron:scale=10,deg=8,seed=9",
      "ba:n=2000,attach=3,seed=9",
      "rgg2d:n=2000,deg=8,seed=9",
      "grid2d:nx=40,ny=50,defects=0.4,seed=9",
      "grid3d:nx=12,ny=13,nz=14,defects=0.5,seed=9",
      "localrand:n=3000,deglo=1,deghi=7,seed=9",
      "er:n=2000,deg=8,seed=9",
  };
  support::ThreadPool pool(2);
  for (const std::string& text : specs) {
    SCOPED_TRACE(text);
    const graph::GeneratorSpec spec = graph::parse_generator_spec(text, 9);
    const CsrGraph direct = graph::generate_graph(spec, pool);
    const std::string key = graph::canonical_spec_key(spec);
    const std::string path = graph::graph_cache_path(dir(), key);

    const CsrGraph stored = graph::generate_graph_cached(spec, pool, dir());
    EXPECT_TRUE(same_graph(stored, direct));
    ASSERT_TRUE(fs::exists(path));

    CsrGraph loaded;
    ASSERT_TRUE(graph::load_cached_graph(path, key, &loaded));
    EXPECT_TRUE(same_graph(loaded, direct));
    const CsrGraph again = graph::generate_graph_cached(spec, pool, dir());
    EXPECT_TRUE(same_graph(again, direct));
  }
}

TEST_F(GraphCacheTest, KeyIsPartOfTheFilenameAndHeader) {
  const CsrGraph g = graph::make_suite_graph("Hamrle3", 64, 5);
  const std::string path = hamrle_path(dir());
  ASSERT_TRUE(graph::store_cached_graph(path, hamrle_key(), g));

  // Different (name, denom, seed) keys hash to different paths...
  EXPECT_NE(graph::graph_cache_path(dir(), graph::suite_cache_key("Hamrle3", 32, 5)), path);
  EXPECT_NE(graph::graph_cache_path(dir(), graph::suite_cache_key("Hamrle3", 64, 6)), path);
  EXPECT_NE(graph::graph_cache_path(dir(), graph::suite_cache_key("thermal2", 64, 5)), path);

  // ...and even a forced collision is rejected by the header check.
  CsrGraph out;
  EXPECT_FALSE(graph::load_cached_graph(path, graph::suite_cache_key("Hamrle3", 32, 5), &out));
  EXPECT_FALSE(graph::load_cached_graph(path, graph::suite_cache_key("Hamrle3", 64, 6), &out));
  EXPECT_FALSE(graph::load_cached_graph(path, graph::suite_cache_key("thermal2", 64, 5), &out));
  EXPECT_TRUE(graph::load_cached_graph(path, hamrle_key(), &out));
}

TEST_F(GraphCacheTest, VersionBumpInvalidatesFile) {
  const CsrGraph g = graph::make_suite_graph("Hamrle3", 64, 5);
  const std::string path = hamrle_path(dir());
  ASSERT_TRUE(graph::store_cached_graph(path, hamrle_key(), g));

  // The version lives right after the 8-byte magic. Bump it in place.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(8);
    const std::uint32_t bad = graph::kGraphCacheVersion + 1;
    f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
  }
  CsrGraph out;
  EXPECT_FALSE(graph::load_cached_graph(path, hamrle_key(), &out));

  // make_suite_graph_cached treats it as a miss and rewrites a good file.
  const CsrGraph regen = graph::make_suite_graph_cached("Hamrle3", 64, 5, dir());
  EXPECT_TRUE(same_graph(regen, g));
  ASSERT_TRUE(graph::load_cached_graph(path, hamrle_key(), &out));
}

TEST_F(GraphCacheTest, V1LayoutFileIsRejectedByTheVersionGuard) {
  // Reconstruct a file in the exact v1 layout (tuple key: denom/seed/name
  // hash fields where v2 keeps key_len/key_hash) and plant it at the v2
  // path. The version guard — version 1 at byte offset 8 — must reject it
  // as a miss; nothing later in the header may be interpreted.
  const CsrGraph g = graph::make_suite_graph("Hamrle3", 64, 5);
  const std::string path = hamrle_path(dir());
  fs::create_directories(dir());
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    const std::uint64_t magic = 0x53504b2d43535231ULL;
    const std::uint32_t version = 1;
    const std::uint32_t vid_bytes = sizeof(graph::vid_t);
    const std::uint32_t eid_bytes = sizeof(graph::eid_t);
    const std::uint32_t denom = 64;
    const std::uint64_t seed = 5;
    const std::uint64_t name_hash = 0x1234abcdULL;
    const std::uint64_t n = g.num_vertices(), m = g.num_edges();
    f.write(reinterpret_cast<const char*>(&magic), 8);
    f.write(reinterpret_cast<const char*>(&version), 4);
    f.write(reinterpret_cast<const char*>(&vid_bytes), 4);
    f.write(reinterpret_cast<const char*>(&eid_bytes), 4);
    f.write(reinterpret_cast<const char*>(&denom), 4);
    f.write(reinterpret_cast<const char*>(&seed), 8);
    f.write(reinterpret_cast<const char*>(&name_hash), 8);
    f.write(reinterpret_cast<const char*>(&n), 8);
    f.write(reinterpret_cast<const char*>(&m), 8);
    f.write(reinterpret_cast<const char*>(g.row_offsets().data()),
            static_cast<std::streamsize>(g.row_offsets().size() * sizeof(graph::eid_t)));
    f.write(reinterpret_cast<const char*>(g.col_indices().data()),
            static_cast<std::streamsize>(g.col_indices().size() * sizeof(graph::vid_t)));
  }
  CsrGraph out;
  EXPECT_FALSE(graph::load_cached_graph(path, hamrle_key(), &out));

  // The stale file regenerates through the normal miss path.
  const CsrGraph regen = graph::make_suite_graph_cached("Hamrle3", 64, 5, dir());
  EXPECT_TRUE(same_graph(regen, g));
  ASSERT_TRUE(graph::load_cached_graph(path, hamrle_key(), &out));
}

TEST_F(GraphCacheTest, TruncatedFileIsAMiss) {
  const CsrGraph g = graph::make_suite_graph("Hamrle3", 64, 5);
  const std::string path = hamrle_path(dir());
  ASSERT_TRUE(graph::store_cached_graph(path, hamrle_key(), g));
  fs::resize_file(path, fs::file_size(path) / 2);
  CsrGraph out;
  EXPECT_FALSE(graph::load_cached_graph(path, hamrle_key(), &out));
}

TEST_F(GraphCacheTest, TrailingGarbageIsAMiss) {
  const CsrGraph g = graph::make_suite_graph("Hamrle3", 64, 5);
  const std::string path = hamrle_path(dir());
  ASSERT_TRUE(graph::store_cached_graph(path, hamrle_key(), g));
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.put('\0');
  }
  CsrGraph out;
  EXPECT_FALSE(graph::load_cached_graph(path, hamrle_key(), &out));
}

TEST_F(GraphCacheTest, CorruptPayloadFailsInvariantsNotAborts) {
  // Smash the tail of the column array with an out-of-range vertex id.
  // load_cached_graph revalidates every CSR invariant on untrusted bytes,
  // so this must come back as a miss (not trip CsrGraph's SPECKLE_CHECK).
  const CsrGraph g = graph::make_suite_graph("Hamrle3", 64, 5);
  const std::string path = hamrle_path(dir());
  ASSERT_TRUE(graph::store_cached_graph(path, hamrle_key(), g));
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(-static_cast<std::streamoff>(sizeof(graph::vid_t)), std::ios::end);
    const graph::vid_t bad = 0xFFFFFFFFu;
    f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
  }
  CsrGraph out;
  EXPECT_FALSE(graph::load_cached_graph(path, hamrle_key(), &out));
}

TEST_F(GraphCacheTest, ResolveDirPrefersFlagOverEnvironment) {
  ::unsetenv("SPECKLE_GRAPH_CACHE");
  EXPECT_EQ(graph::resolve_graph_cache_dir(""), "");
  EXPECT_EQ(graph::resolve_graph_cache_dir("/flag/dir"), "/flag/dir");

  ::setenv("SPECKLE_GRAPH_CACHE", "/env/dir", 1);
  EXPECT_EQ(graph::resolve_graph_cache_dir(""), "/env/dir");
  EXPECT_EQ(graph::resolve_graph_cache_dir("/flag/dir"), "/flag/dir");
  ::unsetenv("SPECKLE_GRAPH_CACHE");
}

}  // namespace
