// Unit tests for the CSR graph container and the edge-list builder.

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"

namespace {

using namespace speckle::graph;

CsrGraph triangle() { return build_csr(3, {{0, 1}, {1, 2}, {0, 2}}); }

TEST(CsrGraph, EmptyGraph) {
  CsrGraph g;
  EXPECT_EQ(g.num_vertices(), 0U);
  EXPECT_EQ(g.num_edges(), 0U);
}

TEST(CsrGraph, TriangleStructure) {
  const CsrGraph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3U);
  EXPECT_EQ(g.num_edges(), 6U);  // symmetrized
  EXPECT_EQ(g.degree(0), 2U);
  EXPECT_EQ(g.degree(1), 2U);
  EXPECT_EQ(g.degree(2), 2U);
  EXPECT_EQ(g.max_degree(), 2U);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(CsrGraph, NeighborsAreSorted) {
  const CsrGraph g = build_csr(4, {{3, 0}, {3, 2}, {3, 1}});
  const auto adj = g.neighbors(3);
  ASSERT_EQ(adj.size(), 3U);
  EXPECT_EQ(adj[0], 0U);
  EXPECT_EQ(adj[1], 1U);
  EXPECT_EQ(adj[2], 2U);
}

TEST(CsrGraph, HasEdge) {
  const CsrGraph g = triangle();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(CsrGraph, ByteSizeMatchesArrays) {
  const CsrGraph g = triangle();
  EXPECT_EQ(g.byte_size(), 4 * sizeof(eid_t) + 6 * sizeof(vid_t));
}

TEST(Builder, RemovesSelfLoops) {
  const CsrGraph g = build_csr(3, {{0, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(g.num_edges(), 2U);  // only 0-1 both ways
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Builder, RemovesDuplicates) {
  const CsrGraph g = build_csr(2, {{0, 1}, {0, 1}, {1, 0}});
  EXPECT_EQ(g.num_edges(), 2U);
}

TEST(Builder, SymmetrizeOffKeepsDirection) {
  BuildOptions opts;
  opts.symmetrize = false;
  const CsrGraph g = build_csr(3, {{0, 1}, {0, 2}}, opts);
  EXPECT_EQ(g.num_edges(), 2U);
  EXPECT_EQ(g.degree(0), 2U);
  EXPECT_EQ(g.degree(1), 0U);
  EXPECT_FALSE(g.is_symmetric());
}

TEST(Builder, IsolatedVerticesAllowed) {
  const CsrGraph g = build_csr(5, {{0, 1}});
  EXPECT_EQ(g.degree(4), 0U);
  EXPECT_EQ(g.neighbors(4).size(), 0U);
}

TEST(Builder, EdgeListRoundTrip) {
  const CsrGraph g = triangle();
  const EdgeList edges = to_edge_list(g);
  BuildOptions opts;
  opts.symmetrize = false;  // already symmetric
  const CsrGraph h = build_csr(3, edges, opts);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (vid_t v = 0; v < 3; ++v) {
    EXPECT_EQ(h.degree(v), g.degree(v));
  }
}

TEST(BuilderDeathTest, RejectsOutOfRangeEndpoint) {
  EXPECT_DEATH(build_csr(2, {{0, 5}}), "out of range");
}

TEST(CsrGraphDeathTest, RejectsBadOffsets) {
  EXPECT_DEATH(CsrGraph({0, 2, 1, 2}, {1, 2}), "non-decreasing");
  EXPECT_DEATH(CsrGraph({0, 1}, {5}), "out of range");
  EXPECT_DEATH(CsrGraph({0, 1}, {0}), "self loop");
}

}  // namespace
