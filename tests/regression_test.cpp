// Golden regression pins for the simulator and the algorithms.
//
// These values are NOT derived from first principles — they pin the current,
// validated behavior of the timing model and the deterministic algorithms so
// that accidental changes (a latency constant, a trace-merge rule, an RNG
// draw order) are caught immediately. If a deliberate model change lands,
// re-baseline the constants here and note it in the commit.

#include <gtest/gtest.h>

#include "coloring/runner.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "simt/device.hpp"

namespace {

using namespace speckle;
using namespace speckle::coloring;

graph::CsrGraph pinned_graph() {
  return graph::build_csr(4096, graph::rmat(12, 24000, graph::RmatParams{}, 42));
}

TEST(Regression, PinnedGraphStructure) {
  const graph::CsrGraph g = pinned_graph();
  EXPECT_EQ(g.num_vertices(), 4096U);
  EXPECT_EQ(g.num_edges(), 47910U);
  EXPECT_EQ(g.max_degree(), 26U);
}

TEST(Regression, PinnedSequentialColoring) {
  const graph::CsrGraph g = pinned_graph();
  const RunResult r = run_scheme(Scheme::kSequential, g);
  EXPECT_EQ(r.num_colors, 9U);
}

TEST(Regression, PinnedSchemeColorsAndIterations) {
  const graph::CsrGraph g = pinned_graph();
  struct Pin {
    Scheme scheme;
    color_t colors;
    std::uint32_t iterations;
  };
  // Baselined 2026-07: deterministic outputs of each scheme on the pinned
  // graph with default options. These survived the parallel wave executor
  // unchanged: speculative (st_racy) kernels keep the serial immediate-
  // visibility semantics, and snapshot-executed kernels commit in block
  // order, so every scheme still computes exactly these values.
  const Pin pins[] = {
      {Scheme::kTopoBase, 9, 3},
      {Scheme::kDataBase, 9, 2},
      {Scheme::kCsrColor, 29, 4},
  };
  for (const Pin& pin : pins) {
    const RunResult r = run_scheme(pin.scheme, g);
    EXPECT_EQ(r.num_colors, pin.colors) << scheme_name(pin.scheme);
    EXPECT_EQ(r.iterations, pin.iterations) << scheme_name(pin.scheme);
  }
}

TEST(Regression, PinnedKernelTiming) {
  // A simple coalesced copy has a fully predictable simulated cost.
  simt::Device dev;
  const std::uint32_t n = 1 << 14;
  auto src = dev.alloc<std::uint32_t>(n);
  auto dst = dev.alloc<std::uint32_t>(n);
  const auto& stats = dev.launch({.grid_blocks = n / 128, .block_threads = 128},
                                 "copy", [&](simt::Thread& t) {
                                   const auto i = t.global_id();
                                   t.st(dst, i, t.ld(src, i));
                                 });
  EXPECT_EQ(stats.gld_transactions, n / 32);
  EXPECT_EQ(stats.gst_transactions, n / 32);
  // Pin the cycle count loosely (5%) so issue-cost tweaks ring alarms while
  // float-noise does not.
  EXPECT_NEAR(static_cast<double>(stats.cycles), 3841.0, 0.05 * 3841.0);
}

TEST(Regression, TimingIsIndependentOfReportOrder) {
  // Running two identical kernels must cost exactly the same, kernel over
  // kernel (L2 warmth aside — second run hits, so it must be FASTER).
  simt::Device dev;
  const std::uint32_t n = 1 << 14;
  auto src = dev.alloc<std::uint32_t>(n);
  auto dst = dev.alloc<std::uint32_t>(n);
  auto body = [&](simt::Thread& t) {
    const auto i = t.global_id();
    t.st(dst, i, t.ld(src, i));
  };
  const auto first = dev.launch({.grid_blocks = n / 128, .block_threads = 128},
                                "first", body).cycles;
  const auto second = dev.launch({.grid_blocks = n / 128, .block_threads = 128},
                                 "second", body).cycles;
  EXPECT_LT(second, first);  // warm L2
}

}  // namespace
