// Metrics/reporting tests: occupancy analysis and the profile formatters.

#include <gtest/gtest.h>

#include "simt/device.hpp"
#include "simt/metrics.hpp"

namespace {

using namespace speckle::simt;

TEST(Occupancy, RegisterLimited128) {
  const DeviceConfig dev = DeviceConfig::k20c();
  const OccupancyReport r = analyze_occupancy(dev, {1, 128, 37, 0});
  EXPECT_EQ(r.resident_blocks, 13U);  // 65536 / (37*128)
  EXPECT_EQ(r.resident_warps, 52U);
  EXPECT_EQ(r.limiter, "registers");
  EXPECT_NEAR(r.occupancy, 52.0 / 64.0, 1e-12);
}

TEST(Occupancy, BlockLimitedTiny) {
  const DeviceConfig dev = DeviceConfig::k20c();
  const OccupancyReport r = analyze_occupancy(dev, {1, 32, 16, 0});
  EXPECT_EQ(r.resident_blocks, 16U);
  EXPECT_EQ(r.limiter, "blocks");
  EXPECT_NEAR(r.occupancy, 16.0 / 64.0, 1e-12);  // Fig 8's 32-thread cliff
}

TEST(Occupancy, ScratchpadLimited) {
  const DeviceConfig dev = DeviceConfig::k20c();
  const OccupancyReport r = analyze_occupancy(dev, {1, 128, 16, 24 * 1024});
  EXPECT_EQ(r.resident_blocks, 2U);
  EXPECT_EQ(r.limiter, "scratchpad");
}

TEST(Occupancy, WarpLimitedLargeBlock) {
  const DeviceConfig dev = DeviceConfig::k20c();
  const OccupancyReport r = analyze_occupancy(dev, {1, 1024, 16, 0});
  // 64 warps / 32 warps-per-block = 2 blocks; registers allow 4.
  EXPECT_EQ(r.resident_blocks, 2U);
  EXPECT_EQ(r.limiter, "warps");
}

TEST(Occupancy, MatchesExecutorOccupancy) {
  const DeviceConfig dev = DeviceConfig::k20c();
  for (std::uint32_t block : {32U, 64U, 128U, 256U, 512U, 1024U}) {
    const LaunchConfig cfg{1, block, 37, 0};
    EXPECT_EQ(analyze_occupancy(dev, cfg).resident_blocks,
              occupancy_blocks_per_sm(dev, cfg))
        << block;
  }
}

TEST(Metrics, KernelTableMentionsKernelAndTransfers) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(256);
  dev.launch({.grid_blocks = 2, .block_threads = 128}, "my_kernel",
             [&](Thread& t) { t.st(buf, t.global_id(), 1U); });
  dev.copy_to_host(1024);
  const std::string table = format_kernel_table(dev.report(), dev.config());
  EXPECT_NE(table.find("my_kernel"), std::string::npos);
  EXPECT_NE(table.find("transfers"), std::string::npos);
  EXPECT_NE(table.find("d2h"), std::string::npos);
}

TEST(Metrics, StallBreakdownListsAllReasons) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(1 << 14);
  dev.launch({.grid_blocks = 128, .block_threads = 128}, "k",
             [&](Thread& t) { t.st(buf, t.global_id(), t.ld(buf, t.global_id())); });
  const std::string breakdown =
      format_stall_breakdown(dev.report().aggregate_stalls());
  EXPECT_NE(breakdown.find("memory dependency"), std::string::npos);
  EXPECT_NE(breakdown.find("synchronization"), std::string::npos);
  EXPECT_NE(breakdown.find("busy"), std::string::npos);
}

}  // namespace
