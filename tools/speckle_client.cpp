// speckle_client: trace-driven client for speckle_serve.
//
// Reads a line-oriented trace (one request per line), sends each request
// over the wire protocol, and prints one deterministic line per response —
// the response log the CI smoke job diffs against a golden. Responses
// carry only simulated quantities, so the log is bit-identical at any
// server --threads value.
//
// Trace DSL ('#' starts a comment, blank lines skipped):
//   load <key> <denom> <seed>
//   color <handle> <scheme> [refine]
//   query <handle> color <vertex>
//   query <handle> ncolors
//   query <handle> gstats
//   mutate <handle> [+u,v|-u,v]...
//   stats
//   raw <hex>                      # raw payload bytes, for protocol tests
//
// Transports:
//   --exec="path/to/speckle_serve [args]"   fork the server on pipes
//   --unix=/tmp/speckle.sock                connect to a unix socket
//   --port=7461                             connect to 127.0.0.1:port
// Trace source: --trace=FILE (default stdin).

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <netinet/in.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/mutate.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/options.hpp"

namespace {

using namespace speckle::serve;

struct Pending {
  Opcode op;
  QueryWhat what = QueryWhat::kVertexColor;  // for kQuery only
  bool raw = false;
};

bool parse_edge(const std::string& tok, speckle::graph::EdgeMutation* out) {
  if (tok.size() < 4 || (tok[0] != '+' && tok[0] != '-')) return false;
  const auto comma = tok.find(',');
  if (comma == std::string::npos) return false;
  try {
    out->kind = tok[0] == '+' ? speckle::graph::EdgeMutation::Kind::kInsert
                              : speckle::graph::EdgeMutation::Kind::kDelete;
    out->u = static_cast<speckle::graph::vid_t>(
        std::stoul(tok.substr(1, comma - 1)));
    out->v =
        static_cast<speckle::graph::vid_t>(std::stoul(tok.substr(comma + 1)));
  } catch (...) {
    return false;
  }
  return true;
}

/// Build the request payload for one trace line; false = unparsable line.
bool encode_line(const std::string& line, std::uint32_t request_id,
                 std::vector<std::uint8_t>* payload, Pending* pending) {
  std::istringstream in(line);
  std::string verb;
  in >> verb;
  if (verb == "load") {
    std::string key;
    std::uint32_t denom = 1;
    std::uint64_t seed = 0;
    if (!(in >> key >> denom >> seed)) return false;
    WireWriter body;
    body.str(key);
    body.u32(denom);
    body.u64(seed);
    *payload = make_request(Opcode::kLoad, request_id, body.bytes());
    pending->op = Opcode::kLoad;
    return true;
  }
  if (verb == "color") {
    std::uint32_t handle = 0;
    std::string scheme, flag;
    if (!(in >> handle >> scheme)) return false;
    std::uint8_t flags = 0;
    if (in >> flag && flag == "refine") flags |= 1;
    WireWriter body;
    body.u32(handle);
    body.str(scheme);
    body.u8(flags);
    *payload = make_request(Opcode::kColor, request_id, body.bytes());
    pending->op = Opcode::kColor;
    return true;
  }
  if (verb == "query") {
    std::uint32_t handle = 0;
    std::string what;
    if (!(in >> handle >> what)) return false;
    QueryWhat selector;
    std::uint64_t arg = 0;
    if (what == "color") {
      selector = QueryWhat::kVertexColor;
      if (!(in >> arg)) return false;
    } else if (what == "ncolors") {
      selector = QueryWhat::kNumColors;
    } else if (what == "gstats") {
      selector = QueryWhat::kGraphStats;
    } else {
      return false;
    }
    WireWriter body;
    body.u32(handle);
    body.u8(static_cast<std::uint8_t>(selector));
    body.u64(arg);
    *payload = make_request(Opcode::kQuery, request_id, body.bytes());
    pending->op = Opcode::kQuery;
    pending->what = selector;
    return true;
  }
  if (verb == "mutate") {
    std::uint32_t handle = 0;
    if (!(in >> handle)) return false;
    std::vector<speckle::graph::EdgeMutation> batch;
    std::string tok;
    while (in >> tok) {
      speckle::graph::EdgeMutation m;
      if (!parse_edge(tok, &m)) return false;
      batch.push_back(m);
    }
    WireWriter body;
    body.u32(handle);
    body.u32(static_cast<std::uint32_t>(batch.size()));
    for (const auto& m : batch) {
      body.u8(static_cast<std::uint8_t>(m.kind));
      body.u64(m.u);
      body.u64(m.v);
    }
    *payload = make_request(Opcode::kMutate, request_id, body.bytes());
    pending->op = Opcode::kMutate;
    return true;
  }
  if (verb == "stats") {
    *payload = make_request(Opcode::kStats, request_id);
    pending->op = Opcode::kStats;
    return true;
  }
  if (verb == "raw") {
    std::string hex;
    in >> hex;
    if (hex.size() % 2 != 0) return false;
    payload->clear();
    for (std::size_t i = 0; i < hex.size(); i += 2) {
      const std::string byte = hex.substr(i, 2);
      char* end = nullptr;
      const long value = std::strtol(byte.c_str(), &end, 16);
      if (end != byte.c_str() + 2) return false;
      payload->push_back(static_cast<std::uint8_t>(value));
    }
    pending->raw = true;
    return true;
  }
  return false;
}

void print_response(std::ostream& out, const Pending& pending,
                    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  const auto status = static_cast<Status>(r.u8());
  const std::uint32_t id = r.u32();
  out << "[" << id << "] " << status_name(status);
  if (status != Status::kOk) {
    out << " \"" << r.str() << "\"\n";
    return;
  }
  if (pending.raw) {
    out << " raw " << r.remaining() << " bytes\n";
    return;
  }
  switch (pending.op) {
    case Opcode::kLoad: {
      const std::uint32_t handle = r.u32();
      const std::uint64_t n = r.u64();
      const std::uint64_t m = r.u64();
      const std::uint8_t fresh = r.u8();
      out << " load handle=" << handle << " n=" << n << " m=" << m
          << " fresh=" << static_cast<int>(fresh);
      break;
    }
    case Opcode::kColor: {
      const std::uint32_t colors = r.u32();
      const std::uint32_t iters = r.u32();
      const std::uint8_t cached = r.u8();
      const std::uint64_t model_ns = r.u64();
      out << " color colors=" << colors << " iters=" << iters
          << " cached=" << static_cast<int>(cached)
          << " model_ns=" << model_ns;
      break;
    }
    case Opcode::kQuery: {
      if (pending.what == QueryWhat::kVertexColor) {
        out << " query color=" << r.u32();
      } else if (pending.what == QueryWhat::kNumColors) {
        out << " query ncolors=" << r.u32();
      } else {
        const std::uint64_t n = r.u64();
        const std::uint64_t m = r.u64();
        const std::uint64_t mindeg = r.u64();
        const std::uint64_t maxdeg = r.u64();
        out << " query n=" << n << " m=" << m << " mindeg=" << mindeg
            << " maxdeg=" << maxdeg;
      }
      break;
    }
    case Opcode::kMutate: {
      const std::uint32_t applied = r.u32();
      const std::uint32_t skipped = r.u32();
      const std::uint32_t dirty = r.u32();
      const std::uint8_t mode = r.u8();
      const std::uint32_t colors = r.u32();
      const std::uint32_t iters = r.u32();
      const std::uint64_t model_ns = r.u64();
      static const char* kModes[] = {"uncolored", "incremental", "full"};
      out << " mutate applied=" << applied << " skipped=" << skipped
          << " dirty=" << dirty
          << " mode=" << (mode <= 2 ? kModes[mode] : "?")
          << " colors=" << colors << " iters=" << iters
          << " model_ns=" << model_ns;
      break;
    }
    case Opcode::kStats: {
      const std::uint64_t requests = r.u64();
      const std::uint64_t errors = r.u64();
      std::uint64_t per_op[kNumOpcodes];
      for (auto& c : per_op) c = r.u64();
      const std::uint64_t graphs = r.u64();
      const std::uint64_t generations = r.u64();
      const std::uint64_t incr = r.u64();
      const std::uint64_t full = r.u64();
      const std::uint64_t mutations = r.u64();
      const std::uint32_t handles = r.u32();
      out << " stats requests=" << requests << " errors=" << errors
          << " load=" << per_op[0] << " color=" << per_op[1]
          << " query=" << per_op[2] << " mutate=" << per_op[3]
          << " stats=" << per_op[4] << " graphs=" << graphs
          << " generations=" << generations << " incremental=" << incr
          << " full=" << full << " mutations=" << mutations
          << " handles=" << handles;
      break;
    }
  }
  if (!r.done()) out << " (trailing bytes)";
  out << "\n";
}

std::vector<std::string> split_command(const std::string& command) {
  std::istringstream in(command);
  std::vector<std::string> parts;
  std::string tok;
  while (in >> tok) parts.push_back(tok);
  return parts;
}

int fail(const char* message) {
  std::fprintf(stderr, "speckle_client: %s\n", message);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  speckle::support::Options opts(argc, argv);
  const std::string exec = opts.get_string("exec", "");
  const std::string unix_path = opts.get_string("unix", "");
  const std::int64_t port = opts.get_int("port", 0);
  const std::string trace_path = opts.get_string("trace", "");
  opts.validate({"exec", "unix", "port", "trace"});

  int read_fd = -1;
  int write_fd = -1;
  pid_t child = -1;

  if (!exec.empty()) {
    int to_server[2];
    int from_server[2];
    if (::pipe(to_server) != 0 || ::pipe(from_server) != 0) {
      return fail("pipe failed");
    }
    child = ::fork();
    if (child < 0) return fail("fork failed");
    if (child == 0) {
      ::dup2(to_server[0], STDIN_FILENO);
      ::dup2(from_server[1], STDOUT_FILENO);
      ::close(to_server[0]);
      ::close(to_server[1]);
      ::close(from_server[0]);
      ::close(from_server[1]);
      std::vector<std::string> parts = split_command(exec);
      parts.emplace_back("--stdio");
      std::vector<char*> args;
      args.reserve(parts.size() + 1);
      for (auto& p : parts) args.push_back(p.data());
      args.push_back(nullptr);
      ::execv(args[0], args.data());
      std::perror("speckle_client: execv");
      _exit(127);
    }
    ::close(to_server[0]);
    ::close(from_server[1]);
    write_fd = to_server[1];
    read_fd = from_server[0];
  } else if (!unix_path.empty()) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (unix_path.size() >= sizeof(addr.sun_path)) {
      return fail("socket path too long");
    }
    std::memcpy(addr.sun_path, unix_path.c_str(), unix_path.size() + 1);
    if (fd < 0 || ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
      return fail("cannot connect to unix socket");
    }
    read_fd = write_fd = fd;
  } else if (port != 0) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (fd < 0 || ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
      return fail("cannot connect to tcp port");
    }
    read_fd = write_fd = fd;
  } else {
    return fail("pick a transport: --exec, --unix, or --port");
  }

  std::ifstream trace_file;
  std::istream* trace = &std::cin;
  if (!trace_path.empty()) {
    trace_file.open(trace_path);
    if (!trace_file) return fail("cannot open trace file");
    trace = &trace_file;
  }

  FdStream stream(read_fd, write_fd);
  std::uint32_t request_id = 0;
  std::string line;
  int rc = 0;
  while (std::getline(*trace, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    std::vector<std::uint8_t> payload;
    Pending pending;
    if (!encode_line(line, ++request_id, &payload, &pending)) {
      std::fprintf(stderr, "speckle_client: bad trace line: %s\n",
                   line.c_str());
      rc = 2;
      break;
    }
    const std::vector<std::uint8_t> frame = make_frame(payload);
    if (!stream.write_all(frame.data(), frame.size())) {
      rc = fail("server closed the connection (write)");
      break;
    }
    std::uint8_t prefix[kFramePrefixBytes];
    if (stream.read_exact(prefix, sizeof(prefix)) != ReadStatus::kOk) {
      rc = fail("server closed the connection (read)");
      break;
    }
    const std::uint32_t length =
        static_cast<std::uint32_t>(prefix[0]) |
        (static_cast<std::uint32_t>(prefix[1]) << 8) |
        (static_cast<std::uint32_t>(prefix[2]) << 16) |
        (static_cast<std::uint32_t>(prefix[3]) << 24);
    if (length > kMaxFrameBytes) {
      rc = fail("response frame exceeds cap");
      break;
    }
    std::vector<std::uint8_t> response(length);
    if (length > 0 &&
        stream.read_exact(response.data(), length) != ReadStatus::kOk) {
      rc = fail("truncated response");
      break;
    }
    print_response(std::cout, pending, response);
  }

  if (write_fd != read_fd) ::close(write_fd);
  ::close(read_fd);
  if (child > 0) {
    int status = 0;
    ::waitpid(child, &status, 0);
    if (rc == 0 && (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
      rc = fail("server exited abnormally");
    }
  }
  return rc;
}
