/// \file speckle_lint.cpp
/// Static launch-plan linter: run every (requested) GPU scheme with
/// speckle::check enabled, dump the recorded LaunchPlan and the checker
/// findings, and exit non-zero when anything fired.
///
/// Usage:
///   speckle_lint [--suite=Hamrle3 --denom=128 | --graph=matrix.mtx]
///                [--schemes=all|D-ldg,T-base,...] [--devices=1,2,4]
///                [--block=128] [--seed=1] [--threads=N] [--sanitize]
///                [--json=off|full|findings]
///
/// One "run" is a (scheme, device count) pair: every named single-device
/// scheme runs at P=1, and each P>1 in --devices adds the data-driven
/// schemes that have a multi-device path (D-base, D-ldg, D-atomic).
/// --schemes=all (the default) covers every GPU scheme in the registry
/// plus the distance-2 extension (listed as "topo-d2").
///
/// Output modes:
///   * text (default): per run, the launch-plan IR (one line per launch
///     with its declared uses) followed by the findings and a summary;
///   * --json=full: machine-readable dump of every run's full checker
///     report (plan + findings), one JSON object;
///   * --json=findings: a compact findings-only JSON — the CI gate diffs
///     this against a golden (empty) baseline, so a dirty plan shows up
///     as a readable diff naming the rule, kernel and buffer.
///
/// --sanitize additionally runs the dynamic sanitizer (spec
/// cross-validation: any access outside the declared intents is a
/// kUndeclaredAccess finding) and folds its findings into the output and
/// the exit code. Everything printed is deterministic — byte-identical at
/// every --threads value.
///
/// Exit code: 0 when every run is clean, 2 when any checker (or, with
/// --sanitize, sanitizer) finding fired, 1 on usage errors.

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "coloring/distance2.hpp"
#include "coloring/runner.hpp"
#include "graph/cache.hpp"
#include "graph/matrix_market.hpp"
#include "graph/suite.hpp"
#include "support/check.hpp"
#include "support/options.hpp"

namespace {

using namespace speckle;

struct LintRun {
  std::string label;       ///< scheme name ("topo-d2" for the D2 extension)
  std::uint32_t devices = 1;
  check::Report check;
  san::Report san;
};

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool scheme_supports_multidev(coloring::Scheme s) {
  return s == coloring::Scheme::kDataBase || s == coloring::Scheme::kDataLdg ||
         s == coloring::Scheme::kDataAtomic;
}

std::string findings_json(const std::vector<LintRun>& runs) {
  std::ostringstream os;
  os << "{\"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const LintRun& run = runs[i];
    if (i != 0) os << ",";
    os << "\n  {\"scheme\": \"" << run.label << "\", \"devices\": "
       << run.devices << ", \"findings\": [";
    bool first = true;
    for (const check::Finding& f : run.check.findings) {
      if (!first) os << ", ";
      first = false;
      os << "{\"rule\": \"" << check::rule_kind_name(f.kind)
         << "\", \"kernel\": \"" << f.kernel << "\", \"buffer\": \""
         << f.buffer << "\"}";
    }
    for (const san::Finding& f : run.san.findings) {
      if (!first) os << ", ";
      first = false;
      os << "{\"rule\": \"san:" << san::finding_kind_name(f.kind)
         << "\", \"kernel\": \"" << f.kernel << "\", \"buffer\": \""
         << f.buffer << "\"}";
    }
    os << "]}";
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  support::Options opts(argc, argv);
  const std::string mtx = opts.get_string("graph", "");
  const std::string suite = opts.get_string("suite", mtx.empty() ? "Hamrle3" : "");
  const auto denom = static_cast<std::uint32_t>(opts.get_int("denom", 128));
  const std::string schemes_csv = opts.get_string("schemes", "all");
  const std::string devices_csv = opts.get_string("devices", "1");
  const auto block = static_cast<std::uint32_t>(opts.get_int("block", 128));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const auto threads = static_cast<std::uint32_t>(opts.get_int("threads", 0));
  const bool sanitize = opts.get_bool("sanitize", false);
  const std::string json_mode = opts.get_string("json", "off");
  const std::string graph_cache =
      graph::resolve_graph_cache_dir(opts.get_string("graph-cache", ""));
  opts.validate({"graph", "suite", "denom", "schemes", "devices", "block",
                 "seed", "threads", "sanitize", "json", "graph-cache"});
  SPECKLE_CHECK(seed != 0, "--seed=0 is reserved; pass a nonzero seed");
  SPECKLE_CHECK(json_mode == "off" || json_mode == "full" ||
                    json_mode == "findings",
                "--json takes off, full or findings");

  graph::CsrGraph g;
  if (!mtx.empty()) {
    try {
      g = graph::read_matrix_market(mtx);
    } catch (const graph::MatrixMarketError& e) {
      std::cerr << "speckle_lint: " << e.what() << "\n";
      return 1;
    }
  } else {
    g = graph::make_suite_graph_cached(suite, denom, seed, graph_cache);
  }

  // Resolve the scheme list: "all" = every GPU scheme in the registry plus
  // the distance-2 extension; otherwise the named schemes (which may
  // include "topo-d2").
  const bool all = schemes_csv == "all";
  std::vector<std::string> scheme_names;
  bool run_d2 = false;
  if (all) {
    for (coloring::Scheme s : coloring::all_schemes()) {
      if (coloring::scheme_uses_gpu(s)) {
        scheme_names.emplace_back(coloring::scheme_name(s));
      }
    }
    run_d2 = true;
  } else {
    for (const std::string& name : split_csv(schemes_csv)) {
      if (name == "topo-d2") {
        run_d2 = true;
        continue;
      }
      const coloring::Scheme s = coloring::scheme_from_name(name);
      SPECKLE_CHECK(coloring::scheme_uses_gpu(s),
                    name + " is a CPU scheme: no launch plan to lint");
      scheme_names.push_back(name);
    }
  }
  std::vector<std::uint32_t> device_counts;
  for (const std::string& d : split_csv(devices_csv)) {
    device_counts.push_back(static_cast<std::uint32_t>(std::stoul(d)));
  }
  SPECKLE_CHECK(!device_counts.empty(), "--devices must name at least one count");

  std::vector<LintRun> runs;
  for (const std::uint32_t devices : device_counts) {
    SPECKLE_CHECK(devices >= 1, "--devices entries must be >= 1");
    for (const std::string& name : scheme_names) {
      const coloring::Scheme s = coloring::scheme_from_name(name);
      if (devices > 1 && !scheme_supports_multidev(s)) continue;
      coloring::RunOptions run;
      run.block_size = block;
      run.seed = seed;
      run.num_devices = devices;
      run.device.host_threads = threads;
      run.device.check = true;
      run.device.sanitize = sanitize;
      const coloring::RunResult r = coloring::run_scheme(s, g, run);
      runs.push_back(LintRun{name, devices, r.check, r.san});
    }
    if (run_d2 && devices == 1) {
      coloring::GpuOptions gpu;
      gpu.block_size = block;
      gpu.device.host_threads = threads;
      gpu.device.check = true;
      gpu.device.sanitize = sanitize;
      const coloring::GpuResult r = coloring::topo_color_d2(g, gpu);
      runs.push_back(LintRun{"topo-d2", 1, r.check, r.san});
    }
  }

  bool dirty = false;
  for (const LintRun& run : runs) {
    if (!run.check.clean() || !run.san.clean()) dirty = true;
  }

  if (json_mode == "findings") {
    std::cout << findings_json(runs);
  } else if (json_mode == "full") {
    std::cout << "{\"runs\": [";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (i != 0) std::cout << ",";
      std::cout << "\n{\"scheme\": \"" << runs[i].label << "\", \"devices\": "
                << runs[i].devices << ", \"report\": " << runs[i].check.to_json()
                << "}";
    }
    std::cout << "\n]}\n";
  } else {
    for (const LintRun& run : runs) {
      std::cout << "== " << run.label << " devices=" << run.devices << " ==\n"
                << run.check.format_plan() << run.check.format();
      if (sanitize) std::cout << run.san.format();
    }
    std::cout << (dirty ? "speckle_lint: FAIL" : "speckle_lint: clean") << " ("
              << runs.size() << " runs)\n";
  }
  return dirty ? 2 : 0;
}
