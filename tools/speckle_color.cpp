/// \file speckle_color.cpp
/// Command-line graph coloring driver: load or generate a graph, color it
/// with any scheme in the registry, verify, and optionally write the
/// color assignment and a summary.
///
/// Usage:
///   speckle_color --graph=matrix.mtx [--scheme=D-ldg] [--block=128]
///                 [--out=colors.txt] [--balance] [--refine] [--distance2]
///                 [--device-report] [--sanitize] [--check] [--seed=1] [--threads=N]
///                 [--devices=P] [--partitioner=contiguous|hash|bfs]
///                 [--graph-cache=DIR]
///
/// --devices=P shards the graph over P simulated GPUs (speckle::multidev;
/// data-driven schemes only) and prints a per-device breakdown (boundary
/// sizes, exchange busy/stall/hidden cycles) plus the per-round coalesced
/// exchange batches; the partitioner defaults to contiguous.
///
/// --graph-cache=DIR caches generated --suite graphs on disk keyed by
/// (name, denom, seed) with a format-version guard (src/graph/cache.hpp);
/// the SPECKLE_GRAPH_CACHE environment variable enables it too.
///
/// --threads=N sets the host threads of the simulator's wave executor
/// (0 = one per hardware thread, the default). Colors and simulated times
/// are bit-identical for every value; only host wall-clock changes.
///   speckle_color --suite=rmat-er --denom=8 ...
///
/// --sanitize runs the scheme under the speckle::san instrumentation layer
/// (out-of-bounds, uninitialized reads, undeclared cross-block races, __ldg
/// coherence, worklist misuse — see docs/simulator.md) and prints the
/// findings; the exit code is 2 when any finding fired.
///
/// --check records every kernel launch into a speckle::check LaunchPlan and
/// runs the static dataflow checker over it (hazards, __ldg of writable
/// buffers, worklist aliasing, capacity overflow, in-flight exchange
/// trespass — see docs/simulator.md §13). Findings print after a
/// "--- check ---" marker; combined with --sanitize the sanitizer also
/// flags any dynamic access outside the declared specs. The exit code is
/// 2 when the checker (or the sanitizer) reports anything.
///
/// --profile runs the scheme under the speckle::prof profiling layer and
/// prints per-kernel hardware-counter-style metrics (cache hit rates, DRAM
/// transactions, coalescing efficiency, per-buffer atomics, divergence,
/// stalls) after a "--- profile ---" marker; the section contains only
/// simulated quantities and is byte-identical at every --threads value.
/// --profile=json / =trace / =both additionally write machine-readable
/// exports next to --profile-out (default "profile"): <prefix>.json
/// (BENCH_*.json-style record) and <prefix>.trace.json (Chrome-trace /
/// Perfetto timeline).
///
/// Output file format: one line per vertex, "<vertex> <color>", colors
/// 1-based; header lines start with '%'.

#include <fstream>
#include <iostream>

#include "coloring/balance.hpp"
#include "coloring/distance2.hpp"
#include "coloring/refine.hpp"
#include "coloring/runner.hpp"
#include "graph/analysis.hpp"
#include "graph/cache.hpp"
#include "graph/matrix_market.hpp"
#include "graph/suite.hpp"
#include "support/check.hpp"
#include "support/options.hpp"
#include "simt/metrics.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  support::Options opts(argc, argv);
  const std::string mtx = opts.get_string("graph", "");
  const std::string suite = opts.get_string("suite", "");
  const auto denom = static_cast<std::uint32_t>(opts.get_int("denom", 8));
  const std::string scheme_name = opts.get_string("scheme", "D-ldg");
  const auto block = static_cast<std::uint32_t>(opts.get_int("block", 128));
  const std::string out_path = opts.get_string("out", "");
  const bool balance = opts.get_bool("balance", false);
  const bool refine = opts.get_bool("refine", false);
  const bool distance2 = opts.get_bool("distance2", false);
  const bool device_report = opts.get_bool("device-report", false);
  const bool sanitize = opts.get_bool("sanitize", false);
  const bool check = opts.get_bool("check", false);
  // Bare --profile stores "true": text report only. =json/=trace/=both also
  // write the machine-readable exports.
  const std::string profile_mode = opts.get_string("profile", "off");
  const std::string profile_out = opts.get_string("profile-out", "profile");
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const auto threads = static_cast<std::uint32_t>(opts.get_int("threads", 0));
  const auto devices = static_cast<std::uint32_t>(opts.get_int("devices", 1));
  const std::string partitioner = opts.get_string("partitioner", "contiguous");
  // Opt-in on-disk CSR cache for --suite graphs (also enabled by the
  // SPECKLE_GRAPH_CACHE environment variable; the flag wins).
  const std::string graph_cache =
      graph::resolve_graph_cache_dir(opts.get_string("graph-cache", ""));
  opts.validate({"graph", "suite", "denom", "scheme", "block", "out", "balance",
                 "refine", "distance2", "device-report", "sanitize", "check", "profile",
                 "profile-out", "seed", "threads", "devices", "partitioner",
                 "graph-cache"});
  SPECKLE_CHECK(seed != 0,
                "--seed=0 is reserved (it collapses the repo's derived-seed "
                "products); pass a nonzero seed");
  SPECKLE_CHECK(devices >= 1, "--devices needs at least 1");
  SPECKLE_CHECK(profile_mode == "off" || profile_mode == "true" ||
                    profile_mode == "json" || profile_mode == "trace" ||
                    profile_mode == "both",
                "--profile takes json, trace or both (bare --profile prints "
                "the text report only)");
  const bool profiling = profile_mode != "off";
  SPECKLE_CHECK(mtx.empty() != suite.empty(),
                "pass exactly one of --graph=<path.mtx> or --suite=<name>");

  graph::CsrGraph g;
  if (!mtx.empty()) {
    try {
      g = graph::read_matrix_market(mtx);
    } catch (const graph::MatrixMarketError& e) {
      std::cerr << "speckle_color: " << e.what() << "\n";
      return 1;
    }
  } else {
    g = graph::make_suite_graph_cached(suite, denom, seed, graph_cache);
  }
  const graph::DegreeReport deg = graph::analyze_degrees(g);
  std::cout << "graph: " << (mtx.empty() ? suite : mtx) << "  n=" << deg.num_vertices
            << " m=" << deg.num_edges << " deg[" << deg.min_degree << ","
            << deg.max_degree << "] avg=" << deg.avg_degree << "\n";

  coloring::Coloring coloring;
  coloring::color_t num_colors = 0;
  san::Report san;
  prof::Report prof;
  check::Report chk;
  simt::DeviceConfig dev_cfg = simt::DeviceConfig::k20c();
  if (distance2) {
    SPECKLE_CHECK(devices == 1, "--distance2 has no multi-device path");
    coloring::GpuOptions gpu;
    gpu.block_size = block;
    gpu.device.host_threads = threads;
    gpu.device.sanitize = sanitize;
    gpu.device.profile = profiling;
    gpu.device.check = check;
    dev_cfg = gpu.device;
    const auto r = coloring::topo_color_d2(g, gpu);
    SPECKLE_CHECK(coloring::verify_coloring_d2(g, r.coloring).proper,
                  "distance-2 coloring invalid");
    coloring = r.coloring;
    num_colors = r.num_colors;
    san = r.san;
    prof = r.prof;
    chk = r.check;
    std::cout << "distance-2 topo-gpu: " << num_colors << " colors in "
              << r.iterations << " iterations, " << r.model_ms << " ms simulated\n";
  } else {
    coloring::RunOptions run;
    run.block_size = block;
    run.seed = seed;
    run.num_devices = devices;
    run.partitioner = graph::partition_kind_from_name(partitioner);
    run.device.host_threads = threads;
    run.device.sanitize = sanitize;
    run.device.profile = profiling;
    run.device.check = check;
    dev_cfg = run.device;
    const auto scheme = coloring::scheme_from_name(scheme_name);
    const auto r = coloring::run_scheme(scheme, g, run);
    coloring = r.coloring;
    num_colors = r.num_colors;
    san = r.san;
    prof = r.prof;
    chk = r.check;
    std::cout << scheme_name << ": " << num_colors << " colors in " << r.iterations
              << " iterations, " << r.model_ms << " ms simulated, " << r.wall_ms
              << " ms host wall\n";
    if (devices > 1) {
      std::cout << "devices: " << devices << " (" << partitioner
                << " partition), cut=" << r.cut_edges
                << " directed edges, exchanged=" << r.exchanged_colors
                << " ghost colors, hidden=" << r.hidden_ms << " ms\n";
      for (const auto& d : r.devices) {
        std::cout << "  d" << d.device << ": owned=" << d.owned
                  << " boundary=" << d.boundary << " ghosts=" << d.ghosts
                  << " cut=" << d.cut_edges << " rounds=" << d.rounds
                  << " sent=" << d.sent_colors << " recv=" << d.recv_colors
                  << " d2d=" << d.report.d2d.bytes
                  << "B busy=" << d.exchange_busy_cycles
                  << "cyc stall=" << d.exchange_stall_cycles
                  << "cyc hidden=" << d.exchange_hidden_cycles << "cyc\n";
      }
      for (const auto& er : r.exchange_rounds) {
        std::cout << "  round " << er.round << ": batches=" << er.batches
                  << " bytes=" << er.bytes << " cycles=" << er.cycles
                  << " hidden=" << er.hidden_cycles
                  << " stall=" << er.stall_cycles << "\n";
      }
    }
    if (device_report && !r.report.kernels.empty()) {
      std::cout << simt::format_kernel_table(r.report, run.device)
                << "stall breakdown:\n"
                << simt::format_stall_breakdown(r.report.aggregate_stalls());
    }
  }
  if (sanitize) std::cout << san.format();
  if (check) {
    // Marker mirrors the profile section: sed-extractable, simulated
    // quantities only, byte-identical at every --threads value.
    std::cout << "--- check ---\n" << chk.format();
  }
  if (profiling) {
    // The marker makes the section sed-extractable for golden diffing; the
    // section holds only simulated quantities (no wall clock), so it is
    // byte-identical at every --threads value.
    std::cout << "--- profile ---\n" << prof.format(dev_cfg);
    const std::string benchmark =
        "speckle_color --scheme=" + scheme_name + " " +
        (mtx.empty() ? "--suite=" + suite + " --denom=" + std::to_string(denom)
                     : "--graph=" + mtx);
    if (profile_mode == "json" || profile_mode == "both") {
      const std::string path = profile_out + ".json";
      std::ofstream json(path);
      SPECKLE_CHECK(json.good(), "cannot open '" + path + "'");
      json << prof.to_json(dev_cfg, benchmark);
      std::cout << "wrote " << path << "\n";
    }
    if (profile_mode == "trace" || profile_mode == "both") {
      const std::string path = profile_out + ".trace.json";
      std::ofstream trace(path);
      SPECKLE_CHECK(trace.good(), "cannot open '" + path + "'");
      trace << prof.to_chrome_trace(dev_cfg);
      std::cout << "wrote " << path << "\n";
    }
  }

  if (refine && !distance2) {
    const auto r = coloring::iterated_greedy(g, coloring);
    std::cout << "refine: " << r.colors_before << " -> " << r.colors_after
              << " colors in " << r.rounds_run << " rounds\n";
    coloring = r.coloring;
    num_colors = r.colors_after;
  }

  if (balance && !distance2) {
    const auto b = coloring::balance_colors(g, coloring);
    std::cout << "balance: " << b.balance_before << " -> " << b.balance_after
              << " (" << b.moves << " moves)\n";
    coloring = b.coloring;
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    SPECKLE_CHECK(out.good(), "cannot open --out file '" + out_path + "'");
    out << "% speckle coloring: " << num_colors << " colors, "
        << g.num_vertices() << " vertices\n";
    for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
      out << v << ' ' << coloring[v] << '\n';
    }
    std::cout << "wrote " << out_path << "\n";
  }
  const bool san_failed = sanitize && !san.clean();
  const bool check_failed = check && !chk.clean();
  if (san_failed || check_failed) {
    std::cout << "FAIL: " << (san_failed ? san.findings.size() : 0)
              << " sanitizer + " << (check_failed ? chk.findings.size() : 0)
              << " checker finding(s) on " << scheme_name << "\n";
    return 2;
  }
  return 0;
}
