#!/usr/bin/env python3
"""A/B benchmark harness emitting the repo's BENCH_*.json schema.

Runs a bench command (typically one of the bench_* binaries) against a
baseline build of the same bench and writes a JSON record in the shape of
BENCH_executor.json / BENCH_hotpath.json: benchmark, machine, before/after
numbers, free-form notes.

The two commands are run in interleaved pairs (baseline, candidate,
baseline, candidate, ...) so slow drift of a shared/noisy host hits both
sides equally; per-run user CPU time is recorded alongside wall time
because on oversubscribed CI hosts user time is the steadier signal. The
minimum across repeats is reported as the headline number (least
contaminated by other tenants), with all samples kept in the record.

Examples:
  # A/B two builds of the same bench:
  tools/bench_compare.py \
      --baseline .oldtree/build/bench/bench_fig7 \
      --bench build/bench/bench_fig7 \
      --args "--denom=8 --threads=1 --csv" \
      --label-before "main @ 0656f99" --label-after "hot-path overhaul" \
      --repeats 3 --out BENCH_hotpath.json

  # Re-use the 'before' numbers from a saved record:
  tools/bench_compare.py --against BENCH_hotpath.json \
      --bench build/bench/bench_fig7 --args "--denom=8 --threads=1" \
      --label-after "tuned merge" --out BENCH_hotpath2.json
"""

import argparse
import json
import os
import platform
import resource
import shlex
import subprocess
import sys
import time


def run_once(cmd):
    """Run cmd; return (wall_s, user_s) for the child.

    Output is captured, not displayed — but kept, so a failing bench dies
    loudly with its stderr instead of a bare exit code (a silent sys.exit
    here once cost a debugging session to a missing graph file).
    """
    before = resource.getrusage(resource.RUSAGE_CHILDREN)
    t0 = time.monotonic()
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    except OSError as e:
        sys.exit(f"bench_compare: cannot run {' '.join(cmd)}: {e}")
    wall = time.monotonic() - t0
    after = resource.getrusage(resource.RUSAGE_CHILDREN)
    if proc.returncode != 0:
        tail = "\n".join((proc.stderr or proc.stdout or "").splitlines()[-20:])
        sys.exit(
            f"bench_compare: {' '.join(cmd)} exited {proc.returncode}"
            + (f"; last output:\n{tail}" if tail else " with no output")
        )
    if not (proc.stdout or "").strip():
        sys.exit(
            f"bench_compare: {' '.join(cmd)} exited 0 but printed nothing — "
            "refusing to time a bench that did no work"
        )
    return round(wall, 3), round(after.ru_utime - before.ru_utime, 3)


def measure(label, samples):
    if not samples:
        sys.exit("bench_compare: no samples collected (is --repeats >= 1?)")
    walls = [s[0] for s in samples]
    users = [s[1] for s in samples]
    return {
        "commit": label,
        "wall_s": min(walls),
        "user_s": min(users),
        "wall_samples_s": walls,
        "user_samples_s": users,
    }


def machine_summary():
    cores = os.cpu_count() or 1
    cc = ""
    try:
        out = subprocess.run(
            ["c++", "--version"], capture_output=True, text=True, check=False
        ).stdout
        cc = out.splitlines()[0] if out else ""
    except OSError:
        pass
    return f"{platform.system()} {platform.machine()}, {cores} core(s), {cc}".strip(", ")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", required=True, help="candidate bench binary")
    ap.add_argument("--baseline", help="baseline bench binary (before)")
    ap.add_argument("--against", help="saved BENCH_*.json to take 'before' from")
    ap.add_argument("--args", default="", help="arguments passed to both binaries")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--label-before", default="baseline")
    ap.add_argument("--label-after", default="candidate")
    ap.add_argument("--note", action="append", default=[], help="repeatable")
    ap.add_argument("--out", help="output JSON path (default: stdout)")
    ap.add_argument(
        "--graph-cache",
        metavar="DIR",
        help="export SPECKLE_GRAPH_CACHE=DIR to both sides and prime it with "
        "one untimed candidate run, so graph generation (a fixed ~10s floor "
        "identical in both builds) drops out of every timed sample",
    )
    opts = ap.parse_args()
    if bool(opts.baseline) == bool(opts.against):
        ap.error("exactly one of --baseline / --against is required")

    if opts.graph_cache:
        os.makedirs(opts.graph_cache, exist_ok=True)
        os.environ["SPECKLE_GRAPH_CACHE"] = opts.graph_cache

    bench_args = shlex.split(opts.args)
    after_cmd = [opts.bench] + bench_args
    before_cmd = [opts.baseline] + bench_args if opts.baseline else None

    if opts.graph_cache:
        print("priming graph cache (untimed candidate run)...", file=sys.stderr)
        run_once(after_cmd)

    before_samples, after_samples = [], []
    for i in range(opts.repeats):
        if before_cmd:
            before_samples.append(run_once(before_cmd))
            print(f"pair {i + 1}/{opts.repeats} before: "
                  f"wall {before_samples[-1][0]}s user {before_samples[-1][1]}s",
                  file=sys.stderr)
        after_samples.append(run_once(after_cmd))
        print(f"pair {i + 1}/{opts.repeats} after:  "
              f"wall {after_samples[-1][0]}s user {after_samples[-1][1]}s",
              file=sys.stderr)

    if opts.against:
        with open(opts.against) as f:
            before = json.load(f)["before"]
    else:
        before = measure(opts.label_before, before_samples)

    record = {
        "benchmark": f"{os.path.basename(opts.bench)} {opts.args}".strip(),
        "machine": machine_summary(),
        "before": before,
        "after": measure(opts.label_after, after_samples),
        "notes": opts.note,
    }
    if isinstance(before.get("wall_s"), (int, float)) and record["after"]["wall_s"]:
        record["speedup_wall"] = round(before["wall_s"] / record["after"]["wall_s"], 2)
        if isinstance(before.get("user_s"), (int, float)):
            record["speedup_user"] = round(
                before["user_s"] / record["after"]["user_s"], 2
            )

    text = json.dumps(record, indent=2) + "\n"
    if opts.out:
        with open(opts.out, "w") as f:
            f.write(text)
        print(f"wrote {opts.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)


if __name__ == "__main__":
    main()
