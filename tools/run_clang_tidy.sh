#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over the first-party
# sources in src/ and tools/, using the compilation database a CMake
# configure exports (CMAKE_EXPORT_COMPILE_COMMANDS is on by default).
#
# Usage:
#   tools/run_clang_tidy.sh [--strict] [build-dir] [-- extra clang-tidy args]
#
#   --strict    fail (exit 3) when clang-tidy is not installed — the CI
#               lint job uses this so the gate cannot silently no-op
#   build-dir   directory containing compile_commands.json (default: build)
#
# Without --strict, exits 0 with a notice when clang-tidy is not installed,
# so the script can sit in pre-commit hooks without making clang a hard
# dependency of the build image; exits 2 when the compilation database is
# missing, 1 when any file produced diagnostics.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
strict=0
if [ "${1:-}" = "--strict" ]; then
  strict=1
  shift
fi
build_dir="${1:-build}"
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac
shift $(( $# > 0 ? 1 : 0 )) || true
if [ "${1:-}" = "--" ]; then shift; fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  if [ "$strict" = 1 ]; then
    echo "run_clang_tidy: '$tidy' not found and --strict was given." >&2
    echo "run_clang_tidy: install clang-tidy or set CLANG_TIDY." >&2
    exit 3
  fi
  echo "run_clang_tidy: '$tidy' not found; skipping static analysis." >&2
  echo "run_clang_tidy: install clang-tidy or set CLANG_TIDY to enable." >&2
  exit 0
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
  echo "run_clang_tidy: no compilation database at $db" >&2
  echo "run_clang_tidy: configure first: cmake -B '$build_dir' -S '$repo_root'" >&2
  exit 2
fi

# First-party translation units only — tests and benches inherit their
# hygiene from the library checks via the headers.
mapfile -t files < <(cd "$repo_root" && find src tools -name '*.cpp' | sort)

echo "run_clang_tidy: $(${tidy} --version | head -n1)"
echo "run_clang_tidy: checking ${#files[@]} files against $db"
status=0
for f in "${files[@]}"; do
  "$tidy" -p "$build_dir" --quiet "$@" "$repo_root/$f" || status=1
done
exit $status
