// speckle_serve: the long-lived coloring server.
//
// Accepts length-prefixed binary requests (docs/serve.md) over one of three
// transports and keeps graphs + colorings resident across requests:
//
//   speckle_serve --stdio                      # serve stdin/stdout (default)
//   speckle_serve --unix=/tmp/speckle.sock     # unix-domain listener
//   speckle_serve --port=7461                  # TCP listener on 127.0.0.1
//
// SIGINT/SIGTERM drain in-flight requests and exit 0. --timeout-ms fails
// individual requests that exceed the deadline; the server survives.

#include <cstdio>
#include <string>

#include "graph/cache.hpp"
#include "serve/server.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  speckle::support::Options opts(argc, argv);
  const bool stdio = opts.get_bool("stdio", false);
  const std::string unix_path = opts.get_string("unix", "");
  const std::int64_t port = opts.get_int("port", 0);

  speckle::serve::ServerOptions server_opts;
  server_opts.session.block_size =
      static_cast<std::uint32_t>(opts.get_int("block-size", 128));
  server_opts.session.host_threads =
      static_cast<std::uint32_t>(opts.get_int("threads", 1));
  server_opts.session.refine_rounds =
      static_cast<std::uint32_t>(opts.get_int("refine-rounds", 0));
  server_opts.session.full_threshold = opts.get_double("full-threshold", 0.10);
  server_opts.session.graph_cache = speckle::graph::resolve_graph_cache_dir(
      opts.get_string("graph-cache", ""));
  server_opts.timeout_ms =
      static_cast<std::uint32_t>(opts.get_int("timeout-ms", 0));
  server_opts.accept_threads =
      static_cast<std::uint32_t>(opts.get_int("pool", 4));
  server_opts.test_delay_ms =
      static_cast<std::uint32_t>(opts.get_int("test-delay-ms", 0));
  opts.validate({"stdio", "unix", "port", "block-size", "threads",
                 "refine-rounds", "full-threshold", "graph-cache",
                 "timeout-ms", "pool", "test-delay-ms"});

  if ((stdio ? 1 : 0) + (unix_path.empty() ? 0 : 1) + (port != 0 ? 1 : 0) >
      1) {
    std::fprintf(stderr,
                 "speckle_serve: pick one of --stdio, --unix, --port\n");
    return 2;
  }

  speckle::serve::Server server(server_opts);
  const int wake_fd = speckle::serve::install_shutdown_signals(server);
  if (!unix_path.empty()) {
    return speckle::serve::run_unix(server, unix_path, wake_fd);
  }
  if (port != 0) {
    return speckle::serve::run_tcp(server, static_cast<std::uint16_t>(port),
                                   wake_fd);
  }
  return speckle::serve::run_stdio(server, wake_fd);
}
