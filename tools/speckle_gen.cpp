/// \file speckle_gen.cpp
/// Graph generator CLI: materialize any suite graph or raw generator as a
/// Matrix Market file (so external tools — or this library on another
/// machine — can consume identical inputs).
///
/// Usage:
///   speckle_gen --suite=rmat-g --denom=8 --out=rmat-g.mtx
///   speckle_gen --spec=ba:n=1m,attach=4 --threads=4 --out=ba.mtx
///   speckle_gen --gen=rmat --scale=18 --edges=2000000 --a=0.45 --b=0.15
///               --c=0.15 --d=0.25 --out=my.mtx
///   speckle_gen --gen=stencil3d --nx=64 --ny=64 --nz=64 --out=grid.mtx
///   speckle_gen --gen=geometric --n=10000 --radius=0.02 --out=disk.mtx
///
/// --spec takes a GeneratorSpec string (graph/genspec.hpp) and runs the
/// sharded parallel pipeline, honoring --threads=N (0 = one per hardware
/// thread); the output is bit-identical at every thread count. The legacy
/// --suite / --gen paths replay the historical single-stream generators,
/// where --threads is accepted only for command-line symmetry with
/// speckle_color and has no effect.

#include <algorithm>
#include <iostream>
#include <thread>

#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/genspec.hpp"
#include "graph/matrix_market.hpp"
#include "graph/suite.hpp"
#include "support/check.hpp"
#include "support/options.hpp"
#include "support/threadpool.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  using graph::vid_t;
  support::Options opts(argc, argv);
  const std::string suite = opts.get_string("suite", "");
  const std::string gen = opts.get_string("gen", "");
  const std::string spec_text = opts.get_string("spec", "");
  const std::string out = opts.get_string("out", "");
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const auto threads = static_cast<unsigned>(opts.get_int("threads", 0));
  SPECKLE_CHECK(seed != 0,
                "--seed=0 is reserved (the suite derives sub-seeds as "
                "seed+k / seed*k products, which seed 0 collapses); pass a "
                "nonzero seed");
  SPECKLE_CHECK(!out.empty(), "--out=<path.mtx> is required");
  SPECKLE_CHECK((suite.empty() ? 0 : 1) + (gen.empty() ? 0 : 1) +
                        (spec_text.empty() ? 0 : 1) ==
                    1,
                "pass exactly one of --suite=<name>, --gen=<kind>, or "
                "--spec=<model:key=value,...>");

  graph::CsrGraph g;
  if (!spec_text.empty()) {
    opts.validate({"spec", "out", "seed", "threads"});
    // parse_generator_spec rejects seed 0 (explicit or inherited) loudly.
    const graph::GeneratorSpec spec =
        graph::parse_generator_spec(spec_text, seed);
    support::ThreadPool pool(
        threads != 0 ? threads
                     : std::max(1u, std::thread::hardware_concurrency()));
    g = graph::generate_graph(spec, pool);
  } else if (!suite.empty()) {
    const auto denom = static_cast<std::uint32_t>(opts.get_int("denom", 8));
    opts.validate({"suite", "denom", "out", "seed", "threads"});
    g = graph::make_suite_graph(suite, denom, seed);
  } else if (gen == "rmat") {
    const auto scale = static_cast<std::uint32_t>(opts.get_int("scale", 16));
    const auto edges = static_cast<std::uint64_t>(
        opts.get_int("edges", static_cast<std::int64_t>(8) << scale));
    graph::RmatParams params;
    params.a = opts.get_double("a", 0.25);
    params.b = opts.get_double("b", 0.25);
    params.c = opts.get_double("c", 0.25);
    params.d = opts.get_double("d", 0.25);
    opts.validate({"gen", "scale", "edges", "a", "b", "c", "d", "out", "seed", "threads"});
    g = graph::build_csr(1u << scale, graph::rmat(scale, edges, params, seed));
  } else if (gen == "stencil2d") {
    const auto nx = static_cast<vid_t>(opts.get_int("nx", 512));
    const auto ny = static_cast<vid_t>(opts.get_int("ny", 512));
    opts.validate({"gen", "nx", "ny", "out", "seed", "threads"});
    g = graph::build_csr(nx * ny, graph::stencil2d(nx, ny));
  } else if (gen == "stencil3d") {
    const auto nx = static_cast<vid_t>(opts.get_int("nx", 64));
    const auto ny = static_cast<vid_t>(opts.get_int("ny", 64));
    const auto nz = static_cast<vid_t>(opts.get_int("nz", 64));
    opts.validate({"gen", "nx", "ny", "nz", "out", "seed", "threads"});
    g = graph::build_csr(nx * ny * nz, graph::stencil3d(nx, ny, nz));
  } else if (gen == "geometric") {
    const auto n = static_cast<vid_t>(opts.get_int("n", 10000));
    const double radius = opts.get_double("radius", 0.02);
    opts.validate({"gen", "n", "radius", "out", "seed", "threads"});
    g = graph::build_csr(n, graph::geometric(n, radius, seed));
  } else if (gen == "erdos-renyi") {
    const auto n = static_cast<vid_t>(opts.get_int("n", 100000));
    const auto edges = static_cast<std::uint64_t>(opts.get_int("edges", 10 * n));
    opts.validate({"gen", "n", "edges", "out", "seed", "threads"});
    g = graph::build_csr(n, graph::erdos_renyi(n, edges, seed));
  } else {
    SPECKLE_CHECK(false, "unknown --gen '" + gen +
                             "' (rmat, stencil2d, stencil3d, geometric, "
                             "erdos-renyi)");
  }

  const graph::DegreeReport deg = graph::analyze_degrees(g);
  std::cout << "generated: n=" << deg.num_vertices << " m=" << deg.num_edges
            << " deg[" << deg.min_degree << "," << deg.max_degree
            << "] avg=" << deg.avg_degree << " var=" << deg.degree_variance << "\n";
  graph::write_matrix_market(g, out);
  std::cout << "wrote " << out << "\n";
  return 0;
}
