/// \file bench_ext_distance2.cpp
/// Extension experiment: distance-2 coloring (Çatalyürek et al., the
/// paper's reference [10], Section 5) — the speculative GPU scheme versus
/// the sequential D2 greedy, on the suite. D2 work grows with sum of
/// squared degrees, so this bench defaults to a smaller scale
/// (--denom=32) than the distance-1 figures.

#include <iostream>

#include "bench_common.hpp"
#include "coloring/distance2.hpp"
#include "support/options.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  support::Options raw(argc, argv);
  bench::BenchContext ctx = bench::parse_context(argc, argv);
  if (!raw.has("denom")) ctx.denom = 32;
  bench::print_banner("Extension: distance-2 coloring (speculative GPU vs seq)",
                      ctx);

  support::Table table({"graph", "seq-d2 colors", "gpu-d2 colors", "iterations",
                        "gpu-d2 ms", "seq-d2 wall ms"});
  const coloring::RunOptions run = ctx.run_options();
  for (const std::string& name : ctx.graphs) {
    const graph::CsrGraph& g = bench::get_graph(ctx, name);
    const auto seq = coloring::seq_greedy_d2(g);
    coloring::GpuOptions gpu;
    gpu.block_size = ctx.block;
    gpu.device = run.device;
    const auto dev = coloring::topo_color_d2(g, gpu);
    SPECKLE_CHECK(coloring::verify_coloring_d2(g, dev.coloring).proper,
                  "gpu d2 coloring invalid");
    SPECKLE_CHECK(coloring::verify_coloring_d2(g, seq.coloring).proper,
                  "seq d2 coloring invalid");
    table.row()
        .cell(name)
        .cell_u64(seq.num_colors)
        .cell_u64(dev.num_colors)
        .cell_u64(dev.iterations)
        .cell_f(dev.model_ms)
        .cell_f(seq.wall_ms);
  }
  bench::emit(table, ctx);
  std::cout << "expected shape: speculative D2 color counts close to the\n"
               "sequential D2 greedy; iteration counts a small constant.\n";
  return 0;
}
