/// \file bench_huge.cpp
/// The 10^8-edge workload tier: sweep the GeneratorSpec family at a scale
/// two orders of magnitude past Table I and run the data-driven schemes on
/// every family, under an explicit memory budget.
///
/// Per family the bench synthesizes a spec hitting ~--edges directed CSR
/// entries, generates it through the sharded parallel pipeline
/// (generate_graph_cached: KaGen-style chunked generators into the
/// streaming counting-sort CSR builder — bit-identical at any --threads),
/// then runs each scheme at each fleet size P and reports color quality
/// and the simulated makespan.
///
/// Memory discipline: --mem-budget-mb is a hard cap, enforced twice. A
/// pre-flight check compares the spec's estimated generation + run
/// footprint against the budget and aborts BEFORE allocating (fail loudly,
/// never swap); after the sweep the process's actual high-water mark
/// (VmHWM) is checked against the same cap.
///
/// Flags (deliberately not bench_common's parse_context: --denom cache
/// scaling does not apply — this tier runs the full-scale machine model):
///   --families=ba,rgg2d,grid2d,grid3d,kron   graph families to sweep
///   --edges=100000000   target directed CSR entries per family
///   --schemes=D-base,D-ldg,D-atomic          data-driven schemes to run
///   --parts=1,4         fleet sizes P (multi-device sharding for P > 1)
///   --partitioner=contiguous|hash|bfs        vertex partitioner for P > 1
///   --block=128 --seed=1 --threads=0         as in bench_common
///   --mem-budget-mb=12288                    hard memory cap (MiB)
///   --graph-cache=DIR   on-disk CSR cache (SPECKLE_GRAPH_CACHE also works)
///   --json=PATH         write BENCH_huge.json-style records
///
/// Simulated quantities (colors, rounds, model_ms) are deterministic and
/// byte-identical at every --threads value; gen/run wall seconds and the
/// RSS high-water mark are host-side measurements.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "coloring/runner.hpp"
#include "graph/analysis.hpp"
#include "graph/cache.hpp"
#include "graph/genspec.hpp"
#include "graph/partition.hpp"
#include "support/check.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "support/threadpool.hpp"

namespace {

using namespace speckle;

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

/// Synthesize the spec string that lands a family near `edges` directed
/// CSR entries. The divisors are the per-family directed-entries-per-vertex
/// after symmetrization, dedup and boundary losses (validated by
/// graph_generator_props_test's degree-tracking bounds).
std::string family_spec(const std::string& family, std::uint64_t edges) {
  std::ostringstream out;
  if (family == "ba") {
    // attach=4 -> ~8 directed entries per vertex (2*attach, minus dups).
    out << "ba:n=" << edges / 8 << ",attach=4";
  } else if (family == "rgg2d") {
    out << "rgg2d:n=" << edges / 8 << ",deg=8";
  } else if (family == "grid2d") {
    // 5-point stencil (4/vertex) + 0.4 defects/vertex (~0.7 directed).
    const auto n = edges * 10 / 47;
    const auto side = static_cast<std::uint64_t>(
        std::llround(std::sqrt(static_cast<double>(n))));
    out << "grid2d:nx=" << side << ",ny=" << side << ",defects=0.4";
  } else if (family == "grid3d") {
    // 7-point stencil (6/vertex) + 0.5 defects/vertex (~0.9 directed).
    const auto n = edges * 10 / 69;
    const auto side = static_cast<std::uint64_t>(
        std::llround(std::cbrt(static_cast<double>(n))));
    out << "grid3d:nx=" << side << ",ny=" << side << ",nz=" << side
        << ",defects=0.5";
  } else if (family == "kron") {
    // deg=16 directed target; n must be a power of two.
    const double want = static_cast<double>(edges) / 16.0;
    const auto scale = static_cast<std::uint32_t>(
        std::max<std::int64_t>(1, std::llround(std::log2(want))));
    out << "kron:scale=" << scale << ",deg=16";
  } else {
    SPECKLE_CHECK(false, "unknown --families entry '" + family +
                             "' (ba, rgg2d, grid2d, grid3d, kron)");
  }
  return out.str();
}

/// The process's resident-set high-water mark, in MiB (0 if unreadable).
std::uint64_t peak_rss_mb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::uint64_t kb = 0;
      std::sscanf(line.c_str(), "VmHWM: %lu", &kb);
      return kb / 1024;
    }
  }
  return 0;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const auto wall_start = std::chrono::steady_clock::now();
  support::Options opts(argc, argv);
  const std::string families_arg =
      opts.get_string("families", "ba,rgg2d,grid2d,grid3d,kron");
  const auto edges = static_cast<std::uint64_t>(
      opts.get_int("edges", 100000000));
  const std::string schemes_arg =
      opts.get_string("schemes", "D-base,D-ldg,D-atomic");
  const std::string parts_arg = opts.get_string("parts", "1,4");
  const auto block = static_cast<std::uint32_t>(opts.get_int("block", 128));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const auto threads = static_cast<std::uint32_t>(opts.get_int("threads", 0));
  const graph::PartitionKind partitioner = graph::partition_kind_from_name(
      opts.get_string("partitioner", "contiguous"));
  const auto budget_mb = static_cast<std::uint64_t>(
      opts.get_int("mem-budget-mb", 12288));
  const std::string graph_cache = graph::resolve_graph_cache_dir(
      opts.get_string("graph-cache", ""));
  const std::string json_path = opts.get_string("json", "");
  opts.validate({"families", "edges", "schemes", "parts", "block", "seed",
                 "threads", "partitioner", "mem-budget-mb", "graph-cache",
                 "json"});
  SPECKLE_CHECK(seed != 0,
                "--seed=0 is reserved (benches derive sub-seeds as seed*k "
                "products); pass a nonzero seed");
  SPECKLE_CHECK(edges >= 1000, "--edges below 1000 is not a huge tier");
  SPECKLE_CHECK(budget_mb >= 64, "--mem-budget-mb must be at least 64");

  const std::vector<std::string> families = split_list(families_arg);
  SPECKLE_CHECK(!families.empty(), "--families needs at least one family");
  std::vector<coloring::Scheme> schemes;
  for (const std::string& s : split_list(schemes_arg)) {
    schemes.push_back(coloring::scheme_from_name(s));
  }
  SPECKLE_CHECK(!schemes.empty(), "--schemes needs at least one scheme");
  std::vector<std::uint32_t> parts;
  for (const std::string& p : split_list(parts_arg)) {
    const int v = std::stoi(p);
    SPECKLE_CHECK(v >= 1, "--parts entries must be >= 1");
    parts.push_back(static_cast<std::uint32_t>(v));
  }
  SPECKLE_CHECK(!parts.empty(), "--parts needs at least one fleet size");

  const unsigned pool_threads =
      threads != 0 ? threads : std::max(1u, std::thread::hardware_concurrency());
  support::ThreadPool pool(pool_threads);

  std::cout << "=== bench_huge: " << edges
            << " directed-entry tier, mem budget " << budget_mb << " MiB ===\n"
            << "generation: sharded parallel pipeline, " << pool_threads
            << " thread(s) (bit-identical at any count)\n\n";

  support::Table table({"family", "n", "m", "avg deg", "gen s", "scheme", "P",
                        "colors", "vs P=1", "rounds", "model ms", "speedup"});
  std::ostringstream json_families;
  double total_gen_s = 0.0;
  bool first_family = true;
  for (const std::string& family : families) {
    const std::string spec_text = family_spec(family, edges);
    const graph::GeneratorSpec spec =
        graph::parse_generator_spec(spec_text, seed * 0x5eed);

    // Pre-flight budget check: generation high-water (shards + counting
    // sort) plus the finished CSR and per-device coloring state the run
    // will hold. Abort before allocating anything — never swap.
    const graph::SpecFootprint fp = graph::estimate_footprint(spec);
    const std::uint64_t csr_bytes =
        fp.directed_edges * sizeof(graph::vid_t) +
        (spec.num_vertices + 1) * sizeof(graph::eid_t);
    const std::uint64_t run_bytes = csr_bytes + spec.num_vertices * 48;
    const std::uint64_t required_mb =
        (std::max(fp.build_peak_bytes, run_bytes) + csr_bytes) / (1024 * 1024) +
        256;
    SPECKLE_CHECK(required_mb <= budget_mb,
                  "family '" + family + "' needs ~" +
                      std::to_string(required_mb) + " MiB, over the " +
                      std::to_string(budget_mb) +
                      " MiB budget — raise --mem-budget-mb or lower --edges");

    const auto gen_start = std::chrono::steady_clock::now();
    const graph::CsrGraph g =
        graph::generate_graph_cached(spec, pool, graph_cache);
    const double gen_s = seconds_since(gen_start);
    total_gen_s += gen_s;
    const graph::DegreeReport deg = graph::analyze_degrees(g);
    std::cout << family << ": " << spec_text << " -> n=" << deg.num_vertices
              << " m=" << deg.num_edges << " avg=" << deg.avg_degree
              << " max=" << deg.max_degree << " (" << gen_s << " s)\n";

    std::ostringstream json_runs;
    bool first_run = true;
    for (const coloring::Scheme scheme : schemes) {
      double base_ms = 0.0;
      coloring::color_t base_colors = 0;
      for (const std::uint32_t p : parts) {
        coloring::RunOptions run;
        run.block_size = block;
        run.seed = seed;
        run.num_devices = p;
        run.partitioner = partitioner;
        run.device.host_threads = threads;
        // run_scheme verifies the coloring internally and aborts on an
        // improper result, so every emitted row is a proper coloring.
        const auto run_start = std::chrono::steady_clock::now();
        const coloring::RunResult r = coloring::run_scheme(scheme, g, run);
        const double run_s = seconds_since(run_start);
        if (p == parts.front()) {
          base_ms = r.model_ms;
          base_colors = r.num_colors;
        }
        const double vs_base =
            base_colors > 0 ? static_cast<double>(r.num_colors) / base_colors
                            : 1.0;
        const double speedup = r.model_ms > 0.0 ? base_ms / r.model_ms : 1.0;
        table.row()
            .cell(family)
            .cell_u64(deg.num_vertices)
            .cell_u64(deg.num_edges)
            .cell_f(deg.avg_degree, 2)
            .cell_f(gen_s, 1)
            .cell(coloring::scheme_name(scheme))
            .cell_u64(p)
            .cell_u64(r.num_colors)
            .cell_ratio(vs_base, 3)
            .cell_u64(r.iterations)
            .cell_f(r.model_ms, 3)
            .cell_ratio(speedup, 2);
        if (!first_run) json_runs << ",";
        first_run = false;
        json_runs << "\n      {\"scheme\": \"" << coloring::scheme_name(scheme)
                  << "\", \"devices\": " << p
                  << ", \"colors\": " << r.num_colors
                  << ", \"colors_vs_p1\": " << vs_base
                  << ", \"rounds\": " << r.iterations
                  << ", \"model_ms\": " << r.model_ms
                  << ", \"speedup_vs_p1\": " << speedup
                  << ", \"run_wall_s\": " << run_s << ", \"proper\": true}";
      }
    }
    if (!first_family) json_families << ",";
    first_family = false;
    json_families << "\n    {\"family\": \"" << family << "\", \"spec\": \""
                  << spec_text << "\", \"key\": \""
                  << graph::canonical_spec_key(spec) << "\", \"n\": "
                  << deg.num_vertices << ", \"m\": " << deg.num_edges
                  << ", \"avg_degree\": " << deg.avg_degree
                  << ", \"max_degree\": " << deg.max_degree
                  << ", \"gen_wall_s\": " << gen_s << ", \"runs\": ["
                  << json_runs.str() << "\n    ]}";
  }

  const double total_s = seconds_since(wall_start);
  const std::uint64_t peak_mb = peak_rss_mb();
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\ngeneration " << total_gen_s << " s of " << total_s
            << " s total wall; peak RSS " << peak_mb << " MiB (budget "
            << budget_mb << " MiB)\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    SPECKLE_CHECK(out.good(), "cannot open --json file '" + json_path + "'");
    out << "{\n  \"benchmark\": \"bench_huge --edges=" << edges
        << " --families=" << families_arg << " --schemes=" << schemes_arg
        << " --parts=" << parts_arg << " --partitioner="
        << graph::partition_kind_name(partitioner) << "\",\n"
        << "  \"machine\": \"simulated NVIDIA K20c fleet (deterministic)\",\n"
        << "  \"mem_budget_mb\": " << budget_mb << ",\n"
        << "  \"peak_rss_mb\": " << peak_mb << ",\n"
        << "  \"gen_wall_s\": " << total_gen_s << ",\n"
        << "  \"total_wall_s\": " << total_s << ",\n"
        << "  \"notes\": [\n"
        << "    \"colors/rounds/model_ms are simulated quantities; "
           "byte-identical at every --threads value\",\n"
        << "    \"every run passed the internal proper-coloring check "
           "(run_scheme aborts otherwise)\"\n  ],\n"
        << "  \"families\": [" << json_families.str() << "\n  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  // The budget is a contract, not a suggestion: blowing it after the fact
  // still fails the bench (the pre-flight estimate was too optimistic).
  SPECKLE_CHECK(peak_mb <= budget_mb,
                "peak RSS " + std::to_string(peak_mb) +
                    " MiB exceeded --mem-budget-mb=" +
                    std::to_string(budget_mb));
  return 0;
}
