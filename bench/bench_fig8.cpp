/// \file bench_fig8.cpp
/// Reproduces **Fig 8** (thread-block size sweep): performance of the
/// proposed schemes with block sizes 32..1024 on each graph, normalized to
/// the 128-thread configuration (the paper's eventual default).
///
/// Paper's shape: 32-thread blocks can't hide memory latency (too few
/// resident warps); performance usually peaks at 128 or 256; 512+ loses
/// occupancy to register pressure ("resource oversaturation"); 128 gives
/// the best average.

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  using coloring::Scheme;
  const bench::BenchContext ctx =
      bench::parse_context(argc, argv, {"scheme"});
  support::Options raw(argc, argv);
  const Scheme scheme =
      coloring::scheme_from_name(raw.get_string("scheme", "D-base"));
  bench::print_banner(std::string("Fig 8: thread-block size sweep (") +
                          coloring::scheme_name(scheme) + ")",
                      ctx);

  const std::vector<std::uint32_t> blocks = {32, 64, 128, 256, 512, 1024};
  std::vector<std::string> headers = {"graph"};
  for (auto b : blocks) headers.push_back(std::to_string(b) + " (rel)");
  support::Table table(headers);

  std::map<std::uint32_t, std::vector<double>> rel_by_block;
  for (const std::string& name : ctx.graphs) {
    const graph::CsrGraph& g = bench::get_graph(ctx, name);
    std::map<std::uint32_t, double> ms;
    for (std::uint32_t b : blocks) {
      coloring::RunOptions opts = ctx.run_options();
      opts.block_size = b;
      ms[b] = run_scheme(scheme, g, opts).model_ms;
    }
    table.row().cell(name);
    for (std::uint32_t b : blocks) {
      const double rel = ms[128] / ms[b];  // >1: faster than the 128 default
      rel_by_block[b].push_back(rel);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.2fms (%.2f)", ms[b], rel);
      table.cell(buf);
    }
  }
  table.row().cell("geomean rel");
  for (std::uint32_t b : blocks) {
    table.cell_ratio(support::geomean(rel_by_block[b]));
  }
  bench::emit(table, ctx);
  std::cout << "relative column: performance vs the 128-thread default\n"
               "(>1.00 means that block size beats 128 on that graph).\n"
               "paper shape: 32 is the worst in most cases; peak at 128/256;\n"
               ">=512 declines; 128 best on average.\n";
  return 0;
}
