/// \file bench_ablation_ldg.cpp
/// Ablation for the **read-only data caching** optimization (Section III-C,
/// Fig 4): the topology- and data-driven schemes with and without routing
/// the CSR arrays through the per-SM read-only cache (__ldg). Reports the
/// RO-cache hit rates alongside the speedups — the mechanism behind the
/// paper's "certain degree of speedup for some benchmarks such as thermal2
/// and Hamrle3, although on average its impact is not very distinct".

#include <iostream>

#include "bench_common.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  using coloring::Scheme;
  const bench::BenchContext ctx = bench::parse_context(argc, argv);
  bench::print_banner("Ablation: __ldg read-only caching (Fig 4 mechanism)", ctx);

  support::Table table({"graph", "T-base ms", "T-ldg ms", "T ldg speedup",
                        "T ro-hit %", "D-base ms", "D-ldg ms", "D ldg speedup",
                        "D ro-hit %"});
  std::vector<double> t_speedups, d_speedups;
  const coloring::RunOptions opts = ctx.run_options();
  auto ro_hit_pct = [](const coloring::RunResult& r) {
    std::uint64_t hits = 0, misses = 0;
    for (const auto& k : r.report.kernels) {
      hits += k.ro_hits;
      misses += k.ro_misses;
    }
    return hits + misses ? 100.0 * hits / (hits + misses) : 0.0;
  };
  for (const std::string& name : ctx.graphs) {
    const graph::CsrGraph& g = bench::get_graph(ctx, name);
    const auto t_base = run_scheme(Scheme::kTopoBase, g, opts);
    const auto t_ldg = run_scheme(Scheme::kTopoLdg, g, opts);
    const auto d_base = run_scheme(Scheme::kDataBase, g, opts);
    const auto d_ldg = run_scheme(Scheme::kDataLdg, g, opts);
    t_speedups.push_back(t_base.model_ms / t_ldg.model_ms);
    d_speedups.push_back(d_base.model_ms / d_ldg.model_ms);
    table.row()
        .cell(name)
        .cell_f(t_base.model_ms)
        .cell_f(t_ldg.model_ms)
        .cell_ratio(t_speedups.back())
        .cell_f(ro_hit_pct(t_ldg), 1)
        .cell_f(d_base.model_ms)
        .cell_f(d_ldg.model_ms)
        .cell_ratio(d_speedups.back())
        .cell_f(ro_hit_pct(d_ldg), 1);
  }
  table.row()
      .cell("geomean")
      .cell("-")
      .cell("-")
      .cell_ratio(speckle::support::geomean(t_speedups))
      .cell("-")
      .cell("-")
      .cell("-")
      .cell_ratio(speckle::support::geomean(d_speedups))
      .cell("-");
  bench::emit(table, ctx);
  std::cout << "paper shape: modest wins on some graphs (thermal2, Hamrle3),\n"
               "roughly neutral on average; never a slowdown.\n";
  return 0;
}
