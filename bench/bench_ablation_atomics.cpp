/// \file bench_ablation_atomics.cpp
/// Ablation for the **atomic operation reduction** optimization
/// (Section III-C, Fig 5): the data-driven scheme with the block-wide
/// prefix-sum worklist push (one tail atomic per block) versus per-item
/// atomicAdd pushes. Reports cycles, atomic counts, and the resulting
/// speedup of the optimization.

#include <iostream>

#include "bench_common.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  using coloring::Scheme;
  const bench::BenchContext ctx = bench::parse_context(argc, argv);
  bench::print_banner(
      "Ablation: prefix-sum (scan) worklist push vs per-item atomics (Fig 5)", ctx);

  support::Table table({"graph", "scan ms", "atomic ms", "scan atomics",
                        "per-item atomics", "scan push speedup"});
  std::vector<double> speedups;
  const coloring::RunOptions opts = ctx.run_options();
  for (const std::string& name : ctx.graphs) {
    const graph::CsrGraph& g = bench::get_graph(ctx, name);
    const auto scan = run_scheme(Scheme::kDataBase, g, opts);
    const auto atomic = run_scheme(Scheme::kDataAtomic, g, opts);
    std::uint64_t scan_atomics = 0, item_atomics = 0;
    for (const auto& k : scan.report.kernels) scan_atomics += k.atomics;
    for (const auto& k : atomic.report.kernels) item_atomics += k.atomics;
    const double speedup = atomic.model_ms / scan.model_ms;
    speedups.push_back(speedup);
    table.row()
        .cell(name)
        .cell_f(scan.model_ms)
        .cell_f(atomic.model_ms)
        .cell_u64(scan_atomics)
        .cell_u64(item_atomics)
        .cell_ratio(speedup);
  }
  table.row().cell("geomean").cell("-").cell("-").cell("-").cell("-").cell_ratio(
      support::geomean(speedups));
  bench::emit(table, ctx);
  std::cout << "expected shape: the scan push performs one atomic per thread\n"
               "block instead of one per conflicted vertex; wins grow with the\n"
               "number of conflicts pushed per round.\n";
  return 0;
}
