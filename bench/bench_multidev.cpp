/// \file bench_multidev.cpp
/// Multi-device scaling of the data-driven SGR scheme (speckle::multidev):
/// for each Table I graph and each fleet size P (default 1,2,4), shard the
/// graph, run the lockstep speculate/exchange/resolve rounds, and report
/// color quality, round count, boundary traffic and the simulated fleet
/// makespan against the single-device baseline. P=1 is the plain
/// single-device scheme through the same runner front-end.
///
/// Extra flags beyond the shared set (bench_common.hpp):
///   --parts=1,2,4    comma-separated fleet sizes
///   --scheme=D-ldg   data-driven scheme to shard (D-base/D-ldg/D-atomic)
///   --json=PATH      also write the records as JSON (BENCH_multidev.json)
///
/// Everything printed (and written to --json) is simulated and
/// deterministic — byte-identical at every --threads value.

#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "graph/partition.hpp"
#include "support/check.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  support::Options flags(argc, argv);
  const std::string parts_arg = flags.get_string("parts", "1,2,4");
  const std::string scheme_arg = flags.get_string("scheme", "D-ldg");
  const std::string json_path = flags.get_string("json", "");
  const bench::BenchContext ctx =
      bench::parse_context(argc, argv, {"parts", "scheme", "json"});
  bench::print_banner("multi-device scaling: sharded " + scheme_arg, ctx);

  std::vector<std::uint32_t> parts;
  {
    std::stringstream ss(parts_arg);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      const int p = std::stoi(tok);
      SPECKLE_CHECK(p >= 1, "--parts entries must be >= 1");
      parts.push_back(static_cast<std::uint32_t>(p));
    }
    SPECKLE_CHECK(!parts.empty(), "--parts needs at least one fleet size");
  }
  const coloring::Scheme scheme = coloring::scheme_from_name(scheme_arg);

  support::Table table({"graph", "P", "partitioner", "colors", "vs P=1", "rounds",
                        "cut edges", "ghost colors", "d2d KB", "hidden ms",
                        "stall ms", "model ms", "speedup"});
  std::ostringstream json_runs;
  bool first_run = true;
  for (const std::string& name : ctx.graphs) {
    const graph::CsrGraph& g = bench::get_graph(ctx, name);
    double base_ms = 0.0;
    coloring::color_t base_colors = 0;
    for (const std::uint32_t p : parts) {
      coloring::RunOptions run = ctx.run_options();
      run.num_devices = p;
      const coloring::RunResult r = coloring::run_scheme(scheme, g, run);
      if (p == 1 || base_colors == 0) {
        base_ms = r.model_ms;
        base_colors = r.num_colors;
      }
      const double vs_base =
          base_colors > 0 ? static_cast<double>(r.num_colors) / base_colors : 1.0;
      const double speedup = r.model_ms > 0.0 ? base_ms / r.model_ms : 1.0;
      std::uint64_t stall_cycles = 0;
      std::uint64_t batches = 0;
      for (const prof::ExchangeRound& er : r.exchange_rounds) {
        stall_cycles += er.stall_cycles;
        batches += er.batches;
      }
      const double stall_ms = run.device.cycles_to_ms(stall_cycles);
      table.row()
          .cell(name)
          .cell_u64(p)
          .cell(p == 1 ? "-" : graph::partition_kind_name(ctx.partitioner))
          .cell_u64(r.num_colors)
          .cell_ratio(vs_base, 2)
          .cell_u64(r.iterations)
          .cell_u64(r.cut_edges)
          .cell_u64(r.exchanged_colors)
          .cell_f(static_cast<double>(r.report.d2d.bytes) / 1024.0, 1)
          .cell_f(r.hidden_ms, 4)
          .cell_f(stall_ms, 4)
          .cell_f(r.model_ms, 4)
          .cell_ratio(speedup, 2);
      if (!json_path.empty()) {
        if (!first_run) json_runs << ",";
        first_run = false;
        json_runs << "\n    {\"graph\": \"" << name << "\", \"devices\": " << p
                  << ", \"partitioner\": \""
                  << (p == 1 ? "-" : graph::partition_kind_name(ctx.partitioner))
                  << "\", \"colors\": " << r.num_colors
                  << ", \"colors_vs_p1\": " << vs_base
                  << ", \"rounds\": " << r.iterations
                  << ", \"cut_edges\": " << r.cut_edges
                  << ", \"exchanged_colors\": " << r.exchanged_colors
                  << ", \"d2d_bytes\": " << r.report.d2d.bytes
                  << ", \"exchange_batches\": " << batches
                  << ", \"hidden_ms\": " << r.hidden_ms
                  << ", \"stall_ms\": " << stall_ms
                  << ", \"model_ms\": " << r.model_ms
                  << ", \"speedup_vs_p1\": " << speedup << "}";
      }
    }
  }
  bench::emit(table, ctx);
  std::cout << "note: the simulated interconnect charges every nonempty peer link\n"
               "to both endpoints; speedup < 1 on small shards is expected (the\n"
               "exchange latency dominates once per-device work shrinks).\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    SPECKLE_CHECK(out.good(), "cannot open --json file '" + json_path + "'");
    out << "{\n  \"benchmark\": \"bench_multidev --scheme=" << scheme_arg
        << " --parts=" << parts_arg << " --denom=" << ctx.denom
        << " --partitioner=" << graph::partition_kind_name(ctx.partitioner)
        << "\",\n  \"machine\": \"simulated NVIDIA K20c fleet (deterministic)\",\n"
        << "  \"notes\": [\n"
        << "    \"colors/rounds/cut/exchange/model_ms are simulated quantities; "
           "byte-identical at every --threads value\",\n"
        << "    \"P=1 rows are the plain single-device scheme through the same "
           "runner\"\n  ],\n"
        << "  \"runs\": [" << json_runs.str() << "\n  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
