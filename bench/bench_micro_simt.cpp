/// \file bench_micro_simt.cpp
/// google-benchmark micro-benchmarks for the SIMT simulator itself:
/// simulation throughput for coalesced/scattered kernels, the scan-push
/// primitive, and the cache model. These measure the *simulator's* host
/// cost (simulated results are deterministic; see the fig benches for
/// simulated metrics).

#include <benchmark/benchmark.h>

#include "simt/cache.hpp"
#include "simt/device.hpp"
#include "simt/worklist.hpp"

namespace {

using namespace speckle::simt;

void BM_SimCoalescedCopy(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Device dev;
    auto src = dev.alloc<std::uint32_t>(n);
    auto dst = dev.alloc<std::uint32_t>(n);
    dev.launch({.grid_blocks = n / 128, .block_threads = 128}, "copy",
               [&](Thread& t) {
                 const auto i = t.global_id();
                 t.st(dst, i, t.ld(src, i));
               });
    benchmark::DoNotOptimize(dev.timeline_cycles());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SimCoalescedCopy)->Arg(1 << 14)->Arg(1 << 17);

void BM_SimScatteredGather(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Device dev;
    auto idx = dev.alloc<std::uint32_t>(n);
    auto dst = dev.alloc<std::uint32_t>(n);
    for (std::uint32_t i = 0; i < n; ++i) idx[i] = (i * 2654435761U) % n;
    dev.launch({.grid_blocks = n / 128, .block_threads = 128}, "gather",
               [&](Thread& t) {
                 const auto i = t.global_id();
                 t.st(dst, i, t.ld(idx, t.ld(idx, i)));
               });
    benchmark::DoNotOptimize(dev.timeline_cycles());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SimScatteredGather)->Arg(1 << 14)->Arg(1 << 17);

void BM_SimScanPush(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Device dev;
    Worklist wl(dev, n);
    dev.launch({.grid_blocks = n / 128, .block_threads = 128}, "push",
               [&](Thread& t) {
                 t.scan_push(wl, static_cast<std::uint32_t>(t.global_id()));
               });
    benchmark::DoNotOptimize(wl.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SimScanPush)->Arg(1 << 14)->Arg(1 << 17);

void BM_SimAtomicPush(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Device dev;
    Worklist wl(dev, n);
    dev.launch({.grid_blocks = n / 128, .block_threads = 128}, "apush",
               [&](Thread& t) {
                 const auto slot = t.atomic_add(wl.tail(), 0, 1U);
                 t.st(wl.items(), slot, static_cast<std::uint32_t>(t.global_id()));
               });
    benchmark::DoNotOptimize(wl.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SimAtomicPush)->Arg(1 << 14)->Arg(1 << 17);

void BM_CacheModelAccess(benchmark::State& state) {
  CacheModel cache(1280 * 1024, 128, 16);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr));
    addr = (addr + 128 * 7919) % (1ULL << 30) / 128 * 128;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheModelAccess);

}  // namespace

BENCHMARK_MAIN();
