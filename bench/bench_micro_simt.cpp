/// \file bench_micro_simt.cpp
/// google-benchmark micro-benchmarks for the SIMT simulator itself:
/// simulation throughput for coalesced/scattered kernels, the scan-push
/// primitive, and the cache model. These measure the *simulator's* host
/// cost (simulated results are deterministic; see the fig benches for
/// simulated metrics).

#include <benchmark/benchmark.h>

#include "simt/cache.hpp"
#include "simt/device.hpp"
#include "simt/worklist.hpp"

namespace {

using namespace speckle::simt;

void BM_SimCoalescedCopy(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Device dev;
    auto src = dev.alloc<std::uint32_t>(n, "src");
    auto dst = dev.alloc<std::uint32_t>(n, "dst");
    dev.launch({.grid_blocks = n / 128, .block_threads = 128}, "copy",
               [&](Thread& t) {
                 const auto i = t.global_id();
                 t.st(dst, i, t.ld(src, i));
               });
    benchmark::DoNotOptimize(dev.timeline_cycles());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SimCoalescedCopy)->Arg(1 << 14)->Arg(1 << 17);

void BM_SimScatteredGather(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Device dev;
    auto idx = dev.alloc<std::uint32_t>(n, "idx");
    auto dst = dev.alloc<std::uint32_t>(n, "dst");
    for (std::uint32_t i = 0; i < n; ++i) idx[i] = (i * 2654435761U) % n;
    dev.launch({.grid_blocks = n / 128, .block_threads = 128}, "gather",
               [&](Thread& t) {
                 const auto i = t.global_id();
                 t.st(dst, i, t.ld(idx, t.ld(idx, i)));
               });
    benchmark::DoNotOptimize(dev.timeline_cycles());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SimScatteredGather)->Arg(1 << 14)->Arg(1 << 17);

void BM_SimScanPush(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Device dev;
    Worklist wl(dev, n);
    dev.launch({.grid_blocks = n / 128, .block_threads = 128}, "push",
               [&](Thread& t) {
                 t.scan_push(wl, static_cast<std::uint32_t>(t.global_id()));
               });
    benchmark::DoNotOptimize(wl.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SimScanPush)->Arg(1 << 14)->Arg(1 << 17);

void BM_SimAtomicPush(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Device dev;
    Worklist wl(dev, n);
    dev.launch({.grid_blocks = n / 128, .block_threads = 128}, "apush",
               [&](Thread& t) {
                 const auto slot = t.atomic_add(wl.tail(), 0, 1U);
                 t.st(wl.items(), slot, static_cast<std::uint32_t>(t.global_id()));
               });
    benchmark::DoNotOptimize(wl.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SimAtomicPush)->Arg(1 << 14)->Arg(1 << 17);

void BM_CacheModelAccess(benchmark::State& state) {
  CacheModel cache(1280 * 1024, 128, 16);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr));
    addr = (addr + 128 * 7919) % (1ULL << 30) / 128 * 128;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheModelAccess);

// ---- isolated hot-loop benches (docs/simulator.md §10) -------------------
// The three loops below are the simulator's measured hot paths: the
// per-thread trace append + warp merge, the streaming coalescer, and the
// cache probe. They run on synthetic streams so a regression shows up in
// nanoseconds-per-op instead of minutes of bench_fig7.

/// Trace append + index-aligned merge for one fully-converged warp: each
/// lane appends (compute, load)* then the 32 streams merge. Exercises the
/// adjacent-compute merging, the SoA append path, and the lockstep merge.
void BM_TraceAppendMergeConverged(benchmark::State& state) {
  const std::size_t ops = static_cast<std::size_t>(state.range(0));
  std::vector<ThreadTrace> lanes(32);
  WarpTrace out;
  for (auto _ : state) {
    for (std::uint32_t l = 0; l < 32; ++l) {
      ThreadTrace& t = lanes[l];
      t.clear();
      for (std::size_t i = 0; i < ops; ++i) {
        t.compute(2);
        t.compute(3);  // merges into the previous compute op
        t.memory(OpKind::kLoad, Space::kGlobal, (i * 32 + l) * 4, 4);
      }
    }
    merge_warp(lanes, 128, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops) * 32);
}
BENCHMARK(BM_TraceAppendMergeConverged)->Arg(256);

/// Same shape but lane 7 issues an extra compute op first, so every round
/// takes the divergent leader-scan path.
void BM_TraceMergeDivergent(benchmark::State& state) {
  const std::size_t ops = static_cast<std::size_t>(state.range(0));
  std::vector<ThreadTrace> lanes(32);
  for (std::uint32_t l = 0; l < 32; ++l) {
    ThreadTrace& t = lanes[l];
    if (l == 7) t.memory(OpKind::kLoad, Space::kGlobal, 0, 4);
    for (std::size_t i = 0; i < ops; ++i) {
      t.compute(1);
      t.memory(OpKind::kLoad, Space::kGlobal, (i * 32 + l) * 4, 4);
    }
  }
  WarpTrace out;
  for (auto _ : state) {
    merge_warp(lanes, 128, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops) * 32);
}
BENCHMARK(BM_TraceMergeDivergent)->Arg(256);

/// Streaming coalescer, ascending addresses (the fast append path): 32
/// unit-stride 4-byte lanes collapsing into four 128-byte lines.
void BM_CoalescerAscending(benchmark::State& state) {
  Coalescer co(128);
  std::uint64_t base = 0;
  for (auto _ : state) {
    co.reset();
    for (std::uint64_t l = 0; l < 32; ++l) co.add(base + l * 4, 4);
    benchmark::DoNotOptimize(co.lines().size());
    base += 512;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_CoalescerAscending);

/// Streaming coalescer, scattered addresses (binary-search insert path).
void BM_CoalescerScattered(benchmark::State& state) {
  Coalescer co(128);
  for (auto _ : state) {
    co.reset();
    std::uint64_t a = 12345;
    for (std::uint64_t l = 0; l < 32; ++l) {
      a = a * 6364136223846793005ULL + 1442695040888963407ULL;
      co.add((a >> 20) & ~std::uint64_t{3}, 4);
    }
    benchmark::DoNotOptimize(co.lines().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_CoalescerScattered);

// ---- wave-commit isolation (the epoch-overlay swap/merge path) -----------
// Drive MemorySystem wave views directly — no event loop, no kernels — so
// the commit path (reset_view epoch bump, COW page faults, and the
// commit_wave swap-vs-merge decision) has its own A/B number. Three access
// shapes: one SM streaming densely (every page single-owner, committed by
// page copy), every SM touching a small disjoint slice (sparse, still
// single-owner), and every SM hammering the same lines (every page
// contended, committed by the SM-ordered recency merge).

/// One wave over `mem`: SM `sm` loads `count` consecutive lines from `base`.
void touch_lines(MemorySystem::WaveView& view, std::uint64_t base,
                 std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    benchmark::DoNotOptimize(view.load(Space::kGlobal, base + i * 128));
  }
}

void BM_WaveCommitDense(benchmark::State& state) {
  const DeviceConfig dev = DeviceConfig::k20c().scaled(8);
  MemorySystem mem(dev);
  std::vector<MemorySystem::WaveView> views;
  for (std::uint32_t sm = 0; sm < dev.num_sms; ++sm) {
    views.push_back(mem.wave_view(sm));
  }
  const std::uint64_t lines = 4096;  // sweeps every set many times over
  std::uint64_t wave = 0;
  for (auto _ : state) {
    for (std::uint32_t sm = 0; sm < dev.num_sms; ++sm) mem.reset_view(views[sm], sm);
    touch_lines(views[0], wave * lines * 128, lines);
    mem.commit_wave(views);
    ++wave;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lines));
}
BENCHMARK(BM_WaveCommitDense);

void BM_WaveCommitSparse(benchmark::State& state) {
  const DeviceConfig dev = DeviceConfig::k20c().scaled(8);
  MemorySystem mem(dev);
  std::vector<MemorySystem::WaveView> views;
  for (std::uint32_t sm = 0; sm < dev.num_sms; ++sm) {
    views.push_back(mem.wave_view(sm));
  }
  const std::uint64_t lines = 32;  // a few pages per SM, disjoint regions
  std::uint64_t wave = 0;
  for (auto _ : state) {
    for (std::uint32_t sm = 0; sm < dev.num_sms; ++sm) {
      mem.reset_view(views[sm], sm);
      touch_lines(views[sm], (wave * dev.num_sms + sm) * (1 << 24), lines);
    }
    mem.commit_wave(views);
    ++wave;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lines) * dev.num_sms);
}
BENCHMARK(BM_WaveCommitSparse);

void BM_WaveCommitContended(benchmark::State& state) {
  const DeviceConfig dev = DeviceConfig::k20c().scaled(8);
  MemorySystem mem(dev);
  std::vector<MemorySystem::WaveView> views;
  for (std::uint32_t sm = 0; sm < dev.num_sms; ++sm) {
    views.push_back(mem.wave_view(sm));
  }
  const std::uint64_t lines = 4096;  // all SMs sweep the same range
  std::uint64_t wave = 0;
  for (auto _ : state) {
    for (std::uint32_t sm = 0; sm < dev.num_sms; ++sm) {
      mem.reset_view(views[sm], sm);
      // Per-SM offset keeps the streams unaligned, like real interleaving,
      // while still colliding on every cache set.
      touch_lines(views[sm], (wave * lines + sm * 7) * 128, lines);
    }
    mem.commit_wave(views);
    ++wave;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lines) * dev.num_sms);
}
BENCHMARK(BM_WaveCommitContended);

/// Hit-dominated probe of a small cache (the steady-state L2 pattern):
/// round-robin over half the sets so every access hits after warmup.
void BM_CacheModelHit(benchmark::State& state) {
  CacheModel cache(192 * 1024, 128, 16);  // the denom=8 scaled L2 geometry
  const std::uint64_t lines = 192 * 1024 / 128 / 2;
  std::uint64_t i = 0;
  for (std::uint64_t w = 0; w < lines; ++w) cache.access(w * 128);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(i * 128));
    if (++i == lines) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheModelHit);

}  // namespace

BENCHMARK_MAIN();
