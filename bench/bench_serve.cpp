// bench_serve: the serve subsystem's two headline numbers.
//
// 1. Sustained throughput and p99 latency of a mixed query+mutation request
//    stream through the full protocol codec + session dispatcher, in
//    process (MemoryStream semantics: no kernel round trips, so the number
//    is the server's own cost, not the transport's).
// 2. Incremental recoloring vs from-scratch: for mutation batches of <=1%
//    of the edge set, the model-time ratio between recolor_region seeded
//    with the dirty set and a full data_color of the mutated graph. The
//    acceptance bar is >=5x on small batches on at least two Table I
//    graphs; every post-mutation coloring is verified proper here.
//
//   bench_serve --denom=16 --graphs=Hamrle3,G3_circuit --requests=400 \
//               --threads=4 --json=BENCH_serve.json
//
// Latency/req/s are wall-clock (machine-dependent); colors, iterations,
// dirty sizes and model_ms are simulated and bit-identical at any
// --threads value.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "coloring/data.hpp"
#include "coloring/recolor.hpp"
#include "graph/cache.hpp"
#include "graph/mutate.hpp"
#include "graph/suite.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/session.hpp"
#include "support/options.hpp"

namespace {

using namespace speckle;
using namespace speckle::serve;

struct Config {
  std::uint32_t denom = 16;
  std::uint64_t seed = 1;
  std::uint32_t block = 128;
  std::uint32_t threads = 0;
  std::uint32_t requests = 400;
  std::vector<std::string> graphs = {"Hamrle3", "G3_circuit"};
  std::string json;
  std::string graph_cache;
};

struct ThroughputRow {
  std::string graph;
  std::uint32_t requests = 0;
  double reqs_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t mutates = 0;
  std::uint64_t incremental = 0;
  std::uint64_t full = 0;
};

struct IncrementalRow {
  std::string graph;
  std::uint32_t batch_edges = 0;
  double batch_pct = 0.0;  ///< of the undirected edge count
  std::uint32_t dirty = 0;
  std::uint32_t iterations = 0;
  double incremental_ms = 0.0;
  double scratch_ms = 0.0;
  double speedup = 0.0;
  bool proper = false;
};

bool proper_coloring(const graph::CsrGraph& g,
                     const coloring::Coloring& colors) {
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    if (colors[v] == coloring::kUncolored) return false;
    for (graph::vid_t w : g.neighbors(v)) {
      if (colors[v] == colors[w]) return false;
    }
  }
  return true;
}

std::uint32_t host_threads(const Config& cfg) {
  if (cfg.threads > 0) return cfg.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// ---------------------------------------------------------------------------
// Part 1: mixed-stream throughput through the protocol codec + session.

ThroughputRow run_throughput(const Config& cfg, const std::string& name) {
  GraphRegistry registry;
  SessionConfig session_cfg;
  session_cfg.block_size = cfg.block;
  session_cfg.host_threads = host_threads(cfg);
  session_cfg.graph_cache = cfg.graph_cache;
  Session session(registry, session_cfg);

  std::uint32_t id = 0;
  auto send = [&](const std::vector<std::uint8_t>& payload) {
    return session.handle(payload);
  };

  WireWriter load_body;
  load_body.str(name);
  load_body.u32(cfg.denom);
  load_body.u64(cfg.seed ? cfg.seed : 0x5eed);
  std::vector<std::uint8_t> load_resp =
      send(make_request(Opcode::kLoad, ++id, load_body.bytes()));
  WireReader lr(load_resp);
  lr.u8();
  lr.u32();
  const std::uint32_t handle = lr.u32();
  const auto n = static_cast<graph::vid_t>(lr.u64());

  WireWriter color_body;
  color_body.u32(handle);
  color_body.str("D-ldg");
  color_body.u8(0);
  send(make_request(Opcode::kColor, ++id, color_body.bytes()));

  ThroughputRow row;
  row.graph = name;
  row.requests = cfg.requests;
  std::vector<double> latency_us;
  latency_us.reserve(cfg.requests);
  std::mt19937_64 rng(cfg.seed * 7919 + 17);
  double total_us = 0.0;

  for (std::uint32_t i = 0; i < cfg.requests; ++i) {
    std::vector<std::uint8_t> payload;
    const std::uint64_t pick = rng() % 100;
    if (pick < 70) {
      WireWriter body;
      body.u32(handle);
      body.u8(static_cast<std::uint8_t>(QueryWhat::kVertexColor));
      body.u64(rng() % n);
      payload = make_request(Opcode::kQuery, ++id, body.bytes());
    } else if (pick < 80) {
      WireWriter body;
      body.u32(handle);
      body.u8(static_cast<std::uint8_t>(QueryWhat::kNumColors));
      body.u64(0);
      payload = make_request(Opcode::kQuery, ++id, body.bytes());
    } else if (pick < 95) {
      WireWriter body;
      body.u32(handle);
      body.u32(4);
      for (int e = 0; e < 4; ++e) {
        body.u8(e == 3 ? 1 : 0);  // 3 inserts, 1 delete per batch
        body.u64(rng() % n);
        body.u64(rng() % n);
      }
      payload = make_request(Opcode::kMutate, ++id, body.bytes());
      ++row.mutates;
    } else {
      payload = make_request(Opcode::kStats, ++id);
    }
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<std::uint8_t> response = send(payload);
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    latency_us.push_back(us);
    total_us += us;
    if (response.empty() ||
        response[0] != static_cast<std::uint8_t>(Status::kOk)) {
      std::fprintf(stderr, "bench_serve: request %u failed\n", id);
    }
  }
  row.incremental = session.stats().incremental_recolors;
  row.full = session.stats().full_recolors;
  row.reqs_per_sec = cfg.requests / (total_us / 1e6);

  std::sort(latency_us.begin(), latency_us.end());
  auto percentile = [&](double p) {
    const auto idx = static_cast<std::size_t>(p * (latency_us.size() - 1));
    return latency_us[idx];
  };
  row.p50_us = percentile(0.50);
  row.p99_us = percentile(0.99);
  return row;
}

// ---------------------------------------------------------------------------
// Part 2: incremental recolor vs from-scratch on small batches.

IncrementalRow run_incremental(const Config& cfg, const std::string& name,
                               std::uint32_t batch_edges) {
  const graph::CsrGraph g = graph::make_suite_graph_cached(
      name, cfg.denom, cfg.seed ? cfg.seed : 0x5eed, cfg.graph_cache);
  coloring::DataOptions dopts;
  dopts.block_size = cfg.block;
  dopts.use_ldg = true;
  dopts.device = simt::DeviceConfig::k20c().scaled(cfg.denom);
  dopts.device.host_threads = host_threads(cfg);
  const coloring::GpuResult base = coloring::data_color(g, dopts);

  // Bias half the batch toward same-color endpoint pairs so the dirty set
  // is non-trivial — the honest case for incremental recoloring; uniform
  // random pairs frequently collide on zero conflicts.
  const graph::vid_t n = g.num_vertices();
  std::mt19937_64 rng(cfg.seed * 104729 + batch_edges);
  std::vector<graph::EdgeMutation> batch;
  batch.reserve(batch_edges);
  while (batch.size() < batch_edges) {
    const auto u = static_cast<graph::vid_t>(rng() % n);
    graph::vid_t v = static_cast<graph::vid_t>(rng() % n);
    if (batch.size() % 2 == 0) {
      // Walk forward to a vertex sharing u's color (bounded scan).
      for (graph::vid_t probe = 1; probe < 4096; ++probe) {
        const graph::vid_t w = (u + probe) % n;
        if (base.coloring[w] == base.coloring[u]) {
          v = w;
          break;
        }
      }
    }
    if (u == v) continue;
    batch.push_back({graph::EdgeMutation::Kind::kInsert, u, v});
  }

  const graph::MutationOutcome outcome = graph::apply_mutations(g, batch);
  const std::vector<graph::vid_t> dirty =
      coloring::dirty_from_inserts(base.coloring, outcome.inserted);

  coloring::RecolorOptions ropts;
  static_cast<coloring::DataOptions&>(ropts) = dopts;
  const coloring::RecolorResult incremental =
      coloring::recolor_region(outcome.graph, base.coloring, dirty, ropts);
  const coloring::GpuResult scratch =
      coloring::data_color(outcome.graph, dopts);

  IncrementalRow row;
  row.graph = name;
  row.batch_edges = batch_edges;
  row.batch_pct = 100.0 * batch_edges / (g.num_edges() / 2.0);
  row.dirty = static_cast<std::uint32_t>(dirty.size());
  row.iterations = incremental.iterations;
  row.incremental_ms = incremental.model_ms;
  row.scratch_ms = scratch.model_ms;
  row.speedup = incremental.model_ms > 0.0
                    ? scratch.model_ms / incremental.model_ms
                    : 0.0;
  row.proper = proper_coloring(outcome.graph, incremental.coloring);
  return row;
}

// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) { return s; }  // names are safe

void write_json(const Config& cfg, const std::vector<ThroughputRow>& tput,
                const std::vector<IncrementalRow>& incr) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"benchmark\": \"bench_serve --denom=" << cfg.denom
      << " --requests=" << cfg.requests << "\",\n";
  out << "  \"machine\": \"simulated NVIDIA K20c (deterministic); latency "
         "is host wall-clock\",\n";
  out << "  \"notes\": [\n";
  out << "    \"throughput: mixed stream (70% vertex query / 10% ncolors / "
         "15% 4-edge mutate / 5% stats) through the protocol codec and "
         "session dispatcher, in process\",\n";
  out << "    \"incremental: model-ms ratio of dirty-seeded recolor_region "
         "vs full data_color on the mutated graph; batches are <=1% of the "
         "undirected edge set; proper=coloring verified after mutation\"\n";
  out << "  ],\n";
  out << "  \"throughput\": [\n";
  for (std::size_t i = 0; i < tput.size(); ++i) {
    const ThroughputRow& r = tput[i];
    out << "    {\"graph\": \"" << json_escape(r.graph)
        << "\", \"requests\": " << r.requests
        << ", \"reqs_per_sec\": " << r.reqs_per_sec
        << ", \"p50_us\": " << r.p50_us << ", \"p99_us\": " << r.p99_us
        << ", \"mutates\": " << r.mutates
        << ", \"incremental_recolors\": " << r.incremental
        << ", \"full_recolors\": " << r.full << "}"
        << (i + 1 < tput.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"incremental\": [\n";
  for (std::size_t i = 0; i < incr.size(); ++i) {
    const IncrementalRow& r = incr[i];
    out << "    {\"graph\": \"" << json_escape(r.graph)
        << "\", \"batch_edges\": " << r.batch_edges
        << ", \"batch_pct\": " << r.batch_pct << ", \"dirty\": " << r.dirty
        << ", \"iterations\": " << r.iterations
        << ", \"incremental_model_ms\": " << r.incremental_ms
        << ", \"scratch_model_ms\": " << r.scratch_ms
        << ", \"speedup\": " << r.speedup
        << ", \"proper\": " << (r.proper ? "true" : "false") << "}"
        << (i + 1 < incr.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";

  std::ofstream file(cfg.json);
  file << out.str();
  std::printf("wrote %s\n", cfg.json.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  support::Options opts(argc, argv);
  Config cfg;
  cfg.denom = static_cast<std::uint32_t>(opts.get_int("denom", 16));
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  cfg.block = static_cast<std::uint32_t>(opts.get_int("block", 128));
  cfg.threads = static_cast<std::uint32_t>(opts.get_int("threads", 0));
  cfg.requests = static_cast<std::uint32_t>(opts.get_int("requests", 400));
  cfg.json = opts.get_string("json", "");
  cfg.graph_cache =
      graph::resolve_graph_cache_dir(opts.get_string("graph-cache", ""));
  const std::string graphs = opts.get_string("graphs", "");
  opts.validate(
      {"denom", "seed", "block", "threads", "requests", "json", "graphs",
       "graph-cache"});
  if (!graphs.empty()) {
    cfg.graphs.clear();
    std::istringstream in(graphs);
    std::string name;
    while (std::getline(in, name, ',')) cfg.graphs.push_back(name);
  }

  std::printf("== serve throughput (mixed stream, %u requests) ==\n",
              cfg.requests);
  std::printf("%-12s %10s %10s %10s %8s %6s %5s\n", "graph", "req/s",
              "p50_us", "p99_us", "mutates", "incr", "full");
  std::vector<ThroughputRow> tput;
  for (const std::string& name : cfg.graphs) {
    tput.push_back(run_throughput(cfg, name));
    const ThroughputRow& r = tput.back();
    std::printf("%-12s %10.0f %10.1f %10.1f %8llu %6llu %5llu\n",
                r.graph.c_str(), r.reqs_per_sec, r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.mutates),
                static_cast<unsigned long long>(r.incremental),
                static_cast<unsigned long long>(r.full));
  }

  std::printf("\n== incremental recolor vs from-scratch ==\n");
  std::printf("%-12s %6s %8s %6s %5s %12s %12s %8s %7s\n", "graph", "batch",
              "pct", "dirty", "iters", "incr_ms", "scratch_ms", "speedup",
              "proper");
  std::vector<IncrementalRow> incr;
  bool all_proper = true;
  for (const std::string& name : cfg.graphs) {
    for (const std::uint32_t batch : {8u, 64u, 256u}) {
      incr.push_back(run_incremental(cfg, name, batch));
      const IncrementalRow& r = incr.back();
      all_proper = all_proper && r.proper;
      std::printf("%-12s %6u %7.3f%% %6u %5u %12.5f %12.5f %7.1fx %7s\n",
                  r.graph.c_str(), r.batch_edges, r.batch_pct, r.dirty,
                  r.iterations, r.incremental_ms, r.scratch_ms, r.speedup,
                  r.proper ? "yes" : "NO");
    }
  }

  if (!cfg.json.empty()) write_json(cfg, tput, incr);
  return all_proper ? 0 : 1;
}
