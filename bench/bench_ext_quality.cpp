/// \file bench_ext_quality.cpp
/// Extension experiment: coloring-quality levers beyond the paper —
///  (a) the largest-degree-first conflict tie-break (D-ldf, after
///      Hasenplaugh et al.'s ordering heuristics), and
///  (b) the color-balancing post-pass (after Gjertsen et al.'s PDR/PLF),
/// both measured against D-base. Quality = color count; balance = largest
/// class size over ideal (1.0 is perfect), which bounds chromatic-
/// scheduling parallelism.

#include <iostream>

#include "bench_common.hpp"
#include "coloring/balance.hpp"
#include "coloring/refine.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  using coloring::Scheme;
  const bench::BenchContext ctx = bench::parse_context(argc, argv);
  bench::print_banner(
      "Extension: quality levers (LDF tie-break, color balancing)", ctx);

  support::Table table({"graph", "seq colors", "D-base colors", "D-ldf colors",
                        "D-ldf ms penalty", "D-base+refine", "balance before",
                        "balance after", "moves"});
  const coloring::RunOptions opts = ctx.run_options();
  for (const std::string& name : ctx.graphs) {
    const graph::CsrGraph& g = bench::get_graph(ctx, name);
    const auto seq = run_scheme(Scheme::kSequential, g, opts);
    const auto base = run_scheme(Scheme::kDataBase, g, opts);
    const auto ldf = run_scheme(Scheme::kDataLdf, g, opts);
    const auto balanced = coloring::balance_colors(g, base.coloring);
    const auto refined = coloring::iterated_greedy(g, base.coloring);
    table.row()
        .cell(name)
        .cell_u64(seq.num_colors)
        .cell_u64(base.num_colors)
        .cell_u64(ldf.num_colors)
        .cell_ratio(ldf.model_ms / base.model_ms)
        .cell_u64(refined.colors_after)
        .cell_f(balanced.balance_before)
        .cell_f(balanced.balance_after)
        .cell_u64(balanced.moves);
  }
  bench::emit(table, ctx);
  std::cout << "expected shape: D-ldf matches or beats D-base's color count at\n"
               "a small runtime penalty (degree loads in detection); iterated-\n"
               "greedy refinement recovers speculation losses; balancing pushes\n"
               "the largest class toward the ideal size without adding colors.\n";
  return 0;
}
