/// \file bench_fig1.cpp
/// Reproduces **Fig 1** (motivation): the two pre-existing GPU graph
/// coloring implementations compared against the sequential baseline —
/// (a) runtime speedup normalized to sequential (higher is better) and
/// (b) number of colors assigned (lower is better).
///
/// Paper's shape: 3-step GM has good colors but runs *slower* than the
/// sequential implementation (0.66x average); csrcolor is fast (~2x) but
/// needs several times more colors.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  using coloring::Scheme;
  const bench::BenchContext ctx = bench::parse_context(argc, argv);
  bench::print_banner("Fig 1: existing GPU implementations (3-step GM, csrcolor)",
                      ctx);

  support::Table table({"graph", "seq ms", "3-step GM ms", "csrcolor ms",
                        "3-step GM speedup", "csrcolor speedup", "seq colors",
                        "3-step GM colors", "csrcolor colors"});
  std::vector<double> gm3_speedups, csr_speedups;
  const coloring::RunOptions opts = ctx.run_options();
  for (const std::string& name : ctx.graphs) {
    const graph::CsrGraph& g = bench::get_graph(ctx, name);
    const auto seq = run_scheme(Scheme::kSequential, g, opts);
    const auto gm3 = run_scheme(Scheme::kGm3Step, g, opts);
    const auto csr = run_scheme(Scheme::kCsrColor, g, opts);
    const double gm3_speedup = seq.model_ms / gm3.model_ms;
    const double csr_speedup = seq.model_ms / csr.model_ms;
    gm3_speedups.push_back(gm3_speedup);
    csr_speedups.push_back(csr_speedup);
    table.row()
        .cell(name)
        .cell_f(seq.model_ms)
        .cell_f(gm3.model_ms)
        .cell_f(csr.model_ms)
        .cell_ratio(gm3_speedup)
        .cell_ratio(csr_speedup)
        .cell_u64(seq.num_colors)
        .cell_u64(gm3.num_colors)
        .cell_u64(csr.num_colors);
  }
  table.row()
      .cell("geomean")
      .cell("-")
      .cell("-")
      .cell("-")
      .cell_ratio(support::geomean(gm3_speedups))
      .cell_ratio(support::geomean(csr_speedups))
      .cell("-")
      .cell("-")
      .cell("-");
  bench::emit(table, ctx);
  std::cout << "paper shape: 3-step GM ~0.66x (slower than sequential) with\n"
               "greedy-quality colors; csrcolor ~2x but several times more colors.\n";
  return 0;
}
