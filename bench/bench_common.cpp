#include "bench_common.hpp"

#include <iostream>
#include <map>
#include <sstream>
#include <thread>

#include "graph/cache.hpp"
#include "graph/genspec.hpp"
#include "graph/suite.hpp"
#include "support/check.hpp"
#include "support/threadpool.hpp"

namespace speckle::bench {

coloring::RunOptions BenchContext::run_options() const {
  coloring::RunOptions opts;
  opts.block_size = block;
  opts.seed = seed;
  opts.num_devices = devices;
  opts.partitioner = partitioner;
  opts.device.host_threads = threads;
  opts.device.profile = profile;
  opts.device.check = check;
  if (denom > 1) opts.scale_caches(denom);
  return opts;
}

BenchContext parse_context(int argc, char** argv,
                           const std::vector<std::string>& extra_known) {
  support::Options opts(argc, argv);
  BenchContext ctx;
  ctx.denom = static_cast<std::uint32_t>(opts.get_int("denom", 8));
  ctx.block = static_cast<std::uint32_t>(opts.get_int("block", 128));
  ctx.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  ctx.threads = static_cast<std::uint32_t>(opts.get_int("threads", 0));
  ctx.devices = static_cast<std::uint32_t>(opts.get_int("devices", 1));
  ctx.partitioner =
      graph::partition_kind_from_name(opts.get_string("partitioner", "contiguous"));
  ctx.profile = opts.get_bool("profile", false);
  ctx.check = opts.get_bool("check", false);
  ctx.csv = opts.get_bool("csv", false);
  ctx.graph_cache =
      graph::resolve_graph_cache_dir(opts.get_string("graph-cache", ""));
  SPECKLE_CHECK(ctx.seed != 0,
                "--seed=0 is reserved (benches derive sub-seeds as seed*k "
                "products); pass a nonzero seed");
  SPECKLE_CHECK(ctx.devices >= 1, "--devices needs at least 1");

  const std::string graphs = opts.get_string("graphs", "");
  if (graphs.empty()) {
    for (const auto& entry : graph::suite_entries()) ctx.graphs.push_back(entry.name);
  } else {
    // Spec entries ("model:key=value,...") may themselves contain commas,
    // so the list splits on commas only outside a spec's argument tail —
    // a new entry starts where a comma is followed by a known suite name
    // or another "model:" prefix.
    std::stringstream ss(graphs);
    std::string name;
    while (std::getline(ss, name, ',')) {
      if (!ctx.graphs.empty() && ctx.graphs.back().find(':') != std::string::npos &&
          name.find('=') != std::string::npos && name.find(':') == std::string::npos) {
        ctx.graphs.back() += "," + name;  // continuation of the spec's args
        continue;
      }
      ctx.graphs.push_back(name);
    }
    for (const std::string& entry : ctx.graphs) {
      if (entry.find(':') != std::string::npos) {
        graph::parse_generator_spec(entry, ctx.seed);  // aborts on bad specs
      } else {
        graph::suite_entry(entry);  // aborts on unknown names
      }
    }
  }

  std::vector<std::string> known = {"denom",   "block",   "seed",
                                    "threads", "devices", "partitioner",
                                    "profile", "check",   "csv",
                                    "graphs",  "graph-cache"};
  known.insert(known.end(), extra_known.begin(), extra_known.end());
  opts.validate(known);
  return ctx;
}

const graph::CsrGraph& get_graph(const BenchContext& ctx, const std::string& name) {
  static std::map<std::pair<std::string, std::uint32_t>, graph::CsrGraph> cache;
  const auto key = std::make_pair(name, ctx.denom);
  auto it = cache.find(key);
  if (it == cache.end()) {
    graph::CsrGraph g;
    if (name.find(':') != std::string::npos) {
      // GeneratorSpec entry: sharded generation + parallel CSR build at
      // the bench's --threads concurrency (denom does not apply — the
      // spec names its own size).
      const graph::GeneratorSpec spec =
          graph::parse_generator_spec(name, ctx.seed * 0x5eed);
      const unsigned threads =
          ctx.threads != 0 ? ctx.threads
                           : std::max(1u, std::thread::hardware_concurrency());
      support::ThreadPool pool(threads);
      g = graph::generate_graph_cached(spec, pool, ctx.graph_cache);
    } else {
      g = graph::make_suite_graph_cached(name, ctx.denom, ctx.seed * 0x5eed,
                                         ctx.graph_cache);
    }
    it = cache.emplace(key, std::move(g)).first;
  }
  return it->second;
}

void print_banner(const std::string& title, const BenchContext& ctx) {
  std::cout << "=== " << title << " ===\n"
            << "scale: 1/" << ctx.denom << " of paper size (--denom=1 for full);"
            << " block size " << ctx.block << "; simulated NVIDIA K20c vs."
            << " modeled Xeon E5-2670\n"
            << "executor: ";
  if (ctx.threads == 0) {
    std::cout << "one host thread per hardware thread";
  } else {
    std::cout << ctx.threads << " host thread" << (ctx.threads == 1 ? "" : "s");
  }
  std::cout << " (--threads=N; results are thread-count invariant)\n\n";
}

void emit(const support::Table& table, const BenchContext& ctx) {
  table.print(std::cout);
  if (ctx.csv) {
    std::cout << "\n--- csv ---\n";
    table.print_csv(std::cout);
  }
  std::cout << "\n";
}

}  // namespace speckle::bench
