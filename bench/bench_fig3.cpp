/// \file bench_fig3.cpp
/// Reproduces **Fig 3** (graph coloring is memory latency bound):
///  (a) achieved compute throughput and DRAM bandwidth as a fraction of
///      peak — both well below 60% indicates latency-bound kernels;
///  (b) breakdown of issue-stall reasons, dominated by memory dependency.
///
/// Profiled on the topology-driven base implementation, as the paper does
/// for its kernel characterization.

#include <iostream>

#include "bench_common.hpp"
#include "simt/stats.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  using coloring::Scheme;
  const bench::BenchContext ctx = bench::parse_context(argc, argv);
  bench::print_banner("Fig 3: memory-latency-bound kernel characterization (T-base)",
                      ctx);

  const coloring::RunOptions opts = ctx.run_options();

  support::Table util({"graph", "compute % of peak", "DRAM BW % of peak"});
  support::Table stalls({"graph", "memory dep %", "exec dep %", "sync %",
                         "mem throttle %", "atomic %", "idle/other %", "busy %"});
  for (const std::string& name : ctx.graphs) {
    const graph::CsrGraph& g = bench::get_graph(ctx, name);
    const auto r = run_scheme(Scheme::kTopoBase, g, opts);

    // Fig 3(a): utilization aggregated over the kernels of the run.
    double bw_weighted = 0.0;
    std::uint64_t total_cycles = 0;
    for (const auto& k : r.report.kernels) {
      bw_weighted += k.bandwidth_utilization(opts.device) * k.cycles;
      total_cycles += k.cycles;
    }
    const auto agg = r.report.aggregate_stalls();
    const double compute_pct = agg.total > 0 ? 100.0 * agg.busy / agg.total : 0.0;
    const double bw_pct = total_cycles > 0 ? 100.0 * bw_weighted / total_cycles : 0.0;
    util.row().cell(name).cell_f(compute_pct, 1).cell_f(bw_pct, 1);

    // Fig 3(b): stall-reason breakdown.
    auto pct = [&](simt::Stall s) { return 100.0 * agg.fraction(s); };
    stalls.row()
        .cell(name)
        .cell_f(pct(simt::Stall::kMemoryDependency), 1)
        .cell_f(pct(simt::Stall::kExecutionDependency), 1)
        .cell_f(pct(simt::Stall::kSynchronization), 1)
        .cell_f(pct(simt::Stall::kMemoryThrottle), 1)
        .cell_f(pct(simt::Stall::kAtomic), 1)
        .cell_f(pct(simt::Stall::kIdle), 1)
        .cell_f(agg.total > 0 ? 100.0 * agg.busy / agg.total : 0.0, 1);
  }

  std::cout << "(a) achieved throughput vs peak — both < 60% => latency bound\n";
  bench::emit(util, ctx);
  std::cout << "(b) issue-stall breakdown (% of SM-cycles)\n";
  bench::emit(stalls, ctx);
  std::cout << "paper shape: compute and bandwidth both below 60% of peak;\n"
               "memory dependency dominates the stall breakdown.\n";
  return 0;
}
