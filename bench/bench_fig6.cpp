/// \file bench_fig6.cpp
/// Reproduces **Fig 6** (coloring quality): the number of colors each of
/// the seven schemes assigns on every suite graph. The six speculative-
/// greedy schemes should use a similar, small number of colors; csrcolor
/// should need several times more (4.9x-23x in the paper).

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  using coloring::Scheme;
  const bench::BenchContext ctx = bench::parse_context(argc, argv);
  bench::print_banner("Fig 6: number of colors per scheme", ctx);

  std::vector<std::string> headers = {"graph"};
  for (Scheme s : coloring::paper_schemes()) headers.push_back(scheme_name(s));
  headers.push_back("csrcolor/seq");
  support::Table table(headers);

  const coloring::RunOptions opts = ctx.run_options();
  for (const std::string& name : ctx.graphs) {
    const graph::CsrGraph& g = bench::get_graph(ctx, name);
    table.row().cell(name);
    std::uint32_t seq_colors = 0, csr_colors = 0;
    for (Scheme s : coloring::paper_schemes()) {
      const auto r = run_scheme(s, g, opts);
      table.cell_u64(r.num_colors);
      if (s == Scheme::kSequential) seq_colors = r.num_colors;
      if (s == Scheme::kCsrColor) csr_colors = r.num_colors;
    }
    table.cell_ratio(static_cast<double>(csr_colors) / seq_colors, 1);
  }
  bench::emit(table, ctx);
  std::cout << "paper shape: the six SGR schemes within a few colors of each\n"
               "other; csrcolor 4.9x-23x more than sequential.\n";
  return 0;
}
