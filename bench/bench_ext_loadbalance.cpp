/// \file bench_ext_loadbalance.cpp
/// Extension experiment (paper Section III-A: "the data-driven
/// implementation still suffers from load imbalance, since vertices may
/// have different amounts of edges"): the warp-centric D-warp scheme versus
/// thread-centric D-base. One warp cooperates on each vertex, so adjacency
/// reads coalesce perfectly and an rmat-g hub no longer serializes one
/// thread for hundreds of iterations.

#include <iostream>

#include "bench_common.hpp"
#include "graph/analysis.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  using coloring::Scheme;
  const bench::BenchContext ctx = bench::parse_context(argc, argv);
  bench::print_banner("Extension: warp-centric load balancing (D-warp vs D-base)",
                      ctx);

  support::Table table({"graph", "deg variance", "D-base ms", "D-warp ms",
                        "D-warp speedup", "D-base colors", "D-warp colors"});
  std::vector<double> speedups;
  const coloring::RunOptions opts = ctx.run_options();
  for (const std::string& name : ctx.graphs) {
    const graph::CsrGraph& g = bench::get_graph(ctx, name);
    const auto deg = graph::analyze_degrees(g);
    const auto base = run_scheme(Scheme::kDataBase, g, opts);
    const auto warp = run_scheme(Scheme::kDataWarp, g, opts);
    const double speedup = base.model_ms / warp.model_ms;
    speedups.push_back(speedup);
    table.row()
        .cell(name)
        .cell_f(deg.degree_variance, 1)
        .cell_f(base.model_ms)
        .cell_f(warp.model_ms)
        .cell_ratio(speedup)
        .cell_u64(base.num_colors)
        .cell_u64(warp.num_colors);
  }
  table.row().cell("geomean").cell("-").cell("-").cell("-").cell_ratio(
      support::geomean(speedups)).cell("-").cell("-");
  bench::emit(table, ctx);
  std::cout << "expected shape: D-warp wins grow with degree variance (rmat-g\n"
               "most); on low-degree stencils the 32-lane strip-mining wastes\n"
               "lanes and D-base stays ahead.\n";
  return 0;
}
