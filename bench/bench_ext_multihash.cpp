/// \file bench_ext_multihash.cpp
/// Extension experiment: the multi-hash design space of csrcolor
/// (Section II-C: "N hash values ... can generate 2N independent sets at
/// once"). Sweeps from classic Jones–Plassmann (one fixed hash, max-only
/// sets — one color per pass) to N=8 multi-hash, showing why cuSPARSE's
/// trick is what makes the MIS family fast: passes collapse, at the price
/// of even more colors.

#include <iostream>

#include "bench_common.hpp"
#include "coloring/csrcolor.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  support::Options raw(argc, argv);
  bench::BenchContext ctx = bench::parse_context(argc, argv);
  // JP-gpu needs one pass per color; default to a smaller scale so the
  // sweep stays interactive (override with --denom).
  if (!raw.has("denom")) ctx.denom = 16;
  bench::print_banner("Extension: csrcolor multi-hash sweep (JP-gpu .. N=8)", ctx);

  support::Table table({"graph", "JP-gpu passes/colors/ms", "N=1 passes/colors/ms",
                        "N=2 passes/colors/ms", "N=4 passes/colors/ms",
                        "N=8 passes/colors/ms"});
  const coloring::RunOptions run = ctx.run_options();
  auto cell_for = [&](const graph::CsrGraph& g, std::uint32_t hashes, bool min_sets) {
    coloring::CsrColorOptions o;
    o.block_size = ctx.block;
    o.device = run.device;
    o.num_hashes = hashes;
    o.use_min_sets = min_sets;
    const auto r = coloring::csrcolor(g, o);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%u / %u / %.2f", r.iterations, r.num_colors,
                  r.model_ms);
    return std::string(buf);
  };
  for (const std::string& name : ctx.graphs) {
    const graph::CsrGraph& g = bench::get_graph(ctx, name);
    table.row()
        .cell(name)
        .cell(cell_for(g, 1, false))  // JP-gpu
        .cell(cell_for(g, 1, true))
        .cell(cell_for(g, 2, true))
        .cell(cell_for(g, 4, true))
        .cell(cell_for(g, 8, true));
  }
  bench::emit(table, ctx);
  std::cout << "expected shape: passes (and time) drop steeply from JP-gpu to\n"
               "N>=2 multi-hash; color counts grow moderately with N — the\n"
               "quality/speed trade the paper holds against the MIS family.\n";
  return 0;
}
