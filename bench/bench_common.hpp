#pragma once
/// \file bench_common.hpp
/// Shared harness for the per-figure/per-table benchmark binaries.
///
/// Every bench accepts:
///   --denom=N    vertex-count divisor vs. paper scale (default 8; 1 = full
///                paper scale). Machine-model caches scale by the same
///                factor so working-set/cache ratios match the paper.
///   --graphs=a,b comma-separated subset of the Table I suite. Entries
///                containing ':' are GeneratorSpec strings instead
///                ("model:key=value,..." per graph/genspec.hpp, e.g.
///                "ba:n=1m,attach=4") and are generated through the
///                sharded parallel pipeline at --threads concurrency —
///                bit-identical output at any thread count
///   --block=N    thread-block size (default 128, the paper's choice)
///   --seed=N     RNG seed for generators and algorithms
///   --threads=N  host threads for the simulator's wave executor (0 = one
///                per hardware thread, the default). Results are
///                bit-identical for every value; only wall-clock changes.
///   --devices=P  shard each run over P simulated GPUs (speckle::multidev;
///                data-driven schemes only; default 1)
///   --partitioner=contiguous|hash|bfs  multi-device vertex partitioner
///   --profile    run the schemes under the speckle::prof profiling layer
///                (benches that support it print a counter summary)
///   --check      record every launch into a speckle::check plan and run
///                the static dataflow checker (findings land in
///                RunResult::check; speckle_lint is the reporting tool)
///   --csv        emit CSV after the human-readable table
///   --graph-cache=DIR  binary on-disk cache for the generated suite
///                graphs, keyed by (name, denom, seed) with a format
///                version guard (src/graph/cache.hpp). Also enabled by the
///                SPECKLE_GRAPH_CACHE environment variable; the flag wins.

#include <string>
#include <vector>

#include "coloring/runner.hpp"
#include "graph/csr_graph.hpp"
#include "graph/partition.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace speckle::bench {

struct BenchContext {
  std::uint32_t denom = 8;
  std::uint32_t block = 128;
  std::uint64_t seed = 1;
  std::uint32_t threads = 0;  ///< simulator host threads; 0 = hardware
  std::uint32_t devices = 1;  ///< simulated GPUs (speckle::multidev when > 1)
  graph::PartitionKind partitioner = graph::PartitionKind::kContiguous;
  bool profile = false;       ///< enable DeviceConfig::profile
  bool check = false;         ///< enable DeviceConfig::check
  bool csv = false;
  std::string graph_cache;    ///< on-disk CSR cache dir; "" = disabled
  std::vector<std::string> graphs;  ///< suite names or "model:..." specs

  /// Run options with cache capacities scaled by `denom`.
  coloring::RunOptions run_options() const;
};

/// Parse the shared flags; aborts on unknown options beyond `extra_known`.
BenchContext parse_context(int argc, char** argv,
                           const std::vector<std::string>& extra_known = {});

/// Build (and memoize within the process) a suite graph at context scale.
const graph::CsrGraph& get_graph(const BenchContext& ctx, const std::string& name);

/// Print the bench banner: experiment id, scale, machine summary.
void print_banner(const std::string& title, const BenchContext& ctx);

/// Print the table and, if --csv, the CSV form.
void emit(const support::Table& table, const BenchContext& ctx);

}  // namespace speckle::bench
