/// \file bench_micro_graph.cpp
/// google-benchmark micro-benchmarks for the graph substrate: generator
/// throughput, CSR construction, ordering heuristics, and the sequential
/// greedy baseline (wall-clock, complementary to the cost model).

#include <benchmark/benchmark.h>

#include "coloring/ordering.hpp"
#include "coloring/seq_greedy.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace speckle;
using graph::build_csr;
using graph::CsrGraph;

void BM_RmatGenerate(benchmark::State& state) {
  const auto scale = static_cast<std::uint32_t>(state.range(0));
  const std::uint64_t edges = (1ULL << scale) * 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::rmat(scale, edges, graph::RmatParams{}, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_RmatGenerate)->Arg(12)->Arg(14)->Arg(16);

void BM_CsrBuild(benchmark::State& state) {
  const auto scale = static_cast<std::uint32_t>(state.range(0));
  const auto edges = graph::rmat(scale, (1ULL << scale) * 8, graph::RmatParams{}, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_csr(1u << scale, graph::EdgeList(edges)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_CsrBuild)->Arg(12)->Arg(14)->Arg(16);

void BM_Stencil3d(benchmark::State& state) {
  const auto d = static_cast<graph::vid_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::stencil3d(d, d, d));
  }
}
BENCHMARK(BM_Stencil3d)->Arg(16)->Arg(32)->Arg(48);

void BM_SeqGreedyWallClock(benchmark::State& state) {
  const auto scale = static_cast<std::uint32_t>(state.range(0));
  const CsrGraph g =
      build_csr(1u << scale, graph::rmat(scale, (1ULL << scale) * 8,
                                         graph::RmatParams{}, 1));
  coloring::SeqOptions opts;
  opts.charge_model = false;  // pure wall-clock measurement
  for (auto _ : state) {
    benchmark::DoNotOptimize(coloring::seq_greedy(g, opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_SeqGreedyWallClock)->Arg(12)->Arg(14)->Arg(16);

void BM_OrderingHeuristics(benchmark::State& state) {
  const CsrGraph g =
      build_csr(1u << 14, graph::rmat(14, (1ULL << 14) * 8, graph::RmatParams{}, 1));
  const auto ordering = static_cast<coloring::Ordering>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(coloring::make_order(g, ordering, 1));
  }
  state.SetLabel(coloring::ordering_name(ordering));
}
BENCHMARK(BM_OrderingHeuristics)
    ->Arg(static_cast<int>(coloring::Ordering::kFirstFit))
    ->Arg(static_cast<int>(coloring::Ordering::kLargestFirst))
    ->Arg(static_cast<int>(coloring::Ordering::kSmallestLast))
    ->Arg(static_cast<int>(coloring::Ordering::kRandom));

}  // namespace

BENCHMARK_MAIN();
