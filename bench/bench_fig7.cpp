/// \file bench_fig7.cpp
/// Reproduces **Fig 7** (the headline result): execution-time speedup of
/// every scheme over the sequential implementation, per graph plus the
/// geometric mean.
///
/// Paper's shape: 3-step GM ~0.66x (slower than sequential); T-base/T-ldg
/// ~2x, close to csrcolor; D-base/D-ldg ~3x, i.e. ~1.5x over csrcolor;
/// Hamrle3 is where the proposed schemes beat csrcolor the hardest;
/// G3_circuit (largest, sparsest) is the weak spot.

#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>

#include "bench_common.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  using coloring::Scheme;
  // --cycles appends a machine-diffable summary of the deterministic
  // simulation results: colors and iterations for every scheme, plus the
  // simulated GPU time. The speedup table above it is normalized to the
  // modeled CPU time, which hashes host heap addresses and therefore is not
  // stable across builds — the CI determinism golden diffs this section.
  const bool cycles = support::Options(argc, argv).get_bool("cycles", false);
  const bench::BenchContext ctx = bench::parse_context(argc, argv, {"cycles"});
  bench::print_banner("Fig 7: runtime speedup normalized to sequential", ctx);

  std::vector<std::string> headers = {"graph", "seq ms"};
  std::vector<Scheme> gpu_schemes;
  for (Scheme s : coloring::paper_schemes()) {
    if (s == Scheme::kSequential) continue;
    gpu_schemes.push_back(s);
    headers.push_back(scheme_name(s));
  }
  support::Table table(headers);

  std::map<Scheme, std::vector<double>> speedups;
  std::ostringstream cycles_out;
  cycles_out << "graph,scheme,colors,iterations,gpu model ms\n";
  // --profile: per-scheme counter summary of the mechanisms behind the
  // speedups — RO-cache hit rate and DRAM transactions (the __ldg story)
  // and worklist-tail atomics per pushing block (the scan-push story).
  std::ostringstream prof_out;
  prof_out << "graph,scheme,ro_hit_rate,gld_txn,ldg_txn,dram_txn,"
              "tail_atomics,push_blocks,tail_atomics_per_block\n";
  const coloring::RunOptions opts = ctx.run_options();
  for (const std::string& name : ctx.graphs) {
    const graph::CsrGraph& g = bench::get_graph(ctx, name);
    const auto seq = run_scheme(Scheme::kSequential, g, opts);
    table.row().cell(name).cell_f(seq.model_ms);
    cycles_out << name << ",Sequential," << seq.num_colors << ","
               << seq.iterations << ",-\n";
    for (Scheme s : gpu_schemes) {
      const auto r = run_scheme(s, g, opts);
      const double speedup = seq.model_ms / r.model_ms;
      speedups[s].push_back(speedup);
      table.cell_ratio(speedup);
      cycles_out << name << "," << scheme_name(s) << "," << r.num_colors << ","
                 << r.iterations << ",";
      if (s == Scheme::kGm3Step) {
        // 3-step GM resolves on the (modeled) CPU, so its time inherits the
        // modeled-CPU instability — keep only the deterministic columns.
        cycles_out << "-\n";
      } else {
        cycles_out << std::fixed << std::setprecision(6) << r.model_ms << "\n";
      }
      if (ctx.profile) {
        std::uint64_t ro_h = 0, ro_m = 0, gld = 0, ldg = 0, dram = 0;
        std::uint64_t tail_atomics = 0, push_blocks = 0;
        for (const auto& lp : r.prof.launches) {
          ro_h += lp.ro_hits;
          ro_m += lp.ro_misses;
          gld += lp.ld_transactions;
          ldg += lp.ldg_transactions;
          dram += lp.dram_transactions();
          std::uint64_t launch_tail = 0;
          for (const auto& bc : lp.buffers) {
            if (bc.name.size() >= 5 &&
                bc.name.compare(bc.name.size() - 5, 5, ".tail") == 0) {
              launch_tail += bc.atomics;
            }
          }
          if (launch_tail > 0) {
            tail_atomics += launch_tail;
            push_blocks += lp.blocks;  // only kernels that push count
          }
        }
        prof_out << name << "," << scheme_name(s) << "," << std::fixed
                 << std::setprecision(4)
                 << (ro_h + ro_m > 0
                         ? static_cast<double>(ro_h) / (ro_h + ro_m)
                         : 0.0)
                 << "," << gld << "," << ldg << "," << dram << ","
                 << tail_atomics << "," << push_blocks << ",";
        if (push_blocks > 0) {
          prof_out << std::setprecision(2)
                   << static_cast<double>(tail_atomics) / push_blocks << "\n";
        } else {
          prof_out << "-\n";
        }
      }
    }
  }
  table.row().cell("geomean").cell("-");
  for (Scheme s : gpu_schemes) {
    table.cell_ratio(support::geomean(speedups[s]));
  }
  bench::emit(table, ctx);
  std::cout << "paper shape: 3-step GM ~0.66x; T-* ~2x (close to csrcolor);\n"
               "D-* ~3x (~1.5x over csrcolor); best case Hamrle3, worst\n"
               "G3_circuit.\n";
  if (cycles) {
    std::cout << "--- cycles ---\n" << cycles_out.str();
  }
  if (ctx.profile) {
    std::cout << "--- profile ---\n" << prof_out.str();
  }
  return 0;
}
