/// \file bench_fig7.cpp
/// Reproduces **Fig 7** (the headline result): execution-time speedup of
/// every scheme over the sequential implementation, per graph plus the
/// geometric mean.
///
/// Paper's shape: 3-step GM ~0.66x (slower than sequential); T-base/T-ldg
/// ~2x, close to csrcolor; D-base/D-ldg ~3x, i.e. ~1.5x over csrcolor;
/// Hamrle3 is where the proposed schemes beat csrcolor the hardest;
/// G3_circuit (largest, sparsest) is the weak spot.

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  using coloring::Scheme;
  const bench::BenchContext ctx = bench::parse_context(argc, argv);
  bench::print_banner("Fig 7: runtime speedup normalized to sequential", ctx);

  std::vector<std::string> headers = {"graph", "seq ms"};
  std::vector<Scheme> gpu_schemes;
  for (Scheme s : coloring::paper_schemes()) {
    if (s == Scheme::kSequential) continue;
    gpu_schemes.push_back(s);
    headers.push_back(scheme_name(s));
  }
  support::Table table(headers);

  std::map<Scheme, std::vector<double>> speedups;
  const coloring::RunOptions opts = ctx.run_options();
  for (const std::string& name : ctx.graphs) {
    const graph::CsrGraph& g = bench::get_graph(ctx, name);
    const auto seq = run_scheme(Scheme::kSequential, g, opts);
    table.row().cell(name).cell_f(seq.model_ms);
    for (Scheme s : gpu_schemes) {
      const auto r = run_scheme(s, g, opts);
      const double speedup = seq.model_ms / r.model_ms;
      speedups[s].push_back(speedup);
      table.cell_ratio(speedup);
    }
  }
  table.row().cell("geomean").cell("-");
  for (Scheme s : gpu_schemes) {
    table.cell_ratio(support::geomean(speedups[s]));
  }
  bench::emit(table, ctx);
  std::cout << "paper shape: 3-step GM ~0.66x; T-* ~2x (close to csrcolor);\n"
               "D-* ~3x (~1.5x over csrcolor); best case Hamrle3, worst\n"
               "G3_circuit.\n";
  return 0;
}
