/// \file bench_table1.cpp
/// Reproduces **Table I** (suite of benchmark graphs): for each graph,
/// the measured vertex/edge counts and degree statistics side by side with
/// the values the paper publishes (scaled by --denom where applicable).
/// This validates that the structural twins stand in faithfully for the
/// University of Florida matrices (DESIGN.md §2).

#include <iostream>

#include "bench_common.hpp"
#include "graph/analysis.hpp"
#include "graph/suite.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  const bench::BenchContext ctx = bench::parse_context(argc, argv);
  bench::print_banner("Table I: suite of benchmark graphs", ctx);

  support::Table table({"graph", "vertices", "paper/denom", "edges", "paper/denom",
                        "min deg (paper)", "max deg (paper)", "avg deg (paper)",
                        "variance (paper)", "spd", "application"});
  for (const std::string& name : ctx.graphs) {
    const auto& entry = graph::suite_entry(name);
    const graph::CsrGraph& g = bench::get_graph(ctx, name);
    const graph::DegreeReport r = graph::analyze_degrees(g);
    auto with_paper_u = [](std::uint64_t measured, std::uint64_t paper) {
      return std::to_string(measured) + " (" + std::to_string(paper) + ")";
    };
    auto with_paper_f = [](double measured, double paper) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.2f (%.2f)", measured, paper);
      return std::string(buf);
    };
    table.row()
        .cell(name)
        .cell_u64(r.num_vertices)
        .cell(support::format_si(
            static_cast<double>(entry.paper.num_vertices) / ctx.denom, 1))
        .cell_u64(r.num_edges)
        .cell(support::format_si(
            static_cast<double>(entry.paper.num_edges) / ctx.denom, 1))
        .cell(with_paper_u(r.min_degree, entry.paper.min_degree))
        .cell(with_paper_u(r.max_degree, entry.paper.max_degree))
        .cell(with_paper_f(r.avg_degree, entry.paper.avg_degree))
        .cell(with_paper_f(r.degree_variance, entry.paper.degree_variance))
        .cell(entry.spd ? "yes" : "no")
        .cell(entry.domain);
  }
  bench::emit(table, ctx);
  std::cout << "note: min/max degree and variance of the UF structural twins are\n"
               "expected to approximate, not equal, the published values; the\n"
               "R-MAT graphs use the paper's own generator and parameters.\n";
  return 0;
}
