/// \file exam_timetabling.cpp
/// Exam timetabling by graph coloring — the oldest application the paper
/// cites (Welsh & Powell 1967; Section II [1][2]): two exams that share a
/// student must not share a time slot, so slots are colors of the
/// exam-conflict graph.
///
/// This example synthesizes enrollments (students pick a handful of
/// courses, popularity follows a heavy tail), builds the conflict graph,
/// colors it with a GPU-sim scheme, refines the slot count with iterated
/// greedy, and prints the timetable statistics.
///
/// Usage: exam_timetabling [--courses=600] [--students=20000]
///                         [--per-student=5] [--scheme=D-base] [--seed=17]

#include <algorithm>
#include <iostream>
#include <vector>

#include "coloring/refine.hpp"
#include "coloring/runner.hpp"
#include "graph/builder.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  using graph::vid_t;
  support::Options opts(argc, argv);
  const auto courses = static_cast<vid_t>(opts.get_int("courses", 600));
  const auto students = static_cast<std::uint32_t>(opts.get_int("students", 20000));
  const auto per_student = static_cast<std::uint32_t>(opts.get_int("per-student", 5));
  const std::string scheme_name = opts.get_string("scheme", "D-base");
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 17));
  opts.validate({"courses", "students", "per-student", "scheme", "seed"});

  // Enrollment synthesis: course popularity ~ 1/rank (heavy tail), each
  // student picks per_student distinct courses.
  support::Xoshiro256 rng(seed);
  auto draw_course = [&]() {
    // Inverse-CDF of a Zipf-ish distribution via rejection on 1/x.
    for (;;) {
      const auto c = static_cast<vid_t>(rng.next_below(courses));
      if (rng.next_double() < 1.0 / (1.0 + c * 8.0 / courses)) return c;
    }
  };
  graph::EdgeList conflicts;
  for (std::uint32_t s = 0; s < students; ++s) {
    std::vector<vid_t> picks;
    while (picks.size() < per_student) {
      const vid_t c = draw_course();
      if (std::find(picks.begin(), picks.end(), c) == picks.end()) picks.push_back(c);
    }
    for (std::size_t i = 0; i < picks.size(); ++i) {
      for (std::size_t j = i + 1; j < picks.size(); ++j) {
        conflicts.push_back({picks[i], picks[j]});
      }
    }
  }
  const graph::CsrGraph g = graph::build_csr(courses, std::move(conflicts));
  std::cout << courses << " exams, " << students << " students: "
            << g.num_edges() / 2 << " conflicting exam pairs, worst exam clashes "
            << "with " << g.max_degree() << " others\n";

  const auto scheme = coloring::scheme_from_name(scheme_name);
  const coloring::RunResult r = coloring::run_scheme(scheme, g, {});
  std::cout << scheme_name << ": " << r.num_colors << " time slots ("
            << r.model_ms << " ms simulated)\n";

  const auto refined = coloring::iterated_greedy(g, r.coloring, {.rounds = 6});
  std::cout << "after iterated-greedy refinement: " << refined.colors_after
            << " slots\n";

  // Timetable summary: exams per slot.
  std::vector<vid_t> per_slot(refined.colors_after, 0);
  for (vid_t c = 0; c < courses; ++c) ++per_slot[refined.coloring[c] - 1];
  std::cout << "exams per slot:";
  for (vid_t count : per_slot) std::cout << ' ' << count;
  std::cout << "\n";

  const auto verify = coloring::verify_coloring(g, refined.coloring);
  std::cout << "clash check: " << verify.to_string() << "\n";
  return verify.proper ? 0 : 1;
}
