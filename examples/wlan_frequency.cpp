/// \file wlan_frequency.cpp
/// Frequency assignment for wireless access points (paper Section II,
/// application [14]): access points within interference range must use
/// different channels — vertex coloring of a random geometric disk graph.
///
/// This example scatters access points in a unit square, connects pairs
/// closer than the interference radius, colors the graph, and reports the
/// channel count against the 2.4 GHz band's 3 non-overlapping channels
/// (1/6/11), marking where the deployment is too dense.
///
/// Usage: wlan_frequency [--aps=5000] [--radius=0.02] [--scheme=T-ldg]
///                       [--seed=11]

#include <iostream>
#include <vector>

#include "coloring/runner.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  support::Options opts(argc, argv);
  const auto aps = static_cast<graph::vid_t>(opts.get_int("aps", 5000));
  const double radius = opts.get_double("radius", 0.02);
  const std::string scheme_name = opts.get_string("scheme", "T-ldg");
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 11));
  opts.validate({"aps", "radius", "scheme", "seed"});

  const graph::CsrGraph g =
      graph::build_csr(aps, graph::geometric(aps, radius, seed));
  const graph::DegreeReport deg = graph::analyze_degrees(g);
  std::cout << aps << " access points, interference radius " << radius << ": "
            << g.num_edges() / 2 << " interfering pairs, worst AP sees "
            << deg.max_degree << " neighbors\n";

  const auto scheme = coloring::scheme_from_name(scheme_name);
  const coloring::RunResult r = coloring::run_scheme(scheme, g, {});
  std::cout << scheme_name << ": assignment uses " << r.num_colors
            << " channels (" << r.model_ms << " ms simulated)\n";

  // Channel usage histogram, and which APs exceed the 3 clean 2.4GHz bands.
  const auto histogram = coloring::color_histogram(r.coloring);
  std::cout << "channel usage:";
  for (coloring::color_t c = 1; c < histogram.size(); ++c) {
    std::cout << " ch" << c << "=" << histogram[c];
  }
  std::cout << "\n";
  graph::vid_t overflow = 0;
  for (graph::vid_t v = 0; v < aps; ++v) {
    if (r.coloring[v] > 3) ++overflow;
  }
  if (overflow == 0) {
    std::cout << "deployment fits the 3 non-overlapping 2.4 GHz channels\n";
  } else {
    std::cout << overflow << " APs need channels beyond 1/6/11 — deployment "
                 "too dense for 2.4 GHz alone (add 5 GHz radios there)\n";
  }

  const auto verify = coloring::verify_coloring(g, r.coloring);
  std::cout << "interference check: " << verify.to_string() << "\n";
  return verify.proper ? 0 : 1;
}
