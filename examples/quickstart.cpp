/// \file quickstart.cpp
/// Minimal end-to-end tour of the library:
///   1. generate (or load) a graph,
///   2. color it with the paper's best scheme (D-ldg) on the simulated GPU,
///   3. verify the coloring and compare against the sequential baseline.
///
/// Usage:
///   quickstart [--graph=path.mtx] [--suite=rmat-er] [--denom=64]
///              [--scheme=D-ldg] [--block=128]

#include <iostream>

#include "coloring/runner.hpp"
#include "graph/analysis.hpp"
#include "graph/matrix_market.hpp"
#include "graph/suite.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  support::Options opts(argc, argv);
  const std::string mtx = opts.get_string("graph", "");
  const std::string suite = opts.get_string("suite", "rmat-er");
  const auto denom = static_cast<std::uint32_t>(opts.get_int("denom", 64));
  const std::string scheme_name = opts.get_string("scheme", "D-ldg");
  const auto block = static_cast<std::uint32_t>(opts.get_int("block", 128));
  const bool kernels = opts.get_bool("kernels", false);
  opts.validate({"graph", "suite", "denom", "scheme", "block", "kernels"});

  // 1. Get a graph: a Matrix Market file if given, else a suite graph.
  const graph::CsrGraph g = mtx.empty() ? graph::make_suite_graph(suite, denom)
                                        : graph::read_matrix_market(mtx);
  const graph::DegreeReport deg = graph::analyze_degrees(g);
  std::cout << "graph: " << (mtx.empty() ? suite : mtx) << "  n=" << deg.num_vertices
            << "  m=" << deg.num_edges << "  avg deg=" << deg.avg_degree << "\n";

  // 2. Color on the simulated K20c.
  coloring::RunOptions run;
  run.block_size = block;
  // Reduced-scale runs shrink the machine models' caches by the same factor
  // so cache-to-working-set ratios match the paper-scale experiment.
  if (mtx.empty() && denom > 1) run.scale_caches(denom);
  const auto scheme = coloring::scheme_from_name(scheme_name);
  const coloring::RunResult r = coloring::run_scheme(scheme, g, run);

  // 3. Compare with the sequential greedy baseline.
  const coloring::RunResult seq =
      coloring::run_scheme(coloring::Scheme::kSequential, g, run);

  std::cout << scheme_name << ": " << r.num_colors << " colors in "
            << r.iterations << " iterations, " << r.model_ms << " ms (model)\n"
            << "sequential: " << seq.num_colors << " colors, " << seq.model_ms
            << " ms (model)\n"
            << "speedup over sequential: " << seq.model_ms / r.model_ms << "x\n";

  if (kernels) {
    std::cout << "kernel log (cycles, gld, l2 hit%, ro hit%, atomics):\n";
    for (const auto& k : r.report.kernels) {
      const double l2_pct = k.l2_hits + k.l2_misses
                                ? 100.0 * k.l2_hits / (k.l2_hits + k.l2_misses)
                                : 0.0;
      const double ro_pct = k.ro_hits + k.ro_misses
                                ? 100.0 * k.ro_hits / (k.ro_hits + k.ro_misses)
                                : 0.0;
      std::cout << "  " << k.name << ": " << k.cycles << " cy, " << k.gld_transactions
                << " gld, " << l2_pct << "% l2, " << ro_pct << "% ro, " << k.atomics
                << " atomics\n";
    }
    std::cout << "  transfers: h2d " << r.report.h2d.bytes << " B/"
              << r.report.h2d.cycles << " cy, d2h " << r.report.d2h.bytes << " B/"
              << r.report.d2h.cycles << " cy\n";
  }

  // run_scheme verifies internally; show it explicitly for the tour.
  const auto verify = coloring::verify_coloring(g, r.coloring);
  std::cout << "verification: " << verify.to_string() << "\n";
  return verify.proper ? 0 : 1;
}
