/// \file chromatic_scheduling.cpp
/// The paper's motivating application (Section I): using graph coloring to
/// discover concurrency in sparse iterative solvers — here a Gauss–Seidel
/// smoother for the 2-D Poisson problem, as in HPCG and ILU factorization.
///
/// Classic Gauss–Seidel is sequential: updating x[v] uses the freshest
/// values of its neighbors. But vertices with the same color share no edge,
/// so an entire color class can be updated in parallel (multi-color
/// Gauss–Seidel). This example:
///   1. builds the 5-point stencil graph of an N x N grid,
///   2. colors it with the paper's best scheme (D-ldg) on the simulated GPU,
///   3. runs a multi-color Gauss–Seidel sweep (OpenMP over each class) and
///      checks it converges like the sequential sweep,
///   4. reports the parallelism profile (class sizes = per-superstep width).
///
/// Usage: chromatic_scheduling [--n=256] [--sweeps=50] [--scheme=D-ldg]

#include <cmath>
#include <iostream>
#include <vector>

#include "coloring/runner.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/check.hpp"
#include "support/options.hpp"
#include "support/timer.hpp"

namespace {

using namespace speckle;
using graph::CsrGraph;
using graph::vid_t;

/// One Gauss–Seidel sweep for -laplace(u) = b on the grid graph, visiting
/// vertices in the order the schedule dictates. Returns the residual norm.
double gs_sweep(const CsrGraph& g, const std::vector<double>& b,
                std::vector<double>& x,
                const std::vector<std::vector<vid_t>>& schedule) {
  for (const auto& cls : schedule) {
    // Vertices within a color class are independent: safe to parallelize.
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(cls.size()); ++i) {
      const vid_t v = cls[static_cast<std::size_t>(i)];
      double sum = b[v];
      for (vid_t w : g.neighbors(v)) sum += x[w];
      x[v] = sum / (g.degree(v) + 1.0);  // diagonally dominant Laplacian
    }
  }
  double norm = 0.0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    double r = b[v] - (g.degree(v) + 1.0) * x[v];
    for (vid_t w : g.neighbors(v)) r += x[w];
    norm += r * r;
  }
  return std::sqrt(norm);
}

}  // namespace

int main(int argc, char** argv) {
  support::Options opts(argc, argv);
  const auto n = static_cast<vid_t>(opts.get_int("n", 256));
  const auto sweeps = static_cast<std::uint32_t>(opts.get_int("sweeps", 50));
  const std::string scheme_name = opts.get_string("scheme", "D-ldg");
  opts.validate({"n", "sweeps", "scheme"});

  const CsrGraph g = graph::build_csr(n * n, graph::stencil2d(n, n));
  std::cout << "grid " << n << "x" << n << ": " << g.num_vertices()
            << " unknowns, " << g.num_edges() << " couplings\n";

  // Color on the simulated GPU.
  const auto scheme = coloring::scheme_from_name(scheme_name);
  const coloring::RunResult colored = coloring::run_scheme(scheme, g, {});
  std::cout << scheme_name << " coloring: " << colored.num_colors << " colors in "
            << colored.model_ms << " ms (simulated)\n";

  // Build the chromatic schedule: one superstep per color class.
  std::vector<std::vector<vid_t>> schedule(colored.num_colors);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    schedule[colored.coloring[v] - 1].push_back(v);
  }
  std::cout << "parallelism per superstep:";
  for (const auto& cls : schedule) std::cout << ' ' << cls.size();
  std::cout << " (ideal " << g.num_vertices() / colored.num_colors << ")\n";

  // Solve with the chromatic schedule and with the sequential order.
  std::vector<double> b(g.num_vertices(), 1.0);
  std::vector<double> x_color(g.num_vertices(), 0.0);
  std::vector<double> x_seq(g.num_vertices(), 0.0);
  std::vector<std::vector<vid_t>> seq_schedule(1);
  for (vid_t v = 0; v < g.num_vertices(); ++v) seq_schedule[0].push_back(v);

  double res_color = 0.0, res_seq = 0.0;
  support::Timer timer;
  for (std::uint32_t s = 0; s < sweeps; ++s) res_color = gs_sweep(g, b, x_color, schedule);
  const double ms_color = timer.milliseconds();
  timer.reset();
  for (std::uint32_t s = 0; s < sweeps; ++s) res_seq = gs_sweep(g, b, x_seq, seq_schedule);
  const double ms_seq = timer.milliseconds();

  std::cout << "after " << sweeps << " sweeps: residual (chromatic) = " << res_color
            << ", residual (sequential) = " << res_seq << "\n"
            << "wall time: chromatic " << ms_color << " ms vs sequential " << ms_seq
            << " ms (gap depends on host core count)\n";

  // Multi-color GS must converge at essentially the sequential rate.
  SPECKLE_CHECK(res_color < 1e-6 || res_color < 2.0 * res_seq + 1e-9,
                "chromatic schedule failed to converge comparably");
  std::cout << "chromatic schedule converges comparably: OK\n";
  return 0;
}
