/// \file jacobian_compression.cpp
/// Sparse Jacobian compression by graph coloring (the Curtis–Powell–Reid
/// method; paper Section II's sparse-matrix application family).
///
/// To estimate a sparse Jacobian J with finite differences, structurally
/// orthogonal columns (no shared nonzero row) can be evaluated with ONE
/// forward difference: J * d for a seed vector d that sums the group's
/// unit vectors. Structurally orthogonal groups are exactly the color
/// classes of the *column intersection graph* — two columns adjacent iff
/// some row contains both. This example:
///   1. synthesizes a random sparse m x n function sparsity pattern,
///   2. builds the column intersection graph,
///   3. colors it on the simulated GPU,
///   4. reports the compression: n function evaluations -> num_colors,
///   5. verifies group orthogonality directly against the pattern.
///
/// Usage: jacobian_compression [--rows=4000] [--cols=3000] [--nnz-per-row=5]
///                             [--scheme=D-base] [--seed=3]

#include <algorithm>
#include <iostream>
#include <vector>

#include "coloring/partial_d2.hpp"
#include "coloring/runner.hpp"
#include "graph/bipartite.hpp"
#include "support/check.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace speckle;
  using graph::vid_t;
  support::Options opts(argc, argv);
  const auto rows = static_cast<vid_t>(opts.get_int("rows", 4000));
  const auto cols = static_cast<vid_t>(opts.get_int("cols", 3000));
  const auto nnz_per_row = static_cast<vid_t>(opts.get_int("nnz-per-row", 5));
  const std::string scheme_name = opts.get_string("scheme", "D-base");
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 3));
  opts.validate({"rows", "cols", "nnz-per-row", "scheme", "seed"});

  // 1. Sparsity pattern: each row touches nnz_per_row random columns.
  const graph::SparsePattern pattern =
      graph::random_pattern(rows, cols, nnz_per_row, seed);

  // 2. Column intersection graph: columns adjacent iff they share a row.
  const graph::CsrGraph g = graph::column_intersection_graph(pattern);
  std::cout << "pattern: " << rows << "x" << cols << ", column intersection graph "
            << g.num_edges() / 2 << " edges, max column degree " << g.max_degree()
            << "\n";

  // 3. Color on the simulated GPU.
  const auto scheme = coloring::scheme_from_name(scheme_name);
  const coloring::RunResult r = coloring::run_scheme(scheme, g, {});

  // 4. Compression report.
  std::cout << scheme_name << ": " << r.num_colors << " structurally orthogonal "
            << "groups (" << r.model_ms << " ms simulated)\n"
            << "Jacobian estimation cost: " << cols
            << " evaluations uncompressed -> " << r.num_colors
            << " with seeds (" << static_cast<double>(cols) / r.num_colors
            << "x compression)\n";

  // 5. Verify directly against the pattern (not just the graph): within a
  // row, no two columns share a group — and cross-check with the direct
  // partial distance-2 greedy, which colors the pattern without ever
  // materializing the intersection graph.
  SPECKLE_CHECK(coloring::verify_partial_d2(pattern, r.coloring).proper,
                "two columns of one row landed in the same group");
  const auto direct = coloring::partial_d2_greedy(pattern);
  std::cout << "orthogonality check over all " << rows << " rows: OK\n"
            << "direct partial-D2 greedy (no intersection graph): "
            << direct.num_colors << " groups\n";
  return 0;
}
