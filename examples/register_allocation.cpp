/// \file register_allocation.cpp
/// Chaitin-style register allocation (paper Section II, application [4]):
/// virtual registers that are live at the same time interfere and must not
/// share a physical register — exactly vertex coloring of the interference
/// graph.
///
/// This example generates a synthetic straight-line program of virtual
/// registers with random live ranges, builds the interference graph
/// (interval overlap), colors it with a GPU-sim scheme, and reports how
/// many physical registers the program needs, with spill analysis for a
/// fixed register file.
///
/// Usage: register_allocation [--vregs=2000] [--len=10000] [--k=16]
///                            [--scheme=D-base] [--seed=7]

#include <algorithm>
#include <iostream>
#include <vector>

#include "coloring/runner.hpp"
#include "graph/builder.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"

namespace {

using namespace speckle;
using graph::vid_t;

struct LiveRange {
  std::uint32_t start;
  std::uint32_t end;  // exclusive
};

}  // namespace

int main(int argc, char** argv) {
  support::Options opts(argc, argv);
  const auto vregs = static_cast<vid_t>(opts.get_int("vregs", 2000));
  const auto program_len = static_cast<std::uint32_t>(opts.get_int("len", 10000));
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 16));
  const std::string scheme_name = opts.get_string("scheme", "D-base");
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 7));
  opts.validate({"vregs", "len", "k", "scheme", "seed"});

  // Synthesize live ranges: definition point uniform, lifetime geometric-ish.
  support::Xoshiro256 rng(seed);
  std::vector<LiveRange> ranges(vregs);
  for (auto& r : ranges) {
    r.start = static_cast<std::uint32_t>(rng.next_below(program_len));
    const auto len = 1 + static_cast<std::uint32_t>(rng.next_below(200));
    r.end = std::min(r.start + len, program_len);
  }

  // Interference graph: sweep-line over range endpoints, O(overlaps).
  std::vector<vid_t> by_start(vregs);
  for (vid_t v = 0; v < vregs; ++v) by_start[v] = v;
  std::sort(by_start.begin(), by_start.end(), [&](vid_t a, vid_t b) {
    return ranges[a].start < ranges[b].start;
  });
  graph::EdgeList interference;
  std::vector<vid_t> active;
  for (vid_t v : by_start) {
    std::erase_if(active, [&](vid_t w) { return ranges[w].end <= ranges[v].start; });
    for (vid_t w : active) interference.push_back({v, w});
    active.push_back(v);
  }
  const graph::CsrGraph g = graph::build_csr(vregs, std::move(interference));
  std::cout << "interference graph: " << g.num_vertices() << " vregs, "
            << g.num_edges() / 2 << " interferences, max simultaneous liveness "
            << g.max_degree() + 1 << "\n";

  // Color = assign physical registers.
  const auto scheme = coloring::scheme_from_name(scheme_name);
  const coloring::RunResult r = coloring::run_scheme(scheme, g, {});
  std::cout << scheme_name << ": program fits in " << r.num_colors
            << " physical registers (" << r.model_ms << " ms simulated, "
            << r.iterations << " rounds)\n";

  // Spill report for a k-register machine: vregs colored beyond k spill.
  vid_t spilled = 0;
  for (vid_t v = 0; v < vregs; ++v) {
    if (r.coloring[v] > k) ++spilled;
  }
  std::cout << "with a " << k << "-register file: " << spilled << " of " << vregs
            << " vregs spill (" << 100.0 * spilled / vregs << "%)\n";

  // Sanity: no two interfering vregs share a register.
  const auto verify = coloring::verify_coloring(g, r.coloring);
  std::cout << "allocation check: " << verify.to_string() << "\n";
  return verify.proper ? 0 : 1;
}
