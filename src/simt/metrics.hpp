#pragma once
/// \file metrics.hpp
/// Human-readable reporting over simulator results: the per-kernel profile
/// table (an nvprof-like view), the stall breakdown of Fig 3(b), and an
/// occupancy calculator report for launch tuning (Fig 8's mechanism).

#include <string>

#include "simt/config.hpp"
#include "simt/stats.hpp"

namespace speckle::simt {

/// Per-kernel profile: grid/block, cycles, ms, transactions, hit rates,
/// achieved IPC and bandwidth fractions.
std::string format_kernel_table(const DeviceReport& report, const DeviceConfig& dev);

/// One line per stall reason with percentages, plus busy/total.
std::string format_stall_breakdown(const StallBreakdown& stalls);

/// Occupancy analysis for a launch: resident blocks/warps per SM and which
/// resource (blocks, warps, registers, scratchpad) limits them.
struct OccupancyReport {
  std::uint32_t resident_blocks = 0;
  std::uint32_t resident_warps = 0;
  double occupancy = 0.0;  ///< resident warps / max warps
  std::string limiter;     ///< "registers", "warps", "blocks", "scratchpad"
};
OccupancyReport analyze_occupancy(const DeviceConfig& dev, const LaunchConfig& cfg);

}  // namespace speckle::simt
