#pragma once
/// \file trace.hpp
/// Per-thread operation traces and their merge into SIMT warp traces.
///
/// Functional execution runs each thread to completion, appending compact
/// ops. At warp retirement the 32 per-lane streams are merged index-aligned:
/// the i-th op of each still-active lane forms one warp instruction; lanes
/// whose current op differs in kind (divergence) are serialized into
/// separate warp instructions, and lanes that ran out of ops drop out —
/// which is exactly how degree imbalance turns into SIMD underutilization
/// on real hardware. Memory instructions are coalesced into 128-byte line
/// transactions at merge time.

#include <cstdint>
#include <span>
#include <vector>

#include "simt/config.hpp"

namespace speckle::simt {

enum class OpKind : std::uint8_t {
  kCompute = 0,  ///< bundle of ALU work (count = instructions)
  kLoad,
  kStore,
  kAtomic,
  kSharedAccess,  ///< scratchpad load/store
  kSync,          ///< block-wide barrier
};

enum class Space : std::uint8_t {
  kGlobal = 0,   ///< normal global load/store (DRAM -> L2 -> registers)
  kReadOnly,     ///< __ldg path (DRAM -> L2 -> per-SM read-only cache)
};

/// One dynamic operation of one thread.
struct ThreadOp {
  OpKind kind;
  Space space;
  std::uint16_t count;  ///< compute: #instructions; others: 1
  std::uint64_t addr;   ///< device address (memory ops)
  std::uint8_t size;    ///< access bytes (memory ops)
};

/// Append-only per-thread trace; adjacent compute ops are merged.
class ThreadTrace {
 public:
  void compute(std::uint32_t instructions);
  void memory(OpKind kind, Space space, std::uint64_t addr, std::uint8_t size);
  void shared_access();
  void sync();

  std::span<const ThreadOp> ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }
  void clear() { ops_.clear(); }

 private:
  std::vector<ThreadOp> ops_;
};

/// One SIMT instruction of a warp (post-merge, post-coalescing).
struct WarpOp {
  OpKind kind;
  Space space;
  std::uint16_t inst_count;   ///< compute: max instruction count over lanes
  std::uint16_t active_lanes;
  /// Memory ops: coalesced 128-byte line addresses.
  /// Atomics: the per-lane word addresses (serialization is per address).
  std::vector<std::uint64_t> addrs;
};

struct WarpTrace {
  std::vector<WarpOp> ops;

  std::uint64_t instruction_count() const { return ops.size(); }
};

/// Merge up to warp_size per-lane traces into a warp trace.
/// `line_bytes` is the coalescing granularity.
WarpTrace merge_warp(std::span<const ThreadTrace> lanes, std::uint32_t line_bytes);

/// Coalesce lane addresses (each `size` bytes wide) into distinct line
/// addresses. Exposed for direct testing.
std::vector<std::uint64_t> coalesce(std::span<const std::uint64_t> addrs,
                                    std::span<const std::uint8_t> sizes,
                                    std::uint32_t line_bytes);

}  // namespace speckle::simt
