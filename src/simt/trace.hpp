#pragma once
/// \file trace.hpp
/// Per-thread operation traces and their merge into SIMT warp traces.
///
/// Functional execution runs each thread to completion, appending compact
/// ops. At warp retirement the 32 per-lane streams are merged index-aligned:
/// the i-th op of each still-active lane forms one warp instruction; lanes
/// whose current op differs in kind (divergence) are serialized into
/// separate warp instructions, and lanes that ran out of ops drop out —
/// which is exactly how degree imbalance turns into SIMD underutilization
/// on real hardware. Memory instructions are coalesced into 128-byte line
/// transactions at merge time.
///
/// Hot-path layout (see docs/simulator.md §10): both trace classes are
/// structure-of-arrays with capacity retained across clear(), so the
/// execute→merge→time pipeline performs zero heap allocation in steady
/// state. The merge participation scan touches only the 2-byte (kind,
/// space) key stream — one cache line covers a whole warp — and memory
/// instructions stream through a fixed-size Coalescer scratch instead of
/// building intermediate per-lane vectors.

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "simt/config.hpp"
#include "support/check.hpp"

namespace speckle::simt {

enum class OpKind : std::uint8_t {
  kCompute = 0,  ///< bundle of ALU work (count = instructions)
  kLoad,
  kStore,
  kAtomic,
  kSharedAccess,  ///< scratchpad load/store
  kSync,          ///< block-wide barrier
};

enum class Space : std::uint8_t {
  kGlobal = 0,   ///< normal global load/store (DRAM -> L2 -> registers)
  kReadOnly,     ///< __ldg path (DRAM -> L2 -> per-SM read-only cache)
};

/// One dynamic operation of one thread, as materialized from the SoA
/// storage (tests and slow paths; the hot loops read the arrays directly).
/// Layout-packed: the address leads so the struct needs no internal padding.
struct ThreadOp {
  std::uint64_t addr;   ///< device address (memory ops)
  std::uint16_t count;  ///< compute: #instructions; others: 1
  OpKind kind;
  Space space;
  std::uint8_t size;    ///< access bytes (memory ops)
};
static_assert(sizeof(ThreadOp) <= 16, "ThreadOp must stay register-friendly");

/// Append-only per-thread trace; adjacent compute ops are merged.
/// Structure-of-arrays: the merge inner loops scan the 2-byte key stream
/// (kind<<8 | space) without dragging addresses through the cache.
/// clear() retains capacity, so a trace owned by an executor arena stops
/// allocating once warm.
class ThreadTrace {
 public:
  static constexpr std::uint16_t make_key(OpKind kind, Space space) {
    return static_cast<std::uint16_t>((static_cast<std::uint16_t>(kind) << 8) |
                                      static_cast<std::uint16_t>(space));
  }

  // The append methods are header-defined: functional execution calls them
  // once per dynamic instruction (hundreds of millions per bench run), so
  // they must inline into the kernel lambdas.
  void compute(std::uint32_t instructions) {
    if (instructions == 0) return;
    constexpr std::uint16_t compute_key = make_key(OpKind::kCompute, Space::kGlobal);
    if (!key_.empty() && key_.back() == compute_key &&
        cs_.back() + instructions <= 0xffff) {
      cs_.back() = static_cast<std::uint16_t>(cs_.back() + instructions);
      return;
    }
    while (instructions > 0xffff) {
      push(compute_key, 0xffff, 0);
      instructions -= 0xffff;
    }
    push(compute_key, static_cast<std::uint16_t>(instructions), 0);
  }
  void memory(OpKind kind, Space space, std::uint64_t addr, std::uint8_t size) {
    // Line-size-agnostic straddle summary: op i straddles a B-byte line
    // (power of two) iff addr ^ (addr + size - 1) >= B, so the running OR
    // answers "could any access straddle?" for every B with one compare.
    // A zero-size access underflows to a huge XOR exactly when the lines_out
    // fast path in merge_warp would mishandle it (see emit_mem).
    straddle_or_ |= addr ^ (addr + size - 1);
    push(make_key(kind, space), size, addr);
  }
  void shared_access() {
    push(make_key(OpKind::kSharedAccess, Space::kGlobal), 0, 0);
  }
  void sync() { push(make_key(OpKind::kSync, Space::kGlobal), 0, 0); }

  std::size_t size() const { return key_.size(); }
  bool empty() const { return key_.empty(); }
  void clear() {
    key_.clear();
    cs_.clear();
    addr_.clear();
    straddle_or_ = 0;
  }

  /// OR over memory ops of `addr ^ (addr + size - 1)`: compared against the
  /// line size, answers whether any access of this trace can straddle a
  /// line boundary (merge_warp checks it once per warp instead of per lane
  /// per op).
  std::uint64_t straddle_or() const { return straddle_or_; }

  std::uint16_t key(std::size_t i) const { return key_[i]; }
  /// Raw streams for the merge loops (hoisted out of the per-round scans).
  /// `cs` is the overlaid count-or-size stream: a compute op's instruction
  /// count, a memory op's access width in bytes — the two are never
  /// meaningful for the same op, so one append covers both.
  const std::uint16_t* key_data() const { return key_.data(); }
  const std::uint16_t* cs_data() const { return cs_.data(); }
  const std::uint64_t* addr_data() const { return addr_.data(); }
  std::uint16_t count(std::size_t i) const {
    return kind(i) == OpKind::kCompute ? cs_[i] : 1;
  }
  std::uint64_t addr(std::size_t i) const { return addr_[i]; }
  std::uint8_t access_size(std::size_t i) const {
    return kind(i) == OpKind::kCompute ? 0 : static_cast<std::uint8_t>(cs_[i]);
  }
  OpKind kind(std::size_t i) const { return static_cast<OpKind>(key_[i] >> 8); }
  Space space(std::size_t i) const {
    return static_cast<Space>(key_[i] & 0xff);
  }

  /// Materialize op `i` (tests, diagnostics).
  ThreadOp op(std::size_t i) const {
    return {addr_[i], count(i), kind(i), space(i), access_size(i)};
  }

 private:
  void push(std::uint16_t key, std::uint16_t cs, std::uint64_t addr) {
    key_.push_back(key);
    cs_.push_back(cs);
    addr_.push_back(addr);
  }

  std::vector<std::uint16_t> key_;
  std::vector<std::uint16_t> cs_;   ///< compute: #instructions; memory: bytes
  std::vector<std::uint64_t> addr_;
  std::uint64_t straddle_or_ = 0;   ///< see straddle_or()
};

/// Streams lane addresses (each `size` bytes wide) into a sorted,
/// deduplicated set of line addresses using a fixed-size scratch array —
/// no allocation, and O(1) per access in the common case where warp
/// addresses arrive in ascending order. Produces exactly the sequence the
/// old sort+unique implementation did.
class Coalescer {
 public:
  explicit Coalescer(std::uint32_t line_bytes) : line_bytes_(line_bytes) {
    // Every modeled device uses a power-of-two line; precompute the shift so
    // the per-lane line split below is two shifts instead of two 64-bit
    // divisions (the merge loop performs hundreds of millions of adds).
    SPECKLE_CHECK(line_bytes != 0 && (line_bytes & (line_bytes - 1)) == 0,
                  "coalescing granularity must be a power of two");
    while ((1u << line_shift_) < line_bytes) ++line_shift_;
  }

  void reset() { n_ = 0; }

  void add(std::uint64_t addr, std::uint32_t size) {
    const std::uint64_t first = addr >> line_shift_;
    const std::uint64_t last = (addr + size - 1) >> line_shift_;
    for (std::uint64_t line = first; line <= last; ++line) {
      insert(line << line_shift_);
    }
  }

  std::span<const std::uint64_t> lines() const { return {lines_.data(), n_}; }

 private:
  void insert(std::uint64_t line) {
    if (n_ > 0 && lines_[n_ - 1] == line) return;  // repeat of the last line
    if (n_ == 0 || line > lines_[n_ - 1]) {        // ascending: append
      SPECKLE_CHECK(n_ < kCapacity, "coalescer scratch overflow");
      lines_[n_++] = line;
      return;
    }
    // Out-of-order lane: binary search for the slot, skip duplicates.
    // (A predicated branchless search plus memmove was tried and measured
    // 2x slower here: the branchy search lets the core speculate the next
    // probe instead of serializing the load chain.)
    std::size_t lo = 0, hi = n_;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (lines_[mid] < line) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < n_ && lines_[lo] == line) return;
    SPECKLE_CHECK(n_ < kCapacity, "coalescer scratch overflow");
    for (std::size_t i = n_; i > lo; --i) lines_[i] = lines_[i - 1];
    lines_[lo] = line;
    ++n_;
  }

  /// 32 lanes x up to 3 lines each (a 255-byte access can straddle two
  /// 128-byte boundaries) with headroom.
  static constexpr std::size_t kCapacity = 128;
  std::array<std::uint64_t, kCapacity> lines_{};
  std::size_t n_ = 0;
  std::uint32_t line_bytes_;
  std::uint32_t line_shift_ = 0;  ///< log2(line_bytes)
};

/// One SIMT instruction of a warp, viewed out of the SoA WarpTrace.
struct WarpOpView {
  OpKind kind;
  Space space;
  std::uint16_t inst_count;   ///< compute: max instruction count over lanes
  std::uint16_t active_lanes;
  /// Memory ops: coalesced 128-byte line addresses.
  /// Atomics: the per-lane word addresses (serialization is per address).
  std::span<const std::uint64_t> addrs;
};

/// A warp's merged instruction stream. Structure-of-arrays with one shared
/// address pool: no per-instruction vectors, and clear() retains every
/// buffer so a BlockWork slot reused across waves stops allocating.
class WarpTrace {
 public:
  std::size_t size() const { return meta_.size(); }
  bool empty() const { return meta_.empty(); }
  std::uint64_t instruction_count() const { return size(); }

  void clear() {
    meta_.clear();
    lanes_.clear();
    addrs_.clear();
    syncs_ = 0;
  }

  /// Append one instruction with its (possibly empty) address list.
  void push_op(OpKind kind, Space space, std::uint16_t inst_count,
               std::uint16_t active_lanes,
               std::span<const std::uint64_t> addrs = {}) {
    meta_.push_back(pack_meta(kind, space, inst_count,
                              static_cast<std::uint32_t>(addrs_.size())));
    lanes_.push_back(active_lanes);
    addrs_.insert(addrs_.end(), addrs.begin(), addrs.end());
    syncs_ += kind == OpKind::kSync;
  }

  OpKind kind(std::size_t i) const {
    return static_cast<OpKind>(meta_[i] & 0xff);
  }

  /// Number of kSync ops, maintained at append time so the timing engine's
  /// barrier setup does not rescan every trace each wave.
  std::uint32_t sync_count() const { return syncs_; }

  // Field accessors for the timing event loop: it switches on kind(i) first
  // and then reads only what that op kind consumes. kind, space, inst count
  // and address offset are packed into one 64-bit meta word so the loop
  // touches a single stream per op regardless of which fields it needs
  // (active_lanes lives in a cold side array — timing never reads it).
  Space space(std::size_t i) const {
    return static_cast<Space>((meta_[i] >> 8) & 0xff);
  }
  std::uint16_t inst_count(std::size_t i) const {
    return static_cast<std::uint16_t>(meta_[i] >> 16);
  }
  std::span<const std::uint64_t> addr_span(std::size_t i) const {
    return addr_span_at(meta_[i], i);
  }

  // Raw-word variants: the event loop loads meta(i) into a register once
  // and decodes every field from it. The per-index accessors above would
  // each re-load meta_[i] — the loop's stores to its own runtime state
  // defeat the compiler's alias analysis between them.
  std::uint64_t meta(std::size_t i) const { return meta_[i]; }
  static OpKind meta_kind(std::uint64_t m) {
    return static_cast<OpKind>(m & 0xff);
  }
  static Space meta_space(std::uint64_t m) {
    return static_cast<Space>((m >> 8) & 0xff);
  }
  static std::uint16_t meta_inst_count(std::uint64_t m) {
    return static_cast<std::uint16_t>(m >> 16);
  }
  /// addr_span when op `i`'s meta word `m` is already in hand (still loads
  /// the next op's word for the end offset — that is the pool's layout).
  std::span<const std::uint64_t> addr_span_at(std::uint64_t m, std::size_t i) const {
    const std::size_t begin = m >> 32;
    const std::size_t end =
        i + 1 < meta_.size() ? meta_[i + 1] >> 32 : addrs_.size();
    return {addrs_.data() + begin, end - begin};
  }

  WarpOpView op(std::size_t i) const {
    return {kind(i), space(i), inst_count(i), lanes_[i], addr_span(i)};
  }

 private:
  /// [63:32] offset into addrs_, [31:16] inst count, [15:8] space, [7:0] kind.
  static constexpr std::uint64_t pack_meta(OpKind kind, Space space,
                                           std::uint16_t inst_count,
                                           std::uint32_t addr_begin) {
    return static_cast<std::uint64_t>(addr_begin) << 32 |
           static_cast<std::uint64_t>(inst_count) << 16 |
           static_cast<std::uint64_t>(space) << 8 |
           static_cast<std::uint64_t>(kind);
  }

  std::vector<std::uint64_t> meta_;   ///< packed per-op hot fields
  std::vector<std::uint16_t> lanes_;  ///< active lanes (stats/tests only)
  std::vector<std::uint64_t> addrs_;  ///< shared address pool
  std::uint32_t syncs_ = 0;           ///< running count of kSync ops
};

/// Merge up to warp_size per-lane traces into `out` (cleared first).
/// `line_bytes` is the coalescing granularity. Fully-converged rounds —
/// every lane alive and at the same (kind, space), the overwhelmingly
/// common case for the T-*/D-* kernels — take a single-pass fast path.
void merge_warp(std::span<const ThreadTrace> lanes, std::uint32_t line_bytes,
                WarpTrace& out);

/// Convenience wrapper for tests.
WarpTrace merge_warp(std::span<const ThreadTrace> lanes, std::uint32_t line_bytes);

/// Coalesce lane addresses (each `size` bytes wide) into distinct line
/// addresses. Exposed for direct testing; the merge hot path streams
/// through a Coalescer instead.
std::vector<std::uint64_t> coalesce(std::span<const std::uint64_t> addrs,
                                    std::span<const std::uint8_t> sizes,
                                    std::uint32_t line_bytes);

}  // namespace speckle::simt
