#pragma once
/// \file cache.hpp
/// Set-associative LRU cache model used for the per-SM read-only data cache
/// and the device-wide L2. Tracks tags only — data flows through the
/// functional layer; the model answers "hit or miss" and keeps counters.
///
/// Hot-path layout: one flat tag array indexed by shift-mask when the set
/// count is a power of two, with each set's ways kept in recency order —
/// position 0 is the MRU way, position ways-1 the LRU way. Recency updates
/// are a move-to-front memmove of at most ways-1 tags (a no-op for the
/// dominant re-touch-the-MRU pattern), eviction always replaces the tail,
/// and there is no per-way metadata at all. Which physical slot holds which
/// tag is semantically invisible — hits depend only on set membership and
/// eviction only on the recency order — so hit/miss sequences are
/// bit-identical to the previous timestamped-ways model (invalid ways sit
/// at the tail and are consumed before any valid way, matching its
/// fill-empty-ways-first behaviour).

#include <cstdint>
#include <cstring>
#include <vector>

#include "support/check.hpp"

namespace speckle::simt {

class CacheModel {
 public:
  /// `size_bytes` total capacity, `line_bytes` block size, `ways`
  /// associativity. size must be divisible by line*ways.
  CacheModel(std::uint64_t size_bytes, std::uint32_t line_bytes, std::uint32_t ways);

  /// Look up `line_addr` (must be line-aligned); fills on miss.
  /// Returns true on hit. Header-defined: the simulator calls this hundreds
  /// of millions of times per run, so it must inline into the wave loops.
  bool access(std::uint64_t line_addr) {
    SPECKLE_CHECK(line_pow2_ ? (line_addr & (line_bytes_ - 1)) == 0
                             : line_addr % line_bytes_ == 0,
                  "cache access must be line-aligned");
    std::uint64_t tag = 0;
    const std::size_t base = locate(line_addr, tag);
    std::uint64_t* tags = &tags_[base];
    // Hits favour the front of the recency order, so the scan exits early
    // for the common re-touch patterns. (A branchless full-set match mask
    // was tried and measured slower: the early exit wins because most hits
    // land in the first few ways.)
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (tags[w] == tag) {
        ++hits_;
        if (w != 0) {  // move to front: everything younger slides down
          std::memmove(tags + 1, tags, w * sizeof(tags[0]));
          tags[0] = tag;
        }
        return true;
      }
    }
    ++misses_;
    // Fill replaces the tail — the LRU way, or an invalid way (invalid tags
    // are never touched, so they accumulate at the tail).
    std::memmove(tags + 1, tags, (ways_ - 1) * sizeof(tags[0]));
    tags[0] = tag;
    return false;
  }

  /// Look up without filling (used by write-through stores).
  bool probe(std::uint64_t line_addr) const {
    std::uint64_t tag = 0;
    const std::size_t base = locate(line_addr, tag);
    const std::uint64_t* tags = &tags_[base];
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (tags[w] == tag) return true;
    }
    return false;
  }

  /// Drop all contents (kernel boundary for the read-only cache: its
  /// coherence story only holds within one kernel).
  void invalidate_all();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_counters() { hits_ = misses_ = 0; }

  std::uint32_t num_sets() const { return num_sets_; }

 private:
  /// No real device address maps to this tag (it would need a ~2^64 byte
  /// address), so it doubles as the "invalid way" marker.
  static constexpr std::uint64_t kInvalidTag = ~0ULL;

  /// Decompose a line address into (first-way index of its set, tag).
  std::size_t locate(std::uint64_t line_addr, std::uint64_t& tag) const {
    const std::uint64_t line_id =
        line_pow2_ ? line_addr >> line_shift_ : line_addr / line_bytes_;
    std::uint32_t set;
    if (sets_pow2_) {  // shift-mask indexing
      set = static_cast<std::uint32_t>(line_id) & set_mask_;
      tag = line_id >> set_shift_;
    } else if (line_id < magic_safe_) [[likely]] {
      // Scaled configs shrink caches to non-pow2 set counts; divide by the
      // precomputed reciprocal instead of issuing a hardware division.
      // magic_ = floor(2^64/sets)+1, exact for line_id < 2^64/sets — which
      // covers every address either address space can produce.
      const std::uint64_t q = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(line_id) * magic_) >> 64);
      set = static_cast<std::uint32_t>(line_id - q * num_sets_);
      tag = q;
    } else {
      set = static_cast<std::uint32_t>(line_id % num_sets_);
      tag = line_id / num_sets_;
    }
    return static_cast<std::size_t>(set) * ways_;
  }

  std::uint32_t line_bytes_;
  std::uint32_t line_shift_ = 0;  ///< log2(line_bytes) when pow2
  std::uint32_t ways_;
  std::uint32_t num_sets_;
  std::uint32_t set_mask_ = 0;   ///< num_sets-1 when pow2
  std::uint32_t set_shift_ = 0;  ///< log2(num_sets) when pow2
  std::uint64_t magic_ = 0;      ///< floor(2^64/num_sets)+1 when not pow2
  std::uint64_t magic_safe_ = 0; ///< magic division exact below this line_id
  bool line_pow2_ = true;
  bool sets_pow2_ = true;
  std::vector<std::uint64_t> tags_;  ///< num_sets * ways, each set MRU-first
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace speckle::simt
