#pragma once
/// \file cache.hpp
/// Set-associative LRU cache model used for the per-SM read-only data cache
/// and the device-wide L2. Tracks tags only — data flows through the
/// functional layer; the model answers "hit or miss" and keeps counters.
///
/// Hot-path layout: one flat tag array indexed by shift-mask when the set
/// count is a power of two, with each set's ways kept in recency order —
/// position 0 is the MRU way, position ways-1 the LRU way. Recency updates
/// are a move-to-front memmove of at most ways-1 tags (a no-op for the
/// dominant re-touch-the-MRU pattern), eviction always replaces the tail,
/// and there is no per-way metadata at all. Which physical slot holds which
/// tag is semantically invisible — hits depend only on set membership and
/// eviction only on the recency order — so hit/miss sequences are
/// bit-identical to the previous timestamped-ways model (invalid ways sit
/// at the tail and are consumed before any valid way, matching its
/// fill-empty-ways-first behaviour).

#include <cstdint>
#include <cstring>
#include <vector>

#include "support/check.hpp"

namespace speckle::simt {

class CacheModel {
 public:
  /// No real device address maps to this tag (it would need a ~2^64 byte
  /// address), so it doubles as the "invalid way" marker. Public because the
  /// wave-commit merge must distinguish invalid filler ways (which keep
  /// their multiplicity) from real tags (which dedup) when it reconstructs
  /// a set from overlay pages.
  static constexpr std::uint64_t kInvalidTag = ~0ULL;

  /// The address-decomposition parameters, separable from the tag storage so
  /// the per-SM L2 page overlay can hold them BY VALUE: locate() runs once
  /// per coalesced transaction in the wave loops, and re-reading every
  /// geometry field through a CacheModel pointer on each call is a measurable
  /// chain of dependent loads on that path.
  struct Geometry {
    std::uint32_t line_bytes = 0;
    std::uint32_t line_shift = 0;  ///< log2(line_bytes) when pow2
    std::uint32_t ways = 0;
    std::uint32_t num_sets = 0;
    std::uint32_t set_mask = 0;   ///< num_sets-1 when pow2
    std::uint32_t set_shift = 0;  ///< log2(num_sets) when pow2
    std::uint64_t magic = 0;      ///< floor(2^64/num_sets)+1 when not pow2
    std::uint64_t magic_safe = 0; ///< magic division exact below this line_id
    bool line_pow2 = true;
    bool sets_pow2 = true;

    /// Decompose a line address into (set index, tag).
    std::uint32_t locate(std::uint64_t line_addr, std::uint64_t& tag) const {
      SPECKLE_CHECK(line_pow2 ? (line_addr & (line_bytes - 1)) == 0
                              : line_addr % line_bytes == 0,
                    "cache access must be line-aligned");
      const std::uint64_t line_id =
          line_pow2 ? line_addr >> line_shift : line_addr / line_bytes;
      std::uint32_t set;
      if (sets_pow2) {  // shift-mask indexing
        set = static_cast<std::uint32_t>(line_id) & set_mask;
        tag = line_id >> set_shift;
      } else if (line_id < magic_safe) [[likely]] {
        // Scaled configs shrink caches to non-pow2 set counts; divide by the
        // precomputed reciprocal instead of issuing a hardware division.
        // magic = floor(2^64/sets)+1, exact for line_id < 2^64/sets — which
        // covers every address either address space can produce.
        const std::uint64_t q = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(line_id) * magic) >> 64);
        set = static_cast<std::uint32_t>(line_id - q * num_sets);
        tag = q;
      } else {
        set = static_cast<std::uint32_t>(line_id % num_sets);
        tag = line_id / num_sets;
      }
      return set;
    }
  };

  /// `size_bytes` total capacity, `line_bytes` block size, `ways`
  /// associativity. size must be divisible by line*ways.
  CacheModel(std::uint64_t size_bytes, std::uint32_t line_bytes, std::uint32_t ways);

  /// Look up `line_addr` (must be line-aligned); fills on miss.
  /// Returns true on hit. Header-defined: the simulator calls this hundreds
  /// of millions of times per run, so it must inline into the wave loops.
  bool access(std::uint64_t line_addr) {
    std::uint64_t tag = 0;
    const std::uint32_t ways = geo_.ways;
    const std::size_t base = std::size_t{geo_.locate(line_addr, tag)} * ways;
    std::uint64_t* tags = &tags_[base];
    // Fused scan + move-to-front: each way scanned slides down one slot as
    // the scan passes it, so a hit at way w leaves positions [0, w] rotated
    // exactly as a separate memmove would while later ways stay untouched,
    // and falling off the end IS the miss fill — every way shifted down,
    // tags[0] == tag, the old tail (LRU or invalid filler) evicted. Keeps
    // the early exit (hits favour the front of the recency order; a
    // branchless full-set match mask was tried and measured slower) and
    // drops the per-access libc memmove call.
    std::uint64_t prev = tag;
    for (std::uint32_t w = 0; w < ways; ++w) {
      const std::uint64_t cur = tags[w];
      tags[w] = prev;
      if (cur == tag) {
        ++hits_;
        return true;
      }
      prev = cur;
    }
    ++misses_;
    return false;
  }

  /// Look up without filling (used by write-through stores).
  bool probe(std::uint64_t line_addr) const {
    std::uint64_t tag = 0;
    const std::uint32_t ways = geo_.ways;
    const std::size_t base = std::size_t{geo_.locate(line_addr, tag)} * ways;
    const std::uint64_t* tags = &tags_[base];
    for (std::uint32_t w = 0; w < ways; ++w) {
      if (tags[w] == tag) return true;
    }
    return false;
  }

  /// Drop all contents (kernel boundary for the read-only cache: its
  /// coherence story only holds within one kernel).
  void invalidate_all();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_counters() { hits_ = misses_ = 0; }

  std::uint32_t num_sets() const { return geo_.num_sets; }
  std::uint32_t ways() const { return geo_.ways; }

  /// The address-decomposition parameters, copyable by value.
  const Geometry& geometry() const { return geo_; }

  /// Decompose a line address into (set index, tag) the way this cache's
  /// indexing does (including the non-pow2 magic-division path).
  std::uint32_t locate(std::uint64_t line_addr, std::uint64_t& tag) const {
    return geo_.locate(line_addr, tag);
  }

  /// The flat tag array (num_sets * ways entries, each set MRU-first).
  /// Exposed so wave-commit can reconstruct sets in place and the per-SM
  /// overlay pages can copy-on-write from the frozen master image.
  const std::uint64_t* tag_data() const { return tags_.data(); }
  std::uint64_t* tag_data() { return tags_.data(); }

 private:
  Geometry geo_;
  std::vector<std::uint64_t> tags_;  ///< num_sets * ways, each set MRU-first
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace speckle::simt
