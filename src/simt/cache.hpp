#pragma once
/// \file cache.hpp
/// Set-associative LRU cache model used for the per-SM read-only data cache
/// and the device-wide L2. Tracks tags only — data flows through the
/// functional layer; the model answers "hit or miss" and keeps counters.

#include <cstdint>
#include <vector>

namespace speckle::simt {

class CacheModel {
 public:
  /// `size_bytes` total capacity, `line_bytes` block size, `ways`
  /// associativity. size must be divisible by line*ways.
  CacheModel(std::uint64_t size_bytes, std::uint32_t line_bytes, std::uint32_t ways);

  /// Look up `line_addr` (must be line-aligned); fills on miss.
  /// Returns true on hit.
  bool access(std::uint64_t line_addr);

  /// Look up without filling (used by write-through stores).
  bool probe(std::uint64_t line_addr) const;

  /// Drop all contents (kernel boundary for the read-only cache: its
  /// coherence story only holds within one kernel).
  void invalidate_all();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_counters() { hits_ = misses_ = 0; }

  std::uint32_t num_sets() const { return num_sets_; }

 private:
  struct Way {
    std::uint64_t tag = ~0ULL;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  std::uint32_t line_bytes_;
  std::uint32_t ways_;
  std::uint32_t num_sets_;
  std::vector<Way> sets_;  ///< num_sets_ * ways_, row-major
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace speckle::simt
