#include "simt/cache.hpp"

#include "support/check.hpp"

namespace speckle::simt {
namespace {

bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::uint32_t log2_u32(std::uint64_t x) {
  std::uint32_t bits = 0;
  while ((1ULL << bits) < x) ++bits;
  return bits;
}

}  // namespace

CacheModel::CacheModel(std::uint64_t size_bytes, std::uint32_t line_bytes,
                       std::uint32_t ways) {
  SPECKLE_CHECK(line_bytes > 0 && ways > 0, "cache geometry must be positive");
  SPECKLE_CHECK(size_bytes % (static_cast<std::uint64_t>(line_bytes) * ways) == 0,
                "cache size must be divisible by line*ways");
  SPECKLE_CHECK(ways <= 255, "8-bit recency supports at most 255 ways");
  geo_.line_bytes = line_bytes;
  geo_.ways = ways;
  geo_.num_sets = static_cast<std::uint32_t>(size_bytes / line_bytes / ways);
  SPECKLE_CHECK(geo_.num_sets > 0, "cache must have at least one set");
  geo_.line_pow2 = is_pow2(line_bytes);
  if (geo_.line_pow2) geo_.line_shift = log2_u32(line_bytes);
  geo_.sets_pow2 = is_pow2(geo_.num_sets);
  if (geo_.sets_pow2) {
    geo_.set_mask = geo_.num_sets - 1;
    geo_.set_shift = log2_u32(geo_.num_sets);
  } else {
    // floor(2^64/d)+1 for d not a power of two (so d never divides 2^64 and
    // ~0ULL/d == floor(2^64/d)). floor(id*magic/2^64) == id/d exactly while
    // id < 2^64/d: the error term id*(2^64 mod d + 1)/(d*2^64) stays below
    // the 1/d gap to the next integer quotient.
    geo_.magic = ~0ULL / geo_.num_sets + 1;
    geo_.magic_safe = ~0ULL / geo_.num_sets;
  }
  tags_.resize(static_cast<std::size_t>(geo_.num_sets) * ways);
  invalidate_all();
}

void CacheModel::invalidate_all() {
  for (std::uint64_t& tag : tags_) tag = kInvalidTag;
}

}  // namespace speckle::simt
