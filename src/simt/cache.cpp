#include "simt/cache.hpp"

#include "support/check.hpp"

namespace speckle::simt {

CacheModel::CacheModel(std::uint64_t size_bytes, std::uint32_t line_bytes,
                       std::uint32_t ways)
    : line_bytes_(line_bytes), ways_(ways) {
  SPECKLE_CHECK(line_bytes > 0 && ways > 0, "cache geometry must be positive");
  SPECKLE_CHECK(size_bytes % (static_cast<std::uint64_t>(line_bytes) * ways) == 0,
                "cache size must be divisible by line*ways");
  num_sets_ = static_cast<std::uint32_t>(size_bytes / line_bytes / ways);
  SPECKLE_CHECK(num_sets_ > 0, "cache must have at least one set");
  sets_.resize(static_cast<std::size_t>(num_sets_) * ways_);
}

bool CacheModel::access(std::uint64_t line_addr) {
  SPECKLE_CHECK(line_addr % line_bytes_ == 0, "cache access must be line-aligned");
  const std::uint64_t line_id = line_addr / line_bytes_;
  const std::uint32_t set = static_cast<std::uint32_t>(line_id % num_sets_);
  const std::uint64_t tag = line_id / num_sets_;
  Way* base = &sets_[static_cast<std::size_t>(set) * ways_];
  ++tick_;
  Way* victim = base;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.last_use = tick_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.last_use < victim->last_use) {
      victim = &way;
    }
  }
  ++misses_;
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = tick_;
  return false;
}

bool CacheModel::probe(std::uint64_t line_addr) const {
  const std::uint64_t line_id = line_addr / line_bytes_;
  const std::uint32_t set = static_cast<std::uint32_t>(line_id % num_sets_);
  const std::uint64_t tag = line_id / num_sets_;
  const Way* base = &sets_[static_cast<std::size_t>(set) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void CacheModel::invalidate_all() {
  for (Way& way : sets_) way.valid = false;
}

}  // namespace speckle::simt
