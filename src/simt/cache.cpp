#include "simt/cache.hpp"

#include "support/check.hpp"

namespace speckle::simt {
namespace {

bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::uint32_t log2_u32(std::uint64_t x) {
  std::uint32_t bits = 0;
  while ((1ULL << bits) < x) ++bits;
  return bits;
}

}  // namespace

CacheModel::CacheModel(std::uint64_t size_bytes, std::uint32_t line_bytes,
                       std::uint32_t ways)
    : line_bytes_(line_bytes), ways_(ways) {
  SPECKLE_CHECK(line_bytes > 0 && ways > 0, "cache geometry must be positive");
  SPECKLE_CHECK(size_bytes % (static_cast<std::uint64_t>(line_bytes) * ways) == 0,
                "cache size must be divisible by line*ways");
  SPECKLE_CHECK(ways <= 255, "8-bit recency supports at most 255 ways");
  num_sets_ = static_cast<std::uint32_t>(size_bytes / line_bytes / ways);
  SPECKLE_CHECK(num_sets_ > 0, "cache must have at least one set");
  line_pow2_ = is_pow2(line_bytes_);
  if (line_pow2_) line_shift_ = log2_u32(line_bytes_);
  sets_pow2_ = is_pow2(num_sets_);
  if (sets_pow2_) {
    set_mask_ = num_sets_ - 1;
    set_shift_ = log2_u32(num_sets_);
  } else {
    // floor(2^64/d)+1 for d not a power of two (so d never divides 2^64 and
    // ~0ULL/d == floor(2^64/d)). floor(id*magic/2^64) == id/d exactly while
    // id < 2^64/d: the error term id*(2^64 mod d + 1)/(d*2^64) stays below
    // the 1/d gap to the next integer quotient.
    magic_ = ~0ULL / num_sets_ + 1;
    magic_safe_ = ~0ULL / num_sets_;
  }
  tags_.resize(static_cast<std::size_t>(num_sets_) * ways_);
  invalidate_all();
}

void CacheModel::invalidate_all() {
  for (std::uint64_t& tag : tags_) tag = kInvalidTag;
}

}  // namespace speckle::simt
