#pragma once
/// \file device.hpp
/// The simulated GPU: memory allocation, kernel launch, transfer modeling
/// and the accumulated run report.
///
/// Typical use (mirrors a CUDA host program):
///
///   simt::Device dev(simt::DeviceConfig::k20c());
///   auto row = dev.alloc<eid_t>(n + 1, "row");  // name shows up in san/prof reports
///   row.copy_from(graph.row_offsets());
///   dev.copy_to_device(row.byte_size());            // charge H2D (optional)
///   dev.launch({.grid_blocks = nblocks, .block_threads = 128}, "color",
///              [&](simt::Thread& t) { ... });
///   double ms = dev.report().ms(dev.config());
///
/// Execution is functional (buffers live in host memory) plus a
/// cycle-approximate timing model (see timing.hpp). Everything is
/// deterministic.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "prof/prof.hpp"
#include "simt/buffer.hpp"
#include "simt/check.hpp"
#include "simt/config.hpp"
#include "simt/memory.hpp"
#include "simt/san.hpp"
#include "simt/stats.hpp"
#include "simt/thread.hpp"
#include "simt/timing.hpp"

namespace speckle::support {
class ThreadPool;
}

namespace speckle::simt {

using Kernel = std::function<void(Thread&)>;

class Device {
 public:
  explicit Device(DeviceConfig config = DeviceConfig::k20c());
  ~Device();

  const DeviceConfig& config() const { return config_; }

  /// Allocate a typed device buffer (256-byte aligned address range).
  /// `name` labels the buffer in sanitizer findings; unnamed buffers get a
  /// synthesized "buf@0x<base>" label.
  template <typename T>
  Buffer<T> alloc(std::size_t count, std::string name = {}) {
    const std::uint64_t bytes = count * sizeof(T);
    const std::uint64_t base = allocate_range(bytes);
    if (prof_ != nullptr) prof_->on_alloc(base, bytes, name);
    if (plan_ != nullptr) plan_->on_alloc(base, bytes, name);
    if (san_ != nullptr) san_->on_alloc(base, bytes, std::move(name));
    return Buffer<T>(base, count, san_.get());
  }

  /// Launch a barrier-free kernel over grid_blocks x block_threads threads.
  /// The returned reference lives in the report's kernel vector and is
  /// invalidated by the next launch — copy it if it must outlive one.
  const KernelStats& launch(const LaunchConfig& cfg, const std::string& name,
                            const Kernel& body);

  /// Launch a kernel expressed as phases with an implicit block-wide barrier
  /// between consecutive phases (__syncthreads at each phase boundary).
  const KernelStats& launch_phased(const LaunchConfig& cfg, const std::string& name,
                                   const std::vector<Kernel>& phases);

  /// Spec-carrying launches (speckle::check): `spec` declares every buffer
  /// the kernel touches with an intent and optional range. With
  /// DeviceConfig::check the spec is recorded into the LaunchPlan; with
  /// DeviceConfig::sanitize the sanitizer flags any dynamic access outside
  /// it (kUndeclaredAccess). The spec-less overloads above stay valid but
  /// are flagged kMissingSpec by the checker.
  const KernelStats& launch(const LaunchConfig& cfg, const std::string& name,
                            const check::KernelSpec& spec, const Kernel& body);
  const KernelStats& launch_phased(const LaunchConfig& cfg,
                                   const std::string& name,
                                   const check::KernelSpec& spec,
                                   const std::vector<Kernel>& phases);

  /// Charge a host-to-device / device-to-host transfer of `bytes` to the
  /// device timeline (PCIe latency + bandwidth model). Data movement itself
  /// is a no-op — buffers are host-resident.
  void copy_to_device(std::uint64_t bytes);
  void copy_to_host(std::uint64_t bytes);

  /// Charge a peer (device-to-device) transfer of `bytes` to this device's
  /// timeline (interconnect latency + bandwidth model; see
  /// d2d_transfer_cycles in timing.hpp). The multi-device runner charges
  /// both endpoints of a boundary exchange — the link occupies source and
  /// destination alike. Data movement itself is host-side, as with the
  /// PCIe transfers above.
  void copy_peer(std::uint64_t bytes);

  /// Record an ASYNCHRONOUS peer transfer occupying [start_cycle,
  /// start_cycle + cycles) on this device's DMA engine: d2d stats and the
  /// profiler see the transfer, but the compute timeline does NOT advance —
  /// kernels launched after this call model work overlapping the in-flight
  /// copy. The caller schedules the window (the multi-device runner
  /// serializes transfers per DMA engine and charges both endpoints) and
  /// pairs the call with sync_to() at the point that consumes the data.
  void copy_peer_async(std::uint64_t bytes, std::uint64_t start_cycle,
                       std::uint64_t cycles);

  /// Wait for an asynchronous operation: advance the timeline to `cycle`
  /// when it is still in the future (no-op otherwise). The gap, if any, is
  /// the exchange stall the overlap failed to hide.
  void sync_to(std::uint64_t cycle);

  /// Advance the timeline by host-side work of `cycles` *device* cycles
  /// (used when a hybrid scheme does real work on the CPU, e.g. the 3-step
  /// GM conflict resolution; callers convert from CPU-model cycles).
  void charge_host_cycles(std::uint64_t cycles);

  const DeviceReport& report() const { return report_; }
  /// Clear the report and rewind the timeline (e.g. after warm-up).
  void reset_report();

  std::uint64_t timeline_cycles() const { return report_.total_cycles; }
  double elapsed_ms() const { return config_.cycles_to_ms(report_.total_cycles); }

  MemorySystem& memory() { return memory_; }

  /// Non-null iff DeviceConfig::sanitize was set.
  san::Sanitizer* sanitizer() { return san_.get(); }
  bool sanitizing() const { return san_ != nullptr; }
  /// The accumulated sanitizer findings (empty report when sanitizing is
  /// off). Findings accumulate across launches until the device dies.
  san::Report san_report() const {
    return san_ != nullptr ? san_->report() : san::Report{};
  }

  /// Non-null iff DeviceConfig::profile was set.
  prof::Profiler* profiler() { return prof_.get(); }
  bool profiling() const { return prof_ != nullptr; }
  /// The accumulated profile (empty report when profiling is off). Launches
  /// accumulate until reset_report(), which also clears the profile.
  prof::Report prof_report() const {
    return prof_ != nullptr ? prof_->report() : prof::Report{};
  }

  /// Non-null iff DeviceConfig::check was set.
  check::LaunchPlan* plan() { return plan_.get(); }
  bool checking() const { return plan_ != nullptr; }
  /// Run the static checker over the accumulated launch plan (empty report
  /// when checking is off). Pure — safe to call any number of times.
  check::Report check_report() const {
    return plan_ != nullptr ? check::check_plan(*plan_) : check::Report{};
  }

  /// Record an asynchronous inbound write of bytes [lo, hi) into the buffer
  /// at `base` (multidev ghost exchange) into the launch plan: launches
  /// recorded before the next plan_copy_fence() are concurrent with the
  /// flight and must not touch the window. No-ops when checking is off.
  void plan_copy_write(std::uint64_t base, std::uint64_t lo, std::uint64_t hi,
                       const std::string& tag) {
    if (plan_ != nullptr) plan_->copy_write(base, lo, hi, tag);
  }
  /// The consume point: retire every in-flight planned copy.
  void plan_copy_fence() {
    if (plan_ != nullptr) plan_->fence();
  }

 private:
  friend class Thread;

  /// Per-lane scratch reused across blocks and launches: trace arrays, the
  /// block state, and the speculative write overlay (defined in device.cpp).
  struct ExecArena;
  /// One block's speculated side effects, kept until its commit slot.
  struct BlockResult;

  std::uint64_t allocate_range(std::uint64_t bytes);
  const KernelStats& run_grid(const LaunchConfig& cfg, const std::string& name,
                              const std::vector<Kernel>& phases,
                              const check::KernelSpec* spec);
  void ensure_executor();
  void execute_block(const LaunchConfig& cfg, const std::vector<Kernel>& phases,
                     std::uint32_t block, std::uint32_t warps_per_block,
                     ExecArena& arena, bool speculative, BlockWork& work,
                     BlockResult* result);
  /// Returns true when the speculation was discarded and the block
  /// re-executed serially (the profiler counts replays).
  bool commit_block(const LaunchConfig& cfg, const std::vector<Kernel>& phases,
                    std::uint32_t block, std::uint32_t warps_per_block,
                    BlockResult& result, BlockWork& work);

  DeviceConfig config_;
  MemorySystem memory_;
  TimingEngine engine_;
  DeviceReport report_;
  std::unique_ptr<san::Sanitizer> san_;  ///< null unless config_.sanitize
  std::unique_ptr<prof::Profiler> prof_;  ///< null unless config_.profile
  std::unique_ptr<check::LaunchPlan> plan_;  ///< null unless config_.check
  std::uint64_t next_addr_ = 0x1000;
  /// Current launch's committed speculative writes (single-touch: each byte
  /// is staged in one overlay and landed once at its commit slot). Fed to
  /// the profiler next to the MemorySystem wave-commit delta.
  std::uint64_t overlay_writes_ = 0;
  std::uint64_t overlay_bytes_ = 0;

  // Parallel wave executor state (lazily built on the first launch).
  std::unique_ptr<support::ThreadPool> pool_;  ///< null when 1 host thread
  std::vector<std::unique_ptr<ExecArena>> arenas_;  ///< one per pool slot
  std::vector<BlockWork> works_;          ///< per-wave, reused across waves
  std::vector<std::unique_ptr<BlockResult>> results_;  ///< per-wave, reused
  std::vector<std::vector<const BlockWork*>> per_sm_;  ///< per-wave, reused
};

}  // namespace speckle::simt
