#include "simt/metrics.hpp"

#include <sstream>

#include "support/table.hpp"

namespace speckle::simt {

std::string format_kernel_table(const DeviceReport& report, const DeviceConfig& dev) {
  support::Table table({"kernel", "grid", "block", "cycles", "ms", "insts", "gld",
                        "gst", "l2 hit%", "ro hit%", "atomics", "IPC%", "BW%"});
  for (const KernelStats& k : report.kernels) {
    const double l2_pct = k.l2_hits + k.l2_misses
                              ? 100.0 * k.l2_hits / (k.l2_hits + k.l2_misses)
                              : 0.0;
    const double ro_pct = k.ro_hits + k.ro_misses
                              ? 100.0 * k.ro_hits / (k.ro_hits + k.ro_misses)
                              : 0.0;
    table.row()
        .cell(k.name)
        .cell_u64(k.grid_blocks)
        .cell_u64(k.block_threads)
        .cell(support::format_cycles(k.cycles))
        .cell_f(dev.cycles_to_ms(k.cycles), 3)
        .cell(support::format_si(static_cast<double>(k.warp_insts), 1))
        .cell(support::format_si(static_cast<double>(k.gld_transactions), 1))
        .cell(support::format_si(static_cast<double>(k.gst_transactions), 1))
        .cell_f(l2_pct, 1)
        .cell_f(ro_pct, 1)
        .cell_u64(k.atomics)
        .cell_f(100.0 * k.compute_utilization(), 1)
        .cell_f(100.0 * k.bandwidth_utilization(dev), 1);
  }
  std::ostringstream oss;
  table.print(oss);
  if (report.h2d.count + report.d2h.count > 0) {
    oss << "transfers: h2d " << support::format_bytes(report.h2d.bytes) << " in "
        << report.h2d.count << " copies (" << support::format_cycles(report.h2d.cycles)
        << " cy), d2h " << support::format_bytes(report.d2h.bytes) << " in "
        << report.d2h.count << " copies (" << support::format_cycles(report.d2h.cycles)
        << " cy)\n";
  }
  return oss.str();
}

std::string format_stall_breakdown(const StallBreakdown& stalls) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Stall::kCount); ++i) {
    const auto reason = static_cast<Stall>(i);
    oss << "  " << stall_name(reason) << ": ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%5.1f%%", 100.0 * stalls.fraction(reason));
    oss << buf << "\n";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  busy (issuing): %5.1f%%\n",
                stalls.total > 0 ? 100.0 * stalls.busy / stalls.total : 0.0);
  oss << buf;
  return oss.str();
}

OccupancyReport analyze_occupancy(const DeviceConfig& dev, const LaunchConfig& cfg) {
  OccupancyReport report;
  const std::uint32_t warps_per_block =
      (cfg.block_threads + dev.warp_size - 1) / dev.warp_size;

  struct Limit {
    std::uint32_t blocks;
    const char* name;
  };
  Limit limits[] = {
      {dev.max_blocks_per_sm, "blocks"},
      {dev.max_warps_per_sm / warps_per_block, "warps"},
      {cfg.regs_per_thread > 0
           ? dev.regfile_per_sm / (cfg.regs_per_thread * cfg.block_threads)
           : ~0U,
       "registers"},
      {cfg.smem_bytes_per_block > 0 ? dev.smem_per_sm / cfg.smem_bytes_per_block
                                    : ~0U,
       "scratchpad"},
  };
  report.resident_blocks = ~0U;
  for (const Limit& limit : limits) {
    if (limit.blocks < report.resident_blocks) {
      report.resident_blocks = limit.blocks;
      report.limiter = limit.name;
    }
  }
  report.resident_warps = report.resident_blocks * warps_per_block;
  report.occupancy =
      static_cast<double>(report.resident_warps) / dev.max_warps_per_sm;
  return report;
}

}  // namespace speckle::simt
