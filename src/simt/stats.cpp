#include "simt/stats.hpp"

namespace speckle::simt {

const char* stall_name(Stall s) {
  switch (s) {
    case Stall::kMemoryDependency: return "memory dependency";
    case Stall::kExecutionDependency: return "execution dependency";
    case Stall::kSynchronization: return "synchronization";
    case Stall::kMemoryThrottle: return "memory throttle";
    case Stall::kAtomic: return "atomic";
    case Stall::kIdle: return "idle/not selected";
    case Stall::kCount: break;
  }
  return "?";
}

double StallBreakdown::fraction(Stall reason) const {
  return total > 0 ? get(reason) / total : 0.0;
}

StallBreakdown& StallBreakdown::operator+=(const StallBreakdown& other) {
  for (std::size_t i = 0; i < cycles.size(); ++i) cycles[i] += other.cycles[i];
  busy += other.busy;
  total += other.total;
  return *this;
}

double KernelStats::bandwidth_utilization(const DeviceConfig& dev) const {
  if (cycles == 0) return 0.0;
  const double peak_bytes = dev.dram_bytes_per_cycle() * static_cast<double>(cycles);
  return static_cast<double>(dram_bytes) / peak_bytes;
}

StallBreakdown DeviceReport::aggregate_stalls() const {
  StallBreakdown agg;
  for (const KernelStats& k : kernels) agg += k.stalls;
  return agg;
}

std::uint64_t DeviceReport::total_kernel_cycles() const {
  std::uint64_t sum = 0;
  for (const KernelStats& k : kernels) sum += k.cycles;
  return sum;
}

}  // namespace speckle::simt
