#pragma once
/// \file overlay.hpp
/// Epoch-versioned overlays for the parallel wave executor: the per-block
/// speculative write buffer (WriteOverlay), the per-SM copy-on-write L2 tag
/// pages (L2PageOverlay) and the flat atomic-unit clock map (AtomicClocks).
/// All three share one idiom — slot/page validity is an epoch stamp, so
/// "clear" is a counter bump and steady-state waves never touch the heap.
///
/// While the blocks of a scheduling chunk execute concurrently, global stores do not
/// touch the shared buffers: each block records its writes here, keyed by
/// device address, and reads check the overlay first so a block always sees
/// its own writes layered over the chunk-start state. The executor then
/// applies overlays to the real buffers in ascending block order — the
/// deterministic commit that makes `--threads=N` bit-identical to
/// `--threads=1`.
///
/// Values are stored as raw little-endian bytes (up to 8) so one structure
/// serves every Buffer<T> element type. Lookup is an open-addressed hash
/// table over a dense entry vector; clear() is O(1) via slot versioning so
/// a worker can reuse one overlay for every block it executes.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "simt/cache.hpp"

namespace speckle::simt {

class WriteOverlay {
 public:
  struct Write {
    std::uint64_t addr = 0;  ///< device address (hash key)
    std::uint64_t raw = 0;   ///< value bytes, zero-padded to 8
    void* host = nullptr;    ///< where commit lands the bytes
    std::uint8_t size = 0;   ///< value width in bytes
  };

  /// Pointer to the raw value last written to `addr` by this block, or
  /// nullptr if the block has not written it.
  const std::uint64_t* find(std::uint64_t addr) const {
    // Range prefilter: kernels read mostly-immutable arrays (adjacency,
    // offsets) that live far from the arrays they write, so one compare
    // against the written-address envelope rejects most probes before the
    // hash. [lo_, hi_] is empty (lo_ > hi_) when there are no writes.
    if (addr < write_lo_ || addr > write_hi_) return nullptr;
    std::size_t slot = hash(addr) & mask_;
    for (;;) {
      const Slot& s = slots_[slot];
      if (s.epoch != epoch_ || s.addr == 0) return nullptr;
      if (s.addr == addr) return &writes_[s.index].raw;
      slot = (slot + 1) & mask_;
    }
  }

  /// Record (or update) this block's write of `size` bytes to `addr`.
  void put(std::uint64_t addr, void* host, std::uint64_t raw, std::uint8_t size) {
    if (addr < write_lo_) write_lo_ = addr;
    if (addr > write_hi_) write_hi_ = addr;
    if (slots_.empty() || (writes_.size() + 1) * 2 > slots_.size()) grow();
    std::size_t slot = hash(addr) & mask_;
    for (;;) {
      Slot& s = slots_[slot];
      if (s.epoch != epoch_ || s.addr == 0) {
        s = {addr, static_cast<std::uint32_t>(writes_.size()), epoch_};
        writes_.push_back({addr, raw, host, size});
        return;
      }
      if (s.addr == addr) {
        writes_[s.index].raw = raw;
        return;
      }
      slot = (slot + 1) & mask_;
    }
  }

  /// The block's writes in first-write order (one entry per address).
  std::span<const Write> writes() const { return writes_; }

  /// Move the writes out (swapping storage with `out`, so neither side
  /// copies entries) and leave the overlay cleared. The commit path holds a
  /// block's writes from execution to its ordered commit slot; taking them
  /// instead of copying means each committed byte is staged exactly once.
  void take(std::vector<Write>& out) {
    out.swap(writes_);
    clear();
  }

  bool empty() const { return writes_.empty(); }

  /// Forget everything but keep the allocations (per-block reuse).
  void clear() {
    writes_.clear();
    ++epoch_;
    write_lo_ = ~std::uint64_t{0};
    write_hi_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t addr = 0;
    std::uint32_t index = 0;
    std::uint64_t epoch = 0;  ///< valid only when == current epoch
  };

  static std::size_t hash(std::uint64_t addr) {
    // Fibonacci multiplicative hash; addresses are >= 0x1000 and word-ish
    // aligned, so mix the high bits down.
    return static_cast<std::size_t>((addr * 0x9e3779b97f4a7c15ULL) >> 32);
  }

  void grow() {
    const std::size_t cap = slots_.empty() ? 256 : slots_.size() * 2;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    ++epoch_;
    for (std::uint32_t i = 0; i < writes_.size(); ++i) {
      std::size_t slot = hash(writes_[i].addr) & mask_;
      while (slots_[slot].epoch == epoch_ && slots_[slot].addr != 0) {
        slot = (slot + 1) & mask_;
      }
      slots_[slot] = {writes_[i].addr, i, epoch_};
    }
  }

  std::vector<Write> writes_;
  std::vector<Slot> slots_;
  std::uint64_t epoch_ = 1;
  std::size_t mask_ = 0;
  std::uint64_t write_lo_ = ~std::uint64_t{0};  ///< written-address envelope
  std::uint64_t write_hi_ = 0;
};

/// Per-SM copy-on-write shadow of the shared L2 tag array for one wave.
///
/// Each cache set is one "page" of `ways` tags stamped with the epoch of the
/// wave that last touched it. The first access a wave makes to a set copies
/// the page from the frozen master image and evolves it with the same
/// MRU-first move-to-front LRU as CacheModel::access, so the view's hit/miss
/// answers are bit-identical to running against a private master copy —
/// without ever cloning the whole cache. reset for a new wave is an epoch
/// bump (every page goes stale at once, O(1)).
///
/// The page doubles as the commit-side record. Because every wave-touched
/// line is moved to the front on touch and untouched master lines only ever
/// slide backwards, a page is always
///
///     [wave-touched lines, MRU first][surviving master lines, in order]
///
/// with the split at `touched_count(set)`. MemorySystem::commit_wave
/// reconstructs the master state for the whole wave from these prefixes
/// alone (see memory.cpp) — which is why the view keeps no access log.
class L2PageOverlay {
 public:
  /// Bind to (or re-bind after) a master cache, sizing the shadow pages. The
  /// geometry is copied BY VALUE and the master tag image kept as a raw
  /// pointer: access() runs once per coalesced transaction, and chasing the
  /// CacheModel pointer for geometry fields on every call measurably slows
  /// the wave loops (the master's tag vector never reallocates, so the
  /// pointer stays valid across commits).
  void attach(const CacheModel& master) {
    geo_ = master.geometry();
    master_tags_ = master.tag_data();
    const std::size_t total = std::size_t{geo_.num_sets} * geo_.ways;
    if (tags_.size() != total) {
      tags_.assign(total, CacheModel::kInvalidTag);
      meta_.assign(geo_.num_sets, PageMeta{});
    }
    bump_epoch();
  }

  /// Invalidate every page for the next wave. The master image may have
  /// changed arbitrarily since the last wave; pages re-copy on first touch.
  void bump_epoch() {
    ++epoch_;
    touched_sets_.clear();
  }

  /// Probe `line_addr`, filling on miss — same LRU semantics and the same
  /// hit/miss sequence as CacheModel::access against a wave-start snapshot.
  /// Header-defined: one call per coalesced transaction in the timing loop.
  bool access(std::uint64_t line_addr) {
    std::uint64_t tag = 0;
    const std::uint32_t ways = geo_.ways;
    const std::uint32_t set = geo_.locate(line_addr, tag);
    std::uint64_t* tags = &tags_[std::size_t{set} * ways];
    PageMeta& meta = meta_[set];
    if (meta.epoch != epoch_) [[unlikely]] {  // copy-on-first-touch this wave
      meta.epoch = epoch_;
      meta.touched = 0;
      std::memcpy(tags, master_tags_ + std::size_t{set} * ways,
                  ways * sizeof(tags[0]));
      touched_sets_.push_back(set);
    }
    // Fused scan + move-to-front: each way scanned slides down one slot as
    // the scan passes it, so a hit at way w leaves positions [0, w] rotated
    // exactly as a separate memmove would — while positions past w stay
    // untouched. Falling off the end IS the miss path: every way has shifted
    // down, tags[0] == tag, and the old tail (the LRU or an invalid filler)
    // fell out in `prev`. One pass, no per-access libc memmove call.
    std::uint64_t prev = tag;
    for (std::uint32_t w = 0; w < ways; ++w) {
      const std::uint64_t cur = tags[w];
      tags[w] = prev;
      if (cur == tag) {
        // A hit beyond the touched prefix promotes a surviving master line
        // into the wave-touched prefix.
        if (w >= meta.touched) ++meta.touched;
        return true;
      }
      prev = cur;
    }
    if (meta.touched < ways) ++meta.touched;
    return false;
  }

  /// Sets this wave touched, in first-touch order (commit iterates these).
  std::span<const std::uint32_t> touched_sets() const { return touched_sets_; }
  /// The set's shadow page (valid only for touched sets).
  const std::uint64_t* page(std::uint32_t set) const {
    return &tags_[std::size_t{set} * geo_.ways];
  }
  /// Length of the wave-touched MRU prefix of `page(set)`.
  std::uint32_t touched_count(std::uint32_t set) const {
    return meta_[set].touched;
  }

 private:
  /// Per-set validity stamp + touched-prefix length, packed so the hot path
  /// reads both with one indexed address computation.
  struct PageMeta {
    std::uint64_t epoch = 0;    ///< page valid only when == current epoch
    std::uint32_t touched = 0;  ///< length of the wave-touched MRU prefix
    std::uint32_t pad_ = 0;
  };

  CacheModel::Geometry geo_;                    ///< by value: no master chase
  const std::uint64_t* master_tags_ = nullptr;  ///< frozen master tag image
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> tags_;          ///< num_sets * ways shadow image
  std::vector<PageMeta> meta_;               ///< per-set stamp + prefix length
  std::vector<std::uint32_t> touched_sets_;  ///< this wave's pages
};

/// Flat per-word atomic-unit clocks (addr -> ready cycle): an open-addressed
/// hash over a dense entry vector with epoch-versioned slots, same layout as
/// WriteOverlay. Replaces std::unordered_map on the atomic hot path — both
/// for the master clocks and for each WaveView's wave-local shadow — and
/// gives commit a dense, insertion-ordered entry list to merge (the merge
/// applies a per-key max, so any fold order yields the same master state).
class AtomicClocks {
 public:
  struct Entry {
    std::uint64_t addr = 0;
    double ready = 0.0;
  };

  /// The clock for `addr`, or nullptr if never touched this epoch.
  const double* find(std::uint64_t addr) const {
    if (slots_.empty()) return nullptr;
    const std::uint64_t key = addr + 1;  // 0 marks an empty slot; addr 0 is legal
    std::size_t slot = hash(key) & mask_;
    for (;;) {
      const Slot& s = slots_[slot];
      if (s.epoch != epoch_ || s.key == 0) return nullptr;
      if (s.key == key) return &entries_[s.index].ready;
      slot = (slot + 1) & mask_;
    }
  }

  /// The clock for `addr`, inserting 0.0 if absent. `inserted` (optional)
  /// reports whether this call created the entry — the wave-local shadow
  /// uses it to fall back to the master clocks exactly once per word.
  double& upsert(std::uint64_t addr, bool* inserted = nullptr) {
    const std::uint64_t key = addr + 1;
    if (slots_.empty() || (entries_.size() + 1) * 2 > slots_.size()) grow();
    std::size_t slot = hash(key) & mask_;
    for (;;) {
      Slot& s = slots_[slot];
      if (s.epoch != epoch_ || s.key == 0) {
        s = {key, static_cast<std::uint32_t>(entries_.size()), epoch_};
        entries_.push_back({addr, 0.0});
        if (inserted != nullptr) *inserted = true;
        return entries_.back().ready;
      }
      if (s.key == key) {
        if (inserted != nullptr) *inserted = false;
        return entries_[s.index].ready;
      }
      slot = (slot + 1) & mask_;
    }
  }

  /// Touched words in first-touch order.
  std::span<const Entry> entries() const { return entries_; }

  void clear() {
    entries_.clear();
    ++epoch_;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t index = 0;
    std::uint64_t epoch = 0;  ///< valid only when == current epoch
  };

  static std::size_t hash(std::uint64_t key) {
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 32);
  }

  void grow() {
    const std::size_t cap = slots_.empty() ? 256 : slots_.size() * 2;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    ++epoch_;
    for (std::uint32_t i = 0; i < entries_.size(); ++i) {
      const std::uint64_t key = entries_[i].addr + 1;
      std::size_t slot = hash(key) & mask_;
      while (slots_[slot].epoch == epoch_ && slots_[slot].key != 0) {
        slot = (slot + 1) & mask_;
      }
      slots_[slot] = {key, i, epoch_};
    }
  }

  std::vector<Entry> entries_;
  std::vector<Slot> slots_;
  std::uint64_t epoch_ = 1;
  std::size_t mask_ = 0;
};

}  // namespace speckle::simt
