#pragma once
/// \file overlay.hpp
/// Per-block speculative write buffer for the parallel wave executor.
///
/// While the blocks of a scheduling chunk execute concurrently, global stores do not
/// touch the shared buffers: each block records its writes here, keyed by
/// device address, and reads check the overlay first so a block always sees
/// its own writes layered over the chunk-start state. The executor then
/// applies overlays to the real buffers in ascending block order — the
/// deterministic commit that makes `--threads=N` bit-identical to
/// `--threads=1`.
///
/// Values are stored as raw little-endian bytes (up to 8) so one structure
/// serves every Buffer<T> element type. Lookup is an open-addressed hash
/// table over a dense entry vector; clear() is O(1) via slot versioning so
/// a worker can reuse one overlay for every block it executes.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace speckle::simt {

class WriteOverlay {
 public:
  struct Write {
    std::uint64_t addr = 0;  ///< device address (hash key)
    std::uint64_t raw = 0;   ///< value bytes, zero-padded to 8
    void* host = nullptr;    ///< where commit lands the bytes
    std::uint8_t size = 0;   ///< value width in bytes
  };

  /// Pointer to the raw value last written to `addr` by this block, or
  /// nullptr if the block has not written it.
  const std::uint64_t* find(std::uint64_t addr) const {
    // Range prefilter: kernels read mostly-immutable arrays (adjacency,
    // offsets) that live far from the arrays they write, so one compare
    // against the written-address envelope rejects most probes before the
    // hash. [lo_, hi_] is empty (lo_ > hi_) when there are no writes.
    if (addr < write_lo_ || addr > write_hi_) return nullptr;
    std::size_t slot = hash(addr) & mask_;
    for (;;) {
      const Slot& s = slots_[slot];
      if (s.epoch != epoch_ || s.addr == 0) return nullptr;
      if (s.addr == addr) return &writes_[s.index].raw;
      slot = (slot + 1) & mask_;
    }
  }

  /// Record (or update) this block's write of `size` bytes to `addr`.
  void put(std::uint64_t addr, void* host, std::uint64_t raw, std::uint8_t size) {
    if (addr < write_lo_) write_lo_ = addr;
    if (addr > write_hi_) write_hi_ = addr;
    if (slots_.empty() || (writes_.size() + 1) * 2 > slots_.size()) grow();
    std::size_t slot = hash(addr) & mask_;
    for (;;) {
      Slot& s = slots_[slot];
      if (s.epoch != epoch_ || s.addr == 0) {
        s = {addr, static_cast<std::uint32_t>(writes_.size()), epoch_};
        writes_.push_back({addr, raw, host, size});
        return;
      }
      if (s.addr == addr) {
        writes_[s.index].raw = raw;
        return;
      }
      slot = (slot + 1) & mask_;
    }
  }

  /// The block's writes in first-write order (one entry per address).
  std::span<const Write> writes() const { return writes_; }

  bool empty() const { return writes_.empty(); }

  /// Forget everything but keep the allocations (per-block reuse).
  void clear() {
    writes_.clear();
    ++epoch_;
    write_lo_ = ~std::uint64_t{0};
    write_hi_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t addr = 0;
    std::uint32_t index = 0;
    std::uint64_t epoch = 0;  ///< valid only when == current epoch
  };

  static std::size_t hash(std::uint64_t addr) {
    // Fibonacci multiplicative hash; addresses are >= 0x1000 and word-ish
    // aligned, so mix the high bits down.
    return static_cast<std::size_t>((addr * 0x9e3779b97f4a7c15ULL) >> 32);
  }

  void grow() {
    const std::size_t cap = slots_.empty() ? 256 : slots_.size() * 2;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    ++epoch_;
    for (std::uint32_t i = 0; i < writes_.size(); ++i) {
      std::size_t slot = hash(writes_[i].addr) & mask_;
      while (slots_[slot].epoch == epoch_ && slots_[slot].addr != 0) {
        slot = (slot + 1) & mask_;
      }
      slots_[slot] = {writes_[i].addr, i, epoch_};
    }
  }

  std::vector<Write> writes_;
  std::vector<Slot> slots_;
  std::uint64_t epoch_ = 1;
  std::size_t mask_ = 0;
  std::uint64_t write_lo_ = ~std::uint64_t{0};  ///< written-address envelope
  std::uint64_t write_hi_ = 0;
};

}  // namespace speckle::simt
