#pragma once
/// \file timing.hpp
/// Event-driven per-SM warp scheduling over merged warp traces.
///
/// Each SM interleaves its resident warps: at every step the scheduler
/// issues from the ready warp with the earliest ready-time, charging issue
/// bandwidth (4 schedulers per Kepler SMX). A warp's ready-time advances by
/// the latency of what it issued: ALU pipeline latency, the memory system's
/// answer for each coalesced transaction (with MSHR throttling), atomic-unit
/// completion, or a block barrier. Whenever the scheduler must jump forward
/// in time, the gap is attributed to the stall reason of the warp that ends
/// it — producing the Fig 3(b) breakdown. A wave's duration is additionally
/// floored by the DRAM bandwidth its transactions consumed (Fig 3(a)'s
/// achieved-bandwidth axis).
///
/// All per-wave runtime state (warp/barrier tables, the MSHR heap, the
/// per-SM wave views and stats partials) is pooled on the engine and reused
/// across waves, so steady-state timing performs no heap allocation.

#include <cstdint>
#include <vector>

#include "simt/config.hpp"
#include "simt/memory.hpp"
#include "simt/stats.hpp"
#include "simt/trace.hpp"

namespace speckle::support {
class ThreadPool;
}

namespace speckle::simt {

/// Cycles to move `bytes` between two peer devices over the modeled
/// interconnect (DeviceConfig::d2d_latency_us/d2d_gbps): a fixed setup
/// latency plus the bandwidth term, mirroring the PCIe host-transfer model.
/// Used by Device::copy_peer for the multi-device boundary exchanges.
std::uint64_t d2d_transfer_cycles(const DeviceConfig& dev, std::uint64_t bytes);

/// One thread block's merged warp traces, ready for timing. The warps
/// vector is a grow-only pool (shrinking would free the SoA buffers the
/// reuse depends on); the first `active` entries are this block's.
struct BlockWork {
  std::vector<WarpTrace> warps;
  std::uint32_t active = 0;
};

class TimingEngine {
 public:
  TimingEngine(const DeviceConfig& dev, MemorySystem& memory)
      : dev_(dev), memory_(memory) {}

  /// Simulate one wave. `per_sm[sm]` holds the blocks resident on that SM.
  /// Returns the wave's end cycle; accumulates counters and stalls into
  /// `stats`. Each SM's event loop runs against its own wave view of the
  /// memory system and its own stats partial, merged in SM order afterwards
  /// — so the result is bit-identical whether the loops run serially
  /// (`pool == nullptr`) or concurrently on `pool`. When `profile` is
  /// non-null it receives the wave's per-SM timing samples (same SM-order
  /// merge, same determinism).
  double run_wave(const std::vector<std::vector<const BlockWork*>>& per_sm,
                  double start, KernelStats& stats,
                  support::ThreadPool* pool = nullptr,
                  WaveProfile* profile = nullptr);

 private:
  struct SmOutcome {
    double finish = 0.0;
    std::uint64_t dram_transactions = 0;
  };

  struct WarpRt {
    const WarpTrace* trace = nullptr;
    std::size_t cursor = 0;
    double ready = 0.0;
    Stall reason = Stall::kIdle;
    std::uint32_t block_slot = 0;
    bool parked = false;

    bool done() const { return cursor >= trace->size(); }
  };

  struct BarrierRt {
    std::uint32_t expected = 0;
    std::uint32_t arrived = 0;
    double max_arrival = 0.0;
    std::vector<std::uint32_t> waiting;
  };

  /// Per-SM event-loop scratch, reused across waves. Distinct SMs use
  /// distinct entries, so the pool-parallel loops never share one.
  struct SmScratch {
    std::vector<WarpRt> warps;
    std::vector<BarrierRt> barriers;
    std::vector<double> mshr;  ///< min-heap of outstanding miss completions
    /// Min-heap of (ready, warp index) over runnable warps: popping yields
    /// the earliest-ready warp, ties broken by lowest index — the same warp
    /// the old O(warps) scan selected. Parked and finished warps are simply
    /// absent.
    std::vector<std::pair<double, std::uint32_t>> ready_q;
  };

  SmOutcome run_sm(std::uint32_t sm, const std::vector<const BlockWork*>& blocks,
                   double start, KernelStats& stats, MemorySystem::WaveView& view);

  const DeviceConfig& dev_;
  MemorySystem& memory_;
  // Pooled per-wave state (lazily sized on the first wave).
  std::vector<SmScratch> scratch_;
  std::vector<MemorySystem::WaveView> views_;
  std::vector<KernelStats> partials_;
  std::vector<SmOutcome> outcomes_;
};

}  // namespace speckle::simt
