#pragma once
/// \file timing.hpp
/// Event-driven per-SM warp scheduling over merged warp traces.
///
/// Each SM interleaves its resident warps: at every step the scheduler
/// issues from the ready warp with the earliest ready-time, charging issue
/// bandwidth (4 schedulers per Kepler SMX). A warp's ready-time advances by
/// the latency of what it issued: ALU pipeline latency, the memory system's
/// answer for each coalesced transaction (with MSHR throttling), atomic-unit
/// completion, or a block barrier. Whenever the scheduler must jump forward
/// in time, the gap is attributed to the stall reason of the warp that ends
/// it — producing the Fig 3(b) breakdown. A wave's duration is additionally
/// floored by the DRAM bandwidth its transactions consumed (Fig 3(a)'s
/// achieved-bandwidth axis).

#include <cstdint>
#include <vector>

#include "simt/config.hpp"
#include "simt/memory.hpp"
#include "simt/stats.hpp"
#include "simt/trace.hpp"

namespace speckle::support {
class ThreadPool;
}

namespace speckle::simt {

/// One thread block's merged warp traces, ready for timing.
struct BlockWork {
  std::vector<WarpTrace> warps;
};

class TimingEngine {
 public:
  TimingEngine(const DeviceConfig& dev, MemorySystem& memory)
      : dev_(dev), memory_(memory) {}

  /// Simulate one wave. `per_sm[sm]` holds the blocks resident on that SM.
  /// Returns the wave's end cycle; accumulates counters and stalls into
  /// `stats`. Each SM's event loop runs against its own wave view of the
  /// memory system and its own stats partial, merged in SM order afterwards
  /// — so the result is bit-identical whether the loops run serially
  /// (`pool == nullptr`) or concurrently on `pool`.
  double run_wave(const std::vector<std::vector<const BlockWork*>>& per_sm,
                  double start, KernelStats& stats,
                  support::ThreadPool* pool = nullptr);

 private:
  struct SmOutcome {
    double finish = 0.0;
    std::uint64_t dram_transactions = 0;
  };

  SmOutcome run_sm(std::uint32_t sm, const std::vector<const BlockWork*>& blocks,
                   double start, KernelStats& stats, MemorySystem::WaveView& view);

  const DeviceConfig& dev_;
  MemorySystem& memory_;
};

}  // namespace speckle::simt
