#pragma once
/// \file buffer.hpp
/// Typed device buffers.
///
/// Data lives in host memory (functional simulation); each buffer also has
/// a unique, 256-byte-aligned *device address range* so the cache models,
/// the coalescer and the atomic unit see a realistic address space.
/// Buffers are created through Device::alloc<T>() and must outlive every
/// kernel that captures them.

#include <cstdint>
#include <span>
#include <vector>

#include "simt/san.hpp"
#include "support/check.hpp"

namespace speckle::simt {

class Device;

template <typename T>
class Buffer {
 public:
  static_assert(std::is_trivially_copyable_v<T>, "device data must be POD-like");

  Buffer() = default;

  std::size_t size() const { return data_.size(); }
  std::uint64_t byte_size() const { return data_.size() * sizeof(T); }

  /// Device address of element i (for trace records).
  std::uint64_t addr_of(std::size_t i) const { return base_ + i * sizeof(T); }
  std::uint64_t base_addr() const { return base_; }

  /// Host-side access (initialisation and result readback; the simulated
  /// transfer cost, when it matters, is charged via Device::copy_*).
  /// When the owning device sanitizes, every mutable host access marks the
  /// touched words initialised in the shadow map — conservative (a read
  /// through the non-const path marks too), which can only suppress
  /// uninitialized-load findings, never invent them.
  T& operator[](std::size_t i) {
    if (san_ != nullptr) san_->on_host_write(addr_of(i), sizeof(T));
    return data_[i];
  }
  const T& operator[](std::size_t i) const { return data_[i]; }
  std::span<T> host() {
    if (san_ != nullptr) san_->on_host_write(base_, byte_size());
    return data_;
  }
  std::span<const T> host() const { return data_; }

  void fill(T value) {
    if (san_ != nullptr) san_->on_host_write(base_, byte_size());
    std::fill(data_.begin(), data_.end(), value);
  }

  void copy_from(std::span<const T> src) {
    SPECKLE_CHECK(src.size() == data_.size(), "copy_from size mismatch");
    if (san_ != nullptr) san_->on_host_write(base_, byte_size());
    std::copy(src.begin(), src.end(), data_.begin());
  }

 private:
  friend class Device;
  Buffer(std::uint64_t base, std::size_t n, san::Sanitizer* san = nullptr)
      : base_(base), san_(san), data_(n) {}

  std::uint64_t base_ = 0;
  san::Sanitizer* san_ = nullptr;  ///< owned by the Device; null when off
  std::vector<T> data_;
};

}  // namespace speckle::simt
