#pragma once
/// \file scan.hpp
/// Block-wide exclusive prefix sum as *device code* — the Blelloch
/// work-efficient scan (the algorithm behind CUB's BlockScan, which the
/// paper's Section III-C builds its worklist compaction on, Fig 5).
///
/// Thread::scan_push charges an abstracted cost for this primitive; this
/// module is the concrete, phase-structured implementation, used by tests
/// to validate both the phased-execution machinery and the cost abstraction
/// (the charged cost must be of the same order as this real kernel's).

#include <cstdint>

#include "simt/device.hpp"

namespace speckle::simt {

/// Compute, on the device, the per-block exclusive prefix sum of `input`:
/// output[i] = sum of input[j] for j < i within i's block. `block_threads`
/// must be a power of two; input/output sizes must be a multiple of it.
/// Returns the kernel stats of the scan launch.
const KernelStats& block_exclusive_scan(Device& dev, const Buffer<std::uint32_t>& input,
                                        Buffer<std::uint32_t>& output,
                                        std::uint32_t block_threads);

}  // namespace speckle::simt
