#include "simt/trace.hpp"

#include <algorithm>
#include <cstring>

#include "support/check.hpp"

namespace speckle::simt {
namespace {

/// Upper bound on lanes per merge (warp_size is 32 on every modeled device;
/// the headroom keeps the scratch arrays safe for exotic configs).
constexpr std::size_t kMaxLanes = 64;

constexpr std::uint16_t kSyncKey =
    ThreadTrace::make_key(OpKind::kSync, Space::kGlobal);

}  // namespace

std::vector<std::uint64_t> coalesce(std::span<const std::uint64_t> addrs,
                                    std::span<const std::uint8_t> sizes,
                                    std::uint32_t line_bytes) {
  SPECKLE_CHECK(addrs.size() == sizes.size(), "coalesce: addr/size mismatch");
  Coalescer coalescer(line_bytes);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    coalescer.add(addrs[i], sizes[i]);
  }
  const auto lines = coalescer.lines();
  return {lines.begin(), lines.end()};
}

void merge_warp(std::span<const ThreadTrace> lanes, std::uint32_t line_bytes,
                WarpTrace& out) {
  SPECKLE_CHECK(!lanes.empty(), "merge_warp: no lanes");
  SPECKLE_CHECK(lanes.size() <= kMaxLanes, "merge_warp: too many lanes");
  out.clear();
  const std::size_t n = lanes.size();
  std::array<std::uint32_t, kMaxLanes> cursor{};
  Coalescer coalescer(line_bytes);
  std::array<std::uint64_t, kMaxLanes> atomic_addrs;

  // Hoist the per-lane SoA streams: the scans and gathers below touch these
  // small pointer arrays, not the trace objects.
  std::array<const std::uint16_t*, kMaxLanes> keys;
  std::array<const std::uint16_t*, kMaxLanes> cs;  // count-or-size stream
  std::array<const std::uint64_t*, kMaxLanes> addrs;
  std::array<std::uint32_t, kMaxLanes> len;
  for (std::size_t l = 0; l < n; ++l) {
    keys[l] = lanes[l].key_data();
    cs[l] = lanes[l].cs_data();
    addrs[l] = lanes[l].addr_data();
    len[l] = static_cast<std::uint32_t>(lanes[l].size());
  }

  // Whether ANY access of ANY lane can straddle a line boundary (or is an
  // aligned zero-size access, which the Coalescer drops), decided once per
  // warp from the traces' append-time straddle summaries instead of per
  // lane per op. Warps with a straddler route every memory op through the
  // Coalescer — the reference path, so the output is unchanged.
  std::uint64_t straddle_or = 0;
  for (std::size_t l = 0; l < n; ++l) straddle_or |= lanes[l].straddle_or();
  const bool any_straddle = straddle_or >= line_bytes;

  // Two-phase memory-op coalesce shared by every path below. Phase 1 reads
  // each participating lane's address through the pure accessor addr_of —
  // independent loads the core can overlap — and phase 2 runs a branchless
  // ascending dedup scan over the dense local line array (the speculative
  // store + predicated length bump beats branching on the lane pattern:
  // irregular adjacency makes "same line as last?" genuinely unpredictable).
  // Feeding the Coalescer lane-by-lane instead chains every insert through
  // the previous one's state, a serial dependency the dominant in-order
  // single-line warp pattern doesn't need. Out-of-order lanes (and any
  // straddling warp, above) fall back to the Coalescer, whose insertion the
  // scan specializes — the emitted line sequence is identical either way.
  // line_bytes is a power of two (the Coalescer constructor checked).
  const std::uint64_t line_mask = line_bytes - 1;
  std::array<std::uint64_t, kMaxLanes> lane_lines;
  std::array<std::uint64_t, kMaxLanes> lines_out;
  auto emit_mem = [&](OpKind kind, Space space, std::uint16_t active,
                      std::size_t cnt, auto&& addr_of, auto&& size_of) {
    bool slow = any_straddle;
    std::size_t m = 0;
    if (!slow && cnt != 0) {
      for (std::size_t l = 0; l < cnt; ++l) {
        lane_lines[l] = addr_of(l) & ~line_mask;
      }
      std::uint64_t prev = lane_lines[0];
      lines_out[0] = prev;
      m = 1;
      bool unordered = false;
      for (std::size_t l = 1; l < cnt; ++l) {
        const std::uint64_t v = lane_lines[l];
        unordered |= v < prev;
        lines_out[m] = v;
        m += v != prev;
        prev = v;
      }
      slow = unordered;
    }
    if (slow) {
      coalescer.reset();
      for (std::size_t l = 0; l < cnt; ++l) {
        coalescer.add(addr_of(l), size_of(l));
      }
      out.push_op(kind, space, 1, active, coalescer.lines());
    } else {
      out.push_op(kind, space, 1, active, {lines_out.data(), m});
    }
  };

  // Whole-trace fast path: when every lane ran the exact same (kind, space)
  // sequence — the dominant case for the regular T-*/D-* kernels — the
  // general loop below would take its converged branch every round. Decide
  // that once with vectorized stream compares, then emit without any cursor
  // or participation bookkeeping. Produces the identical instruction stream.
  bool lockstep = true;
  for (std::size_t l = 1; l < n && lockstep; ++l) {
    lockstep = len[l] == len[0] &&
               std::memcmp(keys[l], keys[0], len[0] * sizeof(keys[0][0])) == 0;
  }
  if (lockstep) {
    const std::uint16_t active = static_cast<std::uint16_t>(n);
    for (std::uint32_t i = 0; i < len[0]; ++i) {
      const std::uint16_t key = keys[0][i];
      const OpKind kind = static_cast<OpKind>(key >> 8);
      const Space space = static_cast<Space>(key & 0xff);
      switch (kind) {
        case OpKind::kLoad:
        case OpKind::kStore:
          emit_mem(
              kind, space, active, n,
              [&](std::size_t l) { return addrs[l][i]; },
              [&](std::size_t l) { return cs[l][i]; });
          break;
        case OpKind::kAtomic:
          for (std::size_t l = 0; l < n; ++l) atomic_addrs[l] = addrs[l][i];
          out.push_op(kind, space, 1, active, {atomic_addrs.data(), n});
          break;
        case OpKind::kCompute: {
          std::uint16_t inst = 0;
          for (std::size_t l = 0; l < n; ++l) {
            inst = std::max(inst, cs[l][i]);
          }
          out.push_op(kind, space, inst, active);
          break;
        }
        default:  // kSharedAccess, kSync: unit count, no addresses
          out.push_op(kind, space, 1, active);
          break;
      }
    }
    return;
  }

  for (;;) {
    // Fast path: every lane alive and at the same (kind, space) — the
    // fully-converged case. One pass over the 2-byte key stream decides it,
    // and the same pass's gather emits the warp instruction. (When the
    // shared key is kSync this matches the general path too: all live lanes
    // are at the barrier, so the sync leader would have been picked.)
    if (cursor[0] < len[0]) {
      const std::uint16_t key0 = keys[0][cursor[0]];
      bool converged = true;
      for (std::size_t l = 1; l < n; ++l) {
        if (cursor[l] >= len[l] || keys[l][cursor[l]] != key0) {
          converged = false;
          break;
        }
      }
      if (converged) {
        const OpKind kind = static_cast<OpKind>(key0 >> 8);
        const Space space = static_cast<Space>(key0 & 0xff);
        const std::uint16_t active = static_cast<std::uint16_t>(n);
        switch (kind) {
          case OpKind::kLoad:
          case OpKind::kStore:
            emit_mem(
                kind, space, active, n,
                [&](std::size_t l) { return addrs[l][cursor[l]]; },
                [&](std::size_t l) { return cs[l][cursor[l]]; });
            for (std::size_t l = 0; l < n; ++l) ++cursor[l];
            break;
          case OpKind::kAtomic:
            for (std::size_t l = 0; l < n; ++l) {
              atomic_addrs[l] = addrs[l][cursor[l]++];
            }
            out.push_op(kind, space, 1, active, {atomic_addrs.data(), n});
            break;
          case OpKind::kCompute: {
            std::uint16_t inst = 0;
            for (std::size_t l = 0; l < n; ++l) {
              inst = std::max(inst, cs[l][cursor[l]++]);
            }
            out.push_op(kind, space, inst, active);
            break;
          }
          default:  // kSharedAccess, kSync: unit count, no addresses
            for (std::size_t l = 0; l < n; ++l) ++cursor[l];
            out.push_op(kind, space, 1, active);
            break;
        }
        continue;
      }
    }

    // General (divergent) path. Find the leader: the lowest lane that still
    // has ops and is NOT parked at a barrier — kSync is an alignment fence,
    // so divergent lanes finish their pre-barrier work first and all lanes
    // consume the barrier as one warp instruction. Its current op's (kind,
    // space) selects which lanes participate this round; lanes whose
    // current op differs are on a divergent path and wait their turn.
    int leader = -1;
    int sync_leader = -1;
    for (std::size_t lane = 0; lane < n; ++lane) {
      if (cursor[lane] >= len[lane]) continue;
      if (keys[lane][cursor[lane]] == kSyncKey) {
        if (sync_leader < 0) sync_leader = static_cast<int>(lane);
        continue;
      }
      leader = static_cast<int>(lane);
      break;
    }
    if (leader < 0) leader = sync_leader;  // every live lane is at the barrier
    if (leader < 0) break;
    const std::uint16_t key = keys[leader][cursor[leader]];
    const OpKind kind = static_cast<OpKind>(key >> 8);
    const Space space = static_cast<Space>(key & 0xff);

    std::uint16_t inst = 0;
    std::uint16_t active = 0;
    std::size_t num_addr = 0;
    std::array<std::uint64_t, kMaxLanes> lane_addr;
    std::array<std::uint16_t, kMaxLanes> lane_size;
    for (std::size_t lane = 0; lane < n; ++lane) {
      const std::uint32_t c = cursor[lane];
      if (c >= len[lane] || keys[lane][c] != key) continue;
      ++cursor[lane];
      ++active;
      if (kind == OpKind::kCompute) {
        inst = std::max(inst, cs[lane][c]);
      } else if (kind == OpKind::kLoad || kind == OpKind::kStore) {
        lane_addr[num_addr] = addrs[lane][c];
        lane_size[num_addr++] = cs[lane][c];
      } else if (kind == OpKind::kAtomic) {
        atomic_addrs[num_addr++] = addrs[lane][c];
      }
    }
    if (kind == OpKind::kLoad || kind == OpKind::kStore) {
      emit_mem(
          kind, space, active, num_addr,
          [&](std::size_t l) { return lane_addr[l]; },
          [&](std::size_t l) { return lane_size[l]; });
    } else if (kind == OpKind::kAtomic) {
      out.push_op(kind, space, 1, active, {atomic_addrs.data(), num_addr});
    } else {
      // Compute keeps the lane max; memory/sync ops issue once.
      out.push_op(kind, space, kind == OpKind::kCompute ? inst : 1, active);
    }
  }
}

WarpTrace merge_warp(std::span<const ThreadTrace> lanes, std::uint32_t line_bytes) {
  WarpTrace out;
  merge_warp(lanes, line_bytes, out);
  return out;
}

}  // namespace speckle::simt
