#include "simt/trace.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace speckle::simt {

void ThreadTrace::compute(std::uint32_t instructions) {
  if (instructions == 0) return;
  if (!ops_.empty() && ops_.back().kind == OpKind::kCompute &&
      ops_.back().count + instructions <= 0xffff) {
    ops_.back().count = static_cast<std::uint16_t>(ops_.back().count + instructions);
    return;
  }
  while (instructions > 0xffff) {
    ops_.push_back({OpKind::kCompute, Space::kGlobal, 0xffff, 0, 0});
    instructions -= 0xffff;
  }
  ops_.push_back({OpKind::kCompute, Space::kGlobal,
                  static_cast<std::uint16_t>(instructions), 0, 0});
}

void ThreadTrace::memory(OpKind kind, Space space, std::uint64_t addr,
                         std::uint8_t size) {
  ops_.push_back({kind, space, 1, addr, size});
}

void ThreadTrace::shared_access() {
  ops_.push_back({OpKind::kSharedAccess, Space::kGlobal, 1, 0, 0});
}

void ThreadTrace::sync() {
  ops_.push_back({OpKind::kSync, Space::kGlobal, 1, 0, 0});
}

std::vector<std::uint64_t> coalesce(std::span<const std::uint64_t> addrs,
                                    std::span<const std::uint8_t> sizes,
                                    std::uint32_t line_bytes) {
  SPECKLE_CHECK(addrs.size() == sizes.size(), "coalesce: addr/size mismatch");
  std::vector<std::uint64_t> lines;
  lines.reserve(addrs.size());
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    const std::uint64_t first = addrs[i] / line_bytes;
    const std::uint64_t last = (addrs[i] + sizes[i] - 1) / line_bytes;
    for (std::uint64_t line = first; line <= last; ++line) {
      lines.push_back(line * line_bytes);
    }
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  return lines;
}

WarpTrace merge_warp(std::span<const ThreadTrace> lanes, std::uint32_t line_bytes) {
  SPECKLE_CHECK(!lanes.empty(), "merge_warp: no lanes");
  WarpTrace trace;
  std::vector<std::size_t> cursor(lanes.size(), 0);

  // Scratch reused across iterations.
  std::vector<std::uint64_t> addrs;
  std::vector<std::uint8_t> sizes;

  for (;;) {
    // Find the leader: the lowest lane that still has ops and is NOT parked
    // at a barrier — kSync is an alignment fence, so divergent lanes finish
    // their pre-barrier work first and all lanes consume the barrier as one
    // warp instruction. Its current op's (kind, space) selects which lanes
    // participate this round; lanes whose current op differs are on a
    // divergent path and wait their turn.
    int leader = -1;
    int sync_leader = -1;
    for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
      if (cursor[lane] >= lanes[lane].ops().size()) continue;
      if (lanes[lane].ops()[cursor[lane]].kind == OpKind::kSync) {
        if (sync_leader < 0) sync_leader = static_cast<int>(lane);
        continue;
      }
      leader = static_cast<int>(lane);
      break;
    }
    if (leader < 0) leader = sync_leader;  // every live lane is at the barrier
    if (leader < 0) break;
    const ThreadOp& key = lanes[leader].ops()[cursor[leader]];

    WarpOp op;
    op.kind = key.kind;
    op.space = key.space;
    op.inst_count = 0;
    op.active_lanes = 0;
    addrs.clear();
    sizes.clear();
    for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
      if (cursor[lane] >= lanes[lane].ops().size()) continue;
      const ThreadOp& cur = lanes[lane].ops()[cursor[lane]];
      if (cur.kind != key.kind || cur.space != key.space) continue;
      ++cursor[lane];
      ++op.active_lanes;
      op.inst_count = std::max(op.inst_count, cur.count);
      if (cur.kind == OpKind::kLoad || cur.kind == OpKind::kStore) {
        addrs.push_back(cur.addr);
        sizes.push_back(cur.size);
      } else if (cur.kind == OpKind::kAtomic) {
        op.addrs.push_back(cur.addr);  // atomics keep per-lane word addresses
      }
    }
    if (key.kind == OpKind::kLoad || key.kind == OpKind::kStore) {
      op.addrs = coalesce(addrs, sizes, line_bytes);
    }
    trace.ops.push_back(std::move(op));
  }
  return trace;
}

}  // namespace speckle::simt
