#include "simt/timing.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "support/check.hpp"
#include "support/threadpool.hpp"

namespace speckle::simt {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

}  // namespace

std::uint64_t d2d_transfer_cycles(const DeviceConfig& dev, std::uint64_t bytes) {
  const double us =
      dev.d2d_latency_us + static_cast<double>(bytes) / (dev.d2d_gbps * 1e3);
  return dev.us_to_cycles(us);
}

TimingEngine::SmOutcome TimingEngine::run_sm(std::uint32_t sm,
                                             const std::vector<const BlockWork*>& blocks,
                                             double start, KernelStats& stats,
                                             MemorySystem::WaveView& view) {
  SmOutcome outcome;
  outcome.finish = start;
  if (blocks.empty()) return outcome;

  // Hoist the device parameters the event loop reads per instruction so the
  // compiler can keep them in registers across the switch.
  const double issue_cost = 1.0 / dev_.issue_slots_per_cycle;
  const double compute_latency = dev_.compute_latency;
  const double shared_latency = dev_.shared_latency;
  const std::size_t mshrs_per_sm = dev_.mshrs_per_sm;
  const std::uint64_t dram_sector_bytes = dev_.dram_sector_bytes;

  SmScratch& scratch = scratch_[sm];
  std::vector<WarpRt>& warps = scratch.warps;
  std::vector<BarrierRt>& barriers = scratch.barriers;
  warps.clear();
  if (barriers.size() < blocks.size()) barriers.resize(blocks.size());
  for (std::uint32_t slot = 0; slot < blocks.size(); ++slot) {
    BarrierRt& barrier = barriers[slot];
    barrier.expected = 0;
    barrier.arrived = 0;
    barrier.max_arrival = 0.0;
    barrier.waiting.clear();
    std::uint64_t sync_count = 0;
    bool first = true;
    for (std::uint32_t wi = 0; wi < blocks[slot]->active; ++wi) {
      const WarpTrace& wt = blocks[slot]->warps[wi];
      const std::uint64_t syncs = wt.sync_count();
      if (syncs > 0) ++barrier.expected;
      if (first) {
        sync_count = syncs;
        first = false;
      } else {
        SPECKLE_CHECK(syncs == sync_count || syncs == 0,
                      "warps of a block must hit the same barriers");
      }
      if (!wt.empty()) {
        warps.push_back({&wt, 0, start, Stall::kIdle, slot, false});
      }
    }
  }
  if (warps.empty()) return outcome;

  // Outstanding DRAM-miss completions (MSHR occupancy) for this SM, kept as
  // a min-heap over the pooled vector.
  std::vector<double>& outstanding = scratch.mshr;
  outstanding.clear();
  auto mshr_push = [&](double t) {
    outstanding.push_back(t);
    std::push_heap(outstanding.begin(), outstanding.end(), std::greater<>());
  };
  auto mshr_pop = [&] {
    std::pop_heap(outstanding.begin(), outstanding.end(), std::greater<>());
    outstanding.pop_back();
  };

  double clock = start;
  double busy = 0.0;
  std::size_t remaining = warps.size();

  // Count into locals and fold into `stats` once on exit: the compiler
  // cannot prove the stats reference doesn't alias the view's internals, so
  // counting straight into the fields would re-load and re-store each one
  // per instruction. The fold is exact for the stall sums too — each
  // partial's field starts the wave at 0.0, and 0.0 + x == x bit-for-bit
  // for the non-negative cycle sums.
  std::uint64_t warp_insts = 0;
  std::uint64_t gld_transactions = 0, gst_transactions = 0;
  std::uint64_t ro_hits = 0, ro_misses = 0;
  std::uint64_t l2_hits = 0, l2_misses = 0;
  std::uint64_t dram_bytes = 0, atomics = 0;
  std::uint64_t dram_transactions = 0;
  std::array<double, static_cast<std::size_t>(Stall::kCount)> stall_cycles{};

  auto drain_completed_mshrs = [&](double now) {
    while (!outstanding.empty() && outstanding.front() <= now) mshr_pop();
  };

  std::vector<std::pair<double, std::uint32_t>>& ready_q = scratch.ready_q;
  ready_q.clear();
  for (std::uint32_t i = 0; i < warps.size(); ++i) {
    ready_q.emplace_back(warps[i].ready, i);
  }
  std::make_heap(ready_q.begin(), ready_q.end(), std::greater<>());
  auto q_push = [&](double ready, std::uint32_t idx) {
    ready_q.emplace_back(ready, idx);
    std::push_heap(ready_q.begin(), ready_q.end(), std::greater<>());
  };

  while (remaining > 0) {
    // Pop the unparked, unfinished warp with the earliest ready time
    // (lowest index on ties — the order the old linear scan produced).
    SPECKLE_CHECK(!ready_q.empty(), "all warps parked: barrier deadlock");
    std::pop_heap(ready_q.begin(), ready_q.end(), std::greater<>());
    const std::uint32_t pick = ready_q.back().second;
    ready_q.pop_back();
    WarpRt& w = warps[pick];

   issue_from_same_warp:
    if (w.ready > clock) {
      stall_cycles[static_cast<std::size_t>(w.reason)] += w.ready - clock;
      clock = w.ready;
    }
    drain_completed_mshrs(clock);

    const WarpTrace& wt = *w.trace;
    const std::size_t cur = w.cursor;
    ++w.cursor;

    // One load of the packed meta word; each case decodes only the fields
    // it consumes (compute/sync never touch the address pool).
    const std::uint64_t m = wt.meta(cur);
    switch (WarpTrace::meta_kind(m)) {
      case OpKind::kCompute: {
        const std::uint16_t inst_count = WarpTrace::meta_inst_count(m);
        const double issue_time = inst_count * issue_cost;
        busy += issue_time;
        clock += issue_time;
        warp_insts += inst_count;
        w.ready = clock + compute_latency;
        w.reason = Stall::kExecutionDependency;
        break;
      }
      case OpKind::kSharedAccess: {
        busy += issue_cost;
        clock += issue_cost;
        ++warp_insts;
        w.ready = clock + shared_latency;
        w.reason = Stall::kExecutionDependency;
        break;
      }
      case OpKind::kLoad: {
        busy += issue_cost;
        clock += issue_cost;
        ++warp_insts;
        const Space space = WarpTrace::meta_space(m);
        double max_done = clock;
        double transaction_issue = clock;
        for (std::uint64_t line : wt.addr_span_at(m, cur)) {
          // Each extra transaction of one warp instruction replays through
          // the LSU one cycle later.
          transaction_issue += 1.0;
          // MSHR throttling: a full miss queue delays further misses. The
          // delay extends this op's completion; the resulting scheduler gap
          // is attributed below via the warp's stall reason.
          drain_completed_mshrs(transaction_issue);
          if (outstanding.size() >= mshrs_per_sm) {
            const double free_at = outstanding.front();
            mshr_pop();
            if (free_at > transaction_issue) {
              transaction_issue = free_at;
            }
          }
          const MemorySystem::LoadResult r = view.load(space, line);
          ++gld_transactions;
          if (space == Space::kReadOnly) {
            r.ro_hit ? ++ro_hits : ++ro_misses;
          }
          if (r.l2_hit) ++l2_hits;
          if (r.dram) {
            ++l2_misses;
            ++dram_transactions;
            dram_bytes += dram_sector_bytes;
            mshr_push(transaction_issue + r.latency);
          }
          max_done = std::max(max_done, transaction_issue + r.latency);
        }
        w.ready = max_done;
        // A warp waiting on its own load's data is a memory-dependency
        // stall in profiler terms, even when MSHR queueing lengthened the
        // wait — kMemoryThrottle is reserved for warps that cannot issue at
        // all (store-queue pressure, not modeled for loads).
        w.reason = Stall::kMemoryDependency;
        break;
      }
      case OpKind::kStore: {
        busy += issue_cost;
        clock += issue_cost;
        ++warp_insts;
        for (std::uint64_t line : wt.addr_span_at(m, cur)) {
          ++gst_transactions;
          if (view.store(line)) {
            ++dram_transactions;
            dram_bytes += dram_sector_bytes;
          }
        }
        // Stores are fire-and-forget: no dependency latency for the warp.
        w.ready = clock;
        w.reason = Stall::kExecutionDependency;
        break;
      }
      case OpKind::kAtomic: {
        busy += issue_cost;
        clock += issue_cost;
        ++warp_insts;
        double done = clock;
        for (std::uint64_t addr : wt.addr_span_at(m, cur)) {
          done = std::max(done, view.atomic(addr, clock));
          ++atomics;
        }
        w.ready = done;
        w.reason = Stall::kAtomic;
        break;
      }
      case OpKind::kSync: {
        busy += issue_cost;
        clock += issue_cost;
        ++warp_insts;
        BarrierRt& barrier = barriers[w.block_slot];
        ++barrier.arrived;
        barrier.max_arrival = std::max(barrier.max_arrival, clock);
        if (barrier.arrived == barrier.expected) {
          for (std::uint32_t idx : barrier.waiting) {
            warps[idx].parked = false;
            warps[idx].ready = barrier.max_arrival;
            // A warp whose sync was its last op already left `remaining`.
            if (!warps[idx].done()) q_push(barrier.max_arrival, idx);
          }
          w.ready = barrier.max_arrival;
          w.reason = Stall::kSynchronization;
          barrier.arrived = 0;
          barrier.max_arrival = 0.0;
          barrier.waiting.clear();
        } else {
          w.parked = true;
          w.reason = Stall::kSynchronization;
          w.ready = kInfinity;
          barrier.waiting.push_back(static_cast<std::uint32_t>(pick));
        }
        break;
      }
    }

    if (w.done()) {
      --remaining;
    } else if (!w.parked) {
      // Keep issuing from this warp while it would win the next heap pop
      // anyway: the heap orders by (ready, index) lexicographically, so
      // skipping the push/pop round-trip is schedule-identical whenever
      // (w.ready, pick) precedes the current top.
      if (ready_q.empty() ||
          std::pair<double, std::uint32_t>{w.ready, pick} < ready_q.front()) {
        goto issue_from_same_warp;
      }
      q_push(w.ready, pick);
    }
  }

  stats.warp_insts += warp_insts;
  stats.gld_transactions += gld_transactions;
  stats.gst_transactions += gst_transactions;
  stats.ro_hits += ro_hits;
  stats.ro_misses += ro_misses;
  stats.l2_hits += l2_hits;
  stats.l2_misses += l2_misses;
  stats.dram_bytes += dram_bytes;
  stats.atomics += atomics;
  for (std::size_t r = 0; r < stall_cycles.size(); ++r) {
    stats.stalls.cycles[r] += stall_cycles[r];
  }
  stats.stalls.busy += busy;
  outcome.dram_transactions = dram_transactions;
  outcome.finish = clock;
  return outcome;
}

double TimingEngine::run_wave(const std::vector<std::vector<const BlockWork*>>& per_sm,
                              double start, KernelStats& stats,
                              support::ThreadPool* pool, WaveProfile* profile) {
  SPECKLE_CHECK(per_sm.size() == dev_.num_sms, "per_sm must have one entry per SM");
  const std::uint32_t num_sms = static_cast<std::uint32_t>(per_sm.size());

  // Per-SM wave views and stats partials: the event loops share nothing, so
  // they can run on the pool; merging in SM order below makes the totals
  // (including the floating-point stall sums) independent of the schedule.
  // Views, partials and scratch are pooled across waves — the view reset is
  // an epoch bump, and overlay pages re-snapshot lazily on first touch.
  if (views_.empty()) {
    scratch_.resize(num_sms);
    partials_.resize(num_sms);
    outcomes_.resize(num_sms);
    views_.reserve(num_sms);
    for (std::uint32_t sm = 0; sm < num_sms; ++sm) {
      views_.push_back(memory_.wave_view(sm));
    }
  } else {
    for (std::uint32_t sm = 0; sm < num_sms; ++sm) {
      memory_.reset_view(views_[sm], sm);
    }
  }
  for (std::uint32_t sm = 0; sm < num_sms; ++sm) {
    partials_[sm] = KernelStats{};
    outcomes_[sm] = SmOutcome{};
  }

  auto run_one = [&](std::size_t sm, unsigned) {
    outcomes_[sm] = run_sm(static_cast<std::uint32_t>(sm), per_sm[sm], start,
                           partials_[sm], views_[sm]);
  };
  if (pool != nullptr) {
    pool->parallel_for_deterministic(num_sms, run_one);
  } else {
    for (std::uint32_t sm = 0; sm < num_sms; ++sm) run_one(sm, 0);
  }

  double finish = start;
  std::uint64_t wave_dram = 0;
  for (std::uint32_t sm = 0; sm < num_sms; ++sm) {
    stats.merge_wave_partial(partials_[sm]);
    finish = std::max(finish, outcomes_[sm].finish);
    wave_dram += outcomes_[sm].dram_transactions;
  }
  memory_.commit_wave(views_);

  // DRAM bandwidth floor: the wave can't finish faster than its DRAM
  // traffic (in 32-byte sectors) can be served. Queueing behind saturated
  // bandwidth lengthens every load's effective latency, which profilers
  // attribute to memory dependency — so the excess lands there.
  const double min_duration = static_cast<double>(wave_dram) *
                              dev_.dram_sector_bytes / dev_.dram_bytes_per_cycle();
  if (finish - start < min_duration) {
    const double excess = min_duration - (finish - start);
    stats.stalls.add(Stall::kMemoryDependency, excess * dev_.num_sms);
    finish = start + min_duration;
  }

  // Idle accounting: SMs that drained early, plus the scheduler-side view of
  // total issue opportunities.
  for (const SmOutcome& o : outcomes_) {
    const double sm_busy_until = std::max(o.finish, start);
    stats.stalls.add(Stall::kIdle, finish - sm_busy_until);
  }
  stats.stalls.total += (finish - start) * dev_.num_sms;

  if (profile != nullptr) {
    profile->start = start;
    profile->finish = finish;
    profile->sms.clear();
    profile->sms.reserve(num_sms);
    for (std::uint32_t sm = 0; sm < num_sms; ++sm) {
      profile->sms.push_back({std::max(outcomes_[sm].finish, start),
                              partials_[sm].stalls.busy,
                              partials_[sm].warp_insts,
                              outcomes_[sm].dram_transactions});
    }
  }
  return finish;
}

}  // namespace speckle::simt
