#include "simt/timing.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "support/check.hpp"
#include "support/threadpool.hpp"

namespace speckle::simt {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

struct WarpRt {
  const WarpTrace* trace = nullptr;
  std::size_t cursor = 0;
  double ready = 0.0;
  Stall reason = Stall::kIdle;
  std::uint32_t block_slot = 0;
  bool parked = false;

  bool done() const { return cursor >= trace->ops.size(); }
};

struct BarrierRt {
  std::uint32_t expected = 0;
  std::uint32_t arrived = 0;
  double max_arrival = 0.0;
  std::vector<std::uint32_t> waiting;
};

}  // namespace

TimingEngine::SmOutcome TimingEngine::run_sm(std::uint32_t sm,
                                             const std::vector<const BlockWork*>& blocks,
                                             double start, KernelStats& stats,
                                             MemorySystem::WaveView& view) {
  (void)sm;
  SmOutcome outcome;
  outcome.finish = start;
  if (blocks.empty()) return outcome;

  const double issue_cost = 1.0 / dev_.issue_slots_per_cycle;

  std::vector<WarpRt> warps;
  std::vector<BarrierRt> barriers(blocks.size());
  for (std::uint32_t slot = 0; slot < blocks.size(); ++slot) {
    std::uint64_t sync_count = 0;
    bool first = true;
    for (const WarpTrace& wt : blocks[slot]->warps) {
      std::uint64_t syncs = 0;
      for (const WarpOp& op : wt.ops) {
        if (op.kind == OpKind::kSync) ++syncs;
      }
      if (syncs > 0) ++barriers[slot].expected;
      if (first) {
        sync_count = syncs;
        first = false;
      } else {
        SPECKLE_CHECK(syncs == sync_count || syncs == 0,
                      "warps of a block must hit the same barriers");
      }
      if (!wt.ops.empty()) {
        warps.push_back({&wt, 0, start, Stall::kIdle, slot, false});
      }
    }
  }
  if (warps.empty()) return outcome;

  // Outstanding DRAM-miss completions (MSHR occupancy) for this SM.
  std::priority_queue<double, std::vector<double>, std::greater<>> outstanding;

  double clock = start;
  double busy = 0.0;
  std::size_t remaining = warps.size();

  auto drain_completed_mshrs = [&](double now) {
    while (!outstanding.empty() && outstanding.top() <= now) outstanding.pop();
  };

  while (remaining > 0) {
    // Pick the unparked, unfinished warp with the earliest ready time.
    std::size_t pick = warps.size();
    double best = kInfinity;
    for (std::size_t i = 0; i < warps.size(); ++i) {
      const WarpRt& w = warps[i];
      if (w.parked || w.done()) continue;
      if (w.ready < best) {
        best = w.ready;
        pick = i;
      }
    }
    SPECKLE_CHECK(pick < warps.size(), "all warps parked: barrier deadlock");
    WarpRt& w = warps[pick];

    if (w.ready > clock) {
      stats.stalls.add(w.reason, w.ready - clock);
      clock = w.ready;
    }
    drain_completed_mshrs(clock);

    const WarpOp& op = w.trace->ops[w.cursor];
    ++w.cursor;

    switch (op.kind) {
      case OpKind::kCompute: {
        const double issue_time = op.inst_count * issue_cost;
        busy += issue_time;
        clock += issue_time;
        stats.warp_insts += op.inst_count;
        w.ready = clock + dev_.compute_latency;
        w.reason = Stall::kExecutionDependency;
        break;
      }
      case OpKind::kSharedAccess: {
        busy += issue_cost;
        clock += issue_cost;
        ++stats.warp_insts;
        w.ready = clock + dev_.shared_latency;
        w.reason = Stall::kExecutionDependency;
        break;
      }
      case OpKind::kLoad: {
        busy += issue_cost;
        clock += issue_cost;
        ++stats.warp_insts;
        double max_done = clock;
        double transaction_issue = clock;
        bool throttled = false;
        for (std::uint64_t line : op.addrs) {
          // Each extra transaction of one warp instruction replays through
          // the LSU one cycle later.
          transaction_issue += 1.0;
          // MSHR throttling: a full miss queue delays further misses. The
          // delay extends this op's completion; the resulting scheduler gap
          // is attributed below via the warp's stall reason.
          drain_completed_mshrs(transaction_issue);
          if (outstanding.size() >= dev_.mshrs_per_sm) {
            const double free_at = outstanding.top();
            outstanding.pop();
            if (free_at > transaction_issue) {
              transaction_issue = free_at;
              throttled = true;
            }
          }
          const MemorySystem::LoadResult r = view.load(op.space, line);
          ++stats.gld_transactions;
          if (op.space == Space::kReadOnly) {
            r.ro_hit ? ++stats.ro_hits : ++stats.ro_misses;
          }
          if (r.l2_hit) ++stats.l2_hits;
          if (r.dram) {
            ++stats.l2_misses;
            ++outcome.dram_transactions;
            stats.dram_bytes += dev_.dram_sector_bytes;
            outstanding.push(transaction_issue + r.latency);
          }
          max_done = std::max(max_done, transaction_issue + r.latency);
        }
        w.ready = max_done;
        // A warp waiting on its own load's data is a memory-dependency
        // stall in profiler terms, even when MSHR queueing (throttled)
        // lengthened the wait — kMemoryThrottle is reserved for warps that
        // cannot issue at all (store-queue pressure, not modeled for loads).
        (void)throttled;
        w.reason = Stall::kMemoryDependency;
        break;
      }
      case OpKind::kStore: {
        busy += issue_cost;
        clock += issue_cost;
        ++stats.warp_insts;
        for (std::uint64_t line : op.addrs) {
          ++stats.gst_transactions;
          if (view.store(line)) {
            ++outcome.dram_transactions;
            stats.dram_bytes += dev_.dram_sector_bytes;
          }
        }
        // Stores are fire-and-forget: no dependency latency for the warp.
        w.ready = clock;
        w.reason = Stall::kExecutionDependency;
        break;
      }
      case OpKind::kAtomic: {
        busy += issue_cost;
        clock += issue_cost;
        ++stats.warp_insts;
        double done = clock;
        for (std::uint64_t addr : op.addrs) {
          done = std::max(done, view.atomic(addr, clock));
          ++stats.atomics;
        }
        w.ready = done;
        w.reason = Stall::kAtomic;
        break;
      }
      case OpKind::kSync: {
        busy += issue_cost;
        clock += issue_cost;
        ++stats.warp_insts;
        BarrierRt& barrier = barriers[w.block_slot];
        ++barrier.arrived;
        barrier.max_arrival = std::max(barrier.max_arrival, clock);
        if (barrier.arrived == barrier.expected) {
          for (std::uint32_t idx : barrier.waiting) {
            warps[idx].parked = false;
            warps[idx].ready = barrier.max_arrival;
          }
          w.ready = barrier.max_arrival;
          w.reason = Stall::kSynchronization;
          barrier.arrived = 0;
          barrier.max_arrival = 0.0;
          barrier.waiting.clear();
        } else {
          w.parked = true;
          w.reason = Stall::kSynchronization;
          w.ready = kInfinity;
          barrier.waiting.push_back(static_cast<std::uint32_t>(pick));
        }
        break;
      }
    }

    if (w.done()) --remaining;
  }

  stats.stalls.busy += busy;
  outcome.finish = clock;
  return outcome;
}

double TimingEngine::run_wave(const std::vector<std::vector<const BlockWork*>>& per_sm,
                              double start, KernelStats& stats,
                              support::ThreadPool* pool) {
  SPECKLE_CHECK(per_sm.size() == dev_.num_sms, "per_sm must have one entry per SM");
  const std::uint32_t num_sms = static_cast<std::uint32_t>(per_sm.size());

  // Per-SM wave views and stats partials: the event loops share nothing, so
  // they can run on the pool; merging in SM order below makes the totals
  // (including the floating-point stall sums) independent of the schedule.
  std::vector<MemorySystem::WaveView> views;
  views.reserve(num_sms);
  for (std::uint32_t sm = 0; sm < num_sms; ++sm) views.push_back(memory_.wave_view(sm));
  std::vector<KernelStats> partials(num_sms);
  std::vector<SmOutcome> outcomes(num_sms);

  auto run_one = [&](std::size_t sm, unsigned) {
    outcomes[sm] = run_sm(static_cast<std::uint32_t>(sm), per_sm[sm], start,
                          partials[sm], views[sm]);
  };
  if (pool != nullptr) {
    pool->parallel_for_deterministic(num_sms, run_one);
  } else {
    for (std::uint32_t sm = 0; sm < num_sms; ++sm) run_one(sm, 0);
  }

  double finish = start;
  std::uint64_t wave_dram = 0;
  for (std::uint32_t sm = 0; sm < num_sms; ++sm) {
    stats.merge_wave_partial(partials[sm]);
    finish = std::max(finish, outcomes[sm].finish);
    wave_dram += outcomes[sm].dram_transactions;
  }
  memory_.commit_wave(views);

  // DRAM bandwidth floor: the wave can't finish faster than its DRAM
  // traffic (in 32-byte sectors) can be served. Queueing behind saturated
  // bandwidth lengthens every load's effective latency, which profilers
  // attribute to memory dependency — so the excess lands there.
  const double min_duration = static_cast<double>(wave_dram) *
                              dev_.dram_sector_bytes / dev_.dram_bytes_per_cycle();
  if (finish - start < min_duration) {
    const double excess = min_duration - (finish - start);
    stats.stalls.add(Stall::kMemoryDependency, excess * dev_.num_sms);
    finish = start + min_duration;
  }

  // Idle accounting: SMs that drained early, plus the scheduler-side view of
  // total issue opportunities.
  for (const SmOutcome& o : outcomes) {
    const double sm_busy_until = std::max(o.finish, start);
    stats.stalls.add(Stall::kIdle, finish - sm_busy_until);
  }
  stats.stalls.total += (finish - start) * dev_.num_sms;
  return finish;
}

}  // namespace speckle::simt
