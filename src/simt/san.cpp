#include "simt/san.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace speckle::san {
namespace {

/// Findings kept per report; occurrences past the cap still count in
/// Finding::count / Report::total, so nothing is silently dropped.
constexpr std::size_t kMaxFindings = 256;

std::uint64_t word_align(std::uint64_t addr) { return addr & ~std::uint64_t{3}; }

std::uint32_t words_covered(std::uint64_t addr, std::uint8_t size) {
  const std::uint64_t first = word_align(addr);
  const std::uint64_t last = word_align(addr + size - 1);
  return static_cast<std::uint32_t>((last - first) / 4 + 1);
}

/// Record `block` into a two-slot distinct-block set.
void note_block(std::uint32_t (&slots)[2], std::uint32_t block) {
  if (slots[0] == block || slots[1] == block) return;
  if (slots[0] == Finding::kNoBlock) {
    slots[0] = block;
  } else if (slots[1] == Finding::kNoBlock) {
    slots[1] = block;
  }
}

/// A block in `slots` other than `not_this` (kNoBlock if none).
std::uint32_t other_than(const std::uint32_t (&slots)[2], std::uint32_t not_this) {
  if (slots[0] != Finding::kNoBlock && slots[0] != not_this) return slots[0];
  if (slots[1] != Finding::kNoBlock && slots[1] != not_this) return slots[1];
  return Finding::kNoBlock;
}

/// Which declared intents legitimize a dynamic access of this kind. A plain
/// load is fine on an ldg-declared buffer (weaker promise), stores and tail
/// atomics of a push path are covered by the push declaration, but an __ldg
/// needs the explicit ldg intent and a racy store the explicit racy one.
std::uint32_t allowed_intents(AccessKind kind) {
  using check::Intent;
  using check::intent_bit;
  switch (kind) {
    case AccessKind::kLoad:
      return intent_bit(Intent::kRead) | intent_bit(Intent::kLdg);
    case AccessKind::kLdg:
      return intent_bit(Intent::kLdg);
    case AccessKind::kStore:
      return intent_bit(Intent::kWrite) | intent_bit(Intent::kPush);
    case AccessKind::kStoreRacy:
      return intent_bit(Intent::kRacy);
    case AccessKind::kAtomic:
      return intent_bit(Intent::kAtomic) | intent_bit(Intent::kPush);
  }
  return 0;
}

}  // namespace

const char* access_kind_name(AccessKind k) {
  switch (k) {
    case AccessKind::kLoad: return "ld";
    case AccessKind::kLdg: return "ldg";
    case AccessKind::kStore: return "st";
    case AccessKind::kStoreRacy: return "st_racy";
    case AccessKind::kAtomic: return "atomic";
  }
  return "?";
}

const char* finding_kind_name(FindingKind k) {
  switch (k) {
    case FindingKind::kOutOfBounds: return "out-of-bounds";
    case FindingKind::kUninitLoad: return "uninitialized-load";
    case FindingKind::kRace: return "cross-block-race";
    case FindingKind::kLdgDirty: return "ldg-dirty-line";
    case FindingKind::kWorklistOverflow: return "worklist-overflow";
    case FindingKind::kWorklistAlias: return "worklist-aliasing";
    case FindingKind::kUndeclaredAccess: return "undeclared-access";
    case FindingKind::kCount: break;
  }
  return "?";
}

std::uint64_t Report::count(FindingKind kind) const {
  std::uint64_t n = 0;
  for (const Finding& f : findings) {
    if (f.kind == kind) n += f.count;
  }
  return n;
}

std::string Report::format() const {
  std::ostringstream out;
  if (clean()) {
    out << "speckle-san: 0 findings\n";
    return out.str();
  }
  for (const Finding& f : findings) {
    out << "speckle-san: " << finding_kind_name(f.kind) << ": " << f.buffer
        << " (" << access_kind_name(f.access) << " of 0x" << std::hex << f.addr
        << std::dec << ") in kernel '" << f.kernel << "' block " << f.block
        << " thread " << f.thread;
    if (f.other_block != Finding::kNoBlock) {
      out << " vs block " << f.other_block;
    }
    if (f.count > 1) out << " (x" << f.count << ")";
    out << "\n";
  }
  out << "speckle-san: " << total << " finding" << (total == 1 ? "" : "s") << " in "
      << findings.size() << " site" << (findings.size() == 1 ? "" : "s") << "\n";
  return out.str();
}

void Sanitizer::on_alloc(std::uint64_t base, std::uint64_t bytes, std::string name) {
  BufferInfo info;
  info.base = base;
  info.bytes = bytes;
  info.name = std::move(name);
  if (info.name.empty()) {
    std::ostringstream synth;
    synth << "buf@0x" << std::hex << base;
    info.name = synth.str();
  }
  info.defined.assign((bytes + 3) / 4, false);
  // Allocations are monotonically increasing in the device address space;
  // keep the registry sorted for binary search either way.
  const auto it = std::lower_bound(
      buffers_.begin(), buffers_.end(), base,
      [](const BufferInfo& b, std::uint64_t addr) { return b.base < addr; });
  buffers_.insert(it, std::move(info));
}

Sanitizer::BufferInfo* Sanitizer::find_buffer(std::uint64_t addr) {
  auto it = std::upper_bound(
      buffers_.begin(), buffers_.end(), addr,
      [](std::uint64_t a, const BufferInfo& b) { return a < b.base; });
  if (it == buffers_.begin()) return nullptr;
  --it;
  return it->base <= addr && addr < it->base + it->bytes ? &*it : nullptr;
}

std::string Sanitizer::buffer_name(std::uint64_t base) const {
  for (const BufferInfo& b : buffers_) {
    if (b.base == base) return b.name;
  }
  return "?";
}

void Sanitizer::on_host_write(std::uint64_t addr, std::uint64_t bytes) {
  if (in_launch_) return;
  mark_range(addr, bytes);
}

void Sanitizer::on_commit_write(std::uint64_t addr, std::uint64_t bytes) {
  mark_range(addr, bytes);
}

void Sanitizer::mark_range(std::uint64_t addr, std::uint64_t bytes) {
  if (bytes == 0) return;
  BufferInfo* info = find_buffer(addr);
  if (info == nullptr) return;
  const std::uint64_t first = (addr - info->base) / 4;
  const std::uint64_t last =
      std::min<std::uint64_t>((addr + bytes - 1 - info->base) / 4,
                              info->defined.size() - 1);
  for (std::uint64_t w = first; w <= last; ++w) info->defined[w] = true;
}

void Sanitizer::mark_defined(BufferInfo* info, std::uint64_t addr,
                             std::uint8_t size) {
  if (info == nullptr) return;
  const std::uint64_t first = (addr - info->base) / 4;
  const std::uint32_t n = words_covered(addr, size);
  for (std::uint32_t i = 0; i < n && first + i < info->defined.size(); ++i) {
    info->defined[first + i] = true;
  }
}

bool Sanitizer::is_defined(BufferInfo* info, std::uint64_t addr,
                           std::uint8_t size) const {
  if (info == nullptr) return true;  // unregistered: nothing to check against
  const std::uint64_t first = (addr - info->base) / 4;
  const std::uint32_t n = words_covered(addr, size);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (first + i >= info->defined.size() || !info->defined[first + i]) {
      return false;
    }
  }
  return true;
}

void Sanitizer::begin_launch(const std::string& kernel, bool racy_visibility,
                             const check::KernelSpec* spec) {
  kernel_ = kernel;
  racy_visibility_ = racy_visibility;
  spec_ = spec;
  in_launch_ = true;
  words_.clear();
  word_order_.clear();
  dirty_lines_.clear();
  ldg_lines_.clear();
  line_seen_.clear();
  read_bases_.clear();
  push_sites_.clear();
}

Sanitizer::WordState& Sanitizer::word_state(std::uint64_t word_addr,
                                            std::uint64_t buf_base) {
  auto [it, inserted] = words_.try_emplace(word_addr);
  if (inserted) {
    it->second.buf_base = buf_base;
    word_order_.push_back(word_addr);
  }
  return it->second;
}

bool Sanitizer::contains(const std::vector<std::uint64_t>& v, std::uint64_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

void Sanitizer::add_finding(FindingKind kind, AccessKind access,
                            std::uint64_t buf_base, std::uint64_t addr,
                            std::uint32_t block, std::uint32_t thread,
                            std::uint32_t other_block) {
  ++report_.total;
  Finding f;
  f.kind = kind;
  f.access = access;
  f.kernel = kernel_;
  f.buffer = buffer_name(buf_base);
  f.addr = addr;
  f.block = block;
  f.thread = thread;
  f.other_block = other_block;
  for (Finding& existing : report_.findings) {
    if (existing.same_site(f)) {
      ++existing.count;
      return;
    }
  }
  if (report_.findings.size() < kMaxFindings) {
    report_.findings.push_back(std::move(f));
  }
}

void Sanitizer::commit_block(const BlockLog& log) {
  const std::uint32_t block = log.block();
  for (const Access& a : log.accesses()) {
    if (!a.in_bounds) {
      add_finding(FindingKind::kOutOfBounds, a.kind, a.buf_base, a.addr, block,
                  a.thread);
      continue;  // the access was suppressed; no shadow updates
    }
    // Spec cross-validation (speckle::check): every in-bounds access must
    // fall inside a declared intent and range. OOB accesses were suppressed
    // above — the extent check already owns those.
    if (spec_ != nullptr &&
        !spec_->covers(a.buf_base, a.addr, a.size, allowed_intents(a.kind))) {
      add_finding(FindingKind::kUndeclaredAccess, a.kind, a.buf_base, a.addr,
                  block, a.thread);
    }
    BufferInfo* info = find_buffer(a.addr);
    const std::uint64_t word = word_align(a.addr);
    const std::uint64_t line = a.addr / line_bytes_ * line_bytes_;
    WordState& ws = word_state(word, a.buf_base);
    switch (a.kind) {
      case AccessKind::kLoad:
      case AccessKind::kLdg:
        if (!is_defined(info, a.addr, a.size)) {
          add_finding(FindingKind::kUninitLoad, a.kind, a.buf_base, a.addr, block,
                      a.thread);
        }
        note_block(ws.reader, block);
        if (!contains(read_bases_, a.buf_base)) read_bases_.push_back(a.buf_base);
        if (a.kind == AccessKind::kLdg) {
          std::uint8_t& seen = line_seen_[line];
          if ((seen & 2) == 0) {
            seen |= 2;
            ldg_lines_.push_back({line, a.buf_base, block, a.thread, a.kind});
          }
        }
        break;
      case AccessKind::kStore:
      case AccessKind::kStoreRacy:
      case AccessKind::kAtomic: {
        if (a.kind == AccessKind::kAtomic) {
          // Value-returning atomics read the pre-value; an RMW on a word
          // nothing ever initialised is a read of garbage.
          if (!is_defined(info, a.addr, a.size)) {
            add_finding(FindingKind::kUninitLoad, a.kind, a.buf_base, a.addr,
                        block, a.thread);
          }
          note_block(ws.atomic, block);
        } else if (a.kind == AccessKind::kStoreRacy) {
          ws.racy_write = true;
        } else {
          if (ws.writer[0] == Finding::kNoBlock) ws.writer_thread = a.thread;
          note_block(ws.writer, block);
        }
        mark_defined(info, a.addr, a.size);
        std::uint8_t& seen = line_seen_[line];
        if ((seen & 1) == 0) {
          seen |= 1;
          dirty_lines_.push_back({line, a.buf_base, block, a.thread, a.kind});
        }
        break;
      }
    }
  }
  for (const BlockLog::PushTarget& target : log.push_targets()) {
    bool seen = false;
    for (const PushSite& site : push_sites_) {
      seen |= site.target.items_base == target.items_base;
    }
    if (!seen) push_sites_.push_back({target, block});
  }
}

void Sanitizer::on_worklist_overflow(std::uint64_t items_base, std::uint32_t block,
                                     std::uint64_t attempted,
                                     std::uint64_t capacity) {
  (void)attempted;
  (void)capacity;
  add_finding(FindingKind::kWorklistOverflow, AccessKind::kStore, items_base,
              items_base, block, 0);
}

void Sanitizer::end_launch() {
  // Cross-block race scan: a word is racy when one block plain-writes it and
  // a *different* block reads, writes, or atomically updates it — unless the
  // launch declared racy visibility or some write went through st_racy (the
  // declared speculation channel). Atomic/atomic pairs synchronize at the
  // atomic unit and are exempt; atomic/read and atomic/plain-write are not.
  if (!racy_visibility_) {
    for (const std::uint64_t word : word_order_) {
      const WordState& ws = words_.at(word);
      if (ws.racy_write) continue;
      const std::uint32_t writer = ws.writer[0];
      if (writer != Finding::kNoBlock) {
        std::uint32_t other = other_than(ws.writer, writer);
        if (other == Finding::kNoBlock) other = other_than(ws.reader, writer);
        if (other == Finding::kNoBlock) other = other_than(ws.atomic, writer);
        if (other != Finding::kNoBlock) {
          add_finding(FindingKind::kRace, AccessKind::kStore, ws.buf_base, word,
                      writer, ws.writer_thread, other);
          continue;
        }
      }
      if (ws.atomic[0] != Finding::kNoBlock) {
        const std::uint32_t other = other_than(ws.reader, ws.atomic[0]);
        if (other != Finding::kNoBlock) {
          add_finding(FindingKind::kRace, AccessKind::kAtomic, ws.buf_base, word,
                      ws.atomic[0], 0, other);
        }
      }
    }
  }

  // RO-cache coherence: a line both ldg-read and written in this kernel
  // violates the __ldg contract whatever the order — the read-only cache is
  // not coherent with stores within a kernel.
  for (const LineSite& ldg : ldg_lines_) {
    const auto seen = line_seen_.find(ldg.line);
    if (seen == line_seen_.end() || (seen->second & 1) == 0) continue;
    for (const LineSite& dirty : dirty_lines_) {
      if (ldg.line == dirty.line) {
        add_finding(FindingKind::kLdgDirty, AccessKind::kLdg, ldg.buf_base,
                    ldg.line, ldg.block, ldg.thread, dirty.block);
        break;
      }
    }
  }

  // Double-buffer aliasing: a kernel that pushes into a worklist must not
  // also read that worklist's items or tail (W_in handed in as W_out).
  for (const PushSite& site : push_sites_) {
    if (contains(read_bases_, site.target.items_base) ||
        contains(read_bases_, site.target.tail_base)) {
      add_finding(FindingKind::kWorklistAlias, AccessKind::kStore,
                  site.target.items_base, site.target.items_base, site.block, 0);
    }
    // Spec cross-validation: scan_push destinations must be declared via
    // KernelSpec::pushes (the atomic-tail push path is covered per access).
    if (spec_ != nullptr && !spec_->declares_push(site.target.items_base)) {
      add_finding(FindingKind::kUndeclaredAccess, AccessKind::kStore,
                  site.target.items_base, site.target.items_base, site.block, 0);
    }
  }

  kernel_.clear();
  in_launch_ = false;
  spec_ = nullptr;
}

}  // namespace speckle::san
