#pragma once
/// \file stats.hpp
/// Per-kernel and per-run statistics: the raw material of Fig 3 (stall
/// breakdown, achieved throughput/bandwidth) and of every speedup figure.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "simt/config.hpp"

namespace speckle::simt {

/// Why an SM issue slot went unused — the categories of Fig 3(b).
enum class Stall : std::uint8_t {
  kMemoryDependency = 0,  ///< waiting on an outstanding global load
  kExecutionDependency,   ///< waiting on an ALU result
  kSynchronization,       ///< parked at a block barrier
  kMemoryThrottle,        ///< MSHRs full / DRAM bandwidth saturated
  kAtomic,                ///< waiting on the atomic unit
  kIdle,                  ///< no resident work (tail of a wave)
  kCount
};

const char* stall_name(Stall s);

struct StallBreakdown {
  std::array<double, static_cast<std::size_t>(Stall::kCount)> cycles{};
  double busy = 0.0;   ///< cycles an issue slot was used
  double total = 0.0;  ///< SM-cycles observed (summed over SMs)

  void add(Stall reason, double c) { cycles[static_cast<std::size_t>(reason)] += c; }
  double get(Stall reason) const { return cycles[static_cast<std::size_t>(reason)]; }
  /// Fraction of issue opportunities lost to `reason` (0..1).
  double fraction(Stall reason) const;
  StallBreakdown& operator+=(const StallBreakdown& other);
  bool operator==(const StallBreakdown&) const = default;
};

struct KernelStats {
  std::string name;
  std::uint32_t grid_blocks = 0;
  std::uint32_t block_threads = 0;
  std::uint64_t cycles = 0;         ///< kernel duration incl. launch overhead
  std::uint64_t warp_insts = 0;     ///< SIMT instructions issued
  std::uint64_t gld_transactions = 0;
  std::uint64_t gst_transactions = 0;
  std::uint64_t ro_hits = 0;
  std::uint64_t ro_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;      ///< == DRAM read transactions
  std::uint64_t dram_bytes = 0;
  std::uint64_t atomics = 0;
  StallBreakdown stalls;

  /// Fold one SM's wave partial into this kernel's totals (counters and
  /// stall cycles; identity fields like name/grid are left alone). Called
  /// in SM order so floating-point sums are schedule-independent.
  void merge_wave_partial(const KernelStats& sm_partial) {
    warp_insts += sm_partial.warp_insts;
    gld_transactions += sm_partial.gld_transactions;
    gst_transactions += sm_partial.gst_transactions;
    ro_hits += sm_partial.ro_hits;
    ro_misses += sm_partial.ro_misses;
    l2_hits += sm_partial.l2_hits;
    l2_misses += sm_partial.l2_misses;
    dram_bytes += sm_partial.dram_bytes;
    atomics += sm_partial.atomics;
    stalls += sm_partial.stalls;
  }

  /// Achieved issue throughput as a fraction of peak (Fig 3a, "compute").
  double compute_utilization() const {
    return stalls.total > 0 ? stalls.busy / stalls.total : 0.0;
  }
  /// Achieved DRAM bandwidth as a fraction of peak (Fig 3a, "memory").
  double bandwidth_utilization(const DeviceConfig& dev) const;
};

/// One wave's timing profile: per-SM finish/busy/instruction/DRAM samples
/// plus the wave bounds, in the launch-local timeline (the launch's first
/// wave starts at 0). Filled by TimingEngine::run_wave on request — the
/// raw material of the profiler's SM timeline and issue-utilization
/// histogram (src/prof).
struct WaveProfile {
  struct Sm {
    double finish = 0.0;  ///< when this SM drained (pre bandwidth floor)
    double busy = 0.0;    ///< issue-slot-busy cycles on this SM
    std::uint64_t warp_insts = 0;
    std::uint64_t dram_transactions = 0;
    bool operator==(const Sm&) const = default;
  };
  double start = 0.0;
  double finish = 0.0;  ///< wave end incl. the DRAM bandwidth floor
  std::vector<Sm> sms;  ///< one entry per SM, SM order
  bool operator==(const WaveProfile&) const = default;
};

struct TransferStats {
  std::uint64_t bytes = 0;
  std::uint64_t cycles = 0;
  std::uint32_t count = 0;
};

/// Everything a simulated run produced: the kernel log plus transfer and
/// timeline accounting. `total_cycles` is the device timeline consumed by
/// kernels + transfers since the report was reset.
struct DeviceReport {
  std::vector<KernelStats> kernels;
  TransferStats h2d;
  TransferStats d2h;
  TransferStats d2d;  ///< peer exchanges (multi-device boundary traffic)
  std::uint64_t total_cycles = 0;

  /// Aggregate stall breakdown over all kernels (weighted by SM-cycles).
  StallBreakdown aggregate_stalls() const;
  std::uint64_t total_kernel_cycles() const;
  double ms(const DeviceConfig& dev) const { return dev.cycles_to_ms(total_cycles); }
};

}  // namespace speckle::simt
