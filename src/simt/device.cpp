#include "simt/device.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "simt/worklist.hpp"
#include "support/check.hpp"
#include "support/threadpool.hpp"

namespace speckle::simt {

namespace {

std::uint32_t ceil_div(std::uint32_t a, std::uint32_t b) { return (a + b - 1) / b; }

std::uint32_t ceil_log2(std::uint32_t x) {
  std::uint32_t bits = 0;
  while ((1u << bits) < x) ++bits;
  return bits;
}

}  // namespace

void Thread::scan_push(Worklist& wl, std::uint32_t value) {
  // Ballot + local prefix work at the call site; the block-wide compaction
  // is charged at block retirement (flush_scan_pushes).
  compute(3);
  if (block_state_.san != nullptr) {
    block_state_.san->note_push_target(wl.items().base_addr(),
                                       wl.tail().base_addr());
  }
  block_state_.pushes.push_back({&wl, value, thread_in_block_});
}

/// Per-lane scratch: one arena per pool slot, reused for every block that
/// lane executes — trace arrays, block state and the write overlay keep
/// their allocations across blocks and launches. The lane traces live in
/// one flat grow-only array (lane l of warp w at index w*warp_size+l);
/// clear() retains each trace's SoA buffers, so a warm arena executes a
/// block without touching the heap.
struct Device::ExecArena {
  std::vector<ThreadTrace> lanes;  ///< flat [warp][lane], grow-only
  BlockState bstate;
  WriteOverlay overlay;
  san::BlockLog san_log;  ///< used only when the device sanitizes
};

/// A block's speculated side effects, held from its (concurrent) execution
/// until its (ordered) commit slot.
struct Device::BlockResult {
  std::vector<WriteOverlay::Write> writes;
  std::vector<BlockState::AtomicObservation> observations;
  std::vector<BlockState::PendingPush> pushes;
  std::vector<BlockState::DiscardAdd> discard_adds;
  san::BlockLog san_log;
};

Device::Device(DeviceConfig config)
    : config_(config), memory_(config_), engine_(config_, memory_) {
  if (config_.sanitize) {
    san_ = std::make_unique<san::Sanitizer>(config_.line_bytes);
  }
  if (config_.profile) {
    prof_ = std::make_unique<prof::Profiler>(config_);
  }
  if (config_.check) {
    plan_ = std::make_unique<check::LaunchPlan>();
  }
}

Device::~Device() = default;

std::uint64_t Device::allocate_range(std::uint64_t bytes) {
  const std::uint64_t base = next_addr_;
  const std::uint64_t aligned = (bytes + 255) / 256 * 256;
  // Pad with one extra 256-byte unit so distinct buffers never share a
  // cache line and every base stays 256-aligned.
  next_addr_ += aligned + 256;
  return base;
}

const KernelStats& Device::launch(const LaunchConfig& cfg, const std::string& name,
                                  const Kernel& body) {
  return run_grid(cfg, name, {body}, nullptr);
}

const KernelStats& Device::launch_phased(const LaunchConfig& cfg,
                                         const std::string& name,
                                         const std::vector<Kernel>& phases) {
  SPECKLE_CHECK(!phases.empty(), "launch_phased needs at least one phase");
  return run_grid(cfg, name, phases, nullptr);
}

const KernelStats& Device::launch(const LaunchConfig& cfg, const std::string& name,
                                  const check::KernelSpec& spec,
                                  const Kernel& body) {
  return run_grid(cfg, name, {body}, &spec);
}

const KernelStats& Device::launch_phased(const LaunchConfig& cfg,
                                         const std::string& name,
                                         const check::KernelSpec& spec,
                                         const std::vector<Kernel>& phases) {
  SPECKLE_CHECK(!phases.empty(), "launch_phased needs at least one phase");
  return run_grid(cfg, name, phases, &spec);
}

namespace {

/// Apply the block's pending scan_push requests: bump each worklist tail
/// once, write the compacted items, and charge the cost to the warp traces —
/// the CUB-style block scan (log-depth scratchpad traversal + two barriers),
/// ONE tail atomic per block, and coalesced item stores. Runs in the commit
/// phase, so it reads and writes the real (committed) buffers.
/// When sanitizing, a push past the worklist's capacity is clamped and
/// reported instead of aborting the process.
void flush_scan_pushes(const DeviceConfig& dev, const LaunchConfig& cfg,
                       std::vector<BlockState::PendingPush>& pushes,
                       BlockWork& work, san::Sanitizer* san, std::uint32_t block) {
  if (pushes.empty()) return;

  const std::uint32_t scan_insts = 2 * ceil_log2(std::max(2u, cfg.block_threads));
  for (std::uint32_t wi = 0; wi < work.active; ++wi) {
    WarpTrace& wt = work.warps[wi];
    wt.push_op(OpKind::kCompute, Space::kGlobal,
               static_cast<std::uint16_t>(scan_insts), 32);
    wt.push_op(OpKind::kSharedAccess, Space::kGlobal, 1, 32);
    wt.push_op(OpKind::kSync, Space::kGlobal, 1, 32);
  }

  // Group by destination worklist in first-seen order. Nearly every kernel
  // pushes to exactly one worklist, so a tiny flat vector beats a std::map;
  // the scratch lives across blocks (commit is single-threaded).
  static thread_local std::vector<Worklist*> lists;

  lists.clear();
  for (const BlockState::PendingPush& push : pushes) {
    if (std::find(lists.begin(), lists.end(), push.worklist) == lists.end()) {
      lists.push_back(push.worklist);
    }
  }

  for (Worklist* wl : lists) {
    std::size_t count = 0;
    for (const BlockState::PendingPush& push : pushes) {
      if (push.worklist == wl) ++count;
    }

    // Functional: reserve the range and write the items.
    Buffer<std::uint32_t>& tail = wl->tail();
    Buffer<std::uint32_t>& items = wl->items();
    const std::uint32_t offset = tail[0];
    if (san != nullptr && offset + count > items.size()) {
      san->on_worklist_overflow(items.base_addr(), block, offset + count,
                                items.size());
      count = items.size() - std::min<std::size_t>(offset, items.size());
    }
    SPECKLE_CHECK(offset + count <= items.size(), "worklist overflow");
    tail[0] = offset + static_cast<std::uint32_t>(count);
    if (san != nullptr) {
      // These runtime stores happen here, on the serial commit path, not
      // through Thread — mark the written words defined explicitly.
      san->on_commit_write(tail.addr_of(0), sizeof(std::uint32_t));
      san->on_commit_write(items.addr_of(offset),
                           count * sizeof(std::uint32_t));
    }

    // Timing: one atomic on the tail, performed by warp 0's leader.
    const std::uint64_t tail_addr = tail.addr_of(0);
    work.warps[0].push_op(OpKind::kAtomic, Space::kGlobal, 1, 1, {&tail_addr, 1});

    // Per-warp coalesced stores of that warp's items. Pushes arrive in
    // thread order, so each warp's pushes form one contiguous ascending run
    // — the coalescer's O(1) append path.
    Coalescer co(dev.line_bytes);
    std::uint16_t run_lanes = 0;
    auto emit_warp_store = [&](std::uint32_t warp) {
      if (run_lanes == 0) return;
      work.warps[warp].push_op(OpKind::kStore, Space::kGlobal, 1, run_lanes,
                               co.lines());
      co.reset();
      run_lanes = 0;
    };

    std::uint32_t run_warp = 0;
    std::size_t idx = 0;
    for (const BlockState::PendingPush& push : pushes) {
      if (push.worklist != wl) continue;
      if (idx >= count) break;  // clamped overflow: drop the excess
      const std::uint32_t warp = push.thread_in_block / dev.warp_size;
      if (warp != run_warp) {
        emit_warp_store(run_warp);
        run_warp = warp;
      }
      items[offset + idx] = push.value;
      co.add(items.addr_of(offset + idx), sizeof(std::uint32_t));
      ++run_lanes;
      ++idx;
    }
    emit_warp_store(run_warp);
  }

  // Second barrier: the offset broadcast before the stores retire.
  for (std::uint32_t wi = 0; wi < work.active; ++wi) {
    work.warps[wi].push_op(OpKind::kSync, Space::kGlobal, 1, 32);
  }
  pushes.clear();
}

}  // namespace

void Device::ensure_executor() {
  if (!arenas_.empty()) return;
  std::uint32_t lanes = config_.host_threads;
  if (lanes == 0) lanes = std::max(1u, std::thread::hardware_concurrency());
  if (lanes > 1) pool_ = std::make_unique<support::ThreadPool>(lanes);
  arenas_.reserve(lanes);
  for (std::uint32_t i = 0; i < lanes; ++i) {
    arenas_.push_back(std::make_unique<ExecArena>());
  }
}

void Device::execute_block(const LaunchConfig& cfg, const std::vector<Kernel>& phases,
                           std::uint32_t block, std::uint32_t warps_per_block,
                           ExecArena& arena, bool speculative, BlockWork& work,
                           BlockResult* result) {
  const std::size_t lane_count =
      static_cast<std::size_t>(warps_per_block) * config_.warp_size;
  if (arena.lanes.size() < lane_count) arena.lanes.resize(lane_count);
  for (std::size_t i = 0; i < lane_count; ++i) arena.lanes[i].clear();
  BlockState& bstate = arena.bstate;
  bstate.shared_words.assign(std::max<std::size_t>(cfg.smem_bytes_per_block / 4, 1),
                             0);
  bstate.pushes.clear();
  bstate.deferred.clear();
  bstate.observations.clear();
  bstate.discard_adds.clear();
  arena.overlay.clear();
  bstate.overlay = speculative ? &arena.overlay : nullptr;
  if (san_ != nullptr) {
    arena.san_log.reset(block);
    bstate.san = &arena.san_log;
  } else {
    bstate.san = nullptr;
  }

  for (std::size_t phase = 0; phase < phases.size(); ++phase) {
    for (std::uint32_t w = 0; w < warps_per_block; ++w) {
      for (std::uint32_t l = 0; l < config_.warp_size; ++l) {
        const std::uint32_t tid = w * config_.warp_size + l;
        if (tid >= cfg.block_threads) break;
        Thread thread(block, tid, cfg.block_threads, cfg.grid_blocks,
                      config_.warp_size, arena.lanes[tid], bstate);
        phases[phase](thread);
      }
      // Warp retirement: racy stores become visible to later warps (of this
      // block — cross-block visibility waits for the commit).
      for (const BlockState::DeferredWrite& write : bstate.deferred) {
        if (bstate.overlay != nullptr) {
          bstate.overlay->put(write.addr, write.host, write.value,
                              sizeof(std::uint32_t));
        } else {
          *write.host = write.value;
        }
      }
      bstate.deferred.clear();
    }
    if (phase + 1 < phases.size()) {
      for (std::size_t i = 0; i < lane_count; ++i) arena.lanes[i].sync();
    }
  }

  // Merge into the pooled warp slots: grow-only, so reused slots keep their
  // SoA buffers (merge_warp clears before filling).
  if (work.warps.size() < warps_per_block) work.warps.resize(warps_per_block);
  work.active = warps_per_block;
  for (std::uint32_t w = 0; w < warps_per_block; ++w) {
    merge_warp({arena.lanes.data() +
                    static_cast<std::size_t>(w) * config_.warp_size,
                config_.warp_size},
               config_.line_bytes, work.warps[w]);
  }

  if (result != nullptr) {
    // Move (don't copy) the overlay's writes: they are staged exactly once
    // between execution and the block's ordered commit slot.
    arena.overlay.take(result->writes);
    result->observations.assign(bstate.observations.begin(),
                                bstate.observations.end());
    result->pushes.assign(bstate.pushes.begin(), bstate.pushes.end());
    result->discard_adds.assign(bstate.discard_adds.begin(),
                                bstate.discard_adds.end());
    // Swap (not copy) the access log out of the arena: the arena's next
    // reset() clears whatever lands back in it.
    if (san_ != nullptr) std::swap(result->san_log, arena.san_log);
  }
  bstate.overlay = nullptr;
  bstate.san = nullptr;
}

bool Device::commit_block(const LaunchConfig& cfg, const std::vector<Kernel>& phases,
                          std::uint32_t block, std::uint32_t warps_per_block,
                          BlockResult& result, BlockWork& work) {
  // Validate the speculation: every pre-value a value-returning atomic
  // observed must still be the committed value. Earlier blocks' plain
  // writes never invalidate (chunk-snapshot visibility is the model); only
  // an atomic RMW chain rooted in a stale value does.
  bool valid = true;
  for (const BlockState::AtomicObservation& obs : result.observations) {
    std::uint64_t committed = 0;
    std::memcpy(&committed, obs.host, obs.size);
    if (committed != obs.pre_raw) {
      valid = false;
      break;
    }
  }

  if (valid) {
    // Fold the access log before applying the writes: the definedness
    // checks must see the state this block's loads actually read (the
    // chunk-start snapshot plus earlier commits), not its own stores.
    if (san_ != nullptr) san_->commit_block(result.san_log);
    for (const WriteOverlay::Write& write : result.writes) {
      std::memcpy(write.host, &write.raw, write.size);
      overlay_bytes_ += write.size;
    }
    overlay_writes_ += result.writes.size();
    for (const BlockState::DiscardAdd& add : result.discard_adds) {
      *add.host += add.delta;
    }
    flush_scan_pushes(config_, cfg, result.pushes, work, san_.get(), block);
    return false;
  }

  // Stale atomic pre-value (e.g. an earlier block reserved the same
  // worklist slots): re-execute the block directly against the committed
  // state at its commit slot. The decision and the replay depend only on
  // committed state, so every host thread count takes the same path.
  // (The replay regenerates the access log, so the sanitizer folds the
  // accesses the block *really* performed, not the discarded speculation.)
  ExecArena& arena = *arenas_.front();
  execute_block(cfg, phases, block, warps_per_block, arena, /*speculative=*/false,
                work, nullptr);
  if (san_ != nullptr) san_->commit_block(arena.san_log);
  flush_scan_pushes(config_, cfg, arena.bstate.pushes, work, san_.get(), block);
  return true;
}

const KernelStats& Device::run_grid(const LaunchConfig& cfg, const std::string& name,
                                    const std::vector<Kernel>& phases,
                                    const check::KernelSpec* spec) {
  SPECKLE_CHECK(cfg.grid_blocks >= 1, "kernel launched with an empty grid");
  memory_.begin_kernel();
  ensure_executor();
  if (san_ != nullptr) san_->begin_launch(name, cfg.racy_visibility, spec);
  if (plan_ != nullptr) {
    plan_->add_launch(name, spec, cfg.racy_visibility, cfg.grid_blocks,
                      cfg.block_threads);
    // Host launches here are stream-ordered and synchronous: the next
    // launch only starts after this one drained, so each launch closes its
    // own inter-barrier region. Concurrency enters the plan through the
    // async-copy windows (plan_copy_write/plan_copy_fence) and through
    // hand-built victim plans.
    plan_->barrier();
  }

  const std::uint32_t occupancy = occupancy_blocks_per_sm(config_, cfg);
  if (prof_ != nullptr) {
    prof_->begin_launch(name, cfg, occupancy, report_.total_cycles);
  }
  const std::uint32_t blocks_per_wave = occupancy * config_.num_sms;
  const std::uint32_t warps_per_block = ceil_div(cfg.block_threads, config_.warp_size);

  KernelStats stats;
  stats.name = name;
  stats.grid_blocks = cfg.grid_blocks;
  stats.block_threads = cfg.block_threads;

  // Per-launch commit accounting: functional overlay writes land at the
  // commit slots below; the L2-side page counters accumulate inside
  // MemorySystem, so the launch's share is a before/after delta.
  overlay_writes_ = 0;
  overlay_bytes_ = 0;
  const WaveCommitStats commit_start = memory_.commit_stats();

  double t = 0.0;

  for (std::uint32_t wave_begin = 0; wave_begin < cfg.grid_blocks;
       wave_begin += blocks_per_wave) {
    const std::uint32_t wave_count =
        std::min(blocks_per_wave, cfg.grid_blocks - wave_begin);
    if (works_.size() < wave_count) works_.resize(wave_count);
    while (results_.size() < wave_count) {
      results_.push_back(std::make_unique<BlockResult>());
    }

    if (cfg.racy_visibility) {
      // Kernels built on st_racy speculation *want* inter-block racy
      // visibility: on hardware a racy store surfaces through L2 within
      // hundreds of cycles — negligible against a block's lifetime — so
      // the only threads guaranteed to miss each other's writes are the
      // lanes of one warp. Snapshot execution would make whole block
      // groups mutually blind and multiply the speculative schemes'
      // conflict rounds; these launches instead run their blocks serially
      // with immediate visibility, the calibrated semantics the paper's
      // shapes were validated against. (Identical at every --threads.)
      for (std::uint32_t bi = 0; bi < wave_count; ++bi) {
        execute_block(cfg, phases, wave_begin + bi, warps_per_block,
                      *arenas_.front(), /*speculative=*/false, works_[bi],
                      nullptr);
        if (san_ != nullptr) san_->commit_block(arenas_.front()->san_log);
        flush_scan_pushes(config_, cfg, arenas_.front()->bstate.pushes,
                          works_[bi], san_.get(), wave_begin + bi);
        if (prof_ != nullptr) prof_->fold_block(works_[bi], /*replayed=*/false);
      }
    } else {
      // Execute/commit in *chunks of one block per SM*: a chunk's blocks
      // run concurrently on the pool, each against the chunk-start state
      // plus its own write overlay, then the chunk commits in ascending
      // block order before the next chunk starts. The chunk size is a
      // hardware constant — never the host thread count — so results are
      // bit-identical for every --threads value.
      const std::uint32_t chunk_blocks = config_.num_sms;
      for (std::uint32_t chunk = 0; chunk < wave_count; chunk += chunk_blocks) {
        const std::uint32_t count = std::min(chunk_blocks, wave_count - chunk);
        auto execute_one = [&](std::size_t i, unsigned slot) {
          const auto bi = chunk + static_cast<std::uint32_t>(i);
          execute_block(cfg, phases, wave_begin + bi, warps_per_block,
                        *arenas_[slot], /*speculative=*/true, works_[bi],
                        results_[bi].get());
        };
        if (pool_ != nullptr) {
          pool_->parallel_for_deterministic(count, execute_one);
        } else {
          for (std::uint32_t i = 0; i < count; ++i) execute_one(i, 0);
        }
        // Commit: side effects land in ascending block order — the serial
        // schedule every thread count reproduces bit-exactly.
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::uint32_t bi = chunk + i;
          const bool replayed =
              commit_block(cfg, phases, wave_begin + bi, warps_per_block,
                           *results_[bi], works_[bi]);
          if (prof_ != nullptr) prof_->fold_block(works_[bi], replayed);
        }
      }
    }

    if (per_sm_.size() != config_.num_sms) per_sm_.resize(config_.num_sms);
    for (auto& sm_blocks : per_sm_) sm_blocks.clear();
    for (std::uint32_t bi = 0; bi < wave_count; ++bi) {
      per_sm_[bi % config_.num_sms].push_back(&works_[bi]);
    }
    if (prof_ != nullptr) {
      WaveProfile wave;
      t = engine_.run_wave(per_sm_, t, stats, pool_.get(), &wave);
      prof_->on_wave(wave);
    } else {
      t = engine_.run_wave(per_sm_, t, stats, pool_.get());
    }
  }

  if (san_ != nullptr) san_->end_launch();

  stats.cycles =
      static_cast<std::uint64_t>(t) + config_.us_to_cycles(config_.kernel_launch_us);
  if (prof_ != nullptr) {
    prof_->on_commit(memory_.commit_stats() - commit_start, overlay_writes_,
                     overlay_bytes_);
    prof_->end_launch(stats);
  }
  report_.total_cycles += stats.cycles;
  report_.kernels.push_back(std::move(stats));
  return report_.kernels.back();
}

void Device::copy_to_device(std::uint64_t bytes) {
  const double us =
      config_.pcie_latency_us + static_cast<double>(bytes) / (config_.pcie_gbps * 1e3);
  const std::uint64_t cycles = config_.us_to_cycles(us);
  if (prof_ != nullptr) {
    prof_->on_transfer(/*h2d=*/true, bytes, cycles, report_.total_cycles);
  }
  report_.h2d.bytes += bytes;
  report_.h2d.cycles += cycles;
  ++report_.h2d.count;
  report_.total_cycles += cycles;
}

void Device::copy_to_host(std::uint64_t bytes) {
  const double us =
      config_.pcie_latency_us + static_cast<double>(bytes) / (config_.pcie_gbps * 1e3);
  const std::uint64_t cycles = config_.us_to_cycles(us);
  if (prof_ != nullptr) {
    prof_->on_transfer(/*h2d=*/false, bytes, cycles, report_.total_cycles);
  }
  report_.d2h.bytes += bytes;
  report_.d2h.cycles += cycles;
  ++report_.d2h.count;
  report_.total_cycles += cycles;
}

void Device::copy_peer(std::uint64_t bytes) {
  const std::uint64_t cycles = d2d_transfer_cycles(config_, bytes);
  if (prof_ != nullptr) {
    prof_->on_transfer_d2d(bytes, cycles, report_.total_cycles);
  }
  report_.d2d.bytes += bytes;
  report_.d2d.cycles += cycles;
  ++report_.d2d.count;
  report_.total_cycles += cycles;
}

void Device::copy_peer_async(std::uint64_t bytes, std::uint64_t start_cycle,
                             std::uint64_t cycles) {
  if (prof_ != nullptr) {
    prof_->on_transfer_d2d(bytes, cycles, start_cycle);
  }
  report_.d2d.bytes += bytes;
  report_.d2d.cycles += cycles;
  ++report_.d2d.count;
  // No total_cycles advance: the copy engine runs beside the SMs. The
  // consumer calls sync_to(start_cycle + cycles).
}

void Device::sync_to(std::uint64_t cycle) {
  if (cycle > report_.total_cycles) report_.total_cycles = cycle;
}

void Device::charge_host_cycles(std::uint64_t cycles) { report_.total_cycles += cycles; }

void Device::reset_report() {
  report_ = DeviceReport{};
  if (prof_ != nullptr) prof_->reset();
}

}  // namespace speckle::simt
