#include "simt/device.hpp"

#include <algorithm>
#include <map>

#include "simt/worklist.hpp"
#include "support/check.hpp"

namespace speckle::simt {
namespace {

std::uint32_t ceil_div(std::uint32_t a, std::uint32_t b) { return (a + b - 1) / b; }

std::uint32_t ceil_log2(std::uint32_t x) {
  std::uint32_t bits = 0;
  while ((1u << bits) < x) ++bits;
  return bits;
}

}  // namespace

void Thread::scan_push(Worklist& wl, std::uint32_t value) {
  // Ballot + local prefix work at the call site; the block-wide compaction
  // is charged at block retirement (flush_scan_pushes).
  compute(3);
  block_state_.pushes.push_back({&wl, value, thread_in_block_});
}

Device::Device(DeviceConfig config)
    : config_(config), memory_(config_), engine_(config_, memory_) {}

std::uint64_t Device::allocate_range(std::uint64_t bytes) {
  const std::uint64_t base = next_addr_;
  const std::uint64_t aligned = (bytes + 255) / 256 * 256;
  // Pad with one extra 256-byte unit so distinct buffers never share a
  // cache line and every base stays 256-aligned.
  next_addr_ += aligned + 256;
  return base;
}

const KernelStats& Device::launch(const LaunchConfig& cfg, const std::string& name,
                                  const Kernel& body) {
  return run_grid(cfg, name, {body});
}

const KernelStats& Device::launch_phased(const LaunchConfig& cfg,
                                         const std::string& name,
                                         const std::vector<Kernel>& phases) {
  SPECKLE_CHECK(!phases.empty(), "launch_phased needs at least one phase");
  return run_grid(cfg, name, phases);
}

namespace {

/// Apply the block's pending scan_push requests: bump each worklist tail
/// once, write the compacted items, and charge the cost to the warp traces —
/// the CUB-style block scan (log-depth scratchpad traversal + two barriers),
/// ONE tail atomic per block, and coalesced item stores.
void flush_scan_pushes(const DeviceConfig& dev, const LaunchConfig& cfg,
                       BlockState& bstate, BlockWork& work) {
  if (bstate.pushes.empty()) return;

  const std::uint32_t scan_insts = 2 * ceil_log2(std::max(2u, cfg.block_threads));
  for (WarpTrace& wt : work.warps) {
    wt.ops.push_back({OpKind::kCompute, Space::kGlobal,
                      static_cast<std::uint16_t>(scan_insts), 32, {}});
    wt.ops.push_back({OpKind::kSharedAccess, Space::kGlobal, 1, 32, {}});
    wt.ops.push_back({OpKind::kSync, Space::kGlobal, 1, 32, {}});
  }

  // Group by destination worklist, preserving thread order within a group.
  std::map<Worklist*, std::vector<const BlockState::PendingPush*>> groups;
  for (const BlockState::PendingPush& push : bstate.pushes) {
    groups[push.worklist].push_back(&push);
  }

  for (auto& [wl, pushes] : groups) {
    // Functional: reserve the range and write the items.
    Buffer<std::uint32_t>& tail = wl->tail();
    Buffer<std::uint32_t>& items = wl->items();
    const std::uint32_t offset = tail[0];
    SPECKLE_CHECK(offset + pushes.size() <= items.size(), "worklist overflow");
    tail[0] = offset + static_cast<std::uint32_t>(pushes.size());

    // Timing: one atomic on the tail, performed by warp 0's leader.
    work.warps.front().ops.push_back(
        {OpKind::kAtomic, Space::kGlobal, 1, 1, {tail.addr_of(0)}});

    // Per-warp coalesced stores of that warp's items.
    std::vector<std::vector<std::uint64_t>> warp_addrs(work.warps.size());
    std::vector<std::vector<std::uint8_t>> warp_sizes(work.warps.size());
    for (std::size_t i = 0; i < pushes.size(); ++i) {
      items[offset + i] = pushes[i]->value;
      const std::uint32_t warp = pushes[i]->thread_in_block / dev.warp_size;
      warp_addrs[warp].push_back(items.addr_of(offset + i));
      warp_sizes[warp].push_back(sizeof(std::uint32_t));
    }
    for (std::size_t w = 0; w < work.warps.size(); ++w) {
      if (warp_addrs[w].empty()) continue;
      WarpOp store{OpKind::kStore, Space::kGlobal, 1,
                   static_cast<std::uint16_t>(warp_addrs[w].size()), {}};
      store.addrs = coalesce(warp_addrs[w], warp_sizes[w], dev.line_bytes);
      work.warps[w].ops.push_back(std::move(store));
    }
  }

  // Second barrier: the offset broadcast before the stores retire.
  for (WarpTrace& wt : work.warps) {
    wt.ops.push_back({OpKind::kSync, Space::kGlobal, 1, 32, {}});
  }
  bstate.pushes.clear();
}

}  // namespace

const KernelStats& Device::run_grid(const LaunchConfig& cfg, const std::string& name,
                                    const std::vector<Kernel>& phases) {
  SPECKLE_CHECK(cfg.grid_blocks >= 1, "kernel launched with an empty grid");
  memory_.begin_kernel();

  const std::uint32_t occupancy = occupancy_blocks_per_sm(config_, cfg);
  const std::uint32_t blocks_per_wave = occupancy * config_.num_sms;
  const std::uint32_t warps_per_block = ceil_div(cfg.block_threads, config_.warp_size);

  KernelStats stats;
  stats.name = name;
  stats.grid_blocks = cfg.grid_blocks;
  stats.block_threads = cfg.block_threads;

  double t = 0.0;
  std::vector<std::vector<ThreadTrace>> traces(
      warps_per_block, std::vector<ThreadTrace>(config_.warp_size));

  for (std::uint32_t wave_begin = 0; wave_begin < cfg.grid_blocks;
       wave_begin += blocks_per_wave) {
    const std::uint32_t wave_count =
        std::min(blocks_per_wave, cfg.grid_blocks - wave_begin);
    std::vector<BlockWork> works(wave_count);

    for (std::uint32_t bi = 0; bi < wave_count; ++bi) {
      const std::uint32_t block = wave_begin + bi;
      BlockState bstate;
      bstate.shared_words.resize(
          std::max<std::size_t>(cfg.smem_bytes_per_block / 4, 1));
      for (auto& warp : traces) {
        for (ThreadTrace& lane : warp) lane.clear();
      }

      for (std::size_t phase = 0; phase < phases.size(); ++phase) {
        for (std::uint32_t w = 0; w < warps_per_block; ++w) {
          for (std::uint32_t l = 0; l < config_.warp_size; ++l) {
            const std::uint32_t tid = w * config_.warp_size + l;
            if (tid >= cfg.block_threads) break;
            Thread thread(block, tid, cfg.block_threads, cfg.grid_blocks,
                          config_.warp_size, traces[w][l], bstate);
            phases[phase](thread);
          }
          // Warp retirement: racy stores become visible to later warps.
          for (const BlockState::DeferredWrite& write : bstate.deferred) {
            *write.target = write.value;
          }
          bstate.deferred.clear();
        }
        if (phase + 1 < phases.size()) {
          for (auto& warp : traces) {
            for (ThreadTrace& lane : warp) lane.sync();
          }
        }
      }

      BlockWork& work = works[bi];
      work.warps.reserve(warps_per_block);
      for (std::uint32_t w = 0; w < warps_per_block; ++w) {
        work.warps.push_back(merge_warp(traces[w], config_.line_bytes));
      }
      flush_scan_pushes(config_, cfg, bstate, work);
    }

    std::vector<std::vector<const BlockWork*>> per_sm(config_.num_sms);
    for (std::uint32_t bi = 0; bi < wave_count; ++bi) {
      per_sm[bi % config_.num_sms].push_back(&works[bi]);
    }
    t = engine_.run_wave(per_sm, t, stats);
  }

  stats.cycles =
      static_cast<std::uint64_t>(t) + config_.us_to_cycles(config_.kernel_launch_us);
  report_.total_cycles += stats.cycles;
  report_.kernels.push_back(std::move(stats));
  return report_.kernels.back();
}

void Device::copy_to_device(std::uint64_t bytes) {
  const double us =
      config_.pcie_latency_us + static_cast<double>(bytes) / (config_.pcie_gbps * 1e3);
  const std::uint64_t cycles = config_.us_to_cycles(us);
  report_.h2d.bytes += bytes;
  report_.h2d.cycles += cycles;
  ++report_.h2d.count;
  report_.total_cycles += cycles;
}

void Device::copy_to_host(std::uint64_t bytes) {
  const double us =
      config_.pcie_latency_us + static_cast<double>(bytes) / (config_.pcie_gbps * 1e3);
  const std::uint64_t cycles = config_.us_to_cycles(us);
  report_.d2h.bytes += bytes;
  report_.d2h.cycles += cycles;
  ++report_.d2h.count;
  report_.total_cycles += cycles;
}

void Device::charge_host_cycles(std::uint64_t cycles) { report_.total_cycles += cycles; }

void Device::reset_report() { report_ = DeviceReport{}; }

}  // namespace speckle::simt
