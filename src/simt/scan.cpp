#include "simt/scan.hpp"

#include <vector>

#include "support/check.hpp"

namespace speckle::simt {

const KernelStats& block_exclusive_scan(Device& dev, const Buffer<std::uint32_t>& input,
                                        Buffer<std::uint32_t>& output,
                                        std::uint32_t block_threads) {
  SPECKLE_CHECK((block_threads & (block_threads - 1)) == 0,
                "scan block size must be a power of two");
  SPECKLE_CHECK(input.size() == output.size(), "scan size mismatch");
  SPECKLE_CHECK(input.size() % block_threads == 0,
                "scan input must be a whole number of blocks");
  const auto n = input.size();
  const auto grid = static_cast<std::uint32_t>(n / block_threads);

  std::vector<Kernel> phases;

  // Load one element per thread into scratchpad.
  phases.push_back([&input, n](Thread& t) {
    const auto i = t.global_id();
    if (i >= n) return;
    t.shared_st(t.thread_in_block(), t.ld(input, i));
  });

  // Up-sweep (reduce) tree: after step d, shared[k] for k at the top of a
  // 2^(d+1)-wide subtree holds that subtree's sum.
  for (std::uint32_t stride = 1; stride < block_threads; stride *= 2) {
    phases.push_back([stride](Thread& t) {
      const std::uint32_t tid = t.thread_in_block();
      const std::uint32_t span = stride * 2;
      t.compute(2);
      if (tid % span != span - 1) return;
      const std::uint32_t left = tid - stride;
      t.shared_st(tid, t.shared_ld(tid) + t.shared_ld(left));
      t.compute(1);
    });
  }

  // Clear the root, then down-sweep: each step pushes prefix sums down one
  // tree level (classic Blelloch exclusive scan).
  phases.push_back([block_threads](Thread& t) {
    if (t.thread_in_block() == block_threads - 1) t.shared_st(t.thread_in_block(), 0);
  });
  for (std::uint32_t stride = block_threads / 2; stride >= 1; stride /= 2) {
    phases.push_back([stride](Thread& t) {
      const std::uint32_t tid = t.thread_in_block();
      const std::uint32_t span = stride * 2;
      t.compute(2);
      if (tid % span != span - 1) return;
      const std::uint32_t left = tid - stride;
      const std::uint32_t left_value = t.shared_ld(left);
      t.shared_st(left, t.shared_ld(tid));
      t.shared_st(tid, t.shared_ld(tid) + left_value);
      t.compute(2);
    });
  }

  // Write results back.
  phases.push_back([&output, n](Thread& t) {
    const auto i = t.global_id();
    if (i >= n) return;
    t.st(output, i, t.shared_ld(t.thread_in_block()));
  });

  return dev.launch_phased({.grid_blocks = grid,
                            .block_threads = block_threads,
                            .regs_per_thread = 24,
                            .smem_bytes_per_block = block_threads * 4},
                           "block_exclusive_scan", phases);
}

}  // namespace speckle::simt
