#pragma once
/// \file san.hpp
/// speckle::san — an in-simulator device-memory sanitizer (the simulator's
/// analogue of `cuda-memcheck` + `racecheck`, but deterministic).
///
/// Every device access already flows through `Thread`; with sanitizing
/// enabled (DeviceConfig::sanitize) each block additionally appends its
/// accesses to a per-block log while it executes (concurrently, on the wave
/// executor's pool), and the logs are folded into the sanitizer in the
/// executor's serial commit phase, in ascending block order. Because the
/// logs' contents and the fold order are both schedule-independent, every
/// report is bit-identical at any `--threads=N` — a property no hardware
/// race detector has.
///
/// Detector classes:
///   * kOutOfBounds      — ld/ldg/st/atomic outside the buffer's extent
///                         (the access is suppressed; loads return 0)
///   * kUninitLoad       — read of a device word never written by host
///                         init (fill/copy_from/host writes) or a kernel
///   * kRace             — cross-block write/write or read/write on a word
///                         not declared racy: neither written via st_racy
///                         nor part of a racy_visibility launch; atomics
///                         synchronize and are exempt among themselves
///   * kLdgDirty         — __ldg read of a 128-byte line some thread also
///                         wrote in the same kernel (RO-cache coherence —
///                         the __ldg contract forbids it)
///   * kWorklistOverflow — a block-cooperative scan_push past the
///                         worklist's capacity (the push is clamped)
///   * kWorklistAlias    — a kernel pushes into a worklist whose item or
///                         tail buffer it also reads (double-buffer
///                         aliasing, e.g. W_in used as W_out)
///   * kUndeclaredAccess — with a check::KernelSpec attached to the launch,
///                         any dynamic access (or worklist push) outside the
///                         declared intents/ranges. This is the dynamic half
///                         of speckle::check: the static checker trusts the
///                         specs, the sanitizer proves they cannot rot.
///
/// Findings are deduplicated per (kind, kernel, buffer) with an occurrence
/// count; the first occurrence's address and block/warp/lane are kept.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "simt/check.hpp"

namespace speckle::san {

/// How a kernel touched a word (finer than trace.hpp's OpKind: the racy
/// store and the RO-cache load path matter to the detectors).
enum class AccessKind : std::uint8_t {
  kLoad = 0,   ///< Thread::ld
  kLdg,        ///< Thread::ldg (read-only cache path)
  kStore,      ///< Thread::st
  kStoreRacy,  ///< Thread::st_racy (declared-racy speculation)
  kAtomic,     ///< any Thread::atomic_*
};

const char* access_kind_name(AccessKind k);

enum class FindingKind : std::uint8_t {
  kOutOfBounds = 0,
  kUninitLoad,
  kRace,
  kLdgDirty,
  kWorklistOverflow,
  kWorklistAlias,
  kUndeclaredAccess,
  kCount
};

const char* finding_kind_name(FindingKind k);

/// One deduplicated defect. `block`/`thread` locate the first occurrence;
/// for races `other_block` is the conflicting writer's block.
struct Finding {
  FindingKind kind = FindingKind::kOutOfBounds;
  AccessKind access = AccessKind::kLoad;
  std::string kernel;
  std::string buffer;
  std::uint64_t addr = 0;
  std::uint32_t block = 0;
  std::uint32_t thread = 0;               ///< thread-in-block
  std::uint32_t other_block = kNoBlock;   ///< race partner, else kNoBlock
  std::uint64_t count = 1;                ///< occurrences folded into this

  static constexpr std::uint32_t kNoBlock = 0xffffffffU;

  bool same_site(const Finding& o) const {
    return kind == o.kind && access == o.access && kernel == o.kernel &&
           buffer == o.buffer;
  }
  bool operator==(const Finding& o) const = default;
};

struct Report {
  std::vector<Finding> findings;  ///< deduped, in first-occurrence order
  std::uint64_t total = 0;        ///< occurrences before dedup

  bool clean() const { return findings.empty(); }
  std::uint64_t count(FindingKind kind) const;
  /// Human-readable multi-line rendering (one line per finding + summary).
  std::string format() const;
  bool operator==(const Report& o) const = default;
};

/// One device access as a block recorded it. `buf_base` identifies the
/// buffer exactly (addr alone could fall into a neighbour's range when the
/// index is wild), `in_bounds` is the authoritative extent check made at
/// the call site.
struct Access {
  std::uint64_t addr = 0;
  std::uint64_t buf_base = 0;
  std::uint32_t thread = 0;
  AccessKind kind = AccessKind::kLoad;
  std::uint8_t size = 0;
  bool in_bounds = true;
};

/// The per-block access log. One lives in each executor arena; it records
/// concurrently with other blocks' logs (never shared) and is folded into
/// the Sanitizer serially at the block's commit slot.
class BlockLog {
 public:
  void reset(std::uint32_t block) {
    block_ = block;
    accesses_.clear();
    push_targets_.clear();
  }

  /// Record one access; returns `in_bounds` so call sites can suppress the
  /// functional effect of a wild access in the same expression.
  bool note(AccessKind kind, std::uint64_t buf_base, std::uint64_t addr,
            std::uint8_t size, bool in_bounds, std::uint32_t thread) {
    accesses_.push_back({addr, buf_base, thread, kind, size, in_bounds});
    return in_bounds;
  }

  /// Record a scan_push destination (items and tail buffer bases) for the
  /// double-buffer aliasing check. Deduplicated — a kernel pushes to one or
  /// two worklists, so the linear scan is effectively free.
  void note_push_target(std::uint64_t items_base, std::uint64_t tail_base) {
    for (const PushTarget& t : push_targets_) {
      if (t.items_base == items_base) return;
    }
    push_targets_.push_back({items_base, tail_base});
  }

  std::uint32_t block() const { return block_; }
  const std::vector<Access>& accesses() const { return accesses_; }
  struct PushTarget {
    std::uint64_t items_base;
    std::uint64_t tail_base;
  };
  const std::vector<PushTarget>& push_targets() const { return push_targets_; }

 private:
  std::uint32_t block_ = 0;
  std::vector<Access> accesses_;
  std::vector<PushTarget> push_targets_;
};

/// The device-wide sanitizer: buffer registry with definedness shadow,
/// per-launch access aggregation, and the findings report. All methods
/// except BlockLog recording run on the host's serial paths (alloc, launch
/// boundaries, the commit phase), so no synchronization is needed anywhere.
class Sanitizer {
 public:
  /// `line_bytes` is the RO-cache/L2 line size (the granularity of the
  /// kLdgDirty detector).
  explicit Sanitizer(std::uint32_t line_bytes) : line_bytes_(line_bytes) {}

  /// Register a device allocation. `name` appears in findings.
  void on_alloc(std::uint64_t base, std::uint64_t bytes, std::string name);

  /// Host-side write (Buffer fill/copy_from/operator[]/host()): marks the
  /// words defined. Conservative: a host *read* through a non-const path
  /// also marks, which can only suppress findings, never invent them.
  /// Ignored between begin_launch and end_launch — device execution reaches
  /// Buffer::operator[] from pool threads (overlay puts take &buf[i]), and
  /// definedness from device stores is instead derived serially from the
  /// access logs at commit.
  void on_host_write(std::uint64_t addr, std::uint64_t bytes);

  /// A runtime write made on the serial commit path during a launch
  /// (worklist compaction landing pushed items): marks the words defined
  /// even while host-write hooks are suppressed.
  void on_commit_write(std::uint64_t addr, std::uint64_t bytes);

  /// Launch boundaries. Launch-wide state (the per-word conflict map and
  /// the dirtied/ldg-read line sets) resets at begin; conflicts are
  /// reported at end. `spec` (may be null for legacy spec-less launches)
  /// enables the kUndeclaredAccess detector: every folded access must fall
  /// inside a declared intent/range. The pointer must stay valid until
  /// end_launch.
  void begin_launch(const std::string& kernel, bool racy_visibility,
                    const check::KernelSpec* spec = nullptr);
  void end_launch();

  /// Fold one block's log, in ascending block order (the executor's commit
  /// order). Performs the OOB/uninit checks and accumulates race state.
  void commit_block(const BlockLog& log);

  /// A scan_push compaction would overflow `items_base`'s capacity; the
  /// runtime clamps and reports.
  void on_worklist_overflow(std::uint64_t items_base, std::uint32_t block,
                            std::uint64_t attempted, std::uint64_t capacity);

  const Report& report() const { return report_; }

  /// Name of the buffer whose registered base is `base` ("?" if unknown).
  std::string buffer_name(std::uint64_t base) const;

 private:
  struct BufferInfo {
    std::uint64_t base = 0;
    std::uint64_t bytes = 0;
    std::string name;
    std::vector<bool> defined;  ///< one bit per 4-byte word
  };

  /// Per-word launch-wide conflict state (race + declared-racy tracking).
  /// First/second slots hold *distinct* block ids, so "some other block
  /// also touched this" is decidable even when the first toucher is the
  /// writer itself.
  struct WordState {
    std::uint32_t writer[2] = {Finding::kNoBlock, Finding::kNoBlock};  ///< st
    std::uint32_t reader[2] = {Finding::kNoBlock, Finding::kNoBlock};  ///< ld/ldg
    std::uint32_t atomic[2] = {Finding::kNoBlock, Finding::kNoBlock};
    std::uint32_t writer_thread = 0;  ///< thread of writer[0]
    std::uint64_t buf_base = 0;
    bool racy_write = false;  ///< some write was st_racy → declared
  };

  BufferInfo* find_buffer(std::uint64_t addr);
  void mark_defined(BufferInfo* info, std::uint64_t addr, std::uint8_t size);
  bool is_defined(BufferInfo* info, std::uint64_t addr, std::uint8_t size) const;
  void add_finding(FindingKind kind, AccessKind access, std::uint64_t buf_base,
                   std::uint64_t addr, std::uint32_t block, std::uint32_t thread,
                   std::uint32_t other_block = Finding::kNoBlock);

  std::vector<BufferInfo> buffers_;  ///< sorted by base
  std::uint32_t line_bytes_ = 128;
  Report report_;

  void mark_range(std::uint64_t addr, std::uint64_t bytes);

  // --- current-launch state ------------------------------------------------
  std::string kernel_;
  bool racy_visibility_ = false;
  bool in_launch_ = false;  ///< suppresses host-write hooks (see above)
  const check::KernelSpec* spec_ = nullptr;  ///< declared accesses, or null
  /// Word-granular conflict map; `word_order_` preserves first-touch order
  /// so end-of-launch reporting is schedule-independent.
  std::unordered_map<std::uint64_t, WordState> words_;
  std::vector<std::uint64_t> word_order_;
  /// Lines written this kernel / lines read via ldg this kernel, with the
  /// first access site of each (for the RO-coherence report).
  struct LineSite {
    std::uint64_t line;
    std::uint64_t buf_base;
    std::uint32_t block;
    std::uint32_t thread;
    AccessKind kind;
  };
  std::vector<LineSite> dirty_lines_;
  std::vector<LineSite> ldg_lines_;
  std::unordered_map<std::uint64_t, std::uint8_t> line_seen_;  ///< bit0 dirty, bit1 ldg
  /// Buffer bases read / pushed-to this launch (worklist aliasing).
  std::vector<std::uint64_t> read_bases_;
  struct PushSite {
    BlockLog::PushTarget target;
    std::uint32_t block;
  };
  std::vector<PushSite> push_sites_;

  WordState& word_state(std::uint64_t word_addr, std::uint64_t buf_base);
  static bool contains(const std::vector<std::uint64_t>& v, std::uint64_t x);
};

}  // namespace speckle::san
