#pragma once
/// \file check.hpp
/// speckle::check — static dataflow verification of kernel launch plans.
///
/// The simulator's correctness rests on dataflow contracts the kernels never
/// state: __ldg is only legal on buffers nothing writes during the launch,
/// scan-push worklists must not alias their double buffers, speculative and
/// resolve kernels rely on a strict write -> barrier -> read order, and the
/// multi-device pipeline must keep ghost rows untouched while an exchange is
/// in flight. speckle::check makes those contracts explicit and verifiable
/// *before* any wave executes:
///
///   1. Each kernel declares a KernelSpec: every buffer it touches, with an
///      intent (read / ldg / write / racy / atomic / push) and an optional
///      byte range. Device::launch records the spec, the grid, and every
///      synchronization point into a per-run LaunchPlan IR (enabled by
///      DeviceConfig::check).
///   2. check_plan() is a pure, deterministic pass over the plan that flags
///      hazards (RAW/WAR/WAW with no intervening barrier), ldg of a buffer
///      writable in the same inter-barrier region (the paper's RO-cache
///      constraint), worklist double-buffer aliasing, push counts that can
///      overflow the worklist capacity, and accesses that overlap an
///      in-flight asynchronous copy (multidev ghost exchange).
///   3. The sanitizer closes the loop at runtime: in sanitize mode any
///      dynamic access outside the declared intent is a deterministic
///      san::FindingKind::kUndeclaredAccess, so specs cannot rot.
///
/// The header is standalone (no simt includes): spec builders duck-type on
/// Buffer's base_addr()/byte_size()/addr_of() and Worklist's items()/tail(),
/// so tests can also hand-build plans from raw addresses.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace speckle::check {

/// Declared way a kernel touches a buffer. One buffer may carry several
/// uses with different intents (e.g. plain reads plus racy stores on the
/// color array of a speculation kernel).
enum class Intent : std::uint8_t {
  kRead,    ///< plain device loads (Thread::ld)
  kLdg,     ///< read-only-cache loads (Thread::ldg); implies kRead
  kWrite,   ///< plain stores (Thread::st)
  kRacy,    ///< speculative stores (Thread::st_racy) — declared-racy channel
  kAtomic,  ///< atomic read-modify-writes (Thread::atomic_*)
  kPush,    ///< worklist appends (scan_push, or atomic-tail + item stores)
};
const char* intent_name(Intent intent);

/// Sentinel byte extent meaning "to the end of the buffer".
inline constexpr std::uint64_t kWholeExtent = ~0ULL;

/// One declared use: a byte range [base+lo, base+hi) and an intent.
struct BufferUse {
  std::uint64_t base = 0;  ///< buffer base address (the plan's buffer key)
  std::uint64_t lo = 0;    ///< byte offset of the first touched byte
  std::uint64_t hi = kWholeExtent;  ///< one past the last touched byte
  Intent intent = Intent::kRead;

  bool operator==(const BufferUse&) const = default;
};

/// Declared max items appended to a worklist by one launch, keyed by the
/// worklist's items-buffer base. check_plan() compares it to the capacity.
struct PushBound {
  std::uint64_t items_base = 0;
  std::uint64_t max_items = 0;

  bool operator==(const PushBound&) const = default;
};

/// The declared access set of one kernel. Built fluently next to the kernel
/// body; the builder methods duck-type on the simt Buffer/Worklist shapes so
/// this header stays dependency-free:
///
///   check::KernelSpec spec;
///   spec.ldg(dg.row).ldg(dg.col)
///       .reads(w_in->items(), 0, count)
///       .reads(colors).racy(colors)
///       .pushes(*w_out, count);
class KernelSpec {
 public:
  /// Raw-address escape hatch (victim plans, hand-built tests).
  KernelSpec& use(std::uint64_t base, Intent intent, std::uint64_t lo = 0,
                  std::uint64_t hi = kWholeExtent) {
    uses_.push_back(BufferUse{base, lo, hi, intent});
    return *this;
  }

  template <typename Buf>
  KernelSpec& reads(const Buf& buf) {
    return use(buf.base_addr(), Intent::kRead);
  }
  /// Element range [first, last) — converted to bytes via addr_of().
  template <typename Buf>
  KernelSpec& reads(const Buf& buf, std::size_t first, std::size_t last) {
    return use_elems(buf, Intent::kRead, first, last);
  }
  template <typename Buf>
  KernelSpec& ldg(const Buf& buf) {
    return use(buf.base_addr(), Intent::kLdg);
  }
  template <typename Buf>
  KernelSpec& writes(const Buf& buf) {
    return use(buf.base_addr(), Intent::kWrite);
  }
  template <typename Buf>
  KernelSpec& writes(const Buf& buf, std::size_t first, std::size_t last) {
    return use_elems(buf, Intent::kWrite, first, last);
  }
  template <typename Buf>
  KernelSpec& racy(const Buf& buf) {
    return use(buf.base_addr(), Intent::kRacy);
  }
  template <typename Buf>
  KernelSpec& racy(const Buf& buf, std::size_t first, std::size_t last) {
    return use_elems(buf, Intent::kRacy, first, last);
  }
  template <typename Buf>
  KernelSpec& atomics(const Buf& buf) {
    return use(buf.base_addr(), Intent::kAtomic);
  }

  /// Declare appends to a worklist (covers both push paths: block-wide
  /// scan_push, and atomic tail bump + item store). `max_items` is the
  /// kernel's worst-case push count for this launch — typically the size of
  /// the worklist it consumes, since each item pushes at most once.
  template <typename Wl>
  KernelSpec& pushes(const Wl& worklist, std::uint64_t max_items) {
    use(worklist.items().base_addr(), Intent::kPush);
    use(worklist.tail().base_addr(), Intent::kPush);
    push_bounds_.push_back(
        PushBound{worklist.items().base_addr(), max_items});
    return *this;
  }
  /// Raw-address form of pushes() for hand-built plans.
  KernelSpec& pushes_raw(std::uint64_t items_base, std::uint64_t tail_base,
                         std::uint64_t max_items) {
    use(items_base, Intent::kPush);
    use(tail_base, Intent::kPush);
    push_bounds_.push_back(PushBound{items_base, max_items});
    return *this;
  }

  const std::vector<BufferUse>& uses() const { return uses_; }
  const std::vector<PushBound>& push_bounds() const { return push_bounds_; }

  /// True when some use covers [addr, addr+size) under an intent in
  /// `allowed` (bitmask of 1u << Intent). The sanitizer's per-access hook.
  bool covers(std::uint64_t buf_base, std::uint64_t addr, std::uint64_t size,
              std::uint32_t allowed_mask) const;
  /// True when the spec declares pushes into the worklist whose items
  /// buffer starts at `items_base`.
  bool declares_push(std::uint64_t items_base) const;

  bool operator==(const KernelSpec&) const = default;

 private:
  template <typename Buf>
  KernelSpec& use_elems(const Buf& buf, Intent intent, std::size_t first,
                        std::size_t last) {
    const std::uint64_t base = buf.base_addr();
    return use(base, intent, buf.addr_of(first) - base,
               buf.addr_of(last) - base);
  }

  std::vector<BufferUse> uses_;
  std::vector<PushBound> push_bounds_;
};

/// Bitmask helper for KernelSpec::covers.
constexpr std::uint32_t intent_bit(Intent intent) {
  return 1U << static_cast<std::uint32_t>(intent);
}

// ---------------------------------------------------------------------------
// The LaunchPlan IR.

/// An allocation the plan knows about (from Device::alloc).
struct PlanBuffer {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
  std::string name;

  bool operator==(const PlanBuffer&) const = default;
};

/// One recorded kernel launch.
struct PlanLaunch {
  std::string kernel;
  KernelSpec spec;
  bool has_spec = false;        ///< false = legacy spec-less launch
  bool racy_visibility = false; ///< LaunchConfig::racy_visibility
  std::uint32_t grid_blocks = 0;
  std::uint32_t block_threads = 0;
  std::uint32_t region = 0;  ///< inter-barrier region index
  std::uint32_t index = 0;   ///< position in plan order

  bool operator==(const PlanLaunch&) const = default;
};

/// An asynchronous inbound copy writing bytes [lo, hi) of a buffer while
/// launches may still be running (multidev ghost exchange). Launches with
/// index in [begin_index, end_index) are concurrent with the flight;
/// end_index stays kOpenEnd until a fence() retires the copy.
struct PlanCopy {
  static constexpr std::uint32_t kOpenEnd = ~0U;
  std::uint64_t base = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::string tag;  ///< human-readable source ("ghost-exchange", ...)
  std::uint32_t begin_index = 0;
  std::uint32_t end_index = kOpenEnd;

  bool operator==(const PlanCopy&) const = default;
};

/// The per-run IR the checker consumes. Device appends to it when
/// DeviceConfig::check is on; tests hand-build victim plans directly.
class LaunchPlan {
 public:
  void on_alloc(std::uint64_t base, std::uint64_t bytes, std::string name);
  void add_launch(const std::string& kernel, const KernelSpec* spec,
                  bool racy_visibility, std::uint32_t grid_blocks,
                  std::uint32_t block_threads);
  /// End the current inter-barrier region (stream synchronization).
  void barrier();
  /// Begin an async copy writing [lo, hi) of `base`. Idempotent while the
  /// same range is already in flight (multidev registers per peer link).
  void copy_write(std::uint64_t base, std::uint64_t lo, std::uint64_t hi,
                  const std::string& tag);
  /// Retire every in-flight copy (the consume point's synchronization).
  void fence();

  const std::vector<PlanBuffer>& buffers() const { return buffers_; }
  const std::vector<PlanLaunch>& launches() const { return launches_; }
  const std::vector<PlanCopy>& copies() const { return copies_; }
  std::uint32_t num_barriers() const { return num_barriers_; }

  const PlanBuffer* find_buffer(std::uint64_t base) const;
  /// Buffer name, or "buf@0x<base>" for addresses the plan never saw.
  std::string buffer_name(std::uint64_t base) const;

 private:
  std::vector<PlanBuffer> buffers_;
  std::vector<PlanLaunch> launches_;
  std::vector<PlanCopy> copies_;
  std::uint32_t num_barriers_ = 0;
};

// ---------------------------------------------------------------------------
// The checker.

enum class RuleKind : std::uint8_t {
  kHazard,            ///< RAW/WAR/WAW between launches with no barrier
  kLdgWritable,       ///< ldg of a buffer writable in the same region
  kPushAlias,         ///< kernel reads the worklist it pushes into
  kCapacityOverflow,  ///< declared push bound exceeds worklist capacity
  kGhostTrespass,     ///< access overlaps an in-flight async copy range
  kMissingSpec,       ///< launch recorded without a KernelSpec
  kUnknownBuffer,     ///< spec names a base the device never allocated
  kCount,
};
const char* rule_kind_name(RuleKind kind);

/// One deterministic checker finding. `kernel` is the flagged launch,
/// `other` the second party (hazard partner, copy tag, ...) when the rule
/// involves one.
struct Finding {
  RuleKind kind = RuleKind::kCount;
  std::string kernel;
  std::string other;
  std::string buffer;
  std::uint32_t region = 0;
  std::string detail;

  std::string format() const;
  bool operator==(const Finding&) const = default;
};

/// Render of one declared use for the plan dump (buffer resolved to name).
struct UseSummary {
  std::string buffer;
  Intent intent = Intent::kRead;
  std::uint64_t lo = 0;
  std::uint64_t hi = kWholeExtent;  ///< kWholeExtent = whole buffer

  bool operator==(const UseSummary&) const = default;
};

/// Render of one recorded launch for the plan dump.
struct LaunchSummary {
  std::string kernel;
  std::uint32_t grid_blocks = 0;
  std::uint32_t block_threads = 0;
  std::uint32_t region = 0;
  bool racy_visibility = false;
  bool has_spec = false;
  std::vector<UseSummary> uses;

  bool operator==(const LaunchSummary&) const = default;
};

/// Checker output: findings plus a renderable summary of the plan itself
/// (what speckle_lint dumps). Deterministic — equal inputs give equal
/// reports, bit-identical at every --threads value.
struct Report {
  std::vector<Finding> findings;
  std::vector<LaunchSummary> launches;
  std::uint32_t barriers = 0;
  std::uint32_t copies = 0;

  bool clean() const { return findings.empty(); }
  std::size_t count(RuleKind kind) const;
  /// Findings plus a one-line summary (what speckle_color prints).
  std::string format() const;
  /// The launch-plan IR, one line per launch with its declared uses.
  std::string format_plan() const;
  /// Machine-readable dump: {"launches": N, "barriers": N, "copies": N,
  /// "plan": [...], "findings": [...]}.
  std::string to_json() const;
  /// Merge another device's report (multidev fleet view; kernel and buffer
  /// names are expected to already carry the "d<k>." prefix).
  void merge(const Report& other);

  bool operator==(const Report&) const = default;
};

/// The checker proper: a pure function of the plan.
Report check_plan(const LaunchPlan& plan);

}  // namespace speckle::check
