#include "simt/check.hpp"

#include <algorithm>
#include <sstream>

namespace speckle::check {
namespace {

/// Intents that mutate the buffer during the launch.
constexpr std::uint32_t kWriteishMask =
    intent_bit(Intent::kWrite) | intent_bit(Intent::kRacy) |
    intent_bit(Intent::kAtomic) | intent_bit(Intent::kPush);
/// Intents that only observe the buffer.
constexpr std::uint32_t kReadLikeMask =
    intent_bit(Intent::kRead) | intent_bit(Intent::kLdg);

/// Worklist items are uint32 slots; capacity in items = bytes / 4.
constexpr std::uint64_t kWorklistItemBytes = 4;

bool is_writeish(Intent intent) {
  return (intent_bit(intent) & kWriteishMask) != 0;
}

/// Resolve a use's byte range against the buffer table: kWholeExtent (and
/// any over-declared hi) clamps to the allocation, unknown buffers keep the
/// declared extent so ranges still compare.
struct ByteRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

ByteRange resolve(const BufferUse& use, const PlanBuffer* buf) {
  ByteRange r{use.lo, use.hi};
  if (buf != nullptr && r.hi > buf->bytes) r.hi = buf->bytes;
  return r;
}

bool overlaps(const ByteRange& a, const ByteRange& b) {
  return a.lo < b.hi && b.lo < a.hi;
}

std::string range_text(std::uint64_t lo, std::uint64_t hi) {
  if (lo == 0 && hi == kWholeExtent) return "[*]";
  std::ostringstream os;
  os << "[" << lo << "," << (hi == kWholeExtent ? std::string("*")
                                                : std::to_string(hi))
     << ")";
  return os.str();
}

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

/// Two same-region uses of one buffer that can run concurrently are safe
/// only when neither mutates, or both are atomic RMWs (order-free by
/// construction). Everything else — including racy-vs-read across kernels —
/// is exactly the write -> barrier -> read ordering the schemes rely on.
bool compatible_across_launches(Intent a, Intent b) {
  const std::uint32_t mask = intent_bit(a) | intent_bit(b);
  if ((mask & kWriteishMask) == 0) return true;
  return a == Intent::kAtomic && b == Intent::kAtomic;
}

}  // namespace

const char* intent_name(Intent intent) {
  switch (intent) {
    case Intent::kRead: return "read";
    case Intent::kLdg: return "ldg";
    case Intent::kWrite: return "write";
    case Intent::kRacy: return "racy";
    case Intent::kAtomic: return "atomic";
    case Intent::kPush: return "push";
  }
  return "?";
}

const char* rule_kind_name(RuleKind kind) {
  switch (kind) {
    case RuleKind::kHazard: return "hazard";
    case RuleKind::kLdgWritable: return "ldg-of-writable";
    case RuleKind::kPushAlias: return "worklist-alias";
    case RuleKind::kCapacityOverflow: return "capacity-overflow";
    case RuleKind::kGhostTrespass: return "ghost-trespass";
    case RuleKind::kMissingSpec: return "missing-spec";
    case RuleKind::kUnknownBuffer: return "unknown-buffer";
    case RuleKind::kCount: break;
  }
  return "?";
}

bool KernelSpec::covers(std::uint64_t buf_base, std::uint64_t addr,
                        std::uint64_t size, std::uint32_t allowed_mask) const {
  const std::uint64_t lo = addr - buf_base;
  const std::uint64_t hi = lo + size;
  return std::any_of(uses_.begin(), uses_.end(), [&](const BufferUse& use) {
    return use.base == buf_base && (intent_bit(use.intent) & allowed_mask) != 0 &&
           use.lo <= lo && hi <= use.hi;
  });
}

bool KernelSpec::declares_push(std::uint64_t items_base) const {
  return std::any_of(
      push_bounds_.begin(), push_bounds_.end(),
      [&](const PushBound& b) { return b.items_base == items_base; });
}

void LaunchPlan::on_alloc(std::uint64_t base, std::uint64_t bytes,
                          std::string name) {
  if (name.empty()) {
    std::ostringstream os;
    os << "buf@0x" << std::hex << base;
    name = os.str();
  }
  buffers_.push_back(PlanBuffer{base, bytes, std::move(name)});
}

void LaunchPlan::add_launch(const std::string& kernel, const KernelSpec* spec,
                            bool racy_visibility, std::uint32_t grid_blocks,
                            std::uint32_t block_threads) {
  PlanLaunch launch;
  launch.kernel = kernel;
  if (spec != nullptr) {
    launch.spec = *spec;
    launch.has_spec = true;
  }
  launch.racy_visibility = racy_visibility;
  launch.grid_blocks = grid_blocks;
  launch.block_threads = block_threads;
  launch.region = num_barriers_;
  launch.index = static_cast<std::uint32_t>(launches_.size());
  launches_.push_back(std::move(launch));
}

void LaunchPlan::barrier() { ++num_barriers_; }

void LaunchPlan::copy_write(std::uint64_t base, std::uint64_t lo,
                            std::uint64_t hi, const std::string& tag) {
  // Multidev registers the same inbound window once per peer link; keep one
  // open copy per (base, range) so the plan mirrors the single flight.
  for (const PlanCopy& c : copies_) {
    if (c.end_index == PlanCopy::kOpenEnd && c.base == base && c.lo == lo &&
        c.hi == hi) {
      return;
    }
  }
  PlanCopy copy;
  copy.base = base;
  copy.lo = lo;
  copy.hi = hi;
  copy.tag = tag;
  copy.begin_index = static_cast<std::uint32_t>(launches_.size());
  copies_.push_back(std::move(copy));
}

void LaunchPlan::fence() {
  for (PlanCopy& c : copies_) {
    if (c.end_index == PlanCopy::kOpenEnd) {
      c.end_index = static_cast<std::uint32_t>(launches_.size());
    }
  }
}

const PlanBuffer* LaunchPlan::find_buffer(std::uint64_t base) const {
  for (const PlanBuffer& b : buffers_) {
    if (b.base == base) return &b;
  }
  return nullptr;
}

std::string LaunchPlan::buffer_name(std::uint64_t base) const {
  const PlanBuffer* buf = find_buffer(base);
  if (buf != nullptr) return buf->name;
  std::ostringstream os;
  os << "buf@0x" << std::hex << base;
  return os.str();
}

std::string Finding::format() const {
  std::ostringstream os;
  os << "speckle-check: " << rule_kind_name(kind) << ": " << buffer
     << " in kernel '" << kernel << "'";
  if (!other.empty()) os << " vs '" << other << "'";
  os << " (region " << region << ")";
  if (!detail.empty()) os << ": " << detail;
  os << "\n";
  return os.str();
}

std::size_t Report::count(RuleKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.kind == kind; }));
}

std::string Report::format() const {
  std::ostringstream os;
  for (const Finding& f : findings) os << f.format();
  os << "speckle-check: ";
  if (findings.empty()) {
    os << "clean";
  } else {
    os << findings.size() << " finding" << (findings.size() == 1 ? "" : "s");
  }
  os << " (" << launches.size() << " launches, " << barriers << " barriers, "
     << copies << " async copies)\n";
  return os.str();
}

std::string Report::format_plan() const {
  std::ostringstream os;
  os << "launch plan: " << launches.size() << " launches, " << barriers
     << " barriers, " << copies << " async copies\n";
  for (std::size_t i = 0; i < launches.size(); ++i) {
    const LaunchSummary& l = launches[i];
    os << "  [" << i << "] region " << l.region << " '" << l.kernel << "' grid "
       << l.grid_blocks << "x" << l.block_threads;
    if (l.racy_visibility) os << " racy";
    if (!l.has_spec) os << " (no spec)";
    os << "\n";
    for (const UseSummary& u : l.uses) {
      os << "      " << intent_name(u.intent) << " " << u.buffer << " "
         << range_text(u.lo, u.hi) << "\n";
    }
  }
  return os.str();
}

std::string Report::to_json() const {
  std::ostringstream os;
  os << "{\n  \"launches\": " << launches.size()
     << ",\n  \"barriers\": " << barriers << ",\n  \"copies\": " << copies
     << ",\n  \"plan\": [\n";
  for (std::size_t i = 0; i < launches.size(); ++i) {
    const LaunchSummary& l = launches[i];
    os << "    {\"kernel\": \"";
    json_escape(os, l.kernel);
    os << "\", \"region\": " << l.region << ", \"grid\": " << l.grid_blocks
       << ", \"block\": " << l.block_threads
       << ", \"racy\": " << (l.racy_visibility ? "true" : "false")
       << ", \"spec\": " << (l.has_spec ? "true" : "false") << ", \"uses\": [";
    for (std::size_t j = 0; j < l.uses.size(); ++j) {
      const UseSummary& u = l.uses[j];
      os << (j == 0 ? "" : ", ") << "{\"buffer\": \"";
      json_escape(os, u.buffer);
      os << "\", \"intent\": \"" << intent_name(u.intent) << "\", \"lo\": "
         << u.lo << ", \"hi\": ";
      if (u.hi == kWholeExtent) {
        os << "null";
      } else {
        os << u.hi;
      }
      os << "}";
    }
    os << "]}" << (i + 1 < launches.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "    {\"kind\": \"" << rule_kind_name(f.kind) << "\", \"kernel\": \"";
    json_escape(os, f.kernel);
    os << "\", \"other\": \"";
    json_escape(os, f.other);
    os << "\", \"buffer\": \"";
    json_escape(os, f.buffer);
    os << "\", \"region\": " << f.region << ", \"detail\": \"";
    json_escape(os, f.detail);
    os << "\"}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

void Report::merge(const Report& other) {
  findings.insert(findings.end(), other.findings.begin(), other.findings.end());
  launches.insert(launches.end(), other.launches.begin(), other.launches.end());
  barriers += other.barriers;
  copies += other.copies;
}

namespace {

/// Per-rule dedup: one finding per (rule, kernel pair, buffer).
struct Seen {
  std::vector<std::string> keys;
  bool insert(const std::string& key) {
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) return false;
    keys.push_back(key);
    return true;
  }
};

void check_one_launch(const LaunchPlan& plan, const PlanLaunch& launch,
                      Report& report) {
  if (!launch.has_spec) {
    report.findings.push_back(
        Finding{RuleKind::kMissingSpec, launch.kernel, "", "", launch.region,
                "launch recorded without a KernelSpec"});
    return;
  }
  const auto& uses = launch.spec.uses();
  Seen seen_unknown;
  Seen seen_ldg;
  for (const BufferUse& use : uses) {
    const PlanBuffer* buf = plan.find_buffer(use.base);
    const std::string name = plan.buffer_name(use.base);
    if (buf == nullptr && seen_unknown.insert(name)) {
      report.findings.push_back(
          Finding{RuleKind::kUnknownBuffer, launch.kernel, "", name,
                  launch.region, "spec names a base the device never allocated"});
    }
    // The paper's RO-cache constraint, within one kernel: __ldg data must be
    // read-only for the whole launch.
    if (use.intent != Intent::kLdg) continue;
    for (const BufferUse& other : uses) {
      if (other.base != use.base || !is_writeish(other.intent)) continue;
      if (!overlaps(resolve(use, buf), resolve(other, buf))) continue;
      if (!seen_ldg.insert(name)) continue;
      report.findings.push_back(
          Finding{RuleKind::kLdgWritable, launch.kernel, launch.kernel, name,
                  launch.region,
                  std::string("also declared ") + intent_name(other.intent) +
                      " by the same kernel"});
    }
  }
  // Double-buffer aliasing: a kernel must not consume the worklist it
  // pushes into (the in/out lists swap, they never coincide).
  Seen seen_alias;
  for (const PushBound& bound : launch.spec.push_bounds()) {
    const std::string name = plan.buffer_name(bound.items_base);
    for (const BufferUse& use : uses) {
      if (use.base != bound.items_base ||
          (intent_bit(use.intent) & kReadLikeMask) == 0) {
        continue;
      }
      if (seen_alias.insert(name)) {
        report.findings.push_back(
            Finding{RuleKind::kPushAlias, launch.kernel, "", name,
                    launch.region,
                    "kernel reads the worklist it pushes into (double "
                    "buffers alias)"});
      }
    }
    // Capacity arithmetic: each consumed item pushes at most once, so the
    // declared bound must fit the destination's item capacity.
    const PlanBuffer* buf = plan.find_buffer(bound.items_base);
    if (buf == nullptr) continue;
    const std::uint64_t capacity = buf->bytes / kWorklistItemBytes;
    if (bound.max_items > capacity) {
      std::ostringstream os;
      os << "declared push bound " << bound.max_items << " exceeds capacity "
         << capacity << " items";
      report.findings.push_back(Finding{RuleKind::kCapacityOverflow,
                                        launch.kernel, "", name, launch.region,
                                        os.str()});
    }
  }
}

void check_region_pair(const LaunchPlan& plan, const PlanLaunch& a,
                       const PlanLaunch& b, Report& report) {
  Seen seen;
  for (const BufferUse& ua : a.spec.uses()) {
    const PlanBuffer* buf = plan.find_buffer(ua.base);
    for (const BufferUse& ub : b.spec.uses()) {
      if (ub.base != ua.base) continue;
      if (compatible_across_launches(ua.intent, ub.intent)) continue;
      if (!overlaps(resolve(ua, buf), resolve(ub, buf))) continue;
      const std::string name = plan.buffer_name(ua.base);
      // ldg-vs-write gets the more specific RO-cache rule; everything else
      // is a plain ordering hazard.
      const bool ldg_pair =
          (ua.intent == Intent::kLdg && is_writeish(ub.intent)) ||
          (ub.intent == Intent::kLdg && is_writeish(ua.intent));
      const RuleKind kind =
          ldg_pair ? RuleKind::kLdgWritable : RuleKind::kHazard;
      if (!seen.insert(std::string(rule_kind_name(kind)) + ":" + name)) {
        continue;
      }
      std::ostringstream os;
      os << intent_name(ua.intent) << " vs " << intent_name(ub.intent)
         << " with no intervening barrier";
      report.findings.push_back(
          Finding{kind, a.kernel, b.kernel, name, a.region, os.str()});
    }
  }
}

void check_copies(const LaunchPlan& plan, Report& report) {
  for (const PlanCopy& copy : plan.copies()) {
    const PlanBuffer* buf = plan.find_buffer(copy.base);
    const ByteRange window{copy.lo, copy.hi};
    for (const PlanLaunch& launch : plan.launches()) {
      if (launch.index < copy.begin_index || launch.index >= copy.end_index) {
        continue;
      }
      if (!launch.has_spec) continue;  // already a kMissingSpec finding
      Seen seen;
      for (const BufferUse& use : launch.spec.uses()) {
        if (use.base != copy.base) continue;
        if (!overlaps(resolve(use, buf), window)) continue;
        const std::string name = plan.buffer_name(use.base);
        if (!seen.insert(name)) continue;
        std::ostringstream os;
        os << intent_name(use.intent) << " overlaps in-flight copy bytes "
           << range_text(copy.lo, copy.hi);
        report.findings.push_back(Finding{RuleKind::kGhostTrespass,
                                          launch.kernel, copy.tag, name,
                                          launch.region, os.str()});
      }
    }
  }
}

}  // namespace

Report check_plan(const LaunchPlan& plan) {
  Report report;
  report.barriers = plan.num_barriers();
  report.copies = static_cast<std::uint32_t>(plan.copies().size());

  // Renderable summary of the IR (speckle_lint's plan dump).
  for (const PlanLaunch& launch : plan.launches()) {
    LaunchSummary summary;
    summary.kernel = launch.kernel;
    summary.grid_blocks = launch.grid_blocks;
    summary.block_threads = launch.block_threads;
    summary.region = launch.region;
    summary.racy_visibility = launch.racy_visibility;
    summary.has_spec = launch.has_spec;
    for (const BufferUse& use : launch.spec.uses()) {
      summary.uses.push_back(UseSummary{plan.buffer_name(use.base), use.intent,
                                        use.lo, use.hi});
    }
    report.launches.push_back(std::move(summary));
  }

  // Per-launch rules, in plan order.
  for (const PlanLaunch& launch : plan.launches()) {
    check_one_launch(plan, launch, report);
  }
  // Inter-launch rules: launches sharing an inter-barrier region are
  // concurrent; scan ordered pairs.
  const auto& launches = plan.launches();
  for (std::size_t i = 0; i < launches.size(); ++i) {
    if (!launches[i].has_spec) continue;
    for (std::size_t j = i + 1; j < launches.size(); ++j) {
      if (launches[j].region != launches[i].region) break;
      if (!launches[j].has_spec) continue;
      check_region_pair(plan, launches[i], launches[j], report);
    }
  }
  // Async-copy windows (multidev ghost exchange).
  check_copies(plan, report);
  return report;
}

}  // namespace speckle::check
