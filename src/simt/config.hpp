#pragma once
/// \file config.hpp
/// Device and launch descriptions for the SIMT execution-model simulator.
///
/// The simulator is *cycle-approximate*: it models the mechanisms the paper's
/// performance analysis rests on — warp-interleaved latency hiding, memory
/// coalescing, the per-SM read-only (texture) cache vs. L2 vs. DRAM, MSHR
/// and DRAM-bandwidth throttling, atomic-unit serialization, occupancy
/// limits, kernel-launch and PCIe overheads — with calibrated latency and
/// throughput constants rather than a gate-level pipeline. The defaults
/// follow the NVIDIA K20c (Kepler GK110) the paper evaluates on.

#include <cstdint>

namespace speckle::simt {

struct DeviceConfig {
  // --- compute resources -------------------------------------------------
  std::uint32_t num_sms = 13;             ///< K20c: 13 SMX
  std::uint32_t warp_size = 32;
  std::uint32_t max_warps_per_sm = 64;
  std::uint32_t max_blocks_per_sm = 16;
  std::uint32_t max_threads_per_block = 1024;
  std::uint32_t regfile_per_sm = 65536;   ///< 32-bit registers
  std::uint32_t smem_per_sm = 48 * 1024;  ///< scratchpad bytes
  std::uint32_t issue_slots_per_cycle = 4;  ///< quad warp schedulers
  double core_clock_ghz = 0.706;
  std::uint32_t compute_latency = 10;     ///< dependent-issue ALU latency

  // --- memory hierarchy ---------------------------------------------------
  std::uint32_t line_bytes = 128;         ///< coalescing granularity
  std::uint32_t dram_sector_bytes = 32;   ///< DRAM transfer granularity (Kepler
                                          ///< L2 fills are 32-byte sectored, so
                                          ///< a scattered 4-byte load costs 32
                                          ///< bytes of bandwidth, not 128)
  std::uint32_t shared_latency = 6;       ///< scratchpad access
  std::uint32_t ro_cache_bytes = 48 * 1024;  ///< per-SM read-only data cache
  std::uint32_t ro_cache_ways = 4;
  std::uint32_t ro_hit_latency = 30;      ///< "around 30 cycles" (Section III-C)
  std::uint64_t l2_bytes = 1280 * 1024;   ///< K20c: 1.25 MB
  std::uint32_t l2_ways = 16;
  std::uint32_t l2_hit_latency = 140;
  std::uint32_t dram_latency = 300;       ///< "about 300 cycles" (Section III-C)
  double dram_gbps = 208.0;               ///< K20c peak
  std::uint32_t mshrs_per_sm = 44;        ///< outstanding misses per SM

  // --- atomics -------------------------------------------------------------
  std::uint32_t atomic_latency = 120;     ///< round trip to the L2 atomic unit
  std::uint32_t atomic_serialize = 16;    ///< same-address back-to-back interval

  // --- host interface ------------------------------------------------------
  double kernel_launch_us = 5.0;
  double pcie_latency_us = 8.0;
  double pcie_gbps = 6.0;

  // --- interconnect (multi-device fleets, speckle::multidev) ---------------
  /// Device-to-device peer transfer: setup latency plus link bandwidth.
  /// Defaults model Kepler-era PCIe peer-to-peer (no NVLink on a K20c):
  /// somewhat cheaper than a host round trip, far costlier than DRAM.
  double d2d_latency_us = 8.0;
  double d2d_gbps = 10.0;

  // --- host simulation (not a property of the modeled GPU) -----------------
  /// Worker threads the *simulator* uses to execute the blocks of a wave and
  /// the per-SM timing loops. 0 = one per hardware thread. Results are
  /// bit-identical for every value — only host wall-clock changes.
  std::uint32_t host_threads = 1;

  /// Enable the speckle::san instrumentation layer (san.hpp): every device
  /// access is shadow-tracked and checked for out-of-bounds, uninitialized
  /// reads, undeclared cross-block races, __ldg coherence violations and
  /// worklist misuse. Reports are bit-identical at every host_threads value.
  /// Off by default — sanitizing costs roughly 2x functional execution.
  bool sanitize = false;

  /// Enable the speckle::prof profiling layer (src/prof): per-launch
  /// hardware-counter-style metrics (cache hit rates, DRAM transactions,
  /// coalescing efficiency, per-buffer atomics, divergence, stalls) plus an
  /// SM/wave timeline for Chrome-trace export. Reports are bit-identical at
  /// every host_threads value. Off by default; when off, no per-access cost
  /// is added anywhere.
  bool profile = false;

  /// Enable the speckle::check static analysis layer (check.hpp): every
  /// launch (with its declared KernelSpec) and synchronization point is
  /// recorded into a LaunchPlan IR, and Device::check_report() runs the
  /// pure dataflow checker over it (hazards, ldg-of-writable, worklist
  /// aliasing/capacity, in-flight-copy trespass). Recording is host-side
  /// only — per-access cost is zero. Combine with `sanitize` to also have
  /// the sanitizer flag any dynamic access outside the declared intents.
  bool check = false;

  /// Peak DRAM bytes per core cycle (used for bandwidth capping and the
  /// achieved-bandwidth metric of Fig 3).
  double dram_bytes_per_cycle() const {
    return dram_gbps / core_clock_ghz;
  }

  std::uint64_t us_to_cycles(double us) const {
    return static_cast<std::uint64_t>(us * core_clock_ghz * 1e3);
  }

  double cycles_to_ms(std::uint64_t cycles) const {
    return static_cast<double>(cycles) / (core_clock_ghz * 1e6);
  }

  /// The paper's evaluation platform.
  static DeviceConfig k20c() { return DeviceConfig{}; }

  /// Capacity-scaled copy for reduced-scale experiments: cache sizes shrink
  /// by `denom` so the working-set-to-cache ratio — which decides whether
  /// the color array lives in L2 or DRAM, the crux of the paper's
  /// latency-bound analysis — matches the full-size run. Latencies,
  /// bandwidths, and compute resources are rates and stay unchanged.
  DeviceConfig scaled(std::uint32_t denom) const;
};

struct LaunchConfig {
  std::uint32_t grid_blocks = 0;
  std::uint32_t block_threads = 128;  ///< the paper's chosen default (Fig 8)
  /// Per-thread register demand; limits occupancy. 37 is representative of
  /// the coloring kernels (compiled with CUDA 7.0 -O3 the paper used).
  std::uint32_t regs_per_thread = 37;
  std::uint32_t smem_bytes_per_block = 0;
  /// Set by kernels whose algorithm depends on racy inter-block visibility
  /// (they write speculative state with Thread::st_racy and *want* later
  /// threads anywhere to observe it, as real L2 makes near-immediate). The
  /// executor then runs the launch's blocks serially with immediate
  /// visibility — the hardware-calibrated semantics — instead of the
  /// chunk-parallel snapshot path. Identical results at every host thread
  /// count either way; this flag only selects which deterministic
  /// visibility model the kernel gets (docs/simulator.md §1, §8).
  bool racy_visibility = false;
};

/// Resident blocks per SM under the occupancy rules (blocks, warps,
/// registers, scratchpad). Returns at least 1 if the block fits at all.
std::uint32_t occupancy_blocks_per_sm(const DeviceConfig& dev, const LaunchConfig& cfg);

}  // namespace speckle::simt
