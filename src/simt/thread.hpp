#pragma once
/// \file thread.hpp
/// The device-thread context — the API kernels are written against.
///
/// A kernel is any callable `void(Thread&)`. Every data access goes through
/// the context so it is both executed functionally (against the buffer's
/// host storage) and recorded in the thread's trace for the timing model:
///
///   t.ld(buf, i)      — global load           (DRAM -> L2 -> registers)
///   t.ldg(buf, i)     — read-only cached load (__ldg; adds the RO cache)
///   t.st(buf, i, v)   — global store
///   t.atomic_add/min/max/cas/or — global atomics (serialized per address)
///   t.compute(n)      — n ALU instructions of dependent work
///   t.scan_push(wl,v) — block-cooperative worklist push (one global atomic
///                       per block, Fig 5's prefix-sum scheme)
///   t.shared_ld/st    — scratchpad (valid within one block)
///
/// Threads run to completion in warp-major order — a legal serialization of
/// the bulk-synchronous model for barrier-free kernels; block barriers are
/// expressed as phase boundaries (Device::launch_phased) or injected by
/// cooperative primitives.

#include <cstdint>

#include "simt/buffer.hpp"
#include "simt/trace.hpp"

namespace speckle::simt {

class Worklist;

/// Per-block mutable state owned by the executor (scratchpad contents and
/// pending cooperative pushes). Kernels never touch this directly.
struct BlockState {
  std::vector<std::uint32_t> shared_words;
  struct PendingPush {
    Worklist* worklist;
    std::uint32_t value;
    std::uint32_t thread_in_block;
  };
  std::vector<PendingPush> pushes;

  /// Warp-deferred stores (st_racy): applied when the warp retires, so
  /// lanes of one warp see the pre-warp state of racy arrays — the
  /// lockstep-SIMD visibility that makes speculative coloring conflict.
  struct DeferredWrite {
    std::uint32_t* target;
    std::uint32_t value;
  };
  std::vector<DeferredWrite> deferred;
};

class Thread {
 public:
  Thread(std::uint32_t block, std::uint32_t thread_in_block, std::uint32_t block_dim,
         std::uint32_t grid_dim, std::uint32_t warp_size, ThreadTrace& trace,
         BlockState& block_state)
      : block_(block),
        thread_in_block_(thread_in_block),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        warp_size_(warp_size),
        trace_(trace),
        block_state_(block_state) {}

  // --- identity (CUDA's threadIdx/blockIdx/blockDim/gridDim) --------------
  std::uint32_t block() const { return block_; }
  std::uint32_t thread_in_block() const { return thread_in_block_; }
  std::uint32_t block_dim() const { return block_dim_; }
  std::uint32_t grid_dim() const { return grid_dim_; }
  std::uint32_t lane() const { return thread_in_block_ % warp_size_; }
  std::uint32_t warp_in_block() const { return thread_in_block_ / warp_size_; }
  std::uint64_t global_id() const {
    return static_cast<std::uint64_t>(block_) * block_dim_ + thread_in_block_;
  }

  // --- global memory -------------------------------------------------------
  template <typename T>
  T ld(const Buffer<T>& buf, std::size_t i) {
    trace_.memory(OpKind::kLoad, Space::kGlobal, buf.addr_of(i), sizeof(T));
    return buf[i];
  }

  /// __ldg(): route through the per-SM read-only data cache. Only valid for
  /// data that no thread writes during the kernel (the caller's contract,
  /// same as CUDA's).
  template <typename T>
  T ldg(const Buffer<T>& buf, std::size_t i) {
    trace_.memory(OpKind::kLoad, Space::kReadOnly, buf.addr_of(i), sizeof(T));
    return buf[i];
  }

  template <typename T>
  void st(Buffer<T>& buf, std::size_t i, T value) {
    trace_.memory(OpKind::kStore, Space::kGlobal, buf.addr_of(i), sizeof(T));
    buf[i] = value;
  }

  // --- atomics --------------------------------------------------------------
  template <typename T>
  T atomic_add(Buffer<T>& buf, std::size_t i, T delta) {
    trace_.memory(OpKind::kAtomic, Space::kGlobal, buf.addr_of(i), sizeof(T));
    T old = buf[i];
    buf[i] = static_cast<T>(old + delta);
    return old;
  }

  template <typename T>
  T atomic_min(Buffer<T>& buf, std::size_t i, T value) {
    trace_.memory(OpKind::kAtomic, Space::kGlobal, buf.addr_of(i), sizeof(T));
    T old = buf[i];
    if (value < old) buf[i] = value;
    return old;
  }

  template <typename T>
  T atomic_max(Buffer<T>& buf, std::size_t i, T value) {
    trace_.memory(OpKind::kAtomic, Space::kGlobal, buf.addr_of(i), sizeof(T));
    T old = buf[i];
    if (value > old) buf[i] = value;
    return old;
  }

  template <typename T>
  T atomic_or(Buffer<T>& buf, std::size_t i, T value) {
    trace_.memory(OpKind::kAtomic, Space::kGlobal, buf.addr_of(i), sizeof(T));
    T old = buf[i];
    buf[i] = static_cast<T>(old | value);
    return old;
  }

  /// Compare-and-swap; returns the old value (CUDA semantics).
  template <typename T>
  T atomic_cas(Buffer<T>& buf, std::size_t i, T expected, T desired) {
    trace_.memory(OpKind::kAtomic, Space::kGlobal, buf.addr_of(i), sizeof(T));
    T old = buf[i];
    if (old == expected) buf[i] = desired;
    return old;
  }

  /// Store whose visibility follows warp-lockstep semantics: the write is
  /// recorded in the trace now but lands in the buffer only when this warp
  /// retires. Lanes of the same warp therefore read the pre-warp value —
  /// exactly how concurrent SIMT threads race on a speculative array (the
  /// `color` array of Algorithms 4/5). The writing thread must not read the
  /// element back within the same warp execution.
  void st_racy(Buffer<std::uint32_t>& buf, std::size_t i, std::uint32_t value) {
    trace_.memory(OpKind::kStore, Space::kGlobal, buf.addr_of(i),
                  sizeof(std::uint32_t));
    block_state_.deferred.push_back({&buf[i], value});
  }

  // --- compute ---------------------------------------------------------------
  /// Charge `instructions` dependent ALU instructions.
  void compute(std::uint32_t instructions = 1) { trace_.compute(instructions); }

  // --- scratchpad -------------------------------------------------------------
  std::uint32_t shared_ld(std::size_t word_index) {
    trace_.shared_access();
    SPECKLE_CHECK(word_index < block_state_.shared_words.size(),
                  "shared memory read out of bounds");
    return block_state_.shared_words[word_index];
  }

  void shared_st(std::size_t word_index, std::uint32_t value) {
    trace_.shared_access();
    SPECKLE_CHECK(word_index < block_state_.shared_words.size(),
                  "shared memory write out of bounds");
    block_state_.shared_words[word_index] = value;
  }

  // --- cooperative worklist push (implemented in device.cpp) -------------------
  /// Enqueue `value` to `wl` using the block-wide prefix-sum scheme: the
  /// runtime compacts all of the block's pushes and performs a single
  /// atomic on the worklist tail per block (Section III-C, Fig 5).
  void scan_push(Worklist& wl, std::uint32_t value);

 private:
  std::uint32_t block_;
  std::uint32_t thread_in_block_;
  std::uint32_t block_dim_;
  std::uint32_t grid_dim_;
  std::uint32_t warp_size_;
  ThreadTrace& trace_;
  BlockState& block_state_;
};

}  // namespace speckle::simt
