#pragma once
/// \file thread.hpp
/// The device-thread context — the API kernels are written against.
///
/// A kernel is any callable `void(Thread&)`. Every data access goes through
/// the context so it is both executed functionally (against the buffer's
/// host storage) and recorded in the thread's trace for the timing model:
///
///   t.ld(buf, i)      — global load           (DRAM -> L2 -> registers)
///   t.ldg(buf, i)     — read-only cached load (__ldg; adds the RO cache)
///   t.st(buf, i, v)   — global store
///   t.atomic_add/min/max/cas/or — global atomics (serialized per address)
///   t.atomic_add_discard — atomic add whose return value is unused
///   t.compute(n)      — n ALU instructions of dependent work
///   t.scan_push(wl,v) — block-cooperative worklist push (one global atomic
///                       per block, Fig 5's prefix-sum scheme)
///   t.shared_ld/st    — scratchpad (valid within one block)
///
/// Threads run to completion in warp-major order — a legal serialization of
/// the bulk-synchronous model for barrier-free kernels; block barriers are
/// expressed as phase boundaries (Device::launch_phased) or injected by
/// cooperative primitives.
///
/// Global-memory visibility: by default the blocks of one scheduling chunk
/// (one block per SM) execute against the state the chunk started with,
/// each layered with its own writes (the executor's speculative overlay);
/// writes become globally visible when the block commits, in ascending
/// block order. Launches flagged `racy_visibility` (kernels whose
/// algorithm feeds on st_racy races) instead run blocks serially with
/// immediate visibility. See docs/simulator.md ("Host-side parallel
/// execution") for why both paths are deterministic at every host thread
/// count. Kernel callables must be safe to invoke concurrently: all global
/// side effects go through this context, never through captured host
/// state.

#include <cstdint>
#include <cstring>

#include "simt/buffer.hpp"
#include "simt/overlay.hpp"
#include "simt/trace.hpp"

namespace speckle::simt {

class Worklist;

/// Per-block mutable state owned by the executor (scratchpad contents,
/// pending cooperative pushes and the speculative write overlay). Kernels
/// never touch this directly.
struct BlockState {
  std::vector<std::uint32_t> shared_words;
  struct PendingPush {
    Worklist* worklist;
    std::uint32_t value;
    std::uint32_t thread_in_block;
  };
  std::vector<PendingPush> pushes;

  /// Warp-deferred stores (st_racy): applied when the warp retires, so
  /// lanes of one warp see the pre-warp state of racy arrays — the
  /// lockstep-SIMD visibility that makes speculative coloring conflict.
  struct DeferredWrite {
    std::uint64_t addr;
    std::uint32_t* host;
    std::uint32_t value;
  };
  std::vector<DeferredWrite> deferred;

  /// Speculative mode: non-null while the block executes as part of a
  /// concurrent chunk. Stores land here instead of in the buffers; loads
  /// check it first so the block sees its own writes.
  WriteOverlay* overlay = nullptr;

  /// Sanitizer access log: non-null when the device sanitizes. Appended to
  /// during (possibly concurrent) block execution — it is private to the
  /// block — and folded into the sanitizer at the serial commit slot.
  san::BlockLog* san = nullptr;

  /// First value this block observed (from the chunk-start state) at each
  /// address it touched with a value-returning atomic. The commit phase
  /// validates these against the then-committed state; a mismatch means the
  /// speculated RMW chain started from a stale value and the block is
  /// deterministically re-executed at its commit slot.
  struct AtomicObservation {
    std::uint64_t addr;
    const void* host;
    std::uint64_t pre_raw;
    std::uint8_t size;
  };
  std::vector<AtomicObservation> observations;

  /// atomic_add_discard accumulations: commutative, unvalidated, replayed
  /// at commit (the return value was never observed, so no speculation can
  /// go wrong).
  struct DiscardAdd {
    std::uint32_t* host;
    std::uint32_t delta;
  };
  std::vector<DiscardAdd> discard_adds;

  void note_observation(std::uint64_t addr, const void* host, std::uint64_t pre_raw,
                        std::uint8_t size) {
    for (const AtomicObservation& o : observations) {
      if (o.addr == addr) return;  // only the first observation binds
    }
    observations.push_back({addr, host, pre_raw, size});
  }
};

class Thread {
 public:
  Thread(std::uint32_t block, std::uint32_t thread_in_block, std::uint32_t block_dim,
         std::uint32_t grid_dim, std::uint32_t warp_size, ThreadTrace& trace,
         BlockState& block_state)
      : block_(block),
        thread_in_block_(thread_in_block),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        warp_size_(warp_size),
        trace_(trace),
        block_state_(block_state) {}

  // --- identity (CUDA's threadIdx/blockIdx/blockDim/gridDim) --------------
  std::uint32_t block() const { return block_; }
  std::uint32_t thread_in_block() const { return thread_in_block_; }
  std::uint32_t block_dim() const { return block_dim_; }
  std::uint32_t grid_dim() const { return grid_dim_; }
  std::uint32_t lane() const { return thread_in_block_ % warp_size_; }
  std::uint32_t warp_in_block() const { return thread_in_block_ / warp_size_; }
  std::uint64_t global_id() const {
    return static_cast<std::uint64_t>(block_) * block_dim_ + thread_in_block_;
  }

  // --- global memory -------------------------------------------------------
  /// When sanitizing, every access is appended to the block's log and an
  /// out-of-extent access is suppressed (loads return T{}, stores drop) so
  /// victim kernels report cleanly instead of corrupting host memory.
  template <typename T>
  T ld(const Buffer<T>& buf, std::size_t i) {
    trace_.memory(OpKind::kLoad, Space::kGlobal, buf.addr_of(i), sizeof(T));
    if (!san_ok(san::AccessKind::kLoad, buf, i)) return T{};
    return load_value(buf, i);
  }

  /// __ldg(): route through the per-SM read-only data cache. Only valid for
  /// data that no thread writes during the kernel (the caller's contract,
  /// same as CUDA's).
  template <typename T>
  T ldg(const Buffer<T>& buf, std::size_t i) {
    trace_.memory(OpKind::kLoad, Space::kReadOnly, buf.addr_of(i), sizeof(T));
    if (!san_ok(san::AccessKind::kLdg, buf, i)) return T{};
    return load_value(buf, i);
  }

  template <typename T>
  void st(Buffer<T>& buf, std::size_t i, T value) {
    trace_.memory(OpKind::kStore, Space::kGlobal, buf.addr_of(i), sizeof(T));
    if (!san_ok(san::AccessKind::kStore, buf, i)) return;
    store_value(buf, i, value);
  }

  // --- atomics --------------------------------------------------------------
  template <typename T>
  T atomic_add(Buffer<T>& buf, std::size_t i, T delta) {
    trace_.memory(OpKind::kAtomic, Space::kGlobal, buf.addr_of(i), sizeof(T));
    if (!san_ok(san::AccessKind::kAtomic, buf, i)) return T{};
    T old = atomic_load_value(buf, i);
    store_value(buf, i, static_cast<T>(old + delta));
    return old;
  }

  template <typename T>
  T atomic_min(Buffer<T>& buf, std::size_t i, T value) {
    trace_.memory(OpKind::kAtomic, Space::kGlobal, buf.addr_of(i), sizeof(T));
    if (!san_ok(san::AccessKind::kAtomic, buf, i)) return T{};
    T old = atomic_load_value(buf, i);
    if (value < old) store_value(buf, i, value);
    return old;
  }

  template <typename T>
  T atomic_max(Buffer<T>& buf, std::size_t i, T value) {
    trace_.memory(OpKind::kAtomic, Space::kGlobal, buf.addr_of(i), sizeof(T));
    if (!san_ok(san::AccessKind::kAtomic, buf, i)) return T{};
    T old = atomic_load_value(buf, i);
    if (value > old) store_value(buf, i, value);
    return old;
  }

  template <typename T>
  T atomic_or(Buffer<T>& buf, std::size_t i, T value) {
    trace_.memory(OpKind::kAtomic, Space::kGlobal, buf.addr_of(i), sizeof(T));
    if (!san_ok(san::AccessKind::kAtomic, buf, i)) return T{};
    T old = atomic_load_value(buf, i);
    store_value(buf, i, static_cast<T>(old | value));
    return old;
  }

  /// Compare-and-swap; returns the old value (CUDA semantics).
  template <typename T>
  T atomic_cas(Buffer<T>& buf, std::size_t i, T expected, T desired) {
    trace_.memory(OpKind::kAtomic, Space::kGlobal, buf.addr_of(i), sizeof(T));
    if (!san_ok(san::AccessKind::kAtomic, buf, i)) return T{};
    T old = atomic_load_value(buf, i);
    if (old == expected) store_value(buf, i, desired);
    return old;
  }

  /// Atomic add whose return value the kernel discards (CUDA's
  /// `(void)atomicAdd(...)` counter idiom). Because nothing downstream
  /// depends on the pre-value, the executor replays the addition
  /// commutatively at commit instead of validating it — contended counters
  /// stay parallel. The kernel must not read the counter back in the same
  /// launch.
  void atomic_add_discard(Buffer<std::uint32_t>& buf, std::size_t i,
                          std::uint32_t delta) {
    trace_.memory(OpKind::kAtomic, Space::kGlobal, buf.addr_of(i),
                  sizeof(std::uint32_t));
    if (!san_ok(san::AccessKind::kAtomic, buf, i)) return;
    if (block_state_.overlay) {
      block_state_.discard_adds.push_back({&buf[i], delta});
    } else {
      buf[i] += delta;
    }
  }

  /// Store whose visibility follows warp-lockstep semantics: the write is
  /// recorded in the trace now but lands (in the block's overlay, or the
  /// buffer when executing directly) only when this warp retires. Lanes of
  /// the same warp therefore read the pre-warp value — exactly how
  /// concurrent SIMT threads race on a speculative array (the `color` array
  /// of Algorithms 4/5). The writing thread must not read the element back
  /// within the same warp execution.
  void st_racy(Buffer<std::uint32_t>& buf, std::size_t i, std::uint32_t value) {
    trace_.memory(OpKind::kStore, Space::kGlobal, buf.addr_of(i),
                  sizeof(std::uint32_t));
    if (!san_ok(san::AccessKind::kStoreRacy, buf, i)) return;
    block_state_.deferred.push_back({buf.addr_of(i), &buf[i], value});
  }

  // --- compute ---------------------------------------------------------------
  /// Charge `instructions` dependent ALU instructions.
  void compute(std::uint32_t instructions = 1) { trace_.compute(instructions); }

  // --- scratchpad -------------------------------------------------------------
  std::uint32_t shared_ld(std::size_t word_index) {
    trace_.shared_access();
    SPECKLE_CHECK(word_index < block_state_.shared_words.size(),
                  "shared memory read out of bounds");
    return block_state_.shared_words[word_index];
  }

  void shared_st(std::size_t word_index, std::uint32_t value) {
    trace_.shared_access();
    SPECKLE_CHECK(word_index < block_state_.shared_words.size(),
                  "shared memory write out of bounds");
    block_state_.shared_words[word_index] = value;
  }

  // --- cooperative worklist push (implemented in device.cpp) -------------------
  /// Enqueue `value` to `wl` using the block-wide prefix-sum scheme: the
  /// runtime compacts all of the block's pushes and performs a single
  /// atomic on the worklist tail per block (Section III-C, Fig 5).
  void scan_push(Worklist& wl, std::uint32_t value);

 private:
  /// Log the access in the block's sanitizer log (when sanitizing) and
  /// report whether it is in bounds — call sites suppress the functional
  /// effect of an out-of-extent access. With the sanitizer off this is the
  /// plain extent assumption the simulator has always made (unchecked).
  /// The disabled case must stay free on the hot path: one perfectly
  /// predicted branch on a pointer the executor set once per block, no
  /// virtual dispatch.
  template <typename T>
  bool san_ok(san::AccessKind kind, const Buffer<T>& buf, std::size_t i) {
    san::BlockLog* log = block_state_.san;
    if (log == nullptr) [[likely]] return true;
    return log->note(kind, buf.base_addr(), buf.addr_of(i),
                     static_cast<std::uint8_t>(sizeof(T)), i < buf.size(),
                     thread_in_block_);
  }

  template <typename T>
  static std::uint64_t to_raw(T value) {
    static_assert(sizeof(T) <= 8, "device values are at most 8 bytes");
    std::uint64_t raw = 0;
    std::memcpy(&raw, &value, sizeof(T));
    return raw;
  }

  template <typename T>
  static T from_raw(std::uint64_t raw) {
    T value;
    std::memcpy(&value, &raw, sizeof(T));
    return value;
  }

  /// Overlay-aware read: the block's own writes shadow the chunk-start state.
  template <typename T>
  T load_value(const Buffer<T>& buf, std::size_t i) const {
    if (block_state_.overlay) {
      if (const std::uint64_t* raw = block_state_.overlay->find(buf.addr_of(i))) {
        return from_raw<T>(*raw);
      }
    }
    return buf[i];
  }

  /// Overlay-aware read for atomics: a pre-value taken from the chunk-start
  /// state (rather than the block's own writes) is a speculation the commit
  /// phase must validate, so record it.
  template <typename T>
  T atomic_load_value(Buffer<T>& buf, std::size_t i) {
    if (block_state_.overlay) {
      if (const std::uint64_t* raw = block_state_.overlay->find(buf.addr_of(i))) {
        return from_raw<T>(*raw);
      }
      T old = buf[i];
      block_state_.note_observation(buf.addr_of(i), &buf[i], to_raw(old), sizeof(T));
      return old;
    }
    return buf[i];
  }

  template <typename T>
  void store_value(Buffer<T>& buf, std::size_t i, T value) {
    if (block_state_.overlay) {
      block_state_.overlay->put(buf.addr_of(i), &buf[i], to_raw(value), sizeof(T));
    } else {
      buf[i] = value;
    }
  }

  std::uint32_t block_;
  std::uint32_t thread_in_block_;
  std::uint32_t block_dim_;
  std::uint32_t grid_dim_;
  std::uint32_t warp_size_;
  ThreadTrace& trace_;
  BlockState& block_state_;
};

}  // namespace speckle::simt
