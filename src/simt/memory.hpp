#pragma once
/// \file memory.hpp
/// The device memory subsystem shared by all SMs: the per-SM read-only data
/// caches (the __ldg path of Fig 4), the unified L2, DRAM counters, and the
/// atomic operation unit with per-address serialization.
///
/// The timing engine asks this model "what does touching this line cost?".
/// Data movement itself is functional (buffers live in host memory).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "simt/cache.hpp"
#include "simt/config.hpp"
#include "simt/trace.hpp"

namespace speckle::simt {

class MemorySystem {
 public:
  explicit MemorySystem(const DeviceConfig& dev);

  /// Kernel boundary: the read-only caches are only coherent within one
  /// kernel, and atomic-unit queues drain between kernels. L2 stays warm.
  void begin_kernel();

  struct LoadResult {
    std::uint64_t latency = 0;
    bool ro_hit = false;
    bool l2_hit = false;
    bool dram = false;  ///< the access reached DRAM
  };

  /// One 128-byte read transaction from SM `sm` through `space`.
  LoadResult load(std::uint32_t sm, Space space, std::uint64_t line_addr);

  /// One write transaction (write-through to L2; allocates the line).
  /// Returns true if the write missed L2 (DRAM traffic).
  bool store(std::uint64_t line_addr);

  /// One atomic RMW on `word_addr`, issued at cycle `now`. Atomics to the
  /// same word serialize at the atomic unit (Section III-C: "Atomic
  /// operations are performed at each memory partition by the AOU").
  /// Returns the completion cycle.
  double atomic(std::uint64_t word_addr, double now);

  /// An SM's private view of the shared memory system for one wave, so the
  /// per-SM timing loops can run concurrently: the L2 tags and atomic-unit
  /// clocks are snapshotted at wave start, the SM's read-only cache is
  /// touched directly (it is exclusively its own), and every shared-state
  /// effect is logged. commit_wave() replays the logs into the master state
  /// in SM order, which keeps the model deterministic for any host thread
  /// count. Cross-SM L2 sharing and atomic serialization are therefore
  /// resolved at wave granularity (see docs/simulator.md §7).
  class WaveView {
   public:
    /// Header-defined: load/store sit on the timing loop's innermost path
    /// (one call per coalesced transaction), so they must inline together
    /// with CacheModel::access instead of paying a cross-TU call each. The
    /// latencies and the SM's read-only cache are cached in the view at
    /// construction/reset so the fast path never chases parent_->dev_.
    LoadResult load(Space space, std::uint64_t line_addr) {
      LoadResult result;
      if (space == Space::kReadOnly) {
        // The read-only cache is per-SM, so the view touches the real one.
        if (ro_->access(line_addr)) {
          result.ro_hit = true;
          result.latency = ro_hit_latency_;
          return result;
        }
      }
      l2_log_.push_back(line_addr);
      if (l2_.access(line_addr)) {
        result.l2_hit = true;
        result.latency = l2_hit_latency_;
      } else {
        result.dram = true;
        result.latency = dram_latency_;
      }
      // On an RO miss the fill overlaps the L2/DRAM trip — no extra charge
      // (__ldg must never be slower than the plain-load path it replaces).
      return result;
    }

    bool store(std::uint64_t line_addr) {
      l2_log_.push_back(line_addr);
      return !l2_.access(line_addr);
    }

    double atomic(std::uint64_t word_addr, double now);

   private:
    friend class MemorySystem;
    WaveView(MemorySystem& parent, std::uint32_t sm);

    MemorySystem* parent_;
    CacheModel* ro_;  ///< the owning SM's read-only cache (lives in parent)
    std::uint64_t ro_hit_latency_;
    std::uint64_t l2_hit_latency_;
    std::uint64_t dram_latency_;
    CacheModel l2_;  ///< copy of the shared L2 at wave start
    std::unordered_map<std::uint64_t, double> atomic_local_;
    std::vector<std::uint64_t> l2_log_;  ///< L2 probes in access order
  };

  WaveView wave_view(std::uint32_t sm) { return WaveView(*this, sm); }

  /// Re-arm an existing view for a new wave: re-snapshot the L2 into its
  /// storage and drop the logs. Equivalent to `view = wave_view(sm)` but
  /// reuses the view's buffers, so steady-state waves allocate nothing.
  void reset_view(WaveView& view, std::uint32_t sm);

  /// Fold the per-SM views back into the shared state, in SM order.
  void commit_wave(std::vector<WaveView>& views);

  const CacheModel& l2() const { return l2_; }
  const CacheModel& ro_cache(std::uint32_t sm) const { return ro_caches_[sm]; }

 private:
  const DeviceConfig& dev_;
  CacheModel l2_;
  std::vector<CacheModel> ro_caches_;  ///< one per SM
  std::unordered_map<std::uint64_t, double> atomic_ready_;  ///< per-word clock
};

}  // namespace speckle::simt
