#pragma once
/// \file memory.hpp
/// The device memory subsystem shared by all SMs: the per-SM read-only data
/// caches (the __ldg path of Fig 4), the unified L2, DRAM counters, and the
/// atomic operation unit with per-address serialization.
///
/// The timing engine asks this model "what does touching this line cost?".
/// Data movement itself is functional (buffers live in host memory).

#include <cstdint>
#include <vector>

#include "simt/cache.hpp"
#include "simt/config.hpp"
#include "simt/overlay.hpp"
#include "simt/trace.hpp"

namespace speckle::simt {

/// Wave-commit counters (cumulative per MemorySystem). A "page" is one L2
/// set's tag block in a per-SM overlay. Pages a single SM touched commit by
/// copying that SM's page over master (`bytes_swapped`); pages several SMs
/// touched are rebuilt by the SM-ordered recency merge (`bytes_replayed` —
/// the only bytes the commit still has to reconcile rather than adopt).
/// Everything is derived from deterministic per-SM state in SM order, so the
/// counters are bit-identical at every host thread count.
struct WaveCommitStats {
  std::uint64_t waves = 0;           ///< commit_wave calls
  std::uint64_t pages_touched = 0;   ///< sets reconstructed, summed over waves
  std::uint64_t pages_merged = 0;    ///< of those, sets >=2 SMs touched
  std::uint64_t bytes_swapped = 0;   ///< tag bytes adopted from a single owner
  std::uint64_t bytes_replayed = 0;  ///< tag bytes rebuilt by the merge

  WaveCommitStats operator-(const WaveCommitStats& b) const {
    return {waves - b.waves, pages_touched - b.pages_touched,
            pages_merged - b.pages_merged, bytes_swapped - b.bytes_swapped,
            bytes_replayed - b.bytes_replayed};
  }
  bool operator==(const WaveCommitStats&) const = default;
};

class MemorySystem {
 public:
  explicit MemorySystem(const DeviceConfig& dev);

  /// Kernel boundary: the read-only caches are only coherent within one
  /// kernel, and atomic-unit queues drain between kernels. L2 stays warm.
  void begin_kernel();

  struct LoadResult {
    std::uint64_t latency = 0;
    bool ro_hit = false;
    bool l2_hit = false;
    bool dram = false;  ///< the access reached DRAM
  };

  /// One 128-byte read transaction from SM `sm` through `space`.
  LoadResult load(std::uint32_t sm, Space space, std::uint64_t line_addr);

  /// One write transaction (write-through to L2; allocates the line).
  /// Returns true if the write missed L2 (DRAM traffic).
  bool store(std::uint64_t line_addr);

  /// One atomic RMW on `word_addr`, issued at cycle `now`. Atomics to the
  /// same word serialize at the atomic unit (Section III-C: "Atomic
  /// operations are performed at each memory partition by the AOU").
  /// Returns the completion cycle.
  double atomic(std::uint64_t word_addr, double now);

  /// An SM's private view of the shared memory system for one wave, so the
  /// per-SM timing loops can run concurrently: L2 state is shadowed by
  /// epoch-stamped copy-on-write pages over the frozen master tags, the
  /// SM's read-only cache is touched directly (it is exclusively its own),
  /// and atomic clocks go to a wave-local map. commit_wave() folds the
  /// views back in SM order — single-owner pages land by copy, contended
  /// pages by an SM-ordered recency merge — which keeps the model
  /// deterministic for any host thread count. Cross-SM L2 sharing and
  /// atomic serialization are therefore resolved at wave granularity (see
  /// docs/simulator.md §7 and §10).
  class WaveView {
   public:
    /// Header-defined: load/store sit on the timing loop's innermost path
    /// (one call per coalesced transaction), so they must inline together
    /// with L2PageOverlay::access instead of paying a cross-TU call each.
    /// The latencies and the SM's read-only cache are cached in the view at
    /// construction/reset so the fast path never chases parent_->dev_.
    LoadResult load(Space space, std::uint64_t line_addr) {
      LoadResult result;
      if (space == Space::kReadOnly) {
        // The read-only cache is per-SM, so the view touches the real one.
        if (ro_->access(line_addr)) {
          result.ro_hit = true;
          result.latency = ro_hit_latency_;
          return result;
        }
      }
      if (l2_.access(line_addr)) {
        result.l2_hit = true;
        result.latency = l2_hit_latency_;
      } else {
        result.dram = true;
        result.latency = dram_latency_;
      }
      // On an RO miss the fill overlaps the L2/DRAM trip — no extra charge
      // (__ldg must never be slower than the plain-load path it replaces).
      return result;
    }

    bool store(std::uint64_t line_addr) { return !l2_.access(line_addr); }

    double atomic(std::uint64_t word_addr, double now);

   private:
    friend class MemorySystem;
    WaveView(MemorySystem& parent, std::uint32_t sm);

    MemorySystem* parent_;
    CacheModel* ro_;  ///< the owning SM's read-only cache (lives in parent)
    std::uint64_t ro_hit_latency_;
    std::uint64_t l2_hit_latency_;
    std::uint64_t dram_latency_;
    L2PageOverlay l2_;           ///< COW pages over the frozen master tags
    AtomicClocks atomic_local_;  ///< wave-local atomic-unit clocks
  };

  WaveView wave_view(std::uint32_t sm) { return WaveView(*this, sm); }

  /// Re-arm an existing view for a new wave: an epoch bump that stales all
  /// of its overlay pages at once. Equivalent to `view = wave_view(sm)` but
  /// copies nothing — pages re-snapshot lazily on first touch.
  void reset_view(WaveView& view, std::uint32_t sm);

  /// Fold the per-SM views back into the shared state, in SM order.
  void commit_wave(std::vector<WaveView>& views);

  /// Cumulative wave-commit counters (see WaveCommitStats).
  const WaveCommitStats& commit_stats() const { return commit_stats_; }

  const CacheModel& l2() const { return l2_; }
  const CacheModel& ro_cache(std::uint32_t sm) const { return ro_caches_[sm]; }

 private:
  /// Per-set merge scratch for commit_wave, epoch-stamped so a wave only
  /// pays for the sets it touched. Lives here (not on the stack) to keep
  /// its allocations across waves.
  struct MergeSet {
    std::uint64_t epoch = 0;   ///< valid only when == MergeScratch::epoch
    std::uint32_t count = 0;   ///< merged wave-touched tags so far
    std::uint32_t owner = 0;   ///< first contributing SM (highest SM index)
    bool contended = false;    ///< a second SM touched the page
  };
  struct MergeScratch {
    std::uint64_t epoch = 0;
    std::vector<MergeSet> sets;          ///< one per L2 set
    std::vector<std::uint64_t> tags;     ///< num_sets * ways merge staging
    std::vector<std::uint32_t> touched;  ///< sets any view touched this wave
  };

  const DeviceConfig& dev_;
  CacheModel l2_;
  std::vector<CacheModel> ro_caches_;  ///< one per SM
  AtomicClocks atomic_ready_;          ///< per-word atomic-unit clock
  MergeScratch merge_;
  WaveCommitStats commit_stats_;
};

}  // namespace speckle::simt
