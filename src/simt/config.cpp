#include "simt/config.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace speckle::simt {

DeviceConfig DeviceConfig::scaled(std::uint32_t denom) const {
  SPECKLE_CHECK(denom >= 1, "scale denominator must be >= 1");
  DeviceConfig scaled = *this;
  auto shrink = [&](std::uint64_t bytes, std::uint32_t ways) {
    const std::uint64_t unit = static_cast<std::uint64_t>(line_bytes) * ways;
    const std::uint64_t target = std::max<std::uint64_t>(bytes / denom, unit);
    return target / unit * unit;  // keep size divisible by line*ways
  };
  scaled.l2_bytes = shrink(l2_bytes, l2_ways);
  scaled.ro_cache_bytes =
      static_cast<std::uint32_t>(shrink(ro_cache_bytes, ro_cache_ways));
  return scaled;
}

std::uint32_t occupancy_blocks_per_sm(const DeviceConfig& dev, const LaunchConfig& cfg) {
  SPECKLE_CHECK(cfg.block_threads >= 1 && cfg.block_threads <= dev.max_threads_per_block,
                "block size out of range");
  const std::uint32_t warps_per_block =
      (cfg.block_threads + dev.warp_size - 1) / dev.warp_size;
  SPECKLE_CHECK(warps_per_block <= dev.max_warps_per_sm, "block exceeds SM warp limit");

  std::uint32_t resident = dev.max_blocks_per_sm;
  resident = std::min(resident, dev.max_warps_per_sm / warps_per_block);
  if (cfg.regs_per_thread > 0) {
    const std::uint32_t regs_per_block = cfg.regs_per_thread * cfg.block_threads;
    SPECKLE_CHECK(regs_per_block <= dev.regfile_per_sm,
                  "block exceeds SM register file");
    resident = std::min(resident, dev.regfile_per_sm / regs_per_block);
  }
  if (cfg.smem_bytes_per_block > 0) {
    SPECKLE_CHECK(cfg.smem_bytes_per_block <= dev.smem_per_sm,
                  "block exceeds SM scratchpad");
    resident = std::min(resident, dev.smem_per_sm / cfg.smem_bytes_per_block);
  }
  SPECKLE_CHECK(resident >= 1, "kernel cannot be scheduled on this device");
  return resident;
}

}  // namespace speckle::simt
