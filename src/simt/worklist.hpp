#pragma once
/// \file worklist.hpp
/// A device-resident worklist: an item buffer plus a tail counter.
///
/// Two push disciplines, matching the paper's Section III-C:
///   * Thread::scan_push — block-wide prefix-sum compaction, ONE global
///     atomic per thread block (the paper's optimized data-driven scheme);
///   * per-item atomics — the kernel bumps the tail itself with
///     atomic_add + store (kept as the ablation baseline).
///
/// Double buffering (Algorithm 5 line 19): keep two Worklists and
/// std::swap the references between iterations; nothing is copied.

#include <cstdint>
#include <span>
#include <string>

#include "simt/buffer.hpp"
#include "simt/device.hpp"

namespace speckle::simt {

class Worklist {
 public:
  /// `capacity` is the maximum item count a single generation can hold.
  /// `name` labels the underlying buffers in sanitizer findings.
  Worklist(Device& dev, std::size_t capacity, std::string name = "worklist")
      : items_(dev.alloc<std::uint32_t>(capacity, name + ".items")),
        tail_(dev.alloc<std::uint32_t>(1, name + ".tail")) {
    tail_[0] = 0;
  }

  Buffer<std::uint32_t>& items() { return items_; }
  const Buffer<std::uint32_t>& items() const { return items_; }
  Buffer<std::uint32_t>& tail() { return tail_; }
  const Buffer<std::uint32_t>& tail() const { return tail_; }

  /// Host-side size/reset (between kernel launches).
  std::uint32_t size() const { return tail_[0]; }
  bool empty() const { return size() == 0; }
  void clear() { tail_[0] = 0; }

  std::span<const std::uint32_t> host_items() const {
    return items_.host().subspan(0, size());
  }

  /// Host-side fill (e.g. W <- V initialisation before the first launch).
  void fill_iota(std::uint32_t count) {
    SPECKLE_CHECK(count <= items_.size(), "worklist capacity exceeded");
    for (std::uint32_t i = 0; i < count; ++i) items_[i] = i;
    tail_[0] = count;
  }

 private:
  Buffer<std::uint32_t> items_;
  Buffer<std::uint32_t> tail_;
};

}  // namespace speckle::simt
