#include "simt/memory.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace speckle::simt {

MemorySystem::MemorySystem(const DeviceConfig& dev)
    : dev_(dev), l2_(dev.l2_bytes, dev.line_bytes, dev.l2_ways) {
  ro_caches_.reserve(dev.num_sms);
  for (std::uint32_t sm = 0; sm < dev.num_sms; ++sm) {
    ro_caches_.emplace_back(dev.ro_cache_bytes, dev.line_bytes, dev.ro_cache_ways);
  }
}

void MemorySystem::begin_kernel() {
  for (CacheModel& cache : ro_caches_) cache.invalidate_all();
  atomic_ready_.clear();
}

MemorySystem::LoadResult MemorySystem::load(std::uint32_t sm, Space space,
                                            std::uint64_t line_addr) {
  SPECKLE_CHECK(sm < ro_caches_.size(), "load from unknown SM");
  LoadResult result;
  if (space == Space::kReadOnly) {
    // __ldg: probe the per-SM read-only cache first (Fig 4 right-hand path).
    if (ro_caches_[sm].access(line_addr)) {
      result.ro_hit = true;
      result.latency = dev_.ro_hit_latency;
      return result;
    }
  }
  if (l2_.access(line_addr)) {
    result.l2_hit = true;
    result.latency = dev_.l2_hit_latency;
  } else {
    result.dram = true;
    result.latency = dev_.dram_latency;
  }
  // On an RO miss the fill overlaps the L2/DRAM trip — no extra charge
  // (__ldg must never be slower than the plain-load path it replaces).
  return result;
}

bool MemorySystem::store(std::uint64_t line_addr) { return !l2_.access(line_addr); }

double MemorySystem::atomic(std::uint64_t word_addr, double now) {
  double& ready = atomic_ready_[word_addr];
  const double start = std::max(now, ready);
  ready = start + static_cast<double>(dev_.atomic_serialize);
  return start + static_cast<double>(dev_.atomic_latency);
}

MemorySystem::WaveView::WaveView(MemorySystem& parent, std::uint32_t sm)
    : parent_(&parent),
      ro_(&parent.ro_caches_.at(sm)),
      ro_hit_latency_(parent.dev_.ro_hit_latency),
      l2_hit_latency_(parent.dev_.l2_hit_latency),
      dram_latency_(parent.dev_.dram_latency),
      l2_(parent.l2_) {}

double MemorySystem::WaveView::atomic(std::uint64_t word_addr, double now) {
  auto local = atomic_local_.find(word_addr);
  double ready = 0.0;
  if (local != atomic_local_.end()) {
    ready = local->second;
  } else {
    // The master map is frozen while the wave runs, so this concurrent
    // lookup is race-free.
    auto master = parent_->atomic_ready_.find(word_addr);
    if (master != parent_->atomic_ready_.end()) ready = master->second;
  }
  const double start = std::max(now, ready);
  atomic_local_[word_addr] = start + static_cast<double>(parent_->dev_.atomic_serialize);
  return start + static_cast<double>(parent_->dev_.atomic_latency);
}

void MemorySystem::reset_view(WaveView& view, std::uint32_t sm) {
  view.parent_ = this;
  view.ro_ = &ro_caches_.at(sm);
  view.ro_hit_latency_ = dev_.ro_hit_latency;
  view.l2_hit_latency_ = dev_.l2_hit_latency;
  view.dram_latency_ = dev_.dram_latency;
  view.l2_ = l2_;  // vector copy-assign: reuses the tag/age storage
  view.l2_log_.clear();
  view.atomic_local_.clear();
}

void MemorySystem::commit_wave(std::vector<WaveView>& views) {
  bool first = true;
  for (WaveView& view : views) {
    if (first) {
      // The master L2 is frozen while the wave runs, so the first view's
      // private copy — master snapshot evolved by exactly the accesses its
      // log records — already equals the state (tags and counters) that
      // replaying its log would produce. Swap it in instead of replaying;
      // the stale state left in the view is overwritten at the next
      // reset_view, and the swap keeps both allocations alive for reuse.
      std::swap(l2_, view.l2_);
      first = false;
    } else {
      for (const std::uint64_t line : view.l2_log_) l2_.access(line);
    }
    for (const auto& [word, ready] : view.atomic_local_) {
      double& master = atomic_ready_[word];
      master = std::max(master, ready);
    }
  }
}

}  // namespace speckle::simt
