#include "simt/memory.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace speckle::simt {

MemorySystem::MemorySystem(const DeviceConfig& dev)
    : dev_(dev), l2_(dev.l2_bytes, dev.line_bytes, dev.l2_ways) {
  ro_caches_.reserve(dev.num_sms);
  for (std::uint32_t sm = 0; sm < dev.num_sms; ++sm) {
    ro_caches_.emplace_back(dev.ro_cache_bytes, dev.line_bytes, dev.ro_cache_ways);
  }
}

void MemorySystem::begin_kernel() {
  for (CacheModel& cache : ro_caches_) cache.invalidate_all();
  atomic_ready_.clear();
}

MemorySystem::LoadResult MemorySystem::load(std::uint32_t sm, Space space,
                                            std::uint64_t line_addr) {
  SPECKLE_CHECK(sm < ro_caches_.size(), "load from unknown SM");
  LoadResult result;
  if (space == Space::kReadOnly) {
    // __ldg: probe the per-SM read-only cache first (Fig 4 right-hand path).
    if (ro_caches_[sm].access(line_addr)) {
      result.ro_hit = true;
      result.latency = dev_.ro_hit_latency;
      return result;
    }
  }
  if (l2_.access(line_addr)) {
    result.l2_hit = true;
    result.latency = dev_.l2_hit_latency;
  } else {
    result.dram = true;
    result.latency = dev_.dram_latency;
  }
  // On an RO miss the fill overlaps the L2/DRAM trip — no extra charge
  // (__ldg must never be slower than the plain-load path it replaces).
  return result;
}

bool MemorySystem::store(std::uint64_t line_addr) { return !l2_.access(line_addr); }

double MemorySystem::atomic(std::uint64_t word_addr, double now) {
  double& ready = atomic_ready_[word_addr];
  const double start = std::max(now, ready);
  ready = start + static_cast<double>(dev_.atomic_serialize);
  return start + static_cast<double>(dev_.atomic_latency);
}

}  // namespace speckle::simt
