#include "simt/memory.hpp"

#include <algorithm>
#include <cstring>

#include "support/check.hpp"

namespace speckle::simt {

MemorySystem::MemorySystem(const DeviceConfig& dev)
    : dev_(dev), l2_(dev.l2_bytes, dev.line_bytes, dev.l2_ways) {
  ro_caches_.reserve(dev.num_sms);
  for (std::uint32_t sm = 0; sm < dev.num_sms; ++sm) {
    ro_caches_.emplace_back(dev.ro_cache_bytes, dev.line_bytes, dev.ro_cache_ways);
  }
}

void MemorySystem::begin_kernel() {
  for (CacheModel& cache : ro_caches_) cache.invalidate_all();
  atomic_ready_.clear();
}

MemorySystem::LoadResult MemorySystem::load(std::uint32_t sm, Space space,
                                            std::uint64_t line_addr) {
  SPECKLE_CHECK(sm < ro_caches_.size(), "load from unknown SM");
  LoadResult result;
  if (space == Space::kReadOnly) {
    // __ldg: probe the per-SM read-only cache first (Fig 4 right-hand path).
    if (ro_caches_[sm].access(line_addr)) {
      result.ro_hit = true;
      result.latency = dev_.ro_hit_latency;
      return result;
    }
  }
  if (l2_.access(line_addr)) {
    result.l2_hit = true;
    result.latency = dev_.l2_hit_latency;
  } else {
    result.dram = true;
    result.latency = dev_.dram_latency;
  }
  // On an RO miss the fill overlaps the L2/DRAM trip — no extra charge
  // (__ldg must never be slower than the plain-load path it replaces).
  return result;
}

bool MemorySystem::store(std::uint64_t line_addr) { return !l2_.access(line_addr); }

double MemorySystem::atomic(std::uint64_t word_addr, double now) {
  double& ready = atomic_ready_.upsert(word_addr);
  const double start = std::max(now, ready);
  ready = start + static_cast<double>(dev_.atomic_serialize);
  return start + static_cast<double>(dev_.atomic_latency);
}

MemorySystem::WaveView::WaveView(MemorySystem& parent, std::uint32_t sm)
    : parent_(&parent),
      ro_(&parent.ro_caches_.at(sm)),
      ro_hit_latency_(parent.dev_.ro_hit_latency),
      l2_hit_latency_(parent.dev_.l2_hit_latency),
      dram_latency_(parent.dev_.dram_latency) {
  l2_.attach(parent.l2_);
}

double MemorySystem::WaveView::atomic(std::uint64_t word_addr, double now) {
  bool inserted = false;
  double& local = atomic_local_.upsert(word_addr, &inserted);
  double ready = local;
  if (inserted) {
    // First touch of this word in the wave: seed from the master clock.
    // The master map is frozen while the wave runs, so this concurrent
    // lookup is race-free.
    const double* master = parent_->atomic_ready_.find(word_addr);
    if (master != nullptr) ready = *master;
  }
  const double start = std::max(now, ready);
  local = start + static_cast<double>(parent_->dev_.atomic_serialize);
  return start + static_cast<double>(parent_->dev_.atomic_latency);
}

void MemorySystem::reset_view(WaveView& view, std::uint32_t sm) {
  if (view.parent_ != this) {
    view.l2_.attach(l2_);  // re-bind the shadow pages to this master image
  } else {
    view.l2_.bump_epoch();  // pages re-snapshot master lazily, on first touch
  }
  view.parent_ = this;
  view.ro_ = &ro_caches_.at(sm);
  view.ro_hit_latency_ = dev_.ro_hit_latency;
  view.l2_hit_latency_ = dev_.l2_hit_latency;
  view.dram_latency_ = dev_.dram_latency;
  view.atomic_local_.clear();
}

/// The commit's correctness rests on one property of LRU recency order:
/// after any access sequence, a set holds the `ways` most-recently-used
/// distinct lines (MRU first), followed by the start-state survivors in
/// their original relative order. The reference semantics — replay every
/// view's accesses into master in SM order — therefore produces, per set,
///
///   [distinct wave-touched lines, ordered by (last-touching SM desc,
///    recency within that SM desc)] ++ [master survivors] , cut to `ways`.
///
/// Each view's overlay page already ends the wave as
/// [its touched lines, MRU first][master survivors], with the split at
/// touched_count (untouched lines only ever slide backwards, so every
/// touched line sits ahead of them — and a touched line evicted from its
/// own page can never appear in the merged result either, because the
/// page's `ways` fresher lines precede it there too). So master-after-wave
/// is reconstructed exactly, touching each tag once, by walking the views'
/// touched prefixes in REVERSE SM order (later SMs replay later, so their
/// touches are the most recent), deduplicating, and back-filling with
/// master survivors. Pages only one SM touched skip all of that: the page
/// IS the post-replay set, and commit adopts it with one copy.
void MemorySystem::commit_wave(std::vector<WaveView>& views) {
  const std::uint32_t ways = l2_.ways();
  std::uint64_t* master = l2_.tag_data();
  if (merge_.sets.size() != l2_.num_sets()) {
    merge_.sets.assign(l2_.num_sets(), MergeSet{});
    merge_.tags.resize(std::size_t{l2_.num_sets()} * ways);
  }
  ++merge_.epoch;
  merge_.touched.clear();
  const std::uint64_t epoch = merge_.epoch;

  for (std::size_t v = views.size(); v-- > 0;) {
    const L2PageOverlay& overlay = views[v].l2_;
    for (const std::uint32_t set : overlay.touched_sets()) {
      MergeSet& ms = merge_.sets[set];
      if (ms.epoch != epoch) {
        ms.epoch = epoch;
        ms.count = 0;
        ms.owner = static_cast<std::uint32_t>(v);
        ms.contended = false;
        merge_.touched.push_back(set);
      } else {
        ms.contended = true;
        if (ms.count == ways) continue;  // already rebuilt from fresher SMs
      }
      std::uint64_t* staged = &merge_.tags[std::size_t{set} * ways];
      const std::uint64_t* page = overlay.page(set);
      const std::uint32_t touched = overlay.touched_count(set);
      for (std::uint32_t i = 0; i < touched && ms.count < ways; ++i) {
        const std::uint64_t tag = page[i];
        bool dup = false;
        for (std::uint32_t j = 0; j < ms.count; ++j) {
          if (staged[j] == tag) {
            dup = true;  // a later SM touched it more recently
            break;
          }
        }
        if (!dup) staged[ms.count++] = tag;
      }
    }
  }

  for (const std::uint32_t set : merge_.touched) {
    const MergeSet& ms = merge_.sets[set];
    std::uint64_t* mset = master + std::size_t{set} * ways;
    if (!ms.contended) {
      // Single owner: its page tail is exactly the surviving master lines.
      std::memcpy(mset, views[ms.owner].l2_.page(set), ways * sizeof(mset[0]));
      commit_stats_.bytes_swapped += ways * sizeof(mset[0]);
      continue;
    }
    // Contended: back-fill the merged wave prefix with master survivors.
    // Valid tags dedup against the prefix; invalid filler ways keep their
    // multiplicity (each is a distinct evictable entry, never a real tag).
    std::uint64_t* staged = &merge_.tags[std::size_t{set} * ways];
    std::uint32_t n = ms.count;
    for (std::uint32_t w = 0; w < ways && n < ways; ++w) {
      const std::uint64_t tag = mset[w];
      if (tag != CacheModel::kInvalidTag) {
        bool dup = false;
        for (std::uint32_t j = 0; j < ms.count; ++j) {
          if (staged[j] == tag) {
            dup = true;
            break;
          }
        }
        if (dup) continue;
      }
      staged[n++] = tag;
    }
    SPECKLE_CHECK(n == ways, "merged set must fill from prefix + survivors");
    std::memcpy(mset, staged, ways * sizeof(mset[0]));
    commit_stats_.bytes_replayed += ways * sizeof(mset[0]);
    ++commit_stats_.pages_merged;
  }
  commit_stats_.pages_touched += merge_.touched.size();
  ++commit_stats_.waves;

  // Atomic-unit clocks: per-key max over the views' wave-local maps. Max is
  // commutative and associative, so SM order is not needed for determinism,
  // but we keep it anyway — it is the reference replay order.
  for (WaveView& view : views) {
    for (const AtomicClocks::Entry& e : view.atomic_local_.entries()) {
      double& ready = atomic_ready_.upsert(e.addr);
      ready = std::max(ready, e.ready);
    }
  }
}

}  // namespace speckle::simt
