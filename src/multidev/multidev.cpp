#include "multidev/multidev.hpp"

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "coloring/gpu_common.hpp"
#include "simt/device.hpp"
#include "simt/worklist.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace speckle::multidev {

using coloring::color_t;
using coloring::kUncolored;
using graph::eid_t;
using graph::vid_t;

namespace {

/// Bytes one ghost update occupies on the interconnect: a (global id,
/// color) record, the minimal delta-exchange payload.
constexpr std::uint64_t kExchangeRecordBytes = sizeof(vid_t) + sizeof(color_t);

/// One simulated GPU plus its shard-local working set.
struct Node {
  std::unique_ptr<simt::Device> dev;
  coloring::DeviceGraph dg;                 ///< shard-local CSR (ghost rows empty)
  simt::Buffer<std::uint32_t> colors;       ///< num_local: owned then ghost slots
  simt::Buffer<vid_t> l2g;                  ///< num_local: local id -> global id
  std::unique_ptr<simt::Worklist> list_a;
  std::unique_ptr<simt::Worklist> list_b;
  simt::Worklist* w_in = nullptr;
  simt::Worklist* w_out = nullptr;
  std::uint32_t rounds = 0;           ///< rounds with live work on this device
  std::uint64_t sent_colors = 0;
  std::uint64_t recv_colors = 0;
};

/// Advance every device to the slowest timeline — the lockstep round
/// barrier. Iterating devices in index order keeps the charge sequence (and
/// with it every report) deterministic.
void align_timelines(std::vector<Node>& nodes) {
  std::uint64_t latest = 0;
  for (const Node& node : nodes) {
    latest = std::max(latest, node.dev->timeline_cycles());
  }
  for (Node& node : nodes) {
    const std::uint64_t now = node.dev->timeline_cycles();
    if (now < latest) node.dev->charge_host_cycles(latest - now);
  }
}

/// Conflict test with a GLOBAL-id tie-break: true when some neighbor w has
/// colors[w] == colors[v] and global(v) < global(w). The local-id test of
/// gpu_common's device_conflict is wrong across shards — two devices would
/// each see their own local id as the smaller one and both (or neither)
/// would recolor — so the kernel pays the extra l2g load on each
/// same-colored neighbor to agree with the remote owner.
bool device_conflict_global(simt::Thread& t, const coloring::DeviceGraph& dg,
                            simt::Buffer<std::uint32_t>& colors,
                            const simt::Buffer<vid_t>& l2g, vid_t v,
                            vid_t global_v, bool use_ldg) {
  const eid_t begin = use_ldg ? t.ldg(dg.row, v) : t.ld(dg.row, v);
  const eid_t end = use_ldg ? t.ldg(dg.row, v + 1) : t.ld(dg.row, v + 1);
  const color_t cv = t.ld(colors, v);
  t.compute(2);
  for (eid_t e = begin; e < end; ++e) {
    const vid_t w = use_ldg ? t.ldg(dg.col, e) : t.ld(dg.col, e);
    const color_t cw = t.ld(colors, w);
    t.compute(3);
    if (cv != cw) continue;
    const vid_t global_w = use_ldg ? t.ldg(l2g, w) : t.ld(l2g, w);
    t.compute(1);
    if (global_v < global_w) return true;
  }
  return false;
}

}  // namespace

MultiDevResult multidev_color(const graph::CsrGraph& g, const MultiDevOptions& opts) {
  support::Timer wall;
  SPECKLE_CHECK(opts.num_devices >= 1, "multidev_color needs at least one device");
  const std::uint32_t parts = opts.num_devices;

  MultiDevResult result;
  const graph::Partition part =
      graph::make_partition(g, parts, opts.partitioner, opts.seed);
  result.cut_edges = part.cut_edges;

  // --- bring up the fleet ---------------------------------------------------
  std::vector<Node> nodes(parts);
  for (std::uint32_t k = 0; k < parts; ++k) {
    const graph::Shard& shard = part.shards[k];
    Node& node = nodes[k];
    const std::string prefix = "d" + std::to_string(k) + ".";
    node.dev = std::make_unique<simt::Device>(opts.device);
    simt::Device& dev = *node.dev;

    const vid_t num_local = shard.num_local();
    node.dg.num_vertices = num_local;
    node.dg.row = dev.alloc<eid_t>(shard.local.num_vertices() + 1, prefix + "row");
    node.dg.col = dev.alloc<vid_t>(shard.local.num_edges(), prefix + "col");
    node.dg.row.copy_from(shard.local.row_offsets());
    node.dg.col.copy_from(shard.local.col_indices());

    node.colors = dev.alloc<std::uint32_t>(num_local, prefix + "colors");
    node.colors.fill(kUncolored);
    node.l2g = dev.alloc<vid_t>(num_local, prefix + "l2g");
    for (vid_t i = 0; i < shard.num_owned(); ++i) node.l2g[i] = shard.owned[i];
    for (vid_t i = 0; i < shard.num_ghosts(); ++i) {
      node.l2g[shard.num_owned() + i] = shard.ghosts[i];
    }

    const std::size_t capacity = std::max<std::size_t>(shard.num_owned(), 1);
    node.list_a = std::make_unique<simt::Worklist>(dev, capacity, prefix + "list_a");
    node.list_b = std::make_unique<simt::Worklist>(dev, capacity, prefix + "list_b");
    node.w_in = node.list_a.get();
    node.w_out = node.list_b.get();
    node.w_in->fill_iota(shard.num_owned());  // W_in <- owned(V_k)
  }

  // Exchange plan: for each owned vertex, where do its ghost copies live?
  // subscribers[k][local] lists (peer device, peer color slot) pairs; built
  // once from the partition, iterated every round.
  struct Subscriber {
    std::uint32_t peer;
    vid_t slot;
  };
  std::vector<std::vector<std::vector<Subscriber>>> subscribers(parts);
  for (std::uint32_t k = 0; k < parts; ++k) {
    subscribers[k].resize(part.shards[k].num_owned());
  }
  for (std::uint32_t p = 0; p < parts; ++p) {
    const graph::Shard& shard = part.shards[p];
    for (vid_t gi = 0; gi < shard.num_ghosts(); ++gi) {
      const vid_t global_v = shard.ghosts[gi];
      const std::uint32_t owner = part.owner[global_v];
      subscribers[owner][part.local_index[global_v]].push_back(
          {p, static_cast<vid_t>(shard.num_owned() + gi)});
    }
  }

  // Scratch reused across rounds: bytes queued on each directed peer link.
  std::vector<std::uint64_t> link_bytes(
      static_cast<std::size_t>(parts) * parts, 0);

  // --- lockstep SGR rounds --------------------------------------------------
  auto any_live = [&nodes] {
    return std::any_of(nodes.begin(), nodes.end(),
                       [](const Node& n) { return !n.w_in->empty(); });
  };
  // Write `color` into every ghost copy of device k's owned vertex v and
  // queue the record on the peer links. Host-side writes through
  // Buffer::operator[] mark the sanitizer's shadow-init map, so the next
  // kernel's ghost reads are san-clean.
  auto ship = [&](std::uint32_t k, std::uint32_t v, color_t color) {
    for (const Subscriber& s : subscribers[k][v]) {
      nodes[s.peer].colors[s.slot] = color;
      link_bytes[static_cast<std::size_t>(k) * parts + s.peer] +=
          kExchangeRecordBytes;
      ++nodes[k].sent_colors;
      ++nodes[s.peer].recv_colors;
      ++result.exchanged_colors;
    }
  };
  // Charge every nonempty peer link to BOTH endpoints (the link occupies
  // sender and receiver alike), in (src, dst) order, then clear the queue.
  auto flush_links = [&] {
    for (std::uint32_t src = 0; src < parts; ++src) {
      for (std::uint32_t dst = 0; dst < parts; ++dst) {
        const std::uint64_t bytes =
            link_bytes[static_cast<std::size_t>(src) * parts + dst];
        if (bytes == 0) continue;
        nodes[src].dev->copy_peer(bytes);
        nodes[dst].dev->copy_peer(bytes);
      }
    }
    std::fill(link_bytes.begin(), link_bytes.end(), 0);
  };

  while (any_live()) {
    SPECKLE_CHECK(result.rounds < opts.max_rounds,
                  "multidev_color exceeded max_rounds");
    ++result.rounds;

    // With P > 1 the fleet loses the single device's implicit sweep order
    // (serial racy blocks color in ascending id, which on the R-MAT graphs
    // doubles as a largest-degree-first order — their low ids are the
    // hubs). Recover the bias explicitly: order every worklist by
    // descending degree (id tiebreak) so the staged sweep colors hubs
    // fleet-wide before leaves. Host-side and deterministic; skipped at
    // P=1 to stay bit-identical with data_color's id-order sweep.
    if (parts > 1) {
      for (std::uint32_t k = 0; k < parts; ++k) {
        const graph::CsrGraph& local = part.shards[k].local;
        std::span<std::uint32_t> items =
            nodes[k].w_in->items().host().subspan(0, nodes[k].w_in->size());
        std::sort(items.begin(), items.end(),
                  [&local](std::uint32_t a, std::uint32_t b) {
                    const vid_t da = local.degree(a);
                    const vid_t db = local.degree(b);
                    return da != db ? da > db : a < b;
                  });
      }
    }

    // Phases 1+2 — speculative coloring (Algorithm 5 lines 4-10 against the
    // local view: owned colors + ghost copies), staged into sub-rounds with
    // a boundary exchange after each stage. After every stage the fresh
    // colors of that stage's boundary vertices ship to every device
    // ghosting them, folded host-side in (source device, worklist position)
    // order — deterministic by construction — and each nonempty peer link
    // is charged to both endpoints. Later stages therefore see earlier
    // stages' picks across devices, which is what keeps cross-partition
    // collisions (and with them color inflation) low.
    std::uint32_t max_count = 0;
    for (const Node& node : nodes) {
      max_count = std::max(max_count, node.w_in->size());
    }
    // Geometric stage schedule: stage s covers a chunk ~2x the previous
    // one, so the degree-sorted worklist's hubs (where cross-device
    // collisions concentrate) are colored in tiny near-serial slices while
    // the low-degree tail ships in bulk. 2^stages - 1 >= max_count picks
    // the smallest schedule that starts at chunk size ~1. A single device
    // has no ghosts to exchange, so it runs one full launch per round —
    // the stage spans are not block-aligned, and splitting a racy launch
    // at other boundaries would change the intra-block race schedule and
    // break bit-identity with the single-device scheme.
    std::uint32_t stages = 1;
    while (parts > 1 && stages < opts.subrounds &&
           ((std::uint64_t{1} << stages) - 1) < max_count) {
      ++stages;
    }
    const std::uint64_t stage_denom = (std::uint64_t{1} << stages) - 1;
    // [begin, end) of `stage` within a worklist of `count` items: the
    // geometric schedule scaled proportionally to this device's count.
    const auto stage_span = [stages, stage_denom](std::uint32_t count,
                                                  std::uint32_t stage) {
      const auto edge = [&](std::uint32_t s) {
        return static_cast<std::uint32_t>(
            (std::uint64_t{count} * ((std::uint64_t{1} << s) - 1)) /
            stage_denom);
      };
      return std::pair<std::uint32_t, std::uint32_t>{edge(stage),
                                                     edge(stage + 1)};
    };
    for (std::uint32_t k = 0; k < parts; ++k) {
      if (!nodes[k].w_in->empty()) ++nodes[k].rounds;
    }
    for (std::uint32_t stage = 0; stage < stages; ++stage) {
      for (std::uint32_t k = 0; k < parts; ++k) {
        Node& node = nodes[k];
        const auto [begin, end] = stage_span(node.w_in->size(), stage);
        if (begin >= end) continue;
        const std::uint32_t items = end - begin;
        simt::LaunchConfig racy_cfg{
            (items + opts.block_size - 1) / opts.block_size, opts.block_size};
        racy_cfg.racy_visibility = true;  // speculation feeds on st_racy races
        node.dev->launch(racy_cfg, "d" + std::to_string(k) + ".md_color",
                         [&, begin, items](simt::Thread& t) {
                           const auto idx = t.global_id();
                           if (idx >= items) return;
                           t.compute(2);
                           const vid_t v = t.ld(node.w_in->items(), begin + idx);
                           const color_t c = device_first_fit(
                               t, node.dg, node.colors, v, opts.use_ldg);
                           t.st_racy(node.colors, v, c);
                         });
      }

      // Stage barrier: the exchange starts when the slowest device arrives.
      align_timelines(nodes);

      for (std::uint32_t k = 0; k < parts; ++k) {
        Node& node = nodes[k];
        const auto [begin, end] = stage_span(node.w_in->size(), stage);
        const auto items = node.w_in->host_items();
        for (std::uint32_t idx = begin; idx < end; ++idx) {
          const std::uint32_t v = items[idx];
          if (subscribers[k][v].empty()) continue;
          ship(k, v, node.colors[v]);
        }
      }
      flush_links();
    }

    if (opts.verify_ghosts) {
      // Every ghost slot must now mirror its owner's color (exchange
      // soundness — the invariant the cross-device conflict test relies on).
      for (std::uint32_t p = 0; p < parts; ++p) {
        const graph::Shard& shard = part.shards[p];
        for (vid_t gi = 0; gi < shard.num_ghosts(); ++gi) {
          const vid_t global_v = shard.ghosts[gi];
          const Node& owner = nodes[part.owner[global_v]];
          SPECKLE_CHECK(nodes[p].colors[shard.num_owned() + gi] ==
                            owner.colors[part.local_index[global_v]],
                        "ghost color out of sync after exchange");
        }
      }
      ++result.ghost_rounds_verified;
    }

    // Phase 3 — conflict detection with the global-id tie-break; losers
    // compact into their OWN device's out-worklist (a boundary vertex that
    // loses a cross-device conflict re-enters its owner's worklist).
    for (std::uint32_t k = 0; k < parts; ++k) {
      Node& node = nodes[k];
      const std::uint32_t count = node.w_in->size();
      if (count == 0) continue;
      const simt::LaunchConfig cfg{(count + opts.block_size - 1) / opts.block_size,
                                   opts.block_size};
      node.w_out->clear();
      node.dev->copy_to_device(sizeof(std::uint32_t));  // memset of the out tail
      node.dev->launch(cfg, "d" + std::to_string(k) + ".md_detect",
                       [&, count](simt::Thread& t) {
                         const auto idx = t.global_id();
                         if (idx >= count) return;
                         t.compute(2);
                         const vid_t v = t.ld(node.w_in->items(), idx);
                         const vid_t global_v =
                             opts.use_ldg ? t.ldg(node.l2g, v) : t.ld(node.l2g, v);
                         if (!device_conflict_global(t, node.dg, node.colors,
                                                     node.l2g, v, global_v,
                                                     opts.use_ldg)) {
                           return;
                         }
                         if (opts.scan_push) {
                           t.scan_push(*node.w_out, v);
                         } else {
                           const std::uint32_t slot =
                               t.atomic_add(node.w_out->tail(), 0, 1U);
                           t.st(node.w_out->items(), slot, v);
                         }
                       });
      node.dev->copy_to_host(sizeof(std::uint32_t));  // read |W_out|
      std::swap(node.w_in, node.w_out);
    }

    // Phase 4 — retraction. A loser keeps its conflicting color until it
    // recolors next round; remote speculators would needlessly avoid that
    // stale color (with a large cut this compounds into real color
    // inflation), so ship an "uncolored" marker to every remote ghost copy
    // of a loser. The owner's local copy stays — local same-round
    // speculators see exactly what the single-device scheme shows them,
    // which keeps P=1 bit-identical with data_color. The loser's fresh
    // color reaches the same ghosts in the next round's exchange, before
    // any conflict test reads them.
    for (std::uint32_t k = 0; k < parts; ++k) {
      for (const std::uint32_t v : nodes[k].w_in->host_items()) {
        if (subscribers[k][v].empty()) continue;
        ship(k, v, kUncolored);
      }
    }
    flush_links();

    // Round barrier: next round's speculation starts in lockstep.
    align_timelines(nodes);
  }

  // --- gather ---------------------------------------------------------------
  result.coloring.assign(g.num_vertices(), kUncolored);
  for (std::uint32_t k = 0; k < parts; ++k) {
    const graph::Shard& shard = part.shards[k];
    std::span<const std::uint32_t> colors =
        std::as_const(nodes[k].colors).host();
    for (vid_t i = 0; i < shard.num_owned(); ++i) {
      result.coloring[shard.owned[i]] = colors[i];
    }
  }
  result.num_colors = coloring::count_colors(result.coloring);

  result.devices.reserve(parts);
  std::uint64_t makespan = 0;
  for (std::uint32_t k = 0; k < parts; ++k) {
    Node& node = nodes[k];
    const graph::Shard& shard = part.shards[k];
    DeviceBreakdown breakdown;
    breakdown.device = k;
    breakdown.owned = shard.num_owned();
    breakdown.ghosts = shard.num_ghosts();
    breakdown.cut_edges = shard.cut_edges;
    breakdown.rounds = node.rounds;
    breakdown.sent_colors = node.sent_colors;
    breakdown.recv_colors = node.recv_colors;
    breakdown.report = node.dev->report();
    breakdown.san = node.dev->san_report();
    breakdown.prof = node.dev->prof_report();
    makespan = std::max(makespan, breakdown.report.total_cycles);

    // Fleet views: kernels concatenate in device order (names carry the
    // "d<k>." prefix), transfers sum, san/prof findings append.
    for (const simt::KernelStats& ks : breakdown.report.kernels) {
      result.fleet_report.kernels.push_back(ks);
    }
    const auto add_transfers = [](simt::TransferStats& into,
                                  const simt::TransferStats& from) {
      into.bytes += from.bytes;
      into.cycles += from.cycles;
      into.count += from.count;
    };
    add_transfers(result.fleet_report.h2d, breakdown.report.h2d);
    add_transfers(result.fleet_report.d2h, breakdown.report.d2h);
    add_transfers(result.fleet_report.d2d, breakdown.report.d2d);
    result.san.total += breakdown.san.total;
    for (const san::Finding& f : breakdown.san.findings) {
      result.san.findings.push_back(f);
    }
    for (const prof::LaunchProfile& lp : breakdown.prof.launches) {
      result.prof.launches.push_back(lp);
    }
    for (const prof::Transfer& tr : breakdown.prof.transfers) {
      result.prof.transfers.push_back(tr);
    }
    result.devices.push_back(std::move(breakdown));
  }
  // All timelines meet at the final barrier, so any device's total IS the
  // fleet makespan; take the max anyway for clarity.
  result.fleet_report.total_cycles = makespan;
  result.model_ms = opts.device.cycles_to_ms(makespan);
  result.wall_ms = wall.milliseconds();
  return result;
}

}  // namespace speckle::multidev
