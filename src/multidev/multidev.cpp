#include "multidev/multidev.hpp"

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "coloring/gpu_common.hpp"
#include "simt/device.hpp"
#include "simt/worklist.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace speckle::multidev {

using coloring::color_t;
using coloring::kUncolored;
using graph::eid_t;
using graph::vid_t;

namespace {

/// Bytes one ghost update occupies on the interconnect: a (global id,
/// color) record, the minimal delta-exchange payload.
constexpr std::uint64_t kExchangeRecordBytes = sizeof(vid_t) + sizeof(color_t);

/// One simulated GPU plus its shard-local working set.
struct Node {
  std::unique_ptr<simt::Device> dev;
  coloring::DeviceGraph dg;                 ///< shard-local CSR (ghost rows empty)
  simt::Buffer<std::uint32_t> colors;       ///< num_local: owned then ghost slots
  simt::Buffer<vid_t> l2g;                  ///< num_local: local id -> global id
  simt::Buffer<std::uint64_t> prio;         ///< num_local: static JP priority
  std::unique_ptr<simt::Worklist> list_a;
  std::unique_ptr<simt::Worklist> list_b;
  simt::Worklist* w_in = nullptr;
  simt::Worklist* w_out = nullptr;
  /// Boundary vertices that colored this round and survived the LOCAL
  /// conflict scan: their cross-cut check runs at the START of the next
  /// round, once the exchange their neighbors' colors ride on has landed
  /// (pend_in is checked, pend_out is filled, swapped at the barrier).
  std::unique_ptr<simt::Worklist> pend_a;
  std::unique_ptr<simt::Worklist> pend_b;
  simt::Worklist* pend_in = nullptr;
  simt::Worklist* pend_out = nullptr;
  std::uint32_t rounds = 0;           ///< rounds with live work on this device
  std::uint64_t sent_colors = 0;
  std::uint64_t recv_colors = 0;
  std::uint64_t exchange_busy = 0;    ///< DMA-busy cycles across this run
  std::uint64_t exchange_stall = 0;   ///< sync_to gaps the overlap didn't hide
};

/// Lane-0 fallback when the cooperative 64-color window overflows (a
/// vertex with >= 64 distinctly-colored neighbors): rescan the adjacency
/// serially with ever-wider windows, exactly like data_warp_color's.
color_t lane0_wide_first_fit(simt::Thread& t, const coloring::DeviceGraph& dg,
                             simt::Buffer<std::uint32_t>& colors, eid_t begin,
                             eid_t end, bool use_ldg) {
  for (color_t base = 65;; base += 64) {
    std::uint64_t forbidden = 0;
    for (eid_t e = begin; e < end; ++e) {
      const vid_t w = use_ldg ? t.ldg(dg.col, e) : t.ld(dg.col, e);
      const color_t cw = t.ld(colors, w);
      if (cw >= base && cw < base + 64) forbidden |= 1ULL << (cw - base);
      t.compute(3);
    }
    if (forbidden != ~0ULL) {
      color_t offset = 0;
      while (forbidden & (1ULL << offset)) ++offset;
      return base + offset;
    }
  }
}

/// Conflict test with a GLOBAL-id tie-break: true when some neighbor w has
/// colors[w] == colors[v] and global(v) < global(w). The local-id test of
/// gpu_common's device_conflict is wrong across shards — two devices would
/// each see their own local id as the smaller one and both (or neither)
/// would recolor — so the kernel pays the extra l2g load on each
/// same-colored neighbor to agree with the remote owner.
bool device_conflict_global(simt::Thread& t, const coloring::DeviceGraph& dg,
                            simt::Buffer<std::uint32_t>& colors,
                            const simt::Buffer<vid_t>& l2g, vid_t v,
                            vid_t global_v, bool use_ldg) {
  const eid_t begin = use_ldg ? t.ldg(dg.row, v) : t.ld(dg.row, v);
  const eid_t end = use_ldg ? t.ldg(dg.row, v + 1) : t.ld(dg.row, v + 1);
  const color_t cv = t.ld(colors, v);
  t.compute(2);
  for (eid_t e = begin; e < end; ++e) {
    const vid_t w = use_ldg ? t.ldg(dg.col, e) : t.ld(dg.col, e);
    const color_t cw = t.ld(colors, w);
    t.compute(3);
    if (cv != cw) continue;
    const vid_t global_w = use_ldg ? t.ldg(l2g, w) : t.ld(l2g, w);
    t.compute(1);
    if (global_v < global_w) return true;
  }
  return false;
}

}  // namespace

MultiDevResult multidev_color(const graph::CsrGraph& g, const MultiDevOptions& opts) {
  support::Timer wall;
  SPECKLE_CHECK(opts.num_devices >= 1, "multidev_color needs at least one device");
  SPECKLE_CHECK(opts.num_devices == 1 || opts.block_size % 32 == 0,
                "multi-device warp-centric kernels need a warp-multiple block");
  const std::uint32_t parts = opts.num_devices;

  MultiDevResult result;
  const graph::Partition part =
      graph::make_partition(g, parts, opts.partitioner, opts.seed);
  result.cut_edges = part.cut_edges;

  // --- bring up the fleet ---------------------------------------------------
  std::vector<Node> nodes(parts);
  for (std::uint32_t k = 0; k < parts; ++k) {
    const graph::Shard& shard = part.shards[k];
    Node& node = nodes[k];
    const std::string prefix = "d" + std::to_string(k) + ".";
    node.dev = std::make_unique<simt::Device>(opts.device);
    simt::Device& dev = *node.dev;

    const vid_t num_local = shard.num_local();
    node.dg.num_vertices = num_local;
    node.dg.row = dev.alloc<eid_t>(shard.local.num_vertices() + 1, prefix + "row");
    node.dg.col = dev.alloc<vid_t>(shard.local.num_edges(), prefix + "col");
    node.dg.row.copy_from(shard.local.row_offsets());
    node.dg.col.copy_from(shard.local.col_indices());

    node.colors = dev.alloc<std::uint32_t>(num_local, prefix + "colors");
    node.colors.fill(kUncolored);
    node.l2g = dev.alloc<vid_t>(num_local, prefix + "l2g");
    for (vid_t i = 0; i < shard.num_owned(); ++i) node.l2g[i] = shard.owned[i];
    for (vid_t i = 0; i < shard.num_ghosts(); ++i) {
      node.l2g[shard.num_owned() + i] = shard.ghosts[i];
    }
    // Static deferral priority, identical for a vertex and all its ghost
    // copies: (global degree, seed-salted id hash). Uploaded once with the
    // topology (uncharged, like l2g).
    node.prio = dev.alloc<std::uint64_t>(num_local, prefix + "prio");
    for (vid_t i = 0; i < num_local; ++i) {
      const vid_t global_v = node.l2g[i];
      node.prio[i] =
          (static_cast<std::uint64_t>(g.degree(global_v)) << 32) |
          (support::mix64(opts.seed ^
                          (0xc2b2ae3d27d4eb4fULL * (global_v + 1ULL))) &
           0xffffffffULL);
    }

    const std::size_t capacity = std::max<std::size_t>(shard.num_owned(), 1);
    node.list_a = std::make_unique<simt::Worklist>(dev, capacity, prefix + "list_a");
    node.list_b = std::make_unique<simt::Worklist>(dev, capacity, prefix + "list_b");
    node.w_in = node.list_a.get();
    node.w_out = node.list_b.get();
    node.w_in->fill_iota(shard.num_owned());  // W_in <- owned(V_k)
    if (parts > 1) {
      const std::size_t pend_cap = std::max<std::size_t>(shard.num_boundary, 1);
      node.pend_a = std::make_unique<simt::Worklist>(dev, pend_cap, prefix + "pend_a");
      node.pend_b = std::make_unique<simt::Worklist>(dev, pend_cap, prefix + "pend_b");
      node.pend_in = node.pend_a.get();
      node.pend_out = node.pend_b.get();
    }
  }

  // Exchange plan: for each owned vertex, where do its ghost copies live?
  // subscribers[k][local] lists (peer device, peer color slot) pairs; built
  // once from the partition, iterated every round.
  struct Subscriber {
    std::uint32_t peer;
    vid_t slot;
  };
  std::vector<std::vector<std::vector<Subscriber>>> subscribers(parts);
  for (std::uint32_t k = 0; k < parts; ++k) {
    subscribers[k].resize(part.shards[k].num_owned());
  }
  for (std::uint32_t p = 0; p < parts; ++p) {
    const graph::Shard& shard = part.shards[p];
    for (vid_t gi = 0; gi < shard.num_ghosts(); ++gi) {
      const vid_t global_v = shard.ghosts[gi];
      const std::uint32_t owner = part.owner[global_v];
      subscribers[owner][part.local_index[global_v]].push_back(
          {p, static_cast<vid_t>(shard.num_owned() + gi)});
    }
  }

  // Scratch reused across rounds: bytes queued on each directed peer link.
  std::vector<std::uint64_t> link_bytes(
      static_cast<std::size_t>(parts) * parts, 0);
  // Async-exchange schedule state, in absolute fleet cycles (comparable
  // across devices because all timelines meet at the round barriers).
  // Each device has TWO copy engines, one per direction (the K20c ships
  // two async copy engines): a link transfer occupies the source's OUT
  // engine and the destination's IN engine, so a device's outbound
  // transfers serialize among themselves and its inbound transfers among
  // themselves, while send/receive and disjoint pairs overlap.
  // xfer_in_done[k]: completion of the latest INBOUND transfer of device k
  // this batch — the point the NEXT round's ghost consumers (cross-cut
  // scan, boundary speculation) may run. Outbound transfers need no
  // completion tracking: the payload is staged at ship time, so the DMA
  // never reads live color memory, only the engine serialization
  // (dma_out_free) persists.
  std::vector<std::uint64_t> dma_out_free(parts, 0);
  std::vector<std::uint64_t> dma_in_free(parts, 0);
  std::vector<std::uint64_t> xfer_in_done(parts, 0);
  std::vector<std::uint64_t> compute_ready(parts, 0);

  // --- lockstep SGR rounds --------------------------------------------------
  auto any_live = [&nodes] {
    return std::any_of(nodes.begin(), nodes.end(), [](const Node& n) {
      return !n.w_in->empty() ||
             (n.pend_in != nullptr && !n.pend_in->empty());
    });
  };
  // Write `color` into every ghost copy of device k's owned vertex v and
  // queue the record on the peer links. The payload is a DELTA: a ghost
  // copy that already holds `color` ships nothing (a deferred vertex whose
  // ghosts already read kUncolored, a loser retracted twice in a row).
  // Host-side writes through Buffer::operator[] mark the sanitizer's
  // shadow-init map, so the next kernel's ghost reads are san-clean.
  // A device with no remaining work is DEAD: by ship time its cross-cut
  // scan has already run (pend_in is spent), so if both its worklist and
  // its fresh loser list are empty, no kernel of its ever runs again and
  // nothing ever reads its ghost slots (the gather takes owner colors
  // only). Its peers stop shipping updates to it — the tail rounds, where
  // most of the fleet is drained, then carry only the links that matter.
  auto ship = [&](std::uint32_t k, std::uint32_t v, color_t color) {
    for (const Subscriber& s : subscribers[k][v]) {
      if (nodes[s.peer].w_in->empty() && nodes[s.peer].w_out->empty()) continue;
      if (nodes[s.peer].colors[s.slot] == color) continue;
      nodes[s.peer].colors[s.slot] = color;
      link_bytes[static_cast<std::size_t>(k) * parts + s.peer] +=
          kExchangeRecordBytes;
      ++nodes[k].sent_colors;
      ++nodes[s.peer].recv_colors;
      ++result.exchanged_colors;
    }
  };
  // Schedule every queued link as an asynchronous transfer and clear the
  // queue. A transfer starts when the source's OUT engine and the
  // destination's IN engine are free AND
  // both endpoints' compute has produced/consumed the slots it touches
  // (compute_ready: the source wrote the payload, the destination stopped
  // reading the ghost slots it overwrites); links are walked in (src, dst)
  // order, so the schedule is deterministic. Completion times land in
  // xfer_in_done; the caller decides where each device waits (sync_to) —
  // that wait, not the transfer itself, is what can extend an SM timeline.
  auto schedule_links = [&](prof::ExchangeRound& round_stats) {
    std::fill(xfer_in_done.begin(), xfer_in_done.end(), 0);
    for (std::uint32_t k = 0; k < parts; ++k) {
      compute_ready[k] = nodes[k].dev->timeline_cycles();
    }
    for (std::uint32_t src = 0; src < parts; ++src) {
      for (std::uint32_t dst = 0; dst < parts; ++dst) {
        const std::uint64_t bytes =
            link_bytes[static_cast<std::size_t>(src) * parts + dst];
        if (bytes == 0) continue;
        const std::uint64_t cycles = simt::d2d_transfer_cycles(opts.device, bytes);
        const std::uint64_t start =
            std::max({dma_out_free[src], dma_in_free[dst], compute_ready[src],
                      compute_ready[dst]});
        const std::uint64_t done = start + cycles;
        dma_out_free[src] = dma_in_free[dst] = done;
        xfer_in_done[dst] = std::max(xfer_in_done[dst], done);
        nodes[src].dev->copy_peer_async(bytes, start, cycles);
        nodes[dst].dev->copy_peer_async(bytes, start, cycles);
        // Static view of the flight (speckle::check): the destination's
        // ghost color slots are being overwritten until next round's
        // consume-point fence. copy_write is idempotent while the window
        // is open, so the per-link granularity collapses to one planned
        // copy per receiving device per round.
        nodes[dst].dev->plan_copy_write(
            nodes[dst].colors.base_addr(),
            static_cast<std::uint64_t>(part.shards[dst].num_owned()) *
                sizeof(std::uint32_t),
            nodes[dst].colors.byte_size(), "ghost-exchange");
        nodes[src].exchange_busy += cycles;
        nodes[dst].exchange_busy += cycles;
        round_stats.batches += 2;
        round_stats.bytes += 2 * bytes;
        round_stats.cycles += 2 * cycles;
      }
    }
    std::fill(link_bytes.begin(), link_bytes.end(), 0);
  };

  while (any_live()) {
    SPECKLE_CHECK(result.rounds < opts.max_rounds,
                  "multidev_color exceeded max_rounds");
    ++result.rounds;
    prof::ExchangeRound round_stats;
    round_stats.round = result.rounds;

    // Wait for the PREVIOUS round's inbound exchange where its data is
    // first consumed: this round's cross-cut conflict scan and boundary
    // speculation both read ghost slots. The payload therefore has the
    // whole previous back half of the round — interior speculation, the
    // local conflict scan, the worklist readbacks — to fly in; the gap a
    // device still waits here is the stall the overlap failed to hide,
    // charged back to the round that scheduled the exchange.
    for (std::uint32_t k = 0; k < parts; ++k) {
      const std::uint64_t now = nodes[k].dev->timeline_cycles();
      if (xfer_in_done[k] > now) {
        const std::uint64_t stall = xfer_in_done[k] - now;
        nodes[k].exchange_stall += stall;
        if (!result.exchange_rounds.empty()) {
          prof::ExchangeRound& prev = result.exchange_rounds.back();
          prev.stall_cycles += stall;
          prev.hidden_cycles = prev.cycles > prev.stall_cycles
                                   ? prev.cycles - prev.stall_cycles
                                   : 0;
        }
        nodes[k].dev->sync_to(xfer_in_done[k]);
      }
    }
    // The consume point: everything from here on may read ghost slots
    // again, so the planned copy windows retire (the checker's view of the
    // sync_to above; a no-op when DeviceConfig::check is off).
    for (Node& node : nodes) node.dev->plan_copy_fence();
    if (opts.verify_ghosts && parts > 1) {
      // Every ghost slot a device may still read must now mirror its
      // owner's color (exchange soundness — the invariant the cross-cut
      // conflict scan and the deferral test rely on). Devices with no
      // remaining work are exempt: their kernels never run again, so
      // their ghost slots stop receiving updates by design.
      for (std::uint32_t p = 0; p < parts; ++p) {
        if (nodes[p].w_in->empty() && nodes[p].pend_in->empty()) continue;
        const graph::Shard& shard = part.shards[p];
        for (vid_t gi = 0; gi < shard.num_ghosts(); ++gi) {
          const vid_t global_v = shard.ghosts[gi];
          const Node& owner = nodes[part.owner[global_v]];
          SPECKLE_CHECK(nodes[p].colors[shard.num_owned() + gi] ==
                            owner.colors[part.local_index[global_v]],
                        "ghost color out of sync after exchange");
        }
      }
      ++result.ghost_rounds_verified;
    }

    // With P > 1 the fleet loses the single device's implicit sweep order
    // (serial racy blocks color in ascending id, which on the R-MAT graphs
    // doubles as a largest-degree-first order — their low ids are the
    // hubs). Recover the bias explicitly: order every worklist by
    // descending degree (id tiebreak) so the sweep colors hubs fleet-wide
    // before leaves, then pull the BOUNDARY vertices to the front (stable,
    // so the degree order survives within each class): the boundary slice
    // launches first and its exchange rides out while the interior slice
    // colors. Host-side and deterministic; skipped at P=1 to stay
    // bit-identical with data_color's id-order sweep.
    std::vector<std::uint32_t> num_boundary(parts, 0);
    if (parts > 1) {
      for (std::uint32_t k = 0; k < parts; ++k) {
        const graph::Shard& shard = part.shards[k];
        const graph::CsrGraph& local = shard.local;
        std::span<std::uint32_t> items =
            nodes[k].w_in->items().host().subspan(0, nodes[k].w_in->size());
        std::sort(items.begin(), items.end(),
                  [&local](std::uint32_t a, std::uint32_t b) {
                    const vid_t da = local.degree(a);
                    const vid_t db = local.degree(b);
                    return da != db ? da > db : a < b;
                  });
        const auto mid = std::stable_partition(
            items.begin(), items.end(),
            [&shard](std::uint32_t v) { return shard.is_boundary(v); });
        num_boundary[k] = static_cast<std::uint32_t>(mid - items.begin());
      }
    }
    for (std::uint32_t k = 0; k < parts; ++k) {
      if (!nodes[k].w_in->empty() ||
          (nodes[k].pend_in != nullptr && !nodes[k].pend_in->empty())) {
        ++nodes[k].rounds;
      }
    }

    // Phase 1 — boundary speculation (Algorithm 5 lines 4-10 against the
    // local view: owned colors + ghost copies), one racy launch over the
    // boundary slice. The P>1 kernels are WARP-centric (one worklist item
    // per warp, the adjacency strided across the 32 lanes, data_warp_color
    // style): the worklists are degree-sorted and hub-heavy, and a
    // thread-centric scan would serialize a hub's whole row into one
    // lane's dependent-load chain — a single 200-degree vertex then costs
    // more than the rest of the round combined, every round it re-enters.
    //
    // Boundary vertices add a largest-degree-first deferral (the
    // Jones-Plassmann idea restricted to the cut): when v sees an
    // UNCOLORED ghost neighbor of higher static priority, that neighbor is
    // about to speculate on its own device (an uncolored ghost slot means
    // its owner is still recoloring), so coloring v now would race blind
    // across the cut. v stores kUncolored instead (resetting any stale
    // loser color, which keeps its remote ghost copies consistent), the
    // detect pass re-enqueues it, and next round it sees the winner's
    // color through the exchange. Priority is (degree, id-hash): hubs
    // color before leaves, preserving the first-fit quality of the single
    // device's hub-first sweep, and the hash tie-break decorrelates
    // same-degree chains from the partition so every device keeps a share
    // of each round's active set. Cross-device conflicts between
    // same-round speculators become impossible on ghost edges where both
    // sides are visibly uncolored; only stale-color edges remain. The
    // deferral check rides the first-fit lane scan, so each neighbor is
    // loaded once. At P=1 the boundary set is empty and the thread-centric
    // launch below covers the whole worklist, bit-identical with the
    // single-device scheme.
    const auto launch_slice = [&](std::uint32_t k, std::uint32_t begin,
                                  std::uint32_t end, bool defer,
                                  const char* name) {
      if (begin >= end) return;
      Node& node = nodes[k];
      const vid_t num_owned = part.shards[k].num_owned();
      const std::uint32_t items = end - begin;
      const std::uint32_t warps_per_block = opts.block_size / 32;
      // Three scratch words per thread: forbidden-mask lo/hi + defer flag.
      simt::LaunchConfig cfg{(items + warps_per_block - 1) / warps_per_block,
                             opts.block_size, /*regs_per_thread=*/37,
                             /*smem_bytes_per_block=*/opts.block_size * 12};
      cfg.racy_visibility = true;  // speculation feeds on st_racy races
      const std::vector<simt::Kernel> phases = {
          // Phase A: every lane strides the warp's adjacency, building a
          // partial 64-color mask and a partial defer vote in scratchpad.
          [&, begin, items, defer, num_owned, warps_per_block](simt::Thread& t) {
            const std::uint32_t widx =
                t.block() * warps_per_block + t.warp_in_block();
            const std::uint32_t slot = t.thread_in_block() * 3;
            if (widx >= items) {
              t.shared_st(slot, 0);
              t.shared_st(slot + 1, 0);
              t.shared_st(slot + 2, 0);
              return;
            }
            // All lanes load the same item/offset words: one broadcast
            // transaction per warp, as on real hardware.
            const vid_t v = t.ld(node.w_in->items(), begin + widx);
            const eid_t row_begin =
                opts.use_ldg ? t.ldg(node.dg.row, v) : t.ld(node.dg.row, v);
            const eid_t row_end = opts.use_ldg ? t.ldg(node.dg.row, v + 1)
                                               : t.ld(node.dg.row, v + 1);
            std::uint64_t pv = 0;
            if (defer) pv = opts.use_ldg ? t.ldg(node.prio, v) : t.ld(node.prio, v);
            t.compute(3);
            std::uint64_t mask = 0;
            std::uint32_t yield = 0;
            for (eid_t e = row_begin + t.lane(); e < row_end; e += 32) {
              const vid_t w =
                  opts.use_ldg ? t.ldg(node.dg.col, e) : t.ld(node.dg.col, e);
              const color_t cw = t.ld(node.colors, w);
              if (defer && w >= num_owned && cw == kUncolored) {
                const std::uint64_t pw =
                    opts.use_ldg ? t.ldg(node.prio, w) : t.ld(node.prio, w);
                t.compute(1);
                if (pw > pv) yield = 1;  // the bigger hub goes first
              }
              if (cw >= 1 && cw < 65) mask |= 1ULL << (cw - 1);
              t.compute(3);
            }
            t.shared_st(slot, static_cast<std::uint32_t>(mask));
            t.shared_st(slot + 1, static_cast<std::uint32_t>(mask >> 32));
            t.shared_st(slot + 2, yield);
          },
          // Phase B (after the block barrier): lane 0 folds the 32 partial
          // masks/votes and speculatively commits the first-fit color — or
          // kUncolored when any lane voted to defer.
          [&, begin, items, warps_per_block](simt::Thread& t) {
            if (t.lane() != 0) return;
            const std::uint32_t widx =
                t.block() * warps_per_block + t.warp_in_block();
            if (widx >= items) return;
            const vid_t v = t.ld(node.w_in->items(), begin + widx);
            std::uint64_t forbidden = 0;
            std::uint32_t yield = 0;
            const std::uint32_t warp_base = t.warp_in_block() * 32;
            for (std::uint32_t l = 0; l < 32; ++l) {
              const std::uint64_t lo = t.shared_ld((warp_base + l) * 3);
              const std::uint64_t hi = t.shared_ld((warp_base + l) * 3 + 1);
              yield |= t.shared_ld((warp_base + l) * 3 + 2);
              forbidden |= lo | (hi << 32);
            }
            t.compute(32);
            color_t c;
            if (yield != 0) {
              c = kUncolored;
            } else if (forbidden != ~0ULL) {
              color_t offset = 0;
              while (forbidden & (1ULL << offset)) ++offset;
              c = 1 + offset;
              t.compute(2);
            } else {
              const eid_t row_begin =
                  opts.use_ldg ? t.ldg(node.dg.row, v) : t.ld(node.dg.row, v);
              const eid_t row_end = opts.use_ldg ? t.ldg(node.dg.row, v + 1)
                                                 : t.ld(node.dg.row, v + 1);
              c = lane0_wide_first_fit(t, node.dg, node.colors, row_begin,
                                       row_end, opts.use_ldg);
            }
            t.st_racy(node.colors, v, c);
          },
      };
      // Declared dataflow: the boundary slice reads ghost color slots (its
      // vertices sit on the cut), while the interior slice provably stays
      // inside the owned prefix — the static half of the proof that phase 3
      // may overlap the in-flight ghost exchange (a full-extent declaration
      // there would trip the checker's kGhostTrespass rule).
      check::KernelSpec spec = coloring::graph_spec(node.dg, opts.use_ldg);
      spec.reads(node.w_in->items(), begin, end);
      if (defer) {
        if (opts.use_ldg) {
          spec.ldg(node.prio);
        } else {
          spec.reads(node.prio);
        }
      }
      if (begin >= num_boundary[k]) {
        spec.reads(node.colors, 0, num_owned);
      } else {
        spec.reads(node.colors);
      }
      spec.racy(node.colors, 0, num_owned);
      node.dev->launch_phased(cfg, "d" + std::to_string(k) + name, spec, phases);
    };
    // Phase 0 (P>1) — reset the out-lists (one fused 8-byte tail memset)
    // and resolve the PREVIOUS round's cross-cut conflicts: the boundary
    // winners parked on pend_in are re-checked against the ghost colors
    // that just landed, with the same global-id tie-break as the local
    // scan. Both endpoints of a cut edge run this test on identical data —
    // each holds the other's previous-round color by now — so exactly the
    // lower-global-id side of a conflict re-enters. Losers push straight
    // into w_out and recolor next round; their (consistent) stale colors
    // stand until then, exactly like local losers'.
    if (parts > 1) {
      for (std::uint32_t k = 0; k < parts; ++k) {
        Node& node = nodes[k];
        if (node.w_in->empty() && node.pend_in->empty()) {
          // Freshly-drained device: the final swap left last round's tail
          // on what is now w_out. Reset it host-side (uncharged — no
          // kernel of this device ever runs again) so ship()'s dead-peer
          // test sees the truth.
          node.w_out->clear();
          continue;
        }
        node.w_out->clear();
        node.pend_out->clear();
        node.dev->copy_to_device(2 * sizeof(std::uint32_t));
      }
      for (std::uint32_t k = 0; k < parts; ++k) {
        Node& node = nodes[k];
        const std::uint32_t count = node.pend_in->size();
        if (count == 0) continue;
        const vid_t num_owned = part.shards[k].num_owned();
        const std::uint32_t warps_per_block = opts.block_size / 32;
        const simt::LaunchConfig cfg{
            (count + warps_per_block - 1) / warps_per_block, opts.block_size,
            /*regs_per_thread=*/37,
            /*smem_bytes_per_block=*/opts.block_size * 4};
        const std::vector<simt::Kernel> phases = {
            // Phase A: lanes stride the adjacency, checking GHOST
            // neighbors only — the local half was scanned last round.
            [&, count, num_owned, warps_per_block](simt::Thread& t) {
              const std::uint32_t widx =
                  t.block() * warps_per_block + t.warp_in_block();
              const std::uint32_t slot = t.thread_in_block();
              if (widx >= count) {
                t.shared_st(slot, 0);
                return;
              }
              const vid_t v = t.ld(node.pend_in->items(), widx);
              const color_t cv = t.ld(node.colors, v);
              const eid_t row_begin =
                  opts.use_ldg ? t.ldg(node.dg.row, v) : t.ld(node.dg.row, v);
              const eid_t row_end = opts.use_ldg ? t.ldg(node.dg.row, v + 1)
                                                 : t.ld(node.dg.row, v + 1);
              const vid_t global_v =
                  opts.use_ldg ? t.ldg(node.l2g, v) : t.ld(node.l2g, v);
              t.compute(3);
              std::uint32_t conflict = 0;
              for (eid_t e = row_begin + t.lane(); e < row_end; e += 32) {
                const vid_t w =
                    opts.use_ldg ? t.ldg(node.dg.col, e) : t.ld(node.dg.col, e);
                t.compute(2);
                if (w < num_owned) continue;  // ghost neighbors only
                const color_t cw = t.ld(node.colors, w);
                t.compute(1);
                if (cw != cv) continue;
                const vid_t global_w =
                    opts.use_ldg ? t.ldg(node.l2g, w) : t.ld(node.l2g, w);
                t.compute(1);
                if (global_v < global_w) conflict = 1;
              }
              t.shared_st(slot, conflict);
            },
            // Phase B: lane 0 folds the votes and pushes the loser.
            [&, count, warps_per_block](simt::Thread& t) {
              if (t.lane() != 0) return;
              const std::uint32_t widx =
                  t.block() * warps_per_block + t.warp_in_block();
              if (widx >= count) return;
              std::uint32_t reenter = 0;
              const std::uint32_t warp_base = t.warp_in_block() * 32;
              for (std::uint32_t l = 0; l < 32; ++l) {
                reenter |= t.shared_ld(warp_base + l);
              }
              t.compute(32);
              if (reenter == 0) return;
              const vid_t v = t.ld(node.pend_in->items(), widx);
              if (opts.scan_push) {
                t.scan_push(*node.w_out, v);
              } else {
                const std::uint32_t slot =
                    t.atomic_add(node.w_out->tail(), 0, 1U);
                t.st(node.w_out->items(), slot, v);
              }
            },
        };
        // Reads ghost slots, legally: the cross-cut scan runs after the
        // consume-point fence, so no copy window is open over colors here.
        check::KernelSpec spec = coloring::graph_spec(node.dg, opts.use_ldg);
        spec.reads(node.pend_in->items(), 0, count);
        spec.reads(node.colors);
        if (opts.use_ldg) {
          spec.ldg(node.l2g);
        } else {
          spec.reads(node.l2g);
        }
        spec.pushes(*node.w_out, count);
        node.dev->launch_phased(cfg, "d" + std::to_string(k) + ".md_xdetect",
                                spec, phases);
      }
    }

    const bool defer_this_round = result.rounds <= opts.defer_rounds;
    for (std::uint32_t k = 0; k < parts; ++k) {
      launch_slice(k, 0, num_boundary[k], defer_this_round, ".md_color_bnd");
    }

    // Phase 2 — ghost exchange, folded host-side in (source device,
    // worklist position) order and scheduled as ONE coalesced async payload
    // per peer link. The fold happens "early" relative to the modeled
    // arrival, which is sound: the kernels that run before the receivers
    // wait on xfer_in_done are the interior launches (no ghost neighbors
    // to read) and the LOCAL conflict scan (skips ghost neighbors by
    // construction) — nothing consumes a ghost slot until next round.
    // The fold also models payload STAGING: the records are packed into
    // per-link staging buffers at ship time, so the outbound DMA never
    // reads live color memory and the sender's next round needn't wait
    // for its own outbound transfers to drain.
    for (std::uint32_t k = 0; k < parts; ++k) {
      const auto items = nodes[k].w_in->host_items();
      for (std::uint32_t idx = 0; idx < num_boundary[k]; ++idx) {
        const std::uint32_t v = items[idx];
        if (subscribers[k][v].empty()) continue;
        ship(k, v, nodes[k].colors[v]);
      }
    }
    schedule_links(round_stats);

    // Phase 3 — interior speculation, overlapping the in-flight exchange.
    // At P=1 this is the round's single full-worklist launch: the classic
    // THREAD-centric data-driven kernel, bit-identical with the
    // single-device scheme (same trace, same kernel name).
    if (parts > 1) {
      for (std::uint32_t k = 0; k < parts; ++k) {
        launch_slice(k, num_boundary[k], nodes[k].w_in->size(), false,
                     ".md_color_int");
      }
    } else if (!nodes[0].w_in->empty()) {
      Node& node = nodes[0];
      const std::uint32_t items = node.w_in->size();
      simt::LaunchConfig racy_cfg{
          (items + opts.block_size - 1) / opts.block_size, opts.block_size};
      racy_cfg.racy_visibility = true;  // speculation feeds on st_racy races
      const check::KernelSpec spec = coloring::graph_spec(node.dg, opts.use_ldg)
                                         .reads(node.w_in->items(), 0, items)
                                         .reads(node.colors)
                                         .racy(node.colors);
      node.dev->launch(racy_cfg, "d0.md_color", spec, [&, items](simt::Thread& t) {
        const auto idx = t.global_id();
        if (idx >= items) return;
        t.compute(2);
        const vid_t v = t.ld(node.w_in->items(), idx);
        const color_t c = device_first_fit(t, node.dg, node.colors, v,
                                           opts.use_ldg);
        t.st_racy(node.colors, v, c);
      });
    }

    // Phase 4 — LOCAL conflict detection, still overlapping the in-flight
    // exchange: at P>1 the scan covers OWNED neighbors only (ghost edges
    // are judged by next round's cross-cut scan, once the payload has
    // landed), so running it before the exchange arrives is sound — and
    // the exchange gains the detect kernel and the worklist readbacks as
    // flight time on top of the interior launch. Losers (a same-colored
    // owned neighbor with a larger global id, or a deferred vertex) compact
    // into w_out behind the cross-cut losers already there; boundary
    // winners park on pend_out for next round's cross check. The global-id
    // tie-break matches the cross scan's, so the two halves of the split
    // agree on who recolors. P=1 keeps the whole-adjacency thread-centric
    // kernel, bit-identical with the single-device scheme.
    for (std::uint32_t k = 0; k < parts; ++k) {
      Node& node = nodes[k];
      const std::uint32_t count = node.w_in->size();
      const std::string name = "d" + std::to_string(k) + ".md_detect";
      if (parts == 1) {
        if (count == 0) continue;
        node.w_out->clear();
        node.dev->copy_to_device(sizeof(std::uint32_t));  // memset of the out tail
        const simt::LaunchConfig cfg{
            (count + opts.block_size - 1) / opts.block_size, opts.block_size};
        check::KernelSpec spec = coloring::graph_spec(node.dg, opts.use_ldg)
                                     .reads(node.w_in->items(), 0, count)
                                     .reads(node.colors)
                                     .pushes(*node.w_out, count);
        if (opts.use_ldg) {
          spec.ldg(node.l2g);
        } else {
          spec.reads(node.l2g);
        }
        node.dev->launch(cfg, name, spec, [&, count](simt::Thread& t) {
          const auto idx = t.global_id();
          if (idx >= count) return;
          t.compute(2);
          const vid_t v = t.ld(node.w_in->items(), idx);
          const vid_t global_v =
              opts.use_ldg ? t.ldg(node.l2g, v) : t.ld(node.l2g, v);
          if (!device_conflict_global(t, node.dg, node.colors, node.l2g, v,
                                      global_v, opts.use_ldg)) {
            return;
          }
          if (opts.scan_push) {
            t.scan_push(*node.w_out, v);
          } else {
            const std::uint32_t slot = t.atomic_add(node.w_out->tail(), 0, 1U);
            t.st(node.w_out->items(), slot, v);
          }
        });
        node.dev->copy_to_host(sizeof(std::uint32_t));  // read |W_out|
        std::swap(node.w_in, node.w_out);
        continue;
      }
      const bool pend_live = !node.pend_in->empty();
      if (count == 0 && !pend_live) continue;
      if (count > 0) {
        const vid_t num_owned = part.shards[k].num_owned();
        const std::uint32_t nb = num_boundary[k];
        const std::uint32_t warps_per_block = opts.block_size / 32;
        const simt::LaunchConfig cfg{
            (count + warps_per_block - 1) / warps_per_block, opts.block_size,
            /*regs_per_thread=*/37,
            /*smem_bytes_per_block=*/opts.block_size * 4};
        const std::vector<simt::Kernel> phases = {
            // Phase A: lanes stride the adjacency over OWNED neighbors;
            // each leaves a partial re-enter vote (conflict seen, or the
            // vertex deferred) in its scratchpad word.
            [&, count, num_owned, warps_per_block](simt::Thread& t) {
              const std::uint32_t widx =
                  t.block() * warps_per_block + t.warp_in_block();
              const std::uint32_t slot = t.thread_in_block();
              if (widx >= count) {
                t.shared_st(slot, 0);
                return;
              }
              const vid_t v = t.ld(node.w_in->items(), widx);
              const color_t cv = t.ld(node.colors, v);
              t.compute(2);
              if (cv == kUncolored) {  // deferred: re-enter, nothing to scan
                t.shared_st(slot, 1);
                return;
              }
              const eid_t row_begin =
                  opts.use_ldg ? t.ldg(node.dg.row, v) : t.ld(node.dg.row, v);
              const eid_t row_end = opts.use_ldg ? t.ldg(node.dg.row, v + 1)
                                                 : t.ld(node.dg.row, v + 1);
              const vid_t global_v =
                  opts.use_ldg ? t.ldg(node.l2g, v) : t.ld(node.l2g, v);
              t.compute(2);
              std::uint32_t conflict = 0;
              for (eid_t e = row_begin + t.lane(); e < row_end; e += 32) {
                const vid_t w =
                    opts.use_ldg ? t.ldg(node.dg.col, e) : t.ld(node.dg.col, e);
                t.compute(2);
                if (w >= num_owned) continue;  // ghosts: cross-cut scan's job
                const color_t cw = t.ld(node.colors, w);
                t.compute(1);
                if (cw != cv) continue;
                const vid_t global_w =
                    opts.use_ldg ? t.ldg(node.l2g, w) : t.ld(node.l2g, w);
                t.compute(1);
                if (global_v < global_w) conflict = 1;
              }
              t.shared_st(slot, conflict);
            },
            // Phase B: lane 0 folds the votes; losers re-enter w_out,
            // boundary survivors park on pend_out for the cross check.
            [&, count, nb, warps_per_block](simt::Thread& t) {
              if (t.lane() != 0) return;
              const std::uint32_t widx =
                  t.block() * warps_per_block + t.warp_in_block();
              if (widx >= count) return;
              std::uint32_t reenter = 0;
              const std::uint32_t warp_base = t.warp_in_block() * 32;
              for (std::uint32_t l = 0; l < 32; ++l) {
                reenter |= t.shared_ld(warp_base + l);
              }
              t.compute(32);
              if (reenter == 0 && widx >= nb) return;  // interior winner
              const vid_t v = t.ld(node.w_in->items(), widx);
              simt::Worklist& dst = reenter != 0 ? *node.w_out : *node.pend_out;
              if (opts.scan_push) {
                t.scan_push(dst, v);
              } else {
                const std::uint32_t slot = t.atomic_add(dst.tail(), 0, 1U);
                t.st(dst.items(), slot, v);
              }
            },
        };
        // Owned-prefix declarations only: the local scan skips ghost
        // neighbors by construction, which is exactly what lets it run
        // while the exchange is in flight — and what the checker verifies
        // against the open copy window.
        check::KernelSpec spec = coloring::graph_spec(node.dg, opts.use_ldg);
        spec.reads(node.w_in->items(), 0, count);
        spec.reads(node.colors, 0, num_owned);
        if (opts.use_ldg) {
          spec.ldg(node.l2g);
        } else {
          spec.reads(node.l2g, 0, num_owned);
        }
        spec.pushes(*node.w_out, count).pushes(*node.pend_out, nb);
        node.dev->launch_phased(cfg, name, spec, phases);
        // Read back both out tails: the loser list and the pending list.
        node.dev->copy_to_host(2 * sizeof(std::uint32_t));
      } else {
        // Only the cross-cut scan ran here: read back its loser tail.
        node.dev->copy_to_host(sizeof(std::uint32_t));
      }
      std::swap(node.w_in, node.w_out);
      std::swap(node.pend_in, node.pend_out);
    }

    // Round barrier: next round's speculation starts in lockstep on the
    // slowest device's timeline. There is no retraction batch: a conflict
    // loser keeps its color both locally AND in its remote ghost copies
    // (the two views stay consistent, which the detect tie-break relies
    // on) until it reships from the next round's speculation — a deferring
    // loser resets to kUncolored and the delta exchange carries exactly
    // the copies that changed. One coalesced exchange per round, total.
    // The barrier covers COMPUTE only: the payload was staged at ship
    // time, so an outbound DMA still draining never reads live color
    // memory, and the inbound side is gated where it is consumed — the
    // xfer_in_done wait at the top of the next round.
    std::uint64_t barrier = 0;
    for (std::uint32_t k = 0; k < parts; ++k) {
      barrier = std::max(barrier, nodes[k].dev->timeline_cycles());
    }
    for (Node& node : nodes) {
      node.dev->sync_to(barrier);
    }
    round_stats.hidden_cycles =
        round_stats.cycles > round_stats.stall_cycles
            ? round_stats.cycles - round_stats.stall_cycles
            : 0;
    if (parts > 1) result.exchange_rounds.push_back(round_stats);
  }

  // --- gather ---------------------------------------------------------------
  result.coloring.assign(g.num_vertices(), kUncolored);
  for (std::uint32_t k = 0; k < parts; ++k) {
    const graph::Shard& shard = part.shards[k];
    std::span<const std::uint32_t> colors =
        std::as_const(nodes[k].colors).host();
    for (vid_t i = 0; i < shard.num_owned(); ++i) {
      result.coloring[shard.owned[i]] = colors[i];
    }
  }
  result.num_colors = coloring::count_colors(result.coloring);

  result.devices.reserve(parts);
  std::uint64_t makespan = 0;
  for (std::uint32_t k = 0; k < parts; ++k) {
    Node& node = nodes[k];
    const graph::Shard& shard = part.shards[k];
    DeviceBreakdown breakdown;
    breakdown.device = k;
    breakdown.owned = shard.num_owned();
    breakdown.ghosts = shard.num_ghosts();
    breakdown.boundary = shard.num_boundary;
    breakdown.cut_edges = shard.cut_edges;
    breakdown.rounds = node.rounds;
    breakdown.sent_colors = node.sent_colors;
    breakdown.recv_colors = node.recv_colors;
    breakdown.exchange_busy_cycles = node.exchange_busy;
    breakdown.exchange_stall_cycles = node.exchange_stall;
    breakdown.exchange_hidden_cycles =
        node.exchange_busy > node.exchange_stall
            ? node.exchange_busy - node.exchange_stall
            : 0;
    breakdown.report = node.dev->report();
    breakdown.san = node.dev->san_report();
    breakdown.prof = node.dev->prof_report();
    breakdown.check = node.dev->check_report();
    makespan = std::max(makespan, breakdown.report.total_cycles);

    // Fleet views: kernels concatenate in device order (names carry the
    // "d<k>." prefix), transfers sum, san/prof findings append.
    for (const simt::KernelStats& ks : breakdown.report.kernels) {
      result.fleet_report.kernels.push_back(ks);
    }
    const auto add_transfers = [](simt::TransferStats& into,
                                  const simt::TransferStats& from) {
      into.bytes += from.bytes;
      into.cycles += from.cycles;
      into.count += from.count;
    };
    add_transfers(result.fleet_report.h2d, breakdown.report.h2d);
    add_transfers(result.fleet_report.d2h, breakdown.report.d2h);
    add_transfers(result.fleet_report.d2d, breakdown.report.d2d);
    result.san.total += breakdown.san.total;
    for (const san::Finding& f : breakdown.san.findings) {
      result.san.findings.push_back(f);
    }
    for (const prof::LaunchProfile& lp : breakdown.prof.launches) {
      result.prof.launches.push_back(lp);
    }
    for (const prof::Transfer& tr : breakdown.prof.transfers) {
      result.prof.transfers.push_back(tr);
    }
    result.check.merge(breakdown.check);
    result.devices.push_back(std::move(breakdown));
  }
  // All timelines meet at the final barrier, so any device's total IS the
  // fleet makespan; take the max anyway for clarity.
  result.fleet_report.total_cycles = makespan;
  result.model_ms = opts.device.cycles_to_ms(makespan);
  std::uint64_t hidden_total = 0;
  for (const prof::ExchangeRound& er : result.exchange_rounds) {
    hidden_total += er.hidden_cycles;
  }
  result.hidden_ms = opts.device.cycles_to_ms(hidden_total);
  if (opts.device.profile) {
    result.prof.exchange_rounds = result.exchange_rounds;
  }
  result.wall_ms = wall.milliseconds();
  return result;
}

}  // namespace speckle::multidev
