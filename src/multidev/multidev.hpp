#pragma once
/// \file multidev.hpp
/// Multi-device partitioned speculative-greedy coloring (`speckle::multidev`):
/// shard the CSR graph over P simulated GPUs and run the paper's data-driven
/// SGR rounds on every shard in lockstep, with a boundary-exchange step
/// between the speculative-color and conflict-detect kernels of each round.
///
/// The scheme is the distributed extension of Algorithm 5 (the recipe of
/// Boman et al. and of "Parallel Graph Coloring Algorithms for Distributed
/// GPU Environments", arXiv:2107.00075), with communication hidden behind
/// computation the way those papers prescribe: the round's single
/// coalesced ghost exchange is scheduled right after boundary speculation
/// and nothing consumes it until the NEXT round, so it has the entire
/// back half of the round to fly. Each lockstep round runs:
///
///   0. cross-cut conflict scan (P>1): last round's boundary winners,
///      parked on a pending list, are re-checked against the ghost colors
///      that just landed — ghost edges ONLY, with the global-id tie-break
///      (the lower global id loses and re-enters its owner's worklist).
///      Both endpoints of a cut edge judge the identical exchanged data,
///      so exactly one side recolors. This is the only ghost consumer, so
///      it is where a device waits (Device::sync_to) for its inbound
///      payload — the gap it actually waits is the stall the overlap
///      failed to hide;
///   1. boundary speculation: every device first-fit colors the BOUNDARY
///      slice of its worklist (owned vertices with a cross-partition
///      neighbor, pulled to the front of a degree-sorted sweep) against
///      its local view (owned colors + ghost copies). Optionally the
///      first `defer_rounds` rounds yield to higher-priority uncolored
///      ghost neighbors (hub-first deferral, see MultiDevOptions);
///   2. ghost exchange: the fresh boundary colors are folded into ONE
///      delta payload per peer link (only changed ghost copies ship,
///      dead peers are skipped) and STAGED — packed into per-link payload
///      buffers, so the DMA never reads live color memory — then shipped
///      as asynchronous peer D2D transfers (Device::copy_peer_async).
///      Each device has two copy engines (one per direction, as on the
///      K20c): a link occupies the source's OUT and destination's IN
///      engine, transfers serialize per engine in (src, dst) order;
///   3. interior speculation, overlapping the in-flight exchange —
///      interior vertices have no ghost neighbors, so the overlap is
///      sound by construction;
///   4. LOCAL conflict scan over the worklist: owned neighbors only
///      (ghost edges are phase 0's job next round), same global-id
///      tie-break. Losers and deferred vertices compact into the owner's
///      out-worklist; boundary survivors park on the pending list for
///      phase 0. Running it before the payload lands keeps the exchange
///      entirely off the critical path — a round's compute therefore
///      costs max(boundary + interior + local detect, exchange), and the
///      round barrier (lockstep) covers compute only.
///
/// There is no retraction traffic: a conflict loser keeps its stale color
/// locally AND in its remote ghost copies (the two views stay consistent,
/// which the tie-break relies on) until its recolor ships next round.
/// At P=1 every phase degenerates to the classic single-device data-driven
/// round (thread-centric kernels, same trace) — bit-identical with D-ldg.
/// At P>1 the kernels are WARP-centric (one worklist item per warp, the
/// adjacency strided across lanes, data_warp_color style): the worklists
/// are degree-sorted and hub-heavy, and a thread-centric scan would
/// serialize each hub row into one lane's dependent-load chain.
///
/// Determinism: devices execute their kernels one after another on the
/// host, exchanges are folded in (source device, worklist position) order,
/// link transfers are scheduled in (src, dst) order, and device timelines
/// are aligned to the slowest device at each round barrier — so colors,
/// rounds, per-device reports and the fleet makespan are bit-identical at
/// every DeviceConfig::host_threads value, and with P devices the result
/// depends only on (graph, partition, options). Each shard gets its own
/// Device, so `speckle::san` findings and `speckle::prof` counters are
/// attributed per device via the "d<k>." buffer/kernel name prefixes.

#include <cstdint>
#include <vector>

#include "coloring/coloring.hpp"
#include "graph/csr_graph.hpp"
#include "graph/partition.hpp"
#include "prof/prof.hpp"
#include "simt/check.hpp"
#include "simt/config.hpp"
#include "simt/san.hpp"
#include "simt/stats.hpp"

namespace speckle::multidev {

struct MultiDevOptions {
  std::uint32_t num_devices = 1;
  graph::PartitionKind partitioner = graph::PartitionKind::kContiguous;
  std::uint32_t block_size = 128;
  bool use_ldg = false;     ///< route topology (and l2g) reads via the RO cache
  bool scan_push = true;    ///< prefix-sum worklist push (false: per-item atomics)
  std::uint32_t max_rounds = 100000;
  /// Boundary deferral window (opt-in quality knob): during the first
  /// `defer_rounds` rounds a boundary vertex yields to any
  /// higher-priority UNCOLORED ghost neighbor (hub-first,
  /// Jones-Plassmann style), which eliminates cross-device conflicts
  /// while the graph is dense with uncolored vertices. Each deferral
  /// round shaves a color or two off the skewed graphs but adds 1-2
  /// lockstep rounds of latency; with the split conflict scan the blind
  /// default already lands within ~9% of the single-device color count,
  /// so the window default is 0 and callers chasing the last colors turn
  /// it up (3 recovers the single-device count on rmat-g at P=4).
  std::uint32_t defer_rounds = 0;
  std::uint64_t seed = 0x5eed;  ///< hash partitioner seed; must be nonzero
  /// Per-device machine model; every device in the fleet is identical.
  simt::DeviceConfig device = simt::DeviceConfig::k20c();
  /// Host-side invariant check after every exchange: each ghost slot must
  /// equal its owner's current color. O(total ghosts) per round; used by
  /// the fuzz/property tests, off in production runs.
  bool verify_ghosts = false;
};

/// One device's share of a multi-device run.
struct DeviceBreakdown {
  std::uint32_t device = 0;
  graph::vid_t owned = 0;
  graph::vid_t ghosts = 0;
  graph::vid_t boundary = 0;        ///< owned vertices with a ghost neighbor
  std::uint64_t cut_edges = 0;      ///< owned→ghost CSR entries on this shard
  std::uint32_t rounds = 0;         ///< rounds this device had live work
  std::uint64_t sent_colors = 0;    ///< boundary colors shipped to peers
  std::uint64_t recv_colors = 0;    ///< ghost updates received from peers
  /// Overlap accounting: DMA-engine-busy cycles of this device's link
  /// transfers, the portion its SM timeline actually waited for
  /// (sync_to gaps), and the remainder the interior overlap hid.
  std::uint64_t exchange_busy_cycles = 0;
  std::uint64_t exchange_stall_cycles = 0;
  std::uint64_t exchange_hidden_cycles = 0;
  simt::DeviceReport report;        ///< kernels, transfers, timeline
  san::Report san;                  ///< per-device sanitizer findings
  prof::Report prof;                ///< per-device profile (when enabled)
  check::Report check;              ///< per-device launch-plan checker output
};

struct MultiDevResult {
  coloring::Coloring coloring;      ///< global vertex order
  coloring::color_t num_colors = 0;
  std::uint32_t rounds = 0;         ///< global lockstep rounds
  std::uint64_t cut_edges = 0;      ///< directed cut of the partition
  std::uint64_t exchanged_colors = 0;  ///< total ghost updates shipped
  std::uint32_t ghost_rounds_verified = 0;  ///< verify_ghosts passes run
  /// Per-round exchange batches (count, bytes, hidden/stall cycles), in
  /// round order; also copied into `prof.exchange_rounds` when profiling so
  /// the JSON export carries it. Empty at P=1.
  std::vector<prof::ExchangeRound> exchange_rounds;
  double model_ms = 0.0;  ///< fleet makespan (all timelines align at barriers)
  double hidden_ms = 0.0;  ///< exchange cycles the overlap hid, fleet total
  double wall_ms = 0.0;   ///< host wall clock of the whole simulation
  std::vector<DeviceBreakdown> devices;  ///< one entry per device, in order
  /// Fleet-level views: the kernel logs of every device concatenated in
  /// device order (kernel names carry the "d<k>." prefix), transfer totals
  /// summed, total_cycles = the makespan; san findings appended in device
  /// order; profiler launches/transfers appended in device order; checker
  /// reports merged in device order (launch plans concatenate).
  simt::DeviceReport fleet_report;
  san::Report san;
  prof::Report prof;
  check::Report check;
};

/// Color `g` on `opts.num_devices` simulated devices. Aborts on option
/// misuse (seed 0, zero devices); the caller verifies the coloring (the
/// runner does, and the tests use the shared oracle).
MultiDevResult multidev_color(const graph::CsrGraph& g, const MultiDevOptions& opts);

}  // namespace speckle::multidev
