#pragma once
/// \file multidev.hpp
/// Multi-device partitioned speculative-greedy coloring (`speckle::multidev`):
/// shard the CSR graph over P simulated GPUs and run the paper's data-driven
/// SGR rounds on every shard in lockstep, with a boundary-exchange step
/// between the speculative-color and conflict-detect kernels of each round.
///
/// The scheme is the distributed extension of Algorithm 5 (the recipe of
/// Boman et al. and of "Parallel Graph Coloring Algorithms for Distributed
/// GPU Environments", arXiv:2107.00075):
///
///   1. every device speculatively first-fit colors its worklist against
///      its local view (owned colors + ghost copies of cross-partition
///      neighbors);
///   2. at a global round barrier, the freshly written colors of boundary
///      vertices are shipped to every device that ghosts them — modeled as
///      peer D2D transfers (Device::copy_peer) charged to both endpoints;
///   3. every device then detects conflicts over its worklist using GLOBAL
///      vertex ids as the tie-break (the lower global id loses, on-device
///      and cross-device conflicts alike) and compacts the losers back into
///      its own worklist — a boundary vertex that loses a cross-device
///      conflict re-enters its owner's worklist, never a remote one.
///
/// Determinism: devices execute their kernels one after another on the
/// host, exchanges are folded in (source device, worklist position) order
/// at the round barrier, and device timelines are aligned to the slowest
/// device at each barrier — so colors, rounds, per-device reports and the
/// fleet makespan are bit-identical at every DeviceConfig::host_threads
/// value, and with P devices the result depends only on (graph, partition,
/// options). Each shard gets its own Device, so `speckle::san` findings and
/// `speckle::prof` counters are attributed per device via the "d<k>."
/// buffer/kernel name prefixes.

#include <cstdint>
#include <vector>

#include "coloring/coloring.hpp"
#include "graph/csr_graph.hpp"
#include "graph/partition.hpp"
#include "prof/prof.hpp"
#include "simt/config.hpp"
#include "simt/san.hpp"
#include "simt/stats.hpp"

namespace speckle::multidev {

struct MultiDevOptions {
  std::uint32_t num_devices = 1;
  graph::PartitionKind partitioner = graph::PartitionKind::kContiguous;
  std::uint32_t block_size = 128;
  bool use_ldg = false;     ///< route topology (and l2g) reads via the RO cache
  bool scan_push = true;    ///< prefix-sum worklist push (false: per-item atomics)
  std::uint32_t max_rounds = 100000;
  /// Each round's speculation is staged into up to this many sub-rounds
  /// with a ghost exchange after each, so later chunks see earlier chunks'
  /// picks ACROSS devices. Chunk sizes grow geometrically (~2x per stage):
  /// the worklists are sorted by descending degree at P>1, so the hubs —
  /// where cross-partition collisions concentrate and drive color
  /// inflation — are colored in tiny near-serial slices while the
  /// low-degree tail ships in bulk. A worklist of W items therefore uses
  /// about log2(W) stages; this field only caps that. Ignored at P=1 (one
  /// stage): a lone device has nothing to exchange, and one full launch
  /// per round keeps the scheme bit-identical with single-device D-ldg.
  std::uint32_t subrounds = 24;
  std::uint64_t seed = 0x5eed;  ///< hash partitioner seed; must be nonzero
  /// Per-device machine model; every device in the fleet is identical.
  simt::DeviceConfig device = simt::DeviceConfig::k20c();
  /// Host-side invariant check after every exchange: each ghost slot must
  /// equal its owner's current color. O(total ghosts) per round; used by
  /// the fuzz/property tests, off in production runs.
  bool verify_ghosts = false;
};

/// One device's share of a multi-device run.
struct DeviceBreakdown {
  std::uint32_t device = 0;
  graph::vid_t owned = 0;
  graph::vid_t ghosts = 0;
  std::uint64_t cut_edges = 0;      ///< owned→ghost CSR entries on this shard
  std::uint32_t rounds = 0;         ///< rounds this device had live work
  std::uint64_t sent_colors = 0;    ///< boundary colors shipped to peers
  std::uint64_t recv_colors = 0;    ///< ghost updates received from peers
  simt::DeviceReport report;        ///< kernels, transfers, timeline
  san::Report san;                  ///< per-device sanitizer findings
  prof::Report prof;                ///< per-device profile (when enabled)
};

struct MultiDevResult {
  coloring::Coloring coloring;      ///< global vertex order
  coloring::color_t num_colors = 0;
  std::uint32_t rounds = 0;         ///< global lockstep rounds
  std::uint64_t cut_edges = 0;      ///< directed cut of the partition
  std::uint64_t exchanged_colors = 0;  ///< total ghost updates shipped
  std::uint32_t ghost_rounds_verified = 0;  ///< verify_ghosts passes run
  double model_ms = 0.0;  ///< fleet makespan (all timelines align at barriers)
  double wall_ms = 0.0;   ///< host wall clock of the whole simulation
  std::vector<DeviceBreakdown> devices;  ///< one entry per device, in order
  /// Fleet-level views: the kernel logs of every device concatenated in
  /// device order (kernel names carry the "d<k>." prefix), transfer totals
  /// summed, total_cycles = the makespan; san findings appended in device
  /// order; profiler launches/transfers appended in device order.
  simt::DeviceReport fleet_report;
  san::Report san;
  prof::Report prof;
};

/// Color `g` on `opts.num_devices` simulated devices. Aborts on option
/// misuse (seed 0, zero devices); the caller verifies the coloring (the
/// runner does, and the tests use the shared oracle).
MultiDevResult multidev_color(const graph::CsrGraph& g, const MultiDevOptions& opts);

}  // namespace speckle::multidev
