/// \file export.cpp
/// Report renderings of the profiler: the `--profile` text report, the
/// BENCH_*.json-style machine-readable record, and the Chrome-trace
/// ("traceEvents") timeline for Perfetto / chrome://tracing.
///
/// Every rendering is a pure function of the Report, which is itself
/// bit-identical at every host thread count — so all three outputs are
/// byte-identical too, and the text report can be golden-diffed in CI.

#include <iomanip>
#include <sstream>

#include "prof/prof.hpp"

namespace speckle::prof {
namespace {

using simt::Stall;

constexpr std::size_t kStallCount = static_cast<std::size_t>(Stall::kCount);

/// Short column labels for the stall breakdown (the long names live in
/// simt::stall_name; the text report is column-oriented).
const char* stall_label(Stall s) {
  switch (s) {
    case Stall::kMemoryDependency: return "mem";
    case Stall::kExecutionDependency: return "exec";
    case Stall::kSynchronization: return "sync";
    case Stall::kMemoryThrottle: return "throttle";
    case Stall::kAtomic: return "atomic";
    case Stall::kIdle: return "idle";
    case Stall::kCount: break;
  }
  return "?";
}

std::string pct(double fraction) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1) << fraction * 100.0 << "%";
  return out.str();
}

std::string ratio(double value) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(2) << value;
  return out.str();
}

void format_counters(std::ostream& out, const LaunchProfile& lp,
                     const std::string& indent) {
  out << indent << "insts: exec=" << lp.warp_insts << " issued=" << lp.issued_insts
      << " divergent=" << lp.divergent_insts
      << " simd_eff=" << pct(lp.simd_efficiency()) << "\n";
  out << indent << "loads: gld req=" << lp.ld_requests
      << " txn=" << lp.ld_transactions << ", ldg req=" << lp.ldg_requests
      << " txn=" << lp.ldg_transactions
      << " (txn/req=" << ratio(lp.load_transactions_per_request())
      << "), st req=" << lp.st_requests << " txn=" << lp.st_transactions << "\n";
  out << indent << "ro$: hit=" << lp.ro_hits << " miss=" << lp.ro_misses
      << " rate=" << pct(lp.ro_hit_rate()) << " | l2: hit=" << lp.l2_hits
      << " miss=" << lp.l2_misses << " rate=" << pct(lp.l2_hit_rate())
      << " | dram: txn=" << lp.dram_transactions()
      << " bytes=" << lp.dram_bytes << "\n";
  out << indent << "atomics=" << lp.atomic_ops << " barriers=" << lp.barriers
      << " blocks=" << lp.blocks << " (replayed " << lp.blocks_replayed
      << ") warps=" << lp.warps_launched << "\n";
  out << indent << "commit: pages=" << lp.commit.pages_touched << " (merged "
      << lp.commit.pages_merged << ") swap_bytes=" << lp.commit.bytes_swapped
      << " merge_bytes=" << lp.commit.bytes_replayed
      << " | overlay writes=" << lp.overlay_writes
      << " bytes=" << lp.overlay_bytes << "\n";
  out << indent << "stalls:";
  for (std::size_t s = 0; s < kStallCount; ++s) {
    const double frac = lp.stalls.total > 0
                            ? lp.stalls.cycles[s] / lp.stalls.total
                            : 0.0;
    out << " " << stall_label(static_cast<Stall>(s)) << "=" << pct(frac);
  }
  const double busy =
      lp.stalls.total > 0 ? lp.stalls.busy / lp.stalls.total : 0.0;
  out << " busy=" << pct(busy) << "\n";
  out << indent << "issue util hist (10% bins):";
  for (std::uint64_t bin : lp.issue_hist) out << " " << bin;
  out << "\n";
  if (!lp.buffers.empty()) {
    out << indent << "buffers:\n";
    for (const BufferCounters& bc : lp.buffers) {
      out << indent << "  " << bc.name << ": req=" << bc.requests
          << " gld_txn=" << bc.ld_transactions
          << " ldg_txn=" << bc.ldg_transactions
          << " st_txn=" << bc.st_transactions << " atomics=" << bc.atomics
          << "\n";
    }
  }
}

void json_escape(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Doubles in JSON: shortest round-trip is locale-dependent to implement by
/// hand; 17 significant digits round-trips exactly and is deterministic.
void json_double(std::ostream& out, double v) {
  std::ostringstream tmp;
  tmp << std::setprecision(17) << v;
  out << tmp.str();
}

void json_counters(std::ostream& out, const LaunchProfile& lp,
                   const std::string& indent) {
  out << indent << "\"blocks\": " << lp.blocks << ",\n";
  out << indent << "\"blocks_replayed\": " << lp.blocks_replayed << ",\n";
  out << indent << "\"warps_launched\": " << lp.warps_launched << ",\n";
  out << indent << "\"threads_launched\": " << lp.threads_launched << ",\n";
  out << indent << "\"warp_insts\": " << lp.warp_insts << ",\n";
  out << indent << "\"issued_insts\": " << lp.issued_insts << ",\n";
  out << indent << "\"divergent_insts\": " << lp.divergent_insts << ",\n";
  out << indent << "\"active_lane_issues\": " << lp.active_lane_issues << ",\n";
  out << indent << "\"possible_lane_issues\": " << lp.possible_lane_issues
      << ",\n";
  out << indent << "\"ld_requests\": " << lp.ld_requests << ",\n";
  out << indent << "\"ld_transactions\": " << lp.ld_transactions << ",\n";
  out << indent << "\"ldg_requests\": " << lp.ldg_requests << ",\n";
  out << indent << "\"ldg_transactions\": " << lp.ldg_transactions << ",\n";
  out << indent << "\"st_requests\": " << lp.st_requests << ",\n";
  out << indent << "\"st_transactions\": " << lp.st_transactions << ",\n";
  out << indent << "\"atomic_ops\": " << lp.atomic_ops << ",\n";
  out << indent << "\"barriers\": " << lp.barriers << ",\n";
  out << indent << "\"ro_hits\": " << lp.ro_hits << ",\n";
  out << indent << "\"ro_misses\": " << lp.ro_misses << ",\n";
  out << indent << "\"l2_hits\": " << lp.l2_hits << ",\n";
  out << indent << "\"l2_misses\": " << lp.l2_misses << ",\n";
  out << indent << "\"dram_transactions\": " << lp.dram_transactions() << ",\n";
  out << indent << "\"dram_bytes\": " << lp.dram_bytes << ",\n";
  out << indent << "\"commit\": {\"waves\": " << lp.commit.waves
      << ", \"pages_touched\": " << lp.commit.pages_touched
      << ", \"pages_merged\": " << lp.commit.pages_merged
      << ", \"bytes_swapped\": " << lp.commit.bytes_swapped
      << ", \"bytes_replayed\": " << lp.commit.bytes_replayed
      << ", \"overlay_writes\": " << lp.overlay_writes
      << ", \"overlay_bytes\": " << lp.overlay_bytes << "},\n";
  out << indent << "\"stalls\": {";
  for (std::size_t s = 0; s < kStallCount; ++s) {
    if (s > 0) out << ", ";
    out << "\"" << stall_label(static_cast<Stall>(s)) << "\": ";
    json_double(out, lp.stalls.cycles[s]);
  }
  out << ", \"busy\": ";
  json_double(out, lp.stalls.busy);
  out << ", \"total\": ";
  json_double(out, lp.stalls.total);
  out << "},\n";
  out << indent << "\"issue_hist\": [";
  for (std::size_t i = 0; i < LaunchProfile::kIssueBins; ++i) {
    if (i > 0) out << ", ";
    out << lp.issue_hist[i];
  }
  out << "],\n";
  out << indent << "\"buffers\": [";
  for (std::size_t i = 0; i < lp.buffers.size(); ++i) {
    const BufferCounters& bc = lp.buffers[i];
    if (i > 0) out << ",";
    out << "\n" << indent << "  {\"name\": ";
    json_escape(out, bc.name);
    out << ", \"requests\": " << bc.requests
        << ", \"ld_transactions\": " << bc.ld_transactions
        << ", \"ldg_transactions\": " << bc.ldg_transactions
        << ", \"st_transactions\": " << bc.st_transactions
        << ", \"atomics\": " << bc.atomics << "}";
  }
  if (!lp.buffers.empty()) out << "\n" << indent;
  out << "]";
}

}  // namespace

std::string Report::format(const simt::DeviceConfig& dev) const {
  std::ostringstream out;
  const std::vector<KernelAggregate> kernels = by_kernel();
  out << "profile: " << launches.size() << " launch(es), " << kernels.size()
      << " kernel(s), " << transfers.size() << " transfer(s)\n";
  for (const KernelAggregate& k : kernels) {
    const LaunchProfile& s = k.sum;
    out << "kernel " << k.kernel << ": launches=" << k.launches
        << " grid=" << s.grid_blocks << " block=" << s.block_threads
        << " occ=" << s.occupancy_blocks_per_sm << "/SM waves=" << s.waves
        << " cycles=" << s.cycles << "\n";
    format_counters(out, s, "  ");
    if (s.blocks > 0 && s.atomic_ops > 0) {
      out << "  atomics/block=" << ratio(static_cast<double>(s.atomic_ops) /
                                         static_cast<double>(s.blocks))
          << "\n";
    }
  }
  if (launches.size() > 1) {
    out << "launches:\n";
    for (const LaunchProfile& lp : launches) {
      out << "  " << lp.kernel << "#" << lp.round << " grid=" << lp.grid_blocks
          << " cycles=" << lp.cycles << " insts=" << lp.warp_insts
          << " gld_txn=" << lp.ld_transactions
          << " ldg_txn=" << lp.ldg_transactions << " dram_txn="
          << lp.dram_transactions() << " atomics=" << lp.atomic_ops << "\n";
    }
  }
  if (!transfers.empty()) {
    std::uint64_t h2d_bytes = 0, h2d_cycles = 0, d2h_bytes = 0, d2h_cycles = 0;
    std::uint64_t d2d_bytes = 0, d2d_cycles = 0, d2d_count = 0;
    for (const Transfer& t : transfers) {
      if (t.d2d) {
        d2d_bytes += t.bytes;
        d2d_cycles += t.cycles;
        ++d2d_count;
        continue;
      }
      (t.h2d ? h2d_bytes : d2h_bytes) += t.bytes;
      (t.h2d ? h2d_cycles : d2h_cycles) += t.cycles;
    }
    out << "transfers: h2d bytes=" << h2d_bytes << " cycles=" << h2d_cycles
        << ", d2h bytes=" << d2h_bytes << " cycles=" << d2h_cycles;
    // Peer exchanges only exist on multi-device runs; single-device reports
    // keep their historical (golden-diffed) shape.
    if (d2d_count > 0) {
      out << ", d2d bytes=" << d2d_bytes << " cycles=" << d2d_cycles;
    }
    out << "\n";
  }
  // Multi-device fleet reports carry the per-round coalesced exchange
  // batches; single-device reports keep their historical (golden-diffed)
  // shape.
  if (!exchange_rounds.empty()) {
    out << "exchange rounds:\n";
    for (const ExchangeRound& er : exchange_rounds) {
      out << "  round " << er.round << ": batches=" << er.batches
          << " bytes=" << er.bytes << " cycles=" << er.cycles
          << " hidden=" << er.hidden_cycles << " stall=" << er.stall_cycles
          << "\n";
    }
  }
  (void)dev;
  return out.str();
}

std::string Report::to_json(const simt::DeviceConfig& dev,
                            const std::string& benchmark,
                            const std::string& machine) const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"speckle-prof-1\",\n";
  out << "  \"benchmark\": ";
  json_escape(out, benchmark);
  out << ",\n  \"machine\": ";
  json_escape(out, machine);
  out << ",\n";
  out << "  \"device\": {\"num_sms\": " << dev.num_sms
      << ", \"warp_size\": " << dev.warp_size << ", \"core_clock_ghz\": ";
  json_double(out, dev.core_clock_ghz);
  out << ", \"line_bytes\": " << dev.line_bytes
      << ", \"dram_sector_bytes\": " << dev.dram_sector_bytes << "},\n";

  out << "  \"launches\": [";
  for (std::size_t i = 0; i < launches.size(); ++i) {
    const LaunchProfile& lp = launches[i];
    if (i > 0) out << ",";
    out << "\n    {\n      \"kernel\": ";
    json_escape(out, lp.kernel);
    out << ",\n      \"round\": " << lp.round
        << ",\n      \"grid_blocks\": " << lp.grid_blocks
        << ",\n      \"block_threads\": " << lp.block_threads
        << ",\n      \"occupancy_blocks_per_sm\": " << lp.occupancy_blocks_per_sm
        << ",\n      \"waves\": " << lp.waves
        << ",\n      \"start_cycle\": " << lp.start_cycle
        << ",\n      \"cycles\": " << lp.cycles << ",\n";
    json_counters(out, lp, "      ");
    out << "\n    }";
  }
  if (!launches.empty()) out << "\n  ";
  out << "],\n";

  const std::vector<KernelAggregate> kernels = by_kernel();
  out << "  \"kernels\": [";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelAggregate& k = kernels[i];
    if (i > 0) out << ",";
    out << "\n    {\n      \"kernel\": ";
    json_escape(out, k.kernel);
    out << ",\n      \"launches\": " << k.launches
        << ",\n      \"waves\": " << k.sum.waves
        << ",\n      \"cycles\": " << k.sum.cycles << ",\n";
    json_counters(out, k.sum, "      ");
    out << "\n    }";
  }
  if (!kernels.empty()) out << "\n  ";
  out << "],\n";

  out << "  \"transfers\": [";
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    const Transfer& t = transfers[i];
    if (i > 0) out << ",";
    out << "\n    {\"dir\": \"" << t.dir_name()
        << "\", \"bytes\": " << t.bytes << ", \"cycles\": " << t.cycles
        << ", \"start_cycle\": " << t.start_cycle << "}";
  }
  if (!transfers.empty()) out << "\n  ";
  out << "],\n";

  // Per-round coalesced exchange batches (multi-device fleet profiles
  // only; the array is empty on single-device runs).
  out << "  \"exchange_rounds\": [";
  for (std::size_t i = 0; i < exchange_rounds.size(); ++i) {
    const ExchangeRound& er = exchange_rounds[i];
    if (i > 0) out << ",";
    out << "\n    {\"round\": " << er.round << ", \"batches\": " << er.batches
        << ", \"bytes\": " << er.bytes << ", \"cycles\": " << er.cycles
        << ", \"hidden_cycles\": " << er.hidden_cycles
        << ", \"stall_cycles\": " << er.stall_cycles << "}";
  }
  if (!exchange_rounds.empty()) out << "\n  ";
  out << "]\n}\n";
  return out.str();
}

std::string Report::to_chrome_trace(const simt::DeviceConfig& dev) const {
  // Timestamps/durations in microseconds of the modeled device timeline.
  const double cycles_per_us = dev.core_clock_ghz * 1e3;
  const auto us = [&](double cycles) { return cycles / cycles_per_us; };
  const double overhead =
      static_cast<double>(dev.us_to_cycles(dev.kernel_launch_us));

  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  // Track metadata: pid 0 = the device-level view (kernel + PCIe rows),
  // pid 1 = one row per SM with a slice per wave.
  out << "  {\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": \"process_name\", "
         "\"args\": {\"name\": \"device\"}},\n";
  out << "  {\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": \"thread_name\", "
         "\"args\": {\"name\": \"kernels\"}},\n";
  out << "  {\"ph\": \"M\", \"pid\": 0, \"tid\": 1, \"name\": \"thread_name\", "
         "\"args\": {\"name\": \"pcie\"}},\n";
  out << "  {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", "
         "\"args\": {\"name\": \"SMs\"}},\n";
  for (std::uint32_t sm = 0; sm < dev.num_sms; ++sm) {
    out << "  {\"ph\": \"M\", \"pid\": 1, \"tid\": " << sm
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \"sm" << sm
        << "\"}},\n";
  }

  bool first = true;
  const auto sep = [&]() -> std::ostream& {
    if (!first) out << ",\n";
    first = false;
    return out;
  };

  for (const LaunchProfile& lp : launches) {
    sep() << "  {\"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"ts\": ";
    json_double(out, us(static_cast<double>(lp.start_cycle)));
    out << ", \"dur\": ";
    json_double(out, us(static_cast<double>(lp.cycles)));
    out << ", \"name\": ";
    json_escape(out, lp.kernel + "#" + std::to_string(lp.round));
    out << ", \"args\": {\"grid_blocks\": " << lp.grid_blocks
        << ", \"warp_insts\": " << lp.warp_insts
        << ", \"dram_transactions\": " << lp.dram_transactions()
        << ", \"atomics\": " << lp.atomic_ops << "}}";

    // Per-wave SM slices: the launch overhead precedes execution, so wave
    // cycle 0 sits at start_cycle + overhead on the device timeline.
    for (std::size_t w = 0; w < lp.timeline.size(); ++w) {
      const WaveSlice& slice = lp.timeline[w];
      for (std::size_t sm = 0; sm < slice.sms.size(); ++sm) {
        const simt::WaveProfile::Sm& s = slice.sms[sm];
        if (s.finish <= slice.start) continue;  // SM had no resident work
        sep() << "  {\"ph\": \"X\", \"pid\": 1, \"tid\": " << sm << ", \"ts\": ";
        json_double(
            out, us(static_cast<double>(lp.start_cycle) + overhead + slice.start));
        out << ", \"dur\": ";
        json_double(out, us(s.finish - slice.start));
        out << ", \"name\": ";
        json_escape(out,
                    lp.kernel + "#" + std::to_string(lp.round) + " wave " +
                        std::to_string(w));
        out << ", \"args\": {\"busy_cycles\": ";
        json_double(out, s.busy);
        out << ", \"warp_insts\": " << s.warp_insts
            << ", \"dram_transactions\": " << s.dram_transactions << "}}";
      }
    }
  }

  for (const Transfer& t : transfers) {
    sep() << "  {\"ph\": \"X\", \"pid\": 0, \"tid\": 1, \"ts\": ";
    json_double(out, us(static_cast<double>(t.start_cycle)));
    out << ", \"dur\": ";
    json_double(out, us(static_cast<double>(t.cycles)));
    out << ", \"name\": \"" << t.dir_name()
        << "\", \"args\": {\"bytes\": " << t.bytes << "}}";
  }

  out << "\n]}\n";
  return out.str();
}

}  // namespace speckle::prof
