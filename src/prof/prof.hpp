#pragma once
/// \file prof.hpp
/// speckle::prof — a deterministic, opt-in profiling subsystem for the SIMT
/// simulator (the simulator's analogue of `nvprof --metrics`, but with
/// bit-identical reports at every host thread count).
///
/// The paper's performance claims are *mechanistic*: `__ldg` wins because
/// reads hit the ~30-cycle read-only cache instead of the ~300-cycle
/// L2/DRAM path, and the data-driven schemes win because the block-wide
/// scan push touches the worklist tail with ONE atomic per thread block.
/// The profiler turns those claims into counters: per kernel launch it
/// collects hardware-counter-style metrics (warps launched, SIMT
/// instructions, divergent issues, read-only-cache/L2 hit rates, DRAM
/// transactions and bytes, coalescing efficiency, atomics broken down by
/// target buffer using the named `Device::alloc` registry, barrier counts
/// and stall cycles, SM issue-utilization histograms) plus an SM/wave
/// timeline for Chrome-trace/Perfetto export.
///
/// Determinism follows the speckle::san pattern: everything execution-side
/// is derived from each block's merged warp traces, folded into the
/// profiler *serially at the block's commit slot in ascending block order*;
/// everything timing-side is merged from the per-SM wave partials *in SM
/// order*. Both fold orders are schedule-independent, so every report —
/// text, JSON, and trace export — is byte-identical at any `--threads=N`.
///
/// Enable with DeviceConfig::profile (CLI: `speckle_color
/// --profile[=json|trace|both]`). Off by default; when off the only cost is
/// one null-pointer test per launch/commit/transfer — the per-access hot
/// paths are untouched.

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "simt/config.hpp"
#include "simt/stats.hpp"
#include "simt/timing.hpp"
#include "simt/trace.hpp"

namespace speckle::prof {

/// Per-buffer traffic of one kernel launch, attributed by resolving each
/// transaction's line address (and each atomic's word address) against the
/// named allocation registry. `requests` counts warp-level memory
/// instructions (attributed to the buffer of their first transaction);
/// dividing transactions by requests gives the buffer's coalescing cost.
struct BufferCounters {
  std::string name;
  std::uint64_t base = 0;
  std::uint64_t ld_transactions = 0;   ///< global-space load transactions
  std::uint64_t ldg_transactions = 0;  ///< read-only-space load transactions
  std::uint64_t st_transactions = 0;
  std::uint64_t requests = 0;          ///< memory warp-instructions
  std::uint64_t atomics = 0;           ///< per-lane atomic operations

  std::uint64_t transactions() const {
    return ld_transactions + ldg_transactions + st_transactions;
  }
  bool operator==(const BufferCounters&) const = default;
};

/// One wave's timeline sample: wave bounds plus per-SM finish/busy, used by
/// the issue-cycle histogram and the Chrome-trace export. Cycles are
/// engine-local (the launch's waves start at 0); the launch's
/// `start_cycle` places them on the device timeline.
struct WaveSlice {
  double start = 0.0;
  double finish = 0.0;
  std::vector<simt::WaveProfile::Sm> sms;
  bool operator==(const WaveSlice&) const = default;
};

/// Everything one kernel launch produced. Execution-side counters are
/// folded per block at the commit slots; timing-side counters are copied
/// from the launch's KernelStats after the waves ran.
struct LaunchProfile {
  std::string kernel;
  std::uint32_t round = 0;  ///< nth launch of this kernel name (0-based)
  std::uint32_t grid_blocks = 0;
  std::uint32_t block_threads = 0;
  std::uint32_t occupancy_blocks_per_sm = 0;
  std::uint32_t waves = 0;
  std::uint64_t start_cycle = 0;  ///< device timeline when the launch began
  std::uint64_t cycles = 0;       ///< duration incl. launch overhead

  // --- execution side (per-block fold, ascending block order) -------------
  std::uint64_t blocks = 0;
  std::uint64_t blocks_replayed = 0;  ///< speculation failed, re-executed
  std::uint64_t warps_launched = 0;
  std::uint64_t threads_launched = 0;
  std::uint64_t warp_insts = 0;       ///< merged SIMT instructions
  /// Warp instructions issued with fewer active lanes than the warp's
  /// resident threads — branch divergence, early-exit guards and degree
  /// imbalance all land here (this is SIMD underutilization as the merge
  /// layer materializes it; see docs/simulator.md §11).
  std::uint64_t divergent_insts = 0;
  std::uint64_t active_lane_issues = 0;    ///< sum of active lanes over ops
  std::uint64_t possible_lane_issues = 0;  ///< sum of resident lanes over ops
  std::uint64_t ld_requests = 0;           ///< global-space load warp ops
  std::uint64_t ld_transactions = 0;
  std::uint64_t ldg_requests = 0;          ///< RO-space load warp ops
  std::uint64_t ldg_transactions = 0;
  std::uint64_t st_requests = 0;
  std::uint64_t st_transactions = 0;
  std::uint64_t atomic_ops = 0;   ///< per-lane atomics (== timing's count)
  std::uint64_t barriers = 0;     ///< block-barrier warp instructions
  std::vector<BufferCounters> buffers;  ///< first-touch order

  // --- commit side (single-touch wave commit, see docs/simulator.md §10) --
  /// L2 overlay-page counters for this launch's waves: pages adopted by a
  /// single-owner swap vs rebuilt by the SM-ordered merge. Regressions in
  /// the commit path show up here before they show up in wall clock.
  simt::WaveCommitStats commit;
  std::uint64_t overlay_writes = 0;  ///< speculative writes committed (once each)
  std::uint64_t overlay_bytes = 0;   ///< bytes those writes landed

  // --- timing side (per-SM partials, SM order) ----------------------------
  std::uint64_t issued_insts = 0;  ///< warp insts the scheduler issued
  std::uint64_t ro_hits = 0;
  std::uint64_t ro_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;  ///< == DRAM read transactions
  std::uint64_t dram_bytes = 0;
  simt::StallBreakdown stalls;
  /// Histogram of per-SM, per-wave issue utilization (busy cycles / wave
  /// cycles) in 10% bins — the "how evenly busy were the SMs" view.
  static constexpr std::size_t kIssueBins = 10;
  std::array<std::uint64_t, kIssueBins> issue_hist{};
  std::vector<WaveSlice> timeline;  ///< one entry per wave

  // --- derived -------------------------------------------------------------
  double simd_efficiency() const {
    return possible_lane_issues > 0
               ? static_cast<double>(active_lane_issues) / possible_lane_issues
               : 0.0;
  }
  double ro_hit_rate() const {
    const std::uint64_t total = ro_hits + ro_misses;
    return total > 0 ? static_cast<double>(ro_hits) / total : 0.0;
  }
  double l2_hit_rate() const {
    const std::uint64_t total = l2_hits + l2_misses;
    return total > 0 ? static_cast<double>(l2_hits) / total : 0.0;
  }
  /// Coalescing efficiency: transactions per load request (1.0 = perfectly
  /// coalesced, 32 = fully scattered 4-byte accesses).
  double load_transactions_per_request() const {
    const std::uint64_t req = ld_requests + ldg_requests;
    return req > 0 ? static_cast<double>(ld_transactions + ldg_transactions) / req
                   : 0.0;
  }
  /// DRAM read transactions (the paper's "memory transactions" axis).
  std::uint64_t dram_transactions() const { return l2_misses; }

  bool operator==(const LaunchProfile&) const = default;
};

/// One modeled transfer (PCIe h2d/d2h, or a peer d2d exchange), for the
/// trace export.
struct Transfer {
  bool h2d = false;
  bool d2d = false;  ///< peer exchange; when set, h2d is meaningless
  std::uint64_t bytes = 0;
  std::uint64_t cycles = 0;
  std::uint64_t start_cycle = 0;
  const char* dir_name() const { return d2d ? "d2d" : (h2d ? "h2d" : "d2h"); }
  bool operator==(const Transfer&) const = default;
};

/// Per-kernel aggregate over all launches (rounds) of one kernel name.
struct KernelAggregate {
  std::string kernel;
  std::uint32_t launches = 0;
  LaunchProfile sum;  ///< counter fields summed; identity fields unset
};

/// One lockstep round's coalesced boundary-exchange summary, filled by the
/// multi-device runner into its fleet-level report. Counting is
/// per-endpoint (each link charges source and destination alike), matching
/// the d2d TransferStats totals. `hidden_cycles` is the link-busy time the
/// interior-compute overlap kept off the critical path; `stall_cycles` is
/// what the devices actually waited — together they make the overlap win
/// directly observable per round.
struct ExchangeRound {
  std::uint32_t round = 0;         ///< 1-based lockstep round
  std::uint32_t batches = 0;       ///< coalesced per-link payloads (×2 endpoints)
  std::uint64_t bytes = 0;         ///< payload bytes, per endpoint
  std::uint64_t cycles = 0;        ///< link-busy cycles, per endpoint
  std::uint64_t hidden_cycles = 0; ///< busy cycles hidden behind compute
  std::uint64_t stall_cycles = 0;  ///< cycles devices waited on exchanges
  bool operator==(const ExchangeRound&) const = default;
};

struct Report {
  std::vector<LaunchProfile> launches;  ///< launch order
  std::vector<Transfer> transfers;
  /// Per-round exchange batches (multi-device fleet reports only; empty on
  /// single-device runs).
  std::vector<ExchangeRound> exchange_rounds;

  bool empty() const { return launches.empty() && transfers.empty(); }

  /// Aggregate launches by kernel name, first-seen order.
  std::vector<KernelAggregate> by_kernel() const;
  /// Aggregate per-buffer counters by buffer name over every launch.
  std::vector<BufferCounters> buffer_totals() const;
  /// Sum of `blocks` over every launch of `kernel` (for atomics-per-block
  /// readings).
  std::uint64_t total_blocks(const std::string& kernel) const;

  /// Deterministic multi-line text rendering (the `--profile` console
  /// report). Contains only simulated quantities — golden-diffable.
  std::string format(const simt::DeviceConfig& dev) const;
  /// Machine-readable JSON in the style of the repo's BENCH_*.json records
  /// (top-level benchmark/machine/notes plus the profile payload under
  /// "profile"). Byte-identical at every host thread count.
  std::string to_json(const simt::DeviceConfig& dev,
                      const std::string& benchmark = "",
                      const std::string& machine = "") const;
  /// Chrome-trace ("traceEvents") JSON of the kernel/SM/wave/PCIe timeline;
  /// loads in Perfetto and chrome://tracing.
  std::string to_chrome_trace(const simt::DeviceConfig& dev) const;

  bool operator==(const Report&) const = default;
};

/// The device-wide profiler. All methods run on the host's serial paths
/// (alloc, launch boundaries, the commit loop, wave ends), so it needs no
/// synchronization — determinism comes from the callers' fixed fold order.
class Profiler {
 public:
  explicit Profiler(const simt::DeviceConfig& dev) : dev_(dev) {}

  /// Register a named device allocation (same registry the sanitizer keeps;
  /// unnamed buffers get a synthesized "buf@0x<base>" label).
  void on_alloc(std::uint64_t base, std::uint64_t bytes, std::string name);

  /// Launch boundaries. `start_cycle` is the device timeline before the
  /// launch was charged.
  void begin_launch(const std::string& kernel, const simt::LaunchConfig& cfg,
                    std::uint32_t occupancy_blocks_per_sm,
                    std::uint64_t start_cycle);

  /// Fold one committed block's merged warp traces — called at the block's
  /// commit slot, in ascending block order, after any cooperative-push
  /// compaction appended its ops. `replayed` marks blocks whose speculation
  /// was discarded and re-executed.
  void fold_block(const simt::BlockWork& work, bool replayed);

  /// Record one wave's timing profile (per-SM finish/busy/insts), in wave
  /// order.
  void on_wave(const simt::WaveProfile& wave);

  /// Record the launch's wave-commit share: the MemorySystem counter delta
  /// across the launch plus the functional overlay writes its commit slots
  /// landed. Called once, on the serial path, just before end_launch.
  void on_commit(const simt::WaveCommitStats& delta, std::uint64_t overlay_writes,
                 std::uint64_t overlay_bytes);

  /// Close the launch with its final timing stats.
  void end_launch(const simt::KernelStats& stats);

  void on_transfer(bool h2d, std::uint64_t bytes, std::uint64_t cycles,
                   std::uint64_t start_cycle);
  /// Record a peer (device-to-device) exchange on this device's timeline.
  void on_transfer_d2d(std::uint64_t bytes, std::uint64_t cycles,
                       std::uint64_t start_cycle);

  /// Drop everything recorded so far (Device::reset_report after warm-up);
  /// the allocation registry survives.
  void reset();

  const Report& report() const { return report_; }

 private:
  struct BufferInfo {
    std::uint64_t base = 0;
    std::uint64_t bytes = 0;
    std::string name;
    std::size_t slot = SIZE_MAX;  ///< index into current launch's buffers
  };

  /// Registry index of the buffer containing `addr`, or SIZE_MAX.
  std::size_t find_buffer(std::uint64_t addr);
  /// The current launch's counter row for registry entry `idx` (creating it
  /// in first-touch order).
  BufferCounters& launch_counters(std::size_t idx);

  simt::DeviceConfig dev_;
  std::vector<BufferInfo> buffers_;  ///< sorted by base
  std::size_t last_hit_ = SIZE_MAX;  ///< registry lookup cache
  Report report_;
  LaunchProfile* current_ = nullptr;  ///< open launch (in report_.launches)
  std::vector<std::size_t> touched_;  ///< registry slots used this launch
  std::unordered_map<std::string, std::uint32_t> rounds_;  ///< launches/kernel
};

}  // namespace speckle::prof
