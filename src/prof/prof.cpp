#include "prof/prof.hpp"

#include <algorithm>
#include <sstream>

namespace speckle::prof {
namespace {

/// Sum b's counter fields into a (identity fields — kernel, round, grid —
/// are left alone). Used by the per-kernel and whole-run aggregations.
void add_counters(LaunchProfile& a, const LaunchProfile& b) {
  a.cycles += b.cycles;
  a.blocks += b.blocks;
  a.blocks_replayed += b.blocks_replayed;
  a.warps_launched += b.warps_launched;
  a.threads_launched += b.threads_launched;
  a.warp_insts += b.warp_insts;
  a.divergent_insts += b.divergent_insts;
  a.active_lane_issues += b.active_lane_issues;
  a.possible_lane_issues += b.possible_lane_issues;
  a.ld_requests += b.ld_requests;
  a.ld_transactions += b.ld_transactions;
  a.ldg_requests += b.ldg_requests;
  a.ldg_transactions += b.ldg_transactions;
  a.st_requests += b.st_requests;
  a.st_transactions += b.st_transactions;
  a.atomic_ops += b.atomic_ops;
  a.barriers += b.barriers;
  a.issued_insts += b.issued_insts;
  a.ro_hits += b.ro_hits;
  a.ro_misses += b.ro_misses;
  a.l2_hits += b.l2_hits;
  a.l2_misses += b.l2_misses;
  a.dram_bytes += b.dram_bytes;
  a.stalls += b.stalls;
  a.commit.waves += b.commit.waves;
  a.commit.pages_touched += b.commit.pages_touched;
  a.commit.pages_merged += b.commit.pages_merged;
  a.commit.bytes_swapped += b.commit.bytes_swapped;
  a.commit.bytes_replayed += b.commit.bytes_replayed;
  a.overlay_writes += b.overlay_writes;
  a.overlay_bytes += b.overlay_bytes;
  for (std::size_t i = 0; i < LaunchProfile::kIssueBins; ++i) {
    a.issue_hist[i] += b.issue_hist[i];
  }
  a.waves += b.waves;
  for (const BufferCounters& bc : b.buffers) {
    auto it = std::find_if(a.buffers.begin(), a.buffers.end(),
                           [&](const BufferCounters& ac) {
                             return ac.name == bc.name && ac.base == bc.base;
                           });
    if (it == a.buffers.end()) {
      a.buffers.push_back(bc);
    } else {
      it->ld_transactions += bc.ld_transactions;
      it->ldg_transactions += bc.ldg_transactions;
      it->st_transactions += bc.st_transactions;
      it->requests += bc.requests;
      it->atomics += bc.atomics;
    }
  }
}

}  // namespace

std::vector<KernelAggregate> Report::by_kernel() const {
  std::vector<KernelAggregate> out;
  for (const LaunchProfile& lp : launches) {
    auto it = std::find_if(out.begin(), out.end(), [&](const KernelAggregate& k) {
      return k.kernel == lp.kernel;
    });
    if (it == out.end()) {
      out.push_back({lp.kernel, 0, {}});
      it = out.end() - 1;
      it->sum.kernel = lp.kernel;
      it->sum.grid_blocks = lp.grid_blocks;
      it->sum.block_threads = lp.block_threads;
      it->sum.occupancy_blocks_per_sm = lp.occupancy_blocks_per_sm;
    }
    ++it->launches;
    add_counters(it->sum, lp);
  }
  return out;
}

std::vector<BufferCounters> Report::buffer_totals() const {
  std::vector<BufferCounters> out;
  for (const LaunchProfile& lp : launches) {
    for (const BufferCounters& bc : lp.buffers) {
      auto it = std::find_if(out.begin(), out.end(), [&](const BufferCounters& o) {
        return o.name == bc.name && o.base == bc.base;
      });
      if (it == out.end()) {
        out.push_back(bc);
      } else {
        it->ld_transactions += bc.ld_transactions;
        it->ldg_transactions += bc.ldg_transactions;
        it->st_transactions += bc.st_transactions;
        it->requests += bc.requests;
        it->atomics += bc.atomics;
      }
    }
  }
  return out;
}

std::uint64_t Report::total_blocks(const std::string& kernel) const {
  std::uint64_t blocks = 0;
  for (const LaunchProfile& lp : launches) {
    if (lp.kernel == kernel) blocks += lp.blocks;
  }
  return blocks;
}

void Profiler::on_alloc(std::uint64_t base, std::uint64_t bytes, std::string name) {
  // Inserting shifts registry indices, so retire the previous launch's slot
  // marks while the indices in `touched_` are still valid. (Allocation is a
  // host-side act — no launch is open here.)
  for (std::size_t idx : touched_) buffers_[idx].slot = SIZE_MAX;
  touched_.clear();
  if (name.empty()) {
    std::ostringstream label;
    label << "buf@0x" << std::hex << base;
    name = label.str();
  }
  const auto it = std::lower_bound(
      buffers_.begin(), buffers_.end(), base,
      [](const BufferInfo& info, std::uint64_t b) { return info.base < b; });
  buffers_.insert(it, {base, bytes, std::move(name), SIZE_MAX});
  last_hit_ = SIZE_MAX;  // indices shifted
}

void Profiler::begin_launch(const std::string& kernel,
                            const simt::LaunchConfig& cfg,
                            std::uint32_t occupancy_blocks_per_sm,
                            std::uint64_t start_cycle) {
  for (std::size_t idx : touched_) buffers_[idx].slot = SIZE_MAX;
  touched_.clear();

  LaunchProfile lp;
  lp.kernel = kernel;
  lp.round = rounds_[kernel]++;
  lp.grid_blocks = cfg.grid_blocks;
  lp.block_threads = cfg.block_threads;
  lp.occupancy_blocks_per_sm = occupancy_blocks_per_sm;
  lp.start_cycle = start_cycle;
  report_.launches.push_back(std::move(lp));
  current_ = &report_.launches.back();
}

std::size_t Profiler::find_buffer(std::uint64_t addr) {
  if (last_hit_ != SIZE_MAX) {
    const BufferInfo& hit = buffers_[last_hit_];
    if (addr >= hit.base && addr < hit.base + hit.bytes) return last_hit_;
  }
  // First buffer with base > addr; the candidate is the one before it.
  const auto it = std::upper_bound(
      buffers_.begin(), buffers_.end(), addr,
      [](std::uint64_t a, const BufferInfo& info) { return a < info.base; });
  if (it == buffers_.begin()) return SIZE_MAX;
  const std::size_t idx = static_cast<std::size_t>(it - buffers_.begin()) - 1;
  const BufferInfo& info = buffers_[idx];
  if (addr < info.base + info.bytes) {
    last_hit_ = idx;
    return idx;
  }
  return SIZE_MAX;
}

BufferCounters& Profiler::launch_counters(std::size_t idx) {
  BufferInfo& info = buffers_[idx];
  if (info.slot == SIZE_MAX) {
    info.slot = current_->buffers.size();
    BufferCounters bc;
    bc.name = info.name;
    bc.base = info.base;
    current_->buffers.push_back(std::move(bc));
    touched_.push_back(idx);
  }
  return current_->buffers[info.slot];
}

void Profiler::fold_block(const simt::BlockWork& work, bool replayed) {
  if (current_ == nullptr) return;
  LaunchProfile& lp = *current_;
  ++lp.blocks;
  if (replayed) ++lp.blocks_replayed;
  lp.warps_launched += work.active;
  lp.threads_launched += lp.block_threads;

  const std::uint32_t warp_size = dev_.warp_size;
  for (std::uint32_t wi = 0; wi < work.active; ++wi) {
    const simt::WarpTrace& wt = work.warps[wi];
    // Lanes resident in this warp (the last warp of a non-multiple block is
    // partially populated). Ops appended on the commit path (scan-push
    // compaction) claim 32 active lanes regardless, so active is clamped.
    const std::uint32_t warp_lanes =
        std::min(warp_size, lp.block_threads - wi * warp_size);
    for (std::size_t i = 0; i < wt.size(); ++i) {
      const simt::WarpOpView op = wt.op(i);
      const std::uint64_t insts =
          op.kind == simt::OpKind::kCompute ? op.inst_count : 1;
      const std::uint32_t active =
          std::min<std::uint32_t>(op.active_lanes, warp_lanes);
      lp.warp_insts += insts;
      lp.active_lane_issues += static_cast<std::uint64_t>(active) * insts;
      lp.possible_lane_issues += static_cast<std::uint64_t>(warp_lanes) * insts;
      if (active < warp_lanes) lp.divergent_insts += insts;

      switch (op.kind) {
        case simt::OpKind::kLoad: {
          const bool ro = op.space == simt::Space::kReadOnly;
          (ro ? lp.ldg_requests : lp.ld_requests) += 1;
          (ro ? lp.ldg_transactions : lp.ld_transactions) += op.addrs.size();
          bool first = true;
          for (std::uint64_t line : op.addrs) {
            const std::size_t idx = find_buffer(line);
            if (idx == SIZE_MAX) continue;
            BufferCounters& bc = launch_counters(idx);
            (ro ? bc.ldg_transactions : bc.ld_transactions) += 1;
            if (first) {
              ++bc.requests;
              first = false;
            }
          }
          break;
        }
        case simt::OpKind::kStore: {
          ++lp.st_requests;
          lp.st_transactions += op.addrs.size();
          bool first = true;
          for (std::uint64_t line : op.addrs) {
            const std::size_t idx = find_buffer(line);
            if (idx == SIZE_MAX) continue;
            BufferCounters& bc = launch_counters(idx);
            ++bc.st_transactions;
            if (first) {
              ++bc.requests;
              first = false;
            }
          }
          break;
        }
        case simt::OpKind::kAtomic: {
          lp.atomic_ops += op.addrs.size();
          for (std::uint64_t addr : op.addrs) {
            const std::size_t idx = find_buffer(addr);
            if (idx == SIZE_MAX) continue;
            ++launch_counters(idx).atomics;
          }
          break;
        }
        case simt::OpKind::kSync:
          ++lp.barriers;
          break;
        case simt::OpKind::kCompute:
        case simt::OpKind::kSharedAccess:
          break;
      }
    }
  }
}

void Profiler::on_wave(const simt::WaveProfile& wave) {
  if (current_ == nullptr) return;
  LaunchProfile& lp = *current_;
  ++lp.waves;
  lp.timeline.push_back({wave.start, wave.finish, wave.sms});
  const double duration = wave.finish - wave.start;
  for (const simt::WaveProfile::Sm& sm : wave.sms) {
    double util = duration > 0.0 ? sm.busy / duration : 0.0;
    util = std::clamp(util, 0.0, 1.0);
    std::size_t bin = static_cast<std::size_t>(util * LaunchProfile::kIssueBins);
    bin = std::min(bin, LaunchProfile::kIssueBins - 1);
    ++lp.issue_hist[bin];
  }
}

void Profiler::on_commit(const simt::WaveCommitStats& delta,
                         std::uint64_t overlay_writes, std::uint64_t overlay_bytes) {
  if (current_ == nullptr) return;
  current_->commit = delta;
  current_->overlay_writes = overlay_writes;
  current_->overlay_bytes = overlay_bytes;
}

void Profiler::end_launch(const simt::KernelStats& stats) {
  if (current_ == nullptr) return;
  LaunchProfile& lp = *current_;
  lp.cycles = stats.cycles;
  lp.issued_insts = stats.warp_insts;
  lp.ro_hits = stats.ro_hits;
  lp.ro_misses = stats.ro_misses;
  lp.l2_hits = stats.l2_hits;
  lp.l2_misses = stats.l2_misses;
  lp.dram_bytes = stats.dram_bytes;
  lp.stalls = stats.stalls;
  current_ = nullptr;
}

void Profiler::on_transfer(bool h2d, std::uint64_t bytes, std::uint64_t cycles,
                           std::uint64_t start_cycle) {
  report_.transfers.push_back({h2d, /*d2d=*/false, bytes, cycles, start_cycle});
}

void Profiler::on_transfer_d2d(std::uint64_t bytes, std::uint64_t cycles,
                               std::uint64_t start_cycle) {
  report_.transfers.push_back({/*h2d=*/false, /*d2d=*/true, bytes, cycles,
                               start_cycle});
}

void Profiler::reset() {
  report_ = Report{};
  current_ = nullptr;
  rounds_.clear();
  for (std::size_t idx : touched_) buffers_[idx].slot = SIZE_MAX;
  touched_.clear();
}

}  // namespace speckle::prof
