#pragma once
/// \file gm3step.hpp
/// The 3-step GM framework of Grosset et al. ("Evaluating graph coloring
/// on GPUs", PPoPP'11) — the existing speculative-greedy GPU baseline the
/// paper improves on (Fig 1):
///
///   1. *Graph partitioning*: the vertex set is split into fixed-size
///      contiguous partitions; each partition is assigned to ONE thread,
///      which colors its subgraph sequentially with first fit.
///   2. *Coloring & conflict detection* on the GPU, repeated a fixed number
///      of rounds to shrink the conflict set. Boundary (cross-partition)
///      edges are where speculation races, so conflicts abound.
///   3. *Sequential conflict resolution on the CPU*: the color array is
///      copied back over PCIe, the conflicting vertices are re-colored by
///      the host one by one (charged to the CPU cost model), and the
///      result is copied back to the device.
///
/// The pathologies the paper measures — per-thread serial subgraph loops
/// (no coalescing, low occupancy), host/device round trips, and a
/// sequential tail — all fall out of this structure.

#include "coloring/gpu_common.hpp"
#include "cpumodel/cpu_model.hpp"

namespace speckle::coloring {

struct Gm3Options : GpuOptions {
  std::uint32_t partition_size = 128;  ///< vertices colored per thread
  std::uint32_t gpu_rounds = 3;        ///< step-2 repetitions before the CPU pass
  cpumodel::CpuConfig cpu = cpumodel::CpuConfig::xeon_e5_2670();
};

struct Gm3Result : GpuResult {
  graph::vid_t cpu_resolved = 0;  ///< conflicts left for the sequential step
  double cpu_ms = 0.0;            ///< CPU-model time of step 3
};

Gm3Result gm3step_color(const graph::CsrGraph& g, const Gm3Options& opts = {});

}  // namespace speckle::coloring
