#pragma once
/// \file seq_greedy.hpp
/// Algorithm 1: the sequential greedy baseline every figure normalizes to.
///
/// Faithful to the paper's listing, including the colorMask vertex-stamp
/// trick: impermissible colors are marked with the current vertex id rather
/// than a boolean, so the mask never needs re-initialisation across the
/// outer loop.
///
/// The run can be charged against the scalar CPU cost model (cpumodel) so
/// simulated-GPU speedups have a deterministic, commensurable denominator;
/// wall-clock time is measured as well.

#include <cstdint>
#include <optional>

#include "coloring/coloring.hpp"
#include "coloring/ordering.hpp"
#include "cpumodel/cpu_model.hpp"
#include "graph/csr_graph.hpp"

namespace speckle::coloring {

struct SeqOptions {
  Ordering ordering = Ordering::kFirstFit;
  std::uint64_t seed = 1;      ///< for Ordering::kRandom
  bool charge_model = true;    ///< charge loads/stores to the CPU cost model
  cpumodel::CpuConfig cpu = cpumodel::CpuConfig::xeon_e5_2670();
};

struct SeqResult {
  Coloring coloring;
  color_t num_colors = 0;
  double model_ms = 0.0;  ///< CPU-cost-model time (0 if charge_model false)
  double wall_ms = 0.0;   ///< measured wall clock of the functional run
};

SeqResult seq_greedy(const graph::CsrGraph& g, const SeqOptions& opts = {});

/// Greedy color a single vertex given the current colors of its neighbors
/// (the first-fit rule both CPU resolvers reuse, e.g. 3-step GM's step 3).
color_t first_fit_color(const graph::CsrGraph& g, const Coloring& coloring,
                        graph::vid_t v);

}  // namespace speckle::coloring
