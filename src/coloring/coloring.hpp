#pragma once
/// \file coloring.hpp
/// Common vertex-coloring types, validation, and quality metrics.
///
/// A coloring assigns each vertex a color in [1, k]; 0 means "not colored
/// yet". A coloring is *proper* when no edge joins two vertices of the same
/// color — the invariant every algorithm in this library must establish and
/// every test checks via verify_coloring().

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace speckle::coloring {

using color_t = std::uint32_t;
inline constexpr color_t kUncolored = 0;

using Coloring = std::vector<color_t>;

/// Outcome of validating a coloring against its graph.
struct VerifyResult {
  bool proper = false;           ///< every vertex colored, no conflicting edge
  graph::vid_t uncolored = 0;    ///< vertices still at kUncolored
  std::uint64_t conflicts = 0;   ///< edges with equal endpoint colors
  color_t num_colors = 0;        ///< max color used
  std::string to_string() const;
};

/// Full validation pass over all edges. O(n + m).
VerifyResult verify_coloring(const graph::CsrGraph& g, const Coloring& coloring);

/// Highest color used (0 for an empty/uncolored graph).
color_t count_colors(const Coloring& coloring);

/// Histogram of class sizes, indexed by color (entry 0 = uncolored count).
std::vector<graph::vid_t> color_histogram(const Coloring& coloring);

/// Balance metric: largest class size divided by the ideal n/k (1.0 is
/// perfectly balanced). Used by the color-balancing extension.
double color_balance(const Coloring& coloring);

}  // namespace speckle::coloring
