#pragma once
/// \file refine.hpp
/// Iterated-greedy color refinement (Culberson): re-running the greedy
/// algorithm with vertices grouped by their current color classes can never
/// increase the color count, and reordering the classes (reversed, or
/// largest-first) frequently decreases it. A cheap post-pass that recovers
/// quality lost to speculation or to a poor initial ordering.

#include <cstdint>

#include "coloring/coloring.hpp"
#include "graph/csr_graph.hpp"

namespace speckle::coloring {

enum class ClassOrder {
  kReverse,       ///< highest color class first (Culberson's classic choice)
  kLargestFirst,  ///< biggest class first (tends to flatten the histogram)
};

struct RefineOptions {
  std::uint32_t rounds = 4;
  ClassOrder order = ClassOrder::kReverse;
};

struct RefineResult {
  Coloring coloring;
  color_t colors_before = 0;
  color_t colors_after = 0;
  std::uint32_t rounds_run = 0;  ///< stops early once a round stops improving
};

/// Refine a proper coloring. The result is proper and never uses more
/// colors than the input.
RefineResult iterated_greedy(const graph::CsrGraph& g, Coloring coloring,
                             const RefineOptions& opts = {});

}  // namespace speckle::coloring
