#include "coloring/gm_omp.hpp"

#include <omp.h>

#include <vector>

#include "coloring/seq_greedy.hpp"
#include "support/timer.hpp"

namespace speckle::coloring {

using graph::vid_t;

GmOmpResult gm_openmp(const graph::CsrGraph& g, const GmOmpOptions& opts) {
  const vid_t n = g.num_vertices();
  GmOmpResult result;
  result.coloring.assign(n, kUncolored);

  if (opts.num_threads > 0) omp_set_num_threads(opts.num_threads);

  support::Timer timer;
  std::vector<vid_t> worklist(n);
  for (vid_t v = 0; v < n; ++v) worklist[v] = v;
  std::vector<vid_t> remaining;

  while (!worklist.empty()) {
    ++result.rounds;

    // Speculative coloring (Algorithm 2 lines 4-10). Reads of neighbor
    // colors race benignly with writes — any stale read is caught by the
    // detection phase below, which is the GM scheme's whole point.
    const auto count = static_cast<std::int64_t>(worklist.size());
#pragma omp parallel for schedule(dynamic, 512)
    for (std::int64_t i = 0; i < count; ++i) {
      const vid_t v = worklist[static_cast<std::size_t>(i)];
      result.coloring[v] = first_fit_color(g, result.coloring, v);
    }

    // Conflict detection (lines 12-18): the lower-id endpoint loses.
    remaining.clear();
#pragma omp parallel
    {
      std::vector<vid_t> local;
#pragma omp for schedule(dynamic, 512) nowait
      for (std::int64_t i = 0; i < count; ++i) {
        const vid_t v = worklist[static_cast<std::size_t>(i)];
        for (vid_t w : g.neighbors(v)) {
          if (result.coloring[v] == result.coloring[w] && v < w) {
            local.push_back(v);
            break;
          }
        }
      }
#pragma omp critical
      remaining.insert(remaining.end(), local.begin(), local.end());
    }
    for (vid_t v : remaining) result.coloring[v] = kUncolored;
    result.total_conflicts += remaining.size();
    worklist.swap(remaining);
  }

  result.wall_ms = timer.milliseconds();
  result.num_colors = count_colors(result.coloring);
  return result;
}

}  // namespace speckle::coloring
