#include "coloring/seq_greedy.hpp"

#include <vector>

#include "support/check.hpp"
#include "support/timer.hpp"

namespace speckle::coloring {

using graph::vid_t;

SeqResult seq_greedy(const graph::CsrGraph& g, const SeqOptions& opts) {
  const vid_t n = g.num_vertices();
  SeqResult result;
  result.coloring.assign(n, kUncolored);

  const auto order = make_order(g, opts.ordering, opts.seed);

  // colorMask[c] == v marks color c impermissible for the vertex currently
  // being processed (Algorithm 1 line 4). First-fit never needs a color
  // beyond max_degree + 1, and the sentinel kInvalidVertex is not a vertex.
  std::vector<vid_t> color_mask(static_cast<std::size_t>(g.max_degree()) + 2,
                                graph::kInvalidVertex);

  std::optional<cpumodel::CpuModel> model;
  if (opts.charge_model) model.emplace(opts.cpu);

  support::Timer timer;
  for (vid_t v : order) {
    const auto adj = g.neighbors(v);
    if (model) model->touch_read(&g.row_offsets()[v], 2 * sizeof(graph::eid_t));
    for (vid_t w : adj) {
      const color_t cw = result.coloring[w];
      color_mask[cw] = v;
      if (model) {
        model->touch_read(&w, sizeof(vid_t));                  // C array entry
        model->touch_read(&result.coloring[w], sizeof(color_t));
        model->touch_write(&color_mask[cw], sizeof(vid_t));
        model->compute(2);
      }
    }
    color_t c = 1;
    while (color_mask[c] == v) {
      if (model) {
        model->touch_read(&color_mask[c], sizeof(vid_t));
        model->compute(1);
      }
      ++c;
    }
    if (model) model->touch_read(&color_mask[c], sizeof(vid_t));
    result.coloring[v] = c;
    if (model) {
      model->touch_write(&result.coloring[v], sizeof(color_t));
      model->compute(2);
    }
  }
  result.wall_ms = timer.milliseconds();
  result.num_colors = count_colors(result.coloring);
  if (model) result.model_ms = model->ms();
  return result;
}

color_t first_fit_color(const graph::CsrGraph& g, const Coloring& coloring,
                        graph::vid_t v) {
  SPECKLE_CHECK(coloring.size() == g.num_vertices(), "coloring size mismatch");
  const auto adj = g.neighbors(v);
  // Small-degree fast path: collect forbidden colors into a local bitset
  // window, widening if the vertex needs a color beyond it.
  for (color_t base = 1;; base += 64) {
    std::uint64_t forbidden = 0;
    for (vid_t w : adj) {
      const color_t cw = coloring[w];
      if (cw >= base && cw < base + 64) forbidden |= 1ULL << (cw - base);
    }
    if (forbidden != ~0ULL) {
      color_t offset = 0;
      while (forbidden & (1ULL << offset)) ++offset;
      return base + offset;
    }
  }
}

}  // namespace speckle::coloring
