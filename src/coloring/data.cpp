#include "coloring/data.hpp"

#include "simt/worklist.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace speckle::coloring {

using graph::vid_t;

GpuResult data_color(const graph::CsrGraph& g, const DataOptions& opts) {
  support::Timer wall;
  const vid_t n = g.num_vertices();
  GpuResult result;
  if (n == 0) return result;

  simt::Device dev(opts.device);
  DeviceGraph dg = upload_graph(dev, g);
  auto colors = dev.alloc<std::uint32_t>(n, "colors");
  colors.fill(kUncolored);

  // Double-buffered worklists (Algorithm 5 line 19): swapped by pointer.
  simt::Worklist list_a(dev, n, "list_a");
  simt::Worklist list_b(dev, n, "list_b");
  simt::Worklist* w_in = &list_a;
  simt::Worklist* w_out = &list_b;
  w_in->fill_iota(n);  // W_in <- V

  while (!w_in->empty()) {
    SPECKLE_CHECK(result.iterations < opts.max_iterations,
                  "data_color exceeded max_iterations");
    ++result.iterations;
    const std::uint32_t count = w_in->size();
    const simt::LaunchConfig cfg{(count + opts.block_size - 1) / opts.block_size,
                                 opts.block_size};
    simt::LaunchConfig racy_cfg = cfg;
    racy_cfg.racy_visibility = true;  // the color kernel speculates via st_racy

    // Lines 4-10: speculatively color every vertex in the worklist.
    const check::KernelSpec color_spec = graph_spec(dg, opts.use_ldg)
                                             .reads(w_in->items(), 0, count)
                                             .reads(colors)
                                             .racy(colors);
    dev.launch(racy_cfg, "data_color", color_spec, [&](simt::Thread& t) {
      const auto idx = t.global_id();
      if (idx >= count) return;
      t.compute(2);
      const vid_t v = t.ld(w_in->items(), idx);
      const color_t c = device_first_fit(t, dg, colors, v, opts.use_ldg);
      t.st_racy(colors, v, c);
    });

    // Lines 11-18: detect conflicts among the just-colored vertices and
    // compact the losers into the out-worklist. (The paper's listing scans
    // all of V here; only same-round vertices can conflict, so scanning
    // W_in is equivalent and is what keeps the scheme work-efficient —
    // see DESIGN.md §6.)
    w_out->clear();
    dev.copy_to_device(sizeof(std::uint32_t));  // memset of the out tail
    // Each consumed item re-enters at most once, so `count` bounds the
    // pushes; both push paths (scan_push / atomic tail) ride the same
    // declaration.
    const check::KernelSpec detect_spec = graph_spec(dg, opts.use_ldg)
                                              .reads(w_in->items(), 0, count)
                                              .reads(colors)
                                              .pushes(*w_out, count);
    dev.launch(cfg, "data_detect", detect_spec, [&](simt::Thread& t) {
      const auto idx = t.global_id();
      if (idx >= count) return;
      t.compute(2);
      const vid_t v = t.ld(w_in->items(), idx);
      const bool conflict = opts.ldf_tiebreak
                                ? device_conflict_ldf(t, dg, colors, v, opts.use_ldg)
                                : device_conflict(t, dg, colors, v, opts.use_ldg);
      if (!conflict) return;
      if (opts.scan_push) {
        t.scan_push(*w_out, v);
      } else {
        const std::uint32_t slot = t.atomic_add(w_out->tail(), 0, 1U);
        t.st(w_out->items(), slot, v);
      }
    });
    dev.copy_to_host(sizeof(std::uint32_t));  // read |W_out|

    std::swap(w_in, w_out);
  }

  result.coloring.assign(colors.host().begin(), colors.host().end());
  result.num_colors = count_colors(result.coloring);
  finish_gpu_result(result, dev, wall);
  return result;
}

}  // namespace speckle::coloring
