#include "coloring/data.hpp"

#include "coloring/recolor.hpp"
#include "simt/worklist.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace speckle::coloring {

using graph::vid_t;

GpuResult data_color(const graph::CsrGraph& g, const DataOptions& opts) {
  support::Timer wall;
  const vid_t n = g.num_vertices();
  GpuResult result;
  if (n == 0) return result;

  simt::Device dev(opts.device);
  DeviceGraph dg = upload_graph(dev, g);
  auto colors = dev.alloc<std::uint32_t>(n, "colors");
  colors.fill(kUncolored);

  // Double-buffered worklists (Algorithm 5 line 19): swapped by pointer.
  simt::Worklist list_a(dev, n, "list_a");
  simt::Worklist list_b(dev, n, "list_b");
  list_a.fill_iota(n);  // W_in <- V

  // The speculate/resolve loop itself lives in recolor.cpp, shared with
  // the incremental recolor_region() entry point (which seeds W_in with a
  // dirty region instead of V).
  result.iterations =
      speculate_resolve(dev, dg, colors, list_a, list_b, opts, 0);

  result.coloring.assign(colors.host().begin(), colors.host().end());
  result.num_colors = count_colors(result.coloring);
  finish_gpu_result(result, dev, wall);
  return result;
}

}  // namespace speckle::coloring
