#pragma once
/// \file recolor.hpp
/// Incremental recoloring: re-run the data-driven speculate/resolve loop
/// (Algorithm 5) seeded with only a *dirty region* of an existing proper
/// coloring, instead of the whole vertex set.
///
/// This is the algorithmic core of speckle::serve — after an edge-mutation
/// batch the coloring is proper everywhere except at the endpoints of the
/// newly conflicting edges, and Rokos et al.'s speculation-iterate analysis
/// (PAPERS.md) says the resolve phase converges in a handful of rounds when
/// the invalidated set is small. Seeding the worklist with the dirty set
/// makes the cost proportional to the conflict region, not the graph.
///
/// The loop itself is the exact one data_color() runs — factored here
/// (speculate_resolve) so the batch scheme and the incremental entry point
/// share one implementation; only the initial worklist and color state
/// differ. The dirty-set contract: the coloring restricted to vertices
/// OUTSIDE `dirty` must be proper among themselves (clean vertices are
/// never re-examined; only same-round speculation conflicts are detected,
/// the same work-efficiency argument as DESIGN.md §6).

#include <span>
#include <vector>

#include "coloring/data.hpp"
#include "coloring/gpu_common.hpp"
#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "simt/worklist.hpp"

namespace speckle::coloring {

/// The Algorithm-5 speculate/resolve loop, from whatever worklist state
/// `w_in` currently holds down to an empty worklist. Returns the number of
/// iterations run (added to `iterations_in`, which the max_iterations guard
/// compares against). Shared verbatim by data_color() and recolor_region():
/// the kernel names, launch configs and transfer charges are identical, so
/// the full-graph path's simulated results stay bit-identical.
std::uint32_t speculate_resolve(simt::Device& dev, const DeviceGraph& dg,
                                simt::Buffer<std::uint32_t>& colors,
                                simt::Worklist& list_a, simt::Worklist& list_b,
                                const DataOptions& opts,
                                std::uint32_t iterations_in = 0);

struct RecolorOptions : DataOptions {
  /// Dirty fraction (|dirty| / n) above which the incremental path stops
  /// paying off and recolor_region falls back to a full from-scratch run
  /// (all colors reset, worklist = V). See docs/serve.md for the threshold
  /// semantics the server exposes.
  double full_threshold = 0.10;
  /// Iterated-greedy rounds (refine.cpp) applied after the resolve loop.
  /// 0 skips refine — the serve default, keeping untouched vertices' colors
  /// stable across mutations; refine is global by nature and may relabel
  /// any vertex.
  std::uint32_t refine_rounds = 0;
};

struct RecolorResult {
  Coloring coloring;
  color_t num_colors = 0;
  std::uint32_t iterations = 0;   ///< resolve rounds run (0 for empty dirty)
  bool full = false;              ///< fell back to from-scratch recoloring
  std::uint32_t refine_rounds = 0;
  double model_ms = 0.0;          ///< simulated device time (deterministic)
  double wall_ms = 0.0;           ///< host wall clock
};

/// Recolor `base` after invalidating `dirty`. `base` must be proper when
/// restricted to the complement of `dirty` (dirty vertices may carry stale
/// or conflicting colors — they are speculatively re-colored from scratch).
/// Duplicate or out-of-range dirty ids abort. The result is always a
/// proper coloring of `g`; with an empty dirty set it is `base` itself.
RecolorResult recolor_region(const graph::CsrGraph& g, const Coloring& base,
                             std::span<const graph::vid_t> dirty,
                             const RecolorOptions& opts = {});

/// The dirty set an edge-mutation batch invalidates: for every inserted
/// edge whose endpoints currently share a color, the endpoint the conflict
/// rule would re-color (the lower id — device_conflict's convention).
/// Sorted ascending, deduplicated. Deletions never invalidate anything.
std::vector<graph::vid_t> dirty_from_inserts(
    const Coloring& coloring, std::span<const graph::Edge> inserted);

}  // namespace speckle::coloring
