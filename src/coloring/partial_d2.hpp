#pragma once
/// \file partial_d2.hpp
/// Partial distance-2 coloring of a rectangular pattern's columns
/// (Curtis–Powell–Reid / Coleman–Moré): columns sharing a nonzero row get
/// distinct colors, making each color class structurally orthogonal — one
/// matrix-vector probe recovers a whole class of Jacobian columns.
///
/// Equivalent to distance-1 coloring of the column intersection graph
/// (bipartite.hpp), but computed directly on the pattern, which avoids
/// materializing the (often much denser) intersection graph.

#include "coloring/coloring.hpp"
#include "graph/bipartite.hpp"

namespace speckle::coloring {

struct PartialD2Result {
  Coloring coloring;  ///< one color per column
  color_t num_colors = 0;
};

/// Greedy first-fit over the columns in natural order, scanning each
/// column's rows' column lists (the two-hop neighborhood in the bipartite
/// graph). Uses the vertex-stamped colorMask trick of Algorithm 1.
PartialD2Result partial_d2_greedy(const graph::SparsePattern& pattern);

/// Validate: every column colored, and no row contains two columns of the
/// same color.
VerifyResult verify_partial_d2(const graph::SparsePattern& pattern,
                               const Coloring& coloring);

}  // namespace speckle::coloring
