#include "coloring/ordering.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace speckle::coloring {

using graph::vid_t;

const char* ordering_name(Ordering o) {
  switch (o) {
    case Ordering::kFirstFit: return "first-fit";
    case Ordering::kLargestFirst: return "largest-first";
    case Ordering::kSmallestLast: return "smallest-last";
    case Ordering::kRandom: return "random";
  }
  return "?";
}

Ordering ordering_from_name(const std::string& name) {
  if (name == "first-fit" || name == "ff") return Ordering::kFirstFit;
  if (name == "largest-first" || name == "lf") return Ordering::kLargestFirst;
  if (name == "smallest-last" || name == "sl") return Ordering::kSmallestLast;
  if (name == "random") return Ordering::kRandom;
  SPECKLE_CHECK(false, "unknown ordering '" + name + "'");
  return Ordering::kFirstFit;
}

namespace {

std::vector<vid_t> natural_order(vid_t n) {
  std::vector<vid_t> order(n);
  std::iota(order.begin(), order.end(), 0U);
  return order;
}

std::vector<vid_t> largest_first(const graph::CsrGraph& g) {
  auto order = natural_order(g.num_vertices());
  std::stable_sort(order.begin(), order.end(),
                   [&](vid_t a, vid_t b) { return g.degree(a) > g.degree(b); });
  return order;
}

/// Matula–Beck: repeatedly remove a minimum-degree vertex; color in reverse
/// removal order. Implemented with degree buckets for O(n + m).
std::vector<vid_t> smallest_last(const graph::CsrGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> degree(n);
  vid_t max_degree = 0;
  for (vid_t v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  std::vector<std::vector<vid_t>> buckets(max_degree + 1);
  for (vid_t v = 0; v < n; ++v) buckets[degree[v]].push_back(v);
  std::vector<bool> removed(n, false);
  std::vector<vid_t> removal;
  removal.reserve(n);
  vid_t cursor = 0;
  while (removal.size() < n) {
    while (cursor <= max_degree && buckets[cursor].empty()) ++cursor;
    SPECKLE_CHECK(cursor <= max_degree, "smallest-last bucket scan overran");
    const vid_t v = buckets[cursor].back();
    buckets[cursor].pop_back();
    // Stale entry: the vertex was removed, or its degree changed since this
    // entry was queued (a fresh entry exists at its current-degree bucket).
    if (removed[v] || degree[v] != cursor) continue;
    removed[v] = true;
    removal.push_back(v);
    for (vid_t w : g.neighbors(v)) {
      if (!removed[w] && degree[w] > 0) {
        --degree[w];
        buckets[degree[w]].push_back(w);
        if (degree[w] < cursor) cursor = degree[w];
      }
    }
  }
  std::reverse(removal.begin(), removal.end());
  return removal;
}

}  // namespace

std::vector<vid_t> make_order(const graph::CsrGraph& g, Ordering o, std::uint64_t seed) {
  switch (o) {
    case Ordering::kFirstFit: return natural_order(g.num_vertices());
    case Ordering::kLargestFirst: return largest_first(g);
    case Ordering::kSmallestLast: return smallest_last(g);
    case Ordering::kRandom: {
      auto order = natural_order(g.num_vertices());
      support::Xoshiro256 rng(seed);
      support::shuffle(order, rng);
      return order;
    }
  }
  SPECKLE_CHECK(false, "unhandled ordering");
  return {};
}

}  // namespace speckle::coloring
