#pragma once
/// \file warp.hpp
/// Warp-centric data-driven coloring (D-warp) — the load-balancing
/// extension the paper's Section IV discussion points at: "the data-driven
/// implementation still suffers from load imbalance, since vertices may
/// have different amounts of edges".
///
/// Instead of one *thread* per worklist vertex, one *warp* cooperates on
/// each vertex: the 32 lanes stride the adjacency list (consecutive CSR
/// entries → perfectly coalesced), build partial forbidden-color bitmasks
/// in scratchpad, synchronize, and lane 0 combines the masks and picks the
/// first-fit color. High-degree vertices (rmat-g's 899-degree hubs) no
/// longer serialize one thread for hundreds of iterations while its warp
/// siblings idle.
///
/// Conflict detection and worklist compaction reuse the thread-centric
/// data-driven machinery (they are cheap and already work-efficient).

#include "coloring/data.hpp"

namespace speckle::coloring {

GpuResult data_warp_color(const graph::CsrGraph& g, const DataOptions& opts = {});

}  // namespace speckle::coloring
