#include "coloring/recolor.hpp"

#include <algorithm>

#include "coloring/refine.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace speckle::coloring {

using graph::vid_t;

std::uint32_t speculate_resolve(simt::Device& dev, const DeviceGraph& dg,
                                simt::Buffer<std::uint32_t>& colors,
                                simt::Worklist& list_a, simt::Worklist& list_b,
                                const DataOptions& opts,
                                std::uint32_t iterations_in) {
  simt::Worklist* w_in = &list_a;
  simt::Worklist* w_out = &list_b;
  std::uint32_t iterations = iterations_in;

  while (!w_in->empty()) {
    SPECKLE_CHECK(iterations < opts.max_iterations,
                  "data_color exceeded max_iterations");
    ++iterations;
    const std::uint32_t count = w_in->size();
    const simt::LaunchConfig cfg{(count + opts.block_size - 1) / opts.block_size,
                                 opts.block_size};
    simt::LaunchConfig racy_cfg = cfg;
    racy_cfg.racy_visibility = true;  // the color kernel speculates via st_racy

    // Lines 4-10: speculatively color every vertex in the worklist.
    const check::KernelSpec color_spec = graph_spec(dg, opts.use_ldg)
                                             .reads(w_in->items(), 0, count)
                                             .reads(colors)
                                             .racy(colors);
    dev.launch(racy_cfg, "data_color", color_spec, [&](simt::Thread& t) {
      const auto idx = t.global_id();
      if (idx >= count) return;
      t.compute(2);
      const vid_t v = t.ld(w_in->items(), idx);
      const color_t c = device_first_fit(t, dg, colors, v, opts.use_ldg);
      t.st_racy(colors, v, c);
    });

    // Lines 11-18: detect conflicts among the just-colored vertices and
    // compact the losers into the out-worklist. (The paper's listing scans
    // all of V here; only same-round vertices can conflict, so scanning
    // W_in is equivalent and is what keeps the scheme work-efficient —
    // see DESIGN.md §6.)
    w_out->clear();
    dev.copy_to_device(sizeof(std::uint32_t));  // memset of the out tail
    // Each consumed item re-enters at most once, so `count` bounds the
    // pushes; both push paths (scan_push / atomic tail) ride the same
    // declaration.
    const check::KernelSpec detect_spec = graph_spec(dg, opts.use_ldg)
                                              .reads(w_in->items(), 0, count)
                                              .reads(colors)
                                              .pushes(*w_out, count);
    dev.launch(cfg, "data_detect", detect_spec, [&](simt::Thread& t) {
      const auto idx = t.global_id();
      if (idx >= count) return;
      t.compute(2);
      const vid_t v = t.ld(w_in->items(), idx);
      const bool conflict = opts.ldf_tiebreak
                                ? device_conflict_ldf(t, dg, colors, v, opts.use_ldg)
                                : device_conflict(t, dg, colors, v, opts.use_ldg);
      if (!conflict) return;
      if (opts.scan_push) {
        t.scan_push(*w_out, v);
      } else {
        const std::uint32_t slot = t.atomic_add(w_out->tail(), 0, 1U);
        t.st(w_out->items(), slot, v);
      }
    });
    dev.copy_to_host(sizeof(std::uint32_t));  // read |W_out|

    std::swap(w_in, w_out);
  }
  return iterations;
}

RecolorResult recolor_region(const graph::CsrGraph& g, const Coloring& base,
                             std::span<const vid_t> dirty,
                             const RecolorOptions& opts) {
  support::Timer wall;
  const vid_t n = g.num_vertices();
  SPECKLE_CHECK(base.size() == n, "recolor_region: coloring/graph size mismatch");

  RecolorResult result;
  if (n == 0) return result;
  if (dirty.empty()) {
    // Nothing invalidated: the base coloring stands as-is.
    result.coloring = base;
    result.num_colors = count_colors(result.coloring);
    result.wall_ms = wall.milliseconds();
    return result;
  }
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    SPECKLE_CHECK(dirty[i] < n, "recolor_region: dirty vertex out of range");
    SPECKLE_CHECK(i == 0 || dirty[i] > dirty[i - 1],
                  "recolor_region: dirty set must be sorted and unique");
  }

  result.full =
      static_cast<double>(dirty.size()) >
      opts.full_threshold * static_cast<double>(n);

  simt::Device dev(opts.device);
  DeviceGraph dg = upload_graph(dev, g);
  auto colors = dev.alloc<std::uint32_t>(n, "colors");
  simt::Worklist list_a(dev, n, "list_a");
  simt::Worklist list_b(dev, n, "list_b");

  if (result.full) {
    // Dirty region too large for the incremental path to pay off: exactly
    // the from-scratch data_color initial state.
    colors.fill(kUncolored);
    list_a.fill_iota(n);
  } else {
    colors.copy_from(base);
    // Seed the worklist with the dirty region only. The color kernel
    // overwrites every seeded vertex's (possibly stale) color on the first
    // round, so no reset is needed — and keeping the stale colors visible
    // merely steers first-fit away from them, it cannot break properness
    // (conflicts among same-round speculation are what detect resolves).
    std::uint32_t tail = 0;
    for (const vid_t v : dirty) list_a.items()[tail++] = v;
    list_a.tail()[0] = tail;
    // The incremental entry charges the dirty-set upload (the server ships
    // the region to the device); the base colors are already resident.
    dev.copy_to_device(tail * sizeof(std::uint32_t));
  }

  result.iterations =
      speculate_resolve(dev, dg, colors, list_a, list_b, opts, 0);

  result.coloring.assign(colors.host().begin(), colors.host().end());
  result.model_ms = dev.elapsed_ms();

  if (opts.refine_rounds > 0) {
    RefineOptions ro;
    ro.rounds = opts.refine_rounds;
    RefineResult rr = iterated_greedy(g, std::move(result.coloring), ro);
    result.refine_rounds = rr.rounds_run;
    result.coloring = std::move(rr.coloring);
  }
  result.num_colors = count_colors(result.coloring);
  result.wall_ms = wall.milliseconds();
  return result;
}

std::vector<vid_t> dirty_from_inserts(const Coloring& coloring,
                                      std::span<const graph::Edge> inserted) {
  std::vector<vid_t> dirty;
  for (const graph::Edge& e : inserted) {
    if (coloring[e.src] != kUncolored && coloring[e.src] == coloring[e.dst]) {
      // device_conflict's convention: the lower id loses and re-colors.
      dirty.push_back(std::min(e.src, e.dst));
    }
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  return dirty;
}

}  // namespace speckle::coloring
