#include "coloring/refine.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "coloring/seq_greedy.hpp"
#include "support/check.hpp"

namespace speckle::coloring {

using graph::vid_t;

namespace {

/// Greedy pass over a fixed vertex order; pure first fit.
Coloring greedy_over_order(const graph::CsrGraph& g, std::span<const vid_t> order) {
  Coloring coloring(g.num_vertices(), kUncolored);
  for (vid_t v : order) coloring[v] = first_fit_color(g, coloring, v);
  return coloring;
}

}  // namespace

RefineResult iterated_greedy(const graph::CsrGraph& g, Coloring coloring,
                             const RefineOptions& opts) {
  SPECKLE_CHECK(verify_coloring(g, coloring).proper,
                "iterated_greedy requires a proper coloring");
  RefineResult result;
  result.colors_before = count_colors(coloring);

  for (std::uint32_t round = 0; round < opts.rounds; ++round) {
    const color_t k = count_colors(coloring);
    if (k <= 2) break;  // already optimal for any graph with an edge

    // Bucket vertices by class, then lay the classes out in the chosen
    // order. Greedy over class-grouped vertices never increases the count:
    // when a vertex is visited, earlier vertices of its own class are
    // non-adjacent, so it can always reuse its class's slot or better.
    std::vector<std::vector<vid_t>> classes(k);
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      classes[coloring[v] - 1].push_back(v);
    }
    std::vector<std::uint32_t> class_order(k);
    std::iota(class_order.begin(), class_order.end(), 0U);
    if (opts.order == ClassOrder::kReverse) {
      std::reverse(class_order.begin(), class_order.end());
    } else {
      std::stable_sort(class_order.begin(), class_order.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return classes[a].size() > classes[b].size();
                       });
    }
    std::vector<vid_t> order;
    order.reserve(g.num_vertices());
    for (std::uint32_t c : class_order) {
      order.insert(order.end(), classes[c].begin(), classes[c].end());
    }

    Coloring next = greedy_over_order(g, order);
    const color_t next_k = count_colors(next);
    SPECKLE_CHECK(next_k <= k, "iterated greedy must never increase colors");
    ++result.rounds_run;
    const bool improved = next_k < k;
    coloring = std::move(next);
    if (!improved) break;
  }

  result.colors_after = count_colors(coloring);
  result.coloring = std::move(coloring);
  return result;
}

}  // namespace speckle::coloring
