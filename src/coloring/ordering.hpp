#pragma once
/// \file ordering.hpp
/// Vertex visit orders for the sequential greedy algorithm.
///
/// The paper's sequential baseline is First Fit (natural order). The
/// classical alternatives trade time for fewer colors (Section II): Largest
/// Degree First (Welsh–Powell) and Smallest Last (Matula–Beck). Random order
/// is used by tests to show correctness is ordering-independent while
/// quality is not.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace speckle::coloring {

enum class Ordering {
  kFirstFit,      ///< natural vertex order (the paper's baseline)
  kLargestFirst,  ///< non-increasing degree
  kSmallestLast,  ///< Matula–Beck degeneracy order
  kRandom,        ///< seeded shuffle
};

const char* ordering_name(Ordering o);
Ordering ordering_from_name(const std::string& name);

/// Compute the visit order under `o`. O(n) / O(n log n) / O(n + m) resp.
std::vector<graph::vid_t> make_order(const graph::CsrGraph& g, Ordering o,
                                     std::uint64_t seed = 1);

}  // namespace speckle::coloring
