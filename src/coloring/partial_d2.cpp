#include "coloring/partial_d2.hpp"

#include <vector>

#include "support/check.hpp"

namespace speckle::coloring {

using graph::vid_t;

PartialD2Result partial_d2_greedy(const graph::SparsePattern& pattern) {
  const vid_t n = pattern.num_cols();
  PartialD2Result result;
  result.coloring.assign(n, kUncolored);
  std::vector<vid_t> color_mask(64, graph::kInvalidVertex);
  for (vid_t j = 0; j < n; ++j) {
    for (vid_t r : pattern.col(j)) {
      for (vid_t other : pattern.row(r)) {
        const color_t c = result.coloring[other];
        if (c >= color_mask.size()) color_mask.resize(c + 64, graph::kInvalidVertex);
        color_mask[c] = j;
      }
    }
    color_t c = 1;
    while (c < color_mask.size() && color_mask[c] == j) ++c;
    result.coloring[j] = c;
  }
  result.num_colors = count_colors(result.coloring);
  return result;
}

VerifyResult verify_partial_d2(const graph::SparsePattern& pattern,
                               const Coloring& coloring) {
  SPECKLE_CHECK(coloring.size() == pattern.num_cols(),
                "coloring size must match column count");
  VerifyResult result;
  for (vid_t j = 0; j < pattern.num_cols(); ++j) {
    if (coloring[j] == kUncolored) ++result.uncolored;
    result.num_colors = std::max(result.num_colors, coloring[j]);
  }
  std::vector<vid_t> seen_by;  // per row: which column claimed each color
  for (vid_t r = 0; r < pattern.num_rows(); ++r) {
    const auto cols = pattern.row(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      for (std::size_t j = i + 1; j < cols.size(); ++j) {
        if (coloring[cols[i]] != kUncolored &&
            coloring[cols[i]] == coloring[cols[j]]) {
          ++result.conflicts;
        }
      }
    }
  }
  result.proper = result.uncolored == 0 && result.conflicts == 0;
  return result;
}

}  // namespace speckle::coloring
