#include "coloring/jp.hpp"

#include <vector>

#include "support/rng.hpp"
#include "support/timer.hpp"

namespace speckle::coloring {

using graph::vid_t;

JpResult jones_plassmann(const graph::CsrGraph& g, const JpOptions& opts) {
  const vid_t n = g.num_vertices();
  JpResult result;
  result.coloring.assign(n, kUncolored);

  support::Timer timer;
  std::vector<std::uint64_t> priority(n);
  auto draw = [&](std::uint64_t round) {
    for (vid_t v = 0; v < n; ++v) {
      // Stateless per-(vertex, round) priority; ties broken by vertex id.
      const std::uint64_t r = opts.redraw_priorities ? round : 0;
      priority[v] = support::mix64(opts.seed ^ (static_cast<std::uint64_t>(v) << 20) ^ r);
    }
  };
  draw(0);

  std::vector<vid_t> worklist(n);
  for (vid_t v = 0; v < n; ++v) worklist[v] = v;
  std::vector<vid_t> next;
  color_t c = 1;

  while (!worklist.empty()) {
    ++result.rounds;
    if (opts.redraw_priorities) draw(result.rounds);
    next.clear();
    // Algorithm 3 lines 8-18: a vertex joins the independent set S when its
    // priority beats every *uncolored* neighbor's (ties by id).
    std::vector<vid_t> independent;
    for (vid_t v : worklist) {
      bool is_max = true;
      for (vid_t w : g.neighbors(v)) {
        if (result.coloring[w] != kUncolored) continue;
        if (priority[w] > priority[v] ||
            (priority[w] == priority[v] && w > v)) {
          is_max = false;
          break;
        }
      }
      (is_max ? independent : next).push_back(v);
    }
    for (vid_t v : independent) result.coloring[v] = c;
    ++c;
    worklist.swap(next);
  }
  result.wall_ms = timer.milliseconds();
  result.num_colors = count_colors(result.coloring);
  return result;
}

}  // namespace speckle::coloring
