#pragma once
/// \file data.hpp
/// Algorithm 5: the data-driven GPU scheme (D-base / D-ldg) and its
/// atomic-worklist ablation.
///
/// Threads are created in proportion to the worklist, so rounds after the
/// first touch only the conflicted vertices — the work-efficiency the
/// paper credits for the data-driven scheme's lead over topology-driven.
/// Two double-buffered worklists are swapped by pointer each iteration
/// (no copying). Conflicting vertices are compacted into the out-worklist
/// either with the block-wide prefix-sum push (one tail atomic per block —
/// the paper's optimization, Fig 5) or with one atomic per item (the
/// baseline the optimization is measured against).

#include "coloring/gpu_common.hpp"

namespace speckle::coloring {

struct DataOptions : GpuOptions {
  /// true: prefix-sum (scan) push, one atomic per block (D-base/D-ldg);
  /// false: per-item atomicAdd push (the "reduced atomic operations"
  /// ablation baseline).
  bool scan_push = true;
  /// Extension (after Hasenplaugh et al.'s ordering heuristics): resolve
  /// conflicts largest-degree-first — the lower-degree endpoint re-colors —
  /// instead of by vertex id. High-degree vertices then keep their early,
  /// low colors, which tends to reduce the total color count.
  bool ldf_tiebreak = false;
};

GpuResult data_color(const graph::CsrGraph& g, const DataOptions& opts = {});

}  // namespace speckle::coloring
