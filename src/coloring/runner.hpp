#pragma once
/// \file runner.hpp
/// A uniform front-end over every coloring scheme, keyed by the names the
/// paper's evaluation uses. Benches and examples go through this registry
/// so each figure is "for graph in suite, for scheme in list: run".

#include <cstdint>
#include <string>
#include <vector>

#include "coloring/coloring.hpp"
#include "coloring/gpu_common.hpp"
#include "cpumodel/cpu_model.hpp"
#include "graph/csr_graph.hpp"
#include "graph/partition.hpp"
#include "multidev/multidev.hpp"

namespace speckle::coloring {

enum class Scheme {
  kSequential,   ///< Algorithm 1 on the CPU model (the baseline)
  kGm3Step,      ///< Grosset's 3-step GM (GPU-sim + CPU resolution)
  kTopoBase,     ///< T-base  (Algorithm 4)
  kTopoLdg,      ///< T-ldg   (Algorithm 4 + __ldg)
  kDataBase,     ///< D-base  (Algorithm 5, scan push)
  kDataLdg,      ///< D-ldg   (Algorithm 5 + __ldg, scan push)
  kCsrColor,     ///< cuSPARSE csrcolor (multi-hash MIS)
  kDataAtomic,   ///< ablation: Algorithm 5 with per-item atomic push
  kDataWarp,     ///< extension: warp-centric D scheme (load balancing)
  kDataLdf,      ///< extension: D-base with largest-degree-first tie-break
  kJpGpu,        ///< classic Jones-Plassmann/Luby on the GPU-sim (1 fixed
                 ///< hash, max-only sets) — the other algorithm family
  kJonesPlassmann,  ///< CPU reference (Algorithm 3)
  kGmOpenMp,     ///< CPU-parallel reference (Algorithm 2, OpenMP)
};

const char* scheme_name(Scheme s);
Scheme scheme_from_name(const std::string& name);
bool scheme_uses_gpu(Scheme s);

/// The seven schemes of the paper's evaluation (Section IV), in its order.
const std::vector<Scheme>& paper_schemes();
/// All schemes including ablations and CPU references.
const std::vector<Scheme>& all_schemes();

struct RunOptions {
  std::uint32_t block_size = 128;
  std::uint64_t seed = 1;
  simt::DeviceConfig device = simt::DeviceConfig::k20c();
  cpumodel::CpuConfig cpu = cpumodel::CpuConfig::xeon_e5_2670();
  std::uint32_t max_iterations = 100000;

  /// Multi-device runs (speckle::multidev): shard the graph over this many
  /// simulated GPUs. 1 = the classic single-device path. Values > 1 are
  /// only valid for the data-driven SGR schemes (D-base / D-ldg /
  /// D-atomic); run_scheme aborts loudly otherwise.
  std::uint32_t num_devices = 1;
  graph::PartitionKind partitioner = graph::PartitionKind::kContiguous;

  /// Convenience for reduced-scale experiments: scale both machine models'
  /// cache capacities by `denom` (see DeviceConfig::scaled).
  void scale_caches(std::uint32_t denom) {
    device = device.scaled(denom);
    cpu = cpu.scaled(denom);
  }
};

struct RunResult {
  Scheme scheme;
  Coloring coloring;
  color_t num_colors = 0;
  std::uint32_t iterations = 0;
  double model_ms = 0.0;  ///< simulated (GPU) or modeled (CPU) time
  double wall_ms = 0.0;   ///< host wall clock (real time of the CPU schemes)
  simt::DeviceReport report;  ///< empty for CPU schemes
  san::Report san;      ///< sanitizer findings (empty for CPU schemes
                              ///< or when RunOptions::device.sanitize is off)
  prof::Report prof;    ///< profiler counters/timeline (empty for CPU
                              ///< schemes or when device.profile is off)
  check::Report check;  ///< launch-plan checker output (empty for CPU
                              ///< schemes or when device.check is off); on
                              ///< multi-device runs the fleet-merged view

  // --- multi-device runs only (RunOptions::num_devices > 1) ---------------
  /// Per-device breakdowns, in device order. Empty on single-device runs;
  /// `report`/`san`/`prof` above then hold the fleet-level merged views
  /// (kernel names carry the "d<k>." device prefix).
  std::vector<multidev::DeviceBreakdown> devices;
  std::uint64_t cut_edges = 0;         ///< directed cut of the partition
  std::uint64_t exchanged_colors = 0;  ///< ghost updates shipped over D2D
  /// Per-round exchange batches (count/bytes/hidden/stall) and the fleet
  /// total of exchange cycles the compute overlap hid, in milliseconds.
  /// Empty/zero on single-device runs.
  std::vector<prof::ExchangeRound> exchange_rounds;
  double hidden_ms = 0.0;
};

/// Run one scheme on one graph. Aborts if the scheme produced an improper
/// coloring (every algorithm here must be correct by construction).
RunResult run_scheme(Scheme s, const graph::CsrGraph& g, const RunOptions& opts = {});

}  // namespace speckle::coloring
