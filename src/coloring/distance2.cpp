#include "coloring/distance2.hpp"

#include <vector>

#include "support/check.hpp"
#include "support/timer.hpp"

namespace speckle::coloring {

using graph::eid_t;
using graph::vid_t;

VerifyResult verify_coloring_d2(const graph::CsrGraph& g, const Coloring& coloring) {
  SPECKLE_CHECK(coloring.size() == g.num_vertices(), "coloring size mismatch");
  VerifyResult result;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (coloring[v] == kUncolored) {
      ++result.uncolored;
      continue;
    }
    result.num_colors = std::max(result.num_colors, coloring[v]);
    for (vid_t w : g.neighbors(v)) {
      if (coloring[v] == coloring[w]) ++result.conflicts;
      for (vid_t u : g.neighbors(w)) {
        if (u != v && coloring[v] == coloring[u]) ++result.conflicts;
      }
    }
  }
  // Distance-1 conflicts were counted from both endpoints; distance-2
  // conflicts from both endpoints as well (once per connecting path — a
  // nonzero count is what matters for validity).
  result.proper = result.uncolored == 0 && result.conflicts == 0;
  return result;
}

SeqD2Result seq_greedy_d2(const graph::CsrGraph& g) {
  const vid_t n = g.num_vertices();
  SeqD2Result result;
  result.coloring.assign(n, kUncolored);
  support::Timer timer;
  // First-fit needs at most deg*maxdeg+1 colors; allocate lazily by growing.
  std::vector<vid_t> color_mask(64, graph::kInvalidVertex);
  for (vid_t v = 0; v < n; ++v) {
    auto stamp = [&](vid_t other) {
      const color_t c = result.coloring[other];
      if (c >= color_mask.size()) {
        color_mask.resize(c + 64, graph::kInvalidVertex);
      }
      color_mask[c] = v;
    };
    for (vid_t w : g.neighbors(v)) {
      stamp(w);
      for (vid_t u : g.neighbors(w)) {
        if (u != v) stamp(u);
      }
    }
    color_t c = 1;
    while (c < color_mask.size() && color_mask[c] == v) ++c;
    result.coloring[v] = c;
  }
  result.wall_ms = timer.milliseconds();
  result.num_colors = count_colors(result.coloring);
  return result;
}

namespace {

/// Device-side D2 first fit: the forbidden window covers neighbors and
/// neighbors-of-neighbors. Widens on overflow like device_first_fit.
color_t device_first_fit_d2(simt::Thread& t, const DeviceGraph& dg,
                            simt::Buffer<std::uint32_t>& colors, vid_t v,
                            bool use_ldg) {
  const eid_t begin = use_ldg ? t.ldg(dg.row, v) : t.ld(dg.row, v);
  const eid_t end = use_ldg ? t.ldg(dg.row, v + 1) : t.ld(dg.row, v + 1);
  t.compute(2);
  for (color_t base = 1;; base += 64) {
    std::uint64_t forbidden = 0;
    auto mark = [&](color_t c) {
      if (c >= base && c < base + 64) forbidden |= 1ULL << (c - base);
    };
    for (eid_t e = begin; e < end; ++e) {
      const vid_t w = use_ldg ? t.ldg(dg.col, e) : t.ld(dg.col, e);
      mark(t.ld(colors, w));
      t.compute(3);
      const eid_t w_begin = use_ldg ? t.ldg(dg.row, w) : t.ld(dg.row, w);
      const eid_t w_end = use_ldg ? t.ldg(dg.row, w + 1) : t.ld(dg.row, w + 1);
      t.compute(2);
      for (eid_t f = w_begin; f < w_end; ++f) {
        const vid_t u = use_ldg ? t.ldg(dg.col, f) : t.ld(dg.col, f);
        if (u == v) {
          t.compute(2);
          continue;
        }
        mark(t.ld(colors, u));
        t.compute(3);
      }
    }
    if (forbidden != ~0ULL) {
      color_t offset = 0;
      while (forbidden & (1ULL << offset)) ++offset;
      t.compute(2);
      return base + offset;
    }
    t.compute(2);
  }
}

/// Device-side D2 conflict test with the id tie-break over both hops.
bool device_conflict_d2(simt::Thread& t, const DeviceGraph& dg,
                        simt::Buffer<std::uint32_t>& colors, vid_t v,
                        bool use_ldg) {
  const eid_t begin = use_ldg ? t.ldg(dg.row, v) : t.ld(dg.row, v);
  const eid_t end = use_ldg ? t.ldg(dg.row, v + 1) : t.ld(dg.row, v + 1);
  const color_t cv = t.ld(colors, v);
  t.compute(2);
  for (eid_t e = begin; e < end; ++e) {
    const vid_t w = use_ldg ? t.ldg(dg.col, e) : t.ld(dg.col, e);
    t.compute(3);
    if (cv == t.ld(colors, w) && v < w) return true;
    const eid_t w_begin = use_ldg ? t.ldg(dg.row, w) : t.ld(dg.row, w);
    const eid_t w_end = use_ldg ? t.ldg(dg.row, w + 1) : t.ld(dg.row, w + 1);
    t.compute(2);
    for (eid_t f = w_begin; f < w_end; ++f) {
      const vid_t u = use_ldg ? t.ldg(dg.col, f) : t.ld(dg.col, f);
      t.compute(3);
      if (u != v && cv == t.ld(colors, u) && v < u) return true;
    }
  }
  return false;
}

}  // namespace

GpuResult topo_color_d2(const graph::CsrGraph& g, const GpuOptions& opts) {
  support::Timer wall;
  const vid_t n = g.num_vertices();
  GpuResult result;
  if (n == 0) return result;

  simt::Device dev(opts.device);
  DeviceGraph dg = upload_graph(dev, g);
  auto colors = dev.alloc<std::uint32_t>(n, "colors");
  auto colored = dev.alloc<std::uint32_t>(n, "colored");
  auto changed = dev.alloc<std::uint32_t>(1, "changed");
  colors.fill(kUncolored);
  colored.fill(0);

  const simt::LaunchConfig cfg{(n + opts.block_size - 1) / opts.block_size,
                               opts.block_size};
  simt::LaunchConfig racy_cfg = cfg;
  racy_cfg.racy_visibility = true;  // the color kernel speculates via st_racy

  const check::KernelSpec color_spec = graph_spec(dg, opts.use_ldg)
                                           .reads(colors)
                                           .racy(colors)
                                           .reads(colored)
                                           .writes(colored)
                                           .writes(changed);
  const check::KernelSpec detect_spec =
      graph_spec(dg, opts.use_ldg).reads(colors).writes(colored);

  for (std::uint32_t iter = 0; iter < opts.max_iterations; ++iter) {
    ++result.iterations;
    changed[0] = 0;
    dev.copy_to_device(sizeof(std::uint32_t));

    dev.launch(racy_cfg, "topo_color_d2", color_spec, [&](simt::Thread& t) {
      const auto v = static_cast<vid_t>(t.global_id());
      if (v >= n) return;
      t.compute(2);
      if (t.ld(colored, v) != 0) return;
      const color_t c = device_first_fit_d2(t, dg, colors, v, opts.use_ldg);
      t.st_racy(colors, v, c);
      t.st(colored, v, 1U);
      t.st(changed, 0, 1U);
    });

    dev.launch(cfg, "topo_detect_d2", detect_spec, [&](simt::Thread& t) {
      const auto v = static_cast<vid_t>(t.global_id());
      if (v >= n) return;
      t.compute(2);
      if (device_conflict_d2(t, dg, colors, v, opts.use_ldg)) {
        t.st(colored, v, 0U);
      }
    });

    dev.copy_to_host(sizeof(std::uint32_t));
    if (changed[0] == 0) break;
  }
  SPECKLE_CHECK(changed[0] == 0, "topo_color_d2 exceeded max_iterations");

  result.coloring.assign(colors.host().begin(), colors.host().end());
  result.num_colors = count_colors(result.coloring);
  finish_gpu_result(result, dev, wall);
  return result;
}

}  // namespace speckle::coloring
