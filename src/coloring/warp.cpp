#include "coloring/warp.hpp"

#include "simt/worklist.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace speckle::coloring {

using graph::eid_t;
using graph::vid_t;

namespace {

/// Lane-0 fallback when the cooperative 64-color window overflows (a
/// vertex with >= 64 distinctly-colored neighbors): rescan the adjacency
/// serially with ever-wider windows. Rare; costs the realistic divergence.
color_t lane0_wide_first_fit(simt::Thread& t, const DeviceGraph& dg,
                             simt::Buffer<std::uint32_t>& colors, eid_t begin,
                             eid_t end, bool use_ldg) {
  for (color_t base = 65;; base += 64) {
    std::uint64_t forbidden = 0;
    for (eid_t e = begin; e < end; ++e) {
      const vid_t w = use_ldg ? t.ldg(dg.col, e) : t.ld(dg.col, e);
      const color_t cw = t.ld(colors, w);
      if (cw >= base && cw < base + 64) forbidden |= 1ULL << (cw - base);
      t.compute(3);
    }
    if (forbidden != ~0ULL) {
      color_t offset = 0;
      while (forbidden & (1ULL << offset)) ++offset;
      return base + offset;
    }
  }
}

}  // namespace

GpuResult data_warp_color(const graph::CsrGraph& g, const DataOptions& opts) {
  support::Timer wall;
  const vid_t n = g.num_vertices();
  GpuResult result;
  if (n == 0) return result;
  SPECKLE_CHECK(opts.block_size % 32 == 0, "warp-centric blocks must be warp-multiple");

  simt::Device dev(opts.device);
  DeviceGraph dg = upload_graph(dev, g);
  auto colors = dev.alloc<std::uint32_t>(n, "colors");
  colors.fill(kUncolored);

  simt::Worklist list_a(dev, n, "list_a");
  simt::Worklist list_b(dev, n, "list_b");
  simt::Worklist* w_in = &list_a;
  simt::Worklist* w_out = &list_b;
  w_in->fill_iota(n);

  const std::uint32_t warps_per_block = opts.block_size / 32;

  while (!w_in->empty()) {
    SPECKLE_CHECK(result.iterations < opts.max_iterations,
                  "data_warp_color exceeded max_iterations");
    ++result.iterations;
    const std::uint32_t count = w_in->size();

    // Phase 1: every lane strides its warp's adjacency, building a partial
    // 64-color forbidden mask in scratchpad (two words per thread).
    // Phase 2 (after the block barrier): lane 0 folds the 32 partial masks
    // and speculatively commits the first-fit color.
    simt::LaunchConfig color_cfg{
        (count + warps_per_block - 1) / warps_per_block, opts.block_size,
        /*regs_per_thread=*/37, /*smem_bytes_per_block=*/opts.block_size * 8};
    color_cfg.racy_visibility = true;  // phase 2 speculates via st_racy
    std::vector<simt::Kernel> phases = {
        [&](simt::Thread& t) {
          const std::uint32_t widx =
              t.block() * warps_per_block + t.warp_in_block();
          const std::uint32_t slot = t.thread_in_block() * 2;
          if (widx >= count) {
            t.shared_st(slot, 0);
            t.shared_st(slot + 1, 0);
            return;
          }
          // All 32 lanes load the same item/offset words: one broadcast
          // transaction per warp, as on real hardware.
          const vid_t v = t.ld(w_in->items(), widx);
          const eid_t begin = opts.use_ldg ? t.ldg(dg.row, v) : t.ld(dg.row, v);
          const eid_t end =
              opts.use_ldg ? t.ldg(dg.row, v + 1) : t.ld(dg.row, v + 1);
          t.compute(3);
          std::uint64_t mask = 0;
          for (eid_t e = begin + t.lane(); e < end; e += 32) {
            const vid_t w = opts.use_ldg ? t.ldg(dg.col, e) : t.ld(dg.col, e);
            const color_t cw = t.ld(colors, w);
            if (cw >= 1 && cw < 65) mask |= 1ULL << (cw - 1);
            t.compute(3);
          }
          t.shared_st(slot, static_cast<std::uint32_t>(mask));
          t.shared_st(slot + 1, static_cast<std::uint32_t>(mask >> 32));
        },
        [&](simt::Thread& t) {
          if (t.lane() != 0) return;
          const std::uint32_t widx =
              t.block() * warps_per_block + t.warp_in_block();
          if (widx >= count) return;
          const vid_t v = t.ld(w_in->items(), widx);
          std::uint64_t forbidden = 0;
          const std::uint32_t warp_base = t.warp_in_block() * 32;
          for (std::uint32_t l = 0; l < 32; ++l) {
            const std::uint64_t lo = t.shared_ld((warp_base + l) * 2);
            const std::uint64_t hi = t.shared_ld((warp_base + l) * 2 + 1);
            forbidden |= lo | (hi << 32);
          }
          t.compute(32);
          color_t c;
          if (forbidden != ~0ULL) {
            color_t offset = 0;
            while (forbidden & (1ULL << offset)) ++offset;
            c = 1 + offset;
            t.compute(2);
          } else {
            const eid_t begin = opts.use_ldg ? t.ldg(dg.row, v) : t.ld(dg.row, v);
            const eid_t end =
                opts.use_ldg ? t.ldg(dg.row, v + 1) : t.ld(dg.row, v + 1);
            c = lane0_wide_first_fit(t, dg, colors, begin, end, opts.use_ldg);
          }
          t.st_racy(colors, v, c);
        },
    };
    const check::KernelSpec color_spec = graph_spec(dg, opts.use_ldg)
                                             .reads(w_in->items(), 0, count)
                                             .reads(colors)
                                             .racy(colors);
    dev.launch_phased(color_cfg, "data_warp_color", color_spec, phases);

    // Detection + compaction: thread-centric, as in data_color.
    w_out->clear();
    dev.copy_to_device(sizeof(std::uint32_t));
    const simt::LaunchConfig detect_cfg{
        (count + opts.block_size - 1) / opts.block_size, opts.block_size};
    const check::KernelSpec detect_spec = graph_spec(dg, opts.use_ldg)
                                              .reads(w_in->items(), 0, count)
                                              .reads(colors)
                                              .pushes(*w_out, count);
    dev.launch(detect_cfg, "data_warp_detect", detect_spec, [&](simt::Thread& t) {
      const auto idx = t.global_id();
      if (idx >= count) return;
      t.compute(2);
      const vid_t v = t.ld(w_in->items(), idx);
      if (!device_conflict(t, dg, colors, v, opts.use_ldg)) return;
      if (opts.scan_push) {
        t.scan_push(*w_out, v);
      } else {
        const std::uint32_t slot = t.atomic_add(w_out->tail(), 0, 1U);
        t.st(w_out->items(), slot, v);
      }
    });
    dev.copy_to_host(sizeof(std::uint32_t));
    std::swap(w_in, w_out);
  }

  result.coloring.assign(colors.host().begin(), colors.host().end());
  result.num_colors = count_colors(result.coloring);
  finish_gpu_result(result, dev, wall);
  return result;
}

}  // namespace coloring
