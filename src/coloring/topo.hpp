#pragma once
/// \file topo.hpp
/// Algorithm 4: the topology-driven GPU scheme (T-base / T-ldg).
///
/// One thread per vertex, every iteration, whether or not the vertex still
/// needs work — the straightforward GPU mapping. Each iteration launches
/// two kernels: speculative first-fit coloring of the still-uncolored
/// vertices, then conflict detection over the whole vertex set that
/// un-colors the lower-id endpoint of every conflicting edge. A `changed`
/// flag (reset by the host, read back each iteration) terminates the loop
/// once a round colors nothing new.

#include "coloring/gpu_common.hpp"

namespace speckle::coloring {

GpuResult topo_color(const graph::CsrGraph& g, const GpuOptions& opts = {});

}  // namespace speckle::coloring
