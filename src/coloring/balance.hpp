#pragma once
/// \file balance.hpp
/// Color balancing post-pass (extension; after Gjertsen/Jones/Plassmann's
/// PDR/PLF balancing heuristics the paper cites as related work).
///
/// For chromatic scheduling, class sizes determine per-superstep
/// parallelism: a giant class followed by tiny ones wastes hardware. This
/// pass moves vertices out of over-full classes into the least-loaded
/// permissible class without increasing the number of colors.

#include "coloring/coloring.hpp"
#include "graph/csr_graph.hpp"

namespace speckle::coloring {

struct BalanceOptions {
  /// Maximum rounds of moves (each round scans all vertices once).
  std::uint32_t max_rounds = 8;
  /// Stop once max class size is within this factor of ideal (n/k).
  double target_factor = 1.05;
};

struct BalanceResult {
  Coloring coloring;
  double balance_before = 0.0;  ///< color_balance() prior to the pass
  double balance_after = 0.0;
  std::uint32_t rounds = 0;
  std::uint64_t moves = 0;
};

/// Rebalance `coloring` (must be proper) on graph `g`. The result is proper
/// and uses at most the same number of colors.
BalanceResult balance_colors(const graph::CsrGraph& g, Coloring coloring,
                             const BalanceOptions& opts = {});

}  // namespace speckle::coloring
