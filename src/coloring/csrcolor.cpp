#include "coloring/csrcolor.hpp"

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace speckle::coloring {

using graph::eid_t;
using graph::vid_t;

std::uint64_t csrcolor_hash(std::uint64_t seed, std::uint32_t hash_index, vid_t v) {
  return support::mix64(seed ^ (static_cast<std::uint64_t>(hash_index + 1) << 40) ^ v);
}

namespace {

/// Ordering used for local-extremum tests: strict, total (ties by id).
bool hash_less(std::uint64_t ha, vid_t a, std::uint64_t hb, vid_t b) {
  return ha != hb ? ha < hb : a < b;
}

}  // namespace

CsrColorCpuResult csrcolor_cpu(const graph::CsrGraph& g, const CsrColorOptions& opts) {
  const vid_t n = g.num_vertices();
  const color_t sets_per_hash = opts.use_min_sets ? 2 : 1;
  CsrColorCpuResult result;
  result.coloring.assign(n, kUncolored);
  vid_t remaining = n;
  color_t base = 0;  // colors base+1 .. base+2N assigned this pass

  while (remaining > 0) {
    ++result.passes;
    SPECKLE_CHECK(result.passes <= 10000, "csrcolor_cpu failed to converge");
    // Snapshot of who was uncolored at pass start: extremum tests must use
    // a consistent view or two neighbors could both claim the same set.
    std::vector<std::uint8_t> uncolored(n);
    for (vid_t v = 0; v < n; ++v) uncolored[v] = result.coloring[v] == kUncolored;

    for (vid_t v = 0; v < n; ++v) {
      if (!uncolored[v]) continue;
      for (std::uint32_t k = 0; k < opts.num_hashes; ++k) {
        const std::uint64_t hv = csrcolor_hash(opts.seed, k, v);
        bool is_max = true;
        bool is_min = true;
        for (vid_t w : g.neighbors(v)) {
          if (!uncolored[w]) continue;
          const std::uint64_t hw = csrcolor_hash(opts.seed, k, w);
          if (hash_less(hv, v, hw, w)) is_max = false;
          if (hash_less(hw, w, hv, v)) is_min = false;
          if (!is_max && !is_min) break;
        }
        if (is_max) {
          result.coloring[v] = base + sets_per_hash * k + 1;
          --remaining;
          break;
        }
        if (opts.use_min_sets && is_min) {
          result.coloring[v] = base + sets_per_hash * k + 2;
          --remaining;
          break;
        }
      }
    }
    base += sets_per_hash * opts.num_hashes;
  }
  result.num_colors = count_colors(result.coloring);
  return result;
}

GpuResult csrcolor(const graph::CsrGraph& g, const CsrColorOptions& opts) {
  support::Timer wall;
  const vid_t n = g.num_vertices();
  GpuResult result;
  if (n == 0) return result;

  simt::Device dev(opts.device);
  DeviceGraph dg = upload_graph(dev, g);
  auto colors = dev.alloc<std::uint32_t>(n, "colors");
  colors.fill(kUncolored);
  // Pass-start snapshot of the uncolored predicate (the real implementation
  // tests color[w] == 0 against the pass-start color array; keeping an
  // explicit snapshot buffer models the same traffic).
  auto uncolored = dev.alloc<std::uint32_t>(n, "uncolored");
  auto counter = dev.alloc<std::uint32_t>(1, "counter");

  const simt::LaunchConfig cfg{(n + opts.block_size - 1) / opts.block_size,
                               opts.block_size};
  const color_t sets_per_hash = opts.use_min_sets ? 2 : 1;
  vid_t remaining = n;
  color_t base = 0;

  check::KernelSpec snapshot_spec;
  snapshot_spec.reads(colors).writes(uncolored);
  const check::KernelSpec mis_spec =
      graph_spec(dg, opts.use_ldg).reads(uncolored).writes(colors);
  check::KernelSpec count_spec;
  count_spec.reads(colors).atomics(counter);

  while (remaining > 0) {
    SPECKLE_CHECK(result.iterations < opts.max_iterations,
                  "csrcolor exceeded max_iterations");
    ++result.iterations;

    // Snapshot kernel: uncolored[v] = (color[v] == 0). Coalesced streams.
    dev.launch(cfg, "csrcolor_snapshot", snapshot_spec, [&](simt::Thread& t) {
      const auto v = static_cast<vid_t>(t.global_id());
      if (v >= n) return;
      const color_t c = t.ld(colors, v);
      t.compute(2);
      t.st(uncolored, v, c == kUncolored ? 1U : 0U);
    });

    // MIS kernel: join the first of the 2N sets whose extremum test passes.
    dev.launch(cfg, "csrcolor_mis", mis_spec, [&](simt::Thread& t) {
      const auto v = static_cast<vid_t>(t.global_id());
      if (v >= n) return;
      t.compute(2);
      if (t.ld(uncolored, v) == 0) return;
      const eid_t begin = opts.use_ldg ? t.ldg(dg.row, v) : t.ld(dg.row, v);
      const eid_t end = opts.use_ldg ? t.ldg(dg.row, v + 1) : t.ld(dg.row, v + 1);
      t.compute(2);
      for (std::uint32_t k = 0; k < opts.num_hashes; ++k) {
        const std::uint64_t hv = csrcolor_hash(opts.seed, k, v);
        t.compute(6);  // hash evaluation
        bool is_max = true;
        bool is_min = true;
        for (eid_t e = begin; e < end; ++e) {
          const vid_t w = opts.use_ldg ? t.ldg(dg.col, e) : t.ld(dg.col, e);
          if (t.ld(uncolored, w) == 0) {
            t.compute(2);
            continue;
          }
          const std::uint64_t hw = csrcolor_hash(opts.seed, k, w);
          t.compute(8);  // hash + two comparisons
          if (hash_less(hv, v, hw, w)) is_max = false;
          if (hash_less(hw, w, hv, v)) is_min = false;
          if (!is_max && !is_min) break;
        }
        t.compute(2);
        if (is_max) {
          t.st(colors, v, base + sets_per_hash * k + 1);
          return;
        }
        if (opts.use_min_sets && is_min) {
          t.st(colors, v, base + sets_per_hash * k + 2);
          return;
        }
      }
    });

    // Remaining-count reduction (thrust::count in the real code): one
    // coalesced pass over colors, one atomic per block.
    counter[0] = 0;
    dev.launch(cfg, "csrcolor_count", count_spec, [&](simt::Thread& t) {
      const auto v = static_cast<vid_t>(t.global_id());
      if (v >= n) return;
      t.ld(colors, v);
      t.compute(2);
      // Return value unused (the host rescans colors below), so the
      // discarding form keeps concurrently-executing blocks off the
      // re-execution path of the parallel wave executor.
      if (t.thread_in_block() == 0) t.atomic_add_discard(counter, 0, 1U);
    });
    dev.copy_to_host(sizeof(std::uint32_t));  // read the count

    remaining = 0;
    for (vid_t v = 0; v < n; ++v) {
      if (colors[v] == kUncolored) ++remaining;
    }
    base += sets_per_hash * opts.num_hashes;
  }

  result.coloring.assign(colors.host().begin(), colors.host().end());
  result.num_colors = count_colors(result.coloring);
  finish_gpu_result(result, dev, wall);
  return result;
}

}  // namespace speckle::coloring
