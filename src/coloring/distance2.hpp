#pragma once
/// \file distance2.hpp
/// Distance-2 vertex coloring (extension, after Çatalyürek et al. — the
/// paper's reference [10] treats D1 and D2 coloring with the same
/// speculative machinery).
///
/// A distance-2 coloring assigns distinct colors to any two vertices whose
/// graph distance is at most 2. It is THE coloring used to compress sparse
/// Jacobians/Hessians: structurally-orthogonal column groups of a sparse
/// matrix are exactly the color classes of a D2 coloring of its column
/// intersection structure.
///
/// Both a sequential greedy (colorMask over the two-hop neighborhood) and
/// the GPU-sim speculative topology-driven scheme are provided; conflicts
/// are detected over both hops with the id tie-break, so the same
/// termination argument as Algorithm 4 applies.

#include "coloring/gpu_common.hpp"

namespace speckle::coloring {

/// Validate a distance-2 coloring: every vertex colored, and no vertex
/// shares a color with any neighbor or neighbor-of-neighbor. O(sum deg^2).
VerifyResult verify_coloring_d2(const graph::CsrGraph& g, const Coloring& coloring);

struct SeqD2Result {
  Coloring coloring;
  color_t num_colors = 0;
  double wall_ms = 0.0;
};

/// Sequential greedy distance-2 coloring (first-fit over the two-hop
/// neighborhood, vertex-stamped colorMask).
SeqD2Result seq_greedy_d2(const graph::CsrGraph& g);

/// Speculative topology-driven distance-2 coloring on the simulated GPU.
GpuResult topo_color_d2(const graph::CsrGraph& g, const GpuOptions& opts = {});

}  // namespace speckle::coloring
