#include "coloring/gpu_common.hpp"

namespace speckle::coloring {

using graph::eid_t;
using graph::vid_t;

DeviceGraph upload_graph(simt::Device& dev, const graph::CsrGraph& g) {
  DeviceGraph dg;
  dg.num_vertices = g.num_vertices();
  dg.row = dev.alloc<eid_t>(g.num_vertices() + 1, "row");
  dg.col = dev.alloc<vid_t>(g.num_edges(), "col");
  dg.row.copy_from(g.row_offsets());
  dg.col.copy_from(g.col_indices());
  return dg;
}

void finish_gpu_result(GpuResult& result, const simt::Device& dev,
                       const support::Timer& wall) {
  result.report = dev.report();
  result.model_ms = result.report.ms(dev.config());
  result.wall_ms = wall.milliseconds();
  result.san = dev.san_report();
  result.prof = dev.prof_report();
  result.check = dev.check_report();
}

check::KernelSpec graph_spec(const DeviceGraph& dg, bool use_ldg) {
  check::KernelSpec spec;
  if (use_ldg) {
    spec.ldg(dg.row).ldg(dg.col);
  } else {
    spec.reads(dg.row).reads(dg.col);
  }
  return spec;
}

color_t device_first_fit(simt::Thread& t, const DeviceGraph& dg,
                         simt::Buffer<std::uint32_t>& colors, vid_t v,
                         bool use_ldg) {
  const eid_t begin = use_ldg ? t.ldg(dg.row, v) : t.ld(dg.row, v);
  const eid_t end = use_ldg ? t.ldg(dg.row, v + 1) : t.ld(dg.row, v + 1);
  t.compute(2);
  for (color_t base = 1;; base += 64) {
    std::uint64_t forbidden = 0;
    for (eid_t e = begin; e < end; ++e) {
      const vid_t w = use_ldg ? t.ldg(dg.col, e) : t.ld(dg.col, e);
      const color_t cw = t.ld(colors, w);
      if (cw >= base && cw < base + 64) forbidden |= 1ULL << (cw - base);
      t.compute(3);  // index arithmetic + range test + mask update
    }
    if (forbidden != ~0ULL) {
      color_t offset = 0;
      while (forbidden & (1ULL << offset)) ++offset;
      t.compute(2 + offset / 8);  // ffs + return
      return base + offset;
    }
    t.compute(2);  // window overflow: widen and rescan
  }
}

bool device_conflict(simt::Thread& t, const DeviceGraph& dg,
                     simt::Buffer<std::uint32_t>& colors, vid_t v, bool use_ldg) {
  const eid_t begin = use_ldg ? t.ldg(dg.row, v) : t.ld(dg.row, v);
  const eid_t end = use_ldg ? t.ldg(dg.row, v + 1) : t.ld(dg.row, v + 1);
  const color_t cv = t.ld(colors, v);
  t.compute(2);
  for (eid_t e = begin; e < end; ++e) {
    const vid_t w = use_ldg ? t.ldg(dg.col, e) : t.ld(dg.col, e);
    const color_t cw = t.ld(colors, w);
    t.compute(3);
    if (cv == cw && v < w) return true;
  }
  return false;
}

bool device_conflict_ldf(simt::Thread& t, const DeviceGraph& dg,
                         simt::Buffer<std::uint32_t>& colors, vid_t v,
                         bool use_ldg) {
  const eid_t begin = use_ldg ? t.ldg(dg.row, v) : t.ld(dg.row, v);
  const eid_t end = use_ldg ? t.ldg(dg.row, v + 1) : t.ld(dg.row, v + 1);
  const color_t cv = t.ld(colors, v);
  const eid_t deg_v = end - begin;
  t.compute(3);
  for (eid_t e = begin; e < end; ++e) {
    const vid_t w = use_ldg ? t.ldg(dg.col, e) : t.ld(dg.col, e);
    const color_t cw = t.ld(colors, w);
    t.compute(3);
    if (cv != cw) continue;
    const eid_t w_begin = use_ldg ? t.ldg(dg.row, w) : t.ld(dg.row, w);
    const eid_t w_end = use_ldg ? t.ldg(dg.row, w + 1) : t.ld(dg.row, w + 1);
    const eid_t deg_w = w_end - w_begin;
    t.compute(3);
    if (deg_v < deg_w || (deg_v == deg_w && v < w)) return true;
  }
  return false;
}

}  // namespace speckle::coloring
