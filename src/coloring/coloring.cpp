#include "coloring/coloring.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace speckle::coloring {

std::string VerifyResult::to_string() const {
  std::ostringstream oss;
  oss << (proper ? "proper" : "IMPROPER") << " coloring: " << num_colors
      << " colors, " << uncolored << " uncolored, " << conflicts << " conflicts";
  return oss.str();
}

VerifyResult verify_coloring(const graph::CsrGraph& g, const Coloring& coloring) {
  SPECKLE_CHECK(coloring.size() == g.num_vertices(),
                "coloring size must match vertex count");
  VerifyResult result;
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    if (coloring[v] == kUncolored) {
      ++result.uncolored;
      continue;
    }
    result.num_colors = std::max(result.num_colors, coloring[v]);
    for (graph::vid_t w : g.neighbors(v)) {
      if (coloring[v] == coloring[w]) ++result.conflicts;
    }
  }
  // Each conflicting edge was seen from both endpoints.
  result.conflicts /= 2;
  result.proper = result.uncolored == 0 && result.conflicts == 0;
  return result;
}

color_t count_colors(const Coloring& coloring) {
  color_t max_color = 0;
  for (color_t c : coloring) max_color = std::max(max_color, c);
  return max_color;
}

std::vector<graph::vid_t> color_histogram(const Coloring& coloring) {
  std::vector<graph::vid_t> histogram(count_colors(coloring) + 1, 0);
  for (color_t c : coloring) ++histogram[c];
  return histogram;
}

double color_balance(const Coloring& coloring) {
  const color_t k = count_colors(coloring);
  if (k == 0 || coloring.empty()) return 1.0;
  const auto histogram = color_histogram(coloring);
  graph::vid_t largest = 0;
  for (color_t c = 1; c <= k; ++c) largest = std::max(largest, histogram[c]);
  const double ideal = static_cast<double>(coloring.size()) / k;
  return static_cast<double>(largest) / ideal;
}

}  // namespace speckle::coloring
