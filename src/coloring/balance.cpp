#include "coloring/balance.hpp"

#include <algorithm>
#include <vector>

#include "support/check.hpp"

namespace speckle::coloring {

using graph::vid_t;

BalanceResult balance_colors(const graph::CsrGraph& g, Coloring coloring,
                             const BalanceOptions& opts) {
  SPECKLE_CHECK(verify_coloring(g, coloring).proper,
                "balance_colors requires a proper coloring");
  BalanceResult result;
  result.balance_before = color_balance(coloring);

  const color_t k = count_colors(coloring);
  if (k <= 1) {
    result.coloring = std::move(coloring);
    result.balance_after = result.balance_before;
    return result;
  }
  std::vector<vid_t> class_size(k + 1, 0);
  for (color_t c : coloring) ++class_size[c];
  const double ideal = static_cast<double>(coloring.size()) / k;

  std::vector<std::uint8_t> forbidden(k + 1, 0);
  for (std::uint32_t round = 0; round < opts.max_rounds; ++round) {
    const vid_t current_max = *std::max_element(class_size.begin() + 1, class_size.end());
    if (current_max <= ideal * opts.target_factor) break;
    ++result.rounds;
    std::uint64_t round_moves = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      const color_t cv = coloring[v];
      if (static_cast<double>(class_size[cv]) <= ideal) continue;
      // Find the least-loaded permissible class strictly better than cv's.
      std::fill(forbidden.begin(), forbidden.end(), 0);
      for (vid_t w : g.neighbors(v)) forbidden[coloring[w]] = 1;
      color_t best = cv;
      for (color_t c = 1; c <= k; ++c) {
        if (c == cv || forbidden[c]) continue;
        if (class_size[c] + 1 < class_size[best]) best = c;
      }
      if (best != cv) {
        --class_size[cv];
        ++class_size[best];
        coloring[v] = best;
        ++round_moves;
      }
    }
    result.moves += round_moves;
    if (round_moves == 0) break;
  }

  result.balance_after = color_balance(coloring);
  result.coloring = std::move(coloring);
  return result;
}

}  // namespace speckle::coloring
