#pragma once
/// \file gm_omp.hpp
/// Algorithm 2: the Gebremedhin–Manne speculative greedy scheme as a real
/// shared-memory OpenMP implementation (Çatalyürek et al.'s multicore
/// formulation): color optimistically in parallel, then detect conflicts
/// (`color[v] == color[w] && v < w`) and re-color the losers until the
/// worklist drains. This is the CPU-parallel reference the paper's related
/// work builds on; the GPU schemes in topo.hpp / data.hpp are its SIMT
/// adaptations.

#include <cstdint>

#include "coloring/coloring.hpp"
#include "graph/csr_graph.hpp"

namespace speckle::coloring {

struct GmOmpOptions {
  int num_threads = 0;  ///< 0 = OpenMP default
};

struct GmOmpResult {
  Coloring coloring;
  color_t num_colors = 0;
  std::uint32_t rounds = 0;
  std::uint64_t total_conflicts = 0;  ///< vertices re-queued over all rounds
  double wall_ms = 0.0;
};

GmOmpResult gm_openmp(const graph::CsrGraph& g, const GmOmpOptions& opts = {});

}  // namespace speckle::coloring
