#pragma once
/// \file csrcolor.hpp
/// The cuSPARSE csrcolor algorithm (Naumov et al.): Jones–Plassmann MIS
/// coloring accelerated with the *multi-hash* trick. Each pass evaluates N
/// hash functions per vertex; under hash k, a vertex that is a strict local
/// maximum among its uncolored neighbors joins independent set 2k, a strict
/// local minimum joins set 2k+1 — so one pass extracts 2N independent sets
/// and assigns 2N fresh colors. Fast (few passes, no conflicts to resolve)
/// but color-hungry: the sets are far from maximal independent sets of high
/// quality, which is exactly the weakness Figs 1/6 show (4.9x-23x more
/// colors than greedy).

#include <cstdint>

#include "coloring/gpu_common.hpp"

namespace speckle::coloring {

struct CsrColorOptions : GpuOptions {
  std::uint32_t num_hashes = 4;  ///< N; 2N independent sets per pass
  std::uint64_t seed = 0x9e3779b9;
  /// Extract local-minimum sets too (2N sets/pass). Disabling this with
  /// num_hashes = 1 degenerates the algorithm to classic Jones-Plassmann /
  /// Luby with fixed priorities (the "JP-gpu" scheme in the registry).
  bool use_min_sets = true;
};

GpuResult csrcolor(const graph::CsrGraph& g, const CsrColorOptions& opts = {});

/// Plain CPU reference of the same algorithm (tests cross-check the GPU-sim
/// kernels against it; identical hashes => identical coloring).
struct CsrColorCpuResult {
  Coloring coloring;
  color_t num_colors = 0;
  std::uint32_t passes = 0;
};
CsrColorCpuResult csrcolor_cpu(const graph::CsrGraph& g,
                               const CsrColorOptions& opts = {});

/// The hash used per (vertex, hash index): strict total order via
/// (hash value, vertex id) lexicographic comparison.
std::uint64_t csrcolor_hash(std::uint64_t seed, std::uint32_t hash_index,
                            graph::vid_t v);

}  // namespace speckle::coloring
