#pragma once
/// \file jp.hpp
/// Algorithm 3: the Jones–Plassmann maximal-independent-set coloring
/// (Luby-style random priorities), the algorithmic family csrcolor belongs
/// to. This is the CPU reference implementation, used for quality
/// comparisons and to cross-check the multi-hash variant.

#include <cstdint>

#include "coloring/coloring.hpp"
#include "graph/csr_graph.hpp"

namespace speckle::coloring {

struct JpOptions {
  std::uint64_t seed = 1;
  /// Draw fresh priorities every round (classic Luby) instead of fixing
  /// them once (Jones–Plassmann). Luby tends to need fewer rounds; JP
  /// assigns colors deterministically given the priorities.
  bool redraw_priorities = false;
};

struct JpResult {
  Coloring coloring;
  color_t num_colors = 0;
  std::uint32_t rounds = 0;
  double wall_ms = 0.0;
};

JpResult jones_plassmann(const graph::CsrGraph& g, const JpOptions& opts = {});

}  // namespace speckle::coloring
