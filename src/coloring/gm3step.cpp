#include "coloring/gm3step.hpp"

#include <vector>

#include "coloring/seq_greedy.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace speckle::coloring {

using graph::eid_t;
using graph::vid_t;

Gm3Result gm3step_color(const graph::CsrGraph& g, const Gm3Options& opts) {
  support::Timer wall;
  const vid_t n = g.num_vertices();
  Gm3Result result;
  if (n == 0) return result;
  SPECKLE_CHECK(opts.partition_size >= 1, "partition size must be positive");

  simt::Device dev(opts.device);
  DeviceGraph dg = upload_graph(dev, g);
  auto colors = dev.alloc<std::uint32_t>(n, "colors");
  auto conflicted = dev.alloc<std::uint32_t>(n, "conflicted");
  colors.fill(kUncolored);
  conflicted.fill(1);  // round 1 colors everything

  const vid_t num_partitions = (n + opts.partition_size - 1) / opts.partition_size;
  simt::LaunchConfig part_cfg{
      (num_partitions + opts.block_size - 1) / opts.block_size, opts.block_size};
  part_cfg.racy_visibility = true;  // partition coloring speculates via st_racy
  const simt::LaunchConfig vert_cfg{(n + opts.block_size - 1) / opts.block_size,
                                    opts.block_size};

  // The partition walker never routes R/C through the RO cache (Grosset's
  // kernel predates __ldg tuning), so both specs declare plain reads.
  const check::KernelSpec color_spec = graph_spec(dg, /*use_ldg=*/false)
                                           .reads(conflicted)
                                           .reads(colors)
                                           .racy(colors);
  const check::KernelSpec detect_spec =
      graph_spec(dg, /*use_ldg=*/false).reads(colors).writes(conflicted);

  // Step 2, repeated: color the conflicted vertices partition-by-partition
  // (one thread walks its whole partition — Grosset's mapping), then detect
  // cross-thread conflicts over all vertices.
  for (std::uint32_t round = 0; round < opts.gpu_rounds; ++round) {
    ++result.iterations;
    dev.launch(part_cfg, "gm3_color_partition", color_spec, [&](simt::Thread& t) {
      const auto p = static_cast<vid_t>(t.global_id());
      if (p >= num_partitions) return;
      const vid_t lo = p * opts.partition_size;
      const vid_t hi = std::min<vid_t>(lo + opts.partition_size, n);
      t.compute(3);
      // Local copy of the partition's colors: the thread must see its own
      // assignments immediately (within-partition neighbors), while other
      // partitions observe them only after the warp retires (st_racy).
      std::vector<color_t> local(hi - lo);
      for (vid_t v = lo; v < hi; ++v) local[v - lo] = t.ld(colors, v);
      for (vid_t v = lo; v < hi; ++v) {
        t.compute(2);
        if (t.ld(conflicted, v) == 0) continue;
        const eid_t begin = t.ld(dg.row, v);
        const eid_t end = t.ld(dg.row, v + 1);
        t.compute(2);
        color_t c = kUncolored;
        for (color_t base = 1; c == kUncolored; base += 64) {
          std::uint64_t forbidden = 0;
          for (eid_t e = begin; e < end; ++e) {
            const vid_t w = t.ld(dg.col, e);
            color_t cw;
            if (w >= lo && w < hi) {
              cw = local[w - lo];  // register/local-memory access
              t.compute(2);
            } else {
              cw = t.ld(colors, w);
            }
            if (cw >= base && cw < base + 64) forbidden |= 1ULL << (cw - base);
            t.compute(3);
          }
          if (forbidden != ~0ULL) {
            color_t offset = 0;
            while (forbidden & (1ULL << offset)) ++offset;
            c = base + offset;
          }
        }
        local[v - lo] = c;
        t.st_racy(colors, v, c);
      }
    });

    dev.launch(vert_cfg, "gm3_detect", detect_spec, [&](simt::Thread& t) {
      const auto v = static_cast<vid_t>(t.global_id());
      if (v >= n) return;
      t.compute(2);
      const bool conflict = device_conflict(t, dg, colors, v, /*use_ldg=*/false);
      t.st(conflicted, v, conflict ? 1U : 0U);
    });
  }

  // Step 3: ship the colors and conflict flags to the host, resolve the
  // remaining conflicts sequentially with first fit, and ship colors back.
  dev.copy_to_host(colors.byte_size() + conflicted.byte_size());
  result.coloring.assign(colors.host().begin(), colors.host().end());

  cpumodel::CpuModel cpu(opts.cpu);
  for (vid_t v = 0; v < n; ++v) {
    cpu.touch_read(&conflicted[v], sizeof(std::uint32_t));
    cpu.compute(1);
    if (conflicted[v] == 0) continue;
    ++result.cpu_resolved;
    cpu.touch_read(&g.row_offsets()[v], 2 * sizeof(eid_t));
    for (vid_t w : g.neighbors(v)) {
      cpu.touch_read(&w, sizeof(vid_t));
      cpu.touch_read(&result.coloring[w], sizeof(color_t));
      cpu.compute(3);
    }
    result.coloring[v] = first_fit_color(g, result.coloring, v);
    cpu.touch_write(&result.coloring[v], sizeof(color_t));
    cpu.compute(4);
  }
  result.cpu_ms = cpu.ms();
  // Charge the host work to the device timeline (converted to GPU cycles).
  const double gpu_cycles =
      cpu.cycles() / opts.cpu.clock_ghz * opts.device.core_clock_ghz;
  dev.charge_host_cycles(static_cast<std::uint64_t>(gpu_cycles));
  dev.copy_to_device(colors.byte_size());

  result.num_colors = count_colors(result.coloring);
  finish_gpu_result(result, dev, wall);
  return result;
}

}  // namespace speckle::coloring
