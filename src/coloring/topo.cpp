#include "coloring/topo.hpp"

#include "support/check.hpp"
#include "support/timer.hpp"

namespace speckle::coloring {

using graph::vid_t;

GpuResult topo_color(const graph::CsrGraph& g, const GpuOptions& opts) {
  support::Timer wall;
  const vid_t n = g.num_vertices();
  GpuResult result;
  if (n == 0) return result;

  simt::Device dev(opts.device);
  DeviceGraph dg = upload_graph(dev, g);
  auto colors = dev.alloc<std::uint32_t>(n, "colors");
  auto colored = dev.alloc<std::uint32_t>(n, "colored");
  auto changed = dev.alloc<std::uint32_t>(1, "changed");
  colors.fill(kUncolored);
  colored.fill(0);

  const simt::LaunchConfig cfg{(n + opts.block_size - 1) / opts.block_size,
                               opts.block_size};
  simt::LaunchConfig racy_cfg = cfg;
  racy_cfg.racy_visibility = true;  // the color kernel speculates via st_racy

  const check::KernelSpec color_spec = graph_spec(dg, opts.use_ldg)
                                           .reads(colors)
                                           .racy(colors)
                                           .reads(colored)
                                           .writes(colored)
                                           .writes(changed);
  const check::KernelSpec detect_spec =
      graph_spec(dg, opts.use_ldg).reads(colors).writes(colored);

  for (std::uint32_t iter = 0; iter < opts.max_iterations; ++iter) {
    ++result.iterations;
    changed[0] = 0;
    dev.copy_to_device(sizeof(std::uint32_t));  // cudaMemset of the flag

    // Algorithm 4 lines 4-14: color the still-uncolored vertices
    // speculatively (warp-lockstep races produce the conflicts).
    dev.launch(racy_cfg, "topo_color", color_spec, [&](simt::Thread& t) {
      const auto v = static_cast<vid_t>(t.global_id());
      if (v >= n) return;
      t.compute(2);
      if (t.ld(colored, v) != 0) return;
      const color_t c = device_first_fit(t, dg, colors, v, opts.use_ldg);
      t.st_racy(colors, v, c);
      t.st(colored, v, 1U);
      t.st(changed, 0, 1U);
    });

    // Lines 15-21: detect conflicts over the entire vertex set (this is
    // the topology-driven scheme's work-inefficiency) and un-color losers.
    dev.launch(cfg, "topo_detect", detect_spec, [&](simt::Thread& t) {
      const auto v = static_cast<vid_t>(t.global_id());
      if (v >= n) return;
      t.compute(2);
      if (device_conflict(t, dg, colors, v, opts.use_ldg)) {
        t.st(colored, v, 0U);
      }
    });

    dev.copy_to_host(sizeof(std::uint32_t));  // read the changed flag
    if (changed[0] == 0) break;
  }

  result.coloring.assign(colors.host().begin(), colors.host().end());
  // Vertices whose colored flag was cleared on the final conflict pass hold
  // stale colors; Algorithm 4 exits only when a full round colors nothing,
  // so at that point every flag is set and every color is final.
  SPECKLE_CHECK(changed[0] == 0, "topo_color exceeded max_iterations");
  result.num_colors = count_colors(result.coloring);
  finish_gpu_result(result, dev, wall);
  return result;
}

}  // namespace speckle::coloring
