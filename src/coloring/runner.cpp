#include "coloring/runner.hpp"

#include "coloring/csrcolor.hpp"
#include "coloring/data.hpp"
#include "coloring/gm3step.hpp"
#include "coloring/gm_omp.hpp"
#include "coloring/jp.hpp"
#include "coloring/seq_greedy.hpp"
#include "coloring/topo.hpp"
#include "coloring/warp.hpp"
#include "support/check.hpp"

namespace speckle::coloring {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kSequential: return "sequential";
    case Scheme::kGm3Step: return "3-step-GM";
    case Scheme::kTopoBase: return "T-base";
    case Scheme::kTopoLdg: return "T-ldg";
    case Scheme::kDataBase: return "D-base";
    case Scheme::kDataLdg: return "D-ldg";
    case Scheme::kCsrColor: return "csrcolor";
    case Scheme::kDataAtomic: return "D-atomic";
    case Scheme::kDataWarp: return "D-warp";
    case Scheme::kDataLdf: return "D-ldf";
    case Scheme::kJpGpu: return "JP-gpu";
    case Scheme::kJonesPlassmann: return "JP-cpu";
    case Scheme::kGmOpenMp: return "GM-omp";
  }
  return "?";
}

Scheme scheme_from_name(const std::string& name) {
  for (Scheme s : all_schemes()) {
    if (name == scheme_name(s)) return s;
  }
  SPECKLE_CHECK(false, "unknown scheme '" + name + "'");
  return Scheme::kSequential;
}

bool scheme_uses_gpu(Scheme s) {
  switch (s) {
    case Scheme::kSequential:
    case Scheme::kJonesPlassmann:
    case Scheme::kGmOpenMp:
      return false;
    default:
      return true;
  }
}

const std::vector<Scheme>& paper_schemes() {
  static const std::vector<Scheme> schemes = {
      Scheme::kSequential, Scheme::kGm3Step,  Scheme::kTopoBase, Scheme::kTopoLdg,
      Scheme::kDataBase,   Scheme::kDataLdg, Scheme::kCsrColor,
  };
  return schemes;
}

const std::vector<Scheme>& all_schemes() {
  static const std::vector<Scheme> schemes = {
      Scheme::kSequential, Scheme::kGm3Step,     Scheme::kTopoBase,
      Scheme::kTopoLdg,    Scheme::kDataBase,    Scheme::kDataLdg,
      Scheme::kCsrColor,   Scheme::kDataAtomic,  Scheme::kDataWarp,
      Scheme::kDataLdf,    Scheme::kJpGpu,       Scheme::kJonesPlassmann,
      Scheme::kGmOpenMp,
  };
  return schemes;
}

namespace {

GpuOptions make_gpu_options(const RunOptions& opts, bool use_ldg) {
  GpuOptions gpu;
  gpu.block_size = opts.block_size;
  gpu.use_ldg = use_ldg;
  gpu.device = opts.device;
  gpu.max_iterations = opts.max_iterations;
  return gpu;
}

}  // namespace

RunResult run_scheme(Scheme s, const graph::CsrGraph& g, const RunOptions& opts) {
  RunResult result;
  result.scheme = s;
  if (opts.num_devices > 1) {
    SPECKLE_CHECK(s == Scheme::kDataBase || s == Scheme::kDataLdg ||
                      s == Scheme::kDataAtomic,
                  std::string(scheme_name(s)) +
                      " has no multi-device path; --devices>1 supports "
                      "D-base, D-ldg and D-atomic");
    multidev::MultiDevOptions mo;
    mo.num_devices = opts.num_devices;
    mo.partitioner = opts.partitioner;
    mo.block_size = opts.block_size;
    mo.use_ldg = s == Scheme::kDataLdg;
    mo.scan_push = s != Scheme::kDataAtomic;
    mo.max_rounds = opts.max_iterations;
    mo.seed = opts.seed;
    mo.device = opts.device;
    multidev::MultiDevResult r = multidev::multidev_color(g, mo);
    result.coloring = std::move(r.coloring);
    result.model_ms = r.model_ms;
    result.wall_ms = r.wall_ms;
    result.iterations = r.rounds;
    result.report = std::move(r.fleet_report);
    result.san = std::move(r.san);
    result.prof = std::move(r.prof);
    result.check = std::move(r.check);
    result.devices = std::move(r.devices);
    result.cut_edges = r.cut_edges;
    result.exchanged_colors = r.exchanged_colors;
    result.exchange_rounds = std::move(r.exchange_rounds);
    result.hidden_ms = r.hidden_ms;
    result.num_colors = count_colors(result.coloring);
    const VerifyResult verify = verify_coloring(g, result.coloring);
    SPECKLE_CHECK(verify.proper, std::string(scheme_name(s)) +
                                     " (multi-device) produced an improper "
                                     "coloring: " +
                                     verify.to_string());
    return result;
  }
  switch (s) {
    case Scheme::kSequential: {
      SeqOptions seq;
      seq.seed = opts.seed;
      seq.cpu = opts.cpu;
      const SeqResult r = seq_greedy(g, seq);
      result.coloring = std::move(r.coloring);
      result.model_ms = r.model_ms;
      result.wall_ms = r.wall_ms;
      result.iterations = 1;
      break;
    }
    case Scheme::kGm3Step: {
      Gm3Options o;
      static_cast<GpuOptions&>(o) = make_gpu_options(opts, false);
      o.cpu = opts.cpu;
      Gm3Result r = gm3step_color(g, o);
      result.coloring = std::move(r.coloring);
      result.model_ms = r.model_ms;
      result.wall_ms = r.wall_ms;
      result.iterations = r.iterations;
      result.report = std::move(r.report);
      result.san = std::move(r.san);
      result.prof = std::move(r.prof);
      result.check = std::move(r.check);
      break;
    }
    case Scheme::kTopoBase:
    case Scheme::kTopoLdg: {
      GpuResult r = topo_color(g, make_gpu_options(opts, s == Scheme::kTopoLdg));
      result.coloring = std::move(r.coloring);
      result.model_ms = r.model_ms;
      result.wall_ms = r.wall_ms;
      result.iterations = r.iterations;
      result.report = std::move(r.report);
      result.san = std::move(r.san);
      result.prof = std::move(r.prof);
      result.check = std::move(r.check);
      break;
    }
    case Scheme::kDataBase:
    case Scheme::kDataLdg:
    case Scheme::kDataAtomic:
    case Scheme::kDataWarp:
    case Scheme::kDataLdf: {
      DataOptions o;
      static_cast<GpuOptions&>(o) = make_gpu_options(opts, s == Scheme::kDataLdg);
      o.scan_push = s != Scheme::kDataAtomic;
      o.ldf_tiebreak = s == Scheme::kDataLdf;
      GpuResult r = s == Scheme::kDataWarp ? data_warp_color(g, o) : data_color(g, o);
      result.coloring = std::move(r.coloring);
      result.model_ms = r.model_ms;
      result.wall_ms = r.wall_ms;
      result.iterations = r.iterations;
      result.report = std::move(r.report);
      result.san = std::move(r.san);
      result.prof = std::move(r.prof);
      result.check = std::move(r.check);
      break;
    }
    case Scheme::kCsrColor:
    case Scheme::kJpGpu: {
      CsrColorOptions o;
      static_cast<GpuOptions&>(o) = make_gpu_options(opts, false);
      o.seed = opts.seed * 0x9e3779b97f4a7c15ULL + 1;
      if (s == Scheme::kJpGpu) {
        o.num_hashes = 1;
        o.use_min_sets = false;
      }
      GpuResult r = csrcolor(g, o);
      result.coloring = std::move(r.coloring);
      result.model_ms = r.model_ms;
      result.wall_ms = r.wall_ms;
      result.iterations = r.iterations;
      result.report = std::move(r.report);
      result.san = std::move(r.san);
      result.prof = std::move(r.prof);
      result.check = std::move(r.check);
      break;
    }
    case Scheme::kJonesPlassmann: {
      JpOptions o;
      o.seed = opts.seed;
      JpResult r = jones_plassmann(g, o);
      result.coloring = std::move(r.coloring);
      result.wall_ms = r.wall_ms;
      result.iterations = r.rounds;
      break;
    }
    case Scheme::kGmOpenMp: {
      GmOmpResult r = gm_openmp(g);
      result.coloring = std::move(r.coloring);
      result.wall_ms = r.wall_ms;
      result.iterations = r.rounds;
      break;
    }
  }
  result.num_colors = count_colors(result.coloring);
  const VerifyResult verify = verify_coloring(g, result.coloring);
  SPECKLE_CHECK(verify.proper, std::string(scheme_name(s)) +
                                   " produced an improper coloring: " +
                                   verify.to_string());
  return result;
}

}  // namespace speckle::coloring
