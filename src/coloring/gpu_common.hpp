#pragma once
/// \file gpu_common.hpp
/// Shared pieces of the GPU-sim coloring schemes: the device-resident CSR
/// graph, the common launch options/results, and the device routines every
/// kernel is built from (first-fit color search, conflict test).

#include <cstdint>

#include "coloring/coloring.hpp"
#include "graph/csr_graph.hpp"
#include "simt/device.hpp"
#include "support/timer.hpp"

namespace speckle::coloring {

/// CSR arrays uploaded to the simulated device. The graph is stored exactly
/// as Fig 2: row offsets R (n+1) and column indices C (m).
struct DeviceGraph {
  simt::Buffer<graph::eid_t> row;
  simt::Buffer<graph::vid_t> col;
  graph::vid_t num_vertices = 0;
};

/// Allocate and fill the device CSR arrays. The initial upload is *not*
/// charged to the timeline — the paper times only the computation part —
/// call dev.copy_to_device(...) explicitly where a scheme's mid-run
/// transfers do count.
DeviceGraph upload_graph(simt::Device& dev, const graph::CsrGraph& g);

/// Options shared by every GPU-sim scheme.
struct GpuOptions {
  std::uint32_t block_size = 128;  ///< the paper's default (Fig 8)
  bool use_ldg = false;            ///< route R and C through the RO cache
  std::uint32_t max_iterations = 100000;
  simt::DeviceConfig device = simt::DeviceConfig::k20c();
};

struct GpuResult {
  Coloring coloring;
  color_t num_colors = 0;
  std::uint32_t iterations = 0;
  simt::DeviceReport report;  ///< kernel log, transfers, timeline
  double model_ms = 0.0;      ///< report.total_cycles in milliseconds
  double wall_ms = 0.0;       ///< host wall clock of the simulation itself
  san::Report san;      ///< sanitizer findings (empty unless
                              ///< GpuOptions::device.sanitize was set)
  prof::Report prof;    ///< profiler counters/timeline (empty unless
                              ///< GpuOptions::device.profile was set)
  check::Report check;  ///< static launch-plan findings (empty unless
                              ///< GpuOptions::device.check was set)
};

/// Fill the result fields every scheme reports identically: the device
/// report, the model/wall-clock milliseconds, the sanitizer findings and
/// the static checker's verdict over the accumulated launch plan.
void finish_gpu_result(GpuResult& result, const simt::Device& dev,
                       const support::Timer& wall);

/// Start a KernelSpec with the adjacency reads every device routine
/// (device_first_fit / device_conflict*) performs: R and C, through the RO
/// cache when `use_ldg` is set and plain loads otherwise.
check::KernelSpec graph_spec(const DeviceGraph& dg, bool use_ldg);

/// Device-side first fit: smallest color >= 1 not used by any neighbor of
/// v, scanning a 64-color bitmask window and widening on overflow (the GPU
/// adaptation of Algorithm 1 line 6 — a colorMask array per thread does not
/// fit in registers). Adjacency (R, C) reads honor `use_ldg`; neighbor
/// colors always use plain loads (the array is written during the kernel).
color_t device_first_fit(simt::Thread& t, const DeviceGraph& dg,
                         simt::Buffer<std::uint32_t>& colors, graph::vid_t v,
                         bool use_ldg);

/// Device-side conflict test (Algorithms 4/5): true when some neighbor w
/// has color[w] == color[v] and v < w (the lower id loses and re-colors).
bool device_conflict(simt::Thread& t, const DeviceGraph& dg,
                     simt::Buffer<std::uint32_t>& colors, graph::vid_t v,
                     bool use_ldg);

/// Largest-degree-first variant of the conflict test (D-ldf extension):
/// the LOWER-degree endpoint loses, ids break degree ties. Loads both
/// endpoints' row offsets (the extra traffic is the price of the heuristic).
bool device_conflict_ldf(simt::Thread& t, const DeviceGraph& dg,
                         simt::Buffer<std::uint32_t>& colors, graph::vid_t v,
                         bool use_ldg);

}  // namespace speckle::coloring
