#pragma once
/// \file suite.hpp
/// The paper's benchmark suite (Table I), reproducible at reduced scale.
///
/// rmat-er and rmat-g use the paper's actual generator and parameters.
/// The four University of Florida matrices are replaced by structural
/// twins built from their published statistics (DESIGN.md §2):
///
///   thermal2   — 3-D 7-point stencil + 0.5 defect edges/vertex
///                (FEM thermal problem: grid-like, avg 6.99, max 11)
///   atmosmodd  — exact 3-D 7-point stencil
///                (atmospheric model: avg 6.94, variance 0.06)
///   Hamrle3    — locality-windowed random graph, initiated degree U[1,7]
///                (circuit: avg 7.62, variance 7.21)
///   G3_circuit — 2-D 5-point stencil + 0.42 defect edges/vertex
///                (circuit: avg 4.83, max 6)
///
/// `denom` divides the vertex count (power of two; 1 = paper scale). The
/// per-vertex degree structure is scale-invariant, so relative results
/// hold across scales (checked in EXPERIMENTS.md).

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/genspec.hpp"

namespace speckle::graph {

/// The statistics Table I publishes for each suite graph (at denom == 1).
struct PaperStats {
  vid_t num_vertices;
  std::uint64_t num_edges;  ///< directed CSR entries
  vid_t min_degree;
  vid_t max_degree;
  double avg_degree;
  double degree_variance;
};

struct SuiteEntry {
  std::string name;
  std::string domain;  ///< Table I "Application" column
  bool spd;            ///< Table I "s.p.d" column
  PaperStats paper;    ///< published statistics, for side-by-side reporting
};

/// The six suite graphs in Table I order.
const std::vector<SuiteEntry>& suite_entries();

/// Entry lookup by name; aborts on unknown name.
const SuiteEntry& suite_entry(const std::string& name);

/// The GeneratorSpec a suite graph is built from: model, scaled dimensions
/// and the name's historical sub-seed offset, normalized. The spec's seed
/// already embeds the per-name offset (thermal2 seed+1, Hamrle3 seed+2,
/// G3_circuit seed+3) that keeps the suite's RNG streams independent.
/// `denom` must be a power of two >= 1; seed must be nonzero.
GeneratorSpec suite_generator_spec(const std::string& name,
                                   std::uint32_t denom, std::uint64_t seed);

/// Build one suite graph. `denom` must be a power of two >= 1.
/// Deterministic for a given (name, denom, seed) — and byte-stable across
/// releases: the suite draws through generate_edges_serial, the legacy
/// single-stream path every checked-in golden depends on.
CsrGraph make_suite_graph(const std::string& name, std::uint32_t denom,
                          std::uint64_t seed = 0x5eed);

}  // namespace speckle::graph
