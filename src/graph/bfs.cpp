#include "graph/bfs.hpp"

#include <deque>

#include "support/check.hpp"

namespace speckle::graph {

std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, vid_t source) {
  SPECKLE_CHECK(source < g.num_vertices(), "bfs source out of range");
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::deque<vid_t> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    const vid_t v = frontier.front();
    frontier.pop_front();
    for (vid_t w : g.neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

std::vector<vid_t> neighborhood(const CsrGraph& g, vid_t source, std::uint32_t radius) {
  const auto dist = bfs_distances(g, source);
  std::vector<vid_t> result;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (v != source && dist[v] <= radius) result.push_back(v);
  }
  return result;
}

std::uint32_t eccentricity(const CsrGraph& g, vid_t source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d != kUnreachable && d > ecc) ecc = d;
  }
  return ecc;
}

}  // namespace speckle::graph
