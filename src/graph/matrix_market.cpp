#include "graph/matrix_market.hpp"

#include <fstream>
#include <sstream>

#include "graph/builder.hpp"
#include "support/check.hpp"

namespace speckle::graph {
namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

CsrGraph read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  SPECKLE_CHECK(in.good(), "cannot open matrix market file '" + path + "'");
  return read_matrix_market(in, path);
}

CsrGraph read_matrix_market(std::istream& in, const std::string& name) {
  std::string line;
  SPECKLE_CHECK(static_cast<bool>(std::getline(in, line)), name + ": empty file");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  SPECKLE_CHECK(banner == "%%MatrixMarket", name + ": missing %%MatrixMarket banner");
  SPECKLE_CHECK(lower(object) == "matrix", name + ": only 'matrix' objects supported");
  SPECKLE_CHECK(lower(format) == "coordinate",
                name + ": only 'coordinate' format supported");
  field = lower(field);
  const bool has_values = field != "pattern";
  SPECKLE_CHECK(field == "pattern" || field == "real" || field == "integer" ||
                    field == "complex",
                name + ": unsupported field '" + field + "'");
  symmetry = lower(symmetry);
  SPECKLE_CHECK(symmetry == "general" || symmetry == "symmetric" ||
                    symmetry == "skew-symmetric" || symmetry == "hermitian",
                name + ": unsupported symmetry '" + symmetry + "'");

  // Skip comments, read the size line.
  std::uint64_t rows = 0, cols = 0, entries = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream size_line(line);
    SPECKLE_CHECK(static_cast<bool>(size_line >> rows >> cols >> entries),
                  name + ": malformed size line");
    break;
  }
  SPECKLE_CHECK(rows > 0 && rows == cols,
                name + ": coloring requires a square matrix");
  SPECKLE_CHECK(rows <= kInvalidVertex, name + ": too many rows for 32-bit ids");

  EdgeList edges;
  edges.reserve(entries);
  std::uint64_t seen = 0;
  while (seen < entries && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    std::uint64_t r = 0, c = 0;
    SPECKLE_CHECK(static_cast<bool>(entry >> r >> c),
                  name + ": malformed entry line '" + line + "'");
    if (has_values) {
      // Values are present but irrelevant to structure; don't validate them
      // beyond the indices (complex matrices carry two reals).
    }
    SPECKLE_CHECK(r >= 1 && r <= rows && c >= 1 && c <= cols,
                  name + ": entry index out of range");
    edges.push_back({static_cast<vid_t>(r - 1), static_cast<vid_t>(c - 1)});
    ++seen;
  }
  SPECKLE_CHECK(seen == entries, name + ": fewer entries than the size line promised");
  // build_csr symmetrizes (covers general *and* symmetric storage), removes
  // the diagonal and duplicates.
  return build_csr(static_cast<vid_t>(rows), std::move(edges));
}

void write_matrix_market(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  SPECKLE_CHECK(out.good(), "cannot open '" + path + "' for writing");
  write_matrix_market(g, out);
}

void write_matrix_market(const CsrGraph& g, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate pattern symmetric\n";
  std::uint64_t undirected = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (vid_t w : g.neighbors(v)) {
      if (w < v) ++undirected;
    }
  }
  out << g.num_vertices() << ' ' << g.num_vertices() << ' ' << undirected << '\n';
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (vid_t w : g.neighbors(v)) {
      if (w < v) out << (v + 1) << ' ' << (w + 1) << '\n';
    }
  }
}

}  // namespace speckle::graph
