#include "graph/matrix_market.hpp"

#include <fstream>
#include <sstream>

#include "graph/builder.hpp"
#include "support/check.hpp"

namespace speckle::graph {
namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

void require(bool ok, const std::string& message) {
  if (!ok) throw MatrixMarketError(message);
}

}  // namespace

CsrGraph read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open matrix market file '" + path + "'");
  return read_matrix_market(in, path);
}

CsrGraph read_matrix_market(std::istream& in, const std::string& name) {
  std::string line;
  require(static_cast<bool>(std::getline(in, line)), name + ": empty file");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  require(banner == "%%MatrixMarket", name + ": missing %%MatrixMarket banner");
  require(!symmetry.empty(),
          name + ": truncated banner (expected '%%MatrixMarket object format "
                 "field symmetry')");
  require(lower(object) == "matrix", name + ": only 'matrix' objects supported");
  require(lower(format) == "coordinate",
          name + ": only 'coordinate' format supported");
  field = lower(field);
  const bool has_values = field != "pattern";
  require(field == "pattern" || field == "real" || field == "integer" ||
              field == "complex",
          name + ": unsupported field '" + field + "'");
  symmetry = lower(symmetry);
  require(symmetry == "general" || symmetry == "symmetric" ||
              symmetry == "skew-symmetric" || symmetry == "hermitian",
          name + ": unsupported symmetry '" + symmetry + "'");

  // Skip comments, read the size line.
  std::uint64_t rows = 0, cols = 0, entries = 0;
  bool have_size = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream size_line(line);
    require(static_cast<bool>(size_line >> rows >> cols >> entries),
            name + ": malformed size line '" + line + "'");
    have_size = true;
    break;
  }
  require(have_size, name + ": missing size line (file ends after the header)");
  require(rows > 0 && rows == cols, name + ": coloring requires a square matrix");
  require(rows <= kInvalidVertex, name + ": too many rows for 32-bit ids");
  // rows and cols both fit in 32 bits here, so the product cannot wrap.
  require(entries <= rows * cols,
          name + ": size line promises " + std::to_string(entries) +
              " entries, more than a " + std::to_string(rows) + "x" +
              std::to_string(cols) + " matrix can hold");

  EdgeList edges;
  // Reserve conservatively: `entries` is attacker-controlled until the
  // lines are actually read, so don't let a dishonest size line allocate
  // gigabytes up front.
  edges.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(entries, std::uint64_t{1} << 22)));
  std::uint64_t seen = 0;
  while (seen < entries && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    std::uint64_t r = 0, c = 0;
    require(static_cast<bool>(entry >> r >> c),
            name + ": malformed entry line '" + line + "'");
    if (has_values) {
      // Values are present but irrelevant to structure; don't validate them
      // beyond the indices (complex matrices carry two reals).
    }
    require(r >= 1 && r <= rows && c >= 1 && c <= cols,
            name + ": entry index out of range");
    edges.push_back({static_cast<vid_t>(r - 1), static_cast<vid_t>(c - 1)});
    ++seen;
  }
  require(seen == entries, name + ": fewer entries than the size line promised (" +
                               std::to_string(seen) + " of " +
                               std::to_string(entries) + ")");
  // build_csr symmetrizes (covers general *and* symmetric storage), removes
  // the diagonal and duplicates.
  return build_csr(static_cast<vid_t>(rows), std::move(edges));
}

void write_matrix_market(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  SPECKLE_CHECK(out.good(), "cannot open '" + path + "' for writing");
  write_matrix_market(g, out);
}

void write_matrix_market(const CsrGraph& g, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate pattern symmetric\n";
  std::uint64_t undirected = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (vid_t w : g.neighbors(v)) {
      if (w < v) ++undirected;
    }
  }
  out << g.num_vertices() << ' ' << g.num_vertices() << ' ' << undirected << '\n';
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (vid_t w : g.neighbors(v)) {
      if (w < v) out << (v + 1) << ' ' << (w + 1) << '\n';
    }
  }
}

}  // namespace speckle::graph
