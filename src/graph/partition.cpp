#include "graph/partition.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace speckle::graph {

const char* partition_kind_name(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kContiguous: return "contiguous";
    case PartitionKind::kHash: return "hash";
  }
  return "?";
}

PartitionKind partition_kind_from_name(const std::string& name) {
  if (name == "contiguous") return PartitionKind::kContiguous;
  if (name == "hash") return PartitionKind::kHash;
  SPECKLE_CHECK(false, "unknown partitioner '" + name + "' (contiguous, hash)");
  return PartitionKind::kContiguous;
}

Partition make_partition(const CsrGraph& g, std::uint32_t parts,
                         PartitionKind kind, std::uint64_t seed) {
  SPECKLE_CHECK(parts >= 1, "partition needs at least one part");
  SPECKLE_CHECK(seed != 0,
                "seed 0 is reserved (it collapses the repo's derived-seed "
                "products); pass a nonzero seed");
  const vid_t n = g.num_vertices();
  Partition p;
  p.kind = kind;
  p.num_parts = parts;
  p.owner.resize(n);
  p.local_index.assign(n, kInvalidVertex);
  p.shards.resize(parts);

  for (vid_t v = 0; v < n; ++v) {
    const std::uint32_t k =
        kind == PartitionKind::kContiguous
            ? static_cast<std::uint32_t>(static_cast<std::uint64_t>(v) * parts / n)
            : static_cast<std::uint32_t>(
                  support::mix64(seed ^ (0x9e3779b97f4a7c15ULL * (v + 1ULL))) %
                  parts);
    p.owner[v] = k;
    p.local_index[v] = static_cast<vid_t>(p.shards[k].owned.size());
    p.shards[k].owned.push_back(v);  // ascending: v iterates in global order
  }

  // Ghost discovery + local CSR per shard. `g2l` maps global ids to the
  // current shard's local ids; only the entries a shard touches are set and
  // they are reset before the next shard reuses the array.
  std::vector<vid_t> g2l(n, kInvalidVertex);
  for (std::uint32_t k = 0; k < parts; ++k) {
    Shard& s = p.shards[k];
    for (const vid_t v : s.owned) {
      for (const vid_t w : g.neighbors(v)) {
        if (p.owner[w] != k && g2l[w] == kInvalidVertex) {
          g2l[w] = 0;  // mark; slot assigned after the sort below
          s.ghosts.push_back(w);
        }
      }
    }
    std::sort(s.ghosts.begin(), s.ghosts.end());
    for (const vid_t v : s.owned) g2l[v] = p.local_index[v];
    for (std::size_t j = 0; j < s.ghosts.size(); ++j) {
      g2l[s.ghosts[j]] = s.num_owned() + static_cast<vid_t>(j);
    }

    std::vector<eid_t> row(static_cast<std::size_t>(s.num_local()) + 1, 0);
    std::vector<vid_t> col;
    for (vid_t i = 0; i < s.num_owned(); ++i) {
      for (const vid_t w : g.neighbors(s.owned[i])) {
        col.push_back(g2l[w]);
        if (p.owner[w] != k) ++s.cut_edges;
      }
      row[i + 1] = static_cast<eid_t>(col.size());
    }
    // Ghost rows are empty: repeat the final offset.
    for (vid_t i = s.num_owned(); i < s.num_local(); ++i) row[i + 1] = row[i];
    s.local = CsrGraph(std::move(row), std::move(col));
    p.cut_edges += s.cut_edges;

    for (const vid_t v : s.owned) g2l[v] = kInvalidVertex;
    for (const vid_t w : s.ghosts) g2l[w] = kInvalidVertex;
  }
  return p;
}

void Partition::validate(const CsrGraph& g) const {
  const vid_t n = g.num_vertices();
  SPECKLE_CHECK(owner.size() == n && local_index.size() == n,
                "partition arrays must cover every vertex");
  SPECKLE_CHECK(shards.size() == num_parts, "one shard per part");
  std::uint64_t owned_total = 0, cut_total = 0;
  for (std::uint32_t k = 0; k < num_parts; ++k) {
    const Shard& s = shards[k];
    owned_total += s.owned.size();
    cut_total += s.cut_edges;
    SPECKLE_CHECK(s.local.num_vertices() == s.num_local(),
                  "local CSR must have one row per owned+ghost vertex");
    SPECKLE_CHECK(std::is_sorted(s.owned.begin(), s.owned.end()) &&
                      std::is_sorted(s.ghosts.begin(), s.ghosts.end()),
                  "owned and ghost lists must be ascending");
    for (vid_t i = 0; i < s.num_owned(); ++i) {
      const vid_t v = s.owned[i];
      SPECKLE_CHECK(owner[v] == k && local_index[v] == i,
                    "owner/local_index must agree with the shard lists");
      // The local adjacency must mirror the global one, entry by entry.
      const auto global_adj = g.neighbors(v);
      const auto local_adj = s.local.neighbors(i);
      SPECKLE_CHECK(global_adj.size() == local_adj.size(),
                    "local degree must match global degree");
      for (std::size_t e = 0; e < global_adj.size(); ++e) {
        const vid_t gw = global_adj[e];
        const vid_t lw = local_adj[e];
        if (owner[gw] == k) {
          SPECKLE_CHECK(lw < s.num_owned() && s.owned[lw] == gw,
                        "owned neighbor must map to its owned local id");
        } else {
          SPECKLE_CHECK(lw >= s.num_owned() &&
                            s.ghosts[lw - s.num_owned()] == gw,
                        "cross-partition neighbor must map to a ghost slot");
        }
      }
    }
    for (const vid_t w : s.ghosts) {
      SPECKLE_CHECK(owner[w] != k, "a shard never ghosts its own vertex");
    }
    // Every ghost row must be empty.
    for (vid_t i = s.num_owned(); i < s.num_local(); ++i) {
      SPECKLE_CHECK(s.local.degree(i) == 0, "ghost rows carry no adjacency");
    }
  }
  SPECKLE_CHECK(owned_total == n, "every vertex owned exactly once");
  SPECKLE_CHECK(cut_total == cut_edges, "cut_edges must sum over shards");
}

}  // namespace speckle::graph
