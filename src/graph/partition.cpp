#include "graph/partition.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace speckle::graph {

const char* partition_kind_name(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kContiguous: return "contiguous";
    case PartitionKind::kHash: return "hash";
    case PartitionKind::kBfsBlocks: return "bfs";
  }
  return "?";
}

PartitionKind partition_kind_from_name(const std::string& name) {
  if (name == "contiguous") return PartitionKind::kContiguous;
  if (name == "hash") return PartitionKind::kHash;
  if (name == "bfs") return PartitionKind::kBfsBlocks;
  SPECKLE_CHECK(false,
                "unknown partitioner '" + name + "' (contiguous, hash, bfs)");
  return PartitionKind::kContiguous;
}

namespace {

/// Owner assignment for kBfsBlocks: walk the graph in multi-source BFS
/// order (sources are the lowest-id unvisited vertices, so every component
/// is covered and the order is deterministic) and cut the walk into P
/// consecutive blocks balanced by degree+1. Each block is a union of BFS
/// frontiers — a connected, locally dense region — so far fewer edges
/// cross blocks than under raw id order when ids carry no locality, while
/// the degree weighting keeps the per-shard edge work even on skewed
/// graphs (a hub counts for its whole adjacency, not one vertex).
std::vector<std::uint32_t> bfs_block_owners(const CsrGraph& g,
                                            std::uint32_t parts) {
  const vid_t n = g.num_vertices();
  std::vector<std::uint32_t> owner(n, 0);
  // Total weight = sum(degree+1) = m + n; the +1 keeps zero-degree
  // vertices from collapsing into one shard.
  const std::uint64_t total_weight =
      static_cast<std::uint64_t>(g.num_edges()) + n;
  std::vector<std::uint8_t> visited(n, 0);
  std::vector<vid_t> queue;
  queue.reserve(n);
  std::size_t head = 0;
  std::uint64_t consumed = 0;  // weight of vertices already assigned
  vid_t next_source = 0;
  for (vid_t assigned = 0; assigned < n; ++assigned) {
    if (head == queue.size()) {  // component exhausted: restart
      while (visited[next_source] != 0) ++next_source;
      visited[next_source] = 1;
      queue.push_back(next_source);
    }
    const vid_t v = queue[head++];
    // Part k takes the weight range [k*W/P, (k+1)*W/P): assign by the
    // midpoint of this vertex's weight interval so a hub straddling an
    // edge lands in exactly one part and every part stays nonempty on
    // weight-balanced inputs.
    const std::uint64_t w = static_cast<std::uint64_t>(g.degree(v)) + 1;
    const std::uint32_t k = static_cast<std::uint32_t>(
        std::min<std::uint64_t>((consumed * 2 + w) * parts / (total_weight * 2),
                                parts - 1));
    owner[v] = k;
    consumed += w;
    for (const vid_t u : g.neighbors(v)) {
      if (visited[u] == 0) {
        visited[u] = 1;
        queue.push_back(u);
      }
    }
  }
  return owner;
}

}  // namespace

Partition make_partition(const CsrGraph& g, std::uint32_t parts,
                         PartitionKind kind, std::uint64_t seed) {
  SPECKLE_CHECK(parts >= 1, "partition needs at least one part");
  SPECKLE_CHECK(seed != 0,
                "seed 0 is reserved (it collapses the repo's derived-seed "
                "products); pass a nonzero seed");
  const vid_t n = g.num_vertices();
  Partition p;
  p.kind = kind;
  p.num_parts = parts;
  p.owner.resize(n);
  p.local_index.assign(n, kInvalidVertex);
  p.shards.resize(parts);

  if (kind == PartitionKind::kBfsBlocks && n > 0) {
    p.owner = bfs_block_owners(g, parts);
  }
  for (vid_t v = 0; v < n; ++v) {
    const std::uint32_t k =
        kind == PartitionKind::kBfsBlocks ? p.owner[v]
        : kind == PartitionKind::kContiguous
            ? static_cast<std::uint32_t>(static_cast<std::uint64_t>(v) * parts / n)
            : static_cast<std::uint32_t>(
                  support::mix64(seed ^ (0x9e3779b97f4a7c15ULL * (v + 1ULL))) %
                  parts);
    p.owner[v] = k;
    p.local_index[v] = static_cast<vid_t>(p.shards[k].owned.size());
    p.shards[k].owned.push_back(v);  // ascending: v iterates in global order
  }

  // Ghost discovery + local CSR per shard. `g2l` maps global ids to the
  // current shard's local ids; only the entries a shard touches are set and
  // they are reset before the next shard reuses the array.
  std::vector<vid_t> g2l(n, kInvalidVertex);
  for (std::uint32_t k = 0; k < parts; ++k) {
    Shard& s = p.shards[k];
    for (const vid_t v : s.owned) {
      for (const vid_t w : g.neighbors(v)) {
        if (p.owner[w] != k && g2l[w] == kInvalidVertex) {
          g2l[w] = 0;  // mark; slot assigned after the sort below
          s.ghosts.push_back(w);
        }
      }
    }
    std::sort(s.ghosts.begin(), s.ghosts.end());
    for (const vid_t v : s.owned) g2l[v] = p.local_index[v];
    for (std::size_t j = 0; j < s.ghosts.size(); ++j) {
      g2l[s.ghosts[j]] = s.num_owned() + static_cast<vid_t>(j);
    }

    std::vector<eid_t> row(static_cast<std::size_t>(s.num_local()) + 1, 0);
    std::vector<vid_t> col;
    s.boundary_flag.assign(s.num_owned(), 0);
    for (vid_t i = 0; i < s.num_owned(); ++i) {
      for (const vid_t w : g.neighbors(s.owned[i])) {
        col.push_back(g2l[w]);
        if (p.owner[w] != k) {
          ++s.cut_edges;
          s.boundary_flag[i] = 1;
        }
      }
      row[i + 1] = static_cast<eid_t>(col.size());
    }
    for (const std::uint8_t f : s.boundary_flag) s.num_boundary += f;
    // Ghost rows are empty: repeat the final offset.
    for (vid_t i = s.num_owned(); i < s.num_local(); ++i) row[i + 1] = row[i];
    s.local = CsrGraph(std::move(row), std::move(col));
    p.cut_edges += s.cut_edges;

    for (const vid_t v : s.owned) g2l[v] = kInvalidVertex;
    for (const vid_t w : s.ghosts) g2l[w] = kInvalidVertex;
  }
  return p;
}

void Partition::validate(const CsrGraph& g) const {
  const vid_t n = g.num_vertices();
  SPECKLE_CHECK(owner.size() == n && local_index.size() == n,
                "partition arrays must cover every vertex");
  SPECKLE_CHECK(shards.size() == num_parts, "one shard per part");
  std::uint64_t owned_total = 0, cut_total = 0;
  for (std::uint32_t k = 0; k < num_parts; ++k) {
    const Shard& s = shards[k];
    owned_total += s.owned.size();
    cut_total += s.cut_edges;
    SPECKLE_CHECK(s.local.num_vertices() == s.num_local(),
                  "local CSR must have one row per owned+ghost vertex");
    SPECKLE_CHECK(std::is_sorted(s.owned.begin(), s.owned.end()) &&
                      std::is_sorted(s.ghosts.begin(), s.ghosts.end()),
                  "owned and ghost lists must be ascending");
    for (vid_t i = 0; i < s.num_owned(); ++i) {
      const vid_t v = s.owned[i];
      SPECKLE_CHECK(owner[v] == k && local_index[v] == i,
                    "owner/local_index must agree with the shard lists");
      // The local adjacency must mirror the global one, entry by entry.
      const auto global_adj = g.neighbors(v);
      const auto local_adj = s.local.neighbors(i);
      SPECKLE_CHECK(global_adj.size() == local_adj.size(),
                    "local degree must match global degree");
      for (std::size_t e = 0; e < global_adj.size(); ++e) {
        const vid_t gw = global_adj[e];
        const vid_t lw = local_adj[e];
        if (owner[gw] == k) {
          SPECKLE_CHECK(lw < s.num_owned() && s.owned[lw] == gw,
                        "owned neighbor must map to its owned local id");
        } else {
          SPECKLE_CHECK(lw >= s.num_owned() &&
                            s.ghosts[lw - s.num_owned()] == gw,
                        "cross-partition neighbor must map to a ghost slot");
        }
      }
    }
    for (const vid_t w : s.ghosts) {
      SPECKLE_CHECK(owner[w] != k, "a shard never ghosts its own vertex");
    }
    // Boundary/interior classification: a vertex is boundary iff its local
    // adjacency reaches a ghost slot (== it has a cut edge), and the count
    // matches the flags. Interior vertices are the overlap window — they
    // must have no cross-partition neighbor at all.
    SPECKLE_CHECK(s.boundary_flag.size() == s.num_owned(),
                  "one boundary flag per owned vertex");
    vid_t flagged = 0;
    for (vid_t i = 0; i < s.num_owned(); ++i) {
      bool has_ghost_neighbor = false;
      for (const vid_t lw : s.local.neighbors(i)) {
        if (lw >= s.num_owned()) has_ghost_neighbor = true;
      }
      SPECKLE_CHECK((s.boundary_flag[i] != 0) == has_ghost_neighbor,
                    "boundary flag must mark exactly the cut-edge endpoints");
      flagged += s.boundary_flag[i];
    }
    SPECKLE_CHECK(flagged == s.num_boundary,
                  "num_boundary must count the set flags");
    // Every ghost row must be empty.
    for (vid_t i = s.num_owned(); i < s.num_local(); ++i) {
      SPECKLE_CHECK(s.local.degree(i) == 0, "ghost rows carry no adjacency");
    }
  }
  SPECKLE_CHECK(owned_total == n, "every vertex owned exactly once");
  SPECKLE_CHECK(cut_total == cut_edges, "cut_edges must sum over shards");
}

}  // namespace speckle::graph
