#include "graph/bipartite.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace speckle::graph {

SparsePattern::SparsePattern(vid_t num_rows, vid_t num_cols,
                             std::vector<Nonzero> entries)
    : num_rows_(num_rows), num_cols_(num_cols) {
  for (const Nonzero& nz : entries) {
    SPECKLE_CHECK(nz.row < num_rows && nz.col < num_cols,
                  "pattern entry out of range");
  }
  std::sort(entries.begin(), entries.end(), [](const Nonzero& a, const Nonzero& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const Nonzero& a, const Nonzero& b) {
                              return a.row == b.row && a.col == b.col;
                            }),
                entries.end());

  row_offsets_.assign(static_cast<std::size_t>(num_rows) + 1, 0);
  for (const Nonzero& nz : entries) ++row_offsets_[nz.row + 1];
  for (std::size_t i = 1; i < row_offsets_.size(); ++i) {
    row_offsets_[i] += row_offsets_[i - 1];
  }
  row_entries_.resize(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) row_entries_[i] = entries[i].col;

  // Transpose (counting sort by column).
  col_offsets_.assign(static_cast<std::size_t>(num_cols) + 1, 0);
  for (const Nonzero& nz : entries) ++col_offsets_[nz.col + 1];
  for (std::size_t i = 1; i < col_offsets_.size(); ++i) {
    col_offsets_[i] += col_offsets_[i - 1];
  }
  col_entries_.resize(entries.size());
  std::vector<eid_t> cursor(col_offsets_.begin(), col_offsets_.end() - 1);
  for (const Nonzero& nz : entries) col_entries_[cursor[nz.col]++] = nz.row;
}

CsrGraph column_intersection_graph(const SparsePattern& pattern) {
  EdgeList edges;
  for (vid_t r = 0; r < pattern.num_rows(); ++r) {
    const auto cols = pattern.row(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      for (std::size_t j = i + 1; j < cols.size(); ++j) {
        edges.push_back({cols[i], cols[j]});
      }
    }
  }
  return build_csr(pattern.num_cols(), std::move(edges));
}

SparsePattern random_pattern(vid_t num_rows, vid_t num_cols, vid_t nnz_per_row,
                             std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  std::vector<Nonzero> entries;
  entries.reserve(static_cast<std::size_t>(num_rows) * nnz_per_row);
  for (vid_t r = 0; r < num_rows; ++r) {
    for (vid_t k = 0; k < nnz_per_row; ++k) {
      entries.push_back({r, static_cast<vid_t>(rng.next_below(num_cols))});
    }
  }
  return SparsePattern(num_rows, num_cols, std::move(entries));
}

}  // namespace speckle::graph
