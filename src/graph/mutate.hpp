#pragma once
/// \file mutate.hpp
/// Edge-mutation batches over an immutable CsrGraph.
///
/// CsrGraph is deliberately immutable (validated invariants, device-upload
/// friendly), so a mutation batch produces a *new* CSR by merging each
/// vertex's sorted adjacency with the batch's inserts and deletes — an
/// O(n + m + b log b) rebuild for a batch of b mutations. That is cheap
/// next to what the serve layer does with the result: recoloring even a
/// small dirty region through the GPU simulator costs orders of magnitude
/// more than the host-side merge.
///
/// Mutations are undirected: inserting (u, v) adds both CSR arcs, deleting
/// removes both. Self loops, out-of-range endpoints, inserts of existing
/// edges and deletes of missing edges are *skipped* (counted, not errors):
/// a server applying client batches must be total, and the caller decides
/// whether skipped entries are worth reporting.

#include <cstdint>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace speckle::graph {

struct EdgeMutation {
  enum class Kind : std::uint8_t { kInsert = 0, kDelete = 1 };
  Kind kind = Kind::kInsert;
  vid_t u = 0;
  vid_t v = 0;
};

struct MutationOutcome {
  CsrGraph graph;                 ///< the post-batch CSR
  std::uint32_t applied = 0;      ///< mutations that changed the edge set
  std::uint32_t skipped = 0;      ///< duplicates, missing edges, loops, OOR
  /// Undirected edges the batch actually added (u < v, deduplicated) —
  /// exactly the candidates for new coloring conflicts. Edges that were
  /// also deleted later in the same batch do not appear.
  std::vector<Edge> inserted;
};

/// Apply a mutation batch in order (later entries see earlier ones: an
/// insert followed by a delete of the same edge nets out). Deterministic.
MutationOutcome apply_mutations(const CsrGraph& g,
                                const std::vector<EdgeMutation>& batch);

}  // namespace speckle::graph
