#include "graph/analysis.hpp"

#include <vector>

#include "support/stats.hpp"

namespace speckle::graph {

DegreeReport analyze_degrees(const CsrGraph& g) {
  DegreeReport report;
  report.num_vertices = g.num_vertices();
  report.num_edges = g.num_edges();
  support::Accumulator acc;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    acc.add(static_cast<double>(g.degree(v)));
  }
  const support::Summary s = acc.summary();
  report.min_degree = static_cast<vid_t>(s.min);
  report.max_degree = static_cast<vid_t>(s.max);
  report.avg_degree = s.mean;
  report.degree_variance = s.variance;
  return report;
}

vid_t count_components(const CsrGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<bool> visited(n, false);
  std::vector<vid_t> stack;
  vid_t components = 0;
  for (vid_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    ++components;
    visited[start] = true;
    stack.push_back(start);
    while (!stack.empty()) {
      vid_t v = stack.back();
      stack.pop_back();
      for (vid_t w : g.neighbors(v)) {
        if (!visited[w]) {
          visited[w] = true;
          stack.push_back(w);
        }
      }
    }
  }
  return components;
}

vid_t count_isolated(const CsrGraph& g) {
  vid_t isolated = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) == 0) ++isolated;
  }
  return isolated;
}

}  // namespace speckle::graph
