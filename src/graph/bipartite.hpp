#pragma once
/// \file bipartite.hpp
/// Sparse rectangular patterns (bipartite row/column structure).
///
/// Jacobian compression colors the *columns* of a rectangular sparsity
/// pattern so that columns sharing a nonzero row get distinct colors —
/// a partial distance-2 coloring of the bipartite graph, equivalently a
/// distance-1 coloring of the column intersection graph. This module holds
/// the pattern container and the intersection-graph construction; the
/// coloring itself lives in coloring/partial_d2.hpp.

#include <vector>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace speckle::graph {

/// A nonzero position (row, col) of a rectangular pattern.
struct Nonzero {
  vid_t row;
  vid_t col;
};

/// Immutable CSR-by-rows rectangular sparsity pattern with its transpose.
class SparsePattern {
 public:
  /// Deduplicates entries; aborts on out-of-range indices.
  SparsePattern(vid_t num_rows, vid_t num_cols, std::vector<Nonzero> entries);

  vid_t num_rows() const { return num_rows_; }
  vid_t num_cols() const { return num_cols_; }
  std::size_t num_nonzeros() const { return row_entries_.size(); }

  /// Columns with a nonzero in `row` (sorted).
  std::span<const vid_t> row(vid_t row) const {
    return {row_entries_.data() + row_offsets_[row],
            row_entries_.data() + row_offsets_[row + 1]};
  }
  /// Rows with a nonzero in `col` (sorted).
  std::span<const vid_t> col(vid_t col) const {
    return {col_entries_.data() + col_offsets_[col],
            col_entries_.data() + col_offsets_[col + 1]};
  }

 private:
  vid_t num_rows_;
  vid_t num_cols_;
  std::vector<eid_t> row_offsets_;
  std::vector<vid_t> row_entries_;
  std::vector<eid_t> col_offsets_;
  std::vector<vid_t> col_entries_;
};

/// The column intersection graph: columns adjacent iff they share a row.
/// Its proper distance-1 colorings are exactly the pattern's valid partial
/// distance-2 column colorings (structural orthogonality).
CsrGraph column_intersection_graph(const SparsePattern& pattern);

/// A random pattern: each row holds `nnz_per_row` uniform columns.
SparsePattern random_pattern(vid_t num_rows, vid_t num_cols, vid_t nnz_per_row,
                             std::uint64_t seed);

}  // namespace speckle::graph
