#include "graph/permute.hpp"

#include <algorithm>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace speckle::graph {

CsrGraph permute(const CsrGraph& g, std::span<const vid_t> perm) {
  const vid_t n = g.num_vertices();
  SPECKLE_CHECK(perm.size() == n, "permutation size must equal vertex count");
  std::vector<bool> seen(n, false);
  for (vid_t p : perm) {
    SPECKLE_CHECK(p < n && !seen[p], "perm is not a permutation of [0,n)");
    seen[p] = true;
  }
  std::vector<eid_t> row_offsets(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t v = 0; v < n; ++v) row_offsets[perm[v] + 1] = g.degree(v);
  for (std::size_t i = 1; i < row_offsets.size(); ++i) {
    row_offsets[i] += row_offsets[i - 1];
  }
  std::vector<vid_t> col_indices(g.num_edges());
  for (vid_t v = 0; v < n; ++v) {
    eid_t out = row_offsets[perm[v]];
    for (vid_t w : g.neighbors(v)) col_indices[out++] = perm[w];
    std::sort(col_indices.begin() + row_offsets[perm[v]], col_indices.begin() + out);
  }
  return CsrGraph(std::move(row_offsets), std::move(col_indices));
}

CsrGraph permute_random(const CsrGraph& g, std::uint64_t seed) {
  auto perm = support::random_permutation(g.num_vertices(), seed);
  return permute(g, perm);
}

}  // namespace speckle::graph
