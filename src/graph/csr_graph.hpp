#pragma once
/// \file csr_graph.hpp
/// Immutable compressed-sparse-row graph — the storage format the paper
/// uses (Section III-C, Fig 2): a row-offsets array R of n+1 entries and a
/// column-indices array C of m entries, adjacency lists concatenated.
///
/// Invariants (validated on construction):
///   * R[0] == 0, R is non-decreasing, R[n] == C.size()
///   * every column index < n
///   * no self loops (coloring is defined on simple graphs)
/// Symmetry (v in adj(w) iff w in adj(v)) is required by the coloring
/// algorithms and checked by the builder, not per-construction (O(m log d)).

#include <span>
#include <vector>

#include "graph/types.hpp"

namespace speckle::graph {

class CsrGraph {
 public:
  /// Takes ownership of validated arrays. Aborts if invariants fail.
  CsrGraph(std::vector<eid_t> row_offsets, std::vector<vid_t> col_indices);

  /// Empty graph (0 vertices).
  CsrGraph();

  vid_t num_vertices() const { return static_cast<vid_t>(row_offsets_.size() - 1); }
  eid_t num_edges() const { return static_cast<eid_t>(col_indices_.size()); }

  std::span<const eid_t> row_offsets() const { return row_offsets_; }
  std::span<const vid_t> col_indices() const { return col_indices_; }

  /// Adjacency list of v (sorted ascending if built by Builder).
  std::span<const vid_t> neighbors(vid_t v) const {
    return {col_indices_.data() + row_offsets_[v],
            col_indices_.data() + row_offsets_[v + 1]};
  }

  vid_t degree(vid_t v) const {
    return static_cast<vid_t>(row_offsets_[v + 1] - row_offsets_[v]);
  }

  vid_t max_degree() const;

  /// True if every edge has its reverse edge (O(m log d) binary searches).
  bool is_symmetric() const;

  /// True if w appears in adj(v) (binary search; adjacency must be sorted).
  bool has_edge(vid_t v, vid_t w) const;

  /// Re-verify every structural invariant on the stored arrays, plus the
  /// canonical-form properties the builder guarantees (each adjacency list
  /// strictly ascending — i.e. sorted and duplicate-free). The constructor
  /// aborts on broken invariants; validate() reports them, which is what
  /// consumers of untrusted bytes (the on-disk cache) and the generator
  /// conformance tests need.
  bool validate() const;

  /// Bytes occupied by the two CSR arrays (what gets copied to the device).
  std::size_t byte_size() const {
    return row_offsets_.size() * sizeof(eid_t) + col_indices_.size() * sizeof(vid_t);
  }

 private:
  std::vector<eid_t> row_offsets_;
  std::vector<vid_t> col_indices_;
};

}  // namespace speckle::graph
