#pragma once
/// \file bfs.hpp
/// Breadth-first search utilities. Used by tests as an independent oracle
/// (e.g. "no two vertices within distance 2 share a color" is checked
/// against real BFS distances) and by the analysis tooling.

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/csr_graph.hpp"

namespace speckle::graph {

inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// Hop distances from `source` to every vertex (kUnreachable if none).
std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, vid_t source);

/// All vertices within `radius` hops of `source`, excluding source itself.
std::vector<vid_t> neighborhood(const CsrGraph& g, vid_t source, std::uint32_t radius);

/// Eccentricity of `source` within its component (max finite distance).
std::uint32_t eccentricity(const CsrGraph& g, vid_t source);

}  // namespace speckle::graph
