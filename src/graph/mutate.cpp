#include "graph/mutate.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace speckle::graph {

namespace {

/// Normalized undirected key (min, max).
std::pair<vid_t, vid_t> key_of(vid_t u, vid_t v) {
  return {std::min(u, v), std::max(u, v)};
}

}  // namespace

MutationOutcome apply_mutations(const CsrGraph& g,
                                const std::vector<EdgeMutation>& batch) {
  const vid_t n = g.num_vertices();
  MutationOutcome out;

  // Net effect of the batch on the undirected edge set, applied in order.
  // ordered std::set keeps the rebuild deterministic without a sort pass.
  std::set<std::pair<vid_t, vid_t>> add;
  std::set<std::pair<vid_t, vid_t>> del;
  for (const EdgeMutation& m : batch) {
    if (m.u >= n || m.v >= n || m.u == m.v) {
      ++out.skipped;
      continue;
    }
    const auto key = key_of(m.u, m.v);
    const bool exists_base = g.has_edge(key.first, key.second);
    const bool exists_now =
        (exists_base && del.find(key) == del.end()) || add.count(key) != 0;
    if (m.kind == EdgeMutation::Kind::kInsert) {
      if (exists_now) {
        ++out.skipped;
        continue;
      }
      if (exists_base) {
        del.erase(key);  // re-insert of an edge deleted earlier in the batch
      } else {
        add.insert(key);
      }
      ++out.applied;
    } else {
      if (!exists_now) {
        ++out.skipped;
        continue;
      }
      if (add.count(key) != 0) {
        add.erase(key);  // delete of an edge inserted earlier in the batch
      } else {
        del.insert(key);
      }
      ++out.applied;
    }
  }

  out.inserted.reserve(add.size());
  for (const auto& [u, v] : add) out.inserted.push_back(Edge{u, v});

  if (add.empty() && del.empty()) {
    // Net no-op batch: rebuild the same CSR (cheap copy of the arrays).
    out.graph = CsrGraph(std::vector<eid_t>(g.row_offsets().begin(),
                                            g.row_offsets().end()),
                         std::vector<vid_t>(g.col_indices().begin(),
                                            g.col_indices().end()));
    return out;
  }

  // Per-vertex sorted insert lists; deletes checked via the ordered set.
  std::vector<std::vector<vid_t>> ins(n);
  for (const auto& [u, v] : add) {
    ins[u].push_back(v);
    ins[v].push_back(u);
  }
  for (auto& lst : ins) std::sort(lst.begin(), lst.end());

  std::vector<eid_t> row(n + 1, 0);
  std::vector<vid_t> col;
  col.reserve(g.num_edges() + 2 * add.size());
  for (vid_t v = 0; v < n; ++v) {
    row[v] = static_cast<eid_t>(col.size());
    // Merge the (sorted) surviving adjacency with the (sorted) inserts.
    const auto adj = g.neighbors(v);
    std::size_t ai = 0;
    std::size_t bi = 0;
    while (ai < adj.size() || bi < ins[v].size()) {
      const bool take_adj =
          bi >= ins[v].size() || (ai < adj.size() && adj[ai] <= ins[v][bi]);
      if (take_adj) {
        const vid_t w = adj[ai++];
        if (del.find(key_of(v, w)) != del.end()) continue;
        col.push_back(w);
      } else {
        col.push_back(ins[v][bi++]);
      }
    }
  }
  row[n] = static_cast<eid_t>(col.size());
  out.graph = CsrGraph(std::move(row), std::move(col));
  return out;
}

}  // namespace speckle::graph
