#include "graph/builder.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace speckle::graph {

CsrGraph build_csr(vid_t num_vertices, EdgeList edges, const BuildOptions& opts) {
  for (const Edge& e : edges) {
    SPECKLE_CHECK(e.src < num_vertices && e.dst < num_vertices,
                  "edge endpoint out of range");
  }
  if (opts.symmetrize) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      edges.push_back({edges[i].dst, edges[i].src});
    }
  }
  if (opts.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  if (opts.remove_duplicates) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  std::vector<eid_t> row_offsets(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) ++row_offsets[e.src + 1];
  for (std::size_t i = 1; i < row_offsets.size(); ++i) {
    row_offsets[i] += row_offsets[i - 1];
  }
  std::vector<vid_t> col_indices(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) col_indices[i] = edges[i].dst;
  return CsrGraph(std::move(row_offsets), std::move(col_indices));
}

EdgeList to_edge_list(const CsrGraph& g) {
  EdgeList edges;
  edges.reserve(g.num_edges());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (vid_t w : g.neighbors(v)) edges.push_back({v, w});
  }
  return edges;
}

}  // namespace speckle::graph
