#pragma once
/// \file builder.hpp
/// Edge-list to CSR conversion with the cleanup coloring needs:
/// symmetrization, self-loop removal, duplicate removal, sorted adjacency.
///
/// "We store graphs in the order they are defined and do not perform any
/// preprocessing in order to improve locality or load balance" (paper,
/// Section III-C) — the builder therefore never reorders vertices; only
/// adjacency lists are sorted (a property of CSR from sorted input, not a
/// locality optimization).

#include <utility>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace speckle::graph {

/// A directed edge (src, dst). Generators emit these; the builder cleans up.
struct Edge {
  vid_t src;
  vid_t dst;
  friend bool operator==(const Edge&, const Edge&) = default;
};

using EdgeList = std::vector<Edge>;

struct BuildOptions {
  bool symmetrize = true;       ///< add the reverse of every edge
  bool remove_self_loops = true;
  bool remove_duplicates = true;
};

/// Build a CSR graph over `num_vertices` vertices from an edge list.
/// Edges referencing vertices >= num_vertices abort. O(m log m).
CsrGraph build_csr(vid_t num_vertices, EdgeList edges, const BuildOptions& opts = {});

/// Extract the (directed) edge list of a CSR graph, in CSR order.
EdgeList to_edge_list(const CsrGraph& g);

}  // namespace speckle::graph
