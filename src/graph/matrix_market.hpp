#pragma once
/// \file matrix_market.hpp
/// Matrix Market (.mtx) coordinate-format I/O.
///
/// The paper's real-world inputs come from the University of Florida Sparse
/// Matrix Collection, distributed in this format. The reader accepts
/// `matrix coordinate {pattern|real|integer|complex} {general|symmetric|
/// skew-symmetric|hermitian}` headers, ignores numeric values (coloring only
/// needs structure), expands symmetric storage, and drops explicit diagonal
/// entries (self loops). If the real matrices are available they can be fed
/// to any bench via --graph=path.mtx; otherwise the suite's structural twins
/// are used (DESIGN.md §2).

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/csr_graph.hpp"

namespace speckle::graph {

/// Thrown by the reader on any malformed input — unreadable file, bad or
/// truncated banner, missing/malformed size line, an entry count that
/// exceeds the matrix's capacity, out-of-range or malformed entries, or a
/// file that ends before the promised entry count. Inputs come from
/// outside the program, so they fail with a catchable, descriptive error
/// rather than the SPECKLE_CHECK abort reserved for programmer mistakes.
class MatrixMarketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Read a Matrix Market file into a symmetrized, deduplicated CSR graph.
/// Throws MatrixMarketError (message prefixed with the file name) on
/// malformed input.
CsrGraph read_matrix_market(const std::string& path);

/// Stream variant (used by tests; `name` appears in error messages).
CsrGraph read_matrix_market(std::istream& in, const std::string& name);

/// Write a graph as `matrix coordinate pattern symmetric`, emitting each
/// undirected edge once (lower triangle, 1-based indices).
void write_matrix_market(const CsrGraph& g, const std::string& path);
void write_matrix_market(const CsrGraph& g, std::ostream& out);

}  // namespace speckle::graph
