#pragma once
/// \file analysis.hpp
/// Structural reports over CSR graphs — the columns of the paper's Table I.

#include <string>

#include "graph/csr_graph.hpp"

namespace speckle::graph {

/// Degree statistics in Table I's layout: counts, min/max/avg degree and
/// the population variance of the degree distribution.
struct DegreeReport {
  vid_t num_vertices = 0;
  eid_t num_edges = 0;  ///< directed CSR entries, as the paper counts them
  vid_t min_degree = 0;
  vid_t max_degree = 0;
  double avg_degree = 0.0;
  double degree_variance = 0.0;
};

DegreeReport analyze_degrees(const CsrGraph& g);

/// Number of connected components (BFS over the undirected structure).
vid_t count_components(const CsrGraph& g);

/// Number of isolated (degree-0) vertices.
vid_t count_isolated(const CsrGraph& g);

}  // namespace speckle::graph
