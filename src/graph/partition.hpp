#pragma once
/// \file partition.hpp
/// Vertex partitioning of a CSR graph into P shards for the multi-device
/// runner (`speckle::multidev`). Each shard re-labels its vertices into a
/// compact local id space:
///
///   * owned vertices  — local ids [0, num_owned), ascending global order;
///   * ghost vertices  — local ids [num_owned, num_local): read-only copies
///     of cross-partition neighbors, ascending global order. Ghost rows in
///     the shard-local CSR are empty (a device never iterates a ghost's
///     adjacency; it only reads the ghost's color).
///
/// Three partitioners:
///   * contiguous — part k owns the global id range [k*n/P, (k+1)*n/P);
///     preserves generator locality, minimal cut on banded/stencil graphs;
///   * hash       — owner(v) = mix64(seed ^ f(v)) mod P; destroys locality
///     but balances skewed degree distributions, and is the adversarial
///     case for the boundary-exchange machinery (most edges become cut);
///   * bfs        — edge-cut-aware BFS-grown blocks: vertices are visited
///     in multi-source BFS order (restarting from the lowest unvisited id,
///     so disconnected graphs work) and assigned to parts along that order,
///     each part's share balanced by DEGREE (edge weight) rather than
///     vertex count. BFS order keeps each block a connected, locally dense
///     region, which shrinks the cut — and with it ghost traffic — on
///     graphs whose id order carries no locality (the R-MAT suite members);
///     degree balancing keeps skewed shards from serializing the fleet.
///
/// All three are deterministic; hash additionally takes a nonzero seed
/// (seed 0 is rejected loudly — it collapses the derived-seed products
/// used throughout the repo, see make_suite_graph).
///
/// Each shard also classifies its owned vertices into **boundary** (at
/// least one cross-partition neighbor, i.e. at least one ghost in its
/// adjacency) and **interior** (owned neighbors only). The multi-device
/// runner colors the boundary set first and ships its colors while the
/// interior set is still being colored — interior vertices are never
/// exchanged, so the classification is what makes the overlap sound.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace speckle::graph {

enum class PartitionKind {
  kContiguous,
  kHash,
  kBfsBlocks,
};

const char* partition_kind_name(PartitionKind kind);
/// Lookup by name ("contiguous" / "hash" / "bfs"); aborts on unknown names.
PartitionKind partition_kind_from_name(const std::string& name);

/// One device's slice of the graph.
struct Shard {
  std::vector<vid_t> owned;   ///< global ids, ascending; local ids [0, |owned|)
  std::vector<vid_t> ghosts;  ///< global ids, ascending; local ids follow owned
  /// Shard-local CSR: adjacency of every owned vertex in local ids (owned
  /// and ghost neighbors alike); ghost rows are empty. Constructed directly
  /// (ghost rows make it asymmetric by design, so it never goes through the
  /// symmetrizing builder).
  CsrGraph local;
  /// Directed CSR entries from an owned vertex to a ghost (this shard's
  /// side of the edge cut).
  std::uint64_t cut_edges = 0;
  /// Per owned vertex (indexed by local id): 1 iff the vertex has at least
  /// one ghost neighbor — the endpoint of a cut edge. Boundary vertices are
  /// the only ones whose colors ever cross the interconnect.
  std::vector<std::uint8_t> boundary_flag;
  vid_t num_boundary = 0;  ///< count of set boundary_flag entries

  vid_t num_owned() const { return static_cast<vid_t>(owned.size()); }
  vid_t num_ghosts() const { return static_cast<vid_t>(ghosts.size()); }
  vid_t num_local() const { return num_owned() + num_ghosts(); }
  vid_t num_interior() const { return num_owned() - num_boundary; }
  bool is_boundary(vid_t local) const { return boundary_flag[local] != 0; }
};

struct Partition {
  PartitionKind kind = PartitionKind::kContiguous;
  std::uint32_t num_parts = 1;
  std::vector<std::uint32_t> owner;  ///< size n: owning part of each vertex
  /// Size n: the vertex's local id on its owner shard (always < num_owned
  /// of that shard; ghost slots are not recorded here).
  std::vector<vid_t> local_index;
  std::vector<Shard> shards;         ///< num_parts entries (possibly empty shards)
  std::uint64_t cut_edges = 0;       ///< directed, summed over shards

  /// Structural self-check (owner/local_index/shard cross-consistency and
  /// the local CSR against the global one). O(n + m). Aborts on violation —
  /// used by tests and the fuzz harness, cheap enough to keep on.
  void validate(const CsrGraph& g) const;
};

/// Partition `g` into `parts` shards. `seed` feeds the hash partitioner
/// (ignored by contiguous) and must be nonzero. Deterministic for a given
/// (graph, parts, kind, seed).
Partition make_partition(const CsrGraph& g, std::uint32_t parts,
                         PartitionKind kind, std::uint64_t seed = 0x5eed);

}  // namespace speckle::graph
