#include "graph/cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/suite.hpp"

namespace speckle::graph {

namespace {

constexpr std::uint64_t kCacheMagic = 0x53504b2d43535231ULL;  // "SPK-CSR1"

struct CacheHeader {
  std::uint64_t magic = kCacheMagic;
  std::uint32_t version = kGraphCacheVersion;
  std::uint32_t vid_bytes = sizeof(vid_t);
  std::uint32_t eid_bytes = sizeof(eid_t);
  std::uint32_t denom = 0;
  std::uint64_t seed = 0;
  std::uint64_t name_hash = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
};

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Re-check every CsrGraph invariant on untrusted bytes, so a torn or
/// bit-rotted cache file regenerates instead of aborting the constructor.
bool csr_arrays_valid(const std::vector<eid_t>& row,
                      const std::vector<vid_t>& col) {
  if (row.empty() || row.front() != 0) return false;
  if (row.back() != col.size()) return false;
  const vid_t n = static_cast<vid_t>(row.size() - 1);
  for (vid_t v = 0; v < n; ++v) {
    if (row[v + 1] < row[v]) return false;
    for (eid_t e = row[v]; e < row[v + 1]; ++e) {
      if (col[e] >= n) return false;
      if (col[e] == v) return false;  // self loop
    }
  }
  return true;
}

}  // namespace

std::string resolve_graph_cache_dir(const std::string& flag) {
  if (!flag.empty()) return flag;
  if (const char* env = std::getenv("SPECKLE_GRAPH_CACHE")) return env;
  return "";
}

std::string graph_cache_path(const std::string& dir, const std::string& name,
                             std::uint32_t denom, std::uint64_t seed) {
  std::ostringstream out;
  out << dir << '/' << name << ".d" << denom << ".s" << std::hex << seed
      << ".v" << std::dec << kGraphCacheVersion << ".csr";
  return out.str();
}

bool load_cached_graph(const std::string& path, const std::string& name,
                       std::uint32_t denom, std::uint64_t seed,
                       CsrGraph* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  CacheHeader hdr;
  in.read(reinterpret_cast<char*>(&hdr), sizeof(hdr));
  if (!in.good()) return false;
  if (hdr.magic != kCacheMagic || hdr.version != kGraphCacheVersion ||
      hdr.vid_bytes != sizeof(vid_t) || hdr.eid_bytes != sizeof(eid_t) ||
      hdr.denom != denom || hdr.seed != seed ||
      hdr.name_hash != fnv1a64(name)) {
    return false;
  }
  std::vector<eid_t> row(hdr.num_vertices + 1);
  std::vector<vid_t> col(hdr.num_edges);
  in.read(reinterpret_cast<char*>(row.data()),
          static_cast<std::streamsize>(row.size() * sizeof(eid_t)));
  in.read(reinterpret_cast<char*>(col.data()),
          static_cast<std::streamsize>(col.size() * sizeof(vid_t)));
  if (!in.good()) return false;  // truncated
  in.get();
  if (!in.eof()) return false;  // trailing garbage
  if (!csr_arrays_valid(row, col)) return false;
  *out = CsrGraph(std::move(row), std::move(col));
  return true;
}

bool store_cached_graph(const std::string& path, const std::string& name,
                        std::uint32_t denom, std::uint64_t seed,
                        const CsrGraph& g) {
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  if (ec) return false;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) return false;
    CacheHeader hdr;
    hdr.denom = denom;
    hdr.seed = seed;
    hdr.name_hash = fnv1a64(name);
    hdr.num_vertices = g.num_vertices();
    hdr.num_edges = g.num_edges();
    out.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
    out.write(reinterpret_cast<const char*>(g.row_offsets().data()),
              static_cast<std::streamsize>(g.row_offsets().size() *
                                           sizeof(eid_t)));
    out.write(reinterpret_cast<const char*>(g.col_indices().data()),
              static_cast<std::streamsize>(g.col_indices().size() *
                                           sizeof(vid_t)));
    if (!out.good()) return false;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

CsrGraph make_suite_graph_cached(const std::string& name, std::uint32_t denom,
                                 std::uint64_t seed, const std::string& dir) {
  if (dir.empty()) return make_suite_graph(name, denom, seed);
  const std::string path = graph_cache_path(dir, name, denom, seed);
  CsrGraph g;
  if (load_cached_graph(path, name, denom, seed, &g)) return g;
  g = make_suite_graph(name, denom, seed);
  store_cached_graph(path, name, denom, seed, g);  // best effort
  return g;
}

}  // namespace speckle::graph
