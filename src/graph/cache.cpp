#include "graph/cache.hpp"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/genspec.hpp"
#include "graph/suite.hpp"

namespace speckle::graph {

namespace {

constexpr std::uint64_t kCacheMagic = 0x53504b2d43535231ULL;  // "SPK-CSR1"

/// Fixed-size header prefix; the variable-length key string follows it.
/// `version` sits at byte offset 8 in every format version.
struct CacheHeader {
  std::uint64_t magic = kCacheMagic;
  std::uint32_t version = kGraphCacheVersion;
  std::uint32_t vid_bytes = sizeof(vid_t);
  std::uint32_t eid_bytes = sizeof(eid_t);
  std::uint32_t key_len = 0;
  std::uint64_t key_hash = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
};

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// A filesystem-safe, human-skimmable prefix of the key: alnum and a few
/// separators kept, everything else collapsed to '-', capped in length.
/// Uniqueness comes from the appended key hash, not from this prefix.
std::string sanitize_key(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (const char c : key) {
    const auto uc = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(uc) || c == '.' || c == '_' || c == '=' ? c
                                                                       : '-');
    if (out.size() >= 80) break;
  }
  return out;
}

/// Re-check every CsrGraph invariant (the same set CsrGraph::validate
/// covers, including sorted deduplicated adjacency) on untrusted bytes, so
/// a torn or bit-rotted cache file regenerates instead of aborting the
/// CsrGraph constructor.
bool csr_arrays_valid(const std::vector<eid_t>& row,
                      const std::vector<vid_t>& col) {
  if (row.empty() || row.front() != 0) return false;
  if (row.back() != col.size()) return false;
  const auto n = static_cast<vid_t>(row.size() - 1);
  for (vid_t v = 0; v < n; ++v) {
    if (row[v + 1] < row[v]) return false;
    for (eid_t e = row[v]; e < row[v + 1]; ++e) {
      if (col[e] >= n || col[e] == v) return false;
      if (e > row[v] && col[e - 1] >= col[e]) return false;
    }
  }
  return true;
}

}  // namespace

std::string resolve_graph_cache_dir(const std::string& flag) {
  if (!flag.empty()) return flag;
  if (const char* env = std::getenv("SPECKLE_GRAPH_CACHE")) return env;
  return "";
}

std::string graph_cache_path(const std::string& dir, const std::string& key) {
  std::ostringstream out;
  out << dir << '/' << sanitize_key(key) << ".h" << std::hex << fnv1a64(key)
      << std::dec << ".v" << kGraphCacheVersion << ".csr";
  return out.str();
}

bool load_cached_graph(const std::string& path, const std::string& key,
                       CsrGraph* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  CacheHeader hdr;
  in.read(reinterpret_cast<char*>(&hdr), sizeof(hdr));
  if (!in.good()) return false;
  if (hdr.magic != kCacheMagic || hdr.version != kGraphCacheVersion ||
      hdr.vid_bytes != sizeof(vid_t) || hdr.eid_bytes != sizeof(eid_t) ||
      hdr.key_len != key.size() || hdr.key_hash != fnv1a64(key)) {
    return false;
  }
  std::string stored_key(hdr.key_len, '\0');
  in.read(stored_key.data(), static_cast<std::streamsize>(stored_key.size()));
  if (!in.good() || stored_key != key) return false;
  std::vector<eid_t> row(hdr.num_vertices + 1);
  std::vector<vid_t> col(hdr.num_edges);
  in.read(reinterpret_cast<char*>(row.data()),
          static_cast<std::streamsize>(row.size() * sizeof(eid_t)));
  in.read(reinterpret_cast<char*>(col.data()),
          static_cast<std::streamsize>(col.size() * sizeof(vid_t)));
  if (!in.good()) return false;  // truncated
  in.get();
  if (!in.eof()) return false;  // trailing garbage
  if (!csr_arrays_valid(row, col)) return false;
  *out = CsrGraph(std::move(row), std::move(col));
  return true;
}

bool store_cached_graph(const std::string& path, const std::string& key,
                        const CsrGraph& g) {
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  if (ec) return false;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) return false;
    CacheHeader hdr;
    hdr.key_len = static_cast<std::uint32_t>(key.size());
    hdr.key_hash = fnv1a64(key);
    hdr.num_vertices = g.num_vertices();
    hdr.num_edges = g.num_edges();
    out.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
    out.write(key.data(), static_cast<std::streamsize>(key.size()));
    out.write(reinterpret_cast<const char*>(g.row_offsets().data()),
              static_cast<std::streamsize>(g.row_offsets().size() *
                                           sizeof(eid_t)));
    out.write(reinterpret_cast<const char*>(g.col_indices().data()),
              static_cast<std::streamsize>(g.col_indices().size() *
                                           sizeof(vid_t)));
    if (!out.good()) return false;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

std::string suite_cache_key(const std::string& name, std::uint32_t denom,
                            std::uint64_t seed) {
  std::ostringstream out;
  out << "suite:" << name << "|denom=" << denom << '|'
      << canonical_spec_key(suite_generator_spec(name, denom, seed));
  return out.str();
}

CsrGraph make_suite_graph_cached(const std::string& name, std::uint32_t denom,
                                 std::uint64_t seed, const std::string& dir) {
  if (dir.empty()) return make_suite_graph(name, denom, seed);
  const std::string key = suite_cache_key(name, denom, seed);
  const std::string path = graph_cache_path(dir, key);
  CsrGraph g;
  if (load_cached_graph(path, key, &g)) return g;
  g = make_suite_graph(name, denom, seed);
  store_cached_graph(path, key, g);  // best effort
  return g;
}

}  // namespace speckle::graph
