#pragma once
/// \file cache.hpp
/// Opt-in binary on-disk cache for generated graphs.
///
/// Generating the larger graphs (R-MAT at low --denom, the bench_huge
/// 10^8-edge tier) costs far more wall time than everything a bench does
/// with them, and every bench binary regenerates them from scratch. The
/// cache stores the finished CSR arrays keyed by a canonical spec string —
/// `canonical_spec_key(spec)` for GeneratorSpec graphs, a "suite:"-prefixed
/// variant for the Table I suite — so repeat runs (sweeps over schemes,
/// partitioners or thread counts) skip the generator entirely.
///
/// The cache is OPT-IN: it activates only when a directory is supplied via
/// `--graph-cache=DIR` or the `SPECKLE_GRAPH_CACHE` environment variable
/// (the flag wins). Correctness never depends on it — a missing, stale,
/// truncated or corrupt file is silently regenerated (and overwritten),
/// and a file from another format version (including every v1 file, which
/// used a fixed (name, denom, seed) key tuple instead of the spec string)
/// is rejected by the header guard.
///
/// File layout v2 (host-endian; the cache is a local artifact, not an
/// interchange format):
///   u64 magic | u32 version | u32 vid_bytes | u32 eid_bytes | u32 key_len
///   | u64 key_hash | u64 n | u64 m
///   | char key[key_len] | eid_t row_offsets[n+1] | vid_t col_indices[m]
/// The version field stays at byte offset 8, where it has lived since v1,
/// so old binaries reject new files just as new binaries reject old ones.
/// Every header field and the embedded key are validated on load, then the
/// CSR invariants are re-checked (CsrGraph::validate) so a torn or
/// bit-rotted file can never abort the CsrGraph constructor.

#include <cstdint>
#include <string>

#include "graph/csr_graph.hpp"

namespace speckle::graph {

/// On-disk format version. Bump on any layout change — and on any change
/// to the generators, so stale files never masquerade as current.
/// v2: (name, denom, seed) tuple key replaced by the canonical spec key
/// string, embedded in the file and verified on load.
inline constexpr std::uint32_t kGraphCacheVersion = 2;

/// Resolve the cache directory: `flag` when nonempty, else the
/// SPECKLE_GRAPH_CACHE environment variable, else "" (caching disabled).
std::string resolve_graph_cache_dir(const std::string& flag);

/// The cache file path for `key` under `dir`: a sanitized key prefix (for
/// a human-readable directory listing) plus the key's 64-bit hash (for
/// uniqueness after sanitization truncates or collapses characters).
std::string graph_cache_path(const std::string& dir, const std::string& key);

/// Load a cached CSR from `path`. Returns false (leaving `out` untouched)
/// when the file is missing, from another format version, keyed for a
/// different graph, truncated, or failing the CSR invariants.
bool load_cached_graph(const std::string& path, const std::string& key,
                       CsrGraph* out);

/// Write `g` under `path` (temp file + rename, so a concurrent reader
/// never sees a torn file). Returns false when the directory cannot be
/// created or written; the caller just proceeds uncached.
bool store_cached_graph(const std::string& path, const std::string& key,
                        const CsrGraph& g);

/// The cache key for a Table I suite graph: "suite:" + the canonical spec
/// key of suite_generator_spec(name, denom, seed) + the caller's denom, so
/// any change to the suite's parameters or seed offsets changes the key.
std::string suite_cache_key(const std::string& name, std::uint32_t denom,
                            std::uint64_t seed);

/// make_suite_graph with the on-disk cache: a hit loads, a miss generates
/// and stores. Empty `dir` = plain generation (the cache stays opt-in).
CsrGraph make_suite_graph_cached(const std::string& name, std::uint32_t denom,
                                 std::uint64_t seed, const std::string& dir);

}  // namespace speckle::graph
